// Adaptive attacker suite tests (src/attack/adaptive): the gadget-preserving
// patch property (every generated patch keeps the overlapped gadget set
// byte-identical under a full-image re-scan), strategy determinism (identical
// candidate sequence for identical seed, independent of shard count), the
// zero-escape acceptance on built-in targets, the fingerprint divergence
// metric, and the Backend X-macro round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <span>
#include <sstream>

#include "asm/assembler.h"
#include "attack/adaptive/adaptive.h"
#include "attack/adaptive/evaluate.h"
#include "attack/adaptive/preserving.h"
#include "attack/adaptive/report.h"
#include "attack/patcher.h"
#include "fuzz/targets.h"
#include "gadget/scanner.h"
#include "image/layout.h"
#include "isa/x86/decoder.h"

namespace plx::attack::adaptive {
namespace {

parallax::Protected protect_builtin(const std::string& name) {
  const fuzz::Target* t = fuzz::find_target(name);
  EXPECT_NE(t, nullptr) << name;
  auto prot = fuzz::protect_target(*t, parallax::Hardening::Cleartext);
  EXPECT_TRUE(prot.ok()) << (prot.ok() ? std::string() : prot.error().str());
  return std::move(prot).take();
}

std::vector<std::uint32_t> executed_starts(const img::Image& image) {
  std::unordered_set<std::uint32_t> set;
  fuzz::record_golden(image, 2'000'000'000ull, &set);
  std::vector<std::uint32_t> starts(set.begin(), set.end());
  std::sort(starts.begin(), starts.end());
  return starts;
}

// (addr, bytes) identity of every usable gadget overlapping [lo, hi) in a
// FULL scan of `image` — the reference the windowed generator self-check
// must agree with.
std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>
full_scan_overlapping(const img::Image& image, std::uint32_t lo,
                      std::uint32_t hi) {
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> out;
  for (const auto& g : gadget::scan(image)) {
    if (g.addr >= hi || g.end() <= lo) continue;
    out.emplace_back(g.addr, image.read(g.addr, g.len));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- gadget-preserving patch generator -------------------------------------

TEST(AdaptivePreserving, GadgetByteCoverageCountsOverlaps) {
  std::vector<gadget::Gadget> gadgets(2);
  gadgets[0].addr = 10;
  gadgets[0].len = 3;  // covers 10,11,12
  gadgets[0].type = gadget::GType::PopReg;
  gadgets[1].addr = 12;
  gadgets[1].len = 2;  // covers 12,13
  gadgets[1].type = gadget::GType::Transparent;

  const auto cover = gadget_byte_coverage(gadgets);
  EXPECT_EQ(cover.size(), 4u);
  EXPECT_EQ(cover.at(10), 1u);
  EXPECT_EQ(cover.at(12), 2u);
  EXPECT_EQ(cover.count(14), 0u);

  // Unusable gadgets do not count: they are not chain material.
  gadgets[1].type = gadget::GType::Unusable;
  EXPECT_EQ(gadget_byte_coverage(gadgets).count(13), 0u);
}

TEST(AdaptivePreserving, SameSemanticsComparesDecodedMeaning) {
  const auto dec = [](std::initializer_list<std::uint8_t> bytes) {
    std::vector<std::uint8_t> v(bytes);
    const auto insn = x86::decode(std::span<const std::uint8_t>(v));
    EXPECT_TRUE(insn && insn->valid());
    return x86::to_isa(*insn);
  };
  // mov eax, 1 vs mov eax, 2: same mnemonic, different immediate operand.
  EXPECT_FALSE(same_semantics(dec({0xb8, 0x01, 0x00, 0x00, 0x00}),
                              dec({0xb8, 0x02, 0x00, 0x00, 0x00})));
  // mov eax, 1 vs mov ecx, 1: different destination register.
  EXPECT_FALSE(same_semantics(dec({0xb8, 0x01, 0x00, 0x00, 0x00}),
                              dec({0xb9, 0x01, 0x00, 0x00, 0x00})));
  // inc eax vs inc eax: identical.
  EXPECT_TRUE(same_semantics(dec({0x40}), dec({0x40})));
  // add eax, ebx encoded 0x01 /r vs 0x03 /r: same semantics, different
  // encoding — exactly what the generator must treat as "not different".
  EXPECT_TRUE(same_semantics(dec({0x01, 0xd8}), dec({0x03, 0xc3})));
}

// The satellite property test: for every generated patch, re-scan the whole
// patched image and assert the set of usable gadgets overlapping the patched
// instruction is byte-identical. >= 1000 patches across the built-in
// targets (ISSUE acceptance).
TEST(AdaptivePreserving, PatchesPreserveOverlappedGadgetsFullRescan) {
  std::size_t total_checked = 0;
  for (const char* name : {"quickstart", "ptrace", "license"}) {
    const auto prot = protect_builtin(name);
    const img::Image& image = prot.image;
    const auto gadgets = gadget::scan(image);
    const auto starts = executed_starts(image);

    PreservingOptions gen;
    gen.max_per_insn = 16;  // mass production for the property test
    const auto patches =
        generate_preserving_patches(image, gadgets, starts, gen);
    ASSERT_FALSE(patches.empty()) << name;

    for (const PreservingPatch& p : patches) {
      const std::uint32_t lo = p.insn_addr;
      const std::uint32_t hi = p.insn_addr + p.insn_len;
      const auto before = full_scan_overlapping(image, lo, hi);

      img::Image patched = image;
      attack::patch_bytes(patched, p.addr(),
                          std::span<const std::uint8_t>(&p.replacement, 1));
      const auto after = full_scan_overlapping(patched, lo, hi);

      ASSERT_EQ(before, after)
          << name << ": patch @" << std::hex << p.addr() << " ("
          << static_cast<int>(p.original) << " -> "
          << static_cast<int>(p.replacement)
          << ") changed the overlapped gadget set";
      ++total_checked;
    }
  }
  EXPECT_GE(total_checked, 1000u);
}

TEST(AdaptivePreserving, PatchesChangeSemanticsAndKeepLength) {
  const auto prot = protect_builtin("quickstart");
  const auto gadgets = gadget::scan(prot.image);
  const auto starts = executed_starts(prot.image);
  PreservingOptions gen;
  gen.max_per_insn = 4;
  const auto patches =
      generate_preserving_patches(prot.image, gadgets, starts, gen);
  ASSERT_FALSE(patches.empty());
  const auto cover = gadget_byte_coverage(gadgets);
  for (const PreservingPatch& p : patches) {
    EXPECT_EQ(p.before.len, p.after.len);
    EXPECT_EQ(p.insn_len, p.before.len);
    EXPECT_FALSE(same_semantics(p.before, p.after));
    EXPECT_NE(p.original, p.replacement);
    // The changed byte never sits inside a usable gadget.
    EXPECT_EQ(cover.count(p.addr()), 0u);
  }
}

TEST(AdaptivePreserving, GeneratorIsDeterministic) {
  const auto prot = protect_builtin("quickstart");
  const auto gadgets = gadget::scan(prot.image);
  const auto starts = executed_starts(prot.image);
  const auto a = generate_preserving_patches(prot.image, gadgets, starts);
  const auto b = generate_preserving_patches(prot.image, gadgets, starts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr(), b[i].addr());
    EXPECT_EQ(a[i].replacement, b[i].replacement);
  }
}

// --- fingerprint divergence ------------------------------------------------

TEST(AdaptiveFingerprint, DivergenceIsL1WithZeroPadding) {
  EXPECT_EQ(fingerprint_divergence({}, {}), 0.0);
  EXPECT_EQ(fingerprint_divergence({0.5, 0.25}, {0.5, 0.25}), 0.0);
  EXPECT_DOUBLE_EQ(fingerprint_divergence({0.5, 0.25}, {0.25, 0.25}), 0.25);
  // A run that dies early diverges by the mass of every unreached window.
  EXPECT_DOUBLE_EQ(fingerprint_divergence({0.5, 0.25, 0.125}, {0.5}), 0.375);
  EXPECT_DOUBLE_EQ(fingerprint_divergence({0.5}, {0.5, 0.25, 0.125}), 0.375);
}

#if PLX_TRACE
TEST(AdaptiveFingerprint, GoldenRetDensityHasWindows) {
  const auto prot = protect_builtin("quickstart");
  const auto fp = golden_ret_density(prot.image, 2'000'000'000ull, 1024);
  ASSERT_FALSE(fp.empty());
  for (double d : fp) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
  // A protected image runs verification chains: some window must see rets.
  EXPECT_GT(*std::max_element(fp.begin(), fp.end()), 0.0);
}
#endif

// --- the full adaptive campaign --------------------------------------------

AdaptiveOptions small_opts(std::uint64_t seed = 0x9a11a) {
  AdaptiveOptions opts;
  opts.seed = seed;
  opts.budget_per_strategy = 24;
  return opts;
}

void expect_same_outcomes(const AdaptiveResult& a, const AdaptiveResult& b) {
  ASSERT_EQ(a.strategies.size(), b.strategies.size());
  for (std::size_t i = 0; i < a.strategies.size(); ++i) {
    const StrategyOutcome& sa = a.strategies[i];
    const StrategyOutcome& sb = b.strategies[i];
    EXPECT_EQ(sa.strategy, sb.strategy);
    ASSERT_EQ(sa.candidates.size(), sb.candidates.size()) << sa.strategy;
    for (std::size_t j = 0; j < sa.candidates.size(); ++j) {
      EXPECT_EQ(sa.candidates[j].addr, sb.candidates[j].addr) << sa.strategy;
      EXPECT_EQ(sa.candidates[j].bytes, sb.candidates[j].bytes) << sa.strategy;
    }
    EXPECT_EQ(sa.stats.detected, sb.stats.detected) << sa.strategy;
    EXPECT_EQ(sa.stats.silent_corruption, sb.stats.silent_corruption);
    EXPECT_EQ(sa.stats.benign, sb.stats.benign);
    EXPECT_EQ(sa.stats.timeout, sb.stats.timeout);
    EXPECT_EQ(sa.counters, sb.counters) << sa.strategy;
  }
}

// The acceptance contract: identical candidate sequence for identical seed.
TEST(AdaptiveCampaign, DeterministicForFixedSeed) {
  const auto prot = protect_builtin("license");
  const auto a =
      run_adaptive(prot.image, prot.protected_ranges, small_opts());
  const auto b =
      run_adaptive(prot.image, prot.protected_ranges, small_opts());
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  expect_same_outcomes(a, b);
}

TEST(AdaptiveCampaign, ShardCountDoesNotChangeResults) {
  const auto prot = protect_builtin("quickstart");
  AdaptiveOptions one = small_opts();
  one.shards = 1;
  AdaptiveOptions many = small_opts();
  many.shards = 64;
  const auto a = run_adaptive(prot.image, prot.protected_ranges, one);
  const auto b = run_adaptive(prot.image, prot.protected_ranges, many);
  ASSERT_TRUE(a.ok);
  expect_same_outcomes(a, b);
}

TEST(AdaptiveCampaign, SeedChangesTheFingerprintSearch) {
  const auto prot = protect_builtin("quickstart");
  const auto a =
      run_adaptive(prot.image, prot.protected_ranges, small_opts(1));
  const auto b =
      run_adaptive(prot.image, prot.protected_ranges, small_opts(2));
  ASSERT_TRUE(a.ok);
  const auto seq = [](const AdaptiveResult& r) {
    std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> s;
    for (const auto& mu : r.strategies.back().candidates) {
      s.emplace_back(mu.addr, mu.bytes);
    }
    return s;
  };
  EXPECT_NE(seq(a), seq(b));
}

TEST(AdaptiveCampaign, NoEscapesOnBuiltinsAndCoherentStats) {
  for (const char* name : {"quickstart", "ptrace"}) {
    const auto prot = protect_builtin(name);
    const auto res =
        run_adaptive(prot.image, prot.protected_ranges, small_opts());
    ASSERT_TRUE(res.ok) << name;
    EXPECT_EQ(res.escape_count(), 0u) << name;
    EXPECT_EQ(res.strategies.size(), 3u);
    EXPECT_GT(res.gadgets_scanned, 0u) << name;
    EXPECT_GT(res.strict_bytes, 0u) << name;
    std::size_t total = 0;
    for (const auto& s : res.strategies) {
      EXPECT_EQ(s.stats.total, s.candidates.size()) << s.strategy;
      EXPECT_EQ(s.stats.total, s.stats.detected + s.stats.silent_corruption +
                                   s.stats.benign + s.stats.timeout)
          << s.strategy;
      EXPECT_LE(s.candidates.size(), small_opts().budget_per_strategy);
      total += s.stats.total;
    }
    EXPECT_EQ(res.total.total, total);
  }
}

TEST(AdaptiveCampaign, PreservingCandidatesAreNeverStrict) {
  const auto prot = protect_builtin("quickstart");
  const auto res =
      run_adaptive(prot.image, prot.protected_ranges, small_opts());
  ASSERT_TRUE(res.ok);
  for (const auto& s : res.strategies) {
    if (s.strategy != "preserve") continue;
    ASSERT_FALSE(s.candidates.empty());
    for (const auto& mu : s.candidates) {
      // By construction a preserving patch avoids every usable gadget byte,
      // and strict bytes are covered gadget bytes.
      EXPECT_FALSE(mu.strict);
    }
  }
}

TEST(AdaptiveCampaign, UnprotectedImageHasNothingStrict) {
  auto mod = assembler::assemble(R"(
.entry _start
_start:
    mov eax, 7
    ret
)");
  ASSERT_TRUE(mod.ok());
  auto laid = img::layout(mod.value());
  ASSERT_TRUE(laid.ok());
  const auto res = run_adaptive(laid.value().image, {}, small_opts());
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.strict_bytes, 0u);
  EXPECT_EQ(res.escape_count(), 0u);
}

// --- report ----------------------------------------------------------------

TEST(AdaptiveReport, WritesWellFormedJson) {
  const auto prot = protect_builtin("quickstart");
  AdaptReport report;
  report.name = "unit";
  report.seed = 0x9a11a;
  report.hardening = "cleartext";
  report.options = small_opts();
  report.result =
      run_adaptive(prot.image, prot.protected_ranges, report.options);
  ASSERT_TRUE(report.result.ok);
  ASSERT_TRUE(write_adapt_json(report, ::testing::TempDir()));

  std::ifstream in(::testing::TempDir() + "/ADAPT_unit.json");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("\"tool\": \"adapt\""), std::string::npos);
  EXPECT_NE(text.find("\"adapt\": \"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"backend\": \"adaptive\""), std::string::npos);
  EXPECT_NE(text.find("\"attribution\""), std::string::npos);
  EXPECT_NE(text.find("\"strategy\": \"fingerprint\""), std::string::npos);
}

// --- Backend X-macro -------------------------------------------------------

TEST(AdaptiveBackend, XMacroRoundTrip) {
  EXPECT_STREQ(fuzz::backend_name(fuzz::Backend::VmTamper), "tamper");
  EXPECT_STREQ(fuzz::backend_name(fuzz::Backend::ImagePatch), "patch");
  EXPECT_STREQ(fuzz::backend_name(fuzz::Backend::Adaptive), "adaptive");
  for (const auto& name : fuzz::backend_names()) {
    const auto parsed = fuzz::backend_from_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(fuzz::backend_name(*parsed), name);
  }
  EXPECT_FALSE(fuzz::backend_from_name("rot13").has_value());
  EXPECT_FALSE(fuzz::backend_from_name("").has_value());
  EXPECT_EQ(fuzz::backend_names().size(), 3u);
}

}  // namespace
}  // namespace plx::attack::adaptive

#include <gtest/gtest.h>

#include "support/buffer.h"
#include "support/hexdump.h"
#include "support/rng.h"

namespace plx {
namespace {

TEST(Buffer, LittleEndianAppend) {
  Buffer b;
  b.put_u8(0x11);
  b.put_u16(0x2233);
  b.put_u32(0x44556677);
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0], 0x11);
  EXPECT_EQ(b[1], 0x33);
  EXPECT_EQ(b[2], 0x22);
  EXPECT_EQ(b[3], 0x77);
  EXPECT_EQ(b[4], 0x66);
  EXPECT_EQ(b[5], 0x55);
  EXPECT_EQ(b[6], 0x44);
}

TEST(Buffer, InPlaceAccess) {
  Buffer b;
  b.resize(8);
  b.set_u32(2, 0xdeadbeef);
  EXPECT_EQ(b.get_u32(2), 0xdeadbeefu);
  b.set_u16(0, 0xcafe);
  EXPECT_EQ(b.get_u16(0), 0xcafeu);
}

TEST(Buffer, StringIsLengthPrefixed) {
  Buffer b;
  b.put_str("abc");
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b.get_u32(0), 3u);
  EXPECT_EQ(b[4], 'a');
}

TEST(ByteReader, ReadsSequentially) {
  Buffer b;
  b.put_u32(42);
  b.put_str("xy");
  ByteReader r(b.span());
  EXPECT_EQ(r.get_u32(), 42u);
  EXPECT_EQ(r.get_str(), "xy");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, OverrunSetsNotOk) {
  Buffer b;
  b.put_u8(1);
  ByteReader r(b.span());
  (void)r.get_u32();
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, CorruptStringLengthSetsNotOk) {
  Buffer b;
  b.put_u32(1000);  // claims 1000 bytes follow
  ByteReader r(b.span());
  (void)r.get_str();
  EXPECT_FALSE(r.ok());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Hexdump, FormatsBytes) {
  const std::uint8_t data[] = {0x55, 0x89, 0xe5};
  EXPECT_EQ(hexbytes(data), "55 89 e5");
  const std::string dump = hexdump(data, 0x1000);
  EXPECT_NE(dump.find("00001000"), std::string::npos);
  EXPECT_NE(dump.find("55 89 e5"), std::string::npos);
}

}  // namespace
}  // namespace plx

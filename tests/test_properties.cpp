// Differential property tests over randomly generated programs.
//
// The deepest invariant in this system is semantic equivalence between the
// two backends fed by the same IR: a function compiled to native x86 and the
// same function translated to a ROP chain must agree on every input — that
// is what makes chains *verification code* rather than checksums. These
// tests generate random mini-C functions (expressions, branches, loops) and
// check native-vs-chain agreement, plus tamper sensitivity, across seeds.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cc/compile.h"
#include "image/layout.h"
#include "parallax/protector.h"
#include "support/rng.h"
#include "isa/x86/machine.h"

namespace plx {
namespace {

// --- random mini-C function generator -------------------------------------
class ProgramGen {
 public:
  explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

  // Generates `int f(int a, int b) { ... }` with straight-line arithmetic,
  // if/else and bounded loops. Division is excluded (no chain lowering);
  // shift counts are masked; everything is wrap-around-safe by construction.
  std::string function() {
    std::string body;
    const int vars = 2 + static_cast<int>(rng_.below(3));
    for (int v = 0; v < vars; ++v) {
      body += "  int v" + std::to_string(v) + " = " + expr(2) + ";\n";
    }
    const int stmts = 2 + static_cast<int>(rng_.below(4));
    for (int s = 0; s < stmts; ++s) {
      body += statement(vars, 2);
    }
    body += "  return (" + var(vars) + " ^ " + var(vars) + ") + " + var(vars) + ";\n";
    return "int f(int a, int b) {\n" + body + "}\n";
  }

 private:
  Rng rng_;
  int loop_counter_ = 0;

  std::string var(int vars) {
    const int pick = static_cast<int>(rng_.below(static_cast<std::uint32_t>(vars + 2)));
    if (pick == vars) return "a";
    if (pick == vars + 1) return "b";
    return "v" + std::to_string(pick);
  }

  std::string expr(int depth) {
    if (depth == 0 || rng_.chance(0.3)) {
      if (rng_.chance(0.5)) return std::to_string(rng_.range(-1000, 1000));
      return "a";  // parameters always exist at expression time
    }
    static const char* ops[] = {"+", "-", "*", "&", "|", "^"};
    const char* op = ops[rng_.below(6)];
    std::string lhs = expr(depth - 1);
    std::string rhs = expr(depth - 1);
    if (rng_.chance(0.2)) {
      // Shift with a masked count to keep semantics well-defined.
      return "((" + lhs + ") << ((" + rhs + ") & 7))";
    }
    return "((" + lhs + ") " + op + " (" + rhs + "))";
  }

  std::string statement(int vars, int depth) {
    const std::string target = var(vars);
    if (depth > 0 && rng_.chance(0.25)) {
      // Bounded loop: fixed trip count so chains always terminate.
      const std::string iv = "ivar" + std::to_string(loop_counter_++);
      const int trips = 1 + static_cast<int>(rng_.below(6));
      std::string inner = statement(vars, depth - 1);
      return "  for (int " + iv + " = 0; " + iv + " < " + std::to_string(trips) +
             "; " + iv + "++) {\n  " + inner + "  }\n";
    }
    if (depth > 0 && rng_.chance(0.3)) {
      std::string then_stmt = statement(vars, depth - 1);
      std::string else_stmt = statement(vars, depth - 1);
      return "  if ((" + expr(1) + ") " + (rng_.chance(0.5) ? "<" : ">") + " (" +
             expr(1) + ")) {\n  " + then_stmt + "  } else {\n  " + else_stmt + "  }\n";
    }
    return "  " + target + " = " + expr(2) + ";\n";
  }
};

std::string gen_function(std::uint64_t seed) {
  return ProgramGen(seed).function();
}

std::string full_program(const std::string& f) {
  return f + R"(
int main() {
  int acc = 0;
  for (int i = 0; i < 6; i++) {
    acc = acc + f(i * 37 - 50, acc ^ (i << 4));
    acc = acc & 0xffffff;
  }
  return acc & 0xff;
}
)";
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144,
                                           233, 377, 610, 987));

TEST_P(RandomPrograms, ChainAgreesWithNative) {
  const std::string src = full_program(gen_function(GetParam()));
  auto compiled = cc::compile(src);
  ASSERT_TRUE(compiled.ok()) << compiled.error() << "\nsource:\n" << src;

  auto plain = parallax::layout_plain(compiled.value());
  ASSERT_TRUE(plain.ok()) << plain.error();
  x86::Machine ref(plain.value());
  const auto ref_run = ref.run(100'000'000);
  ASSERT_EQ(ref_run.reason, vm::StopReason::Exited) << ref_run.fault;

  parallax::ProtectOptions opts;
  opts.verify_functions = {"f"};
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  ASSERT_TRUE(prot.ok()) << prot.error() << "\nsource:\n" << src;

  x86::Machine m(prot.value().image);
  const auto run = m.run(400'000'000);
  ASSERT_EQ(run.reason, vm::StopReason::Exited) << run.fault << "\nsource:\n" << src;
  EXPECT_EQ(run.exit_code, ref_run.exit_code) << "source:\n" << src;
}

// Aggregated across seeds: a per-seed universal bound would be false — a
// random program can route every sampled ALU slot into dead variables or
// identity data (§VIII-C conditions 2/3), as seeds 377/987 demonstrate.
TEST(RandomProgramsAggregate, ComputationalGadgetTamperBreaksChains) {
  int agg_tested = 0, agg_detected = 0;
  for (std::uint64_t seed : {1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987}) {
    const std::string src = full_program(gen_function(seed));
    auto compiled = cc::compile(src);
  ASSERT_TRUE(compiled.ok());
  auto plain = parallax::layout_plain(compiled.value());
  ASSERT_TRUE(plain.ok());
  x86::Machine ref(plain.value());
  const auto ref_run = ref.run(100'000'000);
  ASSERT_EQ(ref_run.reason, vm::StopReason::Exited);

  parallax::ProtectOptions opts;
  opts.verify_functions = {"f"};
  opts.weave_overlapping = false;
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  ASSERT_TRUE(prot.ok()) << prot.error();

  // Find the ALU slots the chain actually *executes* on this input (random
  // programs contain branches whose gadgets may be dead for these calls).
  const auto& chain = prot.value().chains.at("f");
  std::set<std::uint32_t> executed;
  {
    x86::Machine probe(prot.value().image);
    probe.pre_insn_hook = [&](std::uint32_t eip) { executed.insert(eip); };
    ASSERT_EQ(probe.run(100'000'000).reason, vm::StopReason::Exited);
  }

  int tested = 0, detected = 0;
  for (std::size_t i = 0; i < chain.gadget_slots.size() && tested < 6; ++i) {
    const auto t = chain.gadget_slots[i].type;
    if (t != gadget::GType::AddRegReg && t != gadget::GType::SubRegReg &&
        t != gadget::GType::XorRegReg) {
      continue;
    }
    if (!executed.contains(chain.gadget_addrs[i])) continue;
    ++tested;
    x86::Machine m(prot.value().image);
    bool ok = true;
    const std::uint32_t victim = chain.gadget_addrs[i];
    const std::uint8_t orig = m.read_u8(victim, ok);
    m.tamper(victim, orig ^ 0x28);  // add<->sub opcode distance
    // Tight budget: a corrupted chain may loop; the pristine run finishes in
    // well under a million instructions.
    auto r = m.run(20'000'000);
    if (r.reason != vm::StopReason::Exited || r.exit_code != ref_run.exit_code) {
      ++detected;
    }
  }
    agg_tested += tested;
    agg_detected += detected;
  }
  ASSERT_GT(agg_tested, 20);
  // Across the corpus of random programs, a solid majority of computational
  // gadget flips must break the program.
  EXPECT_GE(agg_detected * 10, agg_tested * 6)
      << agg_detected << "/" << agg_tested;
}

TEST_P(RandomPrograms, AllHardeningModesAgree) {
  const std::string src = full_program(gen_function(GetParam()));
  auto compiled = cc::compile(src);
  ASSERT_TRUE(compiled.ok());
  auto plain = parallax::layout_plain(compiled.value());
  ASSERT_TRUE(plain.ok());
  x86::Machine ref(plain.value());
  const auto expect = ref.run(100'000'000).exit_code;

  for (auto mode : {parallax::Hardening::Xor, parallax::Hardening::Probabilistic}) {
    parallax::ProtectOptions opts;
    opts.verify_functions = {"f"};
    opts.hardening = mode;
    parallax::Protector p;
    auto prot = p.protect(compiled.value(), opts);
    ASSERT_TRUE(prot.ok()) << prot.error();
    x86::Machine m(prot.value().image);
    const auto run = m.run(400'000'000);
    ASSERT_EQ(run.reason, vm::StopReason::Exited)
        << verify::hardening_name(mode) << ": " << run.fault;
    EXPECT_EQ(run.exit_code, expect) << verify::hardening_name(mode);
  }
}

// --- image round-trip property over the corpus -----------------------------
TEST(Properties, SerializedImagesRunIdentically) {
  const char* src = R"(
int f(int a) { return (a * 17) ^ (a >> 2); }
int main() {
  int acc = 0;
  for (int i = 0; i < 10; i++) acc = acc + f(i);
  return acc & 0xff;
}
)";
  auto compiled = cc::compile(src);
  ASSERT_TRUE(compiled.ok());
  parallax::ProtectOptions opts;
  opts.verify_functions = {"f"};
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  ASSERT_TRUE(prot.ok());

  const Buffer blob = prot.value().image.serialize();
  auto back = img::Image::deserialize(blob.span());
  ASSERT_TRUE(back.ok()) << back.error();

  x86::Machine m1(prot.value().image), m2(back.value());
  const auto r1 = m1.run(100'000'000);
  const auto r2 = m2.run(100'000'000);
  EXPECT_EQ(r1.exit_code, r2.exit_code);
  EXPECT_EQ(r1.cycles, r2.cycles);
}

}  // namespace
}  // namespace plx

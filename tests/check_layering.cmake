# Include-layering lint for the ISA seam (DESIGN.md §15).
#
# The generic layers must consume backends only through the isa:: interfaces;
# a direct include of a backend header from any of them is a layering break.
# Invoked at build time from src/CMakeLists.txt:
#   cmake -DPLX_SRC_DIR=<src dir> -P tests/check_layering.cmake
#
# Layers deliberately NOT linted: image/ (img::Item carries backend
# instructions by design), cc/, verify/ and asm/ (x86-emitting layers that a
# second code-generation backend would port separately).

if(NOT PLX_SRC_DIR)
  message(FATAL_ERROR "check_layering.cmake requires -DPLX_SRC_DIR=<src dir>")
endif()

set(_plx_generic_dirs
  gadget
  rewrite
  ropc
  parallax
  fuzz
  attack
  vm
  telemetry
)

# Forbidden include spellings of backend headers.
set(_plx_banned_patterns
  "#include \"x86/"
  "#include \"isa/x86/"
  "#include \"isa/rv32/"
  "cc/backend_x86"
)

set(_plx_violations "")
foreach(_dir IN LISTS _plx_generic_dirs)
  file(GLOB_RECURSE _files
       "${PLX_SRC_DIR}/${_dir}/*.h" "${PLX_SRC_DIR}/${_dir}/*.cpp")
  foreach(_file IN LISTS _files)
    file(STRINGS "${_file}" _lines)
    set(_lineno 0)
    foreach(_line IN LISTS _lines)
      math(EXPR _lineno "${_lineno} + 1")
      foreach(_pattern IN LISTS _plx_banned_patterns)
        string(FIND "${_line}" "${_pattern}" _hit)
        if(NOT _hit EQUAL -1)
          file(RELATIVE_PATH _rel "${PLX_SRC_DIR}" "${_file}")
          list(APPEND _plx_violations
               "  ${_rel}:${_lineno}: ${_line}")
        endif()
      endforeach()
    endforeach()
  endforeach()
endforeach()

if(_plx_violations)
  list(JOIN _plx_violations "\n" _report)
  message(FATAL_ERROR
    "ISA layering violation: generic layers must not include backend headers "
    "(use the isa:: seam — see DESIGN.md §15):\n${_report}")
endif()

#include <gtest/gtest.h>

#include <string>

#include "crypto/rc4.h"
#include "crypto/xorstream.h"

namespace plx::crypto {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Rc4, KnownTestVectorKey) {
  // RFC 6229 / classic test vector: key "Key", plaintext "Plaintext" =>
  // ciphertext BBF316E8D940AF0AD3.
  const auto key = bytes("Key");
  const auto pt = bytes("Plaintext");
  const auto ct = rc4_crypt(key, pt);
  const std::vector<std::uint8_t> expect = {0xbb, 0xf3, 0x16, 0xe8, 0xd9,
                                            0x40, 0xaf, 0x0a, 0xd3};
  EXPECT_EQ(ct, expect);
}

TEST(Rc4, KnownTestVectorWiki) {
  // Key "Wiki", plaintext "pedia" => 1021BF0420.
  const auto ct = rc4_crypt(bytes("Wiki"), bytes("pedia"));
  const std::vector<std::uint8_t> expect = {0x10, 0x21, 0xbf, 0x04, 0x20};
  EXPECT_EQ(ct, expect);
}

TEST(Rc4, EncryptDecryptRoundtrips) {
  const auto key = bytes("chain-key-123");
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  const auto ct = rc4_crypt(key, data);
  EXPECT_NE(ct, data);
  EXPECT_EQ(rc4_crypt(key, ct), data);
}

TEST(Rc4, DifferentKeysDiffer) {
  const auto pt = bytes("the quick brown fox");
  EXPECT_NE(rc4_crypt(bytes("k1"), pt), rc4_crypt(bytes("k2"), pt));
}

TEST(XorStream, Involution) {
  const auto key = bytes("\x5a\xa5\x3c");
  std::vector<std::uint8_t> data(257);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  auto ct = xor_crypt(key, data);
  EXPECT_NE(ct, data);
  EXPECT_EQ(xor_crypt(key, ct), data);
}

TEST(XorStream, KeyRepeats) {
  const std::vector<std::uint8_t> key = {0xff};
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0x02};
  const auto ct = xor_crypt(key, data);
  EXPECT_EQ(ct, (std::vector<std::uint8_t>{0xff, 0xfe, 0xfd}));
}

}  // namespace
}  // namespace plx::crypto

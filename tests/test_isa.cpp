// Focused ISA semantics tests for the VM interpreter — the trust anchor
// under every other result. Table-driven: each case is an assembly body
// that computes a value into eax and returns; the expected value is
// computed by the (host) C++ semantics of the same operation.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "image/layout.h"
#include "isa/x86/machine.h"

namespace plx::vm {
namespace {

using Machine = x86::Machine;

std::uint32_t run_asm(const std::string& body, bool* faulted = nullptr) {
  const std::string src = ".entry f\nf:\n" + body + "    ret\n";
  auto mod = assembler::assemble(src);
  EXPECT_TRUE(mod.ok()) << (mod.ok() ? "" : mod.error()) << "\n" << src;
  auto laid = img::layout(mod.value());
  EXPECT_TRUE(laid.ok()) << (laid.ok() ? "" : laid.error());
  Machine m(laid.value().image);
  auto r = m.run(1'000'000);
  if (faulted) {
    *faulted = r.reason == StopReason::Fault;
    return 0;
  }
  EXPECT_EQ(r.reason, StopReason::Exited) << r.fault << "\n" << src;
  return static_cast<std::uint32_t>(r.exit_code);
}

struct Case {
  const char* name;
  const char* body;
  std::uint32_t expect;
};

class IsaTable : public ::testing::TestWithParam<Case> {};

const Case kCases[] = {
    // --- byte-register aliasing ---------------------------------------------
    {"ah_writes_bits_8_15",
     "    mov eax, 0x11223344\n    mov ah, 0xab\n", 0x1122ab44},
    {"al_writes_low_byte",
     "    mov eax, 0x11223344\n    mov al, 0xcd\n", 0x112233cd},
    {"ch_aliases_ecx_high_byte",
     "    mov ecx, 0\n    mov ch, 0x7f\n    mov eax, ecx\n", 0x7f00},
    {"byte_add_carries_within_byte",
     "    mov eax, 0x10f0\n    add al, 0x20\n", 0x1010},
    // --- word ops -------------------------------------------------------------
    {"movzx_word", "    mov ecx, 0xffff8001\n    movzx eax, cx\n", 0x8001},
    {"movsx_word", "    mov ecx, 0x8001\n    movsx eax, cx\n", 0xffff8001},
    {"movsx_byte", "    mov cl, 0x80\n    movsx eax, cl\n", 0xffffff80},
    // --- flags: carry / overflow / sign -------------------------------------
    {"adc_chains_carry",
     "    mov eax, 0xffffffff\n    add eax, 2\n    mov eax, 0\n    adc eax, 0\n", 1},
    {"sbb_borrows",
     "    mov eax, 1\n    sub eax, 2\n    mov eax, 10\n    sbb eax, 0\n", 9},
    {"neg_sets_carry_for_nonzero",
     "    mov eax, 5\n    neg eax\n    mov eax, 0\n    adc eax, 0\n", 1},
    {"neg_clears_carry_for_zero",
     "    mov eax, 0\n    neg eax\n    mov eax, 0\n    adc eax, 0\n", 0},
    {"inc_preserves_carry",
     "    mov eax, 0xffffffff\n    add eax, 1\n    mov ecx, 7\n    inc ecx\n"
     "    mov eax, 0\n    adc eax, 0\n", 1},
    {"cmp_signed_overflow_jl",
     // INT_MIN < 1 signed: jl taken even though SF=0 after overflow.
     "    mov eax, 0x80000000\n    cmp eax, 1\n    jl .yes\n    mov eax, 0\n"
     "    ret\n.yes:\n    mov eax, 1\n", 1},
    {"test_clears_carry",
     "    mov eax, 0xffffffff\n    add eax, 1\n    test eax, eax\n"
     "    mov eax, 0\n    adc eax, 0\n", 0},
    // --- shifts and rotates ---------------------------------------------------
    {"shl_count_zero_keeps_flags",
     "    mov eax, 0xffffffff\n    add eax, 1\n    mov ecx, 0\n    mov edx, 1\n"
     "    shl edx, cl\n    mov eax, 0\n    adc eax, 0\n", 1},
    {"shr_carry_is_last_bit_out",
     "    mov eax, 3\n    shr eax, 1\n    mov edx, 0\n    adc edx, 0\n"
     "    mov eax, edx\n", 1},
    {"sar_arithmetic", "    mov eax, 0x80000000\n    sar eax, 31\n", 0xffffffff},
    {"shift_count_masked_to_31",
     "    mov eax, 2\n    mov ecx, 33\n    shl eax, cl\n", 4},
    {"rol_rotates", "    mov eax, 0x80000001\n    rol eax, 1\n", 0x3},
    {"ror_rotates", "    mov eax, 0x80000001\n    ror eax, 1\n", 0xc0000000},
    // --- mul/div families -------------------------------------------------
    {"mul_sets_edx_high",
     "    mov eax, 0x10000\n    mov ecx, 0x10000\n    mul ecx\n    mov eax, edx\n", 1},
    {"imul_one_op_signed",
     "    mov eax, -4\n    mov ecx, 3\n    imul ecx\n", static_cast<std::uint32_t>(-12)},
    {"imul_three_op", "    mov ecx, 7\n    imul eax, ecx, -3\n",
     static_cast<std::uint32_t>(-21)},
    {"div_quotient_remainder",
     "    mov edx, 0\n    mov eax, 17\n    mov ecx, 5\n    div ecx\n"
     "    shl edx, 8\n    or eax, edx\n", 0x203},
    {"idiv_negative",
     "    mov eax, -17\n    cdq\n    mov ecx, 5\n    idiv ecx\n",
     static_cast<std::uint32_t>(-3)},
    {"cdq_sign_extends", "    mov eax, -1\n    cdq\n    mov eax, edx\n", 0xffffffff},
    // --- xchg / lea -----------------------------------------------------------
    {"xchg_swaps", "    mov eax, 1\n    mov ecx, 2\n    xchg eax, ecx\n", 2},
    {"lea_computes",
     "    mov ecx, 10\n    mov edx, 3\n    lea eax, [ecx+edx*4+5]\n", 27},
    // --- stack ------------------------------------------------------------
    {"push_imm_sign_extends",
     "    push -1\n    pop eax\n", 0xffffffff},
    {"pushfd_popfd_roundtrip",
     "    mov eax, 0xffffffff\n    add eax, 1\n    pushfd\n    mov ecx, 100\n"
     "    add ecx, ecx\n    popfd\n    mov eax, 0\n    adc eax, 0\n", 1},
    {"ret_imm_pops_args",
     "    push 11\n    push 22\n    call .g\n    ret\n.g:\n    mov eax, [esp+4]\n"
     "    ret 8\n", 22},
    // --- setcc family -----------------------------------------------------
    {"setcc_all_conditions",
     "    mov eax, 0\n    mov ecx, 5\n    cmp ecx, 5\n    sete al\n"
     "    mov edx, 0\n    cmp ecx, 6\n    setl dl\n    add eax, edx\n"
     "    mov edx, 0\n    cmp ecx, 4\n    setg dl\n    add eax, edx\n"
     "    mov edx, 0\n    cmp ecx, 5\n    setae dl\n    add eax, edx\n", 4},
    {"setcc_unsigned_vs_signed",
     "    mov ecx, -1\n    cmp ecx, 1\n    mov eax, 0\n    seta al\n"
     "    mov edx, 0\n    setg dl\n    shl eax, 1\n    or eax, edx\n", 2},
    // --- not/neg flags --------------------------------------------------------
    {"not_preserves_flags",
     "    mov eax, 0xffffffff\n    add eax, 1\n    mov ecx, 0x0f\n    not ecx\n"
     "    mov eax, 0\n    adc eax, 0\n", 1},
};

TEST_P(IsaTable, ComputesExpectedValue) {
  const Case& c = GetParam();
  EXPECT_EQ(run_asm(c.body), c.expect) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Semantics, IsaTable, ::testing::ValuesIn(kCases),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(IsaFaults, DivideOverflowFaults) {
  bool faulted = false;
  run_asm("    mov edx, 1\n    mov eax, 0\n    mov ecx, 1\n    div ecx\n", &faulted);
  EXPECT_TRUE(faulted) << "quotient overflow must fault";
}

TEST(IsaFaults, IdivIntMinByMinusOneFaults) {
  bool faulted = false;
  run_asm("    mov eax, 0x80000000\n    cdq\n    mov ecx, -1\n    idiv ecx\n",
          &faulted);
  EXPECT_TRUE(faulted);
}

TEST(IsaFaults, Int3Faults) {
  bool faulted = false;
  run_asm("    int3\n", &faulted);
  EXPECT_TRUE(faulted);
}

TEST(IsaFaults, UnmappedReadFaults) {
  bool faulted = false;
  run_asm("    mov eax, 0x100\n    mov eax, [eax]\n", &faulted);
  EXPECT_TRUE(faulted);
}

}  // namespace
}  // namespace plx::vm

// µ-chain (§V-C) tests: instruction-level verification computes the same
// results, detects tampering, and costs roughly 2x a function chain.
#include <gtest/gtest.h>

#include "cc/compile.h"
#include "image/layout.h"
#include "parallax/protector.h"
#include "verify/microchain.h"
#include "isa/x86/machine.h"

namespace plx::verify {
namespace {

const char* kProgram = R"(
int mix(int a, int b) {
  int r = (a + b) ^ (a << 3);
  r = r - (b >> 2);
  if (r < 0) r = -r;
  return r;
}
int main() {
  int acc = 0;
  for (int i = 0; i < 15; i++) {
    acc = acc + mix(i, acc & 255);
    acc = acc & 0xfffff;
  }
  return acc & 0xff;
}
)";

std::int32_t reference_exit() {
  auto compiled = cc::compile(kProgram);
  EXPECT_TRUE(compiled.ok());
  auto laid = img::layout(compiled.value().module);
  EXPECT_TRUE(laid.ok());
  x86::Machine m(laid.value().image);
  return m.run().exit_code;
}

TEST(Microchain, ComputesSameResult) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  auto prot = protect_microchains(compiled.value(), "mix");
  ASSERT_TRUE(prot.ok()) << prot.error();
  EXPECT_GT(prot.value().num_microchains, 3);
  x86::Machine m(prot.value().image);
  auto r = m.run(400'000'000);
  ASSERT_EQ(r.reason, vm::StopReason::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, reference_exit());
}

TEST(Microchain, DetectsGadgetTamper) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  auto prot = protect_microchains(compiled.value(), "mix");
  ASSERT_TRUE(prot.ok()) << prot.error();
  ASSERT_FALSE(prot.value().used_gadget_addrs.empty());

  x86::Machine m(prot.value().image);
  const std::uint32_t victim = prot.value().used_gadget_addrs[0];
  bool ok = true;
  const std::uint8_t orig = m.read_u8(victim, ok);
  m.tamper(victim, orig ^ 0x28);
  auto r = m.run(400'000'000);
  const bool detected =
      r.reason != vm::StopReason::Exited || r.exit_code != reference_exit();
  EXPECT_TRUE(detected);
}

TEST(Microchain, CostsMoreThanFunctionChain) {
  // §V-C: per-op prologues/epilogues make µ-chains ~2x function chains.
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());

  parallax::ProtectOptions fopts;
  fopts.verify_functions = {"mix"};
  fopts.weave_overlapping = false;  // same machinery in both variants
  parallax::Protector p;
  auto fchain = p.protect(compiled.value(), fopts);
  ASSERT_TRUE(fchain.ok()) << fchain.error();

  auto uchain = protect_microchains(compiled.value(), "mix");
  ASSERT_TRUE(uchain.ok()) << uchain.error();

  x86::Machine mf(fchain.value().image);
  auto rf = mf.run(500'000'000);
  x86::Machine mu(uchain.value().image);
  auto ru = mu.run(500'000'000);
  ASSERT_EQ(rf.reason, vm::StopReason::Exited);
  ASSERT_EQ(ru.reason, vm::StopReason::Exited);
  ASSERT_EQ(rf.exit_code, ru.exit_code);
  EXPECT_GT(ru.cycles, rf.cycles) << "microchains should cost more";
}

}  // namespace
}  // namespace plx::verify

// Attack-resistance tests (§VI): the attacker toolkit vs Parallax.
#include <gtest/gtest.h>

#include "attack/patcher.h"
#include "attack/wurster.h"
#include "cc/compile.h"
#include "image/layout.h"
#include "parallax/protector.h"
#include "isa/x86/machine.h"

namespace plx::attack {
namespace {

// A license-check program in the style the paper's threat model targets: an
// adversary wants check_license to always succeed.
const char* kLicensed = R"(
int last_hash = 0;
int mix(int a, int b) {
  int r = (a << 3) ^ b;
  r = r + (a & b);
  if (r < 0) r = -r;
  return r;
}
int check_license(int key) {
  int h = 17;
  for (int i = 0; i < 8; i++) {
    h = mix(h, key + i);
  }
  last_hash = h;
  if (h != 0x4d2) {
    return 0;           // invalid
  }
  return 1;             // valid
}
int main() {
  // Key 999 is NOT valid: the denied exit code carries the hash, so the
  // program's output is sensitive to mix()'s integrity.
  if (check_license(999)) {
    return 42;          // unlocked
  }
  return last_hash & 0x3f;  // denied
}
)";

std::int32_t licensed_reference() {
  static std::int32_t cached = -1;
  if (cached >= 0) return cached;
  auto compiled = cc::compile(kLicensed);
  EXPECT_TRUE(compiled.ok());
  auto laid = img::layout(compiled.value().module);
  EXPECT_TRUE(laid.ok());
  x86::Machine m(laid.value().image);
  auto r = m.run();
  EXPECT_EQ(r.reason, vm::StopReason::Exited);
  EXPECT_NE(r.exit_code, 42);
  cached = r.exit_code;
  return cached;
}

parallax::Protected protect_licensed() {
  auto compiled = cc::compile(kLicensed);
  EXPECT_TRUE(compiled.ok()) << compiled.error();
  parallax::ProtectOptions opts;
  opts.verify_functions = {"mix"};
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  EXPECT_TRUE(prot.ok()) << prot.error();
  return std::move(prot).take();
}

TEST(Patcher, JccRewritesPreserveLength) {
  auto compiled = cc::compile(kLicensed);
  ASSERT_TRUE(compiled.ok());
  auto laid = img::layout(compiled.value().module);
  ASSERT_TRUE(laid.ok());
  img::Image image = laid.value().image;

  // Unprotected: the classic crack works. main's first je guards the
  // "unlocked" branch; nopping it means the check result is ignored.
  auto jcc = find_jcc(image, "main", x86::condid(x86::Cond::E));
  ASSERT_TRUE(jcc) << "expected a je in main";
  ASSERT_TRUE(nop_jcc(image, *jcc));
  x86::Machine m(image);
  auto r = m.run();
  ASSERT_EQ(r.reason, vm::StopReason::Exited);
  EXPECT_EQ(r.exit_code, 42) << "unprotected binary should crack cleanly";
}

TEST(Patcher, MakeUnconditionalKeepsTarget) {
  auto compiled = cc::compile(kLicensed);
  ASSERT_TRUE(compiled.ok());
  auto laid = img::layout(compiled.value().module);
  ASSERT_TRUE(laid.ok());
  img::Image image = laid.value().image;
  auto jcc = find_jcc(image, "main", x86::condid(x86::Cond::E));
  ASSERT_TRUE(jcc);
  EXPECT_TRUE(make_jcc_unconditional(image, *jcc));
  // The patched site decodes as nop + jmp with the same end address.
  const auto bytes = image.read(*jcc, 2);
  EXPECT_EQ(bytes[0], 0x90);
  EXPECT_EQ(bytes[1], 0xe9);
}

TEST(Attacks, CrackingProtectedBinaryBreaksIt) {
  // With Parallax protecting `mix` (the chain runs through gadgets spread
  // over the binary), the same crack now has to avoid every gadget byte.
  auto prot = protect_licensed();

  // Sanity: protected binary still denies the bad key.
  {
    x86::Machine m(prot.image);
    auto r = m.run(200'000'000);
    ASSERT_EQ(r.reason, vm::StopReason::Exited) << r.fault;
    ASSERT_EQ(r.exit_code, licensed_reference());
  }

  // The crack targets main's guard branch. Parallax protects main too (its
  // bytes host chain gadgets when overlapping ones were preferred/woven).
  img::Image cracked = prot.image;
  std::set<std::uint32_t> used(prot.used_gadget_addrs.begin(),
                               prot.used_gadget_addrs.end());
  bool overlaps_gadget = false;
  auto jcc = find_jcc(cracked, "main", x86::condid(x86::Cond::E));
  ASSERT_TRUE(jcc);
  ASSERT_TRUE(nop_jcc(cracked, *jcc));
  for (std::uint32_t a : used) {
    if (a >= *jcc && a < *jcc + 6) overlaps_gadget = true;
  }

  x86::Machine m(cracked);
  auto r = m.run(200'000'000);
  const bool unlocked = r.reason == vm::StopReason::Exited && r.exit_code == 42;
  if (overlaps_gadget) {
    // The patch destroyed a gadget the chain uses: the crack must fail.
    EXPECT_FALSE(unlocked);
  } else {
    // The patch may have missed every gadget; the meaningful assertion in
    // that case is made by the full-coverage test below.
    SUCCEED();
  }
}

TEST(Attacks, TamperingAnyUsedGadgetByteIsDetected) {
  auto prot = protect_licensed();
  int broke = 0, total = 0;
  for (std::uint32_t addr : prot.used_gadget_addrs) {
    img::Image patched = prot.image;
    std::uint8_t orig = patched.read(addr, 1)[0];
    ASSERT_TRUE(patch_bytes(patched, addr, std::vector<std::uint8_t>{static_cast<std::uint8_t>(orig ^ 0x21)}));
    x86::Machine m(patched);
    auto r = m.run(200'000'000);
    ++total;
    if (r.reason != vm::StopReason::Exited || r.exit_code != licensed_reference()) {
      ++broke;
    }
  }
  // Most flips must be noticed. Flips that produce a semantically equivalent
  // or chain-transparent gadget survive — §VIII-C explicitly lists this as
  // the attacker's narrow escape hatch, and woven verification NOPs are the
  // most tolerant slots — so the bound is a majority, not near-certainty.
  EXPECT_GE(broke * 10, total * 6) << broke << "/" << total;
}

TEST(Attacks, WursterAttackDoesNotFoolParallax) {
  // Fetch-view-only tampering of a used gadget: checksumming would pass
  // (nothing reads code), but the chain executes the tampered bytes.
  auto prot = protect_licensed();
  ASSERT_FALSE(prot.used_gadget_addrs.empty());
  // Pick a computational slot: flipping its opcode provably changes what the
  // chain computes (a transparent slot could degrade into another no-op).
  const auto& chain = prot.chains.at("mix");
  std::uint32_t victim = 0;
  for (std::size_t i = 0; i < chain.gadget_slots.size(); ++i) {
    const auto t = chain.gadget_slots[i].type;
    if (t == gadget::GType::AddRegReg || t == gadget::GType::SubRegReg ||
        t == gadget::GType::XorRegReg) {
      victim = chain.gadget_addrs[i];
      break;
    }
  }
  ASSERT_NE(victim, 0u);

  x86::Machine m(prot.image);
  bool ok = true;
  const std::uint8_t orig = m.read_u8(victim, ok);
  m.tamper_icache(victim, orig ^ 0x28);  // add<->sub style opcode flip
  auto r = m.run(200'000'000);
  const bool detected =
      r.reason != vm::StopReason::Exited || r.exit_code != licensed_reference();
  EXPECT_TRUE(detected) << "icache-only tamper of a used gadget went unnoticed";
}

TEST(Attacks, CodeRestorationEvadesDetectionOnce) {
  // §VI-A: restore attacks work between chain executions — Parallax only
  // complicates them (repeated verification), it cannot prevent them. This
  // test documents the honest limitation: tampering applied and reverted
  // while no chain runs is not detected.
  auto prot = protect_licensed();
  x86::Machine m(prot.image);
  bool ok = true;
  const std::uint32_t victim = prot.used_gadget_addrs[0];
  const std::uint8_t orig = m.read_u8(victim, ok);
  // Tamper BEFORE the program starts, then restore immediately — no chain
  // observed the modification.
  m.tamper(victim, orig ^ 0x21);
  m.tamper(victim, orig);
  auto r = m.run(200'000'000);
  EXPECT_TRUE(r.exited_ok(licensed_reference())) << "restored code must behave normally";
}

}  // namespace
}  // namespace plx::attack

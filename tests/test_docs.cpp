// Generated documentation stays in sync with the source of truth:
// README.md's Diag reference table is rendered from PLX_DIAG_CODE_LIST
// (support/error.h) and EXPERIMENTS.md embeds the plxreport marker blocks
// the perf_gate label regenerates. Compiled with PLX_SOURCE_DIR pointing at
// the repository root (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "support/error.h"
#include "support/file_io.h"
#include "telemetry/report_md.h"

namespace {

using namespace plx;

std::string read_doc(const char* name) {
  auto text = support::read_text_file(std::string(PLX_SOURCE_DIR) + "/" + name);
  EXPECT_TRUE(text.ok()) << name << ": " << text.error().str();
  return text.ok() ? text.value() : std::string();
}

TEST(Docs, DiagCodeNamesUniqueAndDescribed) {
  std::set<std::string> names, enums;
  for (DiagCode c : kAllDiagCodes) {
    const std::string name = diag_code_name(c);
    const std::string enum_name = diag_code_enum_name(c);
    EXPECT_FALSE(name.empty());
    EXPECT_FALSE(enum_name.empty());
    EXPECT_FALSE(std::string(diag_code_description(c)).empty()) << name;
    EXPECT_TRUE(names.insert(name).second) << "duplicate code " << name;
    EXPECT_TRUE(enums.insert(enum_name).second)
        << "duplicate enumerator " << enum_name;
  }
  EXPECT_EQ(names.size(), kDiagCodeCount);
}

TEST(Docs, DiagTableListsEveryCode) {
  const std::string table = telemetry::render_diag_table();
  for (DiagCode c : kAllDiagCodes) {
    EXPECT_NE(table.find("| `" + std::string(diag_code_name(c)) + "` |"),
              std::string::npos)
        << diag_code_name(c);
    EXPECT_NE(
        table.find("`DiagCode::" + std::string(diag_code_enum_name(c)) + "`"),
        std::string::npos)
        << diag_code_enum_name(c);
  }
}

// README.md embeds the generated table byte-for-byte; regenerating is
// `plxreport diag --update README.md`.
TEST(Docs, ReadmeDiagTableInSync) {
  const std::string readme = read_doc("README.md");
  ASSERT_FALSE(readme.empty());
  std::string error;
  const auto stale = telemetry::stale_blocks(
      readme, {{"diag-codes", telemetry::render_diag_table()}}, error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_TRUE(stale.empty())
      << "README.md diag-codes table is out of date; regenerate with "
         "`plxreport diag --update README.md`";
}

// The measured-table markers perf_gate checks must all be present and
// well-formed. (Their *content* is checked against live artifacts by the
// perf_gate_experiments ctest, which has the measured data this unit test
// deliberately does not regenerate.)
TEST(Docs, ExperimentsEmbedsEveryReportBlock) {
  const std::string text = read_doc("EXPERIMENTS.md");
  ASSERT_FALSE(text.empty());
  for (const char* id : {"fig6", "fig5a", "fig5b", "uchains", "attacks",
                         "fuzz", "protect"}) {
    EXPECT_NE(text.find("<!-- plxreport:begin " + std::string(id) + " "),
              std::string::npos)
        << id;
    EXPECT_NE(text.find("<!-- plxreport:end " + std::string(id) + " -->"),
              std::string::npos)
        << id;
  }
  // Every marked block parses (no unterminated regions).
  std::string error;
  telemetry::stale_blocks(text, {}, error);
  EXPECT_TRUE(error.empty()) << error;
}

}  // namespace

// Corpus validation: each workload compiles, runs deterministically, has a
// §VII-B-suitable verification function, and survives protection.
#include <gtest/gtest.h>

#include "analysis/callgraph.h"
#include "analysis/selection.h"
#include "cc/compile.h"
#include "image/layout.h"
#include "parallax/protector.h"
#include "isa/x86/machine.h"
#include "workloads/corpus.h"

namespace plx::workloads {
namespace {

class EveryWorkload : public ::testing::TestWithParam<Workload> {};

INSTANTIATE_TEST_SUITE_P(Corpus, EveryWorkload, ::testing::ValuesIn(corpus()),
                         [](const auto& info) { return info.param.name; });

TEST_P(EveryWorkload, CompilesAndRunsDeterministically) {
  const Workload& w = GetParam();
  auto compiled = cc::compile(w.source);
  ASSERT_TRUE(compiled.ok()) << w.name << ": " << compiled.error();
  auto laid = img::layout(compiled.value().module);
  ASSERT_TRUE(laid.ok()) << laid.error();

  x86::Machine m1(laid.value().image), m2(laid.value().image);
  auto r1 = m1.run(200'000'000);
  auto r2 = m2.run(200'000'000);
  ASSERT_EQ(r1.reason, vm::StopReason::Exited) << w.name << ": " << r1.fault;
  EXPECT_EQ(r1.exit_code, r2.exit_code);
  EXPECT_EQ(r1.cycles, r2.cycles);
  // Substantial but bounded runs: hot loops dominate, VM budget is sane.
  EXPECT_GT(r1.cycles, 50'000u) << w.name;
  EXPECT_LT(r1.cycles, 50'000'000u) << w.name;
}

TEST_P(EveryWorkload, VerificationFunctionIsColdAndCompilable) {
  const Workload& w = GetParam();
  auto compiled = cc::compile(w.source);
  ASSERT_TRUE(compiled.ok());

  const cc::IrFunc* vf = nullptr;
  for (const auto& f : compiled.value().ir.funcs) {
    if (f.name == w.verify_function) vf = &f;
  }
  ASSERT_TRUE(vf) << w.verify_function;
  const auto lowered = cc::lower_bytes_for_rop(cc::lower_mul_for_rop(*vf));
  EXPECT_TRUE(analysis::chain_compilable(lowered)) << w.verify_function;

  // Called from at least two sites (§VII-B step 1).
  const auto cg = analysis::build_callgraph(compiled.value().ir);
  EXPECT_GE(cg.sites(w.verify_function), 2) << w.verify_function;

  // Contributes under the 2% threshold (§VII-B step 2) yet runs repeatedly.
  auto laid = img::layout(compiled.value().module);
  ASSERT_TRUE(laid.ok());
  const auto profile = analysis::profile_run(laid.value().image);
  ASSERT_EQ(profile.run.reason, vm::StopReason::Exited);
  EXPECT_LT(profile.fraction(w.verify_function), 0.02) << w.name;
  EXPECT_GE(profile.calls(w.verify_function), 10u) << w.name;
}

TEST_P(EveryWorkload, AutoSelectionAgreesWithSuggestion) {
  const Workload& w = GetParam();
  auto compiled = cc::compile(w.source);
  ASSERT_TRUE(compiled.ok());
  auto laid = img::layout(compiled.value().module);
  ASSERT_TRUE(laid.ok());
  const auto profile = analysis::profile_run(laid.value().image);
  const auto cg = analysis::build_callgraph(compiled.value().ir);
  const auto picks = analysis::select_verification_functions(compiled.value().ir, cg,
                                                             &profile, {});
  ASSERT_FALSE(picks.empty()) << w.name;
  // The suggested function must at least be an eligible candidate; for most
  // workloads it is the top pick (it maximises op diversity by design).
  analysis::SelectionOptions all;
  all.count = 100;
  const auto eligible = analysis::select_verification_functions(compiled.value().ir,
                                                                cg, &profile, all);
  EXPECT_NE(std::find(eligible.begin(), eligible.end(), w.verify_function),
            eligible.end())
      << w.name << ": " << w.verify_function << " not even eligible";
}

TEST_P(EveryWorkload, ProtectedRunMatchesPlain) {
  const Workload& w = GetParam();
  auto compiled = cc::compile(w.source);
  ASSERT_TRUE(compiled.ok());
  auto plain = parallax::layout_plain(compiled.value());
  ASSERT_TRUE(plain.ok());
  x86::Machine ref(plain.value());
  auto ref_run = ref.run(200'000'000);
  ASSERT_EQ(ref_run.reason, vm::StopReason::Exited);

  parallax::ProtectOptions opts;
  opts.verify_functions = {w.verify_function};
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  ASSERT_TRUE(prot.ok()) << w.name << ": " << prot.error();

  x86::Machine m(prot.value().image);
  auto run = m.run(400'000'000);
  ASSERT_EQ(run.reason, vm::StopReason::Exited) << w.name << ": " << run.fault;
  EXPECT_EQ(run.exit_code, ref_run.exit_code) << w.name;
}

TEST_P(EveryWorkload, TamperDetectionOnProtectedWorkload) {
  const Workload& w = GetParam();
  auto compiled = cc::compile(w.source);
  ASSERT_TRUE(compiled.ok());
  auto plain = parallax::layout_plain(compiled.value());
  ASSERT_TRUE(plain.ok());
  x86::Machine ref(plain.value());
  const auto ref_run = ref.run(200'000'000);

  parallax::ProtectOptions opts;
  opts.verify_functions = {w.verify_function};
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  ASSERT_TRUE(prot.ok()) << prot.error();
  ASSERT_FALSE(prot.value().used_gadget_addrs.empty());

  // Attack one used gadget.
  const std::uint32_t victim = prot.value().used_gadget_addrs[1];
  x86::Machine m(prot.value().image);
  bool ok = true;
  const std::uint8_t orig = m.read_u8(victim, ok);
  m.tamper(victim, orig ^ 0x28);
  auto run = m.run(400'000'000);
  const bool detected =
      run.reason != vm::StopReason::Exited || run.exit_code != ref_run.exit_code;
  EXPECT_TRUE(detected) << w.name;
}

TEST(Corpus, HasSixPrograms) {
  EXPECT_EQ(corpus().size(), 6u);
  EXPECT_TRUE(find_workload("gzip"));
  EXPECT_TRUE(find_workload("minigzip"));
  EXPECT_FALSE(find_workload("emacs"));
}

}  // namespace
}  // namespace plx::workloads

// Property tests: decode/encode form a consistent pair.
//
//  * decode -> encode -> decode must reproduce the same instruction
//    semantics (the re-encoding may legitimately be shorter, e.g. imm32
//    forms that fit in imm8, so we compare decoded fields, not bytes).
//  * builder-constructed instructions encode and decode back to themselves.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "image/layout.h"
#include "support/rng.h"
#include "isa/x86/build.h"
#include "isa/x86/decoder.h"
#include "isa/x86/encoder.h"
#include "isa/x86/format.h"

namespace plx::x86 {
namespace {

bool same_operand(const Operand& a, const Operand& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Operand::Kind::None: return true;
    case Operand::Kind::Reg: return a.reg == b.reg && a.size == b.size;
    case Operand::Kind::Imm: return a.imm == b.imm;
    case Operand::Kind::Mem: return a.mem == b.mem && a.size == b.size;
    case Operand::Kind::Rel: return a.rel == b.rel;
  }
  return false;
}

bool same_semantics(const Insn& a, const Insn& b) {
  if (a.op != b.op || a.nops != b.nops || a.opsize != b.opsize) return false;
  if ((a.op == Mnemonic::JCC || a.op == Mnemonic::SETCC) && a.cond != b.cond) return false;
  for (int i = 0; i < a.nops; ++i) {
    if (!same_operand(a.ops[i], b.ops[i])) return false;
  }
  return true;
}

TEST(Roundtrip, RandomByteSequences) {
  Rng rng(0xdec0de);
  int decoded = 0;
  for (int trial = 0; trial < 200000; ++trial) {
    std::uint8_t buf[15];
    for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.next_u32());
    const auto insn = decode(buf);
    if (!insn) continue;
    ++decoded;
    Buffer out;
    auto enc = encode(*insn, out);
    ASSERT_TRUE(enc.ok()) << "cannot re-encode: " << format(*insn) << " ["
                          << enc.error() << "]";
    const auto again = decode(out.span());
    ASSERT_TRUE(again) << "re-decoding failed for " << format(*insn);
    EXPECT_TRUE(same_semantics(*insn, *again))
        << "mismatch: " << format(*insn) << " vs " << format(*again);
    // The re-encoding may differ in length: shorter when an imm32 fits in
    // imm8, or slightly longer when the original used an accumulator
    // short-form (xchg eax,r / op eax,imm32) that we render canonically.
    EXPECT_LE(again->len, insn->len + 1) << format(*insn);
  }
  // Random bytes decode reasonably often (the x86 map is dense).
  EXPECT_GT(decoded, 20000);
}

TEST(Roundtrip, BuilderInstructionsExact) {
  // Exercise the builder surface; each instruction must decode back to
  // identical semantics AND identical bytes on a second encode.
  std::vector<Insn> insns;
  for (int r = 0; r < 8; ++r) {
    const Reg reg = static_cast<Reg>(r);
    insns.push_back(ins::push(reg));
    insns.push_back(ins::pop(reg));
    insns.push_back(ins::inc(reg));
    insns.push_back(ins::dec(reg));
    insns.push_back(ins::neg(reg));
    insns.push_back(ins::not_(reg));
    insns.push_back(ins::mov(reg, 0x12345678));
    insns.push_back(ins::mov(reg, Reg::EAX));
    insns.push_back(ins::add(reg, Reg::ECX));
    insns.push_back(ins::sub(reg, 7));
    insns.push_back(ins::xor_(reg, reg));
    insns.push_back(ins::cmp(reg, 100000));
    insns.push_back(ins::load(reg, Mem{.base = Reg::EBP, .disp = -8 * r}));
    insns.push_back(ins::store(Mem{.base = Reg::ESP, .disp = 4 * r}, reg));
    insns.push_back(ins::shl(reg, 3));
    insns.push_back(ins::sar(reg, 31));
  }
  for (int cc = 0; cc < 16; ++cc) {
    insns.push_back(ins::jcc_rel(static_cast<Cond>(cc), 0x1234));
    insns.push_back(ins::setcc(static_cast<Cond>(cc), Reg::ECX));
  }
  insns.push_back(ins::ret());
  insns.push_back(ins::retf());
  insns.push_back(ins::leave());
  insns.push_back(ins::pushad());
  insns.push_back(ins::popad());
  insns.push_back(ins::pushfd());
  insns.push_back(ins::popfd());
  insns.push_back(ins::cdq());
  insns.push_back(ins::nop());
  insns.push_back(ins::int_(0x80));
  insns.push_back(ins::call_rel(-123456));
  insns.push_back(ins::jmp_rel(99));
  insns.push_back(ins::imul2(Reg::EDX, Reg::ESI));
  insns.push_back(ins::movzx8(Reg::EBX, Reg::ECX));
  insns.push_back(ins::lea(Reg::EAX, Mem{.base = Reg::EDX, .index = Reg::EDI, .scale = 2, .disp = 5}));

  for (const auto& insn : insns) {
    Buffer out;
    auto enc = encode(insn, out);
    ASSERT_TRUE(enc.ok()) << format(insn) << ": " << enc.error();
    const auto back = decode(out.span());
    ASSERT_TRUE(back) << format(insn);
    EXPECT_TRUE(same_semantics(insn, *back))
        << format(insn) << " vs " << format(*back);
    Buffer out2;
    ASSERT_TRUE(encode(*back, out2).ok());
    EXPECT_EQ(out.vec(), out2.vec()) << format(insn);
  }
}

TEST(Roundtrip, DecodedLengthMatchesConsumed) {
  // For every decodable prefix, len must equal the bytes the decoder read:
  // decoding the truncated buffer of len-1 bytes must fail.
  Rng rng(0x1e47);
  for (int trial = 0; trial < 50000; ++trial) {
    std::uint8_t buf[15];
    for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng.next_u32());
    const auto insn = decode(buf);
    if (!insn || insn->len < 2) continue;
    const auto truncated = decode(std::span(buf, insn->len - 1u));
    if (truncated) {
      // A shorter decode is only acceptable if it consumed fewer bytes.
      EXPECT_LT(truncated->len, insn->len);
    }
  }
}

// --- assembler-sourced property test -------------------------------------
//
// Generates random VALID instructions as Intel-syntax text, assembles them
// (src/asm), lays the module out, then decodes the emitted bytes back
// sequentially. Every instruction must decode, re-encode, and decode again
// to the same semantics, and format() must always produce a mnemonic.

namespace {

const char* kRegNames[8] = {"eax", "ecx", "edx", "ebx",
                            "esp", "ebp", "esi", "edi"};

std::string rand_reg(Rng& rng, bool allow_esp = true) {
  for (;;) {
    const int r = static_cast<int>(rng.below(8));
    if (!allow_esp && r == 4) continue;  // ESP cannot be an index
    return kRegNames[r];
  }
}

std::string rand_imm(Rng& rng) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", rng.next_u32());
  return buf;
}

std::string rand_mem(Rng& rng) {
  std::string m = "[" + rand_reg(rng);
  if (rng.below(2)) {
    const int scale = 1 << rng.below(4);
    m += "+" + rand_reg(rng, /*allow_esp=*/false) + "*" + std::to_string(scale);
  }
  switch (rng.below(3)) {
    case 0: break;  // no displacement
    case 1: m += (rng.below(2) ? "+" : "-") + std::to_string(rng.below(128));
            break;
    default: m += "+" + std::to_string(0x1000 + rng.below(0x10000)); break;
  }
  return m + "]";
}

// One random valid instruction line from a grammar limited to non-branch
// mnemonics over r32 / imm / [base(+index*scale)(+disp)] operands.
std::string rand_insn_line(Rng& rng) {
  static const char* kAlu[] = {"add", "or",  "and", "sub",
                               "xor", "cmp", "mov", "test"};
  switch (rng.below(8)) {
    case 0: {  // alu r32, r32
      return std::string(kAlu[rng.below(8)]) + " " + rand_reg(rng) + ", " +
             rand_reg(rng);
    }
    case 1: {  // alu r32, imm
      return std::string(kAlu[rng.below(8)]) + " " + rand_reg(rng) + ", " +
             rand_imm(rng);
    }
    case 2: {  // alu r32, [mem] — no "test": x86 only encodes `test r/m, r`
      static const char* kAluMem[] = {"add", "or",  "and", "sub",
                                      "xor", "cmp", "mov"};
      return std::string(kAluMem[rng.below(7)]) + " " + rand_reg(rng) + ", " +
             rand_mem(rng);
    }
    case 3: {  // mov/add/xor [mem], r32
      static const char* kStore[] = {"mov", "add", "xor", "sub"};
      return std::string(kStore[rng.below(4)]) + " " + rand_mem(rng) + ", " +
             rand_reg(rng);
    }
    case 4: {  // unary r32
      static const char* kUnary[] = {"inc", "dec", "neg", "not"};
      return std::string(kUnary[rng.below(4)]) + " " + rand_reg(rng);
    }
    case 5: {  // shift r32, count
      static const char* kShift[] = {"shl", "shr", "sar"};
      return std::string(kShift[rng.below(3)]) + " " + rand_reg(rng) + ", " +
             std::to_string(rng.below(32));
    }
    case 6: {  // push/pop
      if (rng.below(3) == 0) return "push " + rand_imm(rng);
      return (rng.below(2) ? std::string("push ") : std::string("pop ")) +
             rand_reg(rng);
    }
    default: {  // lea / imul / xchg
      switch (rng.below(3)) {
        case 0: return "lea " + rand_reg(rng) + ", " + rand_mem(rng);
        case 1: return "imul " + rand_reg(rng) + ", " + rand_reg(rng);
        default: return "xchg " + rand_reg(rng) + ", " + rand_reg(rng);
      }
    }
  }
}

TEST(Roundtrip, AssembledRandomInstructions) {
  constexpr int kCount = 10000;
  Rng rng(0xa53b1e);

  std::string src = ".entry f\nf:\n";
  for (int i = 0; i < kCount; ++i) {
    src += "    " + rand_insn_line(rng) + "\n";
  }
  src += "    ret\n";

  auto mod = plx::assembler::assemble(src);
  ASSERT_TRUE(mod.ok()) << mod.error();
  auto laid = plx::img::layout(mod.value());
  ASSERT_TRUE(laid.ok()) << laid.error();
  const plx::img::Image& image = laid.value().image;
  const plx::img::Symbol* f = image.find_symbol("f");
  ASSERT_TRUE(f);
  const auto bytes = image.read(f->vaddr, f->size);
  ASSERT_FALSE(bytes.empty());

  int count = 0;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const auto insn = decode(std::span(bytes).subspan(pos));
    ASSERT_TRUE(insn) << "undecodable at +" << pos << " of instruction "
                      << count;
    ++count;
    // format() must always name the instruction.
    const std::string text = format(*insn);
    ASSERT_FALSE(text.empty());
    EXPECT_NE(text[0], ' ') << "empty mnemonic: '" << text << "'";
    // Re-encode and decode back: semantics must be preserved.
    Buffer out;
    auto enc = encode(*insn, out);
    ASSERT_TRUE(enc.ok()) << text << " [" << enc.error() << "]";
    const auto again = decode(out.span());
    ASSERT_TRUE(again) << text;
    EXPECT_TRUE(same_semantics(*insn, *again))
        << text << " vs " << format(*again);
    pos += insn->len;
  }
  EXPECT_EQ(count, kCount + 1);  // + the final ret
}

}  // namespace

}  // namespace
}  // namespace plx::x86

// Verification-machinery unit tests: the in-image runtime routines (xor,
// RC4, probabilistic generator — hand-written assembly) must agree exactly
// with the host-side implementations that prepare chain storage, and the
// loader stub must implement the §V-A contract.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "crypto/rc4.h"
#include "crypto/xorstream.h"
#include "fuzz/fuzz.h"
#include "fuzz/targets.h"
#include "image/layout.h"
#include "verify/hardening.h"
#include "verify/stub.h"
#include "isa/x86/machine.h"
#include "isa/x86/decoder.h"

namespace plx::verify {
namespace {

// Builds an image containing just the runtime routine plus scratch buffers.
struct RuntimeHarness {
  img::Image image;
  std::uint32_t routine = 0;
  std::uint32_t buf_a = 0;  // 4 KiB
  std::uint32_t buf_b = 0;  // 4 KiB

  static RuntimeHarness build(Hardening mode, std::span<const std::uint8_t> key) {
    const std::string src = runtime_asm_source(mode, key) + R"(
.data
__plx_buf_a:
    resb 4096
__plx_buf_b:
    resb 32768
)";
    auto mod = assembler::assemble(src);
    EXPECT_TRUE(mod.ok()) << (mod.ok() ? "" : mod.error());
    mod.value().entry = runtime_symbol(mode);
    auto laid = img::layout(mod.value());
    EXPECT_TRUE(laid.ok()) << (laid.ok() ? "" : laid.error());
    RuntimeHarness h;
    h.image = std::move(laid).take().image;
    h.routine = h.image.find_symbol(runtime_symbol(mode))->vaddr;
    h.buf_a = h.image.find_symbol("__plx_buf_a")->vaddr;
    h.buf_b = h.image.find_symbol("__plx_buf_b")->vaddr;
    return h;
  }
};

std::vector<std::uint8_t> test_key() {
  std::vector<std::uint8_t> key(16);
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i * 7 + 3);
  return key;
}

TEST(Runtime, XorDecryptorMatchesHost) {
  const auto key = test_key();
  auto h = RuntimeHarness::build(Hardening::Xor, key);

  std::vector<std::uint8_t> plain(700);
  for (std::size_t i = 0; i < plain.size(); ++i) plain[i] = static_cast<std::uint8_t>(i * 13);
  const auto cipher = crypto::xor_crypt(key, plain);

  x86::Machine m(h.image);
  for (std::size_t i = 0; i < cipher.size(); ++i) {
    m.write_u8(h.buf_b + static_cast<std::uint32_t>(i), cipher[i]);
  }
  auto r = m.call_function(h.routine,
                           {h.buf_a, h.buf_b, static_cast<std::uint32_t>(cipher.size())});
  ASSERT_EQ(r.reason, vm::StopReason::Exited) << r.fault;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    bool ok = true;
    ASSERT_EQ(m.read_u8(h.buf_a + static_cast<std::uint32_t>(i), ok), plain[i])
        << "byte " << i;
  }
}

TEST(Runtime, Rc4DecryptorMatchesHost) {
  const auto key = test_key();
  auto h = RuntimeHarness::build(Hardening::Rc4, key);

  std::vector<std::uint8_t> plain(513);  // odd size: exercise tail bytes
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(255 - (i & 0xff));
  }
  const auto cipher = crypto::rc4_crypt(key, plain);

  x86::Machine m(h.image);
  for (std::size_t i = 0; i < cipher.size(); ++i) {
    m.write_u8(h.buf_b + static_cast<std::uint32_t>(i), cipher[i]);
  }
  auto r = m.call_function(h.routine,
                           {h.buf_a, h.buf_b, static_cast<std::uint32_t>(cipher.size())},
                           50'000'000);
  ASSERT_EQ(r.reason, vm::StopReason::Exited) << r.fault;
  for (std::size_t i = 0; i < plain.size(); ++i) {
    bool ok = true;
    ASSERT_EQ(m.read_u8(h.buf_a + static_cast<std::uint32_t>(i), ok), plain[i])
        << "byte " << i;
  }
}

TEST(Runtime, GeneratorMatchesHostReference) {
  // Build variants, decompose on the host, regenerate inside the VM, and
  // check every produced word is one of the variant words for its position.
  Rng rng(42);
  const int nwords = 37;
  const int nvar = 4;
  std::vector<std::vector<std::uint32_t>> variants(nvar);
  for (auto& v : variants) {
    v.resize(nwords);
    for (auto& w : v) w = rng.next_u32();
  }
  auto storage = build_prob_storage(variants, rng);
  ASSERT_TRUE(storage.ok()) << storage.error();

  auto h = RuntimeHarness::build(Hardening::Probabilistic, {});
  // Lay the index arrays and basis into buf_b (idx) and after it (basis).
  x86::Machine m(h.image);
  const std::uint32_t idx_addr = h.buf_b;
  std::uint32_t cursor = idx_addr;
  for (std::uint32_t w : storage.value().idx) {
    m.write_u32(cursor, w);
    cursor += 4;
  }
  const std::uint32_t basis_addr = cursor;
  for (std::uint32_t w : storage.value().basis) {
    m.write_u32(cursor, w);
    cursor += 4;
  }
  ASSERT_LT(cursor, h.buf_b + 32768u) << "harness buffers too small";

  auto r = m.call_function(
      h.routine, {h.buf_a, idx_addr, basis_addr, nwords, nvar}, 50'000'000);
  ASSERT_EQ(r.reason, vm::StopReason::Exited) << r.fault;

  int non_first_variant = 0;
  for (int i = 0; i < nwords; ++i) {
    bool ok = true;
    const std::uint32_t got = m.read_u32(h.buf_a + 4u * static_cast<std::uint32_t>(i), ok);
    bool matches_some = false;
    for (int v = 0; v < nvar; ++v) {
      if (variants[static_cast<std::size_t>(v)][static_cast<std::size_t>(i)] == got) {
        matches_some = true;
        if (v != 0) ++non_first_variant;
      }
    }
    EXPECT_TRUE(matches_some) << "word " << i << " matches no variant";
  }
  // With nvar=4 and 37 words, essentially always some non-first picks.
  EXPECT_GT(non_first_variant, 0);

  // And the host reference regenerator agrees with the decomposition.
  std::vector<int> picks(static_cast<std::size_t>(nwords), 2);
  const auto regen = regenerate_prob(storage.value(), nwords, nvar, picks);
  for (int i = 0; i < nwords; ++i) {
    EXPECT_EQ(regen[static_cast<std::size_t>(i)],
              variants[2][static_cast<std::size_t>(i)]);
  }
}

TEST(Stub, EmitsDecodableCode) {
  StubSpec spec;
  spec.func_name = "f";
  spec.num_params = 2;
  spec.result_slot = 5;
  spec.frame_sym = "frame";
  spec.chain_exec_sym = "chain";
  spec.resume_sym = "resume";
  const img::Fragment frag = emit_stub(spec);

  img::Module mod;
  mod.entry = "f";
  mod.fragments.push_back(frag);
  auto data = [](const char* name, std::size_t n) {
    img::Fragment f;
    f.name = name;
    f.section = img::SectionKind::Data;
    Buffer b;
    b.resize(n);
    f.items.push_back(img::Item::make_data(std::move(b)));
    return f;
  };
  mod.fragments.push_back(data("frame", 64));
  mod.fragments.push_back(data("chain", 64));
  mod.fragments.push_back(data("resume", 4));
  auto laid = img::layout(mod);
  ASSERT_TRUE(laid.ok()) << laid.error();

  // The stub must start with pushad and decode cleanly to the final ret.
  const img::Symbol* f = laid.value().image.find_symbol("f");
  const auto bytes = laid.value().image.read(f->vaddr, f->size);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes[0], 0x60);  // pushad
  std::size_t off = 0;
  int popads = 0;
  while (off < bytes.size()) {
    auto insn = x86::decode(std::span(bytes).subspan(off));
    ASSERT_TRUE(insn) << "undecodable stub byte at +" << off;
    if (insn->op == x86::Mnemonic::POPAD) ++popads;
    off += insn->len;
  }
  EXPECT_EQ(popads, 1) << "exactly one resume point";
}

TEST(Stub, HardenedVariantsCallRuntime) {
  for (Hardening mode : {Hardening::Xor, Hardening::Rc4, Hardening::Probabilistic}) {
    StubSpec spec;
    spec.func_name = "f";
    spec.num_params = 0;
    spec.frame_sym = "frame";
    spec.chain_exec_sym = "chain";
    spec.resume_sym = "resume";
    spec.hardening = mode;
    spec.routine_sym = runtime_symbol(mode);
    spec.chain_src_sym = "src";
    spec.len_sym = "len";
    spec.idx_sym = "idx";
    spec.basis_sym = "basis";
    spec.variants = 4;
    const img::Fragment frag = emit_stub(spec);
    bool has_call = false;
    for (const auto& item : frag.items) {
      if (item.fixup == img::Fixup::RelBranch && item.sym == runtime_symbol(mode)) {
        has_call = true;
      }
    }
    EXPECT_TRUE(has_call) << hardening_name(mode);
  }
}

TEST(Hardening, EncryptChainRoundtrips) {
  const auto key = test_key();
  std::vector<std::uint32_t> words = {0x08048123, 42, 0x080e0040, 0xfffffff0};
  for (Hardening mode : {Hardening::Xor, Hardening::Rc4}) {
    const auto ct = encrypt_chain(mode, words, key);
    ASSERT_EQ(ct.size(), words.size() * 4);
    // Decrypt on the host and compare.
    std::vector<std::uint8_t> back = mode == Hardening::Xor
                                         ? crypto::xor_crypt(key, ct)
                                         : crypto::rc4_crypt(key, ct);
    for (std::size_t i = 0; i < words.size(); ++i) {
      const std::uint32_t w = static_cast<std::uint32_t>(back[4 * i]) |
                              (back[4 * i + 1] << 8) | (back[4 * i + 2] << 16) |
                              (static_cast<std::uint32_t>(back[4 * i + 3]) << 24);
      EXPECT_EQ(w, words[i]) << hardening_name(mode);
    }
  }
}

TEST(HardenedTamper, FlippedProtectedByteBreaksChain) {
  // The end-to-end claim, per hardening mode: flip one bit of any strict
  // (computational) protected byte of a hardened image and the verification
  // chain must malfunction — no escape survives the sweep. Encrypted chain
  // storage (xor/rc4) and regenerated storage (probabilistic) must not
  // weaken the implicit gadget-byte verification.
  const fuzz::Target* target = fuzz::find_target("license");
  ASSERT_TRUE(target);
  for (Hardening mode :
       {Hardening::Xor, Hardening::Rc4, Hardening::Probabilistic}) {
    auto prot = fuzz::protect_target(*target, mode);
    ASSERT_TRUE(prot.ok()) << hardening_name(mode) << ": " << prot.error();

    fuzz::TamperFuzzer fuzzer(prot.value().image,
                              prot.value().protected_ranges);
    ASSERT_TRUE(fuzzer.ok()) << hardening_name(mode);
    ASSERT_GT(fuzzer.strict_bytes(), 0u) << hardening_name(mode);

    fuzz::CampaignOptions opts;
    opts.sweep_masks = {0x01};  // one bit is all tampering should need
    const auto stats = fuzzer.sweep(opts);
    EXPECT_GT(stats.total, 0u) << hardening_name(mode);
    EXPECT_EQ(stats.detected, stats.total) << hardening_name(mode);
    for (const auto& e : stats.escapes) {
      ADD_FAILURE() << hardening_name(mode) << ": escape @" << std::hex
                    << e.mutation.addr << ": " << e.detail;
    }
  }
}

}  // namespace
}  // namespace plx::verify

#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "gadget/catalog.h"
#include "isa/arch.h"
#include "gadget/scanner.h"
#include "image/layout.h"
#include "isa/x86/classify.h"
#include "isa/x86/decoder.h"

namespace plx::gadget {
namespace {

using x86::Cond;
using x86::Reg;

Gadget classify_bytes(std::initializer_list<std::uint8_t> raw) {
  std::vector<std::uint8_t> bytes(raw);
  std::vector<x86::Insn> insns;
  std::size_t off = 0;
  while (off < bytes.size()) {
    auto insn = x86::decode(std::span(bytes).subspan(off));
    EXPECT_TRUE(insn) << "offset " << off;
    if (!insn) break;
    insns.push_back(*insn);
    off += insn->len;
  }
  Gadget g;
  g.insns.reserve(insns.size());
  for (const auto& i : insns) g.insns.push_back(x86::to_isa(i));
  g.len = static_cast<std::uint8_t>(bytes.size());
  x86::classify(insns, g);
  return g;
}

TEST(Classify, PopRegRet) {
  const Gadget g = classify_bytes({0x58, 0xc3});  // pop eax; ret
  EXPECT_EQ(g.type, GType::PopReg);
  EXPECT_EQ(g.r1, x86::regid(Reg::EAX));
  EXPECT_EQ(g.total_pops, 0);
  EXPECT_EQ(g.value_pop_index, 0);
}

TEST(Classify, PopWithFiller) {
  // pop ecx; pop edx; ret — primary PopReg(ecx) with one filler pop.
  const Gadget g = classify_bytes({0x59, 0x5a, 0xc3});
  EXPECT_EQ(g.type, GType::PopReg);
  EXPECT_EQ(g.r1, x86::regid(Reg::ECX));
  EXPECT_EQ(g.total_pops, 1);
  EXPECT_EQ(g.value_pop_index, 0);
  EXPECT_TRUE(g.clobbers & (1u << 2));  // edx clobbered
}

TEST(Classify, PopDestroyedByLaterPopDemotes) {
  // pop eax; pop eax; ret — first value is overwritten; still consumes two
  // words. Demoted to transparent... actually the SECOND pop wins nothing:
  // our classifier keeps it transparent with 2 fillers.
  const Gadget g = classify_bytes({0x58, 0x58, 0xc3});
  EXPECT_EQ(g.type, GType::Transparent);
  EXPECT_EQ(g.total_pops, 2);
}

TEST(Classify, AluRegReg) {
  EXPECT_EQ(classify_bytes({0x01, 0xd0, 0xc3}).type, GType::AddRegReg);  // add eax,edx
  EXPECT_EQ(classify_bytes({0x29, 0xd0, 0xc3}).type, GType::SubRegReg);
  EXPECT_EQ(classify_bytes({0x31, 0xd0, 0xc3}).type, GType::XorRegReg);
  EXPECT_EQ(classify_bytes({0x21, 0xd0, 0xc3}).type, GType::AndRegReg);
  EXPECT_EQ(classify_bytes({0x09, 0xd0, 0xc3}).type, GType::OrRegReg);
  const Gadget g = classify_bytes({0x01, 0xd0, 0xc3});
  EXPECT_EQ(g.r1, x86::regid(Reg::EAX));
  EXPECT_EQ(g.r2, x86::regid(Reg::EDX));
}

TEST(Classify, XorSelfIsNotCanonical) {
  // xor eax, eax zeroes — a clobber, not a usable ALU gadget.
  const Gadget g = classify_bytes({0x31, 0xc0, 0xc3});
  EXPECT_EQ(g.type, GType::Transparent);
  EXPECT_TRUE(g.clobbers & 1u);
}

TEST(Classify, LoadAndStore) {
  const Gadget load = classify_bytes({0x8b, 0x01, 0xc3});  // mov eax,[ecx]; ret
  EXPECT_EQ(load.type, GType::LoadMem);
  EXPECT_EQ(load.r1, x86::regid(Reg::EAX));
  EXPECT_EQ(load.r2, x86::regid(Reg::ECX));

  const Gadget store = classify_bytes({0x89, 0x01, 0xc3});  // mov [ecx],eax; ret
  EXPECT_EQ(store.type, GType::StoreMem);
  EXPECT_EQ(store.r1, x86::regid(Reg::ECX));
  EXPECT_EQ(store.r2, x86::regid(Reg::EAX));

  const Gadget addstore = classify_bytes({0x01, 0x01, 0xc3});  // add [ecx],eax
  EXPECT_EQ(addstore.type, GType::AddStoreMem);
}

TEST(Classify, LoadWithDisplacement) {
  const Gadget g = classify_bytes({0x8b, 0x41, 0x08, 0xc3});  // mov eax,[ecx+8]
  EXPECT_EQ(g.type, GType::LoadMem);
  EXPECT_EQ(g.disp, 8);
}

TEST(Classify, PaperFarRetGadgetIsTransparent) {
  // §IV-A Listing 1: and al,0; add [eax],al; add al,ch; retf. The memory
  // write is harmless because al is provably zero; eax must be parked on
  // scratch memory.
  const Gadget g = classify_bytes({0x24, 0x00, 0x00, 0x00, 0x00, 0xe8, 0xcb});
  EXPECT_EQ(g.type, GType::Transparent);
  EXPECT_TRUE(g.far_ret);
  EXPECT_TRUE(g.scratch_addr_regs & 1u) << "eax must be parked";
  EXPECT_TRUE(g.clobbers & 1u);
}

TEST(Classify, PaperSarGadget) {
  // §IV-A: sar byte [ecx+0x7], 0x8b; ret — a byte memory write of an
  // unpredictable value. The paper uses exactly this gadget: the write is
  // harmless once ecx is parked on sacrificial scratch memory, so it
  // classifies as a transparent verification gadget.
  const Gadget g = classify_bytes({0xc0, 0x79, 0x07, 0x8b, 0xc3});
  EXPECT_EQ(g.type, GType::Transparent);
  EXPECT_TRUE(g.scratch_addr_regs & (1u << 1)) << "ecx must be parked";
}

TEST(Classify, PaperJumpOffsetGadget) {
  // §IV-A: add bl, ch; ret (byte-size ALU): no canonical 32-bit use, but
  // transparent — exactly what verification NOP slots want.
  const Gadget g = classify_bytes({0x00, 0xeb, 0xc3});
  EXPECT_EQ(g.type, GType::Transparent);
  EXPECT_TRUE(g.clobbers & (1u << 3));  // ebx (via bl)
}

TEST(Classify, ShiftByCl) {
  EXPECT_EQ(classify_bytes({0xd3, 0xe0, 0xc3}).type, GType::ShlClReg);
  EXPECT_EQ(classify_bytes({0xd3, 0xe8, 0xc3}).type, GType::ShrClReg);
  EXPECT_EQ(classify_bytes({0xd3, 0xf8, 0xc3}).type, GType::SarClReg);
  const Gadget g = classify_bytes({0xd3, 0xe0, 0xc3});
  EXPECT_EQ(g.r1, x86::regid(Reg::EAX));
}

TEST(Classify, CmpAndSetcc) {
  EXPECT_EQ(classify_bytes({0x39, 0xd0, 0xc3}).type, GType::CmpRegReg);
  const Gadget se = classify_bytes({0x0f, 0x94, 0xc0, 0xc3});  // sete al; ret
  EXPECT_EQ(se.type, GType::SetccReg);
  EXPECT_EQ(se.cond, x86::condid(Cond::E));
  EXPECT_EQ(se.r1, x86::regid(Reg::EAX));
  EXPECT_EQ(classify_bytes({0x0f, 0xb6, 0xc0, 0xc3}).type, GType::MovzxReg);
}

TEST(Classify, ChainPivots) {
  const Gadget add_esp = classify_bytes({0x01, 0xc4, 0xc3});  // add esp, eax; ret
  EXPECT_EQ(add_esp.type, GType::AddEspReg);
  EXPECT_EQ(add_esp.r1, x86::regid(Reg::EAX));

  const Gadget pop_esp = classify_bytes({0x5c, 0xc3});  // pop esp; ret
  EXPECT_EQ(pop_esp.type, GType::PopEsp);
}

TEST(Classify, RejectsDerailers) {
  EXPECT_EQ(classify_bytes({0x50, 0xc3}).type, GType::Unusable);  // push eax
  EXPECT_EQ(classify_bytes({0xc9, 0xc3}).type, GType::Unusable);  // leave
  EXPECT_EQ(classify_bytes({0xcd, 0x80, 0xc3}).type, GType::Unusable);  // int
  EXPECT_EQ(classify_bytes({0xf7, 0xf1, 0xc3}).type, GType::Unusable);  // div ecx
  // sub esp, 4 moves the stack pointer backwards into executed chain words.
  EXPECT_EQ(classify_bytes({0x83, 0xec, 0x04, 0xc3}).type, GType::Unusable);
}

TEST(Classify, RetImmSkipsWords) {
  const Gadget g = classify_bytes({0x58, 0xc2, 0x08, 0x00});  // pop eax; ret 8
  EXPECT_EQ(g.type, GType::PopReg);
  EXPECT_EQ(g.ret_imm, 8);
  // Unaligned ret imm is unusable.
  EXPECT_EQ(classify_bytes({0x58, 0xc2, 0x03, 0x00}).type, GType::Unusable);
}

TEST(Classify, AddEspImmBecomesFiller) {
  const Gadget g = classify_bytes({0x83, 0xc4, 0x08, 0xc3});  // add esp, 8; ret
  EXPECT_EQ(g.type, GType::Transparent);
  EXPECT_EQ(g.total_pops, 2);
}

TEST(Scanner, FindsUnalignedGadgets) {
  // mov eax, 0x00c35858: the immediate contains "pop eax; pop eax; ret" at
  // offset 1 and "pop eax; ret" at offset 2.
  const std::vector<std::uint8_t> bytes = {0xb8, 0x58, 0x58, 0xc3, 0x00};
  auto gs = scan_bytes(bytes, 0x1000);
  bool found_pop_ret = false;
  for (const auto& g : gs) {
    if (g.addr == 0x1002 && g.type == GType::PopReg && g.r1 == x86::regid(Reg::EAX)) {
      found_pop_ret = true;
      EXPECT_EQ(g.len, 2);
    }
  }
  EXPECT_TRUE(found_pop_ret);
}

TEST(Scanner, RespectsInstructionLimit) {
  // Seven single-byte instructions before ret exceed the 6-insn cap from the
  // start offset but shorter suffixes are still found.
  const std::vector<std::uint8_t> bytes = {0x40, 0x40, 0x40, 0x40, 0x40,
                                           0x40, 0x40, 0xc3};
  ScanOptions opts;
  opts.max_insns = 6;
  auto gs = scan_bytes(bytes, 0, opts);
  for (const auto& g : gs) {
    EXPECT_LE(g.insns.size(), 6u);
    EXPECT_NE(g.addr, 0u) << "offset 0 needs 8 instructions";
  }
  EXPECT_FALSE(gs.empty());
}

TEST(Scanner, UtilityFragmentProvidesFullVocabulary) {
  img::Module m;
  m.entry = "__plx_gadgets";
  m.fragments.push_back(isa::default_arch().utility_gadget_fragment());
  auto laid = img::layout(m);
  ASSERT_TRUE(laid.ok()) << laid.error();
  auto gs = scan(laid.value().image);
  Catalog cat(std::move(gs));

  const std::uint16_t no_live = 0;
  for (Reg r : {Reg::EAX, Reg::ECX, Reg::EDX, Reg::EBX, Reg::ESI, Reg::EDI}) {
    EXPECT_TRUE(cat.pick(GType::PopReg, x86::regid(r), x86::regid(Reg::NONE), no_live)) << x86::reg_name(r);
  }
  EXPECT_TRUE(cat.pick(GType::LoadMem, x86::regid(Reg::EAX), x86::regid(Reg::ECX), no_live));
  EXPECT_TRUE(cat.pick(GType::LoadMem, x86::regid(Reg::EDX), x86::regid(Reg::ECX), no_live));
  EXPECT_TRUE(cat.pick(GType::StoreMem, x86::regid(Reg::ECX), x86::regid(Reg::EAX), no_live));
  for (GType t : {GType::AddRegReg, GType::SubRegReg, GType::XorRegReg,
                  GType::AndRegReg, GType::OrRegReg, GType::CmpRegReg}) {
    EXPECT_TRUE(cat.pick(t, x86::regid(Reg::EAX), x86::regid(Reg::EDX), no_live)) << gtype_name(t);
  }
  EXPECT_TRUE(cat.pick(GType::NegReg, x86::regid(Reg::EAX), x86::regid(Reg::NONE), no_live));
  EXPECT_TRUE(cat.pick(GType::NotReg, x86::regid(Reg::EAX), x86::regid(Reg::NONE), no_live));
  for (GType t : {GType::ShlClReg, GType::ShrClReg, GType::SarClReg}) {
    EXPECT_TRUE(cat.pick(t, x86::regid(Reg::EAX), x86::regid(Reg::NONE), no_live)) << gtype_name(t);
  }
  for (int cc = 0; cc < 16; ++cc) {
    auto matches = cat.find(GType::SetccReg, x86::regid(Reg::EAX));
    bool found = false;
    for (const auto* g : matches) {
      if (g->cond == x86::condid(static_cast<Cond>(cc))) found = true;
    }
    EXPECT_TRUE(found) << "setcc " << cc;
  }
  EXPECT_TRUE(cat.pick(GType::MovzxReg, x86::regid(Reg::EAX), x86::regid(Reg::NONE), no_live));
  EXPECT_TRUE(cat.pick(GType::AddEspReg, x86::regid(Reg::EAX), x86::regid(Reg::NONE), no_live));
  EXPECT_TRUE(cat.pick(GType::PopEsp, x86::regid(Reg::NONE), x86::regid(Reg::NONE), no_live));
  EXPECT_TRUE(cat.pick(GType::MovRegReg, x86::regid(Reg::ECX), x86::regid(Reg::EAX), no_live));
}

TEST(Catalog, OverlappingPreferred) {
  Gadget plain;
  plain.type = GType::PopReg;
  plain.r1 = x86::regid(Reg::EAX);
  plain.addr = 0x100;
  Gadget overlap = plain;
  overlap.addr = 0x200;
  overlap.overlapping = true;

  Catalog cat;
  cat.add(plain);
  cat.add(overlap);
  const Gadget* picked = cat.pick(GType::PopReg, x86::regid(Reg::EAX), x86::regid(Reg::NONE), 0);
  ASSERT_TRUE(picked);
  EXPECT_EQ(picked->addr, 0x200u);
}

TEST(Catalog, LiveRegisterMaskFiltersClobbers) {
  Gadget g;
  g.type = GType::PopReg;
  g.r1 = x86::regid(Reg::EAX);
  g.clobbers = 1u << 2;  // clobbers edx
  Catalog cat;
  cat.add(g);
  EXPECT_TRUE(cat.pick(GType::PopReg, x86::regid(Reg::EAX), x86::regid(Reg::NONE), 0));
  EXPECT_FALSE(cat.pick(GType::PopReg, x86::regid(Reg::EAX), x86::regid(Reg::NONE), 1u << 2));
}

TEST(Catalog, MarkOverlappingByRange) {
  Gadget g;
  g.type = GType::PopReg;
  g.r1 = x86::regid(Reg::EAX);
  g.addr = 0x100;
  g.len = 2;
  Catalog cat;
  cat.add(g);
  cat.mark_overlapping(0x102, 0x110);  // adjacent, no intersection
  EXPECT_FALSE(cat.all()[0].overlapping);
  cat.mark_overlapping(0x101, 0x110);  // overlaps last byte
  EXPECT_TRUE(cat.all()[0].overlapping);
}

TEST(Catalog, PickRandomCoversCandidates) {
  Catalog cat;
  for (std::uint32_t a = 0; a < 4; ++a) {
    Gadget g;
    g.type = GType::PopReg;
    g.r1 = x86::regid(Reg::EAX);
    g.addr = a;
    cat.add(g);
  }
  Rng rng(7);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) {
    const Gadget* g = cat.pick_random(GType::PopReg, x86::regid(Reg::EAX), x86::regid(Reg::NONE), 0, rng);
    ASSERT_TRUE(g);
    seen.insert(g->addr);
  }
  EXPECT_EQ(seen.size(), 4u);  // all variants get exercised (§V-B diversity)
}

}  // namespace
}  // namespace plx::gadget

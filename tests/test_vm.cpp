#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "image/layout.h"
#include "isa/x86/machine.h"
#include "vm/syscalls.h"

namespace plx::vm {
namespace {

// These are backend-level interpreter tests: they poke x86 architectural
// state (regs, eip, read_u8), so they construct the concrete machine.
using Machine = x86::Machine;

img::Image build(const std::string& src) {
  auto mod = assembler::assemble(src);
  EXPECT_TRUE(mod.ok()) << (mod.ok() ? "" : mod.error());
  auto laid = img::layout(mod.value());
  EXPECT_TRUE(laid.ok()) << (laid.ok() ? "" : laid.error());
  return std::move(laid).take().image;
}

RunResult run_src(const std::string& src, Machine* out = nullptr) {
  const auto image = build(src);
  Machine m(image);
  auto r = m.run(1'000'000);
  if (out) *out = std::move(m);
  return r;
}

TEST(Vm, ExitCodeViaSyscall) {
  auto r = run_src(R"(
.entry _start
_start:
    mov eax, 1
    mov ebx, 42
    int 0x80
)");
  EXPECT_EQ(r.reason, StopReason::Exited);
  EXPECT_EQ(r.exit_code, 42);
}

TEST(Vm, ExitViaSentinelReturn) {
  auto r = run_src(R"(
.entry _start
_start:
    mov eax, 7
    ret
)");
  EXPECT_TRUE(r.exited_ok(7));
}

TEST(Vm, ArithmeticAndFlags) {
  auto r = run_src(R"(
.entry _start
_start:
    mov eax, 10
    sub eax, 10
    jz .ok
    mov eax, 1
    ret
.ok:
    mov eax, 0
    ret
)");
  EXPECT_TRUE(r.exited_ok(0));
}

TEST(Vm, SignedComparisons) {
  // -5 < 3 signed, but not unsigned.
  auto r = run_src(R"(
.entry _start
_start:
    mov eax, -5
    cmp eax, 3
    jl .signed_ok
    mov eax, 1
    ret
.signed_ok:
    cmp eax, 3
    jb .wrong          ; unsigned: 0xfffffffb > 3
    mov eax, 0
    ret
.wrong:
    mov eax, 2
    ret
)");
  EXPECT_TRUE(r.exited_ok(0));
}

TEST(Vm, CarryAndAdc) {
  auto r = run_src(R"(
.entry _start
_start:
    mov eax, 0xffffffff
    add eax, 1          ; sets CF, eax=0
    mov ecx, 0
    adc ecx, 0          ; ecx = 0 + 0 + CF = 1
    mov eax, ecx
    ret
)");
  EXPECT_TRUE(r.exited_ok(1));
}

TEST(Vm, MulDivFamily) {
  auto r = run_src(R"(
.entry _start
_start:
    mov eax, 6
    mov ecx, 7
    mul ecx             ; eax = 42
    mov ecx, 5
    cdq
    idiv ecx            ; eax = 8, edx = 2
    add eax, edx        ; 10
    ret
)");
  EXPECT_TRUE(r.exited_ok(10));
}

TEST(Vm, DivideByZeroFaults) {
  auto r = run_src(R"(
.entry _start
_start:
    mov eax, 1
    xor ecx, ecx
    cdq
    idiv ecx
    ret
)");
  EXPECT_EQ(r.reason, StopReason::Fault);
  EXPECT_NE(r.fault.find("divide"), std::string::npos);
}

TEST(Vm, ShiftSemantics) {
  auto r = run_src(R"(
.entry _start
_start:
    mov eax, 1
    shl eax, 4          ; 16
    mov ecx, 2
    shr eax, cl         ; 4
    mov edx, -8
    sar edx, 1          ; -4
    add eax, edx        ; 0
    ret
)");
  EXPECT_TRUE(r.exited_ok(0));
}

TEST(Vm, CallAndStack) {
  auto r = run_src(R"(
.entry _start
_start:
    push 5
    call double_it
    add esp, 4
    ret
double_it:
    push ebp
    mov ebp, esp
    mov eax, [ebp+8]
    add eax, eax
    leave
    ret
)");
  EXPECT_TRUE(r.exited_ok(10));
}

TEST(Vm, PushadPopadRoundtrip) {
  auto r = run_src(R"(
.entry _start
_start:
    mov eax, 1
    mov ecx, 2
    mov edx, 3
    mov ebx, 4
    pushad
    mov eax, 99
    mov ecx, 99
    popad
    add eax, ecx        ; 3
    add eax, edx        ; 6
    add eax, ebx        ; 10
    ret
)");
  EXPECT_TRUE(r.exited_ok(10));
}

TEST(Vm, WriteSyscallCapturesOutput) {
  Machine m(build(R"(
.entry _start
_start:
    mov eax, 4
    mov ebx, 1
    mov ecx, offset msg
    mov edx, 5
    int 0x80
    mov eax, 1
    mov ebx, 0
    int 0x80
.data
msg:
    db "hello"
)"));
  auto r = m.run();
  EXPECT_TRUE(r.exited_ok(0));
  EXPECT_EQ(m.output, "hello");
}

TEST(Vm, ReadSyscallServesInput) {
  Machine m(build(R"(
.entry _start
_start:
    mov eax, 3
    mov ebx, 0
    mov ecx, offset buf
    mov edx, 4
    int 0x80
    mov ecx, [buf]
    mov eax, ecx
    ret
.data
buf:
    resb 8
)"));
  m.input = {'A', 'B', 'C', 'D'};
  auto r = m.run();
  EXPECT_TRUE(r.exited_ok(0x44434241));
}

TEST(Vm, PtraceDetectsDebugger) {
  const std::string src = R"(
.entry _start
_start:
    mov eax, 26
    mov ebx, 0
    int 0x80
    ret
)";
  Machine clean(build(src));
  EXPECT_TRUE(clean.run().exited_ok(0));

  Machine debugged(build(src));
  debugged.debugger_attached = true;
  auto r = debugged.run();
  EXPECT_EQ(r.reason, StopReason::Exited);
  EXPECT_EQ(r.exit_code, -1);
}

TEST(Vm, RopChainExecutes) {
  // Build a classic ROP chain by hand: pop eax; ret / add eax, ecx-style
  // gadgets driven entirely by ret. This is the mechanism function chains
  // rely on, so it must work natively in the VM.
  Machine m(build(R"(
.entry _start
_start:
    mov ecx, 100
    mov eax, offset chain
    mov esp, eax          ; pivot to the chain
    ret
g_pop_eax:
    pop eax
    ret
g_add_eax_ecx:
    add eax, ecx
    ret
g_exit:
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
chain:
    dd g_pop_eax
    dd 23
    dd g_add_eax_ecx
    dd g_exit
)"));
  auto r = m.run();
  EXPECT_EQ(r.reason, StopReason::Exited);
  EXPECT_EQ(r.exit_code, 123);
}

TEST(Vm, RetfGadgetConsumesTwoSlots) {
  // Far returns pop EIP and a (discarded) CS slot — chains using retf
  // gadgets must leave a dummy word, as in the paper's Listing 1 gadget.
  Machine m(build(R"(
.entry _start
_start:
    mov eax, offset chain
    mov esp, eax
    ret
g_far:
    mov eax, 55
    retf
g_exit:
    mov ebx, eax
    mov eax, 1
    int 0x80
.data
chain:
    dd g_far
    dd g_exit
    dd 0              ; dummy CS slot consumed by retf
)"));
  // Chain layout: ret -> g_far; retf pops g_exit + dummy.
  auto r = m.run();
  EXPECT_EQ(r.reason, StopReason::Exited);
  EXPECT_EQ(r.exit_code, 55);
}

TEST(Vm, NxFaultsOnDataExecution) {
  auto r = run_src(R"(
.entry _start
_start:
    mov eax, offset blob
    jmp eax
.data
blob:
    db 0x90, 0xc3
)");
  EXPECT_EQ(r.reason, StopReason::Fault);
  EXPECT_NE(r.fault.find("non-executable"), std::string::npos);
}

TEST(Vm, WriteToTextFaults) {
  auto r = run_src(R"(
.entry _start
_start:
    mov eax, offset _start
    mov byte [eax], 0x90
    ret
)");
  EXPECT_EQ(r.reason, StopReason::Fault);
  EXPECT_NE(r.fault.find("non-writable"), std::string::npos);
}

TEST(Vm, TamperChangesBothViews) {
  const auto image = build(R"(
.entry _start
_start:
    mov eax, 1
    ret
)");
  Machine m(image);
  // Patch the mov immediate: exit code becomes 9.
  m.tamper(image.entry + 1, 9);
  EXPECT_TRUE(m.run().exited_ok(9));
}

TEST(Vm, IcacheTamperSplitsViews) {
  const auto image = build(R"(
.entry _start
_start:
    mov eax, 1
    ret
)");
  Machine m(image);
  m.tamper_icache(image.entry + 1, 9);
  // Fetch view sees 9…
  bool ok = false;
  EXPECT_EQ(m.fetch_u8(image.entry + 1, ok), 9);
  // …but a data read sees the original byte — the Wurster et al. split.
  EXPECT_EQ(m.read_u8(image.entry + 1, ok), 1);
  // And execution uses the fetch view.
  EXPECT_TRUE(m.run().exited_ok(9));
}

TEST(Vm, LegitimateStoreResynchronisesIcache) {
  const auto image = build(R"(
.entry _start
_start:
    mov eax, 1
    ret
)");
  Machine m(image);
  m.tamper_icache(image.entry + 1, 9);
  // A (privileged) write through the normal path clears the overlay.
  m.tamper(image.entry + 1, 5);
  bool ok = false;
  EXPECT_EQ(m.fetch_u8(image.entry + 1, ok), 5);
  EXPECT_TRUE(m.run().exited_ok(5));
}

TEST(Vm, InvalidOpcodeFaults) {
  const auto image = build(R"(
.entry _start
_start:
    mov eax, 1
    ret
)");
  Machine m(image);
  m.tamper(image.entry, 0x0f);  // 0f b8 is not decodable in our subset
  auto r = m.run();
  EXPECT_EQ(r.reason, StopReason::Fault);
}

TEST(Vm, BudgetExceededStops) {
  auto r = run_src(R"(
.entry _start
_start:
.spin:
    jmp .spin
)");
  EXPECT_EQ(r.reason, StopReason::BudgetExceeded);
}

TEST(Vm, CallFunctionHelper) {
  const auto image = build(R"(
.entry add2
add2:
    push ebp
    mov ebp, esp
    mov eax, [ebp+8]
    add eax, [ebp+12]
    leave
    ret
)");
  Machine m(image);
  auto r = m.call_function(image.find_symbol("add2")->vaddr, {30, 12});
  EXPECT_TRUE(r.exited_ok(42));
}

TEST(Vm, ProfileAttributesCycles) {
  const auto image = build(R"(
.entry _start
_start:
    call hot
    call hot
    call cold
    mov eax, 0
    ret
hot:
    mov ecx, 50
.spin:
    dec ecx
    jnz .spin
    ret
cold:
    ret
)");
  Machine m(image);
  m.profile_enabled = true;
  EXPECT_TRUE(m.run().exited_ok(0));
  const auto& prof = m.profile();
  ASSERT_TRUE(prof.contains("hot"));
  ASSERT_TRUE(prof.contains("cold"));
  EXPECT_EQ(prof.at("hot").calls, 2u);
  EXPECT_EQ(prof.at("cold").calls, 1u);
  EXPECT_GT(prof.at("hot").cycles, prof.at("cold").cycles * 10);
}

TEST(Vm, CyclesAreDeterministic) {
  const std::string src = R"(
.entry _start
_start:
    mov ecx, 1000
.spin:
    dec ecx
    jnz .spin
    mov eax, 0
    ret
)";
  auto r1 = run_src(src);
  auto r2 = run_src(src);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_GT(r1.cycles, 2000u);
}

TEST(Vm, RandSyscallIsSeeded) {
  const std::string src = R"(
.entry _start
_start:
    mov eax, 512
    int 0x80
    ret
)";
  Machine a(build(src)), b(build(src));
  a.rng = Rng(1);
  b.rng = Rng(1);
  EXPECT_EQ(a.run().exit_code, b.run().exit_code);
  Machine c(build(src));
  c.rng = Rng(2);
  // Overwhelmingly likely to differ.
  EXPECT_NE(a.result().exit_code, c.run().exit_code);
}

}  // namespace
}  // namespace plx::vm

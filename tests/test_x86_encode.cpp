#include <gtest/gtest.h>

#include "isa/x86/build.h"
#include "isa/x86/encoder.h"

namespace plx::x86 {
namespace {

std::vector<std::uint8_t> enc(const Insn& insn) {
  Buffer b;
  auto r = encode(insn, b);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  return b.vec();
}

using Bytes = std::vector<std::uint8_t>;

TEST(Encode, MovRegImm) {
  EXPECT_EQ(enc(ins::mov(Reg::EAX, 42)), (Bytes{0xb8, 0x2a, 0x00, 0x00, 0x00}));
  EXPECT_EQ(enc(ins::mov(Reg::EDI, -1)), (Bytes{0xbf, 0xff, 0xff, 0xff, 0xff}));
}

TEST(Encode, MovRegReg) {
  EXPECT_EQ(enc(ins::mov(Reg::EBP, Reg::ESP)), (Bytes{0x89, 0xe5}));
}

TEST(Encode, AluImmPicksShortForm) {
  EXPECT_EQ(enc(ins::sub(Reg::ESP, 24)), (Bytes{0x83, 0xec, 0x18}));
  // Large immediates take the 0x81 group-1 form (we do not use the 0x05
  // eax-short-form on encode; the decoder still accepts it).
  EXPECT_EQ(enc(ins::add(Reg::EAX, 1000)), (Bytes{0x81, 0xc0, 0xe8, 0x03, 0x00, 0x00}));
}

TEST(Encode, WideImmForcesLongForm) {
  Insn i = ins::add(Reg::ECX, 1);
  i.wide_imm = true;
  EXPECT_EQ(enc(i), (Bytes{0x81, 0xc1, 0x01, 0x00, 0x00, 0x00}));
}

TEST(Encode, MemoryForms) {
  EXPECT_EQ(enc(ins::load(Reg::EAX, Mem{.base = Reg::EBP, .disp = 8})),
            (Bytes{0x8b, 0x45, 0x08}));
  EXPECT_EQ(enc(ins::store(Mem{.base = Reg::ESP}, Reg::EAX)),
            (Bytes{0x89, 0x04, 0x24}));
  // [ebp] still needs a disp8 of zero.
  EXPECT_EQ(enc(ins::load(Reg::EAX, Mem{.base = Reg::EBP})),
            (Bytes{0x8b, 0x45, 0x00}));
  // Absolute addressing.
  EXPECT_EQ(enc(ins::load(Reg::ECX, Mem{.disp = 0x11223344})),
            (Bytes{0x8b, 0x0d, 0x44, 0x33, 0x22, 0x11}));
}

TEST(Encode, ScaledIndex) {
  EXPECT_EQ(enc(ins::load(Reg::EAX, Mem{.base = Reg::ESI, .index = Reg::ECX, .scale = 4, .disp = 4})),
            (Bytes{0x8b, 0x44, 0x8e, 0x04}));
}

TEST(Encode, PushPop) {
  EXPECT_EQ(enc(ins::push(Reg::EBP)), (Bytes{0x55}));
  EXPECT_EQ(enc(ins::pop(Reg::EAX)), (Bytes{0x58}));
  EXPECT_EQ(enc(ins::push(5)), (Bytes{0x6a, 0x05}));
  Insn wide = ins::push(5);
  wide.wide_imm = true;
  EXPECT_EQ(enc(wide), (Bytes{0x68, 0x05, 0x00, 0x00, 0x00}));
}

TEST(Encode, Branches) {
  EXPECT_EQ(enc(ins::jmp_rel(0x10, /*wide=*/false)), (Bytes{0xeb, 0x10}));
  EXPECT_EQ(enc(ins::jmp_rel(0x10, /*wide=*/true)), (Bytes{0xe9, 0x10, 0x00, 0x00, 0x00}));
  EXPECT_EQ(enc(ins::jcc_rel(Cond::NS, 5, /*wide=*/false)), (Bytes{0x79, 0x05}));
  EXPECT_EQ(enc(ins::jcc_rel(Cond::E, 5, /*wide=*/true)),
            (Bytes{0x0f, 0x84, 0x05, 0x00, 0x00, 0x00}));
  EXPECT_EQ(enc(ins::call_rel(5)), (Bytes{0xe8, 0x05, 0x00, 0x00, 0x00}));
}

TEST(Encode, RetLeave) {
  EXPECT_EQ(enc(ins::ret()), (Bytes{0xc3}));
  EXPECT_EQ(enc(ins::retf()), (Bytes{0xcb}));
  EXPECT_EQ(enc(ins::leave()), (Bytes{0xc9}));
}

TEST(Encode, SetccMovzx) {
  EXPECT_EQ(enc(ins::setcc(Cond::E, Reg::EAX)), (Bytes{0x0f, 0x94, 0xc0}));
  EXPECT_EQ(enc(ins::movzx8(Reg::EAX, Reg::EAX)), (Bytes{0x0f, 0xb6, 0xc0}));
}

TEST(Encode, Shifts) {
  EXPECT_EQ(enc(ins::shl(Reg::EAX, 4)), (Bytes{0xc1, 0xe0, 0x04}));
  EXPECT_EQ(enc(ins::sar(Reg::EAX, 1)), (Bytes{0xd1, 0xf8}));
  EXPECT_EQ(enc(ins::shr_cl(Reg::EDX)), (Bytes{0xd3, 0xea}));
}

TEST(Encode, ByteOps) {
  Insn i = ins::make2(Mnemonic::ADD, ins::r8(Reg::EBX), ins::r8(Reg::EBP));
  // add bl, ch — the paper's crafted gadget body.
  EXPECT_EQ(enc(i), (Bytes{0x00, 0xeb}));
}

TEST(Encode, IntSyscall) {
  EXPECT_EQ(enc(ins::int_(0x80)), (Bytes{0xcd, 0x80}));
}

TEST(Encode, EspIndexRejected) {
  Buffer b;
  Insn i = ins::load(Reg::EAX, Mem{.base = Reg::EAX, .index = Reg::ESP, .scale = 1});
  EXPECT_FALSE(encode(i, b).ok());
}

}  // namespace
}  // namespace plx::x86

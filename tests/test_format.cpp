// Formatter / disassembler output tests (the listings the examples print).
#include <gtest/gtest.h>

#include "support/error.h"
#include "isa/x86/build.h"
#include "isa/x86/format.h"

namespace plx::x86 {
namespace {

TEST(Format, CommonInstructions) {
  EXPECT_EQ(format(ins::mov(Reg::EAX, 42)), "mov eax, 0x2a");
  EXPECT_EQ(format(ins::mov(Reg::EBP, Reg::ESP)), "mov ebp, esp");
  EXPECT_EQ(format(ins::add(Reg::ECX, 5)), "add ecx, 5");
  EXPECT_EQ(format(ins::push(Reg::EBX)), "push ebx");
  EXPECT_EQ(format(ins::ret()), "ret");
  EXPECT_EQ(format(ins::retf()), "retf");
  EXPECT_EQ(format(ins::int_(0x80)), "int 0x80");
}

TEST(Format, MemoryOperands) {
  EXPECT_EQ(format(ins::load(Reg::EAX, Mem{.base = Reg::EBP, .disp = -4})),
            "mov eax, dword [ebp-0x4]");
  EXPECT_EQ(format(ins::store(Mem{.base = Reg::ESP}, Reg::EAX)),
            "mov dword [esp], eax");
  EXPECT_EQ(format(ins::load(Reg::ECX,
                             Mem{.base = Reg::ESI, .index = Reg::EDX, .scale = 4, .disp = 8})),
            "mov ecx, dword [esi+edx*4+0x8]");
  EXPECT_EQ(format(ins::load(Reg::EAX, Mem{.disp = 0x8048000})),
            "mov eax, dword [0x8048000]");
  EXPECT_EQ(format(ins::store(Mem{.base = Reg::ECX}, Reg::EAX, OpSize::Byte)),
            "mov byte [ecx], al");
}

TEST(Format, BranchesShowAbsoluteTargets) {
  Insn j = ins::jcc_rel(Cond::NE, 0x10);
  j.len = 6;
  EXPECT_EQ(format(j, 0x8048000), "jne 0x8048016");
  Insn c = ins::call_rel(-0x20);
  c.len = 5;
  EXPECT_EQ(format(c, 0x8048100), "call 0x80480e5");
}

TEST(Format, SetccAndCond) {
  EXPECT_EQ(format(ins::setcc(Cond::GE, Reg::EAX)), "setge al");
  Insn jb = ins::jcc_rel(Cond::B, 0);
  jb.len = 6;  // rel targets are relative to the instruction end
  EXPECT_EQ(format(jb, 0), "jb 0x6");
}

TEST(Disassemble, ListsAddressesBytesAndBadOpcodes) {
  const std::vector<std::uint8_t> bytes = {0x55, 0x89, 0xe5, 0x0f, 0x05, 0xc3};
  const std::string listing = disassemble(bytes, 0x1000);
  EXPECT_NE(listing.find("push ebp"), std::string::npos);
  EXPECT_NE(listing.find("mov ebp, esp"), std::string::npos);
  EXPECT_NE(listing.find("(bad)"), std::string::npos);  // 0f 05 unsupported
  EXPECT_NE(listing.find("ret"), std::string::npos);
  EXPECT_NE(listing.find("1000:"), std::string::npos);
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok_result(7);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 7);

  Result<int> err_result(plx::fail("boom"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.error().str(), "boom");

  Result<std::string> moved(std::string("abc"));
  EXPECT_EQ(std::move(moved).take(), "abc");
}

}  // namespace
}  // namespace plx::x86

// Baseline defenses: checksumming networks and oblivious hashing, with
// their documented strengths and weaknesses made executable.
#include <gtest/gtest.h>

#include "attack/wurster.h"
#include "baseline/checksum.h"
#include "baseline/oblivious_hash.h"
#include "image/layout.h"
#include "isa/x86/machine.h"

namespace plx::baseline {
namespace {

const char* kProgram = R"(
int secret_check(int key) {
  if ((key ^ 0x5a5a) == 0x1234) return 1;
  return 0;
}
int helper(int x) {
  int three = 3;   // kept in a variable so the constant is materialised
  return x * three + 1;
}
int main() {
  int acc = 0;
  for (int i = 0; i < 50; i++) {
    acc = acc + helper(i) + secret_check(i);
    acc = acc & 0xffff;
  }
  return acc & 0xff;
}
)";

std::int32_t reference_exit(const std::string& src = kProgram) {
  auto compiled = cc::compile(src);
  EXPECT_TRUE(compiled.ok());
  auto laid = img::layout(compiled.value().module);
  EXPECT_TRUE(laid.ok());
  x86::Machine m(laid.value().image);
  return m.run().exit_code;
}

TEST(Checksum, ProtectedProgramStillWorks) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  auto prot = protect_with_checksums(compiled.value());
  ASSERT_TRUE(prot.ok()) << prot.error();
  x86::Machine m(prot.value().image);
  auto r = m.run();
  ASSERT_EQ(r.reason, vm::StopReason::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, reference_exit());
}

TEST(Checksum, DetectsStaticPatch) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  auto prot = protect_with_checksums(compiled.value());
  ASSERT_TRUE(prot.ok()) << prot.error();

  // Statically patch a byte in a guarded function.
  img::Image tampered = prot.value().image;
  const img::Symbol* victim = tampered.find_symbol("secret_check");
  ASSERT_TRUE(victim);
  for (auto& sec : tampered.sections) {
    if (sec.contains(victim->vaddr + 8)) {
      sec.bytes[victim->vaddr + 8 - sec.vaddr] ^= 0x41;
    }
  }
  x86::Machine m(tampered);
  auto r = m.run();
  ASSERT_EQ(r.reason, vm::StopReason::Exited);
  EXPECT_EQ(r.exit_code, ChecksumProtected::kTamperExit);
}

TEST(Checksum, DefeatedByWursterAttack) {
  // The paper's central motivating attack: patch the *fetch view* only.
  // Checksums read through the data view and pass; the tampered code runs.
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  auto prot = protect_with_checksums(compiled.value());
  ASSERT_TRUE(prot.ok()) << prot.error();

  const img::Symbol* victim = prot.value().image.find_symbol("helper");
  ASSERT_TRUE(victim);
  // Rewrite helper's body: mov eax, 1; ret (changes program output).
  const std::uint8_t patch[] = {0xb8, 0x01, 0x00, 0x00, 0x00, 0xc3};
  auto r = attack::run_with_icache_patch(prot.value().image, victim->vaddr, patch);
  ASSERT_EQ(r.reason, vm::StopReason::Exited) << r.fault;
  // No tamper response fired...
  EXPECT_NE(r.exit_code, ChecksumProtected::kTamperExit);
  // ...and the attacker changed the program's behaviour.
  EXPECT_NE(r.exit_code, reference_exit());
}

TEST(ObliviousHash, ProtectedProgramStillWorks) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  auto prot = protect_with_oh(compiled.value());
  ASSERT_TRUE(prot.ok()) << prot.error();
  EXPECT_FALSE(prot.value().instrumented.empty());
  x86::Machine m(prot.value().image);
  auto r = m.run(500'000'000);
  ASSERT_EQ(r.reason, vm::StopReason::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, reference_exit());
}

TEST(ObliviousHash, DetectsSemanticTamper) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  auto prot = protect_with_oh(compiled.value());
  ASSERT_TRUE(prot.ok()) << prot.error();

  // Change helper's arithmetic (fetch view AND data view — OH is immune to
  // the Wurster distinction because it never reads code).
  img::Image tampered = prot.value().image;
  const img::Symbol* victim = tampered.find_symbol("helper");
  ASSERT_TRUE(victim);
  bool patched = false;
  for (auto& sec : tampered.sections) {
    if (!sec.contains(victim->vaddr)) continue;
    // Find the `mov eax, 3` constant (the multiplier) and bump it to 5.
    for (std::uint32_t off = 0; off + 4 < victim->size; ++off) {
      std::uint8_t* b = sec.bytes.data() + (victim->vaddr + off - sec.vaddr);
      if (b[0] == 0xb8 && b[1] == 0x03 && b[2] == 0x00 && b[3] == 0x00 && b[4] == 0x00) {
        b[1] = 0x05;
        patched = true;
        break;
      }
    }
  }
  ASSERT_TRUE(patched);
  x86::Machine m(tampered);
  auto r = m.run(500'000'000);
  ASSERT_EQ(r.reason, vm::StopReason::Exited);
  EXPECT_EQ(r.exit_code, OhProtected::kTamperExit);
}

TEST(ObliviousHash, CannotProtectNonDeterministicCode) {
  // A function whose behaviour depends on syscall results (the paper's
  // ptrace detector class) is rejected by OH applicability...
  const char* src = R"(
int check_env() {
  if (__syscall(512, 0, 0, 0) & 1) return 1;
  return 0;
}
int main() { return check_env(); }
)";
  auto compiled = cc::compile(src);
  ASSERT_TRUE(compiled.ok());
  const cc::IrFunc* f = nullptr;
  for (const auto& fn : compiled.value().ir.funcs) {
    if (fn.name == "check_env") f = &fn;
  }
  ASSERT_TRUE(f);
  EXPECT_FALSE(oh_applicable(*f));

  OhOptions opts;
  opts.functions = {"check_env"};
  auto prot = protect_with_oh(compiled.value(), opts);
  EXPECT_FALSE(prot.ok());
}

TEST(ObliviousHash, FalsePositiveOnChangedInput) {
  // ...and even hashing only the deterministic caller misfires when the
  // program's actual input differs from the recorded run.
  const char* src = R"(
int shape(int x) { return (x << 2) ^ (x >> 1); }
int main() {
  int v = __syscall(512, 0, 0, 0) & 15;
  return shape(v) & 0xff;
}
)";
  auto compiled = cc::compile(src);
  ASSERT_TRUE(compiled.ok());
  OhOptions opts;
  opts.functions = {"shape"};
  auto prot = protect_with_oh(compiled.value(), opts);
  ASSERT_TRUE(prot.ok()) << prot.error();

  // Same rand seed as the recording run: passes.
  x86::Machine same(prot.value().image);
  auto r1 = same.run();
  ASSERT_EQ(r1.reason, vm::StopReason::Exited);
  EXPECT_NE(r1.exit_code, OhProtected::kTamperExit);

  // Different seed => different hashed state => false positive.
  x86::Machine diff(prot.value().image);
  diff.rng = Rng(99);
  auto r2 = diff.run();
  ASSERT_EQ(r2.reason, vm::StopReason::Exited);
  EXPECT_EQ(r2.exit_code, OhProtected::kTamperExit);
}

TEST(ObliviousHash, SlowsDownProtectedCode) {
  // The cost structure the paper contrasts with: OH overhead lands on the
  // protected code itself.
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  auto plain = img::layout(compiled.value().module);
  ASSERT_TRUE(plain.ok());
  x86::Machine ref(plain.value().image);
  const auto ref_run = ref.run();

  auto prot = protect_with_oh(compiled.value());
  ASSERT_TRUE(prot.ok());
  x86::Machine m(prot.value().image);
  const auto run = m.run(500'000'000);
  EXPECT_GT(run.cycles, ref_run.cycles * 3 / 2)
      << "OH instrumentation should visibly slow the program";
}

}  // namespace
}  // namespace plx::baseline

// The VM's predecode cache must be invisible: self-modifying code, host-side
// patches (tamper), Wurster-style I-cache-only patches and overlay clears
// must all behave exactly as they did when every instruction was decoded on
// every fetch — on warm caches, mid-run, and across re-runs of one Machine.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "image/layout.h"
#include "isa/x86/machine.h"

namespace plx::vm {
namespace {

using Machine = x86::Machine;

img::Image build(const std::string& src) {
  auto mod = assembler::assemble(src);
  EXPECT_TRUE(mod.ok()) << (mod.ok() ? "" : mod.error());
  auto laid = img::layout(mod.value());
  EXPECT_TRUE(laid.ok()) << (laid.ok() ? "" : laid.error());
  return std::move(laid).take().image;
}

// Makes every executable section writable too, so the program itself can
// patch code through the ordinary D-side store path (W+X self-modifying
// code; the VM's W^X default only guards fetch, writes obey section perms).
img::Image make_text_writable(img::Image image) {
  for (auto& sec : image.sections) {
    if (sec.perms & img::kPermExec) sec.perms |= img::kPermWrite;
  }
  return image;
}

TEST(Predecode, SelfModifyingStoreTakesEffectMidRun) {
  // The loop body executes `mov eax, 5` (warming the cache), then stores a
  // new immediate byte into that very instruction. The second iteration must
  // run the *patched* instruction: 5 + 7, not 5 + 5.
  const auto image = make_text_writable(build(R"(
.entry _start
_start:
    mov ecx, 2
    mov ebx, 0
patchme:
    mov eax, 5
    add ebx, eax
    mov edx, offset patchme
    mov byte [edx+1], 7     ; rewrite the mov's imm32 low byte
    sub ecx, 1
    jnz patchme
    mov eax, ebx
    ret
)"));
  Machine m(image);
  auto r = m.run();
  EXPECT_TRUE(r.exited_ok(12)) << r.fault;
  // The store really did drop the decoded-instruction cache.
  EXPECT_GE(m.predecode_invalidations(), 1u);
}

TEST(Predecode, DataStoresDoNotInvalidate) {
  const auto image = build(R"(
.entry _start
_start:
    mov ecx, 100
.loop:
    mov eax, offset counter
    mov dword [eax], ecx
    sub ecx, 1
    jnz .loop
    mov eax, [eax]
    ret
.data
counter:
    dd 0
)");
  Machine m(image);
  EXPECT_TRUE(m.run().exited_ok(1));
  // Plain data traffic must not thrash the predecode cache.
  EXPECT_EQ(m.predecode_invalidations(), 0u);
}

TEST(Predecode, TamperBetweenRunsRedecodes) {
  const auto image = build(R"(
.entry f
f:
    mov eax, 1
    ret
)");
  Machine m(image);
  // Warm the cache.
  EXPECT_TRUE(m.call_function(image.entry, {}).exited_ok(1));
  // Host-side patch of both views; the warm cache must not serve stale 1.
  m.tamper(image.entry + 1, 9);
  EXPECT_TRUE(m.call_function(image.entry, {}).exited_ok(9));
  EXPECT_GE(m.predecode_invalidations(), 1u);
}

TEST(Predecode, IcacheTamperDesynchronisesWarmCache) {
  const auto image = build(R"(
.entry f
f:
    mov eax, 1
    ret
)");
  Machine m(image);
  EXPECT_TRUE(m.call_function(image.entry, {}).exited_ok(1));

  // Wurster split: patch the fetch view only, after the cache is warm.
  m.tamper_icache(image.entry + 1, 9);
  bool ok = false;
  EXPECT_EQ(m.read_u8(image.entry + 1, ok), 1);  // D-side still pristine
  EXPECT_TRUE(m.call_function(image.entry, {}).exited_ok(9));

  // Resynchronising drops the overlay *and* the cached desynced decode.
  m.clear_icache_overlay();
  EXPECT_TRUE(m.call_function(image.entry, {}).exited_ok(1));
}

TEST(Predecode, RestoreAfterTamperRedecodes) {
  // snapshot/restore must invalidate the predecode cache exactly like
  // tamper(): a restore rewrites code bytes underneath any warm decode.
  const auto image = build(R"(
.entry f
f:
    mov eax, 1
    ret
)");
  Machine m(image);
  const Machine::Snapshot pristine = m.snapshot();

  // Warm the cache on the pristine code, then mutate and re-run.
  EXPECT_TRUE(m.call_function(image.entry, {}).exited_ok(1));
  m.tamper(image.entry + 1, 9);
  EXPECT_TRUE(m.call_function(image.entry, {}).exited_ok(9));

  // Restoring the pristine snapshot over the tampered (and now warm-cached)
  // code must bring back the original behaviour, not the cached decode.
  const auto before = m.predecode_invalidations();
  m.restore(pristine);
  EXPECT_TRUE(m.call_function(image.entry, {}).exited_ok(1));
  EXPECT_GT(m.predecode_invalidations(), before);
}

TEST(Predecode, RestoreOfTamperedSnapshotOverWarmCache) {
  // The other direction: a snapshot taken AFTER tampering, restored onto a
  // machine whose cache is warm with the pristine decode, must execute the
  // tampered bytes.
  const auto image = build(R"(
.entry f
f:
    mov eax, 1
    ret
)");
  Machine m(image);
  m.tamper(image.entry + 1, 9);
  const Machine::Snapshot tampered = m.snapshot();

  Machine victim(image);
  // Warm the victim's cache with the pristine instruction...
  EXPECT_TRUE(victim.call_function(image.entry, {}).exited_ok(1));
  // ...then lay the tampered snapshot over it.
  victim.restore(tampered);
  EXPECT_TRUE(victim.call_function(image.entry, {}).exited_ok(9));
}

TEST(Predecode, SnapshotRestoreRoundTripIsExact) {
  // restore(snapshot()) is a no-op for guest-visible behaviour: a run after
  // the round trip matches a run without it, instruction for instruction.
  const auto image = build(R"(
.entry f
f:
    mov ecx, 50
    mov eax, 0
.loop:
    add eax, ecx
    sub ecx, 1
    jnz .loop
    ret
)");
  Machine a(image);
  const auto plain = a.call_function(image.entry, {});

  Machine b(image);
  b.restore(b.snapshot());
  const auto round = b.call_function(image.entry, {});

  EXPECT_TRUE(plain.exited_ok(1275));
  EXPECT_TRUE(round.exited_ok(1275));
  EXPECT_EQ(plain.instructions, round.instructions);
  EXPECT_EQ(plain.cycles, round.cycles);
}

TEST(Predecode, RepeatedRunsAreDeterministic) {
  const auto image = build(R"(
.entry f
f:
    mov ecx, 50
    mov eax, 0
.loop:
    add eax, ecx
    sub ecx, 1
    jnz .loop
    ret
)");
  Machine warm(image);
  const auto first = warm.call_function(image.entry, {});
  const auto second = warm.call_function(image.entry, {});
  Machine cold(image);
  const auto fresh = cold.call_function(image.entry, {});

  // Warm-cache, re-run and cold-cache executions agree cycle-for-cycle —
  // the cache changes host speed, never guest-visible accounting.
  EXPECT_TRUE(first.exited_ok(1275));
  EXPECT_EQ(first.instructions, second.instructions);
  EXPECT_EQ(first.cycles, second.cycles);
  EXPECT_EQ(first.instructions, fresh.instructions);
  EXPECT_EQ(first.cycles, fresh.cycles);
  EXPECT_EQ(warm.predecode_invalidations(), 0u);
}

}  // namespace
}  // namespace plx::vm

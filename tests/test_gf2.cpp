#include <gtest/gtest.h>

#include <algorithm>

#include "gf2/gf2.h"

namespace plx::gf2 {
namespace {

TEST(Gf2, IdentityActsTrivially) {
  const Mat id = Mat::identity();
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Vec v = rng.next_u32();
    EXPECT_EQ(id.mul(v), v);
  }
  EXPECT_EQ(id.rank(), 32);
}

TEST(Gf2, RandomInvertibleHasFullRank) {
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const Mat m = Mat::random_invertible(rng);
    EXPECT_EQ(m.rank(), 32);
  }
}

TEST(Gf2, SingularMatrixHasNoInverse) {
  Mat m;  // all-zero
  EXPECT_EQ(m.rank(), 0);
  EXPECT_FALSE(m.inverse().has_value());

  // Duplicate columns => rank < 32.
  Mat dup = Mat::identity();
  dup.set_col(5, dup.col(4));
  EXPECT_LT(dup.rank(), 32);
  EXPECT_FALSE(dup.inverse().has_value());
}

TEST(Gf2, InverseRoundtrips) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Mat m = Mat::random_invertible(rng);
    const auto inv = m.inverse();
    ASSERT_TRUE(inv.has_value());
    for (int i = 0; i < 50; ++i) {
      const Vec v = rng.next_u32();
      EXPECT_EQ(m.mul(inv->mul(v)), v);
      EXPECT_EQ(inv->mul(m.mul(v)), v);
    }
  }
}

TEST(Gf2, DecomposeCombineRoundtrips) {
  Rng rng(4);
  const Mat basis = Mat::random_invertible(rng);
  const auto inv = basis.inverse();
  ASSERT_TRUE(inv.has_value());
  for (int i = 0; i < 500; ++i) {
    const Vec v = rng.next_u32();
    const auto indices = decompose(*inv, v);
    EXPECT_EQ(combine(basis, indices), v);
    // Indices are ascending and unique.
    for (std::size_t k = 1; k < indices.size(); ++k) {
      EXPECT_LT(indices[k - 1], indices[k]);
    }
  }
}

TEST(Gf2, DecomposeZeroIsEmpty) {
  Rng rng(5);
  const Mat basis = Mat::random_invertible(rng);
  const auto inv = basis.inverse();
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(decompose(*inv, 0).empty());
}

TEST(Gf2, DifferentBasesGiveDifferentDecompositions) {
  // The whole point of per-binary random bases: the same chain word
  // decomposes differently, so index arrays are not portable across builds.
  Rng rng(6);
  const Mat b1 = Mat::random_invertible(rng);
  const Mat b2 = Mat::random_invertible(rng);
  const auto i1 = b1.inverse(), i2 = b2.inverse();
  ASSERT_TRUE(i1 && i2);
  int differing = 0;
  for (int k = 0; k < 100; ++k) {
    const Vec v = rng.next_u32();
    if (decompose(*i1, v) != decompose(*i2, v)) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Gf2, TamperedBasisCorruptsRegeneratedWords) {
  // Probabilistic chains store a basis + index arrays instead of chain
  // words. Flipping a single bit of the stored basis (one byte of image
  // data) must corrupt the words regenerated from it — this is what makes
  // the storage itself tamper-sensitive.
  Rng rng(7);
  const Mat basis = Mat::random_invertible(rng);
  const auto inv = basis.inverse();
  ASSERT_TRUE(inv.has_value());

  Mat tampered = basis;
  tampered.set_col(11, tampered.col(11) ^ (1u << 19));  // one flipped bit

  int corrupted = 0;
  const int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    const Vec v = rng.next_u32();
    const auto indices = decompose(*inv, v);
    if (combine(tampered, indices) != v) ++corrupted;
  }
  // Column 11 participates in ~half of all decompositions; every one of
  // those regenerates wrong.
  EXPECT_GT(corrupted, kTrials / 3);
}

TEST(Gf2, TamperedIndexSelectionCorruptsRegeneratedWords) {
  // Same for the index arrays: adding or removing one basis column from a
  // stored decomposition changes the combined word (columns are linearly
  // independent, so no other subset compensates).
  Rng rng(8);
  const Mat basis = Mat::random_invertible(rng);
  const auto inv = basis.inverse();
  ASSERT_TRUE(inv.has_value());

  for (int i = 0; i < 100; ++i) {
    const Vec v = rng.next_u32();
    auto indices = decompose(*inv, v);
    ASSERT_EQ(combine(basis, indices), v);
    // Toggle membership of one column (a one-bit flip of the index mask).
    const int victim = static_cast<int>(rng.next_u32() % 32);
    auto it = std::find(indices.begin(), indices.end(), victim);
    if (it != indices.end()) {
      indices.erase(it);
    } else {
      indices.push_back(victim);
      std::sort(indices.begin(), indices.end());
    }
    EXPECT_NE(combine(basis, indices), v) << "trial " << i;
  }
}

}  // namespace
}  // namespace plx::gf2

#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace plx::support {
namespace {

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int ran = 0;
  pool.parallel_for(0, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, ParallelForReturnsOnlyWhenAllDone) {
  // Results written without synchronisation: parallel_for's completion is
  // the only barrier. TSan/ASan builds would flag any early return.
  ThreadPool pool(4);
  constexpr std::size_t kN = 2'000;
  std::vector<std::uint64_t> out(kN);
  pool.parallel_for(kN, [&](std::size_t i) { out[i] = i * i; });
  std::uint64_t sum = std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  // sum of squares 0..n-1 = (n-1)n(2n-1)/6
  EXPECT_EQ(sum, std::uint64_t{kN - 1} * kN * (2 * kN - 1) / 6);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // A task running on a pool worker may itself call parallel_for (the
  // scanner inside a pool-sharded bench does); the nested call must run
  // inline rather than wait on the occupied workers.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, SharedPoolIsUsableConcurrently) {
  auto& pool = ThreadPool::shared();
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(64, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 640);
}

TEST(ThreadPool, ZeroThreadRequestStillWorks) {
  // threads == 0 means "pick a default"; must never mean "no workers".
  ThreadPool pool(0);
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace plx::support

// End-to-end mini-C tests: compile, lay out, run in the VM, check results.
#include <gtest/gtest.h>

#include "isa/x86/cc_backend.h"
#include "cc/compile.h"
#include "image/layout.h"
#include "isa/x86/machine.h"

namespace plx::cc {
namespace {

vm::RunResult run_c(const std::string& src, std::string* output = nullptr,
                    std::uint64_t budget = 10'000'000) {
  auto compiled = compile(src);
  EXPECT_TRUE(compiled.ok()) << (compiled.ok() ? "" : compiled.error());
  if (!compiled.ok()) return {};
  auto laid = img::layout(compiled.value().module);
  EXPECT_TRUE(laid.ok()) << (laid.ok() ? "" : laid.error());
  if (!laid.ok()) return {};
  x86::Machine m(laid.value().image);
  auto r = m.run(budget);
  if (output) *output = m.output;
  return r;
}

TEST(MiniC, ReturnsConstant) {
  EXPECT_TRUE(run_c("int main() { return 42; }").exited_ok(42));
}

TEST(MiniC, Arithmetic) {
  EXPECT_TRUE(run_c("int main() { return 2 + 3 * 4 - 5; }").exited_ok(9));
  EXPECT_TRUE(run_c("int main() { return (2 + 3) * 4; }").exited_ok(20));
  EXPECT_TRUE(run_c("int main() { return 17 / 5; }").exited_ok(3));
  EXPECT_TRUE(run_c("int main() { return 17 % 5; }").exited_ok(2));
  EXPECT_TRUE(run_c("int main() { return -17 / 5; }").exited_ok(-3));
  EXPECT_TRUE(run_c("int main() { return 1 << 10; }").exited_ok(1024));
  EXPECT_TRUE(run_c("int main() { return -16 >> 2; }").exited_ok(-4));
  EXPECT_TRUE(run_c("int main() { return (0xff & 0x0f) | 0x30; }").exited_ok(0x3f));
  EXPECT_TRUE(run_c("int main() { return 0xaa ^ 0xff; }").exited_ok(0x55));
  EXPECT_TRUE(run_c("int main() { return ~0; }").exited_ok(-1));
  EXPECT_TRUE(run_c("int main() { return -(5); }").exited_ok(-5));
}

TEST(MiniC, Comparisons) {
  EXPECT_TRUE(run_c("int main() { return 3 < 5; }").exited_ok(1));
  EXPECT_TRUE(run_c("int main() { return 5 < 3; }").exited_ok(0));
  EXPECT_TRUE(run_c("int main() { return -1 < 1; }").exited_ok(1));
  EXPECT_TRUE(run_c("int main() { return 3 <= 3; }").exited_ok(1));
  EXPECT_TRUE(run_c("int main() { return 4 > 4; }").exited_ok(0));
  EXPECT_TRUE(run_c("int main() { return 4 >= 4; }").exited_ok(1));
  EXPECT_TRUE(run_c("int main() { return 7 == 7; }").exited_ok(1));
  EXPECT_TRUE(run_c("int main() { return 7 != 7; }").exited_ok(0));
  EXPECT_TRUE(run_c("int main() { return !5; }").exited_ok(0));
  EXPECT_TRUE(run_c("int main() { return !0; }").exited_ok(1));
}

TEST(MiniC, ShortCircuit) {
  // The right operand must not evaluate when short-circuited: make it a
  // division by zero, which would fault.
  EXPECT_TRUE(run_c("int main() { int z = 0; return 0 && (1 / z); }").exited_ok(0));
  EXPECT_TRUE(run_c("int main() { int z = 0; return 1 || (1 / z); }").exited_ok(1));
  EXPECT_TRUE(run_c("int main() { return 1 && 2; }").exited_ok(1));
  EXPECT_TRUE(run_c("int main() { return 0 || 0; }").exited_ok(0));
}

TEST(MiniC, ControlFlow) {
  EXPECT_TRUE(run_c(R"(
int main() {
  int n = 0;
  if (3 > 2) { n = 1; } else { n = 2; }
  return n;
})").exited_ok(1));

  EXPECT_TRUE(run_c(R"(
int main() {
  int sum = 0;
  int i = 1;
  while (i <= 10) { sum = sum + i; i++; }
  return sum;
})").exited_ok(55));

  EXPECT_TRUE(run_c(R"(
int main() {
  int sum = 0;
  for (int i = 0; i < 5; i++) {
    if (i == 3) continue;
    if (i == 4) break;
    sum = sum + i;
  }
  return sum;
})").exited_ok(3));
}

TEST(MiniC, FunctionsAndRecursion) {
  EXPECT_TRUE(run_c(R"(
int add(int a, int b) { return a + b; }
int main() { return add(40, 2); }
)").exited_ok(42));

  EXPECT_TRUE(run_c(R"(
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
)").exited_ok(144));
}

TEST(MiniC, GlobalsAndArrays) {
  EXPECT_TRUE(run_c(R"(
int counter = 7;
int table[4] = {10, 20, 30, 40};
int main() {
  counter = counter + table[2];
  return counter;
})").exited_ok(37));

  EXPECT_TRUE(run_c(R"(
int buf[8];
int main() {
  for (int i = 0; i < 8; i++) buf[i] = i * i;
  int sum = 0;
  for (int i = 0; i < 8; i++) sum = sum + buf[i];
  return sum;
})").exited_ok(140));
}

TEST(MiniC, LocalArraysAndPointers) {
  EXPECT_TRUE(run_c(R"(
int main() {
  int a[4];
  a[0] = 5;
  a[1] = 6;
  int *p = a;
  p[2] = 7;
  *(p + 3) = 8;
  return a[0] + a[1] + a[2] + a[3];
})").exited_ok(26));

  EXPECT_TRUE(run_c(R"(
int deref(int *p) { return *p; }
int main() {
  int x = 99;
  return deref(&x);
})").exited_ok(99));
}

TEST(MiniC, CharArraysAreByteAddressed) {
  EXPECT_TRUE(run_c(R"(
char buf[8];
int main() {
  buf[0] = 'A';
  buf[1] = buf[0] + 1;
  buf[7] = 255;
  return buf[0] + buf[1] + buf[7];
})").exited_ok('A' + 'B' + 255));

  EXPECT_TRUE(run_c(R"(
int strlen_(char *s) {
  int n = 0;
  while (s[n]) n++;
  return n;
}
char msg[] = "hello";
int main() { return strlen_(msg); }
)").exited_ok(5));
}

TEST(MiniC, StringLiteralsAndSyscalls) {
  std::string output;
  auto r = run_c(R"(
int write_str(char *s, int n) {
  return __syscall(4, 1, s, n);
}
int main() {
  write_str("hi there", 8);
  return 0;
})", &output);
  EXPECT_TRUE(r.exited_ok(0));
  EXPECT_EQ(output, "hi there");
}

TEST(MiniC, PtraceDetectorCompiles) {
  // The paper's running example, in mini-C.
  auto r = run_c(R"(
int check_ptrace() {
  if (__syscall(26, 0, 0, 0) < 0) {
    return 1;   // debugger detected
  }
  return 0;
}
int main() { return check_ptrace(); }
)");
  EXPECT_TRUE(r.exited_ok(0));
}

TEST(MiniC, GlobalCharInit) {
  EXPECT_TRUE(run_c(R"(
char key[4] = {1, 2, 3, 4};
int main() { return key[0] + key[3]; }
)").exited_ok(5));
}

TEST(MiniC, NestedCallsAndComplexExpr) {
  EXPECT_TRUE(run_c(R"(
int sq(int x) { return x * x; }
int main() {
  return sq(sq(2)) + sq(3 + 1) - (sq(1) && sq(0));
})").exited_ok(32));
}

TEST(MiniC, ErrorsReportLines) {
  auto c = compile("int main() {\n  return undefined_var;\n}");
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.error().str().find("line 2"), std::string::npos);

  c = compile("int main() { return 1 + ; }");
  EXPECT_FALSE(c.ok());

  c = compile("int f(int a) { return a; }\nint main() { return f(1, 2); }");
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.error().str().find("argument count"), std::string::npos);
}

TEST(MiniC, MulLoweringPreservesSemantics) {
  // lower_mul_for_rop replaces Mul with a shift-add loop; run both via the
  // x86 backend and compare (this is the transformation chains rely on).
  const std::string src = R"(
int mulcheck(int a, int b) { return a * b; }
int main() { return 0; }
)";
  auto compiled = compile(src);
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  const IrFunc* mul_fn = nullptr;
  for (const auto& f : compiled.value().ir.funcs) {
    if (f.name == "mulcheck") mul_fn = &f;
  }
  ASSERT_TRUE(mul_fn);
  const IrFunc lowered = lower_mul_for_rop(*mul_fn);
  for (const auto& insn : lowered.insns) {
    EXPECT_NE(insn.op, IrOp::Mul);
  }

  // Build a module with the lowered body replacing the original.
  img::Module mod = compiled.value().module;
  for (auto& frag : mod.fragments) {
    if (frag.name == "mulcheck") {
      auto relowered = emit_func_x86(lowered);
      ASSERT_TRUE(relowered.ok()) << relowered.error();
      frag = std::move(relowered).take();
    }
  }
  auto laid = img::layout(mod);
  ASSERT_TRUE(laid.ok()) << laid.error();

  const std::uint32_t fn_addr = laid.value().image.find_symbol("mulcheck")->vaddr;
  const std::int32_t cases[][3] = {{3, 4, 12},        {0, 99, 0},
                                   {-3, 4, -12},      {7, -6, -42},
                                   {-5, -5, 25},      {100000, 3000, 300000000},
                                   {1 << 16, 1 << 15, INT32_MIN}};
  for (const auto& c : cases) {
    x86::Machine m(laid.value().image);
    auto r = m.call_function(fn_addr, {static_cast<std::uint32_t>(c[0]),
                                       static_cast<std::uint32_t>(c[1])});
    EXPECT_TRUE(r.exited_ok(c[2])) << c[0] << " * " << c[1];
  }
}

TEST(MiniC, OpDiversityMetric) {
  auto compiled = compile(R"(
int rich(int a, int b) {
  int c = a + b;
  c = c - a;
  c = c * 3;
  c = c ^ b;
  c = c & 0xff;
  c = c | a;
  c = c << 2;
  if (c > b) c = c >> 1;
  return c;
}
int poor(int a) { return a; }
int main() { return 0; }
)");
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  const IrFunc *rich = nullptr, *poor = nullptr;
  for (const auto& f : compiled.value().ir.funcs) {
    if (f.name == "rich") rich = &f;
    if (f.name == "poor") poor = &f;
  }
  ASSERT_TRUE(rich && poor);
  EXPECT_GT(rich->op_diversity(), poor->op_diversity());
  EXPECT_FALSE(rich->has_calls());
  EXPECT_FALSE(rich->has_div());
}

}  // namespace
}  // namespace plx::cc

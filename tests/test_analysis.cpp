// Analysis-module unit tests: call graph, profiler, §VII-B selection.
#include <gtest/gtest.h>

#include "analysis/callgraph.h"
#include "analysis/profiler.h"
#include "analysis/selection.h"
#include "cc/compile.h"
#include "image/layout.h"

namespace plx::analysis {
namespace {

const char* kProgram = R"(
int leaf(int a, int b) {
  int r = (a ^ b) + (a << 2);
  if (r < 0) r = -r;
  return r & 0xffff;
}
int plain_copy(int a) { return a; }
int uses_div(int a) { return a / 3; }
int caller1(int x) { return leaf(x, 1) + uses_div(x); }
int caller2(int x) { return leaf(x, 2) + leaf(x, 3); }
int hot(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    s = (s + i) ^ (s << 1);
    s = s & 0xffffff;
  }
  return s;
}
int main() {
  int acc = hot(20000);
  for (int i = 0; i < 8; i++) {
    acc = acc + caller1(i) + caller2(i) + plain_copy(i);
  }
  return acc & 0xff;
}
)";

cc::Compiled compiled() {
  auto c = cc::compile(kProgram);
  EXPECT_TRUE(c.ok()) << c.error();
  return std::move(c).take();
}

TEST(CallGraph, CountsSitesAndCallers) {
  auto prog = compiled();
  const auto cg = build_callgraph(prog.ir);
  EXPECT_EQ(cg.sites("leaf"), 3);
  EXPECT_EQ(cg.distinct_callers("leaf"), 2);
  EXPECT_EQ(cg.sites("uses_div"), 1);
  EXPECT_EQ(cg.sites("hot"), 1);
  EXPECT_EQ(cg.sites("nonexistent"), 0);
  EXPECT_EQ(cg.distinct_callers("main"), 0);
}

TEST(Profiler, AttributesTimeAndCalls) {
  auto prog = compiled();
  auto laid = img::layout(prog.module);
  ASSERT_TRUE(laid.ok());
  const auto profile = profile_run(laid.value().image);
  ASSERT_EQ(profile.run.reason, vm::StopReason::Exited);
  EXPECT_GT(profile.total_cycles, 100'000u);
  // hot dominates; leaf is cold but exercised.
  EXPECT_GT(profile.fraction("hot"), 0.5);
  EXPECT_LT(profile.fraction("leaf"), 0.02);
  EXPECT_EQ(profile.calls("leaf"), 24u);
  EXPECT_EQ(profile.calls("hot"), 1u);
}

TEST(Selection, FollowsPaperCriteria) {
  auto prog = compiled();
  const auto cg = build_callgraph(prog.ir);
  auto laid = img::layout(prog.module);
  ASSERT_TRUE(laid.ok());
  const auto profile = profile_run(laid.value().image);

  const auto picks = select_verification_functions(prog.ir, cg, &profile, {});
  ASSERT_FALSE(picks.empty());
  // leaf: >=2 sites, cold, chain-compilable, diverse — the right answer.
  EXPECT_EQ(picks[0], "leaf");

  // uses_div must never be selected (no chain lowering for division).
  SelectionOptions all;
  all.count = 100;
  const auto eligible = select_verification_functions(prog.ir, cg, &profile, all);
  EXPECT_EQ(std::find(eligible.begin(), eligible.end(), "uses_div"), eligible.end());
  // hot fails the 2% threshold.
  EXPECT_EQ(std::find(eligible.begin(), eligible.end(), "hot"), eligible.end());
  // plain_copy has only one call site.
  EXPECT_EQ(std::find(eligible.begin(), eligible.end(), "plain_copy"), eligible.end());
}

TEST(Selection, ChainCompilableRespectsLowering) {
  auto prog = compiled();
  for (const auto& f : prog.ir.funcs) {
    const auto lowered = cc::lower_bytes_for_rop(cc::lower_mul_for_rop(f));
    if (f.name == "uses_div") {
      EXPECT_FALSE(chain_compilable(lowered));
    }
    if (f.name == "leaf") {
      EXPECT_TRUE(chain_compilable(lowered));
    }
  }
}

TEST(Selection, WithoutProfileSkipsTimeFilter) {
  auto prog = compiled();
  const auto cg = build_callgraph(prog.ir);
  SelectionOptions all;
  all.count = 100;
  const auto eligible = select_verification_functions(prog.ir, cg, nullptr, all);
  // Without a profile, even `hot` would qualify structurally — but it has
  // only one call site, so it still fails; leaf qualifies.
  EXPECT_NE(std::find(eligible.begin(), eligible.end(), "leaf"), eligible.end());
}

}  // namespace
}  // namespace plx::analysis

// The staged-pipeline refactor contract (src/parallax/pipeline):
//
//  - run_pipeline() output is byte-identical to the pre-refactor monolith:
//    the golden FNV-1a digests below were recorded from the monolithic
//    Protector::protect over the whole corpus x hardening matrix and must
//    never drift without an intentional, understood pipeline change;
//  - stage traces are complete, ordered and carry the documented counters;
//  - the stage sequence can be replayed stage by stage on a PipelineContext
//    with the same result as the driver;
//  - the batch driver (src/parallax/batch) is deterministic in thread count
//    and reports structured diagnostics for failing jobs.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "cc/compile.h"
#include "parallax/batch.h"
#include "parallax/pipeline.h"
#include "parallax/protector.h"
#include "support/file_io.h"
#include "workloads/corpus.h"

namespace plx {
namespace {

struct Golden {
  const char* workload;
  parallax::Hardening mode;
  std::uint64_t fnv64;
  std::size_t bytes;
};

// Recorded from the pre-refactor monolithic protector (default options,
// seed 0x9a11a, each workload's suggested verification function).
constexpr parallax::Hardening kClear = parallax::Hardening::Cleartext;
constexpr parallax::Hardening kXor = parallax::Hardening::Xor;
constexpr parallax::Hardening kRc4 = parallax::Hardening::Rc4;
constexpr parallax::Hardening kProb = parallax::Hardening::Probabilistic;
constexpr Golden kGolden[] = {
    {"miniwget", kClear, 0x2c0e5e28fa0e3706ull, 8234},
    {"miniwget", kXor, 0x31469c10f6aa34c9ull, 9496},
    {"miniwget", kRc4, 0xcab2c4600cb8dd3eull, 9649},
    {"miniwget", kProb, 0xc8f6505b67a2186full, 139647},
    {"mininginx", kClear, 0x6244056e4451755bull, 9201},
    {"mininginx", kXor, 0xa42c83cd44917df1ull, 9903},
    {"mininginx", kRc4, 0xab1282f1bbe98545ull, 10056},
    {"mininginx", kProb, 0x099222f42fb442f5ull, 67206},
    {"minibzip2", kClear, 0xb7963d8238267002ull, 9999},
    {"minibzip2", kXor, 0xe2372ed1729d1431ull, 10891},
    {"minibzip2", kRc4, 0x9b30a0d777bdc824ull, 11044},
    {"minibzip2", kProb, 0x1cb1cbeafec9c04cull, 92817},
    {"minigzip", kClear, 0x92fb6bc5a487a9e0ull, 8846},
    {"minigzip", kXor, 0xa2e3c43f07488bf3ull, 9708},
    {"minigzip", kRc4, 0x64e4b86e9dca7d60ull, 9861},
    {"minigzip", kProb, 0x120bf4c1eb00819aull, 87443},
    {"minigcc", kClear, 0x949e8314b0664f1cull, 10828},
    {"minigcc", kXor, 0xb5697bd4c452d7d9ull, 12160},
    {"minigcc", kRc4, 0xe8ef952f0b145d58ull, 12313},
    {"minigcc", kProb, 0xe1d7f27a470e48d1ull, 152786},
    {"minilame", kClear, 0xd68286fbdeaec513ull, 6076},
    {"minilame", kXor, 0x5709d35d0d0edafcull, 6774},
    {"minilame", kRc4, 0x84cb3131b587b28dull, 6927},
    {"minilame", kProb, 0x0d96a07a404342fcull, 65659},
};

const cc::Compiled& compiled_workload(const std::string& name) {
  static std::map<std::string, cc::Compiled> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    const workloads::Workload* w = workloads::find_workload(name);
    EXPECT_NE(w, nullptr) << name;
    auto compiled = cc::compile(w->source);
    EXPECT_TRUE(compiled.ok()) << compiled.error().str();
    it = cache.emplace(name, std::move(compiled).take()).first;
  }
  return it->second;
}

parallax::ProtectOptions options_for(const std::string& name,
                                     parallax::Hardening mode) {
  parallax::ProtectOptions opts;
  opts.verify_functions = {workloads::find_workload(name)->verify_function};
  opts.hardening = mode;
  return opts;
}

TEST(Pipeline, GoldenImageDigests) {
  for (const Golden& g : kGolden) {
    parallax::Protector protector;
    auto prot =
        protector.protect(compiled_workload(g.workload), options_for(g.workload, g.mode));
    ASSERT_TRUE(prot.ok()) << g.workload << ": " << prot.error().str();
    const Buffer blob = prot.value().image.serialize();
    EXPECT_EQ(blob.size(), g.bytes) << g.workload;
    EXPECT_EQ(parallax::fnv1a64(blob.span().data(), blob.size()), g.fnv64)
        << g.workload << " mode " << static_cast<int>(g.mode);
  }
}

TEST(Pipeline, StageTracesCompleteAndOrdered) {
  parallax::Protector protector;
  auto prot = protector.protect(compiled_workload("miniwget"),
                                options_for("miniwget", kXor));
  ASSERT_TRUE(prot.ok()) << prot.error().str();

  const auto& traces = prot.value().traces;
  const auto& stages = parallax::protection_stages();
  ASSERT_EQ(traces.size(), stages.size());
  for (std::size_t i = 0; i < stages.size(); ++i) {
    EXPECT_EQ(traces[i].stage, stages[i]->name());
    EXPECT_GE(traces[i].millis, 0.0);
  }

  // select/stub-install run before any layout exists; later stages see the
  // laid-out image.
  EXPECT_EQ(traces[0].stage, "select");
  EXPECT_EQ(traces[0].input_bytes, 0u);
  EXPECT_EQ(traces.back().stage, "materialize");
  EXPECT_GT(traces.back().output_bytes, 0u);

  // Documented counters the bench layer keys on.
  auto find = [&](const std::string& name) -> const parallax::StageTrace& {
    for (const auto& t : traces) {
      if (t.stage == name) return t;
    }
    ADD_FAILURE() << "no trace for stage " << name;
    static parallax::StageTrace empty;
    return empty;
  };
  EXPECT_EQ(find("select").counter("verify_functions"), 1u);
  EXPECT_GT(find("scan").counter("gadgets_stable"), 0u);
  EXPECT_EQ(find("chain-compile").counter("chains"), 1u);
  EXPECT_GT(find("chain-compile").counter("chain_words"), 0u);
  EXPECT_GT(find("materialize").counter("protected_ranges"), 0u);
}

TEST(Pipeline, StagewiseReplayMatchesDriver) {
  const auto& program = compiled_workload("minilame");
  const auto opts = options_for("minilame", kRc4);

  parallax::Protector protector;
  auto via_driver = protector.protect(program, opts);
  ASSERT_TRUE(via_driver.ok());

  parallax::PipelineContext ctx = parallax::make_context(program, opts);
  for (const parallax::Stage* stage : parallax::protection_stages()) {
    auto status = parallax::run_stage(*stage, ctx);
    ASSERT_TRUE(status.ok()) << stage->name() << ": " << status.error().str();
  }

  const Buffer a = via_driver.value().image.serialize();
  const Buffer b = ctx.out.image.serialize();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(parallax::fnv1a64(a.span().data(), a.size()),
            parallax::fnv1a64(b.span().data(), b.size()));
}

TEST(Pipeline, StageFailureNamesTheStage) {
  // An unknown verification function fails in select, and the diagnostic
  // carries the stage frame plus a machine-checkable code.
  parallax::ProtectOptions opts;
  opts.verify_functions = {"no_such_function"};
  parallax::Protector protector;
  auto prot = protector.protect(compiled_workload("miniwget"), opts);
  ASSERT_FALSE(prot.ok());
  EXPECT_EQ(prot.error().code(), DiagCode::SelectionError);
  EXPECT_NE(prot.error().str().find("stage 'select'"), std::string::npos)
      << prot.error().str();
}

TEST(Batch, DeterministicAcrossThreadCounts) {
  const auto jobs = parallax::corpus_jobs(kXor);
  ASSERT_EQ(jobs.size(), 6u);
  const auto serial = parallax::protect_batch(jobs, 1);
  const auto parallel = parallax::protect_batch(jobs, 4);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(serial[i].name, jobs[i].name);
    EXPECT_TRUE(serial[i].ok) << serial[i].error.str();
    EXPECT_TRUE(parallel[i].ok) << parallel[i].error.str();
    EXPECT_EQ(serial[i].image_fnv64, parallel[i].image_fnv64) << jobs[i].name;
    EXPECT_EQ(serial[i].image_bytes, parallel[i].image_bytes);
    EXPECT_EQ(serial[i].chain_words, parallel[i].chain_words);
  }
}

TEST(Batch, MatchesSingleProtectorRuns) {
  // A batch job is the same computation as a lone Protector::protect — the
  // xor row of the golden table must hold through the batch driver too.
  const auto results = parallax::protect_batch(parallax::corpus_jobs(kXor), 0);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.name << ": " << r.error.str();
    bool found = false;
    for (const Golden& g : kGolden) {
      if (g.workload != r.name || g.mode != kXor) continue;
      found = true;
      EXPECT_EQ(r.image_fnv64, g.fnv64) << r.name;
      EXPECT_EQ(r.image_bytes, g.bytes) << r.name;
    }
    EXPECT_TRUE(found) << r.name;
  }
}

TEST(Batch, FailingJobCarriesStructuredDiagnostic) {
  parallax::BatchJob bad;
  bad.name = "broken";
  bad.source = "int main( {";
  auto results = parallax::protect_batch({bad}, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].name, "broken");
  EXPECT_EQ(results[0].error.code(), DiagCode::ParseError);
  EXPECT_NE(results[0].error.str().find("batch job 'broken'"),
            std::string::npos)
      << results[0].error.str();
  EXPECT_TRUE(results[0].traces.empty());
}

TEST(Batch, WritesProtectJson) {
  auto jobs = parallax::corpus_jobs(kClear);
  jobs.resize(1);
  const auto results = parallax::protect_batch(jobs, 1);
  ASSERT_TRUE(results[0].ok);
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(parallax::write_protect_json(results[0], dir));

  auto text =
      support::read_text_file(dir + "/PROTECT_" + results[0].name + ".json");
  ASSERT_TRUE(text.ok()) << text.error().str();
  const std::string& json = text.value();
  EXPECT_NE(json.find("\"tool\": \"protect\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"miniwget\""), std::string::npos);
  EXPECT_NE(json.find("\"protect\": \"miniwget\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"materialize\""), std::string::npos);
  char fnv_hex[24];
  std::snprintf(fnv_hex, sizeof fnv_hex, "%016llx",
                static_cast<unsigned long long>(results[0].image_fnv64));
  EXPECT_NE(json.find(fnv_hex), std::string::npos);
}

TEST(Diag, RendersStageAndContextChain) {
  Diag d(DiagCode::LayoutError, "image.layout", "undefined symbol 'x'");
  d.with_context("laying out module").with_context("stage 'layout'");
  EXPECT_EQ(d.str(),
            "[image.layout] stage 'layout': laying out module: "
            "undefined symbol 'x'");
  EXPECT_EQ(d.code(), DiagCode::LayoutError);
  EXPECT_STREQ(diag_code_name(d.code()), "layout");
}

TEST(Diag, WarningsTravelWithTheDiagnostic) {
  Diag d(DiagCode::StubError, "parallax.stub", "boom");
  d.with_warning("crafting produced nothing");
  ASSERT_EQ(d.warnings().size(), 1u);
  EXPECT_EQ(d.warnings()[0], "crafting produced nothing");
}

TEST(Diag, ImplicitStringConversionKeepsLegacyCallSites) {
  Result<int> r = fail("plain message");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), DiagCode::Unspecified);
  EXPECT_EQ(r.error().str(), "plain message");
}

using DiagDeathTest = ::testing::Test;

TEST(DiagDeathTest, ValueOnErrorAborts) {
  EXPECT_DEATH(
      {
        Result<int> r = fail(DiagCode::Internal, "test", "nope");
        (void)r.value();
      },
      "value\\(\\) on error result");
}

TEST(DiagDeathTest, ErrorOnOkAborts) {
  EXPECT_DEATH(
      {
        Result<int> r = 7;
        (void)r.error();
      },
      "error\\(\\) on ok result");
}

}  // namespace
}  // namespace plx

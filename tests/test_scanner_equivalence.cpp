// The memoized / chunked / parallel scanner must produce *byte-identical*
// gadget sets to the naive re-decode-from-every-offset reference — same
// gadgets, same classification, same order. This is what lets the hot paths
// use the fast scanner while the paper-facing results stay those of the
// straightforward algorithm.
#include <gtest/gtest.h>

#include <sstream>

#include "cc/compile.h"
#include "gadget/scanner.h"
#include "image/layout.h"
#include "parallax/protector.h"
#include "support/rng.h"
#include "workloads/corpus.h"
#include "isa/x86/format.h"

namespace plx::gadget {
namespace {

// Full-fidelity fingerprint of a gadget: every classification field plus the
// formatted instruction list.
std::string fingerprint(const Gadget& g) {
  std::ostringstream os;
  os << std::hex << g.addr << '/' << std::dec << int(g.len) << ' '
     << gtype_name(g.type) << " r1=" << int(g.r1) << " r2=" << int(g.r2)
     << " cond=" << int(g.cond) << " far=" << g.far_ret
     << " imm=" << g.ret_imm << " clob=" << g.clobbers << " disp=" << g.disp
     << " pops=" << int(g.total_pops) << '/' << int(g.value_pop_index)
     << " scratch=" << g.scratch_addr_regs
     << " flags=" << g.flags_clean_before_effect << g.flags_clean_after_effect
     << " insns=[";
  for (const auto& insn : g.insns) os << x86::format(insn.unwrap<x86::Insn>()) << "; ";
  os << ']';
  return os.str();
}

void expect_identical(const std::vector<Gadget>& got,
                      const std::vector<Gadget>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(fingerprint(got[i]), fingerprint(want[i]))
        << what << " diverges at gadget " << i;
  }
}

img::Image build_workload_image(const workloads::Workload& w) {
  auto compiled = cc::compile(w.source);
  EXPECT_TRUE(compiled.ok()) << (compiled.ok() ? "" : compiled.error());
  auto laid = img::layout(compiled.value().module);
  EXPECT_TRUE(laid.ok()) << (laid.ok() ? "" : laid.error());
  return std::move(laid).take().image;
}

// scan() restricted to one thread and huge chunks == scan_bytes per section,
// concatenated. Reference for comparing the sharded variants.
std::vector<Gadget> scan_sections_reference(const img::Image& image,
                                            ScanOptions opts) {
  std::vector<Gadget> out;
  for (const auto& sec : image.sections) {
    if (!(sec.perms & img::kPermExec)) continue;
    auto part = scan_bytes_reference(sec.bytes.span(), sec.vaddr, opts);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

class ScannerEquivalenceCorpus
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScannerEquivalenceCorpus, MemoizedMatchesNaive) {
  const auto& w = workloads::corpus()[GetParam()];
  const auto image = build_workload_image(w);

  for (bool include_unusable : {false, true}) {
    ScanOptions opts;
    opts.include_unusable = include_unusable;
    const auto want = scan_sections_reference(image, opts);
    ASSERT_FALSE(want.empty());

    // Memoized single-window scan per section.
    {
      std::vector<Gadget> got;
      for (const auto& sec : image.sections) {
        if (!(sec.perms & img::kPermExec)) continue;
        auto part = scan_bytes(sec.bytes.span(), sec.vaddr, opts);
        got.insert(got.end(), part.begin(), part.end());
      }
      expect_identical(got, want, w.name + "/memoized");
    }

    // Default chunked parallel scan.
    expect_identical(scan(image, opts), want, w.name + "/parallel");

    // Tiny chunks force every seam configuration through small sections:
    // chains straddling chunk boundaries must come out of the chunk that
    // owns their start offset, via the seam overlap.
    for (std::size_t chunk : {1u, 7u, 64u}) {
      ScanOptions seam = opts;
      seam.chunk_bytes = chunk;
      expect_identical(scan(image, seam), want,
                       w.name + "/chunk" + std::to_string(chunk));
      seam.parallel = false;
      expect_identical(scan(image, seam), want,
                       w.name + "/chunk" + std::to_string(chunk) + "/serial");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ScannerEquivalenceCorpus,
                         ::testing::Range<std::size_t>(0, 6),
                         [](const auto& info) {
                           return workloads::corpus()[info.param].name;
                         });

TEST(ScannerEquivalence, ProtectedImageMatchesToo) {
  // Protected images carry the chain data and utility gadget set — denser
  // and weirder byte soup than plain code.
  const auto& w = workloads::corpus()[0];
  auto compiled = cc::compile(w.source);
  ASSERT_TRUE(compiled.ok());
  parallax::ProtectOptions popts;
  popts.verify_functions = {w.verify_function};
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), popts);
  ASSERT_TRUE(prot.ok()) << prot.error();

  ScanOptions opts;
  opts.include_unusable = true;
  const auto want = scan_sections_reference(prot.value().image, opts);
  expect_identical(scan(prot.value().image, opts), want, "protected");
  ScanOptions seams = opts;
  seams.chunk_bytes = 13;
  expect_identical(scan(prot.value().image, seams), want, "protected/seams");
}

TEST(ScannerEquivalence, RandomBuffers) {
  // Random byte soup exercises decode failures, over-cap chains, and chains
  // that run off the end of the buffer — at every seam offset.
  Rng rng{0xc0ffee};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> bytes(512 + trial * 37);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u32());
    // Sprinkle rets so chains exist.
    for (std::size_t i = 13; i < bytes.size(); i += 29) bytes[i] = 0xc3;

    ScanOptions opts;
    opts.include_unusable = (trial % 2) == 0;
    const auto want = scan_bytes_reference(bytes, 0x1000, opts);
    expect_identical(scan_bytes(bytes, 0x1000, opts), want, "random/memoized");
  }
}

TEST(ScannerEquivalence, CapsRespectedAtChunkSeams) {
  // A long run of single-byte instructions ending in ret: every suffix short
  // enough is a gadget, longer ones are rejected by the caps. With 1-byte
  // chunks every boundary is a seam.
  std::vector<std::uint8_t> bytes(100, 0x90);  // nop sled
  bytes.back() = 0xc3;

  for (int max_insns : {1, 3, 6}) {
    ScanOptions opts;
    opts.max_insns = max_insns;
    opts.include_unusable = true;
    const auto want = scan_bytes_reference(bytes, 0x4000, opts);
    ASSERT_EQ(want.size(), static_cast<std::size_t>(max_insns));
    expect_identical(scan_bytes(bytes, 0x4000, opts), want, "sled/memoized");

    img::Image image;
    img::Section sec;
    sec.name = ".text";
    sec.vaddr = 0x4000;
    sec.perms = img::kPermRead | img::kPermExec;
    sec.bytes = Buffer(bytes);
    image.sections.push_back(std::move(sec));
    ScanOptions seams = opts;
    seams.chunk_bytes = 1;
    expect_identical(scan(image, seams), want, "sled/seams");
  }
}

}  // namespace
}  // namespace plx::gadget

// isa::Arch conformance suite — the contract every backend must honour,
// run over every registered backend (x86 and the rv32 stub alike).
//
// Three groups:
//  * descriptor + decoder invariants (lengths, alignment, ret idioms,
//    same_semantics reflexivity) over exhaustive single bytes and a
//    deterministic pseudo-random byte sweep;
//  * classifier lattice laws on scanner-produced gadgets (register handles
//    in range, determinism, Unusable gadgets never carry operands);
//  * PLX image-header `isa` round-trip: x86 keeps the original PLX1
//    container byte-for-byte, any other backend round-trips through the
//    self-describing PLX2 form, and unknown wire names are rejected at
//    deserialize time.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gadget/scanner.h"
#include "image/image.h"
#include "image/layout.h"
#include "isa/arch.h"
#include "isa/classifier.h"
#include "rewrite/protectability.h"

namespace plx {
namespace {

// Canonical return idiom per backend, as raw bytes the decoder must report
// as Flow::Ret. Keyed by wire name so adding a backend extends this table.
std::vector<std::vector<std::uint8_t>> ret_sequences(const std::string& name) {
  if (name == "x86") return {{0xc3}, {0xcb}};
  if (name == "rv32")
    return {{0x82, 0x80}, {0x67, 0x80, 0x00, 0x00}};  // c.jr ra; jalr x0,0(ra)
  ADD_FAILURE() << "no ret idioms recorded for backend '" << name << "'";
  return {};
}

// Deterministic byte stream (xorshift32, fixed seed) so the sweep is
// reproducible across runs and platforms.
std::vector<std::uint8_t> pseudo_random_bytes(std::size_t n,
                                              std::uint32_t seed) {
  std::vector<std::uint8_t> out(n);
  std::uint32_t s = seed;
  for (auto& b : out) {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    b = static_cast<std::uint8_t>(s);
  }
  return out;
}

class ArchConformance : public ::testing::TestWithParam<std::string> {
 protected:
  const isa::Arch& arch() const {
    const isa::Arch* a = isa::find_arch(GetParam());
    EXPECT_NE(a, nullptr);
    return *a;
  }
};

TEST_P(ArchConformance, DescriptorIsSane) {
  const isa::Arch& a = arch();
  EXPECT_STREQ(a.name(), GetParam().c_str());
  EXPECT_EQ(a.pointer_bytes(), 4u);  // the PLX container is 32-bit
  EXPECT_GE(a.insn_align(), 1u);
  // Alignment must be a power of two (the scanner strides by it).
  EXPECT_EQ(a.insn_align() & (a.insn_align() - 1), 0u);
  EXPECT_GE(a.max_insn_len(), a.insn_align());
  EXPECT_FALSE(a.ret_opcodes().empty());
  EXPECT_GT(a.reg_count(), 0u);
  // Every register must be addressable as a RegId distinct from kNoReg.
  EXPECT_LT(a.reg_count(), static_cast<std::uint32_t>(isa::kNoReg));
}

TEST_P(ArchConformance, DecoderRejectsEmptyAndTruncatedInput) {
  const isa::Decoder& dec = arch().decoder();
  EXPECT_FALSE(dec.decode({}).ok);
  // A window shorter than the smallest unit can never decode.
  std::vector<std::uint8_t> tiny(arch().insn_align() - 1, 0x00);
  if (!tiny.empty()) {
    EXPECT_FALSE(dec.decode(tiny).ok);
  }
}

TEST_P(ArchConformance, DecodedLengthsRespectDescriptor) {
  const isa::Arch& a = arch();
  const isa::Decoder& dec = a.decoder();
  const auto bytes = pseudo_random_bytes(4096, 0x9e3779b9);
  std::size_t decoded = 0;
  for (std::size_t off = 0; off + a.max_insn_len() <= bytes.size();
       off += a.insn_align()) {
    const isa::Insn insn =
        dec.decode(std::span(bytes).subspan(off, a.max_insn_len()));
    if (!insn.ok) {
      EXPECT_EQ(insn.len, 0u) << "invalid decode must report length 0";
      continue;
    }
    ++decoded;
    EXPECT_GT(insn.len, 0u);
    EXPECT_LE(insn.len, a.max_insn_len());
    EXPECT_EQ(insn.len % a.insn_align(), 0u)
        << "length must be a multiple of the instruction alignment";
    if (insn.cond_branch) {
      EXPECT_EQ(insn.flow, isa::Flow::Branch)
          << "conditional branches are branches";
    }
    if (insn.flow == isa::Flow::Ret) {
      EXPECT_FALSE(insn.cond_branch) << "returns are unconditional here";
    }
  }
  EXPECT_GT(decoded, 0u) << "sweep never produced a valid decode";
}

TEST_P(ArchConformance, RetIdiomsDecodeAsRet) {
  const isa::Arch& a = arch();
  for (const auto& seq : ret_sequences(GetParam())) {
    const isa::Insn insn = a.decoder().decode(seq);
    ASSERT_TRUE(insn.ok);
    EXPECT_EQ(insn.flow, isa::Flow::Ret);
    EXPECT_EQ(static_cast<std::size_t>(insn.len), seq.size());
  }
}

TEST_P(ArchConformance, SameSemanticsIsReflexive) {
  const isa::Arch& a = arch();
  const isa::Decoder& dec = a.decoder();
  const auto bytes = pseudo_random_bytes(1024, 0x1234abcd);
  for (std::size_t off = 0; off + a.max_insn_len() <= bytes.size();
       off += a.insn_align()) {
    const isa::Insn insn =
        dec.decode(std::span(bytes).subspan(off, a.max_insn_len()));
    if (!insn.ok) continue;
    EXPECT_TRUE(dec.same_semantics(insn, insn))
        << "an instruction must be semantically equal to itself";
  }
}

// Classifier lattice laws over real scanner output: operand handles are
// either kNoReg or a valid register index, conditions are kNoCond or set
// alongside a condition-carrying type, Unusable gadgets carry no operands,
// and classification is deterministic.
TEST_P(ArchConformance, ClassifierLatticeLaws) {
  const isa::Arch& a = arch();
  auto bytes = pseudo_random_bytes(2048, 0xdeadbeef);
  for (const auto& seq : ret_sequences(GetParam()))
    bytes.insert(bytes.end(), seq.begin(), seq.end());

  gadget::ScanOptions opts;
  opts.arch = &a;
  opts.include_unusable = true;
  opts.parallel = false;
  const auto gadgets = gadget::scan_bytes(bytes, 0x1000, opts);
  ASSERT_FALSE(gadgets.empty());

  const auto reg_ok = [&](isa::RegId r) {
    return r == isa::kNoReg || r < a.reg_count();
  };
  for (const auto& g : gadgets) {
    ASSERT_FALSE(g.insns.empty());
    EXPECT_EQ(g.insns.back().flow, isa::Flow::Ret)
        << "every gadget ends in a return";
    EXPECT_LE(g.insns.size(), static_cast<std::size_t>(opts.max_insns));
    EXPECT_TRUE(reg_ok(g.r1)) << "r1 out of range: " << int(g.r1);
    EXPECT_TRUE(reg_ok(g.r2)) << "r2 out of range: " << int(g.r2);
    if (!g.usable()) {
      EXPECT_EQ(g.r1, isa::kNoReg);
      EXPECT_EQ(g.r2, isa::kNoReg);
      EXPECT_EQ(g.cond, isa::kNoCond);
    }
    if (g.cond != isa::kNoCond) {
      EXPECT_EQ(g.type, gadget::GType::SetccReg)
          << "only setcc gadgets carry a condition";
    }
    // Determinism: classifying the same sequence again yields the same facts.
    gadget::Gadget again;
    again.addr = g.addr;
    again.len = g.len;
    again.insns = g.insns;
    a.classifier().classify(again.insns, again);
    EXPECT_EQ(again.type, g.type);
    EXPECT_EQ(again.r1, g.r1);
    EXPECT_EQ(again.r2, g.r2);
    EXPECT_EQ(again.cond, g.cond);
  }
}

// ChainABI consistency for backends that provide one: role registers are
// valid and distinct, and names resolve for every role and condition handle.
TEST_P(ArchConformance, ChainAbiRolesAreValidWhenPresent) {
  const isa::Arch& a = arch();
  const isa::ChainABI* abi = a.chain_abi();
  if (!abi) GTEST_SKIP() << "backend has no chain ABI (allowed)";
  const isa::RegId roles[] = {abi->acc, abi->aux, abi->addr, abi->sp};
  for (isa::RegId r : roles) {
    ASSERT_NE(r, isa::kNoReg);
    EXPECT_LT(r, a.reg_count());
    EXPECT_STRNE(abi->reg_name(r), "?");
  }
  // The four roles must name four different registers.
  std::vector<isa::RegId> sorted(std::begin(roles), std::end(roles));
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (isa::CondId c : {abi->cond_eq, abi->cond_ne, abi->cond_lt, abi->cond_le,
                        abi->cond_gt, abi->cond_ge}) {
    ASSERT_NE(c, isa::kNoCond);
    EXPECT_STRNE(abi->cond_name(c), "?");
  }
}

// --- image-header round-trip ------------------------------------------------

img::Image tiny_image(const std::string& isa_name) {
  img::Image image;
  img::Section text;
  text.name = ".text";
  text.vaddr = img::kTextBase;
  text.perms = img::kPermRead | img::kPermExec;
  text.bytes = Buffer{0x90, 0xc3};
  image.sections.push_back(std::move(text));
  img::Symbol sym;
  sym.name = "f";
  sym.vaddr = img::kTextBase;
  sym.size = 2;
  sym.is_func = true;
  image.symbols.push_back(sym);
  image.entry = img::kTextBase;
  image.isa = isa_name;
  return image;
}

TEST_P(ArchConformance, ImageHeaderRoundTrips) {
  const std::string name = GetParam();
  const img::Image image = tiny_image(name);
  const Buffer bytes = image.serialize();
  ASSERT_GE(bytes.size(), 4u);
  if (name == "x86") {
    // The original container, byte-for-byte: pinned golden digests depend
    // on x86 images not growing a new header field.
    EXPECT_EQ(bytes[0], 'P');
    EXPECT_EQ(bytes[1], 'L');
    EXPECT_EQ(bytes[2], 'X');
    EXPECT_EQ(bytes[3], '1');
  } else {
    EXPECT_EQ(bytes[0], 'P');
    EXPECT_EQ(bytes[1], 'L');
    EXPECT_EQ(bytes[2], 'X');
    EXPECT_EQ(bytes[3], '2');
  }
  auto back = img::Image::deserialize(bytes.span());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().isa, name);
  EXPECT_EQ(back.value().entry, image.entry);
  ASSERT_EQ(back.value().sections.size(), 1u);
  EXPECT_EQ(back.value().sections[0].bytes.vec(), image.sections[0].bytes.vec());
}

TEST(IsaRegistry, RejectsUnknownIsaAtDeserialize) {
  const img::Image image = tiny_image("m68k");  // not registered
  const Buffer bytes = image.serialize();
  auto back = img::Image::deserialize(bytes.span());
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.error().message().find("unknown isa"), std::string::npos)
      << back.error().message();
}

TEST(IsaRegistry, DefaultArchIsX86AndNamesEnumerate) {
  EXPECT_STREQ(isa::default_arch().name(), "x86");
  const auto names = isa::arch_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "x86");
  EXPECT_NE(std::find(names.begin(), names.end(), "rv32"), names.end());
  for (const auto& n : names) {
    const isa::Arch* a = isa::find_arch(n);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(n, a->name());
  }
  EXPECT_EQ(isa::find_arch("z80"), nullptr);
}

// The rv32 stub must flow scan -> protectability end to end: gadgets are
// found (all Unusable — no chain vocabulary) and coverage is exactly zero,
// never a crash.
TEST(IsaRv32Stub, ScanToProtectabilityYieldsZeroCoverage) {
  const isa::Arch* rv32 = isa::find_arch("rv32");
  ASSERT_NE(rv32, nullptr);

  // A plausible rv32 body: a few compressed ALU ops, then `c.jr ra`.
  img::Module mod;
  img::Fragment frag;
  frag.name = "f";
  frag.section = img::SectionKind::Text;
  frag.is_func = true;
  frag.items.push_back(img::Item::make_data(Buffer{
      0x05, 0x05,               // c.addi a0, 1
      0x2a, 0x86,               // c.mv a2, a0
      0x82, 0x80,               // c.jr ra
  }));
  mod.fragments.push_back(std::move(frag));
  mod.entry = "f";
  auto laid = img::layout(mod);
  ASSERT_TRUE(laid.ok()) << laid.error();
  laid.value().image.isa = "rv32";

  gadget::ScanOptions opts;
  opts.arch = rv32;
  opts.include_unusable = true;
  const auto gadgets = gadget::scan(laid.value().image, opts);
  EXPECT_FALSE(gadgets.empty());
  for (const auto& g : gadgets) EXPECT_FALSE(g.usable());

  const auto report = rewrite::analyze_protectability(mod, laid.value(), rv32);
  // The generic accounting counts symbolic Insn items; this module carries
  // raw rv32 bytes (no rv32 instruction model yet), so the denominator is 0
  // too. The point pinned here: a backend without RewriteOps yields an empty
  // report with the rule bitmaps sized to .text, not a crash.
  EXPECT_EQ(report.code_bytes, 0u);
  EXPECT_EQ(report.fraction_any(), 0.0);
  EXPECT_FALSE(report.any.empty());
  EXPECT_EQ(report.any.size(),
            laid.value().image.find_section(".text")->bytes.size());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ArchConformance,
                         ::testing::ValuesIn(isa::arch_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace plx

// telemetry::Registry + JsonWriter + the shared schema-v2 envelope
// (DESIGN.md §12).
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "support/minijson.h"
#include "telemetry/report.h"
#include "telemetry/schema.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace {

using namespace plx;
using telemetry::JsonWriter;
using telemetry::Registry;

minijson::Value parse_json(const std::string& text) {
  minijson::Parser parser(text);
  minijson::Value v;
  EXPECT_TRUE(parser.parse(v)) << parser.error() << "\n" << text;
  return v;
}

TEST(Registry, CountersAccumulate) {
  Registry r;
  r.add("events");
  r.add("events", 4);
  r.add("bytes", 100);
  EXPECT_EQ(r.counter("events"), 5u);
  EXPECT_EQ(r.counter("bytes"), 100u);
  EXPECT_EQ(r.counter("never-recorded"), 0u);
}

TEST(Registry, TimersAccumulateSeconds) {
  Registry r;
  r.add_seconds("run", 1.5);
  r.add_seconds("run", 0.25);
  EXPECT_DOUBLE_EQ(r.timer_seconds("run"), 1.75);
  EXPECT_DOUBLE_EQ(r.timer_seconds("never"), 0.0);
}

TEST(Registry, GaugeLastWriteWins) {
  Registry r;
  r.set("overhead", 1.0);
  r.set("overhead", 2.5);
  EXPECT_DOUBLE_EQ(r.gauge("overhead"), 2.5);
}

TEST(Registry, DistributionStats) {
  Registry r;
  r.record("lat", 3.0);
  r.record("lat", 1.0);
  r.record("lat", 2.0);
  const auto d = r.distribution("lat");
  EXPECT_EQ(d.count, 3u);
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.max, 3.0);
  EXPECT_DOUBLE_EQ(d.sum, 6.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
  EXPECT_DOUBLE_EQ(r.distribution("never").mean(), 0.0);
}

TEST(Registry, PrefixSnapshotsStripPrefixAndKeepOrder) {
  Registry r;
  r.add("stages/compile", 1);
  r.add("figures/x", 7);
  r.add("stages/run", 2);
  const auto stages = r.counters("stages/");
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].first, "compile");
  EXPECT_EQ(stages[1].first, "run");
  EXPECT_EQ(stages[1].second, 2u);
  const auto all = r.counters();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1].first, "figures/x");
}

TEST(Registry, MergeAddsCountersTimersOverwritesGauges) {
  Registry a, b;
  a.add("n", 1);
  a.add_seconds("t", 1.0);
  a.set("g", 1.0);
  b.add("n", 2);
  b.add_seconds("t", 0.5);
  b.set("g", 9.0);
  b.record("d", 4.0);
  a.merge(b);
  EXPECT_EQ(a.counter("n"), 3u);
  EXPECT_DOUBLE_EQ(a.timer_seconds("t"), 1.5);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 9.0);
  EXPECT_EQ(a.distribution("d").count, 1u);
}

TEST(Registry, CopyIsIndependent) {
  Registry a;
  a.add("n", 1);
  Registry b = a;
  b.add("n", 10);
  EXPECT_EQ(a.counter("n"), 1u);
  EXPECT_EQ(b.counter("n"), 11u);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(Registry().empty());
}

TEST(Registry, ScopedTimerAccumulates) {
  Registry r;
  { telemetry::ScopedTimer t(r, "scope"); }
  { telemetry::ScopedTimer t(r, "scope"); }
  EXPECT_GT(r.timer_seconds("scope"), 0.0);
  const auto timers = r.timers();
  ASSERT_EQ(timers.size(), 1u);
  EXPECT_EQ(timers[0].first, "scope");
}

TEST(JsonWriter, EmitsParseableNestedJson) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field_str("s", "a \"quoted\"\nline\\");
  w.field_num("f", 1.5);
  w.field_u64("u", 1234567890123ull);
  w.field_bool("b", true);
  w.begin_object("nested");
  w.field_int("i", -3);
  w.end_object();
  w.begin_array("arr");
  w.value_str("x");
  w.begin_object();
  w.field_num("y", 2);
  w.end_object();
  w.end_array();
  w.end_object();

  const std::string text = os.str();
  EXPECT_EQ(text.back(), '\n');
  const auto root = parse_json(text);
  const minijson::Object& obj = *root.object();
  EXPECT_EQ(std::get<std::string>(obj.at("s").v), "a \"quoted\"\nline\\");
  EXPECT_DOUBLE_EQ(obj.at("f").number(), 1.5);
  EXPECT_DOUBLE_EQ(obj.at("u").number(), 1234567890123.0);
  EXPECT_EQ(std::get<bool>(obj.at("b").v), true);
  EXPECT_DOUBLE_EQ(obj.at("nested").object()->at("i").number(), -3.0);
  const auto& arr = *std::get<std::shared_ptr<minijson::Array>>(obj.at("arr").v);
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(std::get<std::string>(arr[0].v), "x");
  EXPECT_DOUBLE_EQ(arr[1].object()->at("y").number(), 2.0);
}

TEST(JsonWriter, EnvelopeMatchesSchemaAndValidators) {
  std::ostringstream os;
  JsonWriter w(os);
  telemetry::write_envelope(w, telemetry::kToolBench, "overhead");
  w.end_object();
  const auto root = parse_json(os.str());
  const minijson::Object& obj = *root.object();
  EXPECT_EQ(std::get<std::string>(obj.at("tool").v), "bench");
  EXPECT_EQ(std::get<std::string>(obj.at("name").v), "overhead");
  // Legacy alias: the tool name keys the report name again.
  EXPECT_EQ(std::get<std::string>(obj.at("bench").v), "overhead");
  EXPECT_DOUBLE_EQ(obj.at("schema_version").number(),
                   static_cast<double>(telemetry::kSchemaVersion));

  std::string why;
  EXPECT_TRUE(
      minijson::check_envelope(obj, "bench", telemetry::kSchemaVersion, why))
      << why;
  EXPECT_FALSE(
      minijson::check_envelope(obj, "fuzz", telemetry::kSchemaVersion, why));
  EXPECT_FALSE(minijson::check_envelope(obj, "bench",
                                        telemetry::kSchemaVersion + 1, why));
}

TEST(JsonWriter, RegistrySectionsAndTimerSuffix) {
  Registry r;
  r.add("pipeline/scan/gadgets", 42);
  r.add_seconds("stages/compile", 0.5);
  r.set("figures/overhead_percent/miniwget/xor", 2.5);

  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  telemetry::write_counters(w, "pipeline", r, "pipeline/");
  telemetry::write_timers(w, "stages", r, "stages/");
  telemetry::write_gauges(w, "figures", r, "figures/");
  w.end_object();

  const auto root = parse_json(os.str());
  const minijson::Object& obj = *root.object();
  // Flat keys: the '/'-bearing remainder of the name is one literal key.
  EXPECT_DOUBLE_EQ(obj.at("pipeline").object()->at("scan/gadgets").number(),
                   42.0);
  // Timers gain the "_seconds" suffix that marks them ungated.
  EXPECT_DOUBLE_EQ(obj.at("stages").object()->at("compile_seconds").number(),
                   0.5);
  EXPECT_DOUBLE_EQ(
      obj.at("figures").object()->at("overhead_percent/miniwget/xor").number(),
      2.5);
}

// Concurrency regression for the Registry locking discipline (every mutator
// and reader takes mu_; copy and merge take both locks in address order).
// Under -DPLX_SANITIZE=thread this is the test that turns a reintroduced
// data race into a hard failure; in normal builds it still checks that no
// update is lost under contention.
TEST(Registry, ConcurrentMutationAndSnapshotIsRaceFreeAndLossless) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, t] {
      for (int i = 0; i < kIters; ++i) {
        r.add("stress/count");
        r.add_seconds("stress/time", 0.001);
        r.set("stress/gauge", static_cast<double>(t));
        r.record("stress/dist", static_cast<double>(i));
        if (i % 64 == 0) {
          // Concurrent readers: copy + merge + prefix snapshot while the
          // other threads keep writing.
          Registry copy(r);
          Registry merged;
          merged.merge(copy);
          (void)r.counters("stress/");
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(r.counter("stress/count"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_NEAR(r.timer_seconds("stress/time"), kThreads * kIters * 0.001, 1e-6);
  const auto dists = r.distributions("stress/");
  ASSERT_EQ(dists.size(), 1u);
  EXPECT_EQ(dists[0].second.count,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

// The trace collector shares the same claim: record/snapshot/enable from
// arbitrary threads, no torn events, nothing lost while the ring has room.
TEST(Tracer, ConcurrentRecordingIsLossless) {
  auto& tr = telemetry::Tracer::instance();
  tr.enable(1u << 15);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        telemetry::TraceSpan span("stress", "w" + std::to_string(t));
        if (i % 100 == 0)
          (void)telemetry::Tracer::instance().snapshot();  // concurrent reader
      }
    });
  }
  for (auto& th : threads) th.join();
  tr.disable();
  EXPECT_EQ(tr.recorded(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(tr.dropped(), 0u);
  EXPECT_EQ(tr.snapshot().size(), static_cast<std::size_t>(kThreads) * kIters);
}

}  // namespace

// Decoder unit tests. Several byte sequences are taken verbatim from the
// paper's Listing 1 gadget examples, so these tests double as a check that
// our ISA subset covers the encodings Parallax's rules rely on.
#include <gtest/gtest.h>

#include <vector>

#include "isa/x86/decoder.h"
#include "isa/x86/format.h"

namespace plx::x86 {
namespace {

std::optional<Insn> dec(std::initializer_list<std::uint8_t> bytes) {
  std::vector<std::uint8_t> v(bytes);
  return decode(v);
}

TEST(Decode, PushPopRegisters) {
  auto i = dec({0x55});  // push ebp
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::PUSH);
  EXPECT_EQ(i->ops[0].reg, Reg::EBP);
  EXPECT_EQ(i->len, 1);

  i = dec({0x58});  // pop eax
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::POP);
  EXPECT_EQ(i->ops[0].reg, Reg::EAX);
}

TEST(Decode, MovRegReg) {
  auto i = dec({0x89, 0xe5});  // mov ebp, esp
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::MOV);
  EXPECT_EQ(i->ops[0].reg, Reg::EBP);
  EXPECT_EQ(i->ops[1].reg, Reg::ESP);
  EXPECT_EQ(i->len, 2);
}

TEST(Decode, MovRegImm32) {
  auto i = dec({0xb8, 0x2a, 0x00, 0x00, 0x00});  // mov eax, 42
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::MOV);
  EXPECT_EQ(i->ops[0].reg, Reg::EAX);
  EXPECT_EQ(i->ops[1].imm, 42);
  EXPECT_EQ(i->len, 5);
}

TEST(Decode, SubEspImm8) {
  auto i = dec({0x83, 0xec, 0x18});  // sub esp, 24
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::SUB);
  EXPECT_EQ(i->ops[0].reg, Reg::ESP);
  EXPECT_EQ(i->ops[1].imm, 24);
}

TEST(Decode, MovMemEsp) {
  auto i = dec({0x89, 0x04, 0x24});  // mov [esp], eax  (SIB, base=esp)
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::MOV);
  ASSERT_EQ(i->ops[0].kind, Operand::Kind::Mem);
  EXPECT_EQ(i->ops[0].mem.base, Reg::ESP);
  EXPECT_EQ(i->ops[1].reg, Reg::EAX);
  EXPECT_EQ(i->len, 3);
}

TEST(Decode, EbpDisp8) {
  auto i = dec({0x8b, 0x45, 0x08});  // mov eax, [ebp+8]
  ASSERT_TRUE(i);
  EXPECT_EQ(i->ops[1].mem.base, Reg::EBP);
  EXPECT_EQ(i->ops[1].mem.disp, 8);
}

TEST(Decode, NegativeDisp8) {
  auto i = dec({0x8b, 0x45, 0xfc});  // mov eax, [ebp-4]
  ASSERT_TRUE(i);
  EXPECT_EQ(i->ops[1].mem.disp, -4);
}

TEST(Decode, SibScaledIndex) {
  auto i = dec({0x8b, 0x44, 0x8e, 0x04});  // mov eax, [esi+ecx*4+4]
  ASSERT_TRUE(i);
  EXPECT_EQ(i->ops[1].mem.base, Reg::ESI);
  EXPECT_EQ(i->ops[1].mem.index, Reg::ECX);
  EXPECT_EQ(i->ops[1].mem.scale, 4);
  EXPECT_EQ(i->ops[1].mem.disp, 4);
}

TEST(Decode, AbsoluteDisp32) {
  auto i = dec({0xa1});  // 0xa1 (mov eax, moffs) is NOT in our subset
  EXPECT_FALSE(i);
  i = dec({0x8b, 0x0d, 0x44, 0x33, 0x22, 0x11});  // mov ecx, [0x11223344]
  ASSERT_TRUE(i);
  EXPECT_EQ(i->ops[1].mem.base, Reg::NONE);
  EXPECT_EQ(i->ops[1].mem.disp, 0x11223344);
}

TEST(Decode, CallRel32) {
  auto i = dec({0xe8, 0x05, 0x00, 0x00, 0x00});
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::CALL);
  EXPECT_EQ(i->ops[0].rel, 5);
  EXPECT_EQ(i->rel_target(0x100), 0x10au);
}

TEST(Decode, JccRel8AndRel32) {
  auto i = dec({0x79, 0x05});  // jns +5
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::JCC);
  EXPECT_EQ(i->cond, Cond::NS);
  EXPECT_EQ(i->ops[0].rel, 5);

  i = dec({0x0f, 0x84, 0x10, 0x00, 0x00, 0x00});  // je +0x10
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::JCC);
  EXPECT_EQ(i->cond, Cond::E);
  EXPECT_EQ(i->ops[0].rel, 0x10);
  EXPECT_EQ(i->len, 6);
}

TEST(Decode, RetFamily) {
  EXPECT_EQ(dec({0xc3})->op, Mnemonic::RET);
  EXPECT_EQ(dec({0xcb})->op, Mnemonic::RETF);
  auto i = dec({0xc2, 0x08, 0x00});  // ret 8
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::RET);
  EXPECT_EQ(i->ops[0].imm, 8);
}

TEST(Decode, PaperGadgetAddBlChRet) {
  // Listing 1: "add bl, ch; ret" — the gadget Parallax crafts by aligning
  // cleanup_and_exit so the jump displacement byte becomes 0xc3.
  auto i = dec({0x00, 0xeb, 0xc3});
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::ADD);
  EXPECT_EQ(i->opsize, OpSize::Byte);
  EXPECT_EQ(format(*i), "add bl, ch");
  auto r = dec({0xc3});
  EXPECT_EQ(r->op, Mnemonic::RET);
}

TEST(Decode, PaperGadgetSarByteRet) {
  // Listing 1: "sar byte [ecx+0x7], 0x8b; ret" crafted inside a mov
  // immediate operand.
  auto i = dec({0xc0, 0x79, 0x07, 0x8b});
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::SAR);
  EXPECT_EQ(i->opsize, OpSize::Byte);
  EXPECT_EQ(i->ops[0].mem.base, Reg::ECX);
  EXPECT_EQ(i->ops[0].mem.disp, 7);
  EXPECT_EQ(i->ops[1].imm, 0x8b);
}

TEST(Decode, PaperFarReturnGadget) {
  // Listing 1: "and al, 0; add [eax], al; add al, ch; retf" — the existing
  // 7-byte far-return gadget protecting the ptrace call.
  const std::vector<std::uint8_t> bytes = {0x24, 0x00, 0x00, 0x00, 0x00, 0xe8, 0xcb};
  std::size_t off = 0;
  std::vector<Insn> insns;
  while (off < bytes.size()) {
    auto i = decode(std::span(bytes).subspan(off));
    ASSERT_TRUE(i) << "at offset " << off;
    insns.push_back(*i);
    off += i->len;
  }
  ASSERT_EQ(insns.size(), 4u);
  EXPECT_EQ(insns[0].op, Mnemonic::AND);   // and al, 0
  EXPECT_EQ(insns[1].op, Mnemonic::ADD);   // add [eax], al
  EXPECT_EQ(insns[2].op, Mnemonic::ADD);   // add al, ch
  EXPECT_EQ(insns[3].op, Mnemonic::RETF);
}

TEST(Decode, Grp3Family) {
  auto i = dec({0xf7, 0xd8});  // neg eax
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::NEG);
  EXPECT_EQ(i->ops[0].reg, Reg::EAX);

  i = dec({0xf7, 0xe1});  // mul ecx
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::MUL);

  i = dec({0xf7, 0xf9});  // idiv ecx
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::IDIV);
}

TEST(Decode, SetccAndMovzx) {
  auto i = dec({0x0f, 0x94, 0xc0});  // sete al
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::SETCC);
  EXPECT_EQ(i->cond, Cond::E);
  EXPECT_EQ(i->ops[0].reg, Reg::EAX);
  EXPECT_EQ(i->ops[0].size, OpSize::Byte);

  i = dec({0x0f, 0xb6, 0xc0});  // movzx eax, al
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::MOVZX);
  EXPECT_EQ(i->ops[1].size, OpSize::Byte);
}

TEST(Decode, ImulForms) {
  auto i = dec({0x0f, 0xaf, 0xc1});  // imul eax, ecx
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::IMUL);
  EXPECT_EQ(i->nops, 2);

  i = dec({0x6b, 0xc0, 0x0a});  // imul eax, eax, 10
  ASSERT_TRUE(i);
  EXPECT_EQ(i->nops, 3);
  EXPECT_EQ(i->ops[2].imm, 10);

  i = dec({0x69, 0xc9, 0xe8, 0x03, 0x00, 0x00});  // imul ecx, ecx, 1000
  ASSERT_TRUE(i);
  EXPECT_EQ(i->ops[2].imm, 1000);
}

TEST(Decode, ShiftForms) {
  auto i = dec({0xc1, 0xe0, 0x04});  // shl eax, 4
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::SHL);
  EXPECT_EQ(i->ops[1].imm, 4);

  i = dec({0xd3, 0xe8});  // shr eax, cl
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::SHR);
  EXPECT_EQ(i->ops[1].reg, Reg::ECX);

  i = dec({0xd1, 0xf8});  // sar eax, 1
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::SAR);
  EXPECT_EQ(i->ops[1].imm, 1);
}

TEST(Decode, Grp5Forms) {
  auto i = dec({0xff, 0xd0});  // call eax
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::CALL);
  EXPECT_EQ(i->ops[0].reg, Reg::EAX);

  i = dec({0xff, 0x75, 0x08});  // push [ebp+8]
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::PUSH);
  EXPECT_EQ(i->ops[0].mem.base, Reg::EBP);

  i = dec({0xff, 0xe1});  // jmp ecx
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Mnemonic::JMP);
}

TEST(Decode, InvalidBytesReturnNullopt) {
  // Prefixes and unsupported opcodes must decode as invalid, not crash.
  EXPECT_FALSE(dec({0x66, 0x90}));  // operand-size prefix
  EXPECT_FALSE(dec({0xf0, 0x90}));  // lock prefix
  EXPECT_FALSE(dec({0x0f, 0x05}));  // syscall (64-bit)
  EXPECT_FALSE(dec({0xd8, 0xc0}));  // x87
  EXPECT_FALSE(dec({0x8f, 0xc8}));  // pop r/m32 with /1 extension
}

TEST(Decode, TruncatedInputReturnsNullopt) {
  EXPECT_FALSE(dec({0xb8, 0x01, 0x02}));        // mov eax, imm32 cut short
  EXPECT_FALSE(dec({0x8b}));                    // missing modrm
  EXPECT_FALSE(dec({0x8b, 0x84}));              // missing SIB
  EXPECT_FALSE(dec({0x0f}));                    // lone two-byte escape
  EXPECT_FALSE(decode(std::span<const std::uint8_t>{}));
}

TEST(Decode, EveryTwoByteSequenceIsSafe) {
  // Exhaustive smoke test: decode must never crash or read out of bounds.
  std::uint8_t buf[2];
  int decoded = 0;
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      buf[0] = static_cast<std::uint8_t>(a);
      buf[1] = static_cast<std::uint8_t>(b);
      if (auto i = decode(buf)) {
        EXPECT_LE(i->len, 2);
        ++decoded;
      }
    }
  }
  EXPECT_GT(decoded, 1000);  // plenty of 1/2-byte instructions exist
}

}  // namespace
}  // namespace plx::x86

// Differential tamper-fuzzing harness tests (src/fuzz): golden-trace
// determinism, the outcome taxonomy on crafted mutants, backend equivalence
// (VM tamper vs static image patch), thread-count independence, and the
// end-to-end zero-escape property on a protected target.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <span>
#include <sstream>

#include "asm/assembler.h"
#include "attack/patcher.h"
#include "fuzz/fuzz.h"
#include "fuzz/report.h"
#include "fuzz/targets.h"
#include "image/layout.h"
#include "isa/x86/machine.h"

namespace plx::fuzz {
namespace {

img::Image build(const std::string& src) {
  auto mod = assembler::assemble(src);
  EXPECT_TRUE(mod.ok()) << (mod.ok() ? "" : mod.error());
  auto laid = img::layout(mod.value());
  EXPECT_TRUE(laid.ok()) << (laid.ok() ? "" : laid.error());
  return std::move(laid).take().image;
}

// mov eax, 42 (5 bytes) ; ret (1 byte) ; two dead nops.
img::Image tiny_image() {
  return build(R"(
.entry _start
_start:
    mov eax, 42
    ret
    nop
    nop
)");
}

TEST(Fuzz, GoldenTraceIsDeterministic) {
  const auto image = tiny_image();
  const GoldenTrace a = record_golden(image);
  const GoldenTrace b = record_golden(image);
  EXPECT_TRUE(a.usable());
  EXPECT_EQ(a.exit_code, 42);
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.syscalls, b.syscalls);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Fuzz, OutcomeTaxonomyOnCraftedMutants) {
  const auto image = tiny_image();
  TamperFuzzer fuzzer(image, {});
  ASSERT_TRUE(fuzzer.ok());
  const std::uint32_t entry = image.entry;

  std::vector<Mutation> cases;
  // [0] BENIGN: a dead nop becomes something else — never executed.
  cases.push_back({entry + 6, {0x90 ^ 0x28}, false, false, "test"});
  // [1] DETECTED: the mov's immediate low byte changes the exit code.
  cases.push_back({entry + 1, {0x2a ^ 0xff}, true, true, "test"});
  // [2] TIMEOUT: the ret becomes jmp $-0 (eb fe), an infinite loop.
  cases.push_back({entry + 5, {0xeb, 0xfe}, false, false, "test"});
  // [3] SILENT_CORRUPTION + escape: the same dead-byte flip as [0], but
  //     declared a strict protected byte — the harness must report the
  //     survival as an escape.
  cases.push_back({entry + 6, {0x90 ^ 0x28}, true, true, "test"});

  CampaignOptions opts;
  const CampaignStats stats = fuzzer.run_cases(cases, opts);
  EXPECT_EQ(stats.total, 4u);
  EXPECT_EQ(stats.benign, 1u);
  EXPECT_EQ(stats.detected, 1u);
  EXPECT_EQ(stats.timeout, 1u);
  EXPECT_EQ(stats.silent_corruption, 1u);
  ASSERT_EQ(stats.escapes.size(), 1u);
  EXPECT_EQ(stats.escapes[0].mutation.addr, entry + 6);
  EXPECT_EQ(stats.escapes[0].outcome, Outcome::SilentCorruption);
}

TEST(Fuzz, BackendsClassifyIdentically) {
  // The snapshot/restore fast path and the static-patch path (src/attack +
  // fresh Machine) must agree on every outcome.
  const fuzz::Target* target = find_target("license");
  ASSERT_TRUE(target);
  auto prot = protect_target(*target, parallax::Hardening::Cleartext);
  ASSERT_TRUE(prot.ok()) << prot.error();
  TamperFuzzer fuzzer(prot.value().image, prot.value().protected_ranges);
  ASSERT_TRUE(fuzzer.ok());

  CampaignOptions tamper_opts;
  tamper_opts.sweep_masks = {0x01};
  CampaignOptions patch_opts = tamper_opts;
  patch_opts.backend = Backend::ImagePatch;

  const CampaignStats a = fuzzer.sweep(tamper_opts);
  const CampaignStats b = fuzzer.sweep(patch_opts);
  EXPECT_GT(a.total, 0u);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.silent_corruption, b.silent_corruption);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.timeout, b.timeout);
  EXPECT_EQ(a.escapes.size(), b.escapes.size());
}

TEST(Fuzz, BackendsAgreeOnVerdictsAndDigestsForAllBuiltins) {
  // Cross-backend consistency on EVERY built-in target: the snapshot/restore
  // tamper path and the static-patch path must agree not just on verdict
  // counts but on the full oracle observation per mutant — stop reason, exit
  // code, retired instructions, output, syscall digest, and architectural
  // state digest.
  for (const Target& target : builtin_targets()) {
    auto prot = protect_target(target, parallax::Hardening::Cleartext);
    ASSERT_TRUE(prot.ok()) << target.name << ": " << prot.error();
    const img::Image& image = prot.value().image;
    TamperFuzzer fuzzer(image, prot.value().protected_ranges);
    ASSERT_TRUE(fuzzer.ok()) << target.name;

    // Deterministic mutation sample: every 7th protected byte, two masks.
    std::vector<Mutation> cases;
    std::size_t i = 0;
    for (const auto& [addr, tier] : fuzzer.byte_tiers()) {
      if (cases.size() >= 40) break;
      if (i++ % 7 != 0) continue;
      const auto orig = image.read(addr, 1);
      ASSERT_EQ(orig.size(), 1u) << target.name;
      for (std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0xff}}) {
        Mutation mu;
        mu.addr = addr;
        mu.bytes = {static_cast<std::uint8_t>(orig[0] ^ mask)};
        mu.strict = (tier & TamperFuzzer::kTierStrict) != 0;
        mu.protected_ = true;
        mu.origin = "xbackend";
        cases.push_back(std::move(mu));
      }
    }
    ASSERT_FALSE(cases.empty()) << target.name;

    CampaignOptions tamper_opts;
    CampaignOptions patch_opts = tamper_opts;
    patch_opts.backend = Backend::ImagePatch;
    const CampaignStats a = fuzzer.run_cases(cases, tamper_opts);
    const CampaignStats b = fuzzer.run_cases(cases, patch_opts);
    EXPECT_EQ(a.total, b.total) << target.name;
    EXPECT_EQ(a.detected, b.detected) << target.name;
    EXPECT_EQ(a.silent_corruption, b.silent_corruption) << target.name;
    EXPECT_EQ(a.benign, b.benign) << target.name;
    EXPECT_EQ(a.timeout, b.timeout) << target.name;
    EXPECT_EQ(a.escapes.size(), b.escapes.size()) << target.name;

    // Per-mutant: run each path by hand and compare the raw oracle inputs.
    const GoldenTrace& golden = fuzzer.golden();
    const std::uint64_t budget = std::max<std::uint64_t>(
        tamper_opts.min_budget,
        tamper_opts.budget_multiplier * golden.instructions);
    x86::Machine mt(image);
    const x86::Machine::Snapshot snap = mt.snapshot();
    for (const Mutation& mu : cases) {
      mt.restore(snap);
      mt.tamper(mu.addr, std::span<const std::uint8_t>(mu.bytes));
      const vm::RunResult rt = mt.run(budget);

      img::Image patched = image;
      ASSERT_TRUE(attack::patch_bytes(
          patched, mu.addr, std::span<const std::uint8_t>(mu.bytes)));
      x86::Machine mp(patched);
      const vm::RunResult rp = mp.run(budget);

      EXPECT_EQ(rt.reason, rp.reason)
          << target.name << " @" << std::hex << mu.addr;
      EXPECT_EQ(rt.exit_code, rp.exit_code)
          << target.name << " @" << std::hex << mu.addr;
      EXPECT_EQ(rt.instructions, rp.instructions)
          << target.name << " @" << std::hex << mu.addr;
      EXPECT_EQ(mt.output, mp.output)
          << target.name << " @" << std::hex << mu.addr;
      EXPECT_EQ(mt.syscall_digest, mp.syscall_digest)
          << target.name << " @" << std::hex << mu.addr;
      EXPECT_EQ(mt.state_digest(), mp.state_digest())
          << target.name << " @" << std::hex << mu.addr;
    }
  }
}

TEST(Fuzz, ResultsIndependentOfShardCount) {
  const fuzz::Target* target = find_target("license");
  ASSERT_TRUE(target);
  auto prot = protect_target(*target, parallax::Hardening::Cleartext);
  ASSERT_TRUE(prot.ok()) << prot.error();
  TamperFuzzer fuzzer(prot.value().image, prot.value().protected_ranges);
  ASSERT_TRUE(fuzzer.ok());

  CampaignOptions many;
  many.random_mutants = 48;
  CampaignOptions few = many;
  few.shards = 1;

  const CampaignStats a = fuzzer.random(many);
  const CampaignStats b = fuzzer.random(few);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.silent_corruption, b.silent_corruption);
  EXPECT_EQ(a.benign, b.benign);
  EXPECT_EQ(a.timeout, b.timeout);
  EXPECT_EQ(a.mutant_instructions, b.mutant_instructions);
}

TEST(Fuzz, LicenseSweepHasNoEscapes) {
  // The paper's core claim on the license target: every single-bit flip of a
  // strict protected byte is detected.
  const fuzz::Target* target = find_target("license");
  ASSERT_TRUE(target);
  auto prot = protect_target(*target, parallax::Hardening::Cleartext);
  ASSERT_TRUE(prot.ok()) << prot.error();
  TamperFuzzer fuzzer(prot.value().image, prot.value().protected_ranges);
  ASSERT_TRUE(fuzzer.ok());
  ASSERT_GT(fuzzer.strict_bytes(), 0u);

  CampaignOptions opts;  // smoke masks {01, 80, ff}
  const CampaignStats stats = fuzzer.sweep(opts);
  EXPECT_GT(stats.total, 0u);
  EXPECT_EQ(stats.detected, stats.total);
  for (const auto& e : stats.escapes) {
    ADD_FAILURE() << "escape @" << std::hex << e.mutation.addr << ": "
                  << e.detail;
  }
}

TEST(Fuzz, ReportWritesWellFormedJson) {
  const auto image = tiny_image();
  TamperFuzzer fuzzer(image, {});
  ASSERT_TRUE(fuzzer.ok());

  FuzzReport report;
  report.name = "unit";
  report.seed = 1;
  report.hardening = "cleartext";
  report.backend = fuzz::Backend::VmTamper;
  report.golden = fuzzer.golden();
  CampaignOptions opts;
  report.sweep = fuzzer.run_cases(
      {{image.entry + 6, {0x00}, true, true, "sweep"}}, opts);
  ASSERT_TRUE(write_fuzz_json(report, ::testing::TempDir()));

  std::ifstream in(::testing::TempDir() + "/FUZZ_unit.json");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("\"tool\": \"fuzz\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"fuzz\": \"unit\""), std::string::npos);
  EXPECT_NE(text.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"escapes\""), std::string::npos);
  // The dead-byte survivor above must be listed as an escape.
  EXPECT_NE(text.find("SILENT_CORRUPTION"), std::string::npos);
}

TEST(Fuzz, TargetRegistry) {
  EXPECT_TRUE(find_target("quickstart"));
  EXPECT_TRUE(find_target("ptrace"));
  EXPECT_TRUE(find_target("license"));
  EXPECT_FALSE(find_target("no-such-target"));
  EXPECT_GE(target_names().size(), 3u);
}

}  // namespace
}  // namespace plx::fuzz

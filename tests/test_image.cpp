#include <gtest/gtest.h>

#include "image/layout.h"
#include "isa/x86/build.h"
#include "isa/x86/decoder.h"

namespace plx::img {
namespace {

using namespace plx::x86;

Fragment func(const std::string& name, std::vector<Item> items) {
  Fragment f;
  f.name = name;
  f.section = SectionKind::Text;
  f.is_func = true;
  f.align = 16;
  f.items = std::move(items);
  return f;
}

TEST(Layout, AssignsAlignedAddresses) {
  Module m;
  m.entry = "a";
  m.fragments.push_back(func("a", {Item::make_insn(ins::ret())}));
  m.fragments.push_back(func("b", {Item::make_insn(ins::ret())}));
  auto r = layout(m);
  ASSERT_TRUE(r.ok()) << r.error();
  const Image& img = r.value().image;
  const Symbol* a = img.find_symbol("a");
  const Symbol* b = img.find_symbol("b");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->vaddr, kTextBase);
  EXPECT_EQ(b->vaddr % 16, 0u);
  EXPECT_GT(b->vaddr, a->vaddr);
  EXPECT_EQ(img.entry, a->vaddr);
}

TEST(Layout, PadBeforeShiftsFragment) {
  Module m;
  m.entry = "a";
  m.fragments.push_back(func("a", {Item::make_insn(ins::ret())}));
  Fragment b = func("b", {Item::make_insn(ins::ret())});
  b.align = 1;
  b.pad_before = 3;
  m.fragments.push_back(b);
  auto r = layout(m);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().image.find_symbol("b")->vaddr, kTextBase + 1 + 3);
}

TEST(Layout, RelBranchFixupResolves) {
  Module m;
  m.entry = "caller";
  Item call = Item::make_insn(ins::call_rel(0));
  call.fixup = Fixup::RelBranch;
  call.sym = "callee";
  m.fragments.push_back(func("caller", {call, Item::make_insn(ins::ret())}));
  m.fragments.push_back(func("callee", {Item::make_insn(ins::ret())}));
  auto r = layout(m);
  ASSERT_TRUE(r.ok()) << r.error();
  const Image& img = r.value().image;
  const auto bytes = img.read(img.entry, 5);
  ASSERT_EQ(bytes.size(), 5u);
  auto insn = x86::decode(bytes);
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->rel_target(img.entry), img.find_symbol("callee")->vaddr);
}

TEST(Layout, AbsImmFixupResolves) {
  Module m;
  m.entry = "f";
  Item mov = Item::make_insn(ins::mov(Reg::EAX, 0));
  mov.fixup = Fixup::AbsImm;
  mov.sym = "blob";
  mov.addend = 4;
  m.fragments.push_back(func("f", {mov, Item::make_insn(ins::ret())}));
  Fragment data;
  data.name = "blob";
  data.section = SectionKind::Data;
  data.align = 4;
  Buffer payload;
  payload.put_u32(0x11111111);
  data.items.push_back(Item::make_data(std::move(payload)));
  m.fragments.push_back(data);
  auto r = layout(m);
  ASSERT_TRUE(r.ok()) << r.error();
  const Image& img = r.value().image;
  const auto bytes = img.read(img.entry, 5);
  auto insn = x86::decode(bytes);
  ASSERT_TRUE(insn);
  EXPECT_EQ(static_cast<std::uint32_t>(insn->ops[1].imm),
            img.find_symbol("blob")->vaddr + 4);
}

TEST(Layout, AbsDataFixupResolves) {
  Module m;
  m.entry = "f";
  m.fragments.push_back(func("f", {Item::make_insn(ins::ret())}));
  Fragment tbl;
  tbl.name = "table";
  tbl.section = SectionKind::Data;
  Buffer word;
  word.put_u32(0);
  Item ptr = Item::make_data(std::move(word));
  ptr.fixup = Fixup::AbsData;
  ptr.sym = "f";
  tbl.items.push_back(std::move(ptr));
  m.fragments.push_back(tbl);
  auto r = layout(m);
  ASSERT_TRUE(r.ok()) << r.error();
  const Image& img = r.value().image;
  const auto bytes = img.read(img.find_symbol("table")->vaddr, 4);
  ASSERT_EQ(bytes.size(), 4u);
  const std::uint32_t v = static_cast<std::uint32_t>(bytes[0]) | (bytes[1] << 8) |
                          (bytes[2] << 16) | (bytes[3] << 24);
  EXPECT_EQ(v, img.find_symbol("f")->vaddr);
}

TEST(Layout, LocalLabelsAreFragmentScoped) {
  // Two fragments may both use ".loop" without collision.
  auto make_loop_func = [](const std::string& name) {
    Item top = Item::make_insn(ins::dec(Reg::EAX));
    top.labels = {".loop"};
    Item branch = Item::make_insn(ins::jcc_rel(Cond::NE, 0));
    branch.fixup = Fixup::RelBranch;
    branch.sym = ".loop";
    return func(name, {top, branch, Item::make_insn(ins::ret())});
  };
  Module m;
  m.entry = "f1";
  m.fragments.push_back(make_loop_func("f1"));
  m.fragments.push_back(make_loop_func("f2"));
  auto r = layout(m);
  ASSERT_TRUE(r.ok()) << r.error();
}

TEST(Layout, UndefinedSymbolFails) {
  Module m;
  m.entry = "f";
  Item call = Item::make_insn(ins::call_rel(0));
  call.fixup = Fixup::RelBranch;
  call.sym = "missing";
  m.fragments.push_back(func("f", {call}));
  auto r = layout(m);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().str().find("missing"), std::string::npos);
}

TEST(Layout, DuplicateSymbolFails) {
  Module m;
  m.entry = "f";
  m.fragments.push_back(func("f", {Item::make_insn(ins::ret())}));
  m.fragments.push_back(func("f", {Item::make_insn(ins::ret())}));
  EXPECT_FALSE(layout(m).ok());
}

TEST(Layout, AlignItemPadsWithNops) {
  Module m;
  m.entry = "f";
  Item pad = Item::make_align(8);
  Item tail = Item::make_insn(ins::ret());
  tail.labels = {"tail"};
  m.fragments.push_back(func("f", {Item::make_insn(ins::nop()), pad, tail}));
  auto r = layout(m);
  ASSERT_TRUE(r.ok()) << r.error();
  const Image& img = r.value().image;
  const Symbol* tail_sym = img.find_symbol("tail");
  ASSERT_TRUE(tail_sym);
  EXPECT_EQ(tail_sym->vaddr % 8, 0u);
  // Padding bytes are NOPs.
  const auto fill = img.read(kTextBase + 1, 1);
  EXPECT_EQ(fill[0], 0x90);
}

TEST(Image, SerializeDeserializeRoundtrip) {
  Module m;
  m.entry = "f";
  m.fragments.push_back(func("f", {Item::make_insn(ins::mov(Reg::EAX, 7)),
                                   Item::make_insn(ins::ret())}));
  auto r = layout(m);
  ASSERT_TRUE(r.ok());
  const Image& img = r.value().image;
  Buffer blob = img.serialize();
  auto back = Image::deserialize(blob.span());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().entry, img.entry);
  ASSERT_EQ(back.value().sections.size(), img.sections.size());
  EXPECT_EQ(back.value().sections[0].bytes, img.sections[0].bytes);
  EXPECT_EQ(back.value().find_symbol("f")->vaddr, img.find_symbol("f")->vaddr);
}

TEST(Image, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5};
  EXPECT_FALSE(Image::deserialize(garbage).ok());
}

TEST(Image, FuncAtFindsContainingFunction) {
  Module m;
  m.entry = "a";
  m.fragments.push_back(func("a", {Item::make_insn(ins::nop()),
                                   Item::make_insn(ins::ret())}));
  m.fragments.push_back(func("b", {Item::make_insn(ins::ret())}));
  auto r = layout(m);
  ASSERT_TRUE(r.ok());
  const Image& img = r.value().image;
  const Symbol* a = img.find_symbol("a");
  EXPECT_EQ(img.func_at(a->vaddr + 1)->name, "a");
  EXPECT_EQ(img.func_at(img.find_symbol("b")->vaddr)->name, "b");
  EXPECT_EQ(img.func_at(0x1000), nullptr);
}

}  // namespace
}  // namespace plx::img

// telemetry/compare.h (the perf-gate comparator) and telemetry/report_md.h
// (the EXPERIMENTS.md block renderer/splicer) — DESIGN.md §12.
#include <gtest/gtest.h>

#include "support/minijson.h"
#include "telemetry/compare.h"
#include "telemetry/report_md.h"
#include "telemetry/schema.h"

namespace {

using namespace plx;
using telemetry::Artifacts;
using telemetry::Block;
using telemetry::Verdict;

minijson::Value parse_json(const std::string& text) {
  minijson::Parser parser(text);
  minijson::Value v;
  EXPECT_TRUE(parser.parse(v)) << parser.error() << "\n" << text;
  return v;
}

const minijson::Object& obj(const minijson::Value& v) { return *v.object(); }

// ---------------------------------------------------------------- comparator

TEST(GatableMetrics, SkipsEnvelopeTimingAndArrays) {
  const auto artifact = parse_json(R"({
    "tool": "bench", "name": "x", "bench": "x", "schema_version": 2,
    "seed": 123,
    "wall_seconds_total": 1.5,
    "stages": {"compile_seconds": 0.5, "pipeline/scan_seconds": 0.1},
    "throughput": {"vm_cycles_total": 100, "vm_instructions_per_sec": 5e6},
    "figures": {"overhead_percent/miniwget/xor": 2.5},
    "escapes": [{"addr": 1}]
  })");
  const auto metrics = telemetry::gatable_metrics(obj(artifact));
  std::vector<std::string> names;
  for (const auto& m : metrics) names.push_back(m.name);
  // Deterministic metrics present...
  EXPECT_NE(std::find(names.begin(), names.end(), "throughput/vm_cycles_total"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "figures/overhead_percent/miniwget/xor"),
            names.end());
  // ...envelope ints, raw timings, and arrays are not gated.
  for (const auto& n : names) {
    EXPECT_NE(n, "schema_version");
    EXPECT_NE(n, "seed");
    EXPECT_EQ(n.find("seconds"), std::string::npos) << n;
    EXPECT_EQ(n.find("escapes"), std::string::npos) << n;
  }
  // Throughput rates carry the ±30% band; cycle counts are exact.
  for (const auto& m : metrics) {
    if (m.name == "throughput/vm_instructions_per_sec") {
      EXPECT_DOUBLE_EQ(m.tolerance, telemetry::kDefaultThroughputTolerance);
    }
    if (m.name == "throughput/vm_cycles_total") {
      EXPECT_DOUBLE_EQ(m.tolerance, 0.0);
    }
  }
}

TEST(GatableMetrics, RatesOverTinyWindowsAreNotPinned) {
  const auto artifact = parse_json(R"({
    "schema_version": 2,
    "throughput": {
      "vm_instructions_total": 4788,
      "vm_run_seconds": 0.0001,
      "vm_instructions_per_sec": 47880000,
      "scanner_bytes_total": 5000000,
      "scanner_scan_seconds": 2.0,
      "scanner_bytes_per_sec": 2500000
    }
  })");
  const auto metrics = telemetry::gatable_metrics(obj(artifact));
  std::vector<std::string> names;
  for (const auto& m : metrics) names.push_back(m.name);
  // The vm rate's window is sub-millisecond: scheduler noise, not pinned.
  EXPECT_EQ(std::find(names.begin(), names.end(),
                      "throughput/vm_instructions_per_sec"),
            names.end());
  // The scanner rate has a real 2 s window: pinned with the ±30% band.
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "throughput/scanner_bytes_per_sec"),
            names.end());
  // Totals stay pinned exactly either way.
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "throughput/vm_instructions_total"),
            names.end());
}

TEST(GatableMetrics, ImageDigestIsTheOnlyStringMetric) {
  const auto artifact = parse_json(R"({
    "tool": "protect", "name": "w", "protect": "w", "schema_version": 2,
    "image_fnv64": "31469c10f6aa34c9", "hardening": "xor",
    "image_bytes": 9496
  })");
  const auto metrics = telemetry::gatable_metrics(obj(artifact));
  bool digest = false;
  for (const auto& m : metrics) {
    if (m.is_string) {
      EXPECT_EQ(m.name, "image_fnv64");
      EXPECT_EQ(m.text, "31469c10f6aa34c9");
      EXPECT_DOUBLE_EQ(m.tolerance, 0.0);
      digest = true;
    }
  }
  EXPECT_TRUE(digest);
}

minijson::Value baseline_with(const std::string& metrics_json) {
  return parse_json(R"({
    "tool": "baseline", "name": "x", "baseline": "x", "schema_version": 2,
    "metrics": )" + metrics_json + "}");
}

TEST(CompareArtifact, ExactMetricViolationFails) {
  const auto artifact = parse_json(
      R"({"schema_version": 2, "totals": {"chains": 2}})");
  const auto base = baseline_with(
      R"({"totals/chains": {"value": 1, "tolerance": 0}})");
  const auto r =
      telemetry::compare_artifact("BENCH_x.json", obj(artifact), obj(base));
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.checks.size(), 1u);
  EXPECT_EQ(r.checks[0].verdict, Verdict::OutOfTolerance);
  EXPECT_EQ(r.failures(), 1u);
  EXPECT_FALSE(r.ok());
}

TEST(CompareArtifact, ToleranceBandPassesInsideFailsOutside) {
  const auto artifact = parse_json(
      R"({"schema_version": 2, "throughput": {"vm_instructions_per_sec": 125}})");
  const auto inside = baseline_with(
      R"({"throughput/vm_instructions_per_sec": {"value": 100, "tolerance": 0.30}})");
  EXPECT_TRUE(telemetry::compare_artifact("BENCH_x.json", obj(artifact),
                                          obj(inside))
                  .ok());
  const auto outside = baseline_with(
      R"({"throughput/vm_instructions_per_sec": {"value": 90, "tolerance": 0.30}})");
  const auto r = telemetry::compare_artifact("BENCH_x.json", obj(artifact),
                                             obj(outside));
  EXPECT_EQ(r.failures(), 1u);
  EXPECT_EQ(r.checks[0].verdict, Verdict::OutOfTolerance);
}

TEST(CompareArtifact, PinnedMetricMissingFromArtifactFails) {
  const auto artifact = parse_json(R"({"schema_version": 2, "totals": {}})");
  const auto base = baseline_with(
      R"({"totals/chains": {"value": 1, "tolerance": 0}})");
  const auto r =
      telemetry::compare_artifact("BENCH_x.json", obj(artifact), obj(base));
  ASSERT_EQ(r.checks.size(), 1u);
  EXPECT_EQ(r.checks[0].verdict, Verdict::MissingMetric);
}

TEST(CompareArtifact, UnpinnedArtifactMetricNeverFails) {
  const auto artifact = parse_json(
      R"({"schema_version": 2, "totals": {"chains": 1, "brand_new_counter": 7}})");
  const auto base = baseline_with(
      R"({"totals/chains": {"value": 1, "tolerance": 0}})");
  const auto r =
      telemetry::compare_artifact("BENCH_x.json", obj(artifact), obj(base));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.checks.size(), 1u);
}

TEST(CompareArtifact, StringDigestMismatch) {
  const auto artifact = parse_json(
      R"({"schema_version": 2, "image_fnv64": "deadbeefdeadbeef"})");
  const auto base = baseline_with(
      R"({"image_fnv64": {"text": "31469c10f6aa34c9", "tolerance": 0}})");
  const auto r =
      telemetry::compare_artifact("PROTECT_x.json", obj(artifact), obj(base));
  ASSERT_EQ(r.checks.size(), 1u);
  EXPECT_EQ(r.checks[0].verdict, Verdict::ValueMismatch);
  EXPECT_EQ(r.checks[0].current_text, "deadbeefdeadbeef");
}

// Regression test: flat sections (bench "pipeline"/"figures") store
// '/'-bearing names as single literal keys; the comparator must resolve
// "pipeline/chain-compile/chain_words" against
// {"pipeline": {"chain-compile/chain_words": ...}}.
TEST(CompareArtifact, ResolvesFlatKeysContainingSlashes) {
  const auto artifact = parse_json(R"({
    "schema_version": 2,
    "pipeline": {"chain-compile/chain_words": 447},
    "figures": {"overhead_percent/miniwget/xor": 2.5}
  })");
  const auto base = baseline_with(R"({
    "pipeline/chain-compile/chain_words": {"value": 447, "tolerance": 0},
    "figures/overhead_percent/miniwget/xor": {"value": 2.5, "tolerance": 0}
  })");
  const auto r =
      telemetry::compare_artifact("BENCH_x.json", obj(artifact), obj(base));
  EXPECT_TRUE(r.ok()) << r.failures() << " failure(s)";
  EXPECT_EQ(r.checks.size(), 2u);
}

TEST(CompareArtifact, RejectsBaselineWithWrongSchemaVersion) {
  const auto artifact = parse_json(R"({"schema_version": 2})");
  const auto base = parse_json(
      R"({"schema_version": 1, "metrics": {}})");
  const auto r =
      telemetry::compare_artifact("BENCH_x.json", obj(artifact), obj(base));
  EXPECT_FALSE(r.error.empty());
  EXPECT_FALSE(r.ok());
}

TEST(BaselineFiles, NamingConvention) {
  EXPECT_EQ(telemetry::baseline_file_for("BENCH_overhead.json"),
            "BASELINE_overhead.json");
  EXPECT_EQ(telemetry::baseline_file_for("FUZZ_quickstart.json"),
            "BASELINE_fuzz_quickstart.json");
  EXPECT_EQ(telemetry::baseline_file_for("PROTECT_miniwget.json"),
            "BASELINE_protect_miniwget.json");
  EXPECT_EQ(telemetry::baseline_file_for("notes.txt"), "");
  EXPECT_EQ(telemetry::baseline_file_for("OTHER_x.json"), "");
}

TEST(BaselineFiles, RenderedBaselineGatesItsOwnArtifactClean) {
  const auto artifact = parse_json(R"({
    "tool": "protect", "name": "w", "protect": "w", "schema_version": 2,
    "image_bytes": 9496, "image_fnv64": "31469c10f6aa34c9",
    "totals": {"chains": 1, "chain_words": 249},
    "pipeline": {"chain-compile/chain_words": 447}
  })");
  const std::string rendered = telemetry::render_baseline(
      "protect_w", "PROTECT_w.json", obj(artifact));
  const auto base = parse_json(rendered);
  std::string why;
  EXPECT_TRUE(minijson::check_envelope(obj(base), "baseline",
                                       telemetry::kSchemaVersion, why))
      << why;
  const auto r =
      telemetry::compare_artifact("PROTECT_w.json", obj(artifact), obj(base));
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.checks.size(), 5u);  // 4 numerics + the digest
}

// ------------------------------------------------------------- markdown

Artifacts one_artifact(const std::string& file, const std::string& json) {
  Artifacts a;
  a.files.emplace(file, parse_json(json));
  return a;
}

TEST(ReportMd, GoldenFuzzBlock) {
  const auto artifacts = one_artifact("FUZZ_synth.json", R"({
    "tool": "fuzz", "name": "synth", "fuzz": "synth", "schema_version": 2,
    "hardening": "cleartext", "backend": "tamper",
    "coverage": {"protected_bytes": 40, "strict_bytes": 30},
    "campaigns": {"sweep": {"escapes": 1}, "random": {"escapes": 0}},
    "outcomes": {"total": 100, "detected": 90, "silent_corruption": 1,
                 "benign": 8, "timeout": 1}
  })");
  const auto blocks = telemetry::render_blocks(artifacts);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].id, "fuzz");
  const std::string expected =
      "<!-- plxreport:begin fuzz source=FUZZ_*.json schema=2 -->\n"
      "*Measured values generated by `plxreport` from `FUZZ_*.json` (schema "
      "v2); do not edit by hand — regenerate with `plxreport update`.*\n"
      "\n"
      "| target | hardening | backend | protected bytes (strict) | mutants | "
      "detected | silent | benign | timeout | escapes |\n"
      "|---|---|---|---|---|---|---|---|---|---|\n"
      "| synth | cleartext | tamper | 40 (30) | 100 | 90 | 1 | 8 | 1 | 1 |\n"
      "<!-- plxreport:end fuzz -->\n";
  EXPECT_EQ(blocks[0].text, expected);
}

TEST(ReportMd, GoldenProtectBlock) {
  const auto artifacts = one_artifact("PROTECT_synthprog.json", R"({
    "tool": "protect", "name": "synthprog", "protect": "synthprog",
    "schema_version": 2, "ok": true,
    "image_bytes": 1234, "image_fnv64": "00ff00ff00ff00ff",
    "totals": {"chains": 1, "chain_words": 10, "gadgets_total": 20,
               "gadgets_overlapping": 5, "used_gadgets_overlapping": 4}
  })");
  const auto blocks = telemetry::render_blocks(artifacts);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].id, "protect");
  const std::string expected =
      "<!-- plxreport:begin protect source=PROTECT_*.json schema=2 -->\n"
      "*Measured values generated by `plxreport` from `PROTECT_*.json` "
      "(schema v2); do not edit by hand — regenerate with `plxreport "
      "update`.*\n"
      "\n"
      "| workload | image bytes | image fnv64 | chains | chain words | "
      "gadgets | overlapping | used overlapping |\n"
      "|---|---|---|---|---|---|---|---|\n"
      "| synthprog | 1234 | `00ff00ff00ff00ff` | 1 | 10 | 20 | 5 | 4 |\n"
      "<!-- plxreport:end protect -->\n";
  EXPECT_EQ(blocks[0].text, expected);
}

TEST(ReportMd, MissingFiguresRenderDashesNotCrashes) {
  const auto artifacts = one_artifact("BENCH_attacks.json", R"({
    "tool": "bench", "name": "attacks", "bench": "attacks",
    "schema_version": 2, "figures": {}
  })");
  const auto blocks = telemetry::render_blocks(artifacts);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].id, "attacks");
  EXPECT_NE(blocks[0].text.find("| —/— (—) |"), std::string::npos)
      << blocks[0].text;
}

const char* kDoc =
    "# Title\n"
    "\n"
    "prose before\n"
    "<!-- plxreport:begin fuzz source=FUZZ_*.json schema=2 -->\n"
    "old stale table\n"
    "<!-- plxreport:end fuzz -->\n"
    "prose after\n";

TEST(ReportMd, SpliceReplacesMarkedRegionKeepsProse) {
  const std::vector<Block> blocks = {
      {"fuzz",
       "<!-- plxreport:begin fuzz source=FUZZ_*.json schema=2 -->\n"
       "new table\n"
       "<!-- plxreport:end fuzz -->\n"}};
  const auto out = telemetry::splice_blocks(kDoc, blocks);
  ASSERT_TRUE(out.ok()) << out.error().str();
  EXPECT_EQ(out.value(),
            "# Title\n"
            "\n"
            "prose before\n"
            "<!-- plxreport:begin fuzz source=FUZZ_*.json schema=2 -->\n"
            "new table\n"
            "<!-- plxreport:end fuzz -->\n"
            "prose after\n");
}

TEST(ReportMd, SpliceFailsOnMarkerWithoutRenderedBlock) {
  const auto out = telemetry::splice_blocks(kDoc, {});
  EXPECT_FALSE(out.ok());
}

TEST(ReportMd, SpliceFailsOnRenderedBlockWithoutMarker) {
  const std::vector<Block> blocks = {{"protect", "x\n"}};
  const auto out = telemetry::splice_blocks("no markers here\n", blocks);
  EXPECT_FALSE(out.ok());
}

TEST(ReportMd, SpliceFailsOnUnterminatedMarker) {
  const auto out = telemetry::splice_blocks(
      "<!-- plxreport:begin fuzz source=x schema=2 -->\nnever closed\n", {});
  EXPECT_FALSE(out.ok());
}

TEST(ReportMd, StaleDetectsSingleByteDrift) {
  const std::string fresh =
      "<!-- plxreport:begin fuzz source=FUZZ_*.json schema=2 -->\n"
      "old stale table\n"
      "<!-- plxreport:end fuzz -->\n";
  std::string error;
  // Identical region: not stale.
  EXPECT_TRUE(
      telemetry::stale_blocks(kDoc, {{"fuzz", fresh}}, error).empty());
  EXPECT_TRUE(error.empty());
  // One byte changed: stale.
  std::string drifted = fresh;
  drifted[drifted.find("stale")] = 'S';
  const auto stale = telemetry::stale_blocks(kDoc, {{"fuzz", drifted}}, error);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "fuzz");
  // A rendered block with no markers in the doc is also reported.
  const auto missing =
      telemetry::stale_blocks("plain text\n", {{"fuzz", fresh}}, error);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], "fuzz");
}

}  // namespace

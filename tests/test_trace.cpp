// Execution-tracing layer (src/telemetry/trace.h, src/vm/vmtrace.h):
// span nesting and LIFO enforcement, ring-buffer semantics, byte-stable
// export under clock injection, cross-thread timestamp monotonicity, and the
// VM cycle-attribution profiler's exactness guarantee on a real protected
// workload.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "fuzz/targets.h"
#include "parallax/traceview.h"
#include "support/minijson.h"
#include "support/thread_pool.h"
#include "telemetry/report.h"
#include "telemetry/schema.h"
#include "telemetry/trace.h"
#include "isa/x86/machine.h"
#include "vm/vmtrace.h"

namespace plx {
namespace {

using telemetry::TraceEvent;
using telemetry::TracePhase;
using telemetry::Tracer;
using telemetry::TraceSpan;

// Injectable clock: each now_ns() call advances by 1 µs, from a fixed
// origin, so every recorded timestamp is reproducible run to run.
std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t fake_clock() { return g_fake_now.fetch_add(1000) + 1000; }

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_fake_now.store(0);
    Tracer::instance().set_clock_for_test(&fake_clock);
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().set_clock_for_test(nullptr);
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothingAndSpansAreInactive) {
  Tracer& tr = Tracer::instance();
  ASSERT_FALSE(tr.enabled());
  {
    TraceSpan span("cat", "inactive");
    EXPECT_FALSE(span.active());
    span.arg("k", "v");  // must be a safe no-op
  }
  tr.instant("cat", "nothing");
  tr.counter("cat", "nothing", 1.0);
  tr.enable(16);
  EXPECT_EQ(tr.recorded(), 0u);
}

TEST_F(TraceTest, SpansNestAndCloseInnerFirst) {
  Tracer& tr = Tracer::instance();
  tr.enable(64);
  {
    TraceSpan outer("t", "outer");
    EXPECT_EQ(telemetry::open_spans_on_this_thread(), 1u);
    {
      TraceSpan inner("t", "inner");
      EXPECT_EQ(telemetry::open_spans_on_this_thread(), 2u);
    }
    EXPECT_EQ(telemetry::open_spans_on_this_thread(), 1u);
  }
  EXPECT_EQ(telemetry::open_spans_on_this_thread(), 0u);

  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it records first; ids follow record order.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_LT(events[0].id, events[1].id);
  EXPECT_EQ(events[0].phase, TracePhase::Complete);
  // The outer span opened before the inner and closed after it.
  EXPECT_LT(events[1].ts_ns, events[0].ts_ns);
  EXPECT_GT(events[1].dur_ns, events[0].dur_ns);
}

TEST_F(TraceTest, SpanArgsAreAttached) {
  Tracer& tr = Tracer::instance();
  tr.enable(16);
  {
    TraceSpan span("t", "tagged");
    ASSERT_TRUE(span.active());
    span.arg("key", "value");
    span.arg("n", std::uint64_t{42});
  }
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "key");
  EXPECT_EQ(events[0].args[0].second, "value");
  EXPECT_EQ(events[0].args[1].second, "42");
}

TEST_F(TraceTest, OutOfOrderSpanCloseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Tracer::instance().set_clock_for_test(&fake_clock);
        Tracer::instance().enable(16);
        auto* outer = new TraceSpan("t", "outer");
        auto* inner = new TraceSpan("t", "inner");
        (void)inner;
        delete outer;  // inner is still open: LIFO violation
      },
      "out of LIFO order");
}

TEST_F(TraceTest, OutOfOrderTokenEndAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Tracer::instance().set_clock_for_test(&fake_clock);
        Tracer::instance().enable(16);
        auto t1 = telemetry::begin_span("t", "first");
        auto t2 = telemetry::begin_span("t", "second");
        (void)t2;
        telemetry::end_span(t1, "t", "first");  // second is still open
      },
      "out of LIFO order");
}

TEST_F(TraceTest, TokenSpansRecordWithArgs) {
  Tracer& tr = Tracer::instance();
  tr.enable(16);
  auto tok = telemetry::begin_span("pool", "task");
  ASSERT_TRUE(tok.active);
  telemetry::end_span(tok, "pool", "task", {{"queue_wait_us", "7"}});
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cat, "pool");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "queue_wait_us");
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  Tracer& tr = Tracer::instance();
  tr.enable(4);
  for (int i = 0; i < 10; ++i) tr.instant("t", "e" + std::to_string(i));
  EXPECT_EQ(tr.recorded(), 10u);
  EXPECT_EQ(tr.dropped(), 6u);
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Chronological oldest-first: the last four survive in order.
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[3].name, "e9");
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LT(events[i - 1].id, events[i].id);
}

TEST_F(TraceTest, CrossThreadTimestampsAreMonotonicPerThread) {
  Tracer& tr = Tracer::instance();
  tr.set_clock_for_test(nullptr);  // real steady clock
  tr.enable(1 << 12);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        TraceSpan span("mt", "w" + std::to_string(t));
        Tracer::instance().instant("mt", "tick");
      }
    });
  }
  for (auto& th : threads) th.join();

  std::map<std::uint32_t, std::uint64_t> last_ts;
  std::uint64_t last_id = 0;
  for (const auto& e : tr.snapshot()) {
    // Record order is id order (ring is chronological).
    EXPECT_LT(last_id, e.id);
    last_id = e.id;
    // Per-thread, a later record never carries an earlier close timestamp.
    const std::uint64_t close_ns = e.ts_ns + e.dur_ns;
    auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(close_ns, it->second);
    }
    last_ts[e.tid] = close_ns;
  }
  EXPECT_EQ(last_ts.size(), 4u);  // dense tids, one per thread
}

TEST_F(TraceTest, ExporterIsByteStableUnderFixedClock) {
  auto run_once = [] {
    g_fake_now.store(0);
    Tracer& tr = Tracer::instance();
    tr.enable(64);
    {
      TraceSpan outer("pipeline", "scan");
      outer.arg("job", "demo");
      TraceSpan inner("pipeline", "decode");
    }
    tr.instant("fuzz", "progress", {{"done", "10"}});
    tr.counter("vm", "ret_density", 0.25, 8192 * 1000, /*pid=*/2);
    const auto events = tr.snapshot();
    tr.disable();
    std::ostringstream out;
    telemetry::JsonWriter w(out);
    w.begin_object();
    telemetry::write_trace_events(w, events);
    w.end_object();
    return out.str();
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b) << "exporter output must be byte-stable under a fixed clock";

  // Spot-check the Chrome trace shape: process metadata for both timebases,
  // complete/instant/counter phases, and integer-µs timestamps (the fake
  // clock ticks in whole µs; the VM counter sits at virtual cycle 8192).
  EXPECT_NE(a.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(a.find("\"process_name\""), std::string::npos);
  EXPECT_NE(a.find("\"vm (virtual cycles)\""), std::string::npos);
  EXPECT_NE(a.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(a.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(a.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(a.find("\"value\": 0.25"), std::string::npos);
  EXPECT_NE(a.find("\"job\": \"demo\""), std::string::npos);
}

TEST_F(TraceTest, ExporterRebasesAndFormatsSubMicrosecond) {
  std::vector<TraceEvent> events;
  TraceEvent e1;
  e1.name = "a";
  e1.cat = "t";
  e1.phase = TracePhase::Complete;
  e1.ts_ns = 10'000;
  e1.dur_ns = 2'500;  // 2.5 µs
  e1.tid = 1;
  TraceEvent e2 = e1;
  e2.name = "b";
  e2.ts_ns = 13'500;  // 3.5 µs after e1
  e2.dur_ns = 1'000;
  events.push_back(e1);
  events.push_back(e2);

  std::ostringstream out;
  telemetry::JsonWriter w(out);
  w.begin_object();
  telemetry::write_trace_events(w, events);
  w.end_object();
  const std::string s = out.str();
  // Earliest event rebases to 0; sub-µs remainders render as trimmed
  // decimal fractions, never floating-point noise.
  EXPECT_NE(s.find("\"ts\": 0"), std::string::npos);
  EXPECT_NE(s.find("\"dur\": 2.5"), std::string::npos);
  EXPECT_NE(s.find("\"ts\": 3.5"), std::string::npos);
  EXPECT_NE(s.find("\"dur\": 1"), std::string::npos);
}

TEST_F(TraceTest, AggregateSpansGroupsAndSorts) {
  std::vector<TraceEvent> events;
  auto push = [&](const char* cat, const char* name, std::uint64_t dur) {
    TraceEvent e;
    e.cat = cat;
    e.name = name;
    e.phase = TracePhase::Complete;
    e.dur_ns = dur;
    events.push_back(e);
  };
  push("p", "hot", 5000);
  push("p", "hot", 3000);
  push("p", "cold", 1000);
  TraceEvent inst;
  inst.phase = TracePhase::Instant;
  inst.name = "noise";
  events.push_back(inst);

  const auto stats = telemetry::aggregate_spans(events);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "p/hot");
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_EQ(stats[0].total_ns, 8000u);
  EXPECT_EQ(stats[0].max_ns, 5000u);
  EXPECT_EQ(stats[1].name, "p/cold");
}

TEST_F(TraceTest, ThreadPoolTasksCarrySpans) {
  Tracer& tr = Tracer::instance();
  tr.set_clock_for_test(nullptr);
  tr.enable(1 << 12);
  support::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&] { ++ran; });
  pool.wait_idle();
  tr.disable();
  EXPECT_EQ(ran.load(), 8);
  std::size_t task_spans = 0;
  for (const auto& e : tr.snapshot()) {
    if (e.cat == std::string("pool") && e.name == "task") {
      ++task_spans;
      ASSERT_EQ(e.args.size(), 1u);
      EXPECT_EQ(e.args[0].first, "queue_wait_us");
    }
  }
#if PLX_TRACE_ENABLED
  EXPECT_EQ(task_spans, 8u);
#else
  // Instrumentation compiled out: the pool never wraps tasks.
  EXPECT_EQ(task_spans, 0u);
#endif
}

TEST_F(TraceTest, TraceMetaReflectsBuild) {
  const telemetry::TraceMeta meta = telemetry::current_trace_meta();
#if PLX_TRACE_ENABLED
  EXPECT_TRUE(meta.plx_trace);
#else
  EXPECT_FALSE(meta.plx_trace);
#endif
  EXPECT_FALSE(meta.git_describe.empty());
}

// --- VM cycle attribution ---------------------------------------------------

TEST(VmTrace, ProfilerAttributesBySmallestCoveringRegion) {
  std::vector<vm::CodeRegion> regions = {
      {10, 20, "gadget@10"},
      {15, 40, "func"},  // overlaps the gadget; gadget is smaller
  };
  vm::ExecutionProfiler prof(regions, /*window_cycles=*/4);
  prof.on_retire(5, 1, false);    // app
  prof.on_retire(12, 3, false);   // gadget@10
  prof.on_retire(17, 2, true);    // overlap: smallest cover wins -> gadget@10
  prof.on_retire(25, 4, true);    // func
  prof.on_retire(40, 7, false);   // one past func: app
  prof.finish();

  const auto& t = prof.totals();
  EXPECT_EQ(t.app_cycles, 8u);
  EXPECT_EQ(t.chain_cycles, 9u);
  EXPECT_EQ(t.cycles(), 17u);
  EXPECT_EQ(t.app_instructions, 2u);
  EXPECT_EQ(t.chain_instructions, 3u);
  EXPECT_EQ(t.rets, 2u);
  EXPECT_EQ(t.chain_rets, 2u);

  const auto hot = prof.hot_regions();
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].region.label, "gadget@10");
  EXPECT_EQ(hot[0].cycles, 5u);
  EXPECT_EQ(hot[0].instructions, 2u);
  EXPECT_EQ(hot[1].region.label, "func");

  // Windows close once >= 4 cycles accumulate; end_cycle is cumulative.
  const auto& wins = prof.windows();
  ASSERT_GE(wins.size(), 2u);
  EXPECT_EQ(wins[0].end_cycle, 4u);  // 1+3
  std::uint64_t insns = 0, cycles = 0;
  for (const auto& w : wins) {
    insns += w.instructions;
    cycles += w.cycles;
  }
  EXPECT_EQ(insns, 5u);
  EXPECT_EQ(cycles, 17u);
}

TEST(VmTrace, ProfilerRunShorterThanOneWindow) {
  // A run that never accumulates window_cycles produces no window until
  // finish(), which closes exactly one partial window — and is idempotent.
  vm::ExecutionProfiler prof({}, /*window_cycles=*/8);
  prof.on_retire(0, 2, false);
  prof.on_retire(1, 3, true);
  EXPECT_TRUE(prof.windows().empty());
  prof.finish();
  ASSERT_EQ(prof.windows().size(), 1u);
  const auto& w = prof.windows()[0];
  EXPECT_EQ(w.cycles, 5u);
  EXPECT_EQ(w.instructions, 2u);
  EXPECT_EQ(w.rets, 1u);
  EXPECT_EQ(w.end_cycle, 5u);
  EXPECT_DOUBLE_EQ(w.ret_density(), 0.5);
  prof.finish();
  EXPECT_EQ(prof.windows().size(), 1u);
}

TEST(VmTrace, ProfilerNoEmptyFinalWindow) {
  // Cycles summing to an exact window multiple: the retirement on the
  // boundary closes the window, and finish() must NOT append an empty one.
  vm::ExecutionProfiler prof({}, /*window_cycles=*/4);
  prof.on_retire(0, 4, false);  // closes window 1 exactly
  prof.on_retire(1, 2, true);
  prof.on_retire(2, 2, false);  // closes window 2 exactly
  ASSERT_EQ(prof.windows().size(), 2u);
  prof.finish();
  ASSERT_EQ(prof.windows().size(), 2u);
  EXPECT_EQ(prof.windows()[0].end_cycle, 4u);
  EXPECT_EQ(prof.windows()[1].end_cycle, 8u);
  EXPECT_EQ(prof.windows()[1].rets, 1u);
}

TEST(VmTrace, ProfilerBoundaryOverrunStaysInClosingWindow) {
  // An instruction overrunning the window boundary keeps ALL its cycles in
  // the window it closes: the recorded width may exceed window_cycles, and
  // the next window starts clean at the cumulative cycle count.
  vm::ExecutionProfiler prof({}, /*window_cycles=*/4);
  prof.on_retire(0, 3, false);
  prof.on_retire(1, 9, true);  // 3 + 9 = 12 >= 4: closes at width 12
  prof.on_retire(2, 1, false);
  prof.finish();
  ASSERT_EQ(prof.windows().size(), 2u);
  EXPECT_EQ(prof.windows()[0].cycles, 12u);
  EXPECT_EQ(prof.windows()[0].end_cycle, 12u);
  EXPECT_EQ(prof.windows()[0].instructions, 2u);
  EXPECT_EQ(prof.windows()[0].rets, 1u);
  EXPECT_EQ(prof.windows()[1].end_cycle, 13u);
  EXPECT_EQ(prof.windows()[1].cycles, 1u);
}

TEST(VmTrace, WindowRatiosNeverDivideByZero) {
  // ret_density()/chain_share() on an empty window must be 0, not NaN; a
  // profiler that saw no retirements finishes with no windows at all.
  const vm::ExecutionProfiler::Window w{};
  EXPECT_EQ(w.ret_density(), 0.0);
  EXPECT_EQ(w.chain_share(), 0.0);
  vm::ExecutionProfiler prof({}, /*window_cycles=*/4);
  prof.finish();
  EXPECT_TRUE(prof.windows().empty());
}

TEST(VmTrace, AttributionSumsExactlyOnProtectedWorkload) {
  const fuzz::Target* target = fuzz::find_target("quickstart");
  ASSERT_NE(target, nullptr);
  auto prot = fuzz::protect_target(*target, parallax::Hardening::Xor);
  ASSERT_TRUE(prot) << prot.error().str();

  const auto regions = parallax::chain_code_regions(prot.value());
  ASSERT_FALSE(regions.empty());

  vm::ExecutionProfiler prof(regions);
  x86::Machine machine(prot.value().image);
  prof.attach(machine);
  const auto result = machine.run();
  prof.finish();

  ASSERT_EQ(result.reason, vm::StopReason::Exited);
  ASSERT_GT(result.cycles, 0u);
#if PLX_TRACE_ENABLED
  // THE guarantee: every VM cycle lands in exactly one bucket.
  EXPECT_EQ(prof.totals().cycles(), result.cycles);
  EXPECT_GT(prof.totals().chain_cycles, 0u)
      << "a protected run must execute chain machinery";
  EXPECT_GT(prof.totals().app_cycles, 0u);
  EXPECT_GT(prof.totals().chain_rets, 0u)
      << "chains execute through rets (the ROPocop signal)";
  // The observer sees the final stopping instruction, which RunResult does
  // not count as retired.
  EXPECT_GE(prof.totals().instructions(), result.instructions);

  // Per-chain rollup covers the executed chain gadgets.
  const auto chains =
      vm::per_chain_profiles(prof, parallax::chain_gadget_map(prot.value()));
  ASSERT_FALSE(chains.empty());
  EXPECT_GT(chains[0].cycles, 0u);
  EXPECT_FALSE(chains[0].gadgets.empty());
#else
  // Tracing compiled out: the observer is never invoked.
  EXPECT_EQ(prof.totals().cycles(), 0u);
#endif
}

TEST(VmTrace, WriteTraceJsonIsValidAndCarriesExactAttribution) {
  const fuzz::Target* target = fuzz::find_target("quickstart");
  ASSERT_NE(target, nullptr);
  auto prot = fuzz::protect_target(*target, parallax::Hardening::Cleartext);
  ASSERT_TRUE(prot) << prot.error().str();

  vm::ExecutionProfiler prof(parallax::chain_code_regions(prot.value()));
  x86::Machine machine(prot.value().image);
  prof.attach(machine);
  machine.run();
  prof.finish();

  Tracer::instance().enable(1 << 10);
  prof.emit_counters(Tracer::instance());
  Tracer::instance().disable();
  const auto chains =
      vm::per_chain_profiles(prof, parallax::chain_gadget_map(prot.value()));

  std::ostringstream out;
  vm::write_trace_json(out, "quickstart", Tracer::instance().snapshot(), &prof,
                       chains);

  minijson::Parser parser(out.str());
  minijson::Value root;
  ASSERT_TRUE(parser.parse(root)) << parser.error();
  const minijson::Object* obj = root.object();
  ASSERT_NE(obj, nullptr);

  std::string why;
  EXPECT_TRUE(minijson::check_envelope(*obj, "trace",
                                       telemetry::kSchemaVersion, why))
      << why;

  // Envelope host section (present on every artifact since this PR).
  auto host = obj->find("host");
  ASSERT_NE(host, obj->end());
  ASSERT_NE(host->second.object(), nullptr);
  EXPECT_NE(host->second.object()->find("threads"),
            host->second.object()->end());

#if PLX_TRACE_ENABLED
  auto vm_it = obj->find("vm");
  ASSERT_NE(vm_it, obj->end());
  const minijson::Object& vm_obj = *vm_it->second.object();
  const double cycles = vm_obj.at("cycles").number();
  const double app = vm_obj.at("app_cycles").number();
  const double chain = vm_obj.at("chain_cycles").number();
  EXPECT_EQ(app + chain, cycles);
  EXPECT_GT(chain, 0.0);

  auto events = obj->find("traceEvents");
  ASSERT_NE(events, obj->end());
  ASSERT_NE(events->second.array(), nullptr);
  EXPECT_FALSE(events->second.array()->empty());
#endif
}

}  // namespace
}  // namespace plx

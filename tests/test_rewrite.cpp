// §IV-B rewriting rules: protectability analysis (Figure 6 machinery) and
// semantic preservation of the applying rewriter.
#include <gtest/gtest.h>

#include "cc/compile.h"
#include "image/layout.h"
#include "rewrite/protectability.h"
#include "rewrite/rewriter.h"
#include "isa/x86/machine.h"
#include "isa/x86/build.h"
#include "isa/x86/rules.h"

namespace plx::rewrite {
namespace {

using x86::immediate_rule_applies;
using x86::try_plant_ret;

const char* kProgram = R"(
int scale(int x) { return x * 1000 + 0x1234567; }
int clamp(int x) {
  if (x > 4096) return 4096;
  if (x < -4096) return -4096;
  return x;
}
int main() {
  int acc = 0;
  for (int i = 0; i < 50; i++) {
    acc = acc + clamp(scale(i));
    acc = acc & 0xffffff;
  }
  return acc & 0xff;
}
)";

TEST(PlantRet, FindsGadgetEndingAtPlantedByte) {
  // mov eax, 0x11d00158: planting 0xc3 at the top immediate byte creates
  // "pop eax / add eax,edx"-style sequences depending on alignment; verify a
  // usable gadget can end exactly at the planted position.
  const std::vector<std::uint8_t> bytes = {0xb8, 0x58, 0x01, 0xd0, 0x11, 0x90, 0x90};
  auto planted = try_plant_ret(bytes, 4, 0xc3);
  ASSERT_TRUE(planted);
  EXPECT_EQ(planted->end, 5u);
  EXPECT_TRUE(planted->gadget.usable());
}

TEST(PlantRet, RejectsWhenNothingDecodes) {
  // 0x0f prefix garbage before the planted ret.
  const std::vector<std::uint8_t> bytes = {0x0f, 0x0f, 0x0f, 0x00};
  auto planted = try_plant_ret(bytes, 3, 0xc3);
  // A bare ret gadget of length 1 still forms (start == pos) — it classifies
  // as Transparent. This matches the paper: a lone ret is itself a gadget.
  ASSERT_TRUE(planted);
  EXPECT_EQ(planted->gadget.type, gadget::GType::Transparent);
}

TEST(Rules, ImmediateRuleApplicability) {
  using namespace x86::ins;
  x86::Insn movi = mov(x86::Reg::EAX, 0x12345678);
  movi.len = 5;  // applicability is judged on encoded instructions
  EXPECT_TRUE(immediate_rule_applies(movi));
  x86::Insn wide_add = add(x86::Reg::ECX, 1000);
  wide_add.len = 6;
  EXPECT_TRUE(immediate_rule_applies(wide_add));
  x86::Insn small = add(x86::Reg::ECX, 4);
  small.len = 3;
  EXPECT_FALSE(immediate_rule_applies(small));  // imm8 form: no imm32 field
  x86::Insn xor_wide = xor_(x86::Reg::EAX, x86::Reg::EDX);
  EXPECT_FALSE(immediate_rule_applies(xor_wide));  // not in the paper's list
}

TEST(Protectability, ReportsPlausibleCoverage) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  auto laid = img::layout(compiled.value().module);
  ASSERT_TRUE(laid.ok()) << laid.error();
  const auto report = analyze_protectability(compiled.value().module, laid.value());

  ASSERT_GT(report.code_bytes, 100u);
  const double near = report.fraction(Rule::ExistingNear);
  const double far = report.fraction(Rule::ExistingFar);
  const double imm = report.fraction(Rule::ImmediateMod);
  const double jump = report.fraction(Rule::JumpMod);
  const double any = report.fraction_any();

  // Shape constraints from Figure 6: existing gadgets cover a few percent,
  // far-ret less than near-ret, the modification rules dominate, and the
  // union is bounded by the sum but at least the max.
  EXPECT_GT(near, 0.0);
  EXPECT_LT(near, 0.35);
  EXPECT_LE(far, near + 0.05);
  EXPECT_GT(imm + jump, 0.05);
  EXPECT_GE(any + 1e-9, std::max({near, far, imm, jump}));
  EXPECT_LE(any, near + far + imm + jump + 1e-9);
  EXPECT_LE(any, 1.0);
  // The always-applicable spurious rule reports 1.0 and is excluded from any.
  EXPECT_EQ(report.fraction(Rule::Spurious), 1.0);
}

TEST(Rewriter, CraftsGadgetsAndPreservesSemantics) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok()) << compiled.error();

  // Reference result.
  auto plain = img::layout(compiled.value().module);
  ASSERT_TRUE(plain.ok());
  x86::Machine ref(plain.value().image);
  auto ref_run = ref.run();
  ASSERT_EQ(ref_run.reason, vm::StopReason::Exited);

  CraftOptions opts;
  auto crafted = craft_gadgets(compiled.value().module, opts);
  ASSERT_TRUE(crafted.ok()) << crafted.error();
  EXPECT_FALSE(crafted.value().crafted.empty()) << "no gadgets crafted at all";

  auto laid = img::layout(crafted.value().module);
  ASSERT_TRUE(laid.ok()) << laid.error();
  x86::Machine m(laid.value().image);
  auto run = m.run();
  ASSERT_EQ(run.reason, vm::StopReason::Exited) << run.fault;
  EXPECT_EQ(run.exit_code, ref_run.exit_code);

  // Every crafted gadget must decode at its reported address as usable.
  for (const auto& c : crafted.value().crafted) {
    ASSERT_NE(c.addr, 0u);
    const auto bytes = laid.value().image.read(c.addr, static_cast<std::uint32_t>(c.bytes.size()));
    EXPECT_EQ(bytes, c.bytes) << rule_name(c.rule);
  }
}

TEST(Rewriter, RespectsFunctionFilterAndCap) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  CraftOptions opts;
  opts.functions = {"scale"};
  opts.max_per_function = 1;
  auto crafted = craft_gadgets(compiled.value().module, opts);
  ASSERT_TRUE(crafted.ok()) << crafted.error();
  EXPECT_LE(crafted.value().crafted.size(), 1u);
  for (const auto& c : crafted.value().crafted) {
    EXPECT_EQ(c.function, "scale");
  }
}

TEST(Rewriter, SpuriousRuleInsertsGuardedGadget) {
  auto compiled = cc::compile("int lonely(int x) { return x; }\nint main() { return lonely(3); }");
  ASSERT_TRUE(compiled.ok());
  CraftOptions opts;
  opts.use_spurious = true;
  auto crafted = craft_gadgets(compiled.value().module, opts);
  ASSERT_TRUE(crafted.ok()) << crafted.error();
  bool spurious = false;
  for (const auto& c : crafted.value().crafted) {
    spurious |= c.rule == Rule::Spurious;
  }
  EXPECT_TRUE(spurious);

  auto laid = img::layout(crafted.value().module);
  ASSERT_TRUE(laid.ok());
  x86::Machine m(laid.value().image);
  EXPECT_TRUE(m.run().exited_ok(3));
}

}  // namespace
}  // namespace plx::rewrite

// ROP compiler tests: compile IR functions to chains against the utility
// gadget set, execute the chains in the VM via a hand-built pivot, and
// compare against the native x86 backend. This is the semantic-equivalence
// core of the whole reproduction.
#include <gtest/gtest.h>

#include "cc/compile.h"
#include "gadget/scanner.h"
#include "image/layout.h"
#include "ropc/ropc.h"
#include "isa/x86/machine.h"
#include "isa/x86/build.h"

namespace plx::ropc {
namespace {

using gadget::Catalog;
using x86::Reg;

// Builds an image containing the compiled program, the utility gadget set, a
// chain frame, scratch space, and a tiny driver that pivots into a chain
// placed in the data section. Returns everything a test needs.
struct ChainHarness {
  img::Image image;
  Catalog catalog;
  Chain chain;
  cc::IrFunc lowered;
  std::string error;

  bool build(const std::string& c_source, const std::string& func,
             const RopcOptions& ropts = {}) {
    auto compiled = cc::compile(c_source);
    if (!compiled) {
      error = compiled.error();
      return false;
    }
    const cc::IrFunc* ir = nullptr;
    for (const auto& f : compiled.value().ir.funcs) {
      if (f.name == func) ir = &f;
    }
    if (!ir) {
      error = "function not found";
      return false;
    }
    lowered = cc::lower_bytes_for_rop(cc::lower_mul_for_rop(*ir));

    img::Module mod = compiled.value().module;
    mod.fragments.push_back(isa::default_arch().utility_gadget_fragment());

    img::Fragment frame;
    frame.name = "__frame";
    frame.section = img::SectionKind::Data;
    frame.align = 4;
    Buffer fb;
    fb.resize(4u * (static_cast<std::size_t>(lowered.num_slots) + 1));
    frame.items.push_back(img::Item::make_data(std::move(fb)));
    mod.fragments.push_back(std::move(frame));

    img::Fragment scratch;
    scratch.name = "__scratch";
    scratch.section = img::SectionKind::Data;
    scratch.align = 16;
    Buffer sb;
    sb.resize(4096);
    scratch.items.push_back(img::Item::make_data(std::move(sb)));
    mod.fragments.push_back(std::move(scratch));

    auto prelim = img::layout(mod);
    if (!prelim) {
      error = prelim.error();
      return false;
    }
    catalog = Catalog(gadget::scan(prelim.value().image));

    RopCompiler rc(catalog, "__frame", "__scratch");
    auto compiled_chain = rc.compile(lowered, ropts);
    if (!compiled_chain) {
      error = compiled_chain.error();
      return false;
    }
    chain = std::move(compiled_chain).take();

    // Reserve the chain area (all words; the resume word is words.back()).
    img::Fragment chain_frag;
    chain_frag.name = "__chain";
    chain_frag.section = img::SectionKind::Data;
    chain_frag.align = 4;
    Buffer cb;
    cb.resize(chain.words.size() * 4);
    chain_frag.items.push_back(img::Item::make_data(std::move(cb)));
    mod.fragments.push_back(std::move(chain_frag));

    auto final_laid = img::layout(mod);
    if (!final_laid) {
      error = final_laid.error();
      return false;
    }
    image = std::move(final_laid).take().image;

    auto words = chain.resolve(image);
    if (!words) {
      error = words.error();
      return false;
    }
    // Write the resolved chain into the image.
    const img::Symbol* chain_sym = image.find_symbol("__chain");
    Buffer wb;
    for (std::uint32_t w : words.value()) wb.put_u32(w);
    img::Section* data = image.find_section(".data");
    std::copy(wb.span().begin(), wb.span().end(),
              data->bytes.data() + (chain_sym->vaddr - data->vaddr));
    return true;
  }

  // Runs the chain with the given arguments; returns the result slot value.
  // Mimics the §V-A stub in the test driver: writes args into the frame,
  // pushes a resume sentinel, patches the resume word, pivots.
  std::optional<std::uint32_t> run(const std::vector<std::uint32_t>& args,
                                   std::uint64_t budget = 5'000'000,
                                   std::string* why = nullptr) {
    x86::Machine m(image);
    const std::uint32_t frame = image.find_symbol("__frame")->vaddr;
    const std::uint32_t chain_addr = image.find_symbol("__chain")->vaddr;
    for (std::size_t i = 0; i < args.size(); ++i) {
      m.write_u32(frame + 4 * static_cast<std::uint32_t>(i), args[i]);
    }
    // Resume slot: a stack word containing the exit sentinel.
    std::uint32_t& esp = m.gpr(Reg::ESP);
    esp -= 4;
    m.write_u32(esp, 0xffff0000u);  // VM exit sentinel
    m.write_u32(chain_addr + static_cast<std::uint32_t>(chain.resume_index) * 4, esp);
    // Pivot.
    esp = chain_addr;
    m.eip = image.entry;  // anywhere; immediately overridden by first step:
    // simulate the stub's `ret` by popping the first gadget address.
    bool ok = true;
    m.eip = m.read_u32(esp, ok);
    esp += 4;
    auto r = m.run(budget);
    if (r.reason != vm::StopReason::Exited) {
      if (why) *why = r.fault;
      return std::nullopt;
    }
    ok = true;
    const std::uint32_t result =
        m.read_u32(frame + 4 * static_cast<std::uint32_t>(lowered.num_slots), ok);
    return result;
  }
};

TEST(Ropc, StraightLineArithmetic) {
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
int f(int a, int b) { return (a + b) ^ (a - b); }
int main() { return 0; }
)", "f")) << h.error;
  EXPECT_EQ(h.run({10, 3}), (10 + 3) ^ (10 - 3));
  EXPECT_EQ(h.run({0xffffffffu, 1}), (0xfffffffeu) ^ 0u);
}

TEST(Ropc, AllBinaryOps) {
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
int f(int a, int b) {
  int r = a + b;
  r = r - (a & b);
  r = r | (a ^ b);
  r = r + (a << 2);
  r = r + (b >> 1);
  return r;
}
int main() { return 0; }
)", "f")) << h.error;
  auto expect = [](std::int32_t a, std::int32_t b) {
    std::int32_t r = a + b;
    r = r - (a & b);
    r = r | (a ^ b);
    r = r + (a << 2);
    r = r + (b >> 1);
    return static_cast<std::uint32_t>(r);
  };
  for (auto [a, b] : {std::pair{5, 9}, {1000, -7}, {-12, -34}, {0, 0}}) {
    EXPECT_EQ(h.run({static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b)}),
              expect(a, b))
        << a << "," << b;
  }
}

TEST(Ropc, UnaryOps) {
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
int f(int a) { return -a + ~a + !a; }
int main() { return 0; }
)", "f")) << h.error;
  for (std::int32_t a : {0, 1, -5, 123456}) {
    const std::uint32_t expect = static_cast<std::uint32_t>(-a + ~a + (a == 0 ? 1 : 0));
    EXPECT_EQ(h.run({static_cast<std::uint32_t>(a)}), expect) << a;
  }
}

TEST(Ropc, Comparisons) {
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
int f(int a, int b) {
  return (a < b) + 2 * (a > b) + 4 * (a == b) + 8 * (a <= b) + 16 * (a >= b)
       + 32 * (a != b);
}
int main() { return 0; }
)", "f")) << h.error;
  auto expect = [](std::int32_t a, std::int32_t b) -> std::uint32_t {
    return static_cast<std::uint32_t>((a < b) + 2 * (a > b) + 4 * (a == b) +
                                      8 * (a <= b) + 16 * (a >= b) + 32 * (a != b));
  };
  for (auto [a, b] : {std::pair{1, 2}, {2, 1}, {3, 3}, {-1, 1}, {1, -1}}) {
    EXPECT_EQ(h.run({static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b)}),
              expect(a, b))
        << a << "," << b;
  }
}

TEST(Ropc, ControlFlowLoop) {
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
int f(int n) {
  int sum = 0;
  int i = 1;
  while (i <= n) {
    sum = sum + i;
    i = i + 1;
  }
  return sum;
}
int main() { return 0; }
)", "f")) << h.error;
  EXPECT_EQ(h.run({10}), 55u);
  EXPECT_EQ(h.run({0}), 0u);
  EXPECT_EQ(h.run({100}), 5050u);
}

TEST(Ropc, IfElseBranches) {
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
int f(int a) {
  if (a > 100) return 1;
  if (a > 10) { return 2; } else { a = a + 1000; }
  return a;
}
int main() { return 0; }
)", "f")) << h.error;
  EXPECT_EQ(h.run({500}), 1u);
  EXPECT_EQ(h.run({50}), 2u);
  EXPECT_EQ(h.run({5}), 1005u);
}

TEST(Ropc, MulViaShiftAddLoop) {
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
int f(int a, int b) { return a * b; }
int main() { return 0; }
)", "f")) << h.error;
  for (auto [a, b] : {std::pair{7, 6}, {-3, 5}, {1000, 1000}, {0, 99}}) {
    EXPECT_EQ(h.run({static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b)}),
              static_cast<std::uint32_t>(a * b))
        << a << "*" << b;
  }
}

TEST(Ropc, GlobalsAndPointers) {
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
int table[4] = {10, 20, 30, 40};
int f(int i) {
  int *p = table;
  return p[i] + table[0];
}
int main() { return 0; }
)", "f")) << h.error;
  EXPECT_EQ(h.run({2}), 40u);
  EXPECT_EQ(h.run({3}), 50u);
}

TEST(Ropc, ByteOpsViaWordRmw) {
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
char buf[16];
int f(int i, int v) {
  buf[i] = v;
  return buf[i] + buf[0];
}
int main() { return 0; }
)", "f")) << h.error;
  EXPECT_EQ(h.run({0, 7}), 14u);
  EXPECT_EQ(h.run({3, 200}), 200u);  // buf[0] still 7? No: fresh VM per run.
}

TEST(Ropc, RejectsUnloweredOps) {
  ChainHarness h;
  EXPECT_FALSE(h.build(R"(
int g(int a) { return a; }
int f(int a) { return g(a) / 2; }
int main() { return 0; }
)", "f"));
  EXPECT_NE(h.error.find("no chain lowering"), std::string::npos);
}

TEST(Ropc, ChainUsesOnlyRets) {
  // Structural property: every gadget address in the chain points at a
  // decodable sequence ending in ret/retf within the image.
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
int f(int a, int b) { return a * b + (a == 0); }
int main() { return 0; }
)", "f")) << h.error;
  for (std::uint32_t addr : h.chain.gadget_addrs) {
    bool found = false;
    for (const auto& g : h.catalog.all()) {
      if (g.addr == addr) found = true;
    }
    EXPECT_TRUE(found) << "gadget addr " << std::hex << addr;
  }
  EXPECT_EQ(h.chain.gadget_slots.size(), h.chain.gadget_addrs.size());
}

TEST(Ropc, TamperingWithUsedGadgetBreaksChain) {
  // The core Parallax property at chain level: flip a byte inside a gadget
  // the chain uses and the chain must no longer compute the right result.
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
int f(int a, int b) { return a + b; }
int main() { return 0; }
)", "f")) << h.error;
  ASSERT_EQ(h.run({40, 2}), 42u);

  // Find the add gadget used and corrupt its first byte in a fresh harness.
  ChainHarness broken;
  ASSERT_TRUE(broken.build(R"(
int f(int a, int b) { return a + b; }
int main() { return 0; }
)", "f"));
  // Identify an AddRegReg slot.
  std::uint32_t victim = 0;
  for (std::size_t i = 0; i < broken.chain.gadget_slots.size(); ++i) {
    if (broken.chain.gadget_slots[i].type == gadget::GType::AddRegReg) {
      victim = broken.chain.gadget_addrs[i];
    }
  }
  ASSERT_NE(victim, 0u);
  img::Section* text = broken.image.find_section(".text");
  text->bytes[victim - text->vaddr] = 0x29;  // add -> sub (01 d0 -> 29 d0)
  auto r = broken.run({40, 2});
  EXPECT_NE(r, 42u) << "tampered chain still computed the right value";
}

TEST(Ropc, VariantsAreEquivalent) {
  // make_variant picks shape-identical gadgets per slot; every variant must
  // compute the same function.
  ChainHarness h;
  ASSERT_TRUE(h.build(R"(
int f(int a, int b) { return (a + b) * 2 - (a ^ 5); }
int main() { return 0; }
)", "f")) << h.error;
  auto base = h.chain.resolve(h.image);
  ASSERT_TRUE(base.ok());

  Rng rng(123);
  int distinct = 0;
  for (int v = 0; v < 8; ++v) {
    auto words = make_variant(h.chain, base.value(), h.catalog, rng);
    if (words != base.value()) ++distinct;
    // Patch the chain area and run.
    const img::Symbol* chain_sym = h.image.find_symbol("__chain");
    img::Section* data = h.image.find_section(".data");
    for (std::size_t i = 0; i < words.size(); ++i) {
      data->bytes.data()[chain_sym->vaddr - data->vaddr + 4 * i + 0] =
          static_cast<std::uint8_t>(words[i]);
      data->bytes.data()[chain_sym->vaddr - data->vaddr + 4 * i + 1] =
          static_cast<std::uint8_t>(words[i] >> 8);
      data->bytes.data()[chain_sym->vaddr - data->vaddr + 4 * i + 2] =
          static_cast<std::uint8_t>(words[i] >> 16);
      data->bytes.data()[chain_sym->vaddr - data->vaddr + 4 * i + 3] =
          static_cast<std::uint8_t>(words[i] >> 24);
    }
    EXPECT_EQ(h.run({7, 9}), static_cast<std::uint32_t>((7 + 9) * 2 - (7 ^ 5)));
  }
  // The utility set plus program gadgets should allow some variation.
  auto counts = slot_candidate_counts(h.chain, h.catalog);
  std::size_t multi = 0;
  for (std::size_t c : counts) {
    if (c > 1) ++multi;
  }
  EXPECT_GT(multi, 0u) << "no slot has alternatives at all";
  (void)distinct;
}

}  // namespace
}  // namespace plx::ropc

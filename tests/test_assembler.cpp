#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "image/layout.h"
#include "isa/x86/decoder.h"
#include "isa/x86/format.h"

namespace plx {
namespace {

using assembler::assemble;

img::Image build(const std::string& src) {
  auto mod = assemble(src);
  EXPECT_TRUE(mod.ok()) << (mod.ok() ? "" : mod.error());
  auto laid = img::layout(mod.value());
  EXPECT_TRUE(laid.ok()) << (laid.ok() ? "" : laid.error());
  return std::move(laid).take().image;
}

std::vector<std::uint8_t> func_bytes(const img::Image& img, const std::string& name) {
  const img::Symbol* sym = img.find_symbol(name);
  EXPECT_TRUE(sym) << name;
  return img.read(sym->vaddr, sym->size);
}

TEST(Assembler, BasicFunction) {
  const auto img = build(R"(
.entry f
f:
    push ebp
    mov ebp, esp
    mov eax, [ebp+8]
    add eax, 2
    leave
    ret
)");
  const auto bytes = func_bytes(img, "f");
  const std::vector<std::uint8_t> expect = {0x55, 0x89, 0xe5, 0x8b, 0x45,
                                            0x08, 0x83, 0xc0, 0x02, 0xc9, 0xc3};
  EXPECT_EQ(bytes, expect);
}

TEST(Assembler, LocalLabelsAndJcc) {
  const auto img = build(R"(
.entry f
f:
    mov ecx, 10
.loop:
    dec ecx
    jnz .loop
    ret
)");
  const auto bytes = func_bytes(img, "f");
  // mov ecx,10 (5) ; dec ecx (1) ; jnz rel32 (6) ; ret
  ASSERT_EQ(bytes.size(), 13u);
  // jnz target must be the dec instruction (rel32 = -7).
  EXPECT_EQ(bytes[6], 0x0f);
  EXPECT_EQ(bytes[7], 0x85);
  EXPECT_EQ(static_cast<std::int8_t>(bytes[8]), -7);
}

TEST(Assembler, CallAcrossFunctions) {
  const auto img = build(R"(
.entry main
main:
    call helper
    ret
helper:
    mov eax, 1
    ret
)");
  const auto bytes = func_bytes(img, "main");
  auto insn = x86::decode(bytes);
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->op, x86::Mnemonic::CALL);
  EXPECT_EQ(insn->rel_target(img.find_symbol("main")->vaddr),
            img.find_symbol("helper")->vaddr);
}

TEST(Assembler, DataDirectives) {
  const auto img = build(R"(
.entry f
f:
    ret
.data
table:
    dd 1, 2, f
msg:
    db "hi", 0
buf:
    resb 8
)");
  const img::Symbol* table = img.find_symbol("table");
  ASSERT_TRUE(table);
  const auto words = img.read(table->vaddr, 12);
  EXPECT_EQ(words[0], 1);
  EXPECT_EQ(words[4], 2);
  const std::uint32_t fptr = static_cast<std::uint32_t>(words[8]) | (words[9] << 8) |
                             (words[10] << 16) | (words[11] << 24);
  EXPECT_EQ(fptr, img.find_symbol("f")->vaddr);
  const auto msg = img.read(img.find_symbol("msg")->vaddr, 3);
  EXPECT_EQ(msg[0], 'h');
  EXPECT_EQ(msg[1], 'i');
  EXPECT_EQ(msg[2], 0);
  EXPECT_TRUE(img.find_symbol("buf"));
}

TEST(Assembler, OffsetAndAbsoluteAddressing) {
  const auto img = build(R"(
.entry f
f:
    mov eax, offset counter
    mov ecx, [counter]
    mov [counter], ecx
    ret
.data
counter:
    dd 7
)");
  const auto bytes = func_bytes(img, "f");
  const std::uint32_t counter = img.find_symbol("counter")->vaddr;
  // mov eax, imm32
  EXPECT_EQ(bytes[0], 0xb8);
  const std::uint32_t imm = static_cast<std::uint32_t>(bytes[1]) | (bytes[2] << 8) |
                            (bytes[3] << 16) | (bytes[4] << 24);
  EXPECT_EQ(imm, counter);
  // mov ecx, [disp32]
  EXPECT_EQ(bytes[5], 0x8b);
  EXPECT_EQ(bytes[6], 0x0d);
}

TEST(Assembler, ByteOperations) {
  const auto img = build(R"(
.entry f
f:
    mov al, 1
    cmp al, 0
    add bl, ch
    sete cl
    movzx eax, cl
    ret
)");
  const auto bytes = func_bytes(img, "f");
  const std::vector<std::uint8_t> expect = {
      0xb0, 0x01,        // mov al, 1
      0x3c, 0x00,        // cmp al, 0
      0x00, 0xeb,        // add bl, ch
      0x0f, 0x94, 0xc1,  // sete cl
      0x0f, 0xb6, 0xc1,  // movzx eax, cl
      0xc3};
  EXPECT_EQ(bytes, expect);
}

TEST(Assembler, SizedMemoryOperands) {
  const auto img = build(R"(
.entry f
f:
    mov byte [eax], 5
    mov dword [eax], 5
    inc byte [ecx]
    ret
)");
  const auto bytes = func_bytes(img, "f");
  EXPECT_EQ(bytes[0], 0xc6);  // mov r/m8, imm8
  EXPECT_EQ(bytes[3], 0xc7);  // mov r/m32, imm32
  EXPECT_EQ(bytes[9], 0xfe);  // inc r/m8
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto img = build(R"(
; leading comment
.entry f

f:      # trailing comment style 2
    ret ; done
)");
  EXPECT_EQ(func_bytes(img, "f"), (std::vector<std::uint8_t>{0xc3}));
}

TEST(Assembler, ScaledIndexSyntax) {
  const auto img = build(R"(
.entry f
f:
    mov eax, [esi+ecx*4+8]
    lea edx, [eax+eax*2]
    ret
)");
  const auto bytes = func_bytes(img, "f");
  auto i1 = x86::decode(bytes);
  ASSERT_TRUE(i1);
  EXPECT_EQ(i1->ops[1].mem.scale, 4);
  EXPECT_EQ(i1->ops[1].mem.disp, 8);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  auto r = assemble("f:\n    bogus eax, 1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().str().find("line 2"), std::string::npos);

  r = assemble("f:\n    mov eax\n    mov eax, [unclosed\n");
  ASSERT_FALSE(r.ok());
}

TEST(Assembler, JccRequiresLabel) {
  auto r = assemble("f:\n    jne 5\n");
  EXPECT_FALSE(r.ok());
}

TEST(Assembler, SyscallConvention) {
  const auto img = build(R"(
.entry _start
_start:
    mov eax, 1
    mov ebx, 0
    int 0x80
)");
  const auto bytes = func_bytes(img, "_start");
  EXPECT_EQ(bytes[10], 0xcd);
  EXPECT_EQ(bytes[11], 0x80);
}

}  // namespace
}  // namespace plx

// End-to-end Parallax tests: protect whole programs, run them, tamper with
// them, and check the implicit-verification property for every hardening
// mode the paper evaluates.
#include <gtest/gtest.h>

#include "cc/compile.h"
#include "image/layout.h"
#include "parallax/protector.h"
#include "isa/x86/machine.h"

namespace plx::parallax {
namespace {

// A small program with a verification-friendly helper (`mix`): called from
// several places, arithmetic-rich, no calls/div.
const char* kProgram = R"(
int mix(int a, int b) {
  int r = (a + b) ^ (a << 3);
  r = r - (b >> 2);
  r = r | 1;
  if (r < 0) r = -r;
  return r;
}

int stage1(int x) { return mix(x, 17); }
int stage2(int x) { return mix(x, 99) + mix(x, 3); }

int main() {
  int acc = 0;
  for (int i = 0; i < 20; i++) {
    acc = acc + stage1(i) + stage2(acc & 1023);
    acc = acc & 0xffffff;
  }
  return acc & 0xff;
}
)";

std::int32_t reference_exit() {
  static std::int32_t cached = -1;
  if (cached >= 0) return cached;
  auto compiled = cc::compile(kProgram);
  EXPECT_TRUE(compiled.ok());
  auto plain = layout_plain(compiled.value());
  EXPECT_TRUE(plain.ok());
  x86::Machine m(plain.value());
  auto r = m.run();
  EXPECT_EQ(r.reason, vm::StopReason::Exited);
  cached = r.exit_code;
  return cached;
}

Result<Protected> protect_with(Hardening mode, int variants = 4) {
  auto compiled = cc::compile(kProgram);
  EXPECT_TRUE(compiled.ok()) << compiled.error();
  ProtectOptions opts;
  opts.verify_functions = {"mix"};
  opts.hardening = mode;
  opts.variants = variants;
  Protector p;
  return p.protect(compiled.value(), opts);
}

class AllModes : public ::testing::TestWithParam<Hardening> {};

INSTANTIATE_TEST_SUITE_P(Parallax, AllModes,
                         ::testing::Values(Hardening::Cleartext, Hardening::Xor,
                                           Hardening::Rc4, Hardening::Probabilistic),
                         [](const auto& info) {
                           return std::string(verify::hardening_name(info.param));
                         });

TEST_P(AllModes, ProtectedProgramComputesSameResult) {
  auto prot = protect_with(GetParam());
  ASSERT_TRUE(prot.ok()) << prot.error();
  x86::Machine m(prot.value().image);
  auto r = m.run(200'000'000);
  ASSERT_EQ(r.reason, vm::StopReason::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, reference_exit());
}

TEST_P(AllModes, TamperingWithUsedGadgetIsDetected) {
  auto prot = protect_with(GetParam());
  ASSERT_TRUE(prot.ok()) << prot.error();
  ASSERT_FALSE(prot.value().used_gadget_addrs.empty());
  const auto& chain = prot.value().chains.at("mix");

  // Corrupt one byte of used gadgets (static patch: both views). Slots are
  // graded: flips of *computational* gadgets must essentially always break
  // the program; flips of transparent verification NOPs may degrade into
  // other harmless gadgets (the §VIII-C escape hatch), so they only need a
  // majority detection rate.
  int comp_detected = 0, comp_total = 0;
  int trans_detected = 0, trans_total = 0;
  for (std::size_t i = 0; i < chain.gadget_slots.size(); i += 3) {
    const std::uint32_t victim = chain.gadget_addrs[i];
    const bool transparent =
        chain.gadget_slots[i].type == gadget::GType::Transparent;
    x86::Machine m(prot.value().image);
    bool ok = true;
    const std::uint8_t orig = m.read_u8(victim, ok);
    ASSERT_TRUE(ok);
    m.tamper(victim, orig ^ 0x30);
    auto r = m.run(200'000'000);
    const bool wrong =
        r.reason != vm::StopReason::Exited || r.exit_code != reference_exit();
    (transparent ? trans_total : comp_total) += 1;
    (transparent ? trans_detected : comp_detected) += wrong ? 1 : 0;
  }
  ASSERT_GT(comp_total, 0);
  EXPECT_GE(comp_detected * 10, comp_total * 9)
      << comp_detected << "/" << comp_total << " computational flips detected";
  if (trans_total > 0) {
    EXPECT_GE(trans_detected * 2, trans_total)
        << trans_detected << "/" << trans_total << " transparent flips detected";
  }
}

TEST(Parallax, ProtectedImageStillExecutesChains) {
  auto prot = protect_with(Hardening::Cleartext);
  ASSERT_TRUE(prot.ok()) << prot.error();
  // Trace execution: at least one chain gadget must actually run.
  x86::Machine m(prot.value().image);
  std::set<std::uint32_t> used(prot.value().used_gadget_addrs.begin(),
                               prot.value().used_gadget_addrs.end());
  std::size_t gadget_hits = 0;
  m.pre_insn_hook = [&](std::uint32_t eip) {
    if (used.contains(eip)) ++gadget_hits;
  };
  auto r = m.run(200'000'000);
  ASSERT_EQ(r.reason, vm::StopReason::Exited);
  EXPECT_GT(gadget_hits, 100u) << "verification chain never executed?";
}

TEST(Parallax, AutoSelectionPicksCompilableFunction) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  auto plain = layout_plain(compiled.value());
  ASSERT_TRUE(plain.ok());
  auto profile = analysis::profile_run(plain.value());

  ProtectOptions opts;
  opts.profile = &profile;
  // The test program is tiny, so `mix` dominates runtime; in the paper's
  // corpus the 2% default matters, here we only test the plumbing.
  opts.max_time_fraction = 1.0;
  Protector p;
  auto prot = p.protect(compiled.value(), opts);
  ASSERT_TRUE(prot.ok()) << prot.error();
  ASSERT_EQ(prot.value().chain_functions.size(), 1u);
  // `mix` is the only multi-caller leaf with high op diversity.
  EXPECT_EQ(prot.value().chain_functions[0], "mix");

  x86::Machine m(prot.value().image);
  auto r = m.run(200'000'000);
  ASSERT_EQ(r.reason, vm::StopReason::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, reference_exit());
}

TEST(Parallax, ProbabilisticChainsVaryAcrossRuns) {
  auto prot = protect_with(Hardening::Probabilistic, 4);
  ASSERT_TRUE(prot.ok()) << prot.error();
  // Run twice with different VM rand seeds; record the materialised chain
  // bytes after the first stub invocation.
  const img::Symbol* exec_sym = prot.value().image.find_symbol("__plx_chain_mix");
  ASSERT_TRUE(exec_sym);

  auto snapshot = [&](std::uint64_t seed) {
    x86::Machine m(prot.value().image);
    m.rng = Rng(seed);
    std::vector<std::uint8_t> snap;
    bool taken = false;
    // Snapshot at the first time a used gadget executes (chain active).
    std::set<std::uint32_t> used(prot.value().used_gadget_addrs.begin(),
                                 prot.value().used_gadget_addrs.end());
    m.pre_insn_hook = [&](std::uint32_t eip) {
      if (!taken && used.contains(eip)) {
        taken = true;
        for (std::uint32_t i = 0; i < exec_sym->size; ++i) {
          bool ok = true;
          snap.push_back(m.read_u8(exec_sym->vaddr + i, ok));
        }
      }
    };
    auto r = m.run(200'000'000);
    EXPECT_EQ(r.reason, vm::StopReason::Exited) << r.fault;
    EXPECT_EQ(r.exit_code, reference_exit());
    return snap;
  };

  const auto s1 = snapshot(1);
  const auto s2 = snapshot(2);
  ASSERT_FALSE(s1.empty());
  // Different rand sequences should produce at least one differing word if
  // any slot has gadget alternatives.
  EXPECT_NE(s1, s2) << "probabilistic generation produced identical chains";
}

TEST(Parallax, EncryptedChainsAreNotStoredInPlaintext) {
  for (Hardening mode : {Hardening::Xor, Hardening::Rc4}) {
    auto prot = protect_with(mode);
    ASSERT_TRUE(prot.ok()) << prot.error();
    const img::Symbol* src = prot.value().image.find_symbol("__plx_src_mix");
    ASSERT_TRUE(src);
    const auto& chain = prot.value().chains.at("mix");
    auto resolved = chain.resolve(prot.value().image);
    ASSERT_TRUE(resolved.ok());
    const auto stored = prot.value().image.read(src->vaddr, 4);
    const std::uint32_t first_plain = resolved.value()[0];
    const std::uint32_t first_stored = static_cast<std::uint32_t>(stored[0]) |
                                       (stored[1] << 8) | (stored[2] << 16) |
                                       (stored[3] << 24);
    EXPECT_NE(first_plain, first_stored) << verify::hardening_name(mode);
  }
}

TEST(Parallax, OverlappingGadgetsArePreferredAndWoven) {
  auto prot = protect_with(Hardening::Cleartext);
  ASSERT_TRUE(prot.ok()) << prot.error();
  EXPECT_GT(prot.value().gadgets_total, 50u);
  // The program text plus compiler-shaped code yields overlapping gadgets;
  // at least some must be woven into / preferred by the chain.
  EXPECT_GT(prot.value().gadgets_overlapping, 0u);
  EXPECT_GT(prot.value().used_gadgets_overlapping, 0u);
}

TEST(Parallax, CraftingPipelinePreservesSemanticsAndAddsOverlap) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());

  ProtectOptions base;
  base.verify_functions = {"mix"};
  Protector p;
  auto plainer = p.protect(compiled.value(), base);
  ASSERT_TRUE(plainer.ok()) << plainer.error();

  ProtectOptions crafted = base;
  crafted.craft_gadgets = true;
  auto prot = p.protect(compiled.value(), crafted);
  ASSERT_TRUE(prot.ok()) << prot.error();

  x86::Machine m(prot.value().image);
  auto r = m.run(200'000'000);
  ASSERT_EQ(r.reason, vm::StopReason::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, reference_exit());

  // Crafting should produce at least as many overlapping gadgets as before
  // (typically more: fresh imm/jump gadgets in stage1/stage2/main).
  EXPECT_GE(prot.value().gadgets_overlapping, plainer.value().gadgets_overlapping);

  // Tamper sensitivity is preserved.
  const std::uint32_t victim = prot.value().used_gadget_addrs[0];
  x86::Machine t(prot.value().image);
  bool ok = true;
  const std::uint8_t orig = t.read_u8(victim, ok);
  t.tamper(victim, orig ^ 0x28);
  auto rt = t.run(50'000'000);
  EXPECT_TRUE(rt.reason != vm::StopReason::Exited || rt.exit_code != reference_exit());
}

TEST(Parallax, MissingVerificationFunctionFails) {
  auto compiled = cc::compile(kProgram);
  ASSERT_TRUE(compiled.ok());
  ProtectOptions opts;
  opts.verify_functions = {"nonexistent"};
  Protector p;
  auto r = p.protect(compiled.value(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().str().find("nonexistent"), std::string::npos);
}

TEST(Parallax, UncompilableVerificationFunctionFails) {
  auto compiled = cc::compile(R"(
int f(int a) { return a / 3; }
int main() { return f(9); }
)");
  ASSERT_TRUE(compiled.ok());
  ProtectOptions opts;
  opts.verify_functions = {"f"};
  Protector p;
  auto r = p.protect(compiled.value(), opts);
  ASSERT_FALSE(r.ok());
}

}  // namespace
}  // namespace plx::parallax

# Empty compiler generated dependencies file for bench_protectability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_protectability.dir/bench_protectability.cpp.o"
  "CMakeFiles/bench_protectability.dir/bench_protectability.cpp.o.d"
  "bench_protectability"
  "bench_protectability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protectability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

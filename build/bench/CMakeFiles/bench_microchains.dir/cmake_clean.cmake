file(REMOVE_RECURSE
  "CMakeFiles/bench_microchains.dir/bench_microchains.cpp.o"
  "CMakeFiles/bench_microchains.dir/bench_microchains.cpp.o.d"
  "bench_microchains"
  "bench_microchains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_microchains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

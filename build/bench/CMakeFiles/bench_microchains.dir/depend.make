# Empty dependencies file for bench_microchains.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_slowdown.dir/bench_chain_slowdown.cpp.o"
  "CMakeFiles/bench_chain_slowdown.dir/bench_chain_slowdown.cpp.o.d"
  "bench_chain_slowdown"
  "bench_chain_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_chain_slowdown.
# This may be replaced when dependencies are built.

# Empty dependencies file for parallax.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/callgraph.cpp" "src/CMakeFiles/parallax.dir/analysis/callgraph.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/analysis/callgraph.cpp.o.d"
  "/root/repo/src/analysis/profiler.cpp" "src/CMakeFiles/parallax.dir/analysis/profiler.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/analysis/profiler.cpp.o.d"
  "/root/repo/src/analysis/selection.cpp" "src/CMakeFiles/parallax.dir/analysis/selection.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/analysis/selection.cpp.o.d"
  "/root/repo/src/asm/assembler.cpp" "src/CMakeFiles/parallax.dir/asm/assembler.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/asm/assembler.cpp.o.d"
  "/root/repo/src/attack/patcher.cpp" "src/CMakeFiles/parallax.dir/attack/patcher.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/attack/patcher.cpp.o.d"
  "/root/repo/src/attack/wurster.cpp" "src/CMakeFiles/parallax.dir/attack/wurster.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/attack/wurster.cpp.o.d"
  "/root/repo/src/baseline/checksum.cpp" "src/CMakeFiles/parallax.dir/baseline/checksum.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/baseline/checksum.cpp.o.d"
  "/root/repo/src/baseline/oblivious_hash.cpp" "src/CMakeFiles/parallax.dir/baseline/oblivious_hash.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/baseline/oblivious_hash.cpp.o.d"
  "/root/repo/src/cc/backend_x86.cpp" "src/CMakeFiles/parallax.dir/cc/backend_x86.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/cc/backend_x86.cpp.o.d"
  "/root/repo/src/cc/compile.cpp" "src/CMakeFiles/parallax.dir/cc/compile.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/cc/compile.cpp.o.d"
  "/root/repo/src/cc/ir.cpp" "src/CMakeFiles/parallax.dir/cc/ir.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/cc/ir.cpp.o.d"
  "/root/repo/src/cc/irgen.cpp" "src/CMakeFiles/parallax.dir/cc/irgen.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/cc/irgen.cpp.o.d"
  "/root/repo/src/cc/lexer.cpp" "src/CMakeFiles/parallax.dir/cc/lexer.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/cc/lexer.cpp.o.d"
  "/root/repo/src/cc/parser.cpp" "src/CMakeFiles/parallax.dir/cc/parser.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/cc/parser.cpp.o.d"
  "/root/repo/src/crypto/rc4.cpp" "src/CMakeFiles/parallax.dir/crypto/rc4.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/crypto/rc4.cpp.o.d"
  "/root/repo/src/crypto/xorstream.cpp" "src/CMakeFiles/parallax.dir/crypto/xorstream.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/crypto/xorstream.cpp.o.d"
  "/root/repo/src/gadget/catalog.cpp" "src/CMakeFiles/parallax.dir/gadget/catalog.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/gadget/catalog.cpp.o.d"
  "/root/repo/src/gadget/classify.cpp" "src/CMakeFiles/parallax.dir/gadget/classify.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/gadget/classify.cpp.o.d"
  "/root/repo/src/gadget/scanner.cpp" "src/CMakeFiles/parallax.dir/gadget/scanner.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/gadget/scanner.cpp.o.d"
  "/root/repo/src/gf2/gf2.cpp" "src/CMakeFiles/parallax.dir/gf2/gf2.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/gf2/gf2.cpp.o.d"
  "/root/repo/src/image/image.cpp" "src/CMakeFiles/parallax.dir/image/image.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/image/image.cpp.o.d"
  "/root/repo/src/image/layout.cpp" "src/CMakeFiles/parallax.dir/image/layout.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/image/layout.cpp.o.d"
  "/root/repo/src/parallax/protector.cpp" "src/CMakeFiles/parallax.dir/parallax/protector.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/parallax/protector.cpp.o.d"
  "/root/repo/src/rewrite/protectability.cpp" "src/CMakeFiles/parallax.dir/rewrite/protectability.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/rewrite/protectability.cpp.o.d"
  "/root/repo/src/rewrite/rewriter.cpp" "src/CMakeFiles/parallax.dir/rewrite/rewriter.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/rewrite/rewriter.cpp.o.d"
  "/root/repo/src/rewrite/rules.cpp" "src/CMakeFiles/parallax.dir/rewrite/rules.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/rewrite/rules.cpp.o.d"
  "/root/repo/src/ropc/chain.cpp" "src/CMakeFiles/parallax.dir/ropc/chain.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/ropc/chain.cpp.o.d"
  "/root/repo/src/ropc/ropc.cpp" "src/CMakeFiles/parallax.dir/ropc/ropc.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/ropc/ropc.cpp.o.d"
  "/root/repo/src/support/buffer.cpp" "src/CMakeFiles/parallax.dir/support/buffer.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/support/buffer.cpp.o.d"
  "/root/repo/src/support/hexdump.cpp" "src/CMakeFiles/parallax.dir/support/hexdump.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/support/hexdump.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/parallax.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/support/rng.cpp.o.d"
  "/root/repo/src/verify/hardening.cpp" "src/CMakeFiles/parallax.dir/verify/hardening.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/verify/hardening.cpp.o.d"
  "/root/repo/src/verify/microchain.cpp" "src/CMakeFiles/parallax.dir/verify/microchain.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/verify/microchain.cpp.o.d"
  "/root/repo/src/verify/stub.cpp" "src/CMakeFiles/parallax.dir/verify/stub.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/verify/stub.cpp.o.d"
  "/root/repo/src/vm/exec.cpp" "src/CMakeFiles/parallax.dir/vm/exec.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/vm/exec.cpp.o.d"
  "/root/repo/src/vm/machine.cpp" "src/CMakeFiles/parallax.dir/vm/machine.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/vm/machine.cpp.o.d"
  "/root/repo/src/vm/syscalls.cpp" "src/CMakeFiles/parallax.dir/vm/syscalls.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/vm/syscalls.cpp.o.d"
  "/root/repo/src/workloads/corpus.cpp" "src/CMakeFiles/parallax.dir/workloads/corpus.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/workloads/corpus.cpp.o.d"
  "/root/repo/src/x86/decoder.cpp" "src/CMakeFiles/parallax.dir/x86/decoder.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/x86/decoder.cpp.o.d"
  "/root/repo/src/x86/encoder.cpp" "src/CMakeFiles/parallax.dir/x86/encoder.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/x86/encoder.cpp.o.d"
  "/root/repo/src/x86/format.cpp" "src/CMakeFiles/parallax.dir/x86/format.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/x86/format.cpp.o.d"
  "/root/repo/src/x86/insn.cpp" "src/CMakeFiles/parallax.dir/x86/insn.cpp.o" "gcc" "src/CMakeFiles/parallax.dir/x86/insn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

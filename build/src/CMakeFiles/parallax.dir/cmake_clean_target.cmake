file(REMOVE_RECURSE
  "libparallax.a"
)

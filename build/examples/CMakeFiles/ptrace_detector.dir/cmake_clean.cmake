file(REMOVE_RECURSE
  "CMakeFiles/ptrace_detector.dir/ptrace_detector.cpp.o"
  "CMakeFiles/ptrace_detector.dir/ptrace_detector.cpp.o.d"
  "ptrace_detector"
  "ptrace_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptrace_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

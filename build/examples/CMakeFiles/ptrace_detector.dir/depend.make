# Empty dependencies file for ptrace_detector.
# This may be replaced when dependencies are built.

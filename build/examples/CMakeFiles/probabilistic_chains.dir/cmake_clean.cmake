file(REMOVE_RECURSE
  "CMakeFiles/probabilistic_chains.dir/probabilistic_chains.cpp.o"
  "CMakeFiles/probabilistic_chains.dir/probabilistic_chains.cpp.o.d"
  "probabilistic_chains"
  "probabilistic_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probabilistic_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

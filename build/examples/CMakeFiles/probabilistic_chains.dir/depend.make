# Empty dependencies file for probabilistic_chains.
# This may be replaced when dependencies are built.

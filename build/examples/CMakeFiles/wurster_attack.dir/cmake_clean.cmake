file(REMOVE_RECURSE
  "CMakeFiles/wurster_attack.dir/wurster_attack.cpp.o"
  "CMakeFiles/wurster_attack.dir/wurster_attack.cpp.o.d"
  "wurster_attack"
  "wurster_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wurster_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wurster_attack.
# This may be replaced when dependencies are built.

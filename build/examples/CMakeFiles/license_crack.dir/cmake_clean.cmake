file(REMOVE_RECURSE
  "CMakeFiles/license_crack.dir/license_crack.cpp.o"
  "CMakeFiles/license_crack.dir/license_crack.cpp.o.d"
  "license_crack"
  "license_crack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/license_crack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for license_crack.
# This may be replaced when dependencies are built.

# Empty dependencies file for plxtool.
# This may be replaced when dependencies are built.

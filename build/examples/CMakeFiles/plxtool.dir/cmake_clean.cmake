file(REMOVE_RECURSE
  "CMakeFiles/plxtool.dir/plxtool.cpp.o"
  "CMakeFiles/plxtool.dir/plxtool.cpp.o.d"
  "plxtool"
  "plxtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plxtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

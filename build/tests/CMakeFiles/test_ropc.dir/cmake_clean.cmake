file(REMOVE_RECURSE
  "CMakeFiles/test_ropc.dir/test_ropc.cpp.o"
  "CMakeFiles/test_ropc.dir/test_ropc.cpp.o.d"
  "test_ropc"
  "test_ropc.pdb"
  "test_ropc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ropc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

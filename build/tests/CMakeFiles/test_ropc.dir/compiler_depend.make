# Empty compiler generated dependencies file for test_ropc.
# This may be replaced when dependencies are built.

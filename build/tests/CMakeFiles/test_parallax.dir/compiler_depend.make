# Empty compiler generated dependencies file for test_parallax.
# This may be replaced when dependencies are built.

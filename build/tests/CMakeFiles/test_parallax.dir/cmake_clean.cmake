file(REMOVE_RECURSE
  "CMakeFiles/test_parallax.dir/test_parallax.cpp.o"
  "CMakeFiles/test_parallax.dir/test_parallax.cpp.o.d"
  "test_parallax"
  "test_parallax.pdb"
  "test_parallax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_x86_encode.dir/test_x86_encode.cpp.o"
  "CMakeFiles/test_x86_encode.dir/test_x86_encode.cpp.o.d"
  "test_x86_encode"
  "test_x86_encode.pdb"
  "test_x86_encode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x86_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

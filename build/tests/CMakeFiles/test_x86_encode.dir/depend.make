# Empty dependencies file for test_x86_encode.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_x86_roundtrip.
# This may be replaced when dependencies are built.

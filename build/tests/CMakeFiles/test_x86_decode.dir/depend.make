# Empty dependencies file for test_x86_decode.
# This may be replaced when dependencies are built.

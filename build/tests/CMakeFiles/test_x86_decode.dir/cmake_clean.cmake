file(REMOVE_RECURSE
  "CMakeFiles/test_x86_decode.dir/test_x86_decode.cpp.o"
  "CMakeFiles/test_x86_decode.dir/test_x86_decode.cpp.o.d"
  "test_x86_decode"
  "test_x86_decode.pdb"
  "test_x86_decode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x86_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

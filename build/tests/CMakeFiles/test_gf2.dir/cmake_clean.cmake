file(REMOVE_RECURSE
  "CMakeFiles/test_gf2.dir/test_gf2.cpp.o"
  "CMakeFiles/test_gf2.dir/test_gf2.cpp.o.d"
  "test_gf2"
  "test_gf2.pdb"
  "test_gf2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

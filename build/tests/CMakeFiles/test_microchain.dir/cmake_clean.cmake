file(REMOVE_RECURSE
  "CMakeFiles/test_microchain.dir/test_microchain.cpp.o"
  "CMakeFiles/test_microchain.dir/test_microchain.cpp.o.d"
  "test_microchain"
  "test_microchain.pdb"
  "test_microchain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_microchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

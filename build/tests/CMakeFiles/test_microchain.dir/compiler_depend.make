# Empty compiler generated dependencies file for test_microchain.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_x86_decode[1]_include.cmake")
include("/root/repo/build/tests/test_x86_encode[1]_include.cmake")
include("/root/repo/build/tests/test_x86_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/test_image[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_gf2[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_gadget[1]_include.cmake")
include("/root/repo/build/tests/test_cc[1]_include.cmake")
include("/root/repo/build/tests/test_ropc[1]_include.cmake")
include("/root/repo/build/tests/test_parallax[1]_include.cmake")
include("/root/repo/build/tests/test_rewrite[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_microchain[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_format[1]_include.cmake")

// Figure 5a reproduction: function-chain slowdown per hardening strategy.
//
// For each corpus program, the §VII-B-selected verification function is
// translated to a chain; we report how many times slower one call to the
// chain is than one call to the native function, derived from whole-program
// cycle counts:
//
//   per_call_chain = per_call_native + (cycles_protected - cycles_plain) / calls
//
// Paper reference (Figure 5a): cleartext 3.7x (gcc) to 46.7x (wget); RC4 is
// the worst everywhere (7.6x-64.3x, and pathological for lame, whose chain
// runs in ~4us so the RC4 keyschedule dominates); probabilistic and xor sit
// between cleartext and RC4.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace plx;
using parallax::Hardening;

constexpr Hardening kModes[] = {Hardening::Cleartext, Hardening::Xor,
                                Hardening::Probabilistic, Hardening::Rc4};

void print_table() {
  std::printf("=== Figure 5a: verification function (chain) slowdown ===\n");
  std::printf("%-10s %-12s %8s %10s | %10s %10s %10s %10s\n", "program", "function",
              "calls", "native/cl", "cleartext", "xor", "prob", "rc4");
  for (const auto& w : bench::bench_corpus()) {
    auto bw = bench::build_workload(w);
    const std::uint64_t calls = bw.profile.calls(w.verify_function);
    const auto& vf_stats = bw.profile.stats.at(w.verify_function);
    const double native_per_call =
        static_cast<double>(vf_stats.cycles) / static_cast<double>(calls);
    const double plain_cycles = static_cast<double>(bw.profile.run.cycles);

    std::printf("%-10s %-12s %8llu %10.1f |", w.paper_name.c_str(),
                w.verify_function.c_str(), static_cast<unsigned long long>(calls),
                native_per_call);
    for (Hardening mode : kModes) {
      auto prot = bench::protect_workload(bw, mode);
      auto run = bench::run_image(prot.image);
      const double extra = static_cast<double>(run.cycles) - plain_cycles;
      const double chain_per_call = native_per_call + extra / static_cast<double>(calls);
      std::printf(" %9.1fx", chain_per_call / native_per_call);
      bench::session().figure(
          "chain_slowdown_x/" + w.name + "/" + verify::hardening_name(mode),
          chain_per_call / native_per_call);
    }
    std::printf("\n");
  }
  std::printf("(paper: cleartext 3.7-46.7x; rc4 worst, 7.6-64.3x, pathological "
              "for lame; xor and probabilistic in between)\n\n");
}

void BM_ProtectedRun(benchmark::State& state) {
  const auto& w = workloads::corpus()[static_cast<std::size_t>(state.range(0))];
  auto bw = bench::build_workload(w);
  auto prot = bench::protect_workload(bw, Hardening::Cleartext);
  for (auto _ : state) {
    x86::Machine m(prot.image);
    auto r = m.run(2'000'000'000ull);
    benchmark::DoNotOptimize(r.exit_code);
  }
  state.SetLabel(w.name + "/cleartext");
}
BENCHMARK(BM_ProtectedRun)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  plx::bench::init("chain_slowdown", argc, argv);
  print_table();
  plx::bench::write_json();
  if (!plx::bench::tables_only()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}

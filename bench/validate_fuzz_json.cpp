// Validates a FUZZ_<name>.json report emitted by the tamper-fuzzing harness
// (src/fuzz/report.cpp). Used by the fuzz_smoke ctest targets: exits 0 iff
// every file given on the command line parses as JSON and carries the
// required keys with the right shapes:
//
//   tool/name/fuzz/schema_version   the shared schema-v2 envelope
//   golden                          non-empty object, all values numbers
//   outcomes                        non-empty object, all values numbers
//   escapes                         array
//
// With --require-no-escapes, a non-empty "escapes" array is itself a
// failure — this is how CI enforces the zero-escape guarantee: the report
// names the exact surviving mutants in the error output.
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "support/file_io.h"
#include "support/minijson.h"
#include "telemetry/schema.h"

namespace {

using plx::minijson::Array;
using plx::minijson::Object;
using plx::minijson::Parser;
using plx::minijson::Value;
using plx::minijson::check_envelope;
using plx::minijson::check_numeric_object;

bool validate(const std::string& path, bool require_no_escapes,
              std::string& why) {
  auto text = plx::support::read_text_file(path);
  if (!text) {
    why = text.error().str();
    return false;
  }

  Parser parser(text.value());
  Value root;
  if (!parser.parse(root)) {
    why = "parse error: " + parser.error();
    return false;
  }
  const Object* obj = root.object();
  if (!obj) {
    why = "top level is not an object";
    return false;
  }

  if (!check_envelope(*obj, "fuzz", plx::telemetry::kSchemaVersion, why)) {
    return false;
  }
  if (!check_numeric_object(*obj, "golden", /*require_nonempty=*/true, why)) {
    return false;
  }
  if (!check_numeric_object(*obj, "outcomes", /*require_nonempty=*/true, why)) {
    return false;
  }
  auto esc = obj->find("escapes");
  if (esc == obj->end()) {
    why = "missing key \"escapes\"";
    return false;
  }
  const Array* escapes = esc->second.array();
  if (!escapes) {
    why = "\"escapes\" is not an array";
    return false;
  }
  if (require_no_escapes && !escapes->empty()) {
    std::ostringstream os;
    os << escapes->size() << " escape(s):";
    for (const Value& e : *escapes) {
      const Object* eo = e.object();
      if (!eo) continue;
      os << " [";
      auto addr = eo->find("addr");
      if (addr != eo->end() && addr->second.is_number()) {
        char hex[16];
        std::snprintf(hex, sizeof hex, "0x%08x",
                      static_cast<unsigned>(addr->second.number()));
        os << "addr=" << hex;
      }
      for (const char* key : {"origin", "outcome", "detail"}) {
        auto it = eo->find(key);
        if (it != eo->end() && it->second.is_string()) {
          os << " " << key << "=" << std::get<std::string>(it->second.v);
        }
      }
      os << "]";
    }
    why = os.str();
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool require_no_escapes = false;
  int bad = 0;
  int files = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-no-escapes") == 0) {
      require_no_escapes = true;
      continue;
    }
    ++files;
    std::string why;
    if (validate(argv[i], require_no_escapes, why)) {
      std::printf("%s: ok\n", argv[i]);
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i], why.c_str());
      ++bad;
    }
  }
  if (files == 0) {
    std::fprintf(stderr, "usage: %s [--require-no-escapes] FUZZ_*.json...\n",
                 argv[0]);
    return 2;
  }
  return bad ? 1 : 0;
}

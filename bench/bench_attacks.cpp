// §VI / §IX quantified: attack-resistance matrix across defenses.
//
// The paper argues qualitatively; this harness makes the comparison
// executable on one representative program:
//
//   defense     \ attack | static patch | icache-only patch (Wurster [36])
//   none                 | succeeds     | succeeds
//   checksumming [11]    | detected     | SUCCEEDS  <- the motivating gap
//   oblivious hash [13]  | detected*    | detected*   (*deterministic code only)
//   parallax             | detected     | detected
//
// plus the tamper-detection rate over every gadget byte a chain uses.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "attack/patcher.h"
#include "attack/wurster.h"
#include "baseline/checksum.h"
#include "baseline/oblivious_hash.h"
#include "bench_common.h"

namespace {

using namespace plx;

const char* kTarget = R"(
int mix(int a, int b) {
  int r = (a << 3) ^ b;
  r = r + (a & b);
  if (r < 0) r = -r;
  return r;
}
int helper(int x) { return mix(x, 77) + mix(x, 5); }
int main() {
  int acc = 0;
  for (int i = 0; i < 40; i++) {
    acc = (acc + helper(i)) & 0xffffff;
  }
  return acc & 0xff;
}
)";

// The attacker's goal: the program keeps running, with the behaviour the
// patch was meant to produce (the output of the patched-but-undefended
// binary). Anything else — a tamper response, a crash, or output that
// matches neither the goal nor the pristine program — counts as detection.
const char* verdict(const vm::RunResult& r, std::int32_t attacker_goal,
                    int response_code) {
  if (r.reason != vm::StopReason::Exited) return "detected(malfunction)";
  if (r.exit_code == response_code) return "detected(response)";
  if (r.exit_code == attacker_goal) return "ATTACK SUCCEEDED";
  return "detected(misbehaves)";
}

void print_matrix() {
  auto compiled = cc::compile(kTarget);
  if (!compiled) {
    std::fprintf(stderr, "compile: %s\n", compiled.error().c_str());
    std::exit(1);
  }
  auto plain = parallax::layout_plain(compiled.value());
  const std::int32_t ref = bench::run_image(plain.value()).exit_code;

  // The attack: rewrite the first bytes of `helper` so it returns a
  // constant — a classic behaviour-changing patch.
  const std::vector<std::uint8_t> patch = {0xb8, 0x07, 0x00, 0x00, 0x00, 0xc3};

  // What success looks like for the attacker: the undefended binary's
  // behaviour under the same patch.
  std::int32_t attacker_goal;
  {
    img::Image patched = plain.value();
    attack::patch_bytes(patched, patched.find_symbol("helper")->vaddr, patch);
    x86::Machine m(patched);
    attacker_goal = m.run(2'000'000'000ull).exit_code;
  }
  std::printf("pristine output %d, attacker-goal output %d\n", ref, attacker_goal);

  std::printf("=== Attack-resistance matrix (target: patch helper()) ===\n");
  std::printf("%-22s %-26s %-26s\n", "defense", "static patch", "icache-only patch");

  auto attack_both = [&](const std::string& name, const img::Image& image,
                         int response_code) {
    const img::Symbol* victim = image.find_symbol("helper");
    img::Image statically = image;
    attack::patch_bytes(statically, victim->vaddr, patch);
    x86::Machine m1(statically);
    const auto r1 = m1.run(2'000'000'000ull);

    const auto r2 = attack::run_with_icache_patch(image, victim->vaddr, patch,
                                                  2'000'000'000ull);
    std::printf("%-22s %-26s %-26s\n", name.c_str(),
                verdict(r1, attacker_goal, response_code),
                verdict(r2, attacker_goal, response_code));
  };

  attack_both("none", plain.value(), -1);

  auto cs = baseline::protect_with_checksums(compiled.value());
  if (cs) {
    attack_both("checksumming", cs.value().image,
                baseline::ChecksumProtected::kTamperExit);
  }

  auto oh = baseline::protect_with_oh(compiled.value());
  if (oh) {
    attack_both("oblivious-hash", oh.value().image, baseline::OhProtected::kTamperExit);
  }

  // Parallax protects the bytes its chains execute as gadgets. The
  // helper-replacement patch above also removes the *calls* to the
  // verification function, silencing it entirely — the §VI "never run the
  // verification code" bypass, which no self-contained scheme survives when
  // the verification function is skippable. The honest parallax row attacks
  // a byte the scheme actually claims to protect: a chain-gadget byte.
  parallax::ProtectOptions opts;
  opts.verify_functions = {"mix"};
  parallax::Protector p;
  auto plx = p.protect(compiled.value(), opts);
  if (plx) {
    const std::uint32_t victim = plx.value().used_gadget_addrs[0];
    const std::int32_t plx_ref = [&] {
      x86::Machine m(plx.value().image);
      return m.run(2'000'000'000ull).exit_code;
    }();
    auto verdict1 = [&](const vm::RunResult& r) {
      if (r.reason != vm::StopReason::Exited) return "detected(malfunction)";
      return r.exit_code == plx_ref ? "tamper had no effect" : "detected(misbehaves)";
    };
    img::Image statically = plx.value().image;
    const std::uint8_t orig = statically.read(victim, 1)[0];
    attack::patch_bytes(statically, victim,
                        std::vector<std::uint8_t>{static_cast<std::uint8_t>(orig ^ 0x28)});
    x86::Machine m1(statically);
    const auto r1 = m1.run(2'000'000'000ull);
    x86::Machine m2(plx.value().image);
    m2.tamper_icache(victim, static_cast<std::uint8_t>(orig ^ 0x28));
    const auto r2 = m2.run(2'000'000'000ull);
    std::printf("%-22s %-26s %-26s (attacking a gadget byte)\n", "parallax",
                verdict1(r1), verdict1(r2));
  }

  // Non-determinism: OH cannot even be applied to syscall-dependent code.
  {
    auto nd = cc::compile(R"(
int probe() {
  if (__syscall(26, 0, 0, 0) < 0) return 1;
  return 0;
}
int main() { return probe(); }
)");
    baseline::OhOptions oh_opts;
    oh_opts.functions = {"probe"};
    auto r = baseline::protect_with_oh(nd.value(), oh_opts);
    std::printf("%-22s %s\n", "oh on ptrace-detector",
                r.ok() ? "UNEXPECTEDLY APPLICABLE" : "rejected (non-deterministic)");
    parallax::ProtectOptions po;
    po.verify_functions = {"probe"};
    auto r2 = p.protect(nd.value(), po);
    std::printf("%-22s %s\n", "parallax on same code",
                r2.ok() ? "protected fine" : r2.error().c_str());
  }

  // Tamper-detection rate across every used gadget byte.
  if (plx) {
    int broke = 0, total = 0;
    std::set<std::uint32_t> seen;
    for (std::uint32_t addr : plx.value().used_gadget_addrs) {
      if (!seen.insert(addr).second) continue;
      img::Image t = plx.value().image;
      const std::uint8_t orig = t.read(addr, 1)[0];
      attack::patch_bytes(t, addr, std::vector<std::uint8_t>{static_cast<std::uint8_t>(orig ^ 0x24)});
      x86::Machine m(t);
      auto r = m.run(2'000'000'000ull);
      ++total;
      if (r.reason != vm::StopReason::Exited || r.exit_code != ref) ++broke;
    }
    std::printf("\nparallax gadget-byte flip detection: %d/%d (%.0f%%)\n", broke,
                total, 100.0 * broke / total);
    bench::session().figure("gadget_flip_detection_percent",
                            total ? 100.0 * broke / total : 0.0);
    bench::session().figure("gadget_flips_detected", broke);
    bench::session().figure("gadget_flips_total", total);
    std::printf("(undetected flips produced semantically equivalent gadgets — "
                "the attacker escape hatch of §VIII-C)\n\n");
  }
}

void BM_StaticPatchAttack(benchmark::State& state) {
  auto compiled = cc::compile(kTarget);
  parallax::ProtectOptions opts;
  opts.verify_functions = {"mix"};
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  for (auto _ : state) {
    img::Image t = prot.value().image;
    attack::nop_out(t, prot.value().used_gadget_addrs[0], 1);
    x86::Machine m(t);
    benchmark::DoNotOptimize(m.run(2'000'000'000ull).reason);
  }
}
BENCHMARK(BM_StaticPatchAttack)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  plx::bench::init("attacks", argc, argv);
  print_matrix();
  plx::bench::write_json();
  if (!plx::bench::tables_only()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}

// §V-C ablation: µ-chains (instruction-level verification) vs function
// chains. The paper reports that µ-chain overhead exceeds function chains by
// about 2x on average, because every µ-chain carries its own
// prologue/epilogue — one of the three reasons the paper rejects them.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "verify/microchain.h"

namespace {

using namespace plx;

void print_table() {
  std::printf("=== Section V-C: u-chains vs function chains ===\n");
  std::printf("%-10s %-12s %12s %14s %14s %8s\n", "program", "function",
              "plain-cycles", "fchain-extra", "uchain-extra", "ratio");
  double ratio_sum = 0;
  int n = 0;
  for (const auto& w : bench::bench_corpus()) {
    auto bw = bench::build_workload(w);
    const double plain = static_cast<double>(bw.profile.run.cycles);

    parallax::ProtectOptions fopts;
    fopts.verify_functions = {w.verify_function};
    fopts.weave_overlapping = false;  // compare like with like
    parallax::Protector p;
    auto fchain = p.protect(bw.compiled, fopts);
    if (!fchain) {
      std::fprintf(stderr, "%s: %s\n", w.name.c_str(), fchain.error().c_str());
      continue;
    }
    auto uchain = verify::protect_microchains(bw.compiled, w.verify_function);
    if (!uchain) {
      std::fprintf(stderr, "%s: %s\n", w.name.c_str(), uchain.error().c_str());
      continue;
    }
    const auto frun = bench::run_image(fchain.value().image);
    const auto urun = bench::run_image(uchain.value().image);
    const double fextra = static_cast<double>(frun.cycles) - plain;
    const double uextra = static_cast<double>(urun.cycles) - plain;
    const double ratio = uextra / fextra;
    std::printf("%-10s %-12s %12.0f %14.0f %14.0f %7.2fx\n", w.paper_name.c_str(),
                w.verify_function.c_str(), plain, fextra, uextra, ratio);
    bench::session().figure("uchain_over_fchain_x/" + w.name, ratio);
    ratio_sum += ratio;
    ++n;
  }
  if (n) {
    std::printf("%-10s %-12s %12s %14s %14s %7.2fx\n", "average", "", "", "", "",
                ratio_sum / n);
    bench::session().figure("uchain_over_fchain_x/average", ratio_sum / n);
  }
  std::printf("(paper: u-chain overhead exceeds function chains by ~2x on "
              "average)\n\n");
}

void BM_MicrochainRun(benchmark::State& state) {
  const auto& w = workloads::corpus()[static_cast<std::size_t>(state.range(0))];
  auto bw = bench::build_workload(w);
  auto prot = verify::protect_microchains(bw.compiled, w.verify_function);
  if (!prot) {
    state.SkipWithError(prot.error().c_str());
    return;
  }
  for (auto _ : state) {
    x86::Machine m(prot.value().image);
    benchmark::DoNotOptimize(m.run(2'000'000'000ull).exit_code);
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_MicrochainRun)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  plx::bench::init("microchains", argc, argv);
  print_table();
  plx::bench::write_json();
  if (!plx::bench::tables_only()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}

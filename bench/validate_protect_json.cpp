// Validates a PROTECT_<name>.json report emitted by the batch protection
// driver (src/parallax/batch.cpp, `plxtool protect-all`). Used by the
// protect_smoke ctest targets: exits 0 iff every file given on the command
// line parses as JSON and carries the required keys with the right shapes:
//
//   tool/name/protect/schema_version   the shared schema-v2 envelope
//   ok               bool
//   error            object with string code/stage/message (required iff
//                    ok is false)
//   image_bytes      number
//   image_fnv64      16-digit lowercase hex string
//   stages           non-empty array; each element an object with a string
//                    "stage", numeric "millis"/"input_bytes"/"output_bytes",
//                    an all-numeric "counters" object and a "warnings" array
//   totals           non-empty object, all values numbers
//
// With --require-ok, a report whose "ok" is false is itself a failure —
// this is how CI enforces that every corpus workload protects cleanly: the
// report carries the structured diagnostic naming the failing stage.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <variant>

#include "support/file_io.h"
#include "support/minijson.h"
#include "telemetry/schema.h"

namespace {

using plx::minijson::Array;
using plx::minijson::Object;
using plx::minijson::Parser;
using plx::minijson::Value;
using plx::minijson::check_envelope;
using plx::minijson::check_numeric_object;

bool is_bool(const Value& v) { return std::holds_alternative<bool>(v.v); }

bool check_stage(const Object& stage, std::size_t index, std::string& why) {
  const std::string at = "stages[" + std::to_string(index) + "]";
  auto name = stage.find("stage");
  if (name == stage.end() || !name->second.is_string()) {
    why = at + " missing string key \"stage\"";
    return false;
  }
  for (const char* key : {"millis", "input_bytes", "output_bytes"}) {
    auto it = stage.find(key);
    if (it == stage.end() || !it->second.is_number()) {
      why = at + " missing numeric key \"" + key + "\"";
      return false;
    }
  }
  if (!check_numeric_object(stage, "counters", /*require_nonempty=*/false,
                            why)) {
    why = at + " " + why;
    return false;
  }
  auto warn = stage.find("warnings");
  if (warn == stage.end() || !warn->second.array()) {
    why = at + " missing array key \"warnings\"";
    return false;
  }
  for (const Value& w : *warn->second.array()) {
    if (!w.is_string()) {
      why = at + " has a non-string warning";
      return false;
    }
  }
  return true;
}

bool validate(const std::string& path, bool require_ok, std::string& why) {
  auto text = plx::support::read_text_file(path);
  if (!text) {
    why = text.error().str();
    return false;
  }

  Parser parser(text.value());
  Value root;
  if (!parser.parse(root)) {
    why = "parse error: " + parser.error();
    return false;
  }
  const Object* obj = root.object();
  if (!obj) {
    why = "top level is not an object";
    return false;
  }

  if (!check_envelope(*obj, "protect", plx::telemetry::kSchemaVersion, why)) {
    return false;
  }

  auto ok = obj->find("ok");
  if (ok == obj->end() || !is_bool(ok->second)) {
    why = "missing bool key \"ok\"";
    return false;
  }
  const bool succeeded = std::get<bool>(ok->second.v);
  if (!succeeded) {
    auto err = obj->find("error");
    const Object* eo = err == obj->end() ? nullptr : err->second.object();
    if (!eo) {
      why = "\"ok\" is false but \"error\" object is missing";
      return false;
    }
    for (const char* key : {"code", "stage", "message"}) {
      auto it = eo->find(key);
      if (it == eo->end() || !it->second.is_string()) {
        why = std::string("\"error\" missing string key \"") + key + "\"";
        return false;
      }
    }
  }

  auto bytes = obj->find("image_bytes");
  if (bytes == obj->end() || !bytes->second.is_number()) {
    why = "missing numeric key \"image_bytes\"";
    return false;
  }
  auto fnv = obj->find("image_fnv64");
  if (fnv == obj->end() || !fnv->second.is_string()) {
    why = "missing string key \"image_fnv64\"";
    return false;
  }
  const std::string& digest = std::get<std::string>(fnv->second.v);
  if (digest.size() != 16 ||
      digest.find_first_not_of("0123456789abcdef") != std::string::npos) {
    why = "\"image_fnv64\" is not 16 hex digits";
    return false;
  }

  auto stages = obj->find("stages");
  const Array* arr = stages == obj->end() ? nullptr : stages->second.array();
  if (!arr) {
    why = "missing array key \"stages\"";
    return false;
  }
  if (arr->empty()) {
    why = "\"stages\" is empty";
    return false;
  }
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const Object* stage = (*arr)[i].object();
    if (!stage) {
      why = "stages[" + std::to_string(i) + "] is not an object";
      return false;
    }
    if (!check_stage(*stage, i, why)) return false;
  }

  if (!check_numeric_object(*obj, "totals", /*require_nonempty=*/true, why)) {
    return false;
  }

  if (require_ok && !succeeded) {
    auto err = obj->find("error");
    const Object* eo = err->second.object();
    auto msg = eo->find("message");
    why = "\"ok\" is false: " + std::get<std::string>(msg->second.v);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool require_ok = false;
  int bad = 0;
  int files = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-ok") == 0) {
      require_ok = true;
      continue;
    }
    ++files;
    std::string why;
    if (validate(argv[i], require_ok, why)) {
      std::printf("%s: ok\n", argv[i]);
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i], why.c_str());
      ++bad;
    }
  }
  if (files == 0) {
    std::fprintf(stderr, "usage: %s [--require-ok] PROTECT_*.json...\n",
                 argv[0]);
    return 2;
  }
  return bad ? 1 : 0;
}

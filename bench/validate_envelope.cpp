// One schema checker for every report artifact this repository emits:
// BENCH_/FUZZ_/PROTECT_/TRACE_/ADAPT_<name>.json. The schema is inferred
// from each file's basename prefix (or forced with --schema); the per-tool
// section checks are what the former validate_bench_json /
// validate_fuzz_json / validate_protect_json drivers enforced, plus the
// TRACE and ADAPT checks, in one binary instead of copies of the envelope
// boilerplate.
//
// Shared envelope (telemetry/schema.h): tool/name/<tool>/schema_version.
//
//   bench     stages/pipeline/figures numeric objects, non-empty throughput
//   fuzz      non-empty golden + outcomes, known backend name, escapes
//             array; --require-no-escapes fails on any escape, naming the
//             mutants
//   protect   ok bool (+ structured error when false), image_bytes,
//             16-hex image_fnv64, non-empty stages array, non-empty totals;
//             --require-ok fails when ok is false
//   trace     traceEvents array of well-formed Chrome trace events; when the
//             "vm" attribution section is present, app+chain instructions
//             and cycles must sum EXACTLY to the VM totals (the
//             RetireObserver guarantee, vm/machine.h)
//   adapt     non-empty golden/coverage/outcomes/attribution, backend must
//             be "adaptive", non-empty strategies array with per-strategy
//             outcome counts, escapes array (--require-no-escapes as fuzz)
//
// The backend-name check consumes the PLX_FUZZ_BACKEND_LIST X-macro
// (fuzz/fuzz.h) — the same list the enum and the plxfuzz parser are
// generated from, so the three cannot desynchronize.
//
// The reader is support/minijson.h, deliberately independent of the
// telemetry emitter: a checker reusing the writer would inherit its bugs.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <variant>

#include "fuzz/fuzz.h"
#include "support/file_io.h"
#include "support/minijson.h"
#include "telemetry/schema.h"

namespace {

using plx::minijson::Array;
using plx::minijson::Object;
using plx::minijson::Parser;
using plx::minijson::Value;
using plx::minijson::check_envelope;
using plx::minijson::check_numeric_object;

bool is_bool(const Value& v) { return std::holds_alternative<bool>(v.v); }

// --- bench -----------------------------------------------------------------

bool validate_bench(const Object& obj, std::string& why) {
  return check_numeric_object(obj, "stages", /*require_nonempty=*/false, why) &&
         check_numeric_object(obj, "throughput", /*require_nonempty=*/true,
                              why) &&
         check_numeric_object(obj, "pipeline", /*require_nonempty=*/false,
                              why) &&
         check_numeric_object(obj, "figures", /*require_nonempty=*/false, why);
}

// --- fuzz / adapt ----------------------------------------------------------

// The "backend" field must be a wire name generated from
// PLX_FUZZ_BACKEND_LIST (fuzz/fuzz.h) — the enum, the CLI parser and this
// check all read the same list.
bool check_backend(const Object& obj, std::string& why,
                   const char* required = nullptr) {
  auto it = obj.find("backend");
  if (it == obj.end() || !it->second.is_string()) {
    why = "missing string key \"backend\"";
    return false;
  }
  const std::string& b = std::get<std::string>(it->second.v);
  if (!plx::fuzz::backend_from_name(b)) {
    std::string names;
    for (const auto& n : plx::fuzz::backend_names()) {
      if (!names.empty()) names += "|";
      names += n;
    }
    why = "unknown backend \"" + b + "\" (expect " + names + ")";
    return false;
  }
  if (required && b != required) {
    why = "backend \"" + b + "\" is not \"" + required + "\"";
    return false;
  }
  return true;
}

bool check_escapes(const Object& obj, bool require_no_escapes,
                   std::string& why) {
  auto esc = obj.find("escapes");
  if (esc == obj.end()) {
    why = "missing key \"escapes\"";
    return false;
  }
  const Array* escapes = esc->second.array();
  if (!escapes) {
    why = "\"escapes\" is not an array";
    return false;
  }
  if (require_no_escapes && !escapes->empty()) {
    std::ostringstream os;
    os << escapes->size() << " escape(s):";
    for (const Value& e : *escapes) {
      const Object* eo = e.object();
      if (!eo) continue;
      os << " [";
      auto addr = eo->find("addr");
      if (addr != eo->end() && addr->second.is_number()) {
        char hex[16];
        std::snprintf(hex, sizeof hex, "0x%08x",
                      static_cast<unsigned>(addr->second.number()));
        os << "addr=" << hex;
      }
      for (const char* key : {"origin", "outcome", "detail"}) {
        auto it = eo->find(key);
        if (it != eo->end() && it->second.is_string()) {
          os << " " << key << "=" << std::get<std::string>(it->second.v);
        }
      }
      os << "]";
    }
    why = os.str();
    return false;
  }
  return true;
}

bool validate_fuzz(const Object& obj, bool require_no_escapes,
                   std::string& why) {
  return check_numeric_object(obj, "golden", /*require_nonempty=*/true, why) &&
         check_numeric_object(obj, "outcomes", /*require_nonempty=*/true,
                              why) &&
         check_backend(obj, why) &&
         check_escapes(obj, require_no_escapes, why);
}

bool validate_adapt(const Object& obj, bool require_no_escapes,
                    std::string& why) {
  if (!check_numeric_object(obj, "golden", /*require_nonempty=*/true, why) ||
      !check_numeric_object(obj, "coverage", /*require_nonempty=*/true, why) ||
      !check_numeric_object(obj, "outcomes", /*require_nonempty=*/true, why) ||
      !check_numeric_object(obj, "attribution", /*require_nonempty=*/true,
                            why) ||
      !check_backend(obj, why, "adaptive")) {
    return false;
  }
  auto strategies = obj.find("strategies");
  const Array* arr =
      strategies == obj.end() ? nullptr : strategies->second.array();
  if (!arr) {
    why = "missing array key \"strategies\"";
    return false;
  }
  if (arr->empty()) {
    why = "\"strategies\" is empty";
    return false;
  }
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const std::string at = "strategies[" + std::to_string(i) + "]";
    const Object* s = (*arr)[i].object();
    if (!s) {
      why = at + " is not an object";
      return false;
    }
    auto name = s->find("strategy");
    if (name == s->end() || !name->second.is_string()) {
      why = at + " missing string key \"strategy\"";
      return false;
    }
    for (const char* key : {"total", "detected", "silent_corruption", "benign",
                            "timeout", "escapes"}) {
      auto it = s->find(key);
      if (it == s->end() || !it->second.is_number()) {
        why = at + " missing numeric key \"" + key + "\"";
        return false;
      }
    }
  }
  return check_escapes(obj, require_no_escapes, why);
}

// --- protect ---------------------------------------------------------------

bool check_stage(const Object& stage, std::size_t index, std::string& why) {
  const std::string at = "stages[" + std::to_string(index) + "]";
  auto name = stage.find("stage");
  if (name == stage.end() || !name->second.is_string()) {
    why = at + " missing string key \"stage\"";
    return false;
  }
  for (const char* key : {"millis", "input_bytes", "output_bytes"}) {
    auto it = stage.find(key);
    if (it == stage.end() || !it->second.is_number()) {
      why = at + " missing numeric key \"" + key + "\"";
      return false;
    }
  }
  if (!check_numeric_object(stage, "counters", /*require_nonempty=*/false,
                            why)) {
    why = at + " " + why;
    return false;
  }
  auto warn = stage.find("warnings");
  if (warn == stage.end() || !warn->second.array()) {
    why = at + " missing array key \"warnings\"";
    return false;
  }
  for (const Value& w : *warn->second.array()) {
    if (!w.is_string()) {
      why = at + " has a non-string warning";
      return false;
    }
  }
  return true;
}

bool validate_protect(const Object& obj, bool require_ok, std::string& why) {
  auto ok = obj.find("ok");
  if (ok == obj.end() || !is_bool(ok->second)) {
    why = "missing bool key \"ok\"";
    return false;
  }
  const bool succeeded = std::get<bool>(ok->second.v);
  if (!succeeded) {
    auto err = obj.find("error");
    const Object* eo = err == obj.end() ? nullptr : err->second.object();
    if (!eo) {
      why = "\"ok\" is false but \"error\" object is missing";
      return false;
    }
    for (const char* key : {"code", "stage", "message"}) {
      auto it = eo->find(key);
      if (it == eo->end() || !it->second.is_string()) {
        why = std::string("\"error\" missing string key \"") + key + "\"";
        return false;
      }
    }
  }

  auto bytes = obj.find("image_bytes");
  if (bytes == obj.end() || !bytes->second.is_number()) {
    why = "missing numeric key \"image_bytes\"";
    return false;
  }
  auto fnv = obj.find("image_fnv64");
  if (fnv == obj.end() || !fnv->second.is_string()) {
    why = "missing string key \"image_fnv64\"";
    return false;
  }
  const std::string& digest = std::get<std::string>(fnv->second.v);
  if (digest.size() != 16 ||
      digest.find_first_not_of("0123456789abcdef") != std::string::npos) {
    why = "\"image_fnv64\" is not 16 hex digits";
    return false;
  }

  auto stages = obj.find("stages");
  const Array* arr = stages == obj.end() ? nullptr : stages->second.array();
  if (!arr) {
    why = "missing array key \"stages\"";
    return false;
  }
  if (arr->empty()) {
    why = "\"stages\" is empty";
    return false;
  }
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const Object* stage = (*arr)[i].object();
    if (!stage) {
      why = "stages[" + std::to_string(i) + "] is not an object";
      return false;
    }
    if (!check_stage(*stage, i, why)) return false;
  }

  if (!check_numeric_object(obj, "totals", /*require_nonempty=*/true, why)) {
    return false;
  }

  if (require_ok && !succeeded) {
    auto err = obj.find("error");
    const Object* eo = err->second.object();
    auto msg = eo->find("message");
    why = "\"ok\" is false: " + std::get<std::string>(msg->second.v);
    return false;
  }
  return true;
}

// --- trace -----------------------------------------------------------------

bool check_trace_event(const Object& e, std::size_t index, std::string& why) {
  const std::string at = "traceEvents[" + std::to_string(index) + "]";
  auto ph = e.find("ph");
  if (ph == e.end() || !ph->second.is_string()) {
    why = at + " missing string key \"ph\"";
    return false;
  }
  const std::string& phase = std::get<std::string>(ph->second.v);
  if (phase != "X" && phase != "i" && phase != "C" && phase != "M") {
    why = at + " has unknown phase \"" + phase + "\"";
    return false;
  }
  auto name = e.find("name");
  if (name == e.end() || !name->second.is_string()) {
    why = at + " missing string key \"name\"";
    return false;
  }
  for (const char* key : {"pid", "tid"}) {
    auto it = e.find(key);
    if (it == e.end() || !it->second.is_number()) {
      why = at + " missing numeric key \"" + key + "\"";
      return false;
    }
  }
  if (phase == "M") return true;  // metadata carries no timestamp
  auto ts = e.find("ts");
  if (ts == e.end() || !ts->second.is_number() || ts->second.number() < 0) {
    why = at + " missing non-negative numeric key \"ts\"";
    return false;
  }
  if (phase == "X") {
    auto dur = e.find("dur");
    if (dur == e.end() || !dur->second.is_number() ||
        dur->second.number() < 0) {
      why = at + " (complete) missing non-negative numeric key \"dur\"";
      return false;
    }
  }
  if (phase == "C") {
    auto args = e.find("args");
    if (args == e.end() || !args->second.object() ||
        args->second.object()->empty()) {
      why = at + " (counter) missing non-empty \"args\" object";
      return false;
    }
  }
  return true;
}

bool validate_trace(const Object& obj, std::string& why) {
  auto events = obj.find("traceEvents");
  const Array* arr = events == obj.end() ? nullptr : events->second.array();
  if (!arr) {
    why = "missing array key \"traceEvents\"";
    return false;
  }
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const Object* e = (*arr)[i].object();
    if (!e) {
      why = "traceEvents[" + std::to_string(i) + "] is not an object";
      return false;
    }
    if (!check_trace_event(*e, i, why)) return false;
  }

  for (const char* section : {"vm", "chains", "spans"}) {
    if (obj.find(section) == obj.end()) continue;
    if (!check_numeric_object(obj, section, /*require_nonempty=*/false, why)) {
      return false;
    }
  }

  // The attribution guarantee: app + chain sums to the VM total EXACTLY
  // (vm/machine.h RetireObserver). All values are integers well under 2^53,
  // so the doubles compare exactly.
  auto vm_it = obj.find("vm");
  if (vm_it != obj.end()) {
    const Object& vm_obj = *vm_it->second.object();
    auto num = [&](const char* key, double& out) {
      auto it = vm_obj.find(key);
      if (it == vm_obj.end() || !it->second.is_number()) {
        why = std::string("\"vm\" missing numeric key \"") + key + "\"";
        return false;
      }
      out = it->second.number();
      return true;
    };
    double cycles, app_c, chain_c, insns, app_i, chain_i;
    if (!num("cycles", cycles) || !num("app_cycles", app_c) ||
        !num("chain_cycles", chain_c) || !num("instructions", insns) ||
        !num("app_instructions", app_i) || !num("chain_instructions", chain_i))
      return false;
    if (app_c + chain_c != cycles) {
      std::ostringstream os;
      os << "cycle attribution is not exact: app " << app_c << " + chain "
         << chain_c << " != total " << cycles;
      why = os.str();
      return false;
    }
    if (app_i + chain_i != insns) {
      std::ostringstream os;
      os << "instruction attribution is not exact: app " << app_i
         << " + chain " << chain_i << " != total " << insns;
      why = os.str();
      return false;
    }
  }
  return true;
}

// --- driver ----------------------------------------------------------------

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// bench/fuzz/protect/trace/adapt from the file-name prefix.
std::string schema_for(const std::string& path) {
  const std::string base = basename_of(path);
  if (base.rfind("BENCH_", 0) == 0) return "bench";
  if (base.rfind("FUZZ_", 0) == 0) return "fuzz";
  if (base.rfind("PROTECT_", 0) == 0) return "protect";
  if (base.rfind("TRACE_", 0) == 0) return "trace";
  if (base.rfind("ADAPT_", 0) == 0) return "adapt";
  return "";
}

struct Flags {
  bool require_no_escapes = false;
  bool require_ok = false;
  std::string schema;  // empty = infer per file
};

bool validate(const std::string& path, const Flags& flags, std::string& why) {
  const std::string schema =
      flags.schema.empty() ? schema_for(path) : flags.schema;
  if (schema.empty()) {
    why = "cannot infer schema from file name (expect BENCH_/FUZZ_/PROTECT_/"
          "TRACE_/ADAPT_ prefix, or pass --schema)";
    return false;
  }

  auto text = plx::support::read_text_file(path);
  if (!text) {
    why = text.error().str();
    return false;
  }
  Parser parser(text.value());
  Value root;
  if (!parser.parse(root)) {
    why = "parse error: " + parser.error();
    return false;
  }
  const Object* obj = root.object();
  if (!obj) {
    why = "top level is not an object";
    return false;
  }
  if (!check_envelope(*obj, schema.c_str(), plx::telemetry::kSchemaVersion,
                      why)) {
    return false;
  }

  if (schema == "bench") return validate_bench(*obj, why);
  if (schema == "fuzz")
    return validate_fuzz(*obj, flags.require_no_escapes, why);
  if (schema == "protect") return validate_protect(*obj, flags.require_ok, why);
  if (schema == "trace") return validate_trace(*obj, why);
  if (schema == "adapt")
    return validate_adapt(*obj, flags.require_no_escapes, why);
  why = "unknown schema \"" + schema + "\"";
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  int bad = 0;
  int files = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-no-escapes") == 0) {
      flags.require_no_escapes = true;
      continue;
    }
    if (std::strcmp(argv[i], "--require-ok") == 0) {
      flags.require_ok = true;
      continue;
    }
    if (std::strcmp(argv[i], "--schema") == 0 && i + 1 < argc) {
      flags.schema = argv[++i];
      continue;
    }
    ++files;
    std::string why;
    if (validate(argv[i], flags, why)) {
      std::printf("%s: ok\n", argv[i]);
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i], why.c_str());
      ++bad;
    }
  }
  if (files == 0) {
    std::fprintf(stderr,
                 "usage: %s [--schema bench|fuzz|protect|trace|adapt] "
                 "[--require-no-escapes] [--require-ok] REPORT.json...\n",
                 argv[0]);
    return 2;
  }
  return bad ? 1 : 0;
}

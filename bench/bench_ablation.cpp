// Ablations over Parallax's design choices (beyond the paper's figures):
//
//  1. Verification-NOP weaving (§III "overlapping gadgets preferred" + our
//     transparent-gadget weaving): chain size and runtime cost of weaving
//     overlapping gadgets into chains vs not.
//  2. Probabilistic variant count N (§V-B): index-array storage and per-call
//     generation cost as N grows; the variant space only helps while
//     shape-compatible alternatives exist.
//  3. Where chain slots come from: overlapping gadgets vs the fallback
//     utility set (the paper permits inserting the latter; the interesting
//     question is how much the program's own bytes contribute).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "bench_common.h"
#include "gadget/scanner.h"

namespace {

using namespace plx;
using parallax::Hardening;

void ablate_weaving() {
  std::printf("=== Ablation 1: transparent-gadget weaving ===\n");
  std::printf("%-10s %12s %12s %14s %14s %12s\n", "program", "slots(off)",
              "slots(on)", "extra-cyc(off)", "extra-cyc(on)", "overlap-used");
  for (const auto& w : bench::bench_corpus()) {
    auto bw = bench::build_workload(w);
    const double plain = static_cast<double>(bw.profile.run.cycles);

    parallax::Protector p;
    parallax::ProtectOptions off;
    off.verify_functions = {w.verify_function};
    off.weave_overlapping = false;
    auto prot_off = p.protect(bw.compiled, off);
    parallax::ProtectOptions on = off;
    on.weave_overlapping = true;
    auto prot_on = p.protect(bw.compiled, on);
    if (!prot_off || !prot_on) {
      std::fprintf(stderr, "%s: %s\n", w.name.c_str(),
                   (!prot_off ? prot_off.error() : prot_on.error()).c_str());
      continue;
    }
    const auto run_off = bench::run_image(prot_off.value().image);
    const auto run_on = bench::run_image(prot_on.value().image);
    std::printf("%-10s %12zu %12zu %14.0f %14.0f %12zu\n", w.paper_name.c_str(),
                prot_off.value().chains.at(w.verify_function).gadget_slots.size(),
                prot_on.value().chains.at(w.verify_function).gadget_slots.size(),
                static_cast<double>(run_off.cycles) - plain,
                static_cast<double>(run_on.cycles) - plain,
                prot_on.value().used_gadgets_overlapping);
  }
  std::printf("(weaving buys verification coverage of overlapping gadget bytes "
              "for a small additive chain cost)\n\n");
}

void ablate_variants() {
  std::printf("=== Ablation 2: probabilistic variant count N ===\n");
  // Under --plx_smoke, reuse the (already tiny) smoke corpus entry and a
  // single variant count instead of the full gzip sweep.
  const auto& w = bench::smoke() ? bench::bench_corpus()[0]
                                 : *workloads::find_workload("gzip");
  auto bw = bench::build_workload(w);
  const double plain = static_cast<double>(bw.profile.run.cycles);
  std::printf("%-4s %14s %14s %16s\n", "N", "idx-bytes", "extra-cycles",
              "distinct-slots");
  const std::vector<int> counts_to_try =
      bench::smoke() ? std::vector<int>{2} : std::vector<int>{2, 4, 8};
  for (int n : counts_to_try) {
    auto prot = bench::protect_workload(bw, Hardening::Probabilistic, n);
    const img::Symbol* idx =
        prot.image.find_symbol("__plx_idx_" + w.verify_function);
    const auto run = bench::run_image(prot.image);
    // How many slots actually have >1 distinct address across the stored
    // variants is bounded by catalog diversity, not by N.
    gadget::Catalog catalog(gadget::scan(prot.image));
    const auto counts =
        ropc::slot_candidate_counts(prot.chains.at(w.verify_function), catalog);
    std::size_t multi = 0;
    for (auto c : counts) {
      if (c > 1) ++multi;
    }
    std::printf("%-4d %14u %14.0f %13zu/%zu\n", n, idx ? idx->size : 0,
                static_cast<double>(run.cycles) - plain, multi, counts.size());
  }
  std::printf("(index storage grows linearly with N; generation cost is nearly "
              "flat — the combine loop dominates; usable diversity saturates at "
              "the catalog's shape-compatible alternatives)\n\n");
}

void ablate_slot_sources() {
  std::printf("=== Ablation 3: where chain slots come from ===\n");
  std::printf("%-10s %10s %14s %14s\n", "program", "slots", "overlap-slots",
              "utility-slots");
  for (const auto& w : bench::bench_corpus()) {
    auto bw = bench::build_workload(w);
    parallax::Protector p;
    parallax::ProtectOptions opts;
    opts.verify_functions = {w.verify_function};
    auto prot = p.protect(bw.compiled, opts);
    if (!prot) continue;
    const img::Symbol* util = prot.value().image.find_symbol("__plx_gadgets");
    const auto& chain = prot.value().chains.at(w.verify_function);
    std::size_t in_util = 0;
    for (std::uint32_t a : chain.gadget_addrs) {
      if (util && a >= util->vaddr && a < util->vaddr + util->size) ++in_util;
    }
    std::printf("%-10s %10zu %14zu %14zu\n", w.paper_name.c_str(),
                chain.gadget_addrs.size(),
                chain.gadget_addrs.size() ? chain.gadget_addrs.size() - in_util : 0,
                in_util);
  }
  std::printf("(our -O0-shaped corpus relies heavily on the fallback set the "
              "paper's §III allows; richer binaries shift slots into program "
              "bytes — the gap Figure 6's crafting rules exist to close)\n\n");
}

void ablate_crafting() {
  std::printf("=== Ablation 4: §IV-B gadget crafting in the pipeline ===\n");
  std::printf("%-10s %16s %16s %16s\n", "program", "overlap(off)", "overlap(on)",
              "extra-cycles(on)");
  for (const auto& w : bench::bench_corpus()) {
    auto bw = bench::build_workload(w);
    const double plain = static_cast<double>(bw.profile.run.cycles);
    parallax::Protector p;
    parallax::ProtectOptions off;
    off.verify_functions = {w.verify_function};
    auto prot_off = p.protect(bw.compiled, off);
    parallax::ProtectOptions on = off;
    on.craft_gadgets = true;
    auto prot_on = p.protect(bw.compiled, on);
    if (!prot_off || !prot_on) {
      std::fprintf(stderr, "%s: %s\n", w.name.c_str(),
                   (!prot_off ? prot_off.error() : prot_on.error()).c_str());
      continue;
    }
    const auto run_on = bench::run_image(prot_on.value().image);
    std::printf("%-10s %16zu %16zu %16.0f\n", w.paper_name.c_str(),
                prot_off.value().gadgets_overlapping,
                prot_on.value().gadgets_overlapping,
                static_cast<double>(run_on.cycles) - plain);
  }
  std::printf("(crafting plants fresh gadgets inside protected functions — the "
              "chains then verify program bytes instead of only the fallback "
              "set)\n\n");
}

void BM_WeavingCost(benchmark::State& state) {
  const auto& w = workloads::corpus()[static_cast<std::size_t>(state.range(0))];
  auto bw = bench::build_workload(w);
  parallax::ProtectOptions opts;
  opts.verify_functions = {w.verify_function};
  opts.weave_overlapping = state.range(1) != 0;
  parallax::Protector p;
  auto prot = p.protect(bw.compiled, opts);
  for (auto _ : state) {
    x86::Machine m(prot.value().image);
    benchmark::DoNotOptimize(m.run(2'000'000'000ull).exit_code);
  }
  state.SetLabel(w.name + (state.range(1) ? "/woven" : "/plain"));
}
BENCHMARK(BM_WeavingCost)->Args({3, 0})->Args({3, 1})->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  plx::bench::init("ablation", argc, argv);
  ablate_weaving();
  ablate_variants();
  ablate_slot_sources();
  ablate_crafting();
  plx::bench::write_json();
  if (!plx::bench::tables_only()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}

// Shared helpers for the figure-reproduction benchmark binaries.
//
// Besides the build/protect/run wrappers, this header carries the bench
// reporting layer, now a thin shell over telemetry::Registry (DESIGN.md
// §12): every binary calls bench::init() first and bench::write_json()
// after its tables, producing a schema-v2 BENCH_<name>.json with per-stage
// wall-clock times ("stages", including the protector's per-pipeline-stage
// breakdown), host-side throughput (VM instructions/sec, scanner
// bytes/sec), deterministic pipeline counters and the VM-cycle figures the
// tables print ("figures" — the values `plxreport` renders into
// EXPERIMENTS.md and gates against bench/baselines/).
//
// Two flags, stripped from argv before google-benchmark sees them:
//   --plx_smoke    tiny budget: first corpus workload only, no
//                  google-benchmark pass (ctest bench_smoke validation).
//   --plx_tables   full corpus tables, but still no google-benchmark pass:
//                  the cheap deterministic run the perf_gate fixture uses
//                  to produce report artifacts.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/profiler.h"
#include "cc/compile.h"
#include "image/layout.h"
#include "parallax/protector.h"
#include "telemetry/report.h"
#include "telemetry/schema.h"
#include "telemetry/telemetry.h"
#include "isa/x86/machine.h"
#include "workloads/corpus.h"

namespace plx::bench {

// Accumulated timing/throughput state for one bench binary, recorded into a
// telemetry::Registry under the section prefixes
//   stages/      accumulated wall-clock per stage (timers)
//   throughput/  VM/scanner totals (counters) and their seconds (timers)
//   pipeline/    protector per-stage counters (via ProtectOptions::registry)
//   figures/     the printed figure values (gauges)
// The registry itself is thread-safe; still record from the main thread
// (time whole parallel regions, not their workers) for wall-clock metrics.
class Session {
 public:
  std::string name = "bench";
  bool smoke = false;
  bool tables = false;

  telemetry::Registry& registry() { return registry_; }
  const telemetry::Registry& registry() const { return registry_; }

  void add_stage(const char* stage, double seconds) {
    registry_.add_seconds(std::string("stages/") + stage, seconds);
  }

  void note_vm_run(const vm::RunResult& r, double seconds) {
    registry_.add("throughput/vm_instructions_total", r.instructions);
    registry_.add("throughput/vm_cycles_total", r.cycles);
    registry_.add_seconds("throughput/vm_run", seconds);
    add_stage("run", seconds);
  }

  void note_scan(std::uint64_t bytes, double seconds) {
    registry_.add("throughput/scanner_bytes_total", bytes);
    registry_.add_seconds("throughput/scanner_scan", seconds);
    add_stage("scan", seconds);
  }

  void figure(const std::string& key, double value) {
    registry_.set("figures/" + key, value);
  }

  // Writes BENCH_<name>.json into the working directory.
  void write_json() const {
    const std::string path = "BENCH_" + name + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    const double total =
        std::chrono::duration<double>(Clock::now() - start_).count();
    const auto vm_instructions =
        registry_.counter("throughput/vm_instructions_total");
    const auto vm_cycles = registry_.counter("throughput/vm_cycles_total");
    const double vm_seconds = registry_.timer_seconds("throughput/vm_run");
    const auto scan_bytes =
        registry_.counter("throughput/scanner_bytes_total");
    const double scan_seconds =
        registry_.timer_seconds("throughput/scanner_scan");

    telemetry::JsonWriter w(out);
    telemetry::write_envelope(w, telemetry::kToolBench, name);
    w.field_bool("smoke", smoke);
    w.field_bool("tables", tables);
    w.field_num("wall_seconds_total", total);
    telemetry::write_timers(w, "stages", registry_, "stages/");
    w.begin_object("throughput");
    w.field_u64("vm_instructions_total", vm_instructions);
    w.field_u64("vm_cycles_total", vm_cycles);
    w.field_num("vm_run_seconds", vm_seconds);
    w.field_num("vm_instructions_per_sec",
                rate(static_cast<double>(vm_instructions), vm_seconds));
    w.field_num("vm_cycles_per_sec",
                rate(static_cast<double>(vm_cycles), vm_seconds));
    w.field_u64("scanner_bytes_total", scan_bytes);
    w.field_num("scanner_scan_seconds", scan_seconds);
    w.field_num("scanner_bytes_per_sec",
                rate(static_cast<double>(scan_bytes), scan_seconds));
    w.end_object();
    telemetry::write_counters(w, "pipeline", registry_, "pipeline/");
    telemetry::write_gauges(w, "figures", registry_, "figures/");
    w.end_object();
    std::printf("[bench] wrote %s\n", path.c_str());
  }

  using Clock = std::chrono::steady_clock;
  Clock::time_point start_ = Clock::now();

 private:
  static double rate(double amount, double seconds) {
    return seconds > 0 ? amount / seconds : 0.0;
  }

  telemetry::Registry registry_;
};

inline Session& session() {
  static Session s;
  return s;
}

// Call first thing in main(): names the JSON report and strips the --plx_*
// flags from argv before google-benchmark sees them.
inline void init(const std::string& name, int& argc, char** argv) {
  Session& s = session();
  s.name = name;
  s.start_ = Session::Clock::now();
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plx_smoke") == 0) {
      s.smoke = true;
    } else if (std::strcmp(argv[i], "--plx_tables") == 0) {
      s.tables = true;
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  argv[argc] = nullptr;
}

inline bool smoke() { return session().smoke; }
// True when the google-benchmark pass should be skipped (both fast modes).
inline bool tables_only() { return session().smoke || session().tables; }
inline void write_json() { session().write_json(); }

// RAII stage timer; accumulates into session() under `stage`.
class StageTimer {
 public:
  explicit StageTimer(const char* stage) : stage_(stage) {}
  ~StageTimer() { session().add_stage(stage_, seconds()); }
  double seconds() const {
    return std::chrono::duration<double>(Session::Clock::now() - t0_).count();
  }

 private:
  const char* stage_;
  Session::Clock::time_point t0_ = Session::Clock::now();
};

// The corpus a bench iterates: everything normally, only the first workload
// under --plx_smoke.
inline std::span<const workloads::Workload> bench_corpus() {
  const auto& all = workloads::corpus();
  return session().smoke ? std::span(all).first(1) : std::span(all);
}

struct BuiltWorkload {
  workloads::Workload meta;
  cc::Compiled compiled;
  img::Image plain;
  analysis::Profile profile;  // of the plain run
};

inline BuiltWorkload build_workload(const workloads::Workload& w) {
  const auto t0 = Session::Clock::now();
  auto compiled = cc::compile(w.source);
  if (!compiled) {
    std::fprintf(stderr, "FATAL %s: %s\n", w.name.c_str(), compiled.error().c_str());
    std::exit(1);
  }
  auto plain = parallax::layout_plain(compiled.value());
  if (!plain) {
    std::fprintf(stderr, "FATAL %s: %s\n", w.name.c_str(), plain.error().c_str());
    std::exit(1);
  }
  session().add_stage(
      "compile",
      std::chrono::duration<double>(Session::Clock::now() - t0).count());
  BuiltWorkload out{w, std::move(compiled).take(), std::move(plain).take(), {}};
  {
    const auto t0 = Session::Clock::now();
    out.profile = analysis::profile_run(out.plain);
    session().note_vm_run(
        out.profile.run,
        std::chrono::duration<double>(Session::Clock::now() - t0).count());
  }
  if (out.profile.run.reason != vm::StopReason::Exited) {
    std::fprintf(stderr, "FATAL %s: plain run failed: %s\n", w.name.c_str(),
                 out.profile.run.fault.c_str());
    std::exit(1);
  }
  return out;
}

inline parallax::Protected protect_workload(const BuiltWorkload& bw,
                                            parallax::Hardening mode,
                                            int variants = 4) {
  StageTimer timer("protect");
  parallax::ProtectOptions opts;
  opts.verify_functions = {bw.meta.verify_function};
  opts.hardening = mode;
  opts.variants = variants;
  opts.registry = &session().registry();
  parallax::Protector p;
  auto prot = p.protect(bw.compiled, opts);
  if (!prot) {
    std::fprintf(stderr, "FATAL %s/%s: %s\n", bw.meta.name.c_str(),
                 verify::hardening_name(mode), prot.error().c_str());
    std::exit(1);
  }
  return std::move(prot).take();
}

inline vm::RunResult run_image(const img::Image& image,
                               std::uint64_t budget = 2'000'000'000ull) {
  x86::Machine m(image);
  // Time the run only: Machine construction copies the image and is not VM
  // execution.
  const auto t0 = Session::Clock::now();
  auto r = m.run(budget);
  session().note_vm_run(
      r, std::chrono::duration<double>(Session::Clock::now() - t0).count());
  if (r.reason != vm::StopReason::Exited) {
    std::fprintf(stderr, "FATAL: run did not exit cleanly: %s @%08x\n",
                 r.fault.c_str(), r.fault_eip);
    std::exit(1);
  }
  return r;
}

}  // namespace plx::bench

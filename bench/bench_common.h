// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <string>

#include "analysis/profiler.h"
#include "cc/compile.h"
#include "image/layout.h"
#include "parallax/protector.h"
#include "vm/machine.h"
#include "workloads/corpus.h"

namespace plx::bench {

struct BuiltWorkload {
  workloads::Workload meta;
  cc::Compiled compiled;
  img::Image plain;
  analysis::Profile profile;  // of the plain run
};

inline BuiltWorkload build_workload(const workloads::Workload& w) {
  auto compiled = cc::compile(w.source);
  if (!compiled) {
    std::fprintf(stderr, "FATAL %s: %s\n", w.name.c_str(), compiled.error().c_str());
    std::exit(1);
  }
  auto plain = parallax::layout_plain(compiled.value());
  if (!plain) {
    std::fprintf(stderr, "FATAL %s: %s\n", w.name.c_str(), plain.error().c_str());
    std::exit(1);
  }
  BuiltWorkload out{w, std::move(compiled).take(), std::move(plain).take(), {}};
  out.profile = analysis::profile_run(out.plain);
  if (out.profile.run.reason != vm::StopReason::Exited) {
    std::fprintf(stderr, "FATAL %s: plain run failed: %s\n", w.name.c_str(),
                 out.profile.run.fault.c_str());
    std::exit(1);
  }
  return out;
}

inline parallax::Protected protect_workload(const BuiltWorkload& bw,
                                            parallax::Hardening mode,
                                            int variants = 4) {
  parallax::ProtectOptions opts;
  opts.verify_functions = {bw.meta.verify_function};
  opts.hardening = mode;
  opts.variants = variants;
  parallax::Protector p;
  auto prot = p.protect(bw.compiled, opts);
  if (!prot) {
    std::fprintf(stderr, "FATAL %s/%s: %s\n", bw.meta.name.c_str(),
                 verify::hardening_name(mode), prot.error().c_str());
    std::exit(1);
  }
  return std::move(prot).take();
}

inline vm::RunResult run_image(const img::Image& image,
                               std::uint64_t budget = 2'000'000'000ull) {
  vm::Machine m(image);
  auto r = m.run(budget);
  if (r.reason != vm::StopReason::Exited) {
    std::fprintf(stderr, "FATAL: run did not exit cleanly: %s @%08x\n",
                 r.fault.c_str(), r.fault_eip);
    std::exit(1);
  }
  return r;
}

}  // namespace plx::bench

// Shared helpers for the figure-reproduction benchmark binaries.
//
// Besides the build/protect/run wrappers, this header carries the bench
// reporting layer: every binary calls bench::init() first and
// bench::write_json() after its tables, producing BENCH_<name>.json with
// per-stage wall-clock times (compile, scan, protect, run), host-side
// throughput (VM instructions/sec, scanner bytes/sec) and the VM-cycle
// figures the tables print. `--plx_smoke` switches to a tiny budget (first
// corpus workload only, no google-benchmark pass) so ctest can validate the
// pipeline quickly; see bench/CMakeLists.txt's bench_smoke tests.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/profiler.h"
#include "cc/compile.h"
#include "image/layout.h"
#include "parallax/protector.h"
#include "support/json.h"
#include "vm/machine.h"
#include "workloads/corpus.h"

namespace plx::bench {

using json::escape;
using json::num;

// Accumulated timing/throughput state for one bench binary. Not thread-safe:
// record from the main thread (time whole parallel regions, not their
// workers).
class Session {
 public:
  std::string name = "bench";
  bool smoke = false;

  void add_stage(const char* stage, double seconds) {
    for (auto& [k, v] : stages_) {
      if (k == stage) {
        v += seconds;
        return;
      }
    }
    stages_.emplace_back(stage, seconds);
  }

  void note_vm_run(const vm::RunResult& r, double seconds) {
    vm_instructions_ += r.instructions;
    vm_cycles_ += r.cycles;
    vm_run_seconds_ += seconds;
    add_stage("run", seconds);
  }

  void note_scan(std::uint64_t bytes, double seconds) {
    scan_bytes_ += bytes;
    scan_seconds_ += seconds;
    add_stage("scan", seconds);
  }

  void figure(const std::string& key, double value) {
    figures_.emplace_back(key, value);
  }

  // Writes BENCH_<name>.json into the working directory.
  void write_json() const {
    const std::string path = "BENCH_" + name + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    const double total =
        std::chrono::duration<double>(Clock::now() - start_).count();
    out << "{\n";
    out << "  \"bench\": \"" << escape(name) << "\",\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    out << "  \"wall_seconds_total\": " << num(total) << ",\n";
    out << "  \"stages\": {";
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      out << (i ? ", " : "") << '"' << escape(stages_[i].first)
          << "\": " << num(stages_[i].second);
    }
    out << "},\n";
    out << "  \"throughput\": {\n";
    out << "    \"vm_instructions_total\": " << vm_instructions_ << ",\n";
    out << "    \"vm_cycles_total\": " << vm_cycles_ << ",\n";
    out << "    \"vm_run_seconds\": " << num(vm_run_seconds_) << ",\n";
    out << "    \"vm_instructions_per_sec\": "
        << num(rate(static_cast<double>(vm_instructions_), vm_run_seconds_))
        << ",\n";
    out << "    \"vm_cycles_per_sec\": "
        << num(rate(static_cast<double>(vm_cycles_), vm_run_seconds_)) << ",\n";
    out << "    \"scanner_bytes_total\": " << scan_bytes_ << ",\n";
    out << "    \"scanner_scan_seconds\": " << num(scan_seconds_) << ",\n";
    out << "    \"scanner_bytes_per_sec\": "
        << num(rate(static_cast<double>(scan_bytes_), scan_seconds_)) << "\n";
    out << "  },\n";
    out << "  \"figures\": {";
    for (std::size_t i = 0; i < figures_.size(); ++i) {
      out << (i ? ",\n              " : "") << '"' << escape(figures_[i].first)
          << "\": " << num(figures_[i].second);
    }
    out << "}\n";
    out << "}\n";
    std::printf("[bench] wrote %s\n", path.c_str());
  }

  using Clock = std::chrono::steady_clock;
  Clock::time_point start_ = Clock::now();

 private:
  static double rate(double amount, double seconds) {
    return seconds > 0 ? amount / seconds : 0.0;
  }

  std::vector<std::pair<std::string, double>> stages_;  // insertion order
  std::vector<std::pair<std::string, double>> figures_;
  std::uint64_t vm_instructions_ = 0;
  std::uint64_t vm_cycles_ = 0;
  double vm_run_seconds_ = 0;
  std::uint64_t scan_bytes_ = 0;
  double scan_seconds_ = 0;
};

inline Session& session() {
  static Session s;
  return s;
}

// Call first thing in main(): names the JSON report and strips --plx_smoke
// from argv before google-benchmark sees it.
inline void init(const std::string& name, int& argc, char** argv) {
  Session& s = session();
  s.name = name;
  s.start_ = Session::Clock::now();
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--plx_smoke") == 0) {
      s.smoke = true;
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  argv[argc] = nullptr;
}

inline bool smoke() { return session().smoke; }
inline void write_json() { session().write_json(); }

// RAII stage timer; accumulates into session() under `stage`.
class StageTimer {
 public:
  explicit StageTimer(const char* stage) : stage_(stage) {}
  ~StageTimer() { session().add_stage(stage_, seconds()); }
  double seconds() const {
    return std::chrono::duration<double>(Session::Clock::now() - t0_).count();
  }

 private:
  const char* stage_;
  Session::Clock::time_point t0_ = Session::Clock::now();
};

// The corpus a bench iterates: everything normally, only the first workload
// under --plx_smoke.
inline std::span<const workloads::Workload> bench_corpus() {
  const auto& all = workloads::corpus();
  return session().smoke ? std::span(all).first(1) : std::span(all);
}

struct BuiltWorkload {
  workloads::Workload meta;
  cc::Compiled compiled;
  img::Image plain;
  analysis::Profile profile;  // of the plain run
};

inline BuiltWorkload build_workload(const workloads::Workload& w) {
  const auto t0 = Session::Clock::now();
  auto compiled = cc::compile(w.source);
  if (!compiled) {
    std::fprintf(stderr, "FATAL %s: %s\n", w.name.c_str(), compiled.error().c_str());
    std::exit(1);
  }
  auto plain = parallax::layout_plain(compiled.value());
  if (!plain) {
    std::fprintf(stderr, "FATAL %s: %s\n", w.name.c_str(), plain.error().c_str());
    std::exit(1);
  }
  session().add_stage(
      "compile",
      std::chrono::duration<double>(Session::Clock::now() - t0).count());
  BuiltWorkload out{w, std::move(compiled).take(), std::move(plain).take(), {}};
  {
    const auto t0 = Session::Clock::now();
    out.profile = analysis::profile_run(out.plain);
    session().note_vm_run(
        out.profile.run,
        std::chrono::duration<double>(Session::Clock::now() - t0).count());
  }
  if (out.profile.run.reason != vm::StopReason::Exited) {
    std::fprintf(stderr, "FATAL %s: plain run failed: %s\n", w.name.c_str(),
                 out.profile.run.fault.c_str());
    std::exit(1);
  }
  return out;
}

inline parallax::Protected protect_workload(const BuiltWorkload& bw,
                                            parallax::Hardening mode,
                                            int variants = 4) {
  StageTimer timer("protect");
  parallax::ProtectOptions opts;
  opts.verify_functions = {bw.meta.verify_function};
  opts.hardening = mode;
  opts.variants = variants;
  parallax::Protector p;
  auto prot = p.protect(bw.compiled, opts);
  if (!prot) {
    std::fprintf(stderr, "FATAL %s/%s: %s\n", bw.meta.name.c_str(),
                 verify::hardening_name(mode), prot.error().c_str());
    std::exit(1);
  }
  return std::move(prot).take();
}

inline vm::RunResult run_image(const img::Image& image,
                               std::uint64_t budget = 2'000'000'000ull) {
  vm::Machine m(image);
  // Time the run only: Machine construction copies the image and is not VM
  // execution.
  const auto t0 = Session::Clock::now();
  auto r = m.run(budget);
  session().note_vm_run(
      r, std::chrono::duration<double>(Session::Clock::now() - t0).count());
  if (r.reason != vm::StopReason::Exited) {
    std::fprintf(stderr, "FATAL: run did not exit cleanly: %s @%08x\n",
                 r.fault.c_str(), r.fault_eip);
    std::exit(1);
  }
  return r;
}

}  // namespace plx::bench

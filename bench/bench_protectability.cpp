// Figure 6 reproduction: percentage of protectable code bytes per program,
// per §IV-B rewriting rule.
//
// Paper reference values (real wget/nginx/bzip2/gzip/gcc/lame, gcc 4.6.3):
//   existing near-ret gadgets ... 3%-6%
//   existing far-ret gadgets .... up to 1%
//   immediate modification ...... 37%-60%
//   jump-offset modification .... 43%-84%
//   any rule .................... 63%-90% (average 75%)
// The spurious-instruction rule always applies and is omitted, as in the
// paper. Absolute numbers shift with the corpus/compiler; the shape to check
// is the ordering and the dominance of the modification rules.
//
// The per-workload compile+layout+analyze pipeline is independent across
// workloads, so it is sharded over the process-wide thread pool; results are
// printed in corpus order afterwards. A separate timed pass measures raw
// gadget-scanner throughput (bytes/sec) for the JSON report.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "gadget/scanner.h"
#include "rewrite/protectability.h"
#include "support/thread_pool.h"

namespace {

using namespace plx;

struct Analyzed {
  const workloads::Workload* w = nullptr;
  std::optional<rewrite::CoverageReport> report;
  img::Image image;  // laid-out plain image, reused by the scan pass
  std::string error;
};

std::vector<Analyzed> analyze_corpus() {
  const auto corpus = bench::bench_corpus();
  std::vector<Analyzed> rows(corpus.size());
  bench::StageTimer timer("compile");
  support::ThreadPool::shared().parallel_for(corpus.size(), [&](std::size_t i) {
    Analyzed& row = rows[i];
    row.w = &corpus[i];
    auto compiled = cc::compile(corpus[i].source);
    if (!compiled) {
      row.error = compiled.error();
      return;
    }
    auto laid = img::layout(compiled.value().module);
    if (!laid) {
      row.error = laid.error();
      return;
    }
    row.report =
        rewrite::analyze_protectability(compiled.value().module, laid.value());
    row.image = std::move(laid).take().image;
  });
  return rows;
}

void print_table(const std::vector<Analyzed>& rows) {
  std::printf("=== Figure 6: protectable code bytes per rewriting rule ===\n");
  std::printf("%-10s %10s %10s %10s %10s %10s %10s\n", "program", "bytes",
              "near-ret", "far-ret", "imm-mod", "jump-mod", "any");
  double sum_any = 0;
  int n = 0;
  for (const auto& row : rows) {
    if (!row.report) {
      std::fprintf(stderr, "%s: %s\n", row.w->name.c_str(), row.error.c_str());
      std::exit(1);
    }
    const auto& report = *row.report;
    std::printf("%-10s %10u %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
                row.w->paper_name.c_str(), report.code_bytes,
                100.0 * report.fraction(rewrite::Rule::ExistingNear),
                100.0 * report.fraction(rewrite::Rule::ExistingFar),
                100.0 * report.fraction(rewrite::Rule::ImmediateMod),
                100.0 * report.fraction(rewrite::Rule::JumpMod),
                100.0 * report.fraction_any());
    bench::session().figure("code_bytes/" + row.w->name, report.code_bytes);
    bench::session().figure("protectable_near_percent/" + row.w->name,
                            100.0 * report.fraction(rewrite::Rule::ExistingNear));
    bench::session().figure("protectable_far_percent/" + row.w->name,
                            100.0 * report.fraction(rewrite::Rule::ExistingFar));
    bench::session().figure("protectable_imm_percent/" + row.w->name,
                            100.0 * report.fraction(rewrite::Rule::ImmediateMod));
    bench::session().figure("protectable_jump_percent/" + row.w->name,
                            100.0 * report.fraction(rewrite::Rule::JumpMod));
    bench::session().figure("protectable_any_percent/" + row.w->name,
                            100.0 * report.fraction_any());
    sum_any += report.fraction_any();
    ++n;
  }
  std::printf("%-10s %10s %10s %10s %10s %10s %9.1f%%\n", "average", "", "", "", "",
              "", 100.0 * sum_any / n);
  bench::session().figure("protectable_any_percent/average", 100.0 * sum_any / n);
  std::printf("(paper: near 3-6%%, far <=1%%, imm 37-60%%, jump 43-84%%, "
              "any 63-90%% avg 75%%; spurious always applies and is omitted)\n\n");
}

// Timed full-image gadget scans; feeds scanner_bytes_per_sec in the JSON.
// Repeated so the sample is long enough for a stable host-side rate.
void scan_throughput(const std::vector<Analyzed>& rows) {
  const int reps = bench::smoke() ? 1 : 40;
  std::uint64_t gadgets = 0;
  const auto t0 = bench::Session::Clock::now();
  std::uint64_t bytes = 0;
  for (int r = 0; r < reps; ++r) {
    for (const auto& row : rows) {
      const auto found = gadget::scan(row.image);
      gadgets += found.size();
      for (const auto& sec : row.image.sections) {
        if (sec.perms & img::kPermExec) bytes += sec.bytes.size();
      }
    }
  }
  const double secs =
      std::chrono::duration<double>(bench::Session::Clock::now() - t0).count();
  bench::session().note_scan(bytes, secs);
  std::printf("scanner: %llu bytes in %.3fs (%.0f bytes/sec), %llu gadgets\n\n",
              static_cast<unsigned long long>(bytes), secs,
              secs > 0 ? static_cast<double>(bytes) / secs : 0.0,
              static_cast<unsigned long long>(gadgets));
}

// Host-side cost of the analysis itself.
void BM_AnalyzeProtectability(benchmark::State& state) {
  const auto& w = workloads::corpus()[static_cast<std::size_t>(state.range(0))];
  auto compiled = cc::compile(w.source);
  auto laid = img::layout(compiled.value().module);
  for (auto _ : state) {
    auto report = rewrite::analyze_protectability(compiled.value().module, laid.value());
    benchmark::DoNotOptimize(report.code_bytes);
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_AnalyzeProtectability)->DenseRange(0, 5);

}  // namespace

int main(int argc, char** argv) {
  plx::bench::init("protectability", argc, argv);
  const auto rows = analyze_corpus();
  print_table(rows);
  scan_throughput(rows);
  plx::bench::write_json();
  if (!plx::bench::tables_only()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}

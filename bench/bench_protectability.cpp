// Figure 6 reproduction: percentage of protectable code bytes per program,
// per §IV-B rewriting rule.
//
// Paper reference values (real wget/nginx/bzip2/gzip/gcc/lame, gcc 4.6.3):
//   existing near-ret gadgets ... 3%-6%
//   existing far-ret gadgets .... up to 1%
//   immediate modification ...... 37%-60%
//   jump-offset modification .... 43%-84%
//   any rule .................... 63%-90% (average 75%)
// The spurious-instruction rule always applies and is omitted, as in the
// paper. Absolute numbers shift with the corpus/compiler; the shape to check
// is the ordering and the dominance of the modification rules.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "rewrite/protectability.h"

namespace {

using namespace plx;

void print_table() {
  std::printf("=== Figure 6: protectable code bytes per rewriting rule ===\n");
  std::printf("%-10s %10s %10s %10s %10s %10s %10s\n", "program", "bytes",
              "near-ret", "far-ret", "imm-mod", "jump-mod", "any");
  double sum_any = 0;
  int n = 0;
  for (const auto& w : workloads::corpus()) {
    auto compiled = cc::compile(w.source);
    if (!compiled) {
      std::fprintf(stderr, "%s: %s\n", w.name.c_str(), compiled.error().c_str());
      std::exit(1);
    }
    auto laid = img::layout(compiled.value().module);
    if (!laid) {
      std::fprintf(stderr, "%s: %s\n", w.name.c_str(), laid.error().c_str());
      std::exit(1);
    }
    const auto report =
        rewrite::analyze_protectability(compiled.value().module, laid.value());
    std::printf("%-10s %10u %9.1f%% %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
                w.paper_name.c_str(), report.code_bytes,
                100.0 * report.fraction(rewrite::Rule::ExistingNear),
                100.0 * report.fraction(rewrite::Rule::ExistingFar),
                100.0 * report.fraction(rewrite::Rule::ImmediateMod),
                100.0 * report.fraction(rewrite::Rule::JumpMod),
                100.0 * report.fraction_any());
    sum_any += report.fraction_any();
    ++n;
  }
  std::printf("%-10s %10s %10s %10s %10s %10s %9.1f%%\n", "average", "", "", "", "",
              "", 100.0 * sum_any / n);
  std::printf("(paper: near 3-6%%, far <=1%%, imm 37-60%%, jump 43-84%%, "
              "any 63-90%% avg 75%%; spurious always applies and is omitted)\n\n");
}

// Host-side cost of the analysis itself.
void BM_AnalyzeProtectability(benchmark::State& state) {
  const auto& w = workloads::corpus()[static_cast<std::size_t>(state.range(0))];
  auto compiled = cc::compile(w.source);
  auto laid = img::layout(compiled.value().module);
  for (auto _ : state) {
    auto report = rewrite::analyze_protectability(compiled.value().module, laid.value());
    benchmark::DoNotOptimize(report.code_bytes);
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_AnalyzeProtectability)->DenseRange(0, 5);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Validates a BENCH_<name>.json report emitted by the bench binaries (see
// bench_common.h). Used by the bench_smoke ctest targets: exits 0 iff every
// file given on the command line parses as JSON and carries the required
// keys with the right shapes:
//
//   bench            string
//   schema_version   number (currently 1)
//   stages           object, all values numbers
//   throughput       non-empty object, all values numbers
//
// The reader lives in minijson.h (shared with validate_fuzz_json).
#include <cstdio>
#include <string>

#include "minijson.h"
#include "support/file_io.h"

namespace {

using plx::minijson::Object;
using plx::minijson::Parser;
using plx::minijson::Value;
using plx::minijson::check_numeric_object;

bool validate(const std::string& path, std::string& why) {
  auto text = plx::support::read_text_file(path);
  if (!text) {
    why = text.error().str();
    return false;
  }

  Parser parser(text.value());
  Value root;
  if (!parser.parse(root)) {
    why = "parse error: " + parser.error();
    return false;
  }
  const Object* obj = root.object();
  if (!obj) {
    why = "top level is not an object";
    return false;
  }

  auto bench = obj->find("bench");
  if (bench == obj->end() || !bench->second.is_string()) {
    why = "missing string key \"bench\"";
    return false;
  }
  auto ver = obj->find("schema_version");
  if (ver == obj->end() || !ver->second.is_number()) {
    why = "missing numeric key \"schema_version\"";
    return false;
  }
  if (ver->second.number() != 1.0) {
    why = "unsupported schema_version";
    return false;
  }
  if (!check_numeric_object(*obj, "stages", /*require_nonempty=*/false, why)) {
    return false;
  }
  if (!check_numeric_object(*obj, "throughput", /*require_nonempty=*/true, why)) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_*.json...\n", argv[0]);
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::string why;
    if (validate(argv[i], why)) {
      std::printf("%s: ok\n", argv[i]);
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i], why.c_str());
      ++bad;
    }
  }
  return bad ? 1 : 0;
}

// Validates a BENCH_<name>.json report emitted by the bench binaries (see
// bench_common.h). Used by the bench_smoke ctest targets: exits 0 iff every
// file given on the command line parses as JSON and carries the required
// keys with the right shapes:
//
//   tool/name/bench/schema_version   the shared schema-v2 envelope
//   stages                           object, all values numbers
//   throughput                       non-empty object, all values numbers
//   pipeline                         object, all values numbers
//   figures                          object, all values numbers
//
// The reader lives in support/minijson.h (shared with validate_fuzz_json);
// it is deliberately independent of the telemetry emitter.
#include <cstdio>
#include <string>

#include "support/file_io.h"
#include "support/minijson.h"
#include "telemetry/schema.h"

namespace {

using plx::minijson::Object;
using plx::minijson::Parser;
using plx::minijson::Value;
using plx::minijson::check_envelope;
using plx::minijson::check_numeric_object;

bool validate(const std::string& path, std::string& why) {
  auto text = plx::support::read_text_file(path);
  if (!text) {
    why = text.error().str();
    return false;
  }

  Parser parser(text.value());
  Value root;
  if (!parser.parse(root)) {
    why = "parse error: " + parser.error();
    return false;
  }
  const Object* obj = root.object();
  if (!obj) {
    why = "top level is not an object";
    return false;
  }

  if (!check_envelope(*obj, "bench", plx::telemetry::kSchemaVersion, why)) {
    return false;
  }
  if (!check_numeric_object(*obj, "stages", /*require_nonempty=*/false, why)) {
    return false;
  }
  if (!check_numeric_object(*obj, "throughput", /*require_nonempty=*/true, why)) {
    return false;
  }
  if (!check_numeric_object(*obj, "pipeline", /*require_nonempty=*/false, why)) {
    return false;
  }
  if (!check_numeric_object(*obj, "figures", /*require_nonempty=*/false, why)) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_*.json...\n", argv[0]);
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::string why;
    if (validate(argv[i], why)) {
      std::printf("%s: ok\n", argv[i]);
    } else {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i], why.c_str());
      ++bad;
    }
  }
  return bad ? 1 : 0;
}

// Figure 5b reproduction: whole-program runtime overhead per hardening
// strategy.
//
// Paper reference (Figure 5b): cleartext 0.1% (gcc) to 2.7% (wget); RC4 0.2%
// to 3.7%; everything under 4%. The point being demonstrated: even at 4-64x
// chain slowdowns, §VII-B's selection keeps verification code cold enough
// that the protected *program* barely notices — performance overhead is
// confined to the verification code, never the protected hot paths.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace plx;
using parallax::Hardening;

constexpr Hardening kModes[] = {Hardening::Cleartext, Hardening::Xor,
                                Hardening::Probabilistic, Hardening::Rc4};

void print_table() {
  std::printf("=== Figure 5b: whole-program runtime overhead ===\n");
  std::printf("%-10s %14s %5s | %10s %10s %10s %10s\n", "program", "plain-cycles",
              "vf%%", "cleartext", "xor", "prob", "rc4");
  for (const auto& w : bench::bench_corpus()) {
    auto bw = bench::build_workload(w);
    const double plain_cycles = static_cast<double>(bw.profile.run.cycles);
    std::printf("%-10s %14llu %4.2f%% |", w.paper_name.c_str(),
                static_cast<unsigned long long>(bw.profile.run.cycles),
                100.0 * bw.profile.fraction(w.verify_function));
    bench::session().figure("plain_cycles/" + w.name,
                            static_cast<double>(bw.profile.run.cycles));
    bench::session().figure("vf_share_percent/" + w.name,
                            100.0 * bw.profile.fraction(w.verify_function));
    for (Hardening mode : kModes) {
      auto prot = bench::protect_workload(bw, mode);
      auto run = bench::run_image(prot.image);
      const double overhead =
          (static_cast<double>(run.cycles) - plain_cycles) / plain_cycles;
      std::printf(" %9.2f%%", 100.0 * overhead);
      bench::session().figure(
          "overhead_percent/" + w.name + "/" + verify::hardening_name(mode),
          100.0 * overhead);
    }
    std::printf("\n");
  }
  std::printf("(paper: cleartext 0.1-2.7%%, rc4 0.2-3.7%%, all under 4%%)\n\n");
}

void BM_ProtectPipeline(benchmark::State& state) {
  // Host-side cost of running the full protection pipeline.
  const auto& w = workloads::corpus()[static_cast<std::size_t>(state.range(0))];
  auto bw = bench::build_workload(w);
  for (auto _ : state) {
    auto prot = bench::protect_workload(bw, Hardening::Cleartext);
    benchmark::DoNotOptimize(prot.image.entry);
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_ProtectPipeline)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  plx::bench::init("overhead", argc, argv);
  print_table();
  plx::bench::write_json();
  if (!plx::bench::tables_only()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}

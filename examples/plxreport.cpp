// plxreport — aggregate the machine-readable report artifacts
// (BENCH_/FUZZ_/PROTECT_<name>.json, schema v2) into the measured tables of
// EXPERIMENTS.md and gate them against the tracked baselines in
// bench/baselines/ (DESIGN.md §12).
//
//   plxreport render   --dir DIR
//       Print every generated Markdown block to stdout.
//   plxreport update   --dir DIR --experiments FILE
//       Splice freshly rendered blocks over the marked regions of FILE.
//   plxreport check    --dir DIR --experiments FILE
//       Fail (exit 1) if any marked block of FILE differs byte-for-byte
//       from what the artifacts render — committed doc vs measured drift.
//   plxreport gate     --dir DIR --baselines DIR
//       Compare every artifact against its BASELINE_<name>.json; fail on
//       any out-of-tolerance / mismatched / missing pinned metric. A
//       missing baseline file is a warning, not a failure.
//   plxreport baseline --dir DIR --out DIR
//       (Re)write the baseline files from the artifacts in --dir.
//   plxreport diag [--update FILE | --check FILE]
//       Print the generated Diag error-code reference table, splice it
//       into FILE (README.md), or verify FILE already embeds it.
//
// `check` + `gate` together form the perf_gate ctest label (bench/
// CMakeLists.txt): cycle-derived metrics gate exactly (the VM is
// deterministic), wall-clock throughput at ±30%.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/file_io.h"
#include "support/minijson.h"
#include "telemetry/compare.h"
#include "telemetry/report_md.h"
#include "telemetry/schema.h"

namespace {

using namespace plx;

int usage() {
  std::fprintf(
      stderr,
      "usage: plxreport render   [--dir DIR]\n"
      "       plxreport update   [--dir DIR] --experiments FILE\n"
      "       plxreport check    [--dir DIR] --experiments FILE\n"
      "       plxreport gate     [--dir DIR] --baselines DIR\n"
      "       plxreport baseline [--dir DIR] --out DIR\n"
      "       plxreport diag     [--update FILE | --check FILE]\n");
  return 2;
}

int fatal(const std::string& what) {
  std::fprintf(stderr, "plxreport: %s\n", what.c_str());
  return 1;
}

Result<telemetry::Artifacts> load(const std::string& dir) {
  auto artifacts = telemetry::load_artifacts(dir);
  if (artifacts && artifacts.value().files.empty()) {
    return fail(DiagCode::Io, "plxreport",
                "no report artifacts (BENCH_/FUZZ_/PROTECT_*.json) in '" +
                    dir + "'");
  }
  return artifacts;
}

bool write_text(const std::string& path, const std::string& text,
                std::string& why) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  if (!out) {
    why = "cannot write '" + path + "'";
    return false;
  }
  return true;
}

int cmd_render(const std::string& dir) {
  auto artifacts = load(dir);
  if (!artifacts) return fatal(artifacts.error().str());
  std::fputs(telemetry::render_report(artifacts.value()).c_str(), stdout);
  return 0;
}

int splice_into(const std::string& path, const std::vector<telemetry::Block>& blocks) {
  auto text = support::read_text_file(path);
  if (!text) return fatal(text.error().str());
  auto spliced = telemetry::splice_blocks(text.value(), blocks);
  if (!spliced) return fatal(spliced.error().str());
  std::string why;
  if (!write_text(path, spliced.value(), why)) return fatal(why);
  std::printf("plxreport: updated %zu block(s) in %s\n", blocks.size(),
              path.c_str());
  return 0;
}

int check_against(const std::string& path,
                  const std::vector<telemetry::Block>& blocks,
                  const char* regen_hint) {
  auto text = support::read_text_file(path);
  if (!text) return fatal(text.error().str());
  std::string error;
  const auto stale = telemetry::stale_blocks(text.value(), blocks, error);
  if (!error.empty()) return fatal(path + ": " + error);
  if (!stale.empty()) {
    std::fprintf(stderr,
                 "plxreport: %s is stale versus the measured artifacts; "
                 "block(s):", path.c_str());
    for (const auto& id : stale) std::fprintf(stderr, " %s", id.c_str());
    std::fprintf(stderr, "\n  regenerate with: %s\n", regen_hint);
    return 1;
  }
  std::printf("plxreport: %s matches the artifacts (%zu block(s))\n",
              path.c_str(), blocks.size());
  return 0;
}

int cmd_update(const std::string& dir, const std::string& experiments) {
  auto artifacts = load(dir);
  if (!artifacts) return fatal(artifacts.error().str());
  return splice_into(experiments, telemetry::render_blocks(artifacts.value()));
}

int cmd_check(const std::string& dir, const std::string& experiments) {
  auto artifacts = load(dir);
  if (!artifacts) return fatal(artifacts.error().str());
  return check_against(experiments, telemetry::render_blocks(artifacts.value()),
                       "plxreport update");
}

// "BASELINE_protect_miniwget.json" -> "protect_miniwget" (the report name).
std::string baseline_report_name(const std::string& file) {
  std::string stem = file.substr(0, file.size() - 5);  // drop ".json"
  return stem.substr(std::strlen("BASELINE_"));
}

int cmd_gate(const std::string& dir, const std::string& baselines) {
  auto artifacts = load(dir);
  if (!artifacts) return fatal(artifacts.error().str());

  std::size_t failures = 0, warnings = 0, metrics = 0;
  for (const auto& [file, value] : artifacts.value().files) {
    const std::string bname = telemetry::baseline_file_for(file);
    const std::string bpath = baselines + "/" + bname;
    if (!std::filesystem::exists(bpath)) {
      std::printf("WARN  %s: no baseline (%s); not gated\n", file.c_str(),
                  bname.c_str());
      ++warnings;
      continue;
    }
    auto btext = support::read_text_file(bpath);
    if (!btext) return fatal(btext.error().str());
    minijson::Parser parser(btext.value());
    minijson::Value broot;
    if (!parser.parse(broot) || !broot.object()) {
      return fatal(bpath + ": parse error: " + parser.error());
    }
    const auto result =
        telemetry::compare_artifact(file, *value.object(), *broot.object());
    if (!result.error.empty()) {
      std::fprintf(stderr, "FAIL  %s: %s\n", file.c_str(),
                   result.error.c_str());
      ++failures;
      continue;
    }
    metrics += result.checks.size();
    for (const auto& check : result.checks) {
      if (check.ok()) continue;
      ++failures;
      if (check.baseline.is_string) {
        std::fprintf(stderr, "FAIL  %s: %s: %s (baseline \"%s\", current %s)\n",
                     file.c_str(), check.baseline.name.c_str(),
                     telemetry::verdict_name(check.verdict),
                     check.baseline.text.c_str(),
                     check.verdict == telemetry::Verdict::MissingMetric
                         ? "<missing>"
                         : ("\"" + check.current_text + "\"").c_str());
      } else {
        std::fprintf(stderr,
                     "FAIL  %s: %s: %s (baseline %.17g ±%.0f%%, current %s)\n",
                     file.c_str(), check.baseline.name.c_str(),
                     telemetry::verdict_name(check.verdict),
                     check.baseline.value, 100.0 * check.baseline.tolerance,
                     check.verdict == telemetry::Verdict::MissingMetric
                         ? "<missing>"
                         : std::to_string(check.current).c_str());
      }
    }
    if (result.ok()) {
      std::printf("ok    %s: %zu metric(s) within tolerance of %s\n",
                  file.c_str(), result.checks.size(), bname.c_str());
    }
  }
  std::printf(
      "plxreport gate: %zu artifact(s), %zu metric(s) checked, %zu "
      "failure(s), %zu warning(s)\n",
      artifacts.value().files.size(), metrics, failures, warnings);
  return failures ? 1 : 0;
}

int cmd_baseline(const std::string& dir, const std::string& out_dir) {
  auto artifacts = load(dir);
  if (!artifacts) return fatal(artifacts.error().str());
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  for (const auto& [file, value] : artifacts.value().files) {
    const std::string bname = telemetry::baseline_file_for(file);
    const std::string rendered = telemetry::render_baseline(
        baseline_report_name(bname), file, *value.object());
    std::string why;
    if (!write_text(out_dir + "/" + bname, rendered, why)) return fatal(why);
    std::printf("plxreport: wrote %s/%s\n", out_dir.c_str(), bname.c_str());
  }
  return 0;
}

int cmd_diag(const std::string& update, const std::string& check) {
  const std::vector<telemetry::Block> blocks = {
      {"diag-codes", telemetry::render_diag_table()}};
  if (!update.empty()) return splice_into(update, blocks);
  if (!check.empty()) return check_against(check, blocks, "plxreport diag --update");
  std::fputs(blocks[0].text.c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::string dir = ".", experiments, baselines, out, update, check;
  for (int i = 2; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "plxreport: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--dir") == 0) dir = next("--dir");
    else if (std::strcmp(argv[i], "--experiments") == 0) experiments = next("--experiments");
    else if (std::strcmp(argv[i], "--baselines") == 0) baselines = next("--baselines");
    else if (std::strcmp(argv[i], "--out") == 0) out = next("--out");
    else if (std::strcmp(argv[i], "--update") == 0) update = next("--update");
    else if (std::strcmp(argv[i], "--check") == 0) check = next("--check");
    else return usage();
  }

  if (cmd == "render") return cmd_render(dir);
  if (cmd == "update") {
    return experiments.empty() ? usage() : cmd_update(dir, experiments);
  }
  if (cmd == "check") {
    return experiments.empty() ? usage() : cmd_check(dir, experiments);
  }
  if (cmd == "gate") {
    return baselines.empty() ? usage() : cmd_gate(dir, baselines);
  }
  if (cmd == "baseline") {
    return out.empty() ? usage() : cmd_baseline(dir, out);
  }
  if (cmd == "diag") return cmd_diag(update, check);
  return usage();
}

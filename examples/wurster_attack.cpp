// The Wurster et al. instruction-cache attack, end to end (§I, §IX).
//
// Demonstrates the paper's central motivation:
//   1. a checksum-protected binary detects an ordinary static patch,
//   2. the same patch applied to the *fetch view only* sails straight past
//      every checksum (they read code through the data view),
//   3. Parallax detects it anyway, because its verification chains *execute*
//      the protected bytes as gadgets instead of reading them.
#include <cstdio>

#include "attack/wurster.h"
#include "baseline/checksum.h"
#include "cc/compile.h"
#include "parallax/protector.h"
#include "isa/x86/machine.h"

int main() {
  using namespace plx;

  const char* source = R"(
int mix(int a, int b) {
  int r = (a << 3) ^ b;
  r = r + (a & b);
  if (r < 0) r = -r;
  return r;
}
int helper(int x) { return mix(x, 77) + mix(x, 5); }
int main() {
  int acc = 0;
  for (int i = 0; i < 40; i++) {
    acc = (acc + helper(i)) & 0xffffff;
  }
  return acc & 0xff;
}
)";

  auto compiled = cc::compile(source);
  auto plain = parallax::layout_plain(compiled.value());
  x86::Machine ref(plain.value());
  const int expected = ref.run().exit_code;
  std::printf("pristine output: %d\n\n", expected);

  // The patch: make helper() return a constant.
  const std::vector<std::uint8_t> patch = {0xb8, 0x07, 0x00, 0x00, 0x00, 0xc3};

  // --- checksummed binary ----------------------------------------------------
  auto cs = baseline::protect_with_checksums(compiled.value());
  const std::uint32_t cs_victim = cs.value().image.find_symbol("helper")->vaddr;
  {
    img::Image statically = cs.value().image;
    for (std::size_t i = 0; i < patch.size(); ++i) {
      for (auto& sec : statically.sections) {
        if (sec.contains(cs_victim + i)) {
          sec.bytes[cs_victim + i - sec.vaddr] = patch[i];
        }
      }
    }
    x86::Machine m(statically);
    auto r = m.run();
    std::printf("checksummed + static patch:  exit=%d  %s\n", r.exit_code,
                r.exit_code == baseline::ChecksumProtected::kTamperExit
                    ? "(tamper response fired)"
                    : "");
  }
  {
    auto r = attack::run_with_icache_patch(cs.value().image, cs_victim, patch);
    std::printf("checksummed + icache patch:  exit=%d  %s\n", r.exit_code,
                (r.exit_code != baseline::ChecksumProtected::kTamperExit &&
                 r.exit_code != expected)
                    ? "<- ATTACK SUCCEEDED: checksums passed, behaviour changed"
                    : "");
  }

  // --- Parallax binary ------------------------------------------------------
  parallax::ProtectOptions opts;
  opts.verify_functions = {"mix"};
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);

  // Attack a gadget the chain actually executes, fetch-view only.
  const auto& chain = prot.value().chains.at("mix");
  std::uint32_t victim = 0;
  for (std::size_t i = 0; i < chain.gadget_slots.size(); ++i) {
    if (chain.gadget_slots[i].type == gadget::GType::AddRegReg) {
      victim = chain.gadget_addrs[i];
    }
  }
  {
    x86::Machine m(prot.value().image);
    bool ok = true;
    const std::uint8_t orig = m.read_u8(victim, ok);
    m.tamper_icache(victim, orig ^ 0x28);
    auto r = m.run(200'000'000);
    std::printf("parallax   + icache patch:   ");
    if (r.reason != vm::StopReason::Exited) {
      std::printf("crashed (%s) -> detected\n", r.fault.c_str());
    } else {
      std::printf("exit=%d (expected %d) -> %s\n", r.exit_code, expected,
                  r.exit_code == expected ? "NOT detected" : "detected");
    }
  }
  std::printf("\nwhy: the chain pops gadget addresses and *executes* the "
              "protected bytes; the fetch view is exactly what ROP sees.\n");
  return 0;
}

// plxtool — command-line front end for the Parallax toolchain.
//
//   plxtool compile     prog.c -o prog.plx      mini-C -> PLX image
//   plxtool protect     prog.c -o prog.plx      full Parallax pipeline
//            [--vf NAME] [--mode cleartext|xor|rc4|prob] [--variants N]
//            [--isa NAME] [--trace]             backend + timing table
//   plxtool protect-all                         batch-protect the corpus
//            [--mode MODE] [--seed N] [--threads N] [--out DIR]
//   plxtool run         prog.plx                execute in the VM
//   plxtool disasm      prog.plx [SYMBOL]       disassemble a function
//   plxtool gadgets     prog.plx                gadget census
//   plxtool coverage    prog.c                  Figure-6 protectability report
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "cc/compile.h"
#include "gadget/scanner.h"
#include "isa/arch.h"
#include "image/layout.h"
#include "parallax/batch.h"
#include "parallax/protector.h"
#include "rewrite/protectability.h"
#include "support/file_io.h"
#include "isa/x86/machine.h"
#include "isa/x86/format.h"

namespace {

using namespace plx;

int usage() {
  std::fprintf(stderr,
               "usage: plxtool <compile|protect|protect-all|run|disasm|gadgets|coverage> ...\n"
               "  compile     prog.c -o prog.plx\n"
               "  protect     prog.c -o prog.plx [--vf NAME] [--mode MODE] [--variants N]\n"
               "              [--isa NAME] [--trace]\n"
               "  protect-all [--mode MODE] [--seed N] [--threads N] [--out DIR]\n"
               "  run         prog.plx [--budget N]\n"
               "  disasm      prog.plx [SYMBOL]\n"
               "  gadgets     prog.plx\n"
               "  coverage    prog.c\n");
  return 2;
}

Result<img::Image> load_image(const std::string& path) {
  auto bytes = support::read_binary_file(path);
  if (!bytes) return std::move(bytes).take_error();
  return img::Image::deserialize(bytes.value());
}

// Validates an --isa argument against the backend registry; on failure
// prints the registered wire names so the user can see what exists.
bool check_isa(const std::string& name) {
  if (plx::isa::find_arch(name)) return true;
  std::string known;
  for (const auto& n : plx::isa::arch_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  std::fprintf(stderr, "unknown isa '%s' (registered: %s)\n", name.c_str(),
               known.c_str());
  return false;
}

bool parse_mode(const std::string& mode, parallax::Hardening& out) {
  if (mode == "cleartext") out = parallax::Hardening::Cleartext;
  else if (mode == "xor") out = parallax::Hardening::Xor;
  else if (mode == "rc4") out = parallax::Hardening::Rc4;
  else if (mode == "prob") out = parallax::Hardening::Probabilistic;
  else return false;
  return true;
}

// The `protect --trace` stage table; one row per executed pipeline stage.
void print_traces(const std::vector<parallax::StageTrace>& traces) {
  std::printf("  %-14s %9s %10s %10s  %s\n", "stage", "millis", "in_bytes",
              "out_bytes", "counters");
  double total = 0;
  for (const auto& t : traces) {
    total += t.millis;
    std::string counters;
    for (const auto& [k, v] : t.counters) {
      if (!counters.empty()) counters += ' ';
      counters += k + '=' + std::to_string(v);
    }
    std::printf("  %-14s %9.3f %10zu %10zu  %s\n", t.stage.c_str(), t.millis,
                t.input_bytes, t.output_bytes, counters.c_str());
    for (const auto& w : t.warnings) {
      std::printf("  %-14s warning: %s\n", "", w.c_str());
    }
  }
  std::printf("  %-14s %9.3f\n", "total", total);
}

int cmd_compile(int argc, char** argv) {
  std::string src_path, out_path = "a.plx";
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      src_path = argv[i];
    }
  }
  if (src_path.empty()) return usage();
  auto src = support::read_text_file(src_path);
  if (!src) {
    std::fprintf(stderr, "%s\n", src.error().c_str());
    return 1;
  }
  auto compiled = cc::compile(src.value());
  if (!compiled) {
    std::fprintf(stderr, "%s: %s\n", src_path.c_str(), compiled.error().c_str());
    return 1;
  }
  auto laid = img::layout(compiled.value().module);
  if (!laid) {
    std::fprintf(stderr, "layout: %s\n", laid.error().c_str());
    return 1;
  }
  const Buffer blob = laid.value().image.serialize();
  if (!support::write_binary_file(out_path, blob.span())) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu bytes, %zu symbols)\n", out_path.c_str(), blob.size(),
              laid.value().image.symbols.size());
  return 0;
}

int cmd_protect(int argc, char** argv) {
  std::string src_path, out_path = "a.plx", vf, mode = "cleartext";
  std::string isa_name = "x86";
  int variants = 4;
  bool trace = false;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-o") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--vf") && i + 1 < argc) {
      vf = argv[++i];
    } else if (!std::strcmp(argv[i], "--mode") && i + 1 < argc) {
      mode = argv[++i];
    } else if (!std::strcmp(argv[i], "--variants") && i + 1 < argc) {
      variants = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--isa") && i + 1 < argc) {
      isa_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace = true;
    } else {
      src_path = argv[i];
    }
  }
  if (src_path.empty()) return usage();
  if (!check_isa(isa_name)) return 2;
  auto src = support::read_text_file(src_path);
  if (!src) {
    std::fprintf(stderr, "%s\n", src.error().c_str());
    return 1;
  }
  auto compiled = cc::compile(src.value());
  if (!compiled) {
    std::fprintf(stderr, "%s: %s\n", src_path.c_str(), compiled.error().c_str());
    return 1;
  }

  parallax::ProtectOptions opts;
  opts.isa = isa_name;
  if (!vf.empty()) opts.verify_functions = {vf};
  if (!parse_mode(mode, opts.hardening)) {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  opts.variants = variants;

  // Auto-selection wants a profile; build one from the unprotected image.
  analysis::Profile profile;
  if (vf.empty()) {
    auto plain = parallax::layout_plain(compiled.value());
    if (!plain) {
      std::fprintf(stderr, "layout: %s\n", plain.error().c_str());
      return 1;
    }
    profile = analysis::profile_run(plain.value());
    opts.profile = &profile;
    opts.max_time_fraction = 0.05;
  }

  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  if (!prot) {
    std::fprintf(stderr, "protect: %s\n", prot.error().c_str());
    return 1;
  }
  const Buffer blob = prot.value().image.serialize();
  if (!support::write_binary_file(out_path, blob.span())) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s  [mode=%s]\n", out_path.c_str(),
              verify::hardening_name(opts.hardening));
  if (trace) print_traces(prot.value().traces);
  for (const auto& f : prot.value().chain_functions) {
    const auto& chain = prot.value().chains.at(f);
    std::printf("  chain %-16s %4zu words, %3zu gadget slots\n", f.c_str(),
                chain.words.size(), chain.gadget_slots.size());
  }
  std::printf("  gadgets: %zu total, %zu overlap protected code, %zu overlapping "
              "used by chains\n",
              prot.value().gadgets_total, prot.value().gadgets_overlapping,
              prot.value().used_gadgets_overlapping);
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 1) return usage();
  std::uint64_t budget = 2'000'000'000ull;
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], "--budget")) budget = std::strtoull(argv[i + 1], nullptr, 10);
  }
  auto image = load_image(argv[0]);
  if (!image) {
    std::fprintf(stderr, "%s\n", image.error().c_str());
    return 1;
  }
  x86::Machine m(image.value());
  auto r = m.run(budget);
  if (!m.output.empty()) std::fwrite(m.output.data(), 1, m.output.size(), stdout);
  switch (r.reason) {
    case vm::StopReason::Exited:
      std::printf("[exit %d after %llu instructions, %llu cycles]\n", r.exit_code,
                  static_cast<unsigned long long>(r.instructions),
                  static_cast<unsigned long long>(r.cycles));
      return 0;
    case vm::StopReason::Fault:
      std::printf("[FAULT at %08x: %s]\n", r.fault_eip, r.fault.c_str());
      return 1;
    default:
      std::printf("[budget exceeded]\n");
      return 1;
  }
}

int cmd_disasm(int argc, char** argv) {
  if (argc < 1) return usage();
  auto image = load_image(argv[0]);
  if (!image) {
    std::fprintf(stderr, "%s\n", image.error().c_str());
    return 1;
  }
  const std::string want = argc >= 2 ? argv[1] : "";
  bool any = false;
  for (const auto& sym : image.value().symbols) {
    if (!sym.is_func || sym.size == 0) continue;
    if (!want.empty() && sym.name != want) continue;
    any = true;
    std::printf("%08x <%s>:\n", sym.vaddr, sym.name.c_str());
    const auto bytes = image.value().read(sym.vaddr, sym.size);
    std::fputs(x86::disassemble(bytes, sym.vaddr).c_str(), stdout);
    std::printf("\n");
  }
  if (!any) {
    std::fprintf(stderr, "no function %s\n", want.c_str());
    return 1;
  }
  return 0;
}

int cmd_gadgets(int argc, char** argv) {
  if (argc < 1) return usage();
  auto image = load_image(argv[0]);
  if (!image) {
    std::fprintf(stderr, "%s\n", image.error().c_str());
    return 1;
  }
  const auto gadgets = gadget::scan(image.value());
  std::map<std::string, int> by_type;
  for (const auto& g : gadgets) ++by_type[gadget::gtype_name(g.type)];
  std::printf("%zu usable gadgets\n", gadgets.size());
  for (const auto& [type, count] : by_type) {
    std::printf("  %-16s %d\n", type.c_str(), count);
  }
  return 0;
}

// Batch-protect the whole evaluation corpus across the thread pool, writing
// PROTECT_<name>.json per workload (the protect_smoke ctest label validates
// these against the schema in bench/validate_protect_json).
int cmd_protect_all(int argc, char** argv) {
  std::string mode = "cleartext", out_dir = ".";
  std::uint64_t seed = 0x9a11a;
  unsigned threads = 0;
  for (int i = 0; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--mode") && i + 1 < argc) {
      mode = argv[++i];
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      return usage();
    }
  }
  parallax::Hardening hardening;
  if (!parse_mode(mode, hardening)) {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }

  const auto jobs = parallax::corpus_jobs(hardening, seed);
  const auto results = parallax::protect_batch(jobs, threads);

  int rc = 0;
  for (const auto& r : results) {
    if (r.ok) {
      std::printf("[%s] ok: %zu bytes, fnv64=%016llx, %zu chains (%zu words), "
                  "%.3f ms\n",
                  r.name.c_str(), r.image_bytes,
                  static_cast<unsigned long long>(r.image_fnv64), r.chains,
                  r.chain_words, r.millis_total);
    } else {
      std::fprintf(stderr, "[%s] FAILED (%s): %s\n", r.name.c_str(),
                   diag_code_name(r.error.code()), r.error.c_str());
      rc = 1;
    }
    if (!parallax::write_protect_json(r, out_dir)) {
      std::fprintf(stderr, "[%s] cannot write %s/PROTECT_%s.json\n",
                   r.name.c_str(), out_dir.c_str(), r.name.c_str());
      rc = 1;
    }
  }
  std::printf("protect-all: %zu workloads [mode=%s], reports in %s\n",
              results.size(), verify::hardening_name(hardening),
              out_dir.c_str());
  return rc;
}

int cmd_coverage(int argc, char** argv) {
  if (argc < 1) return usage();
  auto src = support::read_text_file(argv[0]);
  if (!src) {
    std::fprintf(stderr, "%s\n", src.error().c_str());
    return 1;
  }
  auto compiled = cc::compile(src.value());
  if (!compiled) {
    std::fprintf(stderr, "%s\n", compiled.error().c_str());
    return 1;
  }
  auto laid = img::layout(compiled.value().module);
  if (!laid) {
    std::fprintf(stderr, "%s\n", laid.error().c_str());
    return 1;
  }
  const auto report =
      rewrite::analyze_protectability(compiled.value().module, laid.value());
  std::printf("code bytes:        %u\n", report.code_bytes);
  std::printf("existing near-ret: %5.1f%%\n", 100 * report.fraction(rewrite::Rule::ExistingNear));
  std::printf("existing far-ret:  %5.1f%%\n", 100 * report.fraction(rewrite::Rule::ExistingFar));
  std::printf("immediate-mod:     %5.1f%%\n", 100 * report.fraction(rewrite::Rule::ImmediateMod));
  std::printf("jump/rearrange:    %5.1f%%\n", 100 * report.fraction(rewrite::Rule::JumpMod));
  std::printf("any rule:          %5.1f%%\n", 100 * report.fraction_any());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  argc -= 2;
  argv += 2;
  if (cmd == "compile") return cmd_compile(argc, argv);
  if (cmd == "protect") return cmd_protect(argc, argv);
  if (cmd == "protect-all") return cmd_protect_all(argc, argv);
  if (cmd == "run") return cmd_run(argc, argv);
  if (cmd == "disasm") return cmd_disasm(argc, argv);
  if (cmd == "gadgets") return cmd_gadgets(argc, argv);
  if (cmd == "coverage") return cmd_coverage(argc, argv);
  return usage();
}

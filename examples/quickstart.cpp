// Quickstart: protect a program with Parallax, run it, tamper with it.
//
//   $ ./examples/quickstart
//
// Walks the full public API: compile mini-C, protect with a function chain,
// execute in the VM, then show that a one-byte patch to a protected
// instruction breaks the program.
#include <cstdio>

#include "cc/compile.h"
#include "fuzz/targets.h"
#include "parallax/protector.h"
#include "isa/x86/machine.h"

int main() {
  using namespace plx;

  // 1. A program with an arithmetic helper worth protecting. The source
  //    lives in the fuzz target registry, so `plxfuzz --target quickstart`
  //    tamper-fuzzes exactly this program.
  const fuzz::Target* target = fuzz::find_target("quickstart");
  auto compiled = cc::compile(target->source);
  if (!compiled) {
    std::printf("compile error: %s\n", compiled.error().c_str());
    return 1;
  }

  // 2. Reference run (unprotected).
  auto plain = parallax::layout_plain(compiled.value());
  x86::Machine ref(plain.value());
  const auto ref_run = ref.run();
  std::printf("unprotected run:   exit=%d  (%llu cycles)\n", ref_run.exit_code,
              static_cast<unsigned long long>(ref_run.cycles));

  // 3. Protect: translate `checksum` into a ROP function chain whose gadgets
  //    overlap the program's instructions.
  parallax::ProtectOptions opts;
  opts.verify_functions = {"checksum"};
  parallax::Protector protector;
  auto prot = protector.protect(compiled.value(), opts);
  if (!prot) {
    std::printf("protect error: %s\n", prot.error().c_str());
    return 1;
  }
  std::printf("protected:         %zu gadgets in the image, %zu overlap protected "
              "code, chain uses %zu gadget slots\n",
              prot.value().gadgets_total, prot.value().gadgets_overlapping,
              prot.value().chains.at("checksum").gadget_slots.size());

  x86::Machine m(prot.value().image);
  const auto run = m.run();
  std::printf("protected run:     exit=%d  (%llu cycles)  -> %s\n", run.exit_code,
              static_cast<unsigned long long>(run.cycles),
              run.exit_code == ref_run.exit_code ? "same result" : "MISMATCH!");

  // 4. The attack: flip one byte of a gadget the chain uses.
  const std::uint32_t victim = prot.value().used_gadget_addrs[2];
  x86::Machine tampered(prot.value().image);
  bool ok = true;
  const std::uint8_t orig = tampered.read_u8(victim, ok);
  tampered.tamper(victim, orig ^ 0x28);
  const auto bad = tampered.run(100'000'000);
  std::printf("tampered run:      ");
  if (bad.reason != vm::StopReason::Exited) {
    std::printf("crashed (%s) -> tampering detected\n", bad.fault.c_str());
  } else if (bad.exit_code != ref_run.exit_code) {
    std::printf("exit=%d (expected %d) -> tampering detected\n", bad.exit_code,
                ref_run.exit_code);
  } else {
    std::printf("exit=%d -> tampering NOT detected\n", bad.exit_code);
  }
  return 0;
}

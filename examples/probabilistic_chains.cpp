// Probabilistically generated function chains (§V-B, Figure 4).
//
// Shows the machinery: the chain is never stored — index arrays over a
// random GF(2) basis regenerate a different-but-equivalent chain on every
// call, choosing a gadget variant per *word*. Prints the per-slot variant
// counts (the paper's prod |G_i| bound) and demonstrates two runs
// materialising different chain bytes with identical program output.
#include <cmath>
#include <cstdio>
#include <set>

#include "cc/compile.h"
#include "gadget/scanner.h"
#include "parallax/protector.h"
#include "ropc/chain.h"
#include "isa/x86/machine.h"

int main() {
  using namespace plx;

  const char* source = R"(
int scramble(int a, int b) {
  int r = (a + b) ^ (a << 4);
  r = r - (b >> 1);
  r = r | 1;
  if (r < 0) r = -r;
  return r;
}
int main() {
  int acc = 3;
  for (int i = 0; i < 25; i++) {
    acc = scramble(acc, i * 37) & 0xfffff;
  }
  return acc & 0xff;
}
)";

  auto compiled = cc::compile(source);
  auto plain = parallax::layout_plain(compiled.value());
  x86::Machine ref(plain.value());
  const int expected = ref.run().exit_code;

  parallax::ProtectOptions opts;
  opts.verify_functions = {"scramble"};
  opts.hardening = parallax::Hardening::Probabilistic;
  opts.variants = 4;
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  if (!prot) {
    std::printf("protect: %s\n", prot.error().c_str());
    return 1;
  }

  const auto& chain = prot.value().chains.at("scramble");
  std::printf("chain: %zu words, %zu gadget slots, compiled as %d variants\n",
              chain.words.size(), chain.gadget_slots.size(), opts.variants);

  // Per-slot alternative counts (variant space diagnostics).
  gadget::Catalog catalog(gadget::scan(prot.value().image));
  const auto counts = ropc::slot_candidate_counts(chain, catalog);
  std::size_t multi = 0;
  double log2_space = 0;
  for (std::size_t c : counts) {
    if (c > 1) {
      ++multi;
      log2_space += std::log2(static_cast<double>(c));
    }
  }
  std::printf("slots with alternatives: %zu/%zu  (log2 variant space ~ %.1f "
              "bits before the N=%d index-array cap)\n",
              multi, counts.size(), log2_space, opts.variants);

  // Two runs with different VM entropy: same output, different chains.
  const img::Symbol* exec_sym = prot.value().image.find_symbol("__plx_chain_scramble");
  auto run_and_snapshot = [&](std::uint64_t seed) {
    x86::Machine m(prot.value().image);
    m.rng = Rng(seed);
    std::vector<std::uint8_t> snap;
    bool taken = false;
    std::set<std::uint32_t> used(prot.value().used_gadget_addrs.begin(),
                                 prot.value().used_gadget_addrs.end());
    m.pre_insn_hook = [&](std::uint32_t eip) {
      if (!taken && used.contains(eip)) {
        taken = true;
        bool ok = true;
        for (std::uint32_t i = 0; i < exec_sym->size; ++i) {
          snap.push_back(m.read_u8(exec_sym->vaddr + i, ok));
        }
      }
    };
    auto r = m.run(500'000'000);
    std::printf("run(seed=%llu): exit=%d %s\n",
                static_cast<unsigned long long>(seed), r.exit_code,
                r.exit_code == expected ? "(correct)" : "(WRONG)");
    return snap;
  };
  const auto s1 = run_and_snapshot(11);
  const auto s2 = run_and_snapshot(22);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < s1.size() && i < s2.size(); ++i) {
    if (s1[i] != s2[i]) ++diff;
  }
  std::printf("materialised chains differ in %zu/%zu bytes across the two runs\n",
              diff, s1.size());
  std::printf("-> an attacker cannot rely on a fixed gadget subset being "
              "checked on any given execution (§V-B).\n");
  return 0;
}

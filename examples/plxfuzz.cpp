// plxfuzz — differential tamper-fuzzing CLI (src/fuzz).
//
//   $ ./examples/plxfuzz --target quickstart
//   $ ./examples/plxfuzz --all --smoke
//   $ ./examples/plxfuzz --target license --masks full --random 512
//
// Protects the named target, records its golden trace, then runs the
// exhaustive protected-byte sweep plus the seeded random campaign and writes
// FUZZ_<target>.json (schema checked by bench/validate_fuzz_json). Exits
// non-zero if any campaign produced an escape — a strict protected-byte
// mutant that was not DETECTED.
//
// Flags:
//   --target NAME     fuzz one target (built-ins: quickstart, ptrace,
//                     license; plus the workload corpus by name)
//   --source FILE     fuzz a mini-C source file instead of a named target
//                     (requires --vf for the verification function)
//   --vf NAME         verification function for --source targets
//   --all             fuzz every built-in target
//   --list            print addressable target names and exit
//   --seed N          campaign + protection seed (default 0x9a11a)
//   --smoke           quick masks {01,80,ff} and 64 random mutants (default)
//   --full            all 255 sweep masks and 512 random mutants
//   --random N        override the random-campaign size
//   --advisory        sweep advisory (woven transparent) ranges too
//   --hardening MODE  cleartext | xor | rc4 | probabilistic
//   --backend B       tamper (snapshot/restore, default) | patch (static
//                     image patch via src/attack + fresh VM per mutant) |
//                     adaptive (searching adversary, src/attack/adaptive;
//                     writes ADAPT_<name>.json instead of FUZZ_<name>.json)
//   --adapt-budget N  adaptive: candidate budget per strategy
//                     (default 64 smoke / 192 full)
//   --isa NAME        target backend from the isa::Arch registry
//                     (default x86)
//   --out DIR         report directory (default .)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "attack/adaptive/adaptive.h"
#include "attack/adaptive/report.h"
#include "fuzz/fuzz.h"
#include "fuzz/report.h"
#include "fuzz/targets.h"
#include "isa/arch.h"
#include "support/file_io.h"
#include "verify/stub.h"

namespace {

using namespace plx;

// Adaptive campaign: protect the target, then let the searching adversary
// (src/attack/adaptive) hunt for escapes with its three strategies. Writes
// ADAPT_<name>.json; exit 1 on any strict-byte escape, like fuzz_one.
int adapt_one(const fuzz::Target& target, const fuzz::CampaignOptions& opts,
              const attack::adaptive::AdaptiveOptions& aopts,
              parallax::Hardening mode, bool smoke,
              const std::string& out_dir, const std::string& isa_name) {
  const std::string& name = target.name;
  auto prot = fuzz::protect_target(target, mode, opts.seed, isa_name);
  if (!prot) {
    std::fprintf(stderr, "plxfuzz: %s\n", prot.error().c_str());
    return 2;
  }

  const auto res = attack::adaptive::run_adaptive(
      prot.value().image, prot.value().protected_ranges, aopts);
  if (!res.ok) {
    std::fprintf(stderr, "plxfuzz: %s: golden run did not exit cleanly\n",
                 name.c_str());
    return 2;
  }
  std::printf("[%s] golden: exit=%d, %llu instructions; %zu protected bytes "
              "(%zu strict), %zu gadgets\n",
              name.c_str(), res.golden.exit_code,
              static_cast<unsigned long long>(res.golden.instructions),
              res.protected_bytes, res.strict_bytes, res.gadgets_scanned);
  for (const auto& s : res.strategies) {
    std::printf("[%s] %-11s %zu candidates: %zu detected, %zu silent, "
                "%zu benign, %zu timeout -> %zu escape(s)\n",
                name.c_str(), s.strategy.c_str(), s.stats.total,
                s.stats.detected, s.stats.silent_corruption, s.stats.benign,
                s.stats.timeout, s.stats.escapes.size());
  }

  attack::adaptive::AdaptReport report;
  report.name = name;
  report.smoke = smoke;
  report.seed = aopts.seed;
  report.hardening = verify::hardening_name(mode);
  report.options = aopts;
  report.result = res;
  if (!attack::adaptive::write_adapt_json(report, out_dir)) {
    std::fprintf(stderr, "plxfuzz: cannot write %s/ADAPT_%s.json\n",
                 out_dir.c_str(), name.c_str());
    return 2;
  }
  std::printf("[%s] wrote %s/ADAPT_%s.json\n", name.c_str(), out_dir.c_str(),
              name.c_str());

  for (const auto& e : res.total.escapes) {
    std::fprintf(stderr, "[%s] ESCAPE @%08x (%s, %s): %s\n", name.c_str(),
                 e.mutation.addr, e.mutation.origin,
                 fuzz::outcome_name(e.outcome), e.detail.c_str());
  }
  return res.escape_count() ? 1 : 0;
}

int fuzz_one(const fuzz::Target& target, const fuzz::CampaignOptions& opts,
             parallax::Hardening mode, bool smoke, const std::string& out_dir,
             const std::string& isa_name) {
  const std::string& name = target.name;
  const auto t0 = std::chrono::steady_clock::now();
  auto prot = fuzz::protect_target(target, mode, opts.seed, isa_name);
  if (!prot) {
    std::fprintf(stderr, "plxfuzz: %s\n", prot.error().c_str());
    return 2;
  }

  fuzz::TamperFuzzer fuzzer(prot.value().image,
                            prot.value().protected_ranges);
  if (!fuzzer.ok()) {
    std::fprintf(stderr, "plxfuzz: %s: golden run did not exit cleanly\n",
                 name.c_str());
    return 2;
  }
  std::printf("[%s] golden: exit=%d, %llu instructions; %zu protected bytes "
              "(%zu strict)\n",
              name.c_str(), fuzzer.golden().exit_code,
              static_cast<unsigned long long>(fuzzer.golden().instructions),
              fuzzer.protected_bytes(), fuzzer.strict_bytes());

  const fuzz::CampaignStats sweep = fuzzer.sweep(opts);
  std::printf("[%s] sweep:  %zu mutants: %zu detected, %zu silent, %zu benign, "
              "%zu timeout -> %zu escape(s)\n",
              name.c_str(), sweep.total, sweep.detected,
              sweep.silent_corruption, sweep.benign, sweep.timeout,
              sweep.escapes.size());
  const fuzz::CampaignStats random = fuzzer.random(opts);
  std::printf("[%s] random: %zu mutants: %zu detected, %zu silent, %zu benign, "
              "%zu timeout -> %zu escape(s)\n",
              name.c_str(), random.total, random.detected,
              random.silent_corruption, random.benign, random.timeout,
              random.escapes.size());

  fuzz::FuzzReport report;
  report.name = name;
  report.smoke = smoke;
  report.seed = opts.seed;
  report.hardening = verify::hardening_name(mode);
  report.backend = opts.backend;
  report.golden = fuzzer.golden();
  report.protected_bytes = fuzzer.protected_bytes();
  report.strict_bytes = fuzzer.strict_bytes();
  report.sweep = sweep;
  report.random = random;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!fuzz::write_fuzz_json(report, out_dir)) {
    std::fprintf(stderr, "plxfuzz: cannot write %s/FUZZ_%s.json\n",
                 out_dir.c_str(), name.c_str());
    return 2;
  }
  std::printf("[%s] wrote %s/FUZZ_%s.json\n", name.c_str(), out_dir.c_str(),
              name.c_str());

  std::size_t escapes = sweep.escapes.size() + random.escapes.size();
  for (const auto& agg : {sweep, random}) {
    for (const auto& e : agg.escapes) {
      std::fprintf(stderr, "[%s] ESCAPE @%08x (%s, %s): %s\n", name.c_str(),
                   e.mutation.addr, e.mutation.origin,
                   fuzz::outcome_name(e.outcome), e.detail.c_str());
    }
  }
  return escapes ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  std::string source_path, source_vf;
  fuzz::CampaignOptions opts;
  parallax::Hardening mode = parallax::Hardening::Cleartext;
  std::string isa_name = "x86";
  bool smoke = true;
  int random_override = -1;
  int adapt_budget_override = -1;
  std::string out_dir = ".";

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "plxfuzz: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--target") {
      names.push_back(need("--target"));
    } else if (a == "--source") {
      source_path = need("--source");
    } else if (a == "--vf") {
      source_vf = need("--vf");
    } else if (a == "--all") {
      for (const auto& t : fuzz::builtin_targets()) names.push_back(t.name);
    } else if (a == "--list") {
      for (const auto& n : fuzz::target_names()) std::printf("%s\n", n.c_str());
      return 0;
    } else if (a == "--seed") {
      opts.seed = std::strtoull(need("--seed"), nullptr, 0);
    } else if (a == "--smoke") {
      smoke = true;
    } else if (a == "--full") {
      smoke = false;
      opts.sweep_masks = fuzz::all_masks();
      opts.random_mutants = 512;
    } else if (a == "--random") {
      random_override = std::atoi(need("--random"));
    } else if (a == "--advisory") {
      opts.include_advisory = true;
    } else if (a == "--masks") {
      const std::string m = need("--masks");
      if (m == "full") opts.sweep_masks = fuzz::all_masks();
      else if (m == "quick") opts.sweep_masks = {0x01, 0x80, 0xff};
      else {
        std::fprintf(stderr, "plxfuzz: --masks full|quick\n");
        return 2;
      }
    } else if (a == "--hardening") {
      const std::string h = need("--hardening");
      if (h == "cleartext") mode = parallax::Hardening::Cleartext;
      else if (h == "xor") mode = parallax::Hardening::Xor;
      else if (h == "rc4") mode = parallax::Hardening::Rc4;
      else if (h == "probabilistic") mode = parallax::Hardening::Probabilistic;
      else {
        std::fprintf(stderr,
                     "plxfuzz: --hardening cleartext|xor|rc4|probabilistic\n");
        return 2;
      }
    } else if (a == "--backend") {
      const std::string b = need("--backend");
      const auto parsed = fuzz::backend_from_name(b);
      if (!parsed) {
        std::string names;
        for (const auto& n : fuzz::backend_names()) {
          if (!names.empty()) names += "|";
          names += n;
        }
        std::fprintf(stderr, "plxfuzz: --backend %s\n", names.c_str());
        return 2;
      }
      opts.backend = *parsed;
    } else if (a == "--adapt-budget") {
      adapt_budget_override = std::atoi(need("--adapt-budget"));
    } else if (a == "--isa") {
      isa_name = need("--isa");
      if (!isa::find_arch(isa_name)) {
        std::string known;
        for (const auto& n : isa::arch_names()) {
          if (!known.empty()) known += ", ";
          known += n;
        }
        std::fprintf(stderr, "plxfuzz: unknown isa '%s' (registered: %s)\n",
                     isa_name.c_str(), known.c_str());
        return 2;
      }
    } else if (a == "--out") {
      out_dir = need("--out");
    } else {
      std::fprintf(stderr, "plxfuzz: unknown flag '%s'\n", a.c_str());
      return 2;
    }
  }
  if (smoke) opts.random_mutants = 64;
  if (random_override >= 0) opts.random_mutants = random_override;

  attack::adaptive::AdaptiveOptions aopts;
  aopts.seed = opts.seed;
  aopts.budget_per_strategy = smoke ? 64 : 192;
  if (adapt_budget_override >= 0) {
    aopts.budget_per_strategy = static_cast<std::size_t>(adapt_budget_override);
  }

  std::vector<fuzz::Target> targets;
  for (const auto& n : names) {
    const fuzz::Target* t = fuzz::find_target(n);
    if (!t) {
      std::fprintf(stderr, "plxfuzz: unknown target '%s' (try --list)\n",
                   n.c_str());
      return 2;
    }
    targets.push_back(*t);
  }
  if (!source_path.empty()) {
    if (source_vf.empty()) {
      std::fprintf(stderr, "plxfuzz: --source needs --vf NAME\n");
      return 2;
    }
    auto src = support::read_text_file(source_path);
    if (!src) {
      std::fprintf(stderr, "plxfuzz: %s\n", src.error().c_str());
      return 2;
    }
    // Report name: basename without extension (PROTECT-style naming).
    std::string stem = source_path;
    if (const auto slash = stem.find_last_of('/'); slash != std::string::npos)
      stem = stem.substr(slash + 1);
    if (const auto dot = stem.find_last_of('.'); dot != std::string::npos)
      stem = stem.substr(0, dot);
    targets.push_back(fuzz::Target{stem, std::move(src).take(), source_vf});
  }
  if (targets.empty()) {
    std::fprintf(stderr,
                 "usage: plxfuzz --target NAME | --source FILE --vf NAME | "
                 "--all [--seed N] [--smoke | "
                 "--full] [--random N] [--masks full|quick] [--advisory] "
                 "[--hardening MODE] [--backend tamper|patch|adaptive] "
                 "[--adapt-budget N] [--isa NAME] [--out DIR]\n");
    return 2;
  }

  int rc = 0;
  for (const auto& t : targets) {
    const int r = opts.backend == fuzz::Backend::Adaptive
                      ? adapt_one(t, opts, aopts, mode, smoke, out_dir, isa_name)
                      : fuzz_one(t, opts, mode, smoke, out_dir, isa_name);
    if (r > rc) rc = r;
  }
  return rc;
}

// plxtrace — record and inspect execution traces (DESIGN.md §13).
//
//   plxtrace record --target NAME [--hardening MODE] [--seed N] [--out DIR]
//                   [--window N] [--capacity N] [--budget N]
//       Protect a built-in target with tracing enabled (pipeline stage
//       spans), run it under the VM cycle-attribution profiler, and write
//       TRACE_<name>.json: a schema-v2 envelope whose "traceEvents" array is
//       Chrome Trace Event Format — the file loads directly in Perfetto /
//       about://tracing. The "vm" section splits guest cycles between app
//       code and chain machinery (gadgets, __plx stubs, rewritten chain
//       functions); app_cycles + chain_cycles equals the VM's total cycle
//       count exactly, and record fails if it does not.
//   plxtrace export --in FILE [--out FILE]
//       Extract the bare Chrome trace ({"traceEvents": [...]}) from a
//       TRACE_*.json, for tools that reject unknown top-level keys.
//   plxtrace top --in FILE [--limit N]
//       Span table (count / total / max, hottest first) plus the VM
//       attribution and per-chain summaries.
//   plxtrace diff --a FILE --b FILE
//       Side-by-side span totals and VM attribution of two trace files.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/targets.h"
#include "isa/x86/machine.h"
#include "parallax/traceview.h"
#include "support/file_io.h"
#include "support/minijson.h"
#include "telemetry/trace.h"
#include "vm/vmtrace.h"

namespace {

using namespace plx;

int usage() {
  std::fprintf(
      stderr,
      "usage: plxtrace record --target NAME [--hardening MODE] [--seed N]\n"
      "                       [--out DIR] [--window N] [--capacity N] [--budget N]\n"
      "       plxtrace export --in FILE [--out FILE]\n"
      "       plxtrace top    --in FILE [--limit N]\n"
      "       plxtrace diff   --a FILE --b FILE\n");
  return 2;
}

int fatal(const std::string& what) {
  std::fprintf(stderr, "plxtrace: %s\n", what.c_str());
  return 1;
}

// --- record ----------------------------------------------------------------

int cmd_record(const std::string& target_name, parallax::Hardening mode,
               std::uint64_t seed, const std::string& out_dir,
               std::uint64_t window, std::size_t capacity,
               std::uint64_t budget) {
#if !PLX_TRACE_ENABLED
  return fatal("tracing is compiled out (build with -DPLX_TRACE=ON to record)");
#endif
  const fuzz::Target* target = fuzz::find_target(target_name);
  if (!target) {
    std::string names;
    for (const auto& n : fuzz::target_names()) names += " " + n;
    return fatal("unknown target '" + target_name + "'; have:" + names);
  }

  telemetry::Tracer& tracer = telemetry::Tracer::instance();
  tracer.enable(capacity);

  auto prot = fuzz::protect_target(*target, mode, seed);
  if (!prot) {
    tracer.disable();
    return fatal(prot.error().str());
  }

  vm::ExecutionProfiler profiler(parallax::chain_code_regions(prot.value()),
                                 window);
  x86::Machine machine(prot.value().image);
  profiler.attach(machine);
  {
    telemetry::TraceSpan run_span("vm", "run");
    machine.run(budget);
  }
  profiler.finish();
  profiler.emit_counters(tracer);
  tracer.disable();

  const auto& result = machine.result();
  const auto& totals = profiler.totals();
  if (totals.cycles() != result.cycles) {
    // The RetireObserver contract (vm/vm.h) guarantees exactness; a
    // mismatch is a profiler bug, not a measurement artifact.
    return fatal("attribution mismatch: app+chain cycles " +
                 std::to_string(totals.cycles()) + " != vm total " +
                 std::to_string(result.cycles));
  }

  const auto chains = vm::per_chain_profiles(
      profiler, parallax::chain_gadget_map(prot.value()));

  const std::string path = out_dir + "/TRACE_" + target_name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  vm::write_trace_json(out, target_name, tracer.snapshot(), &profiler, chains);
  if (!out) return fatal("cannot write '" + path + "'");

  std::printf("plxtrace: wrote %s\n", path.c_str());
  std::printf("  guest: %llu instructions, %llu cycles (%s)\n",
              static_cast<unsigned long long>(result.instructions),
              static_cast<unsigned long long>(result.cycles),
              result.reason == vm::StopReason::Exited ? "exited" : "stopped");
  std::printf("  app:   %llu cycles   chain: %llu cycles (%.2f%%)\n",
              static_cast<unsigned long long>(totals.app_cycles),
              static_cast<unsigned long long>(totals.chain_cycles),
              result.cycles
                  ? 100.0 * static_cast<double>(totals.chain_cycles) /
                        static_cast<double>(result.cycles)
                  : 0.0);
  std::printf("  rets:  %llu total, %llu in chain code; %zu timeline windows\n",
              static_cast<unsigned long long>(totals.rets),
              static_cast<unsigned long long>(totals.chain_rets),
              profiler.windows().size());
  for (const auto& c : chains) {
    std::printf("  chain %-20s %llu cycles over %zu gadgets\n", c.name.c_str(),
                static_cast<unsigned long long>(c.cycles), c.gadgets.size());
  }
  if (tracer.dropped() != 0) {
    std::printf("  note: ring overflowed, %llu oldest events dropped "
                "(raise --capacity)\n",
                static_cast<unsigned long long>(tracer.dropped()));
  }
  return 0;
}

// --- shared readers --------------------------------------------------------

bool read_file(const std::string& path, std::string& text, std::string& why) {
  auto data = support::read_text_file(path);
  if (!data) {
    why = data.error().str();
    return false;
  }
  text = std::move(data).value();
  return true;
}

bool parse_trace(const std::string& path, minijson::Value& root,
                 std::string& why) {
  std::string text;
  if (!read_file(path, text, why)) return false;
  minijson::Parser parser(std::move(text));
  if (!parser.parse(root)) {
    why = path + ": " + parser.error();
    return false;
  }
  if (!root.object()) {
    why = path + ": root is not an object";
    return false;
  }
  return true;
}

// Span rollup re-read from the "spans" section's flat keys
// (<name>_count/_total_us/_max_us).
struct SpanRow {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t max_us = 0;
};

std::vector<SpanRow> span_rows(const minijson::Object& root) {
  std::vector<SpanRow> rows;
  const auto it = root.find("spans");
  if (it == root.end() || !it->second.object()) return rows;
  auto row = [&](const std::string& name) -> SpanRow& {
    for (auto& r : rows)
      if (r.name == name) return r;
    rows.push_back(SpanRow{name, 0, 0, 0});
    return rows.back();
  };
  for (const auto& [k, v] : *it->second.object()) {
    if (!v.is_number()) continue;
    const auto val = static_cast<std::uint64_t>(v.number());
    auto ends_with = [&](const char* suffix) {
      const std::size_t n = std::strlen(suffix);
      return k.size() > n && k.compare(k.size() - n, n, suffix) == 0;
    };
    if (ends_with("_count")) row(k.substr(0, k.size() - 6)).count = val;
    else if (ends_with("_total_us")) row(k.substr(0, k.size() - 9)).total_us = val;
    else if (ends_with("_max_us")) row(k.substr(0, k.size() - 7)).max_us = val;
  }
  std::sort(rows.begin(), rows.end(), [](const SpanRow& a, const SpanRow& b) {
    if (a.total_us != b.total_us) return a.total_us > b.total_us;
    return a.name < b.name;
  });
  return rows;
}

std::uint64_t vm_metric(const minijson::Object& root, const char* key) {
  const auto it = root.find("vm");
  if (it == root.end() || !it->second.object()) return 0;
  const auto* vm_obj = it->second.object();
  const auto m = vm_obj->find(key);
  return (m != vm_obj->end() && m->second.is_number())
             ? static_cast<std::uint64_t>(m->second.number())
             : 0;
}

// --- export ----------------------------------------------------------------

// Slices the balanced "traceEvents" array out of the original text, so the
// exported bytes are exactly what record wrote (no reparse/reserialize).
bool slice_trace_events(const std::string& text, std::string& out) {
  const std::string key = "\"traceEvents\":";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) return false;
  std::size_t i = text.find('[', at);
  if (i == std::string::npos) return false;
  int depth = 0;
  bool in_string = false;
  for (std::size_t j = i; j < text.size(); ++j) {
    const char c = text[j];
    if (in_string) {
      if (c == '\\') ++j;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '[') ++depth;
    else if (c == ']' && --depth == 0) {
      out = text.substr(i, j - i + 1);
      return true;
    }
  }
  return false;
}

int cmd_export(const std::string& in_path, const std::string& out_path) {
  std::string text, why;
  if (!read_file(in_path, text, why)) return fatal(why);
  std::string events;
  if (!slice_trace_events(text, events))
    return fatal(in_path + ": no traceEvents array");
  const std::string doc = "{\"traceEvents\": " + events + "}\n";
  if (out_path.empty() || out_path == "-") {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << doc;
  if (!out) return fatal("cannot write '" + out_path + "'");
  std::printf("plxtrace: wrote %s\n", out_path.c_str());
  return 0;
}

// --- top / diff ------------------------------------------------------------

void print_vm_summary(const minijson::Object& root) {
  if (root.find("vm") == root.end()) return;
  const std::uint64_t cycles = vm_metric(root, "cycles");
  const std::uint64_t chain = vm_metric(root, "chain_cycles");
  std::printf("vm: %llu cycles, %llu app + %llu chain (%.2f%% chain), "
              "%llu rets (%llu chain)\n",
              static_cast<unsigned long long>(cycles),
              static_cast<unsigned long long>(vm_metric(root, "app_cycles")),
              static_cast<unsigned long long>(chain),
              cycles ? 100.0 * static_cast<double>(chain) /
                           static_cast<double>(cycles)
                     : 0.0,
              static_cast<unsigned long long>(vm_metric(root, "rets")),
              static_cast<unsigned long long>(vm_metric(root, "chain_rets")));
}

int cmd_top(const std::string& in_path, std::size_t limit) {
  minijson::Value root;
  std::string why;
  if (!parse_trace(in_path, root, why)) return fatal(why);
  const minijson::Object& obj = *root.object();
  print_vm_summary(obj);
  const auto it = obj.find("chains");
  if (it != obj.end() && it->second.object()) {
    for (const auto& [k, v] : *it->second.object()) {
      if (v.is_number() && k.size() > 7 &&
          k.compare(k.size() - 7, 7, "_cycles") == 0) {
        std::printf("chain %-24s %llu cycles\n",
                    k.substr(0, k.size() - 7).c_str(),
                    static_cast<unsigned long long>(v.number()));
      }
    }
  }
  const auto rows = span_rows(obj);
  if (rows.empty()) {
    std::printf("(no spans)\n");
    return 0;
  }
  std::printf("%-40s %8s %12s %12s\n", "span", "count", "total_us", "max_us");
  std::size_t shown = 0;
  for (const auto& r : rows) {
    if (limit && shown++ >= limit) break;
    std::printf("%-40s %8llu %12llu %12llu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.count),
                static_cast<unsigned long long>(r.total_us),
                static_cast<unsigned long long>(r.max_us));
  }
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  minijson::Value a_root, b_root;
  std::string why;
  if (!parse_trace(a_path, a_root, why)) return fatal(why);
  if (!parse_trace(b_path, b_root, why)) return fatal(why);
  const minijson::Object& a = *a_root.object();
  const minijson::Object& b = *b_root.object();

  for (const char* key : {"cycles", "app_cycles", "chain_cycles", "rets"}) {
    const std::uint64_t va = vm_metric(a, key), vb = vm_metric(b, key);
    if (va || vb) {
      std::printf("vm/%-14s %14llu -> %-14llu (%+lld)\n", key,
                  static_cast<unsigned long long>(va),
                  static_cast<unsigned long long>(vb),
                  static_cast<long long>(vb) - static_cast<long long>(va));
    }
  }

  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> merged;
  for (const auto& r : span_rows(a)) merged[r.name].first = r.total_us;
  for (const auto& r : span_rows(b)) merged[r.name].second = r.total_us;
  if (!merged.empty())
    std::printf("%-40s %12s %12s %12s\n", "span", "a_us", "b_us", "delta_us");
  for (const auto& [name, us] : merged) {
    std::printf("%-40s %12llu %12llu %+12lld\n", name.c_str(),
                static_cast<unsigned long long>(us.first),
                static_cast<unsigned long long>(us.second),
                static_cast<long long>(us.second) -
                    static_cast<long long>(us.first));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  std::string target = "quickstart", out_dir = ".", in_path, out_path;
  std::string a_path, b_path;
  parallax::Hardening mode = parallax::Hardening::Cleartext;
  std::uint64_t seed = 0x9a11a, window = 4096, budget = 100'000'000;
  std::size_t capacity = 1u << 16, limit = 0;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "plxtrace: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--target") target = need("--target");
    else if (arg == "--out") out_path = out_dir = need("--out");
    else if (arg == "--in") in_path = need("--in");
    else if (arg == "--a") a_path = need("--a");
    else if (arg == "--b") b_path = need("--b");
    else if (arg == "--seed") seed = std::strtoull(need("--seed").c_str(), nullptr, 0);
    else if (arg == "--window") window = std::strtoull(need("--window").c_str(), nullptr, 0);
    else if (arg == "--budget") budget = std::strtoull(need("--budget").c_str(), nullptr, 0);
    else if (arg == "--capacity") capacity = std::strtoull(need("--capacity").c_str(), nullptr, 0);
    else if (arg == "--limit") limit = std::strtoull(need("--limit").c_str(), nullptr, 0);
    else if (arg == "--hardening") {
      const std::string h = need("--hardening");
      if (h == "cleartext") mode = parallax::Hardening::Cleartext;
      else if (h == "xor") mode = parallax::Hardening::Xor;
      else if (h == "rc4") mode = parallax::Hardening::Rc4;
      else if (h == "probabilistic") mode = parallax::Hardening::Probabilistic;
      else {
        std::fprintf(stderr,
                     "plxtrace: --hardening cleartext|xor|rc4|probabilistic\n");
        return 2;
      }
    } else {
      return usage();
    }
  }

  if (cmd == "record")
    return cmd_record(target, mode, seed, out_dir, window, capacity, budget);
  if (cmd == "export") {
    if (in_path.empty()) return usage();
    return cmd_export(in_path, out_path);
  }
  if (cmd == "top") {
    if (in_path.empty()) return usage();
    return cmd_top(in_path, limit);
  }
  if (cmd == "diff") {
    if (a_path.empty() || b_path.empty()) return usage();
    return cmd_diff(a_path, b_path);
  }
  return usage();
}

// The paper's running example (§IV-A, Listings 1 and 2): a ptrace-based
// debugger detector, the nop-out attack against it, and Parallax protection.
//
// This is the exact scenario the paper motivates: anti-debugging code is
// NON-DETERMINISTIC (its behaviour depends on a syscall result), so
// oblivious hashing cannot protect it — Parallax can.
#include <cstdio>

#include "attack/patcher.h"
#include "cc/compile.h"
#include "fuzz/targets.h"
#include "parallax/protector.h"
#include "isa/x86/machine.h"
#include "isa/x86/format.h"

int main() {
  using namespace plx;

  // The detector source lives in the fuzz target registry, so
  // `plxfuzz --target ptrace` tamper-fuzzes exactly this program.
  const fuzz::Target* target = fuzz::find_target("ptrace");
  auto compiled = cc::compile(target->source);
  auto plain = parallax::layout_plain(compiled.value());

  // Show the detector's disassembly, Listing-1 style.
  {
    const img::Symbol* f = plain.value().find_symbol("check_ptrace");
    const auto bytes = plain.value().read(f->vaddr, std::min(f->size, 48u));
    std::printf("--- check_ptrace (first bytes, unprotected) ---\n%s\n",
                x86::disassemble(bytes, f->vaddr).c_str());
  }

  // Clean run vs debugged run.
  {
    x86::Machine clean(plain.value());
    std::printf("no debugger:            exit=%d\n", clean.run().exit_code);
    x86::Machine debugged(plain.value());
    debugged.debugger_attached = true;
    std::printf("debugger attached:      exit=%d  (66 = detector fired)\n",
                debugged.run().exit_code);
  }

  // Listing 2: the attacker nops out the detector branch in main.
  {
    img::Image cracked = plain.value();
    auto jcc = attack::find_jcc(cracked, "main", x86::condid(x86::Cond::E));
    attack::nop_jcc(cracked, *jcc);
    // je nopped: execution now falls into the 'return 66' path regardless...
    // in this codegen the je guards the detected branch, so the attacker
    // actually wants it always-taken:
    img::Image cracked2 = plain.value();
    attack::make_jcc_unconditional(cracked2, *jcc);
    x86::Machine m(cracked2);
    m.debugger_attached = true;
    std::printf("cracked, debugger on:   exit=%d  (attack %s on the "
                "unprotected binary)\n",
                m.run().exit_code,
                m.result().exit_code != 66 ? "SUCCEEDS" : "fails");
  }

  // Now protect with Parallax. mix() becomes the verification chain;
  // check_ptrace and main host overlapping gadgets.
  parallax::ProtectOptions opts;
  opts.verify_functions = {"mix"};
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  if (!prot) {
    std::printf("protect: %s\n", prot.error().c_str());
    return 1;
  }
  {
    x86::Machine m(prot.value().image);
    std::printf("protected, clean:       exit=%d\n", m.run().exit_code);
  }

  // The same crack against the protected binary: if the patched bytes host a
  // chain gadget, the verification code malfunctions.
  {
    img::Image cracked = prot.value().image;
    auto jcc = attack::find_jcc(cracked, "main", x86::condid(x86::Cond::E));
    bool hit_gadget = false;
    for (std::uint32_t a : prot.value().used_gadget_addrs) {
      if (a >= *jcc && a < *jcc + 6) hit_gadget = true;
    }
    attack::make_jcc_unconditional(cracked, *jcc);
    x86::Machine m(cracked);
    m.debugger_attached = true;
    auto r = m.run(100'000'000);
    std::printf("protected + cracked:    ");
    if (r.reason != vm::StopReason::Exited) {
      std::printf("crashed (%s) -> crack broke the verification chain\n",
                  r.fault.c_str());
    } else {
      std::printf("exit=%d (patch %s a used gadget)\n", r.exit_code,
                  hit_gadget ? "destroyed" : "missed");
    }
  }
  std::printf("\nnote: oblivious hashing cannot protect check_ptrace at all — "
              "its state depends on the ptrace syscall (see bench_attacks).\n");
  return 0;
}

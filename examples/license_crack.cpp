// Software-cracking scenario (the paper's static-patching threat): an
// attacker patches every byte of a license check, one at a time, and we
// measure how often the crack survives on the unprotected vs the protected
// binary. This is the "large-scale software cracking" defense of §III made
// concrete.
#include <cstdio>
#include <set>

#include "attack/patcher.h"
#include "cc/compile.h"
#include "gadget/scanner.h"
#include "parallax/protector.h"
#include "isa/x86/machine.h"

int main() {
  using namespace plx;

  const char* source = R"(
int serial = 0;
int mix(int a, int b) {
  int r = (a << 3) ^ b;
  r = r + (a & b);
  if (r < 0) r = -r;
  return r;
}
int check_license(int key) {
  int h = 17;
  for (int i = 0; i < 8; i++) {
    h = mix(h, key + i);
  }
  serial = h;
  if (h != 1234) return 0;
  return 1;
}
int main() {
  if (check_license(999)) return 42;     // unlocked
  return serial & 0x3f;                  // denied (output depends on mix!)
}
)";

  auto compiled = cc::compile(source);
  auto plain = parallax::layout_plain(compiled.value());
  x86::Machine ref(plain.value());
  const int denied = ref.run().exit_code;
  std::printf("unprotected denied-path exit: %d\n", denied);

  parallax::ProtectOptions opts;
  opts.verify_functions = {"mix"};
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  if (!prot) {
    std::printf("protect: %s\n", prot.error().c_str());
    return 1;
  }

  // Gadget bytes the chain actually executes inside the two target functions.
  std::set<std::uint32_t> hot_bytes;
  {
    gadget::Catalog catalog(gadget::scan(prot.value().image));
    std::set<std::uint32_t> used(prot.value().used_gadget_addrs.begin(),
                                 prot.value().used_gadget_addrs.end());
    for (const auto& g : catalog.all()) {
      if (!used.contains(g.addr)) continue;
      for (std::uint32_t a = g.addr; a < g.end(); ++a) hot_bytes.insert(a);
    }
  }

  // Brute-force cracker: try single-byte patches over check_license and main
  // hunting for exit==42 without a correct key.
  auto crack_rate = [&](const img::Image& image, const char* label,
                        int* unlocks_on_gadget) {
    int attempts = 0, unlocked = 0, broke = 0;
    for (const char* func : {"check_license", "main"}) {
      const img::Symbol* sym = image.find_symbol(func);
      for (std::uint32_t off = 0; off < sym->size; ++off) {
        for (std::uint8_t patch : {std::uint8_t{0x90}, std::uint8_t{0xeb}}) {
          img::Image patched = image;
          attack::patch_bytes(patched, sym->vaddr + off, {&patch, 1});
          x86::Machine m(patched);
          auto r = m.run(20'000'000);
          ++attempts;
          if (r.reason == vm::StopReason::Exited && r.exit_code == 42) {
            ++unlocked;
            if (unlocks_on_gadget && hot_bytes.contains(sym->vaddr + off)) {
              ++*unlocks_on_gadget;
            }
          } else if (r.reason != vm::StopReason::Exited || r.exit_code != denied) {
            ++broke;
          }
        }
      }
    }
    std::printf("%-12s %5d patch attempts: %3d unlock, %4d break/crash, %4d "
                "no effect\n",
                label, attempts, unlocked, broke, attempts - unlocked - broke);
    return unlocked;
  };

  const int u0 = crack_rate(plain.value(), "unprotected", nullptr);
  int on_gadget = 0;
  const int u1 = crack_rate(prot.value().image, "parallax", &on_gadget);
  std::printf("\ncracks that unlock: unprotected=%d, parallax=%d "
              "(of which %d landed on chain-gadget bytes)\n",
              u0, u1, on_gadget);
  std::printf(
      "surviving unlocks fall into the two §VIII-C escape classes: patches in\n"
      "bytes no gadget overlaps (condition 1 -- shrink with more chains,\n"
      "weaving and §IV-B crafting), and control-flow bypasses that jump over\n"
      "the check so the verification chain never executes at all -- which is\n"
      "why §VII-B insists verification code be functionality the program\n"
      "cannot run without (this toy check is trivially skippable).\n");
  return 0;
}

// Execution tracing: nestable spans, instant/counter events, and a
// Chrome-trace-event exporter (DESIGN.md §13).
//
// The telemetry Registry (telemetry.h) answers "how much"; this layer
// answers "when and where": every recorded event carries a timestamp, a
// thread id and an optional argument list, and the whole buffer exports as
// Trace Event Format JSON that loads directly in Perfetto / about://tracing.
// Four producers are instrumented out of the box: the protection pipeline
// (one span per stage per job), the thread pool (one span per task, with
// queue-wait attribution), the tamper-fuzzing campaigns (progress heartbeat
// events) and the VM cycle-attribution profiler (vm/vmtrace.h, which emits
// counter events on the deterministic guest-cycle timebase).
//
// Cost model, from cold to hot:
//
//   compiled out   the CMake option PLX_TRACE=OFF removes the instrumentation
//                  macros AND the VM retire-observer hook at preprocessing
//                  time: the hot paths are byte-identical to the pre-trace
//                  code. The library API below still compiles (tools keep
//                  building); it just never receives events.
//   disabled       (default at runtime) every macro checks one relaxed
//                  atomic load and bails; no allocation, no lock.
//   enabled        events go into a fixed-capacity ring buffer under a
//                  mutex, overwriting the oldest on overflow (dropped() says
//                  how many). Span begin/end bookkeeping is thread-local and
//                  lock-free; only the final end-of-span record takes the
//                  lock.
//
// Determinism: event ids and thread ids are assigned in first-record order,
// and the clock is injectable (set_clock_for_test), so tests pin the
// exporter output byte for byte.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

// Compile-time master switch. The build passes PLX_TRACE=1 (CMake option,
// default ON); PLX_TRACE=OFF builds define nothing and every PLX_TRACE_*
// macro below compiles to void.
#if defined(PLX_TRACE) && PLX_TRACE
#define PLX_TRACE_ENABLED 1
#else
#define PLX_TRACE_ENABLED 0
#endif

namespace plx::telemetry {

enum class TracePhase : std::uint8_t {
  Complete,  // Chrome "X": name + ts + dur (a finished span)
  Instant,   // Chrome "i": point event (heartbeats, marks)
  Counter,   // Chrome "C": sampled value (ret density, cache hits)
};

struct TraceEvent {
  std::string name;
  std::string cat;          // Chrome category; also the producer's section
  TracePhase phase = TracePhase::Instant;
  std::uint64_t id = 0;     // record-order id, deterministic
  std::uint64_t ts_ns = 0;  // start (Complete) or occurrence time
  std::uint64_t dur_ns = 0; // Complete only
  std::uint32_t tid = 0;    // dense id in first-record order
  std::uint32_t pid = 1;    // 1 = host wall-clock, 2 = VM virtual cycles
  double value = 0;         // Counter only
  std::vector<std::pair<std::string, std::string>> args;
};

// Process-wide collector. All members are safe to call from any thread.
class Tracer {
 public:
  static Tracer& instance();

  // Turns collection on with a fresh buffer of `capacity` events. Calling
  // enable() while enabled resets the buffer (events, ids, thread ids).
  void enable(std::size_t capacity = 1u << 16);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Record one event. `e.id`, `e.tid` and (when zero) `e.ts_ns` are filled
  // in by the collector; everything else is the caller's. No-op while
  // disabled.
  void record(TraceEvent e);

  // Convenience emitters (no-ops while disabled).
  void instant(const char* cat, std::string name,
               std::vector<std::pair<std::string, std::string>> args = {});
  void counter(const char* cat, std::string name, double value,
               std::uint64_t ts_ns = 0, std::uint32_t pid = 1);

  // Chronological (oldest-first) copy of the buffer. Events are returned in
  // record order, which is also non-decreasing ts order per thread.
  std::vector<TraceEvent> snapshot() const;

  std::uint64_t recorded() const;  // total record() calls while enabled
  std::uint64_t dropped() const;   // events overwritten by ring wrap

  // Test hook: replaces the timestamp source (nullptr restores the steady
  // clock). With a fixed clock the exporter output is byte-stable.
  using ClockFn = std::uint64_t (*)();
  void set_clock_for_test(ClockFn fn);
  std::uint64_t now_ns() const;

 private:
  Tracer() = default;

  std::uint32_t thread_id_locked();  // caller holds mu_

  std::atomic<bool> enabled_{false};
  std::atomic<ClockFn> clock_{nullptr};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // next overwrite position once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_id_ = 1;
  std::vector<std::pair<std::thread::id, std::uint32_t>> tids_;
};

// RAII span. Opens on construction (when tracing is enabled), records one
// Complete event on destruction. Spans nest per thread and MUST close in
// LIFO order: destroying a span while a younger span on the same thread is
// still open aborts the process — a misuse diagnostic, like the Result
// accessors (support/error.h), active in every build type.
class TraceSpan {
 public:
  TraceSpan(const char* cat, std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attach a key/value argument (shows under the span in Perfetto).
  void arg(std::string key, std::string value);
  void arg(std::string key, std::uint64_t value);

  bool active() const { return active_; }

 private:
  bool active_ = false;
  std::size_t depth_ = 0;  // this span's 1-based position in the open stack
};

// Explicit begin/end pair for callers that cannot scope a destructor (the
// thread-pool task wrapper moves the open span across a lambda). The token
// returned by begin must be passed to exactly one end, in LIFO order per
// thread; end aborts on out-of-order closes.
struct SpanToken {
  std::uint64_t start_ns = 0;
  std::size_t depth = 0;
  bool active = false;
};
SpanToken begin_span(const char* cat, const std::string& name);
void end_span(SpanToken token, const char* cat, const std::string& name,
              std::vector<std::pair<std::string, std::string>> args = {});

// Number of spans currently open on the calling thread (tests).
std::size_t open_spans_on_this_thread();

// --- export ----------------------------------------------------------------

// Context block written next to the events; also the envelope "host"
// section's source of truth (report.h).
struct TraceMeta {
  unsigned threads = 0;        // hardware threads visible to the process
  bool plx_trace = false;      // compiled with PLX_TRACE?
  std::string git_describe;    // build's `git describe` (or "unknown")
};
TraceMeta current_trace_meta();

// Writes the "traceEvents" array (Chrome Trace Event Format, JSON object
// form) plus process-name metadata records into an already-open JSON object.
// `w` must be positioned inside the root object; the function emits exactly
// one "traceEvents" member. Timestamps are exported in microseconds
// relative to the earliest event, so traces from any clock origin align at
// t=0 in Perfetto.
class JsonWriter;
void write_trace_events(JsonWriter& w, const std::vector<TraceEvent>& events);

// Aggregated per-name span statistics (the `plxtrace top` / `diff` tables).
struct SpanStat {
  std::string name;  // "cat/name"
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};
std::vector<SpanStat> aggregate_spans(const std::vector<TraceEvent>& events);

}  // namespace plx::telemetry

// --- instrumentation macros ------------------------------------------------
//
// The only API the instrumented subsystems use. With PLX_TRACE off they
// expand to nothing, so instrumented code carries zero overhead and zero
// link-time dependency on the tracer state.
#if PLX_TRACE_ENABLED
#define PLX_TRACE_CONCAT2(a, b) a##b
#define PLX_TRACE_CONCAT(a, b) PLX_TRACE_CONCAT2(a, b)
// One RAII span for the enclosing scope.
#define PLX_TRACE_SPAN(cat, name) \
  ::plx::telemetry::TraceSpan PLX_TRACE_CONCAT(plx_span_, __LINE__)(cat, name)
// Named span variable, for attaching args: PLX_TRACE_SPAN_VAR(s, "c", "n");
// if (s.active()) s.arg("k", v);
#define PLX_TRACE_SPAN_VAR(var, cat, name) \
  ::plx::telemetry::TraceSpan var(cat, name)
#define PLX_TRACE_INSTANT(cat, name, ...) \
  ::plx::telemetry::Tracer::instance().instant(cat, name, ##__VA_ARGS__)
#define PLX_TRACE_COUNTER(cat, name, value) \
  ::plx::telemetry::Tracer::instance().counter(cat, name, value)
#define PLX_TRACE_ACTIVE() ::plx::telemetry::Tracer::instance().enabled()
#else
#define PLX_TRACE_SPAN(cat, name) \
  do {                            \
  } while (false)
#define PLX_TRACE_SPAN_VAR(var, cat, name) \
  ::plx::telemetry::TraceSpan var(cat, name)
#define PLX_TRACE_INSTANT(cat, name, ...) \
  do {                                    \
  } while (false)
#define PLX_TRACE_COUNTER(cat, name, value) \
  do {                                      \
  } while (false)
#define PLX_TRACE_ACTIVE() false
#endif

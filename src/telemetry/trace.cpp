#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "telemetry/report.h"

namespace plx::telemetry {

namespace {

// Per-thread open-span stack. TraceSpan and SpanToken both index into this;
// the entries own the span's identity and pending arguments so the RAII
// object itself stays two words and trivially movable across inlining.
struct OpenEntry {
  const char* cat = "";
  std::string name;
  std::uint64_t start_ns = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

thread_local std::vector<OpenEntry> t_open_spans;

[[noreturn]] void die_unbalanced(const char* what, const std::string& name,
                                 std::size_t depth, std::size_t open) {
  std::fprintf(stderr,
               "plx trace: %s of span \"%s\" out of LIFO order "
               "(span depth %zu, %zu spans open on this thread)\n",
               what, name.c_str(), depth, open);
  std::abort();
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::enable(std::size_t capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
  head_ = 0;
  recorded_ = 0;
  dropped_ = 0;
  next_id_ = 1;
  tids_.clear();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

std::uint32_t Tracer::thread_id_locked() {
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& [id, dense] : tids_)
    if (id == self) return dense;
  const auto dense = static_cast<std::uint32_t>(tids_.size() + 1);
  tids_.emplace_back(self, dense);
  return dense;
}

void Tracer::record(TraceEvent e) {
  if (!enabled()) return;
  if (e.ts_ns == 0 && e.pid == 1) e.ts_ns = now_ns();
  std::lock_guard<std::mutex> lk(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  e.id = next_id_++;
  if (e.tid == 0) e.tid = e.pid == 1 ? thread_id_locked() : 1;
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[head_] = std::move(e);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

void Tracer::instant(const char* cat, std::string name,
                     std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.phase = TracePhase::Instant;
  e.args = std::move(args);
  record(std::move(e));
}

void Tracer::counter(const char* cat, std::string name, double value,
                     std::uint64_t ts_ns, std::uint32_t pid) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.phase = TracePhase::Counter;
  e.value = value;
  e.ts_ns = ts_ns;
  e.pid = pid;
  record(std::move(e));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || head_ == 0) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return recorded_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void Tracer::set_clock_for_test(ClockFn fn) {
  clock_.store(fn, std::memory_order_release);
}

std::uint64_t Tracer::now_ns() const {
  if (ClockFn fn = clock_.load(std::memory_order_acquire)) return fn();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- spans ------------------------------------------------------------------

TraceSpan::TraceSpan(const char* cat, std::string name) {
  Tracer& tr = Tracer::instance();
  if (!tr.enabled()) return;
  OpenEntry e;
  e.cat = cat;
  e.name = std::move(name);
  e.start_ns = tr.now_ns();
  t_open_spans.push_back(std::move(e));
  depth_ = t_open_spans.size();
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  if (t_open_spans.size() != depth_)
    die_unbalanced("close", t_open_spans.empty() ? "?" : t_open_spans.back().name,
                   depth_, t_open_spans.size());
  OpenEntry e = std::move(t_open_spans.back());
  t_open_spans.pop_back();
  Tracer& tr = Tracer::instance();
  TraceEvent ev;
  ev.name = std::move(e.name);
  ev.cat = e.cat;
  ev.phase = TracePhase::Complete;
  ev.ts_ns = e.start_ns;
  const std::uint64_t now = tr.now_ns();
  ev.dur_ns = now > e.start_ns ? now - e.start_ns : 0;
  ev.args = std::move(e.args);
  tr.record(std::move(ev));
}

void TraceSpan::arg(std::string key, std::string value) {
  if (!active_) return;
  t_open_spans[depth_ - 1].args.emplace_back(std::move(key), std::move(value));
}

void TraceSpan::arg(std::string key, std::uint64_t value) {
  arg(std::move(key), std::to_string(value));
}

SpanToken begin_span(const char* cat, const std::string& name) {
  SpanToken tok;
  Tracer& tr = Tracer::instance();
  if (!tr.enabled()) return tok;
  OpenEntry e;
  e.cat = cat;
  e.name = name;
  e.start_ns = tr.now_ns();
  tok.start_ns = e.start_ns;
  t_open_spans.push_back(std::move(e));
  tok.depth = t_open_spans.size();
  tok.active = true;
  return tok;
}

void end_span(SpanToken token, const char* cat, const std::string& name,
              std::vector<std::pair<std::string, std::string>> args) {
  if (!token.active) return;
  if (t_open_spans.size() != token.depth)
    die_unbalanced("end", name, token.depth, t_open_spans.size());
  t_open_spans.pop_back();
  Tracer& tr = Tracer::instance();
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.phase = TracePhase::Complete;
  ev.ts_ns = token.start_ns;
  const std::uint64_t now = tr.now_ns();
  ev.dur_ns = now > token.start_ns ? now - token.start_ns : 0;
  ev.args = std::move(args);
  tr.record(std::move(ev));
}

std::size_t open_spans_on_this_thread() { return t_open_spans.size(); }

// --- export ----------------------------------------------------------------

TraceMeta current_trace_meta() {
  TraceMeta m;
  m.threads = std::thread::hardware_concurrency();
  m.plx_trace = PLX_TRACE_ENABLED != 0;
#ifdef PLX_GIT_DESCRIBE
  m.git_describe = PLX_GIT_DESCRIBE;
#else
  m.git_describe = "unknown";
#endif
  return m;
}

namespace {

// Microseconds with sub-µs remainder rendered as a trimmed decimal fraction:
// integer-only formatting keeps the exporter byte-stable across platforms
// (no double rounding in sight).
std::string us_string(std::uint64_t ns) {
  const std::uint64_t us = ns / 1000;
  std::uint64_t rem = ns % 1000;
  std::string s = std::to_string(us);
  if (rem != 0) {
    char frac[8];
    std::snprintf(frac, sizeof frac, ".%03llu",
                  static_cast<unsigned long long>(rem));
    std::string f = frac;
    while (f.back() == '0') f.pop_back();
    s += f;
  }
  return s;
}

std::string json_number(double v) {
  // Counter values are doubles; format with enough digits to round-trip and
  // trim the noise so output stays canonical.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  double parsed = std::strtod(buf, nullptr);
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == parsed) return shorter;
  }
  return buf;
}

void write_one_event(JsonWriter& w, const TraceEvent& e, std::uint64_t t0) {
  w.begin_object();
  w.field_str("name", e.name);
  w.field_str("cat", e.cat);
  const char* ph = e.phase == TracePhase::Complete ? "X"
                   : e.phase == TracePhase::Counter ? "C"
                                                    : "i";
  w.field_str("ph", ph);
  w.field_raw("ts", us_string(e.ts_ns >= t0 ? e.ts_ns - t0 : 0));
  if (e.phase == TracePhase::Complete) w.field_raw("dur", us_string(e.dur_ns));
  if (e.phase == TracePhase::Instant) w.field_str("s", "t");
  w.field_int("pid", static_cast<int>(e.pid));
  w.field_int("tid", static_cast<int>(e.tid));
  if (e.phase == TracePhase::Counter) {
    w.begin_object("args");
    w.field_raw("value", json_number(e.value));
    w.end_object();
  } else if (!e.args.empty()) {
    w.begin_object("args");
    for (const auto& [k, v] : e.args) w.field_str(k, v);
    w.end_object();
  }
  w.end_object();
}

void write_process_meta(JsonWriter& w, int pid, const char* name) {
  w.begin_object();
  w.field_str("name", "process_name");
  w.field_str("ph", "M");
  w.field_int("pid", pid);
  w.field_int("tid", 0);
  w.begin_object("args");
  w.field_str("name", name);
  w.end_object();
  w.end_object();
}

}  // namespace

void write_trace_events(JsonWriter& w, const std::vector<TraceEvent>& events) {
  // Rebase each pid onto its own origin: pid 1 runs on the host wall clock,
  // pid 2 on the VM's virtual cycle timebase; neither origin is meaningful
  // to the other, and rebasing aligns both tracks at t=0 in Perfetto.
  std::uint64_t t0_host = UINT64_MAX, t0_vm = UINT64_MAX;
  bool have_vm = false;
  for (const auto& e : events) {
    if (e.pid == 2) {
      have_vm = true;
      t0_vm = std::min(t0_vm, e.ts_ns);
    } else {
      t0_host = std::min(t0_host, e.ts_ns);
    }
  }
  if (t0_host == UINT64_MAX) t0_host = 0;
  if (t0_vm == UINT64_MAX) t0_vm = 0;

  w.begin_array("traceEvents");
  write_process_meta(w, 1, "host");
  if (have_vm) write_process_meta(w, 2, "vm (virtual cycles)");
  for (const auto& e : events)
    write_one_event(w, e, e.pid == 2 ? t0_vm : t0_host);
  w.end_array();
}

std::vector<SpanStat> aggregate_spans(const std::vector<TraceEvent>& events) {
  std::vector<SpanStat> stats;
  for (const auto& e : events) {
    if (e.phase != TracePhase::Complete) continue;
    const std::string key = std::string(e.cat) + "/" + e.name;
    SpanStat* s = nullptr;
    for (auto& st : stats)
      if (st.name == key) {
        s = &st;
        break;
      }
    if (!s) {
      stats.push_back(SpanStat{key, 0, 0, 0});
      s = &stats.back();
    }
    ++s->count;
    s->total_ns += e.dur_ns;
    s->max_ns = std::max(s->max_ns, e.dur_ns);
  }
  std::sort(stats.begin(), stats.end(), [](const SpanStat& a, const SpanStat& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.name < b.name;
  });
  return stats;
}

}  // namespace plx::telemetry

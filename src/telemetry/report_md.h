// Markdown report generation from measured report artifacts (DESIGN.md §12).
//
// `plxreport` aggregates every BENCH_/FUZZ_/PROTECT_<name>.json in a
// directory into the measured tables of EXPERIMENTS.md. Each table is one
// *block*, delimited by HTML-comment markers that name the block, its
// source artifact and the schema version:
//
//   <!-- plxreport:begin fig5a source=BENCH_chain_slowdown.json schema=2 -->
//   ...generated markdown (annotation line + table)...
//   <!-- plxreport:end fig5a -->
//
// EXPERIMENTS.md embeds these blocks between hand-written narrative;
// `plxreport update` splices freshly rendered blocks over the marked
// regions and `plxreport check` (the perf_gate ctest label) fails when the
// committed text differs byte-for-byte from what the artifacts say. Paper
// reference values are renderer constants — they are transcription, not
// measurement; everything measured comes from the artifacts.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/minijson.h"

namespace plx::telemetry {

// Parsed report artifacts, keyed by file name (BENCH_overhead.json, ...).
struct Artifacts {
  std::map<std::string, minijson::Value> files;

  const minijson::Object* find(const std::string& file) const;
};

// Parse every report artifact (BENCH_/FUZZ_/PROTECT_*.json) in `dir`.
// Files that fail to parse or whose schema_version is not
// telemetry::kSchemaVersion are an error (the artifact set must be
// regenerated as one coherent run, never mixed across schema versions).
Result<Artifacts> load_artifacts(const std::string& dir);

struct Block {
  std::string id;    // "fig5a", "fuzz", ...
  std::string text;  // full block incl. begin/end marker lines, '\n'-terminated
};

// Render every block whose source artifacts are present, in canonical order
// (fig6, fig5a, fig5b, uchains, attacks, fuzz, protect).
std::vector<Block> render_blocks(const Artifacts& artifacts);

// All blocks joined with blank lines — `plxreport render` output.
std::string render_report(const Artifacts& artifacts);

// Splice `blocks` over the marked regions of `text` (an EXPERIMENTS.md).
// Fails if a begin marker lacks its end, names a block that was not
// rendered, or a rendered block has no markers in `text` — the committed
// document and the artifact set must describe the same experiments.
Result<std::string> splice_blocks(const std::string& text,
                                  const std::vector<Block>& blocks);

// Ids of marked blocks in `text` whose content differs from `blocks`
// (byte-for-byte). Sets `error` and returns empty on malformed markers.
std::vector<std::string> stale_blocks(const std::string& text,
                                      const std::vector<Block>& blocks,
                                      std::string& error);

// The Diag error-code reference table (README.md "Diagnostic codes"),
// generated from PLX_DIAG_CODE_LIST in support/error.h and kept in sync by
// tests/test_docs.cpp. Same marker convention, id "diag-codes".
std::string render_diag_table();

}  // namespace plx::telemetry

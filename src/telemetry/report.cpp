#include "telemetry/report.h"

#include "support/json.h"
#include "telemetry/schema.h"
#include "telemetry/trace.h"

namespace plx::telemetry {

void JsonWriter::indent() {
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::open_value(const std::string* key) {
  if (!stack_.empty()) {
    if (!stack_.back().first) out_ << ',';
    stack_.back().first = false;
    indent();
  }
  if (key) out_ << '"' << json::escape(*key) << "\": ";
}

void JsonWriter::begin_object() {
  open_value(nullptr);
  out_ << '{';
  stack_.push_back({/*array=*/false, /*first=*/true});
}

void JsonWriter::begin_object(const std::string& key) {
  open_value(&key);
  out_ << '{';
  stack_.push_back({/*array=*/false, /*first=*/true});
}

void JsonWriter::end_object() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ << '}';
  if (stack_.empty()) out_ << '\n';
}

void JsonWriter::begin_array(const std::string& key) {
  open_value(&key);
  out_ << '[';
  stack_.push_back({/*array=*/true, /*first=*/true});
}

void JsonWriter::end_array() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) indent();
  out_ << ']';
}

void JsonWriter::value_str(const std::string& value) {
  open_value(nullptr);
  out_ << '"' << json::escape(value) << '"';
}

void JsonWriter::field_str(const std::string& key, const std::string& value) {
  open_value(&key);
  out_ << '"' << json::escape(value) << '"';
}

void JsonWriter::field_num(const std::string& key, double value) {
  open_value(&key);
  out_ << json::num(value);
}

void JsonWriter::field_u64(const std::string& key, std::uint64_t value) {
  open_value(&key);
  out_ << value;
}

void JsonWriter::field_int(const std::string& key, int value) {
  open_value(&key);
  out_ << value;
}

void JsonWriter::field_bool(const std::string& key, bool value) {
  open_value(&key);
  out_ << (value ? "true" : "false");
}

void JsonWriter::field_raw(const std::string& key, const std::string& json) {
  open_value(&key);
  out_ << json;
}

void write_envelope(JsonWriter& w, const char* tool, const std::string& name) {
  w.begin_object();
  w.field_str("tool", tool);
  w.field_str("name", name);
  w.field_str(tool, name);  // legacy pre-v2 key ("bench"/"fuzz"/"protect")
  w.field_int("schema_version", kSchemaVersion);
  // Build/machine context (schema.h): informational, never gated.
  const TraceMeta meta = current_trace_meta();
  w.begin_object("host");
  w.field_u64("threads", meta.threads);
  w.field_bool("plx_trace", meta.plx_trace);
  w.field_str("git_describe", meta.git_describe);
  w.end_object();
}

void write_counters(JsonWriter& w, const std::string& key, const Registry& r,
                    const std::string& prefix) {
  w.begin_object(key);
  for (const auto& [k, v] : r.counters(prefix)) w.field_u64(k, v);
  w.end_object();
}

void write_timers(JsonWriter& w, const std::string& key, const Registry& r,
                  const std::string& prefix) {
  w.begin_object(key);
  // The "_seconds" suffix both names the unit and marks the metric as
  // wall-clock so the regression gate's timing exclusion applies to every
  // timer, whatever its registry name.
  for (const auto& [k, v] : r.timers(prefix)) w.field_num(k + "_seconds", v);
  w.end_object();
}

void write_gauges(JsonWriter& w, const std::string& key, const Registry& r,
                  const std::string& prefix) {
  w.begin_object(key);
  for (const auto& [k, v] : r.gauges(prefix)) w.field_num(k, v);
  w.end_object();
}

void write_distributions(JsonWriter& w, const std::string& key,
                         const Registry& r, const std::string& prefix) {
  w.begin_object(key);
  for (const auto& [k, d] : r.distributions(prefix)) {
    w.begin_object(k);
    w.field_u64("count", d.count);
    w.field_num("min", d.min);
    w.field_num("max", d.max);
    w.field_num("sum", d.sum);
    w.field_num("mean", d.mean());
    w.end_object();
  }
  w.end_object();
}

}  // namespace plx::telemetry

// Regression comparator: current report artifacts vs tracked baselines
// (bench/baselines/BASELINE_<name>.json). Used by `plxreport gate` / the
// perf_gate ctest label; unit-tested in tests/test_report.cpp.
//
// A baseline pins a set of metrics, each with a per-metric tolerance:
//
//   tolerance 0     exact match. Used for every deterministic metric —
//                   VM cycle counts, figure values derived from them,
//                   fuzz outcome counts, chain/gadget totals, image
//                   digests. The VM's cycle model is deterministic, so any
//                   deviation is a real behaviour change, not noise.
//   tolerance t>0   relative band: |current - baseline| <= t * |baseline|.
//                   Used for host wall-clock throughput (instructions/sec,
//                   bytes/sec), gated at ±30% by default.
//
// Metric names are '/'-joined JSON paths into the artifact ("figures/...",
// "throughput/vm_instructions_per_sec", "totals/chains"); string-valued
// metrics (e.g. protect's "image_fnv64") compare exactly. Metrics present
// in the artifact but not in the baseline never fail the gate — adding
// instrumentation must not require touching every baseline — but a metric
// pinned by the baseline and missing from the artifact does.
#pragma once

#include <string>
#include <vector>

#include "support/minijson.h"

namespace plx::telemetry {

// One gatable metric extracted from (or pinned by) a report.
struct Metric {
  std::string name;
  bool is_string = false;
  double value = 0;
  std::string text;        // string metrics only
  double tolerance = 0;    // relative; 0 = exact
};

// Flatten an artifact into its gatable metrics with default tolerances:
// numeric leaves of top-level objects ('/'-joined paths) plus top-level
// numerics and the string "image_fnv64" digest. Pure timing keys (seconds /
// millis / wall) and the envelope are excluded; *_per_sec rates get
// kDefaultThroughputTolerance, everything else is exact. Arrays are skipped.
// A rate whose sibling measurement window ("vm_run_seconds" for vm_* rates,
// "scanner_scan_seconds" for scanner_* rates) is under
// kMinRateWindowSeconds is noise, not a measurement, and is not pinned.
std::vector<Metric> gatable_metrics(const minijson::Object& artifact);

inline constexpr double kDefaultThroughputTolerance = 0.30;
inline constexpr double kMinRateWindowSeconds = 0.5;

enum class Verdict {
  Pass,
  OutOfTolerance,   // numeric deviation beyond the allowed band
  ValueMismatch,    // string metric differs
  MissingMetric,    // pinned by the baseline, absent from the artifact
};

const char* verdict_name(Verdict v);

struct MetricCheck {
  Metric baseline;
  double current = 0;        // numeric metrics, when present
  std::string current_text;  // string metrics, when present
  Verdict verdict = Verdict::Pass;
  bool ok() const { return verdict == Verdict::Pass; }
};

struct GateResult {
  std::string artifact;       // artifact file name (e.g. BENCH_overhead.json)
  std::string baseline_name;  // expected baseline file name
  bool baseline_missing = false;  // warning, not a failure
  std::string error;              // malformed baseline/artifact; a failure
  std::vector<MetricCheck> checks;

  std::size_t failures() const;
  bool ok() const { return error.empty() && failures() == 0; }
};

// Compare one artifact against one parsed baseline. The baseline's
// schema_version must equal telemetry::kSchemaVersion and its "metrics"
// object must be well-formed, else GateResult::error is set.
GateResult compare_artifact(const std::string& artifact_name,
                            const minijson::Object& artifact,
                            const minijson::Object& baseline);

// Expected baseline file name for a report artifact file name:
//   BENCH_overhead.json    -> BASELINE_overhead.json
//   FUZZ_quickstart.json   -> BASELINE_fuzz_quickstart.json
//   PROTECT_miniwget.json  -> BASELINE_protect_miniwget.json
//   ADAPT_quickstart.json  -> BASELINE_adapt_quickstart.json
// Returns "" for file names that are not report artifacts.
std::string baseline_file_for(const std::string& artifact_file);

// Render a BASELINE_<name>.json for an artifact (schema-v2 envelope, one
// "metrics" entry per gatable metric). `source` names the artifact file.
std::string render_baseline(const std::string& name, const std::string& source,
                            const minijson::Object& artifact);

}  // namespace plx::telemetry

#include "telemetry/telemetry.h"

#include <chrono>

namespace plx::telemetry {

Registry& Registry::operator=(const Registry& other) {
  if (this == &other) return *this;
  // Lock both sides in address order to keep copies deadlock-free.
  const Registry* first = this < &other ? this : &other;
  const Registry* second = this < &other ? &other : this;
  std::scoped_lock lock(first->mu_, second->mu_);
  counters_ = other.counters_;
  timers_ = other.timers_;
  gauges_ = other.gauges_;
  dists_ = other.dists_;
  return *this;
}

template <typename T>
T& Registry::slot(Series<T>& series, const std::string& name) {
  for (auto& [k, v] : series) {
    if (k == name) return v;
  }
  series.emplace_back(name, T{});
  return series.back().second;
}

template <typename T>
Registry::Series<T> Registry::filtered(const Series<T>& series,
                                       const std::string& prefix) {
  if (prefix.empty()) return series;
  Series<T> out;
  for (const auto& [k, v] : series) {
    if (k.size() >= prefix.size() && k.compare(0, prefix.size(), prefix) == 0) {
      out.emplace_back(k.substr(prefix.size()), v);
    }
  }
  return out;
}

void Registry::add(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  slot(counters_, name) += delta;
}

void Registry::add_seconds(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  slot(timers_, name) += seconds;
}

void Registry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  slot(gauges_, name) = value;
}

void Registry::record(const std::string& name, double sample) {
  std::lock_guard<std::mutex> lock(mu_);
  slot(dists_, name).record(sample);
}

std::uint64_t Registry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : counters_) {
    if (k == name) return v;
  }
  return 0;
}

double Registry::timer_seconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : timers_) {
    if (k == name) return v;
  }
  return 0;
}

double Registry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : gauges_) {
    if (k == name) return v;
  }
  return 0;
}

Distribution Registry::distribution(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : dists_) {
    if (k == name) return v;
  }
  return {};
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  return filtered(counters_, prefix);
}

std::vector<std::pair<std::string, double>> Registry::timers(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  return filtered(timers_, prefix);
}

std::vector<std::pair<std::string, double>> Registry::gauges(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  return filtered(gauges_, prefix);
}

std::vector<std::pair<std::string, Distribution>> Registry::distributions(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  return filtered(dists_, prefix);
}

void Registry::merge(const Registry& other) {
  if (this == &other) return;
  const Registry snapshot = other;  // avoid holding both locks while merging
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : snapshot.counters_) slot(counters_, k) += v;
  for (const auto& [k, v] : snapshot.timers_) slot(timers_, k) += v;
  for (const auto& [k, v] : snapshot.gauges_) slot(gauges_, k) = v;
  for (const auto& [k, v] : snapshot.dists_) {
    Distribution& d = slot(dists_, k);
    if (v.count == 0) continue;
    if (d.count == 0) {
      d = v;
    } else {
      if (v.min < d.min) d.min = v.min;
      if (v.max > d.max) d.max = v.max;
      d.sum += v.sum;
      d.count += v.count;
    }
  }
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && timers_.empty() && gauges_.empty() &&
         dists_.empty();
}

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ScopedTimer::ScopedTimer(Registry& registry, std::string name)
    : registry_(registry), name_(std::move(name)), start_ns_(now_ns()) {}

double ScopedTimer::seconds() const {
  return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

ScopedTimer::~ScopedTimer() { registry_.add_seconds(name_, seconds()); }

}  // namespace plx::telemetry

#include "telemetry/compare.h"

#include <cmath>
#include <sstream>

#include "telemetry/report.h"
#include "telemetry/schema.h"

namespace plx::telemetry {

namespace {

// Pure wall-clock timings are not gated: the throughput rates (which carry
// a tolerance band) already summarize them, and raw seconds vary run to run.
bool excluded_path(const std::string& path) {
  return path.find("seconds") != std::string::npos ||
         path.find("millis") != std::string::npos ||
         path.find("wall") != std::string::npos;
}

double default_tolerance(const std::string& path) {
  const std::string suffix = "_per_sec";
  if (path.size() >= suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return kDefaultThroughputTolerance;
  }
  return 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// A "<stem>_..._per_sec" rate is only a measurement if its sibling window
// ("<stem>..._seconds", e.g. vm_run_seconds for vm_* rates) is long enough;
// a rate over a near-zero window is host-scheduler noise and is not pinned.
bool rate_window_too_small(const minijson::Object& siblings,
                           const std::string& rate_key) {
  const std::string stem = rate_key.substr(0, rate_key.find('_'));
  for (const auto& [k, v] : siblings) {
    if (k.rfind(stem, 0) == 0 && ends_with(k, "_seconds") && v.is_number()) {
      return v.number() < kMinRateWindowSeconds;
    }
  }
  return false;  // no window sibling: pin as usual
}

void flatten(const std::string& path, const minijson::Value& v,
             std::vector<Metric>& out) {
  if (v.is_number()) {
    if (excluded_path(path)) return;
    out.push_back({path, /*is_string=*/false, v.number(), "",
                   default_tolerance(path)});
    return;
  }
  if (v.is_string()) {
    // The only gated string metric: the serialized-image digest, the
    // strongest whole-pipeline determinism check a protect report carries.
    if (path == "image_fnv64") {
      out.push_back(
          {path, /*is_string=*/true, 0, std::get<std::string>(v.v), 0});
    }
    return;
  }
  if (const minijson::Object* obj = v.object()) {
    for (const auto& [k, sub] : *obj) {
      if (ends_with(k, "_per_sec") && sub.is_number() &&
          rate_window_too_small(*obj, k)) {
        continue;
      }
      flatten(path.empty() ? k : path + "/" + k, sub, out);
    }
  }
  // Arrays (stage traces, escape lists) are intentionally not gated.
}

const minijson::Value* find_path(const minijson::Object& root,
                                 const std::string& path) {
  const minijson::Object* obj = &root;
  std::size_t begin = 0;
  for (;;) {
    // Flat sections store '/'-bearing names as single keys (the bench
    // "pipeline" object holds "chain-compile/chain_words" literally), so
    // the whole remaining path is tried as a key before descending.
    auto whole = obj->find(path.substr(begin));
    if (whole != obj->end()) return &whole->second;
    const std::size_t slash = path.find('/', begin);
    if (slash == std::string::npos) return nullptr;
    auto it = obj->find(path.substr(begin, slash - begin));
    if (it == obj->end()) return nullptr;
    obj = it->second.object();
    if (!obj) return nullptr;
    begin = slash + 1;
  }
}

}  // namespace

std::vector<Metric> gatable_metrics(const minijson::Object& artifact) {
  std::vector<Metric> out;
  for (const auto& [k, v] : artifact) {
    // "host" is the build/machine context (telemetry/schema.h): it explains
    // divergence and must never be pinned into a baseline, or regenerating
    // on a different machine would gate on its thread count.
    if (k == "schema_version" || k == "seed" || k == "host") continue;
    flatten(k, v, out);
  }
  return out;
}

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Pass: return "pass";
    case Verdict::OutOfTolerance: return "out-of-tolerance";
    case Verdict::ValueMismatch: return "value-mismatch";
    case Verdict::MissingMetric: return "missing-metric";
  }
  return "unknown";
}

std::size_t GateResult::failures() const {
  std::size_t n = 0;
  for (const auto& c : checks) {
    if (!c.ok()) ++n;
  }
  return n;
}

GateResult compare_artifact(const std::string& artifact_name,
                            const minijson::Object& artifact,
                            const minijson::Object& baseline) {
  GateResult result;
  result.artifact = artifact_name;
  result.baseline_name = baseline_file_for(artifact_name);

  auto ver = baseline.find("schema_version");
  if (ver == baseline.end() || !ver->second.is_number() ||
      ver->second.number() != static_cast<double>(kSchemaVersion)) {
    std::ostringstream os;
    os << "baseline schema_version is not " << kSchemaVersion
       << " (regenerate with `plxreport baseline`)";
    result.error = os.str();
    return result;
  }
  auto metrics = baseline.find("metrics");
  const minijson::Object* mobj =
      metrics == baseline.end() ? nullptr : metrics->second.object();
  if (!mobj) {
    result.error = "baseline has no \"metrics\" object";
    return result;
  }

  for (const auto& [name, spec] : *mobj) {
    const minijson::Object* so = spec.object();
    if (!so) {
      result.error = "metric \"" + name + "\" is not an object";
      return result;
    }
    MetricCheck check;
    check.baseline.name = name;
    auto tol = so->find("tolerance");
    check.baseline.tolerance =
        (tol != so->end() && tol->second.is_number()) ? tol->second.number()
                                                      : 0;
    auto text = so->find("text");
    auto value = so->find("value");
    if (text != so->end() && text->second.is_string()) {
      check.baseline.is_string = true;
      check.baseline.text = std::get<std::string>(text->second.v);
    } else if (value != so->end() && value->second.is_number()) {
      check.baseline.value = value->second.number();
    } else {
      result.error = "metric \"" + name + "\" has neither value nor text";
      return result;
    }

    const minijson::Value* cur = find_path(artifact, name);
    if (check.baseline.is_string) {
      if (!cur || !cur->is_string()) {
        check.verdict = Verdict::MissingMetric;
      } else {
        check.current_text = std::get<std::string>(cur->v);
        check.verdict = check.current_text == check.baseline.text
                            ? Verdict::Pass
                            : Verdict::ValueMismatch;
      }
    } else {
      if (!cur || !cur->is_number()) {
        check.verdict = Verdict::MissingMetric;
      } else {
        check.current = cur->number();
        const double base = check.baseline.value;
        const double band = check.baseline.tolerance * std::fabs(base);
        check.verdict = std::fabs(check.current - base) <= band
                            ? Verdict::Pass
                            : Verdict::OutOfTolerance;
      }
    }
    result.checks.push_back(std::move(check));
  }
  return result;
}

std::string baseline_file_for(const std::string& artifact_file) {
  const std::string ext = ".json";
  if (artifact_file.size() <= ext.size() ||
      artifact_file.compare(artifact_file.size() - ext.size(), ext.size(),
                            ext) != 0) {
    return "";
  }
  const std::string stem =
      artifact_file.substr(0, artifact_file.size() - ext.size());
  if (stem.rfind("BENCH_", 0) == 0) {
    return "BASELINE_" + stem.substr(6) + ext;
  }
  if (stem.rfind("FUZZ_", 0) == 0) {
    return "BASELINE_fuzz_" + stem.substr(5) + ext;
  }
  if (stem.rfind("PROTECT_", 0) == 0) {
    return "BASELINE_protect_" + stem.substr(8) + ext;
  }
  if (stem.rfind("ADAPT_", 0) == 0) {
    return "BASELINE_adapt_" + stem.substr(6) + ext;
  }
  return "";
}

std::string render_baseline(const std::string& name, const std::string& source,
                            const minijson::Object& artifact) {
  std::ostringstream os;
  JsonWriter w(os);
  write_envelope(w, kToolBaseline, name);
  w.field_str("source", source);
  w.begin_object("metrics");
  for (const Metric& m : gatable_metrics(artifact)) {
    w.begin_object(m.name);
    if (m.is_string) {
      w.field_str("text", m.text);
    } else {
      w.field_num("value", m.value);
    }
    w.field_num("tolerance", m.tolerance);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace plx::telemetry

// The one versioned schema shared by every machine-readable report this
// repository emits or consumes: BENCH_<name>.json (bench/bench_common.h),
// FUZZ_<name>.json (src/fuzz/report.cpp), PROTECT_<name>.json
// (src/parallax/batch.cpp) and the tracked regression baselines
// BASELINE_<name>.json (bench/baselines/, written by `plxreport baseline`).
//
// Every report carries the common envelope
//
//   "tool":           "bench" | "fuzz" | "protect" | "baseline" | "trace"
//                     | "adapt" (ADAPT_<name>.json, src/attack/adaptive)
//   "name":           report name (also used in the file name)
//   "<tool>":         legacy alias of "name" (pre-v2 readers keyed on it)
//   "schema_version": kSchemaVersion
//   "host":           {"threads", "plx_trace", "git_describe"} — the build
//                     and machine context the artifact was produced under,
//                     so a diverging baseline comparison can explain *why*
//                     (different thread count, tracing compiled in, other
//                     commit) instead of just failing. Informational: never
//                     gated (telemetry/compare.cpp skips it), accepted by
//                     pre-existing readers because extra envelope keys are
//                     legal within a schema version.
//
// followed by tool-specific sections. Compatibility rule (DESIGN.md §12):
// readers accept *exactly* kSchemaVersion — a version bump is a deliberate,
// repo-wide event that regenerates every committed artifact (baselines,
// EXPERIMENTS.md blocks) in the same change. There is no sliding window:
// cross-version comparison of measured data is how silent bench drift
// sneaks in, so the validators and `plxreport` reject any mismatch.
#pragma once

namespace plx::telemetry {

inline constexpr int kSchemaVersion = 2;

inline constexpr const char* kToolBench = "bench";
inline constexpr const char* kToolFuzz = "fuzz";
inline constexpr const char* kToolProtect = "protect";
inline constexpr const char* kToolBaseline = "baseline";
inline constexpr const char* kToolTrace = "trace";
inline constexpr const char* kToolAdapt = "adapt";

}  // namespace plx::telemetry

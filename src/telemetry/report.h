// Schema-v2 report emission (DESIGN.md §12).
//
// JsonWriter is a small comma/indent-tracking JSON emitter; every report
// writer in the repository (bench_common.h, src/fuzz/report.cpp,
// src/parallax/batch.cpp, `plxreport baseline`) builds its file through it,
// opening with write_envelope() so the shared envelope
// (tool/name/schema_version, telemetry/schema.h) is emitted by exactly one
// piece of code. The registry section helpers turn a prefix-filtered
// Registry snapshot into a flat numeric JSON object.
//
// The schema *checkers* (bench/validate_*_json.cpp) deliberately do not use
// this writer: they read with support/minijson.h so a checker cannot
// inherit an emitter bug.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace plx::telemetry {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  // Containers. The unkeyed forms open the root value or an array element.
  void begin_object();
  void begin_object(const std::string& key);
  void end_object();
  void begin_array(const std::string& key);
  void end_array();

  // Bare array element.
  void value_str(const std::string& value);

  // Fields (inside an object).
  void field_str(const std::string& key, const std::string& value);
  void field_num(const std::string& key, double value);
  void field_u64(const std::string& key, std::uint64_t value);
  void field_int(const std::string& key, int value);
  void field_bool(const std::string& key, bool value);
  // Pre-rendered JSON value (caller guarantees well-formedness).
  void field_raw(const std::string& key, const std::string& json);

 private:
  void open_value(const std::string* key);
  void indent();

  std::ostream& out_;
  struct Frame {
    bool array = false;
    bool first = true;
  };
  std::vector<Frame> stack_;
};

// Opens the root object and writes the shared envelope:
//   "tool", "name", "<tool>" (legacy alias), "schema_version".
// The caller writes its sections afterwards and finishes with end_object().
void write_envelope(JsonWriter& w, const char* tool, const std::string& name);

// Emit one registry section as a flat numeric object under `key`: every
// metric of that kind whose name starts with `prefix`, prefix stripped,
// insertion order. Timer keys gain a "_seconds" suffix (which also marks
// them as ungated wall-clock for telemetry/compare.h). Distributions render
// as {count,min,max,sum,mean} objects.
void write_counters(JsonWriter& w, const std::string& key, const Registry& r,
                    const std::string& prefix);
void write_timers(JsonWriter& w, const std::string& key, const Registry& r,
                  const std::string& prefix);
void write_gauges(JsonWriter& w, const std::string& key, const Registry& r,
                  const std::string& prefix);
void write_distributions(JsonWriter& w, const std::string& key,
                         const Registry& r, const std::string& prefix);

}  // namespace plx::telemetry

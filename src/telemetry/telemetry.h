// telemetry::Registry — the one recording API behind every machine-readable
// report (DESIGN.md §12).
//
// Before this subsystem existed the three report emitters (bench sessions,
// the fuzz harness, the batch protection driver) each kept their own ad-hoc
// accumulators; now they all record named metrics into a Registry and emit
// through telemetry/report.h, so the schema lives in exactly one place.
//
// Four metric kinds, all keyed by a flat string name:
//
//   counter       monotonically accumulated integer (events, bytes, cycles)
//   timer         accumulated wall-clock seconds
//   gauge         last-written double (the printed figure values)
//   distribution  count/min/max/sum over recorded samples
//
// Names use '/'-separated sections ("stages/compile",
// "figures/overhead_percent/miniwget/rc4"); report writers select a section
// by prefix and strip it on emission. Insertion order is preserved per kind,
// so reports are deterministic in recording order.
//
// Thread-safe: every mutation and read takes an internal mutex. Parallel
// pipeline jobs may share one Registry, though recording from the main
// thread (timing whole parallel regions, not their workers) is still the
// right call for wall-clock metrics.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace plx::telemetry {

struct Distribution {
  std::uint64_t count = 0;
  double min = 0;
  double max = 0;
  double sum = 0;

  void record(double sample) {
    if (count == 0 || sample < min) min = sample;
    if (count == 0 || sample > max) max = sample;
    sum += sample;
    ++count;
  }
  double mean() const { return count ? sum / static_cast<double>(count) : 0; }
};

class Registry {
 public:
  Registry() = default;
  // Copyable (data only; the copy gets its own mutex) so results can be
  // snapshotted out of worker contexts.
  Registry(const Registry& other) { *this = other; }
  Registry& operator=(const Registry& other);

  void add(const std::string& name, std::uint64_t delta = 1);
  void add_seconds(const std::string& name, double seconds);
  void set(const std::string& name, double value);
  void record(const std::string& name, double sample);

  // Reads return 0 / empty for names never recorded.
  std::uint64_t counter(const std::string& name) const;
  double timer_seconds(const std::string& name) const;
  double gauge(const std::string& name) const;
  Distribution distribution(const std::string& name) const;

  // Snapshots in insertion order, filtered to names starting with `prefix`
  // (empty prefix = everything); the prefix is stripped from the keys.
  std::vector<std::pair<std::string, std::uint64_t>> counters(
      const std::string& prefix = "") const;
  std::vector<std::pair<std::string, double>> timers(
      const std::string& prefix = "") const;
  std::vector<std::pair<std::string, double>> gauges(
      const std::string& prefix = "") const;
  std::vector<std::pair<std::string, Distribution>> distributions(
      const std::string& prefix = "") const;

  // Accumulate `other` into this registry: counters/timers add, gauges
  // overwrite (last write wins), distributions merge.
  void merge(const Registry& other);

  bool empty() const;

 private:
  template <typename T>
  using Series = std::vector<std::pair<std::string, T>>;

  template <typename T>
  static T& slot(Series<T>& series, const std::string& name);
  template <typename T>
  static Series<T> filtered(const Series<T>& series, const std::string& prefix);

  mutable std::mutex mu_;
  Series<std::uint64_t> counters_;
  Series<double> timers_;
  Series<double> gauges_;
  Series<Distribution> dists_;
};

// RAII timer accumulating into a Registry timer on destruction.
class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, std::string name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double seconds() const;

 private:
  Registry& registry_;
  std::string name_;
  std::uint64_t start_ns_;
};

}  // namespace plx::telemetry

// Named fuzzing targets: mini-C programs with a designated verification
// function, ready to protect and tamper-fuzz. The built-ins are the repo's
// canonical scenarios — the quickstart checksum program, the paper's §IV-A
// ptrace detector, and the license check from the attack tests — and the
// examples include them from here so the fuzzed program IS the example
// program. Workload-corpus entries (src/workloads) are addressable by name
// too.
#pragma once

#include <string>
#include <vector>

#include "parallax/protector.h"
#include "support/error.h"

namespace plx::fuzz {

struct Target {
  std::string name;
  std::string source;           // mini-C
  std::string verify_function;  // chain function passed to the protector
};

// quickstart, ptrace, license.
const std::vector<Target>& builtin_targets();

// Built-ins first, then workload-corpus entries by name; nullptr if unknown.
const Target* find_target(const std::string& name);

// All addressable target names (built-ins + corpus).
std::vector<std::string> target_names();

// Compile + protect a target with the given hardening mode. `isa` names the
// backend (isa::Arch registry wire name); the pipeline fails with a Diag for
// backends lacking the required capabilities.
Result<parallax::Protected> protect_target(const Target& t,
                                           parallax::Hardening mode,
                                           std::uint64_t seed = 0x9a11a,
                                           const std::string& isa = "x86");

}  // namespace plx::fuzz

// FUZZ_<name>.json emission — the fuzzing analogue of the bench layer's
// BENCH_<name>.json (bench/bench_common.h); emitted through the shared
// schema-v2 writer (telemetry/report.h). Schema documented in README.md;
// checked by bench/validate_envelope.
#pragma once

#include <string>

#include "fuzz/fuzz.h"

namespace plx::fuzz {

struct FuzzReport {
  std::string name;       // target name; file becomes FUZZ_<name>.json
  bool smoke = false;
  std::uint64_t seed = 0;
  std::string hardening;  // verify::hardening_name of the protected image
  Backend backend = Backend::VmTamper;  // emitted via backend_name()
  GoldenTrace golden;
  std::size_t protected_bytes = 0;
  std::size_t strict_bytes = 0;
  CampaignStats sweep;
  CampaignStats random;
  double wall_seconds = 0;
};

// Writes <dir>/FUZZ_<name>.json. Returns false if the file cannot be
// written. Escapes from both campaigns are listed verbatim so a CI failure
// names the exact surviving mutant.
bool write_fuzz_json(const FuzzReport& report, const std::string& dir = ".");

}  // namespace plx::fuzz

#include "fuzz/targets.h"

#include "cc/compile.h"
#include "workloads/corpus.h"

namespace plx::fuzz {

namespace {

// The quickstart program (examples/quickstart.cpp runs this same source):
// an arithmetic helper worth protecting, called from a hot loop.
//
// The verification function is written the way the paper's threat model
// wants verification code written (DESIGN.md §10):
//  - full 32-bit state stays live everywhere (no byte masks, full-width
//    exit code) — values that fit in one byte cannot distinguish a
//    width-narrowed mutant of the chain (`add eax, edx` -> `add al, dl`)
//    from the original;
//  - branchless — the chain's conditional support slots (test/setcc/neg on
//    a 0-or-1 value) compute on a one-bit domain where narrowed mutants are
//    structurally equivalent, the §VIII semantics-preserving caveat.
const char* kQuickstart = R"(
int checksum(int acc, int v) {
  acc = (acc << 5) ^ v;
  acc = acc + (v >> 3);
  acc = acc ^ (acc >> 11);
  acc = acc + (acc << 7);
  return acc;
}
int main() {
  int acc = 7;
  for (int i = 0; i < 32; i++) {
    acc = checksum(acc, i * 2654435761 + 40503);
  }
  return acc;
}
)";

// The paper's §IV-A running example (examples/ptrace_detector.cpp): a
// ptrace-based debugger detector — non-deterministic code that oblivious
// hashing cannot protect.
const char* kPtrace = R"(
int traced = 0;
int mix(int a, int b) {
  int r = (a << 2) ^ b;
  r = r + (b << 9) + a;
  r = r ^ (r >> 13);
  return r;
}
int check_ptrace() {
  // ptrace(PTRACE_TRACEME): fails if a debugger is already attached.
  if (__syscall(26, 0, 0, 0) < 0) {
    traced = 1;
    return 1;
  }
  return 0;
}
int main() {
  int h = 5;
  if (check_ptrace()) {
    return 66;            // cleanup_and_exit
  }
  for (int i = 0; i < 24; i++) {
    h = mix(h, i * 2654435761 + 100);
  }
  return h;               // normal operation (full-width result)
}
)";

// The license check the attack tests crack (tests/test_attacks.cpp): the
// denied exit code carries the hash, so output is sensitive to mix().
const char* kLicense = R"(
int last_hash = 0;
int mix(int a, int b) {
  int r = (a << 3) ^ b;
  r = r + (a << 7) + b;
  r = r ^ (r >> 9);
  return r;
}
int check_license(int key) {
  int h = 17;
  for (int i = 0; i < 16; i++) {
    h = mix(h, key * 40503 + i);
  }
  last_hash = h;
  if (h != 0x4d2) {
    return 0;           // invalid
  }
  return 1;             // valid
}
int main() {
  if (check_license(999)) {
    return 42;          // unlocked
  }
  return last_hash;     // denied: exit carries the full hash
}
)";

// Workload-corpus entries, materialised once as targets.
const std::vector<Target>& corpus_targets() {
  static const std::vector<Target> targets = [] {
    std::vector<Target> v;
    for (const auto& w : workloads::corpus()) {
      v.push_back({w.name, w.source, w.verify_function});
    }
    return v;
  }();
  return targets;
}

}  // namespace

const std::vector<Target>& builtin_targets() {
  static const std::vector<Target> targets = {
      {"quickstart", kQuickstart, "checksum"},
      {"ptrace", kPtrace, "mix"},
      {"license", kLicense, "mix"},
  };
  return targets;
}

const Target* find_target(const std::string& name) {
  for (const auto& t : builtin_targets()) {
    if (t.name == name) return &t;
  }
  for (const auto& t : corpus_targets()) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

std::vector<std::string> target_names() {
  std::vector<std::string> names;
  for (const auto& t : builtin_targets()) names.push_back(t.name);
  for (const auto& w : workloads::corpus()) names.push_back(w.name);
  return names;
}

Result<parallax::Protected> protect_target(const Target& t,
                                           parallax::Hardening mode,
                                           std::uint64_t seed,
                                           const std::string& isa) {
  auto compiled = cc::compile(t.source);
  if (!compiled) return std::move(compiled).take_error().with_context("compile " + t.name);
  parallax::ProtectOptions opts;
  opts.verify_functions = {t.verify_function};
  opts.hardening = mode;
  opts.seed = seed;
  opts.isa = isa;
  parallax::Protector p;
  auto prot = p.protect(compiled.value(), opts);
  if (!prot) return std::move(prot).take_error().with_context("protect " + t.name);
  return std::move(prot).take();
}

}  // namespace plx::fuzz

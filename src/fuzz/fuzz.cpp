#include "fuzz/fuzz.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "attack/patcher.h"
#include "isa/arch.h"
#include "support/thread_pool.h"
#include "telemetry/trace.h"

namespace plx::fuzz {

namespace {

// Per-case deterministic stream derivation (splitmix64): case i of a
// campaign draws from Rng(derive(seed, i)), so mutation generation is
// independent of sharding and thread count.
std::uint64_t derive(std::uint64_t seed, std::uint64_t i) {
  std::uint64_t z = seed + (i + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint8_t kProtectedBit = TamperFuzzer::kTierProtected;
constexpr std::uint8_t kStrictBit = TamperFuzzer::kTierStrict;

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
#define PLX_FUZZ_BACKEND_NAME(ident, name) \
  case Backend::ident: return name;
    PLX_FUZZ_BACKEND_LIST(PLX_FUZZ_BACKEND_NAME)
#undef PLX_FUZZ_BACKEND_NAME
  }
  return "?";
}

std::optional<Backend> backend_from_name(const std::string& name) {
#define PLX_FUZZ_BACKEND_PARSE(ident, wire) \
  if (name == wire) return Backend::ident;
  PLX_FUZZ_BACKEND_LIST(PLX_FUZZ_BACKEND_PARSE)
#undef PLX_FUZZ_BACKEND_PARSE
  return std::nullopt;
}

std::vector<std::string> backend_names() {
  return {
#define PLX_FUZZ_BACKEND_WIRE(ident, name) name,
      PLX_FUZZ_BACKEND_LIST(PLX_FUZZ_BACKEND_WIRE)
#undef PLX_FUZZ_BACKEND_WIRE
  };
}

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Detected: return "DETECTED";
    case Outcome::SilentCorruption: return "SILENT_CORRUPTION";
    case Outcome::Benign: return "BENIGN";
    case Outcome::Timeout: return "TIMEOUT";
  }
  return "?";
}

std::vector<std::uint8_t> all_masks() {
  std::vector<std::uint8_t> m(255);
  for (int i = 0; i < 255; ++i) m[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i + 1);
  return m;
}

void CampaignStats::merge(const CampaignStats& other) {
  total += other.total;
  detected += other.detected;
  silent_corruption += other.silent_corruption;
  benign += other.benign;
  timeout += other.timeout;
  mutant_instructions += other.mutant_instructions;
  seconds += other.seconds;
  escapes.insert(escapes.end(), other.escapes.begin(), other.escapes.end());
}

GoldenTrace record_golden(const img::Image& image, std::uint64_t budget,
                          std::unordered_set<std::uint32_t>* exec_starts) {
  // No VM for this image's ISA: the default GoldenTrace (reason Running) is
  // not usable(), so callers report the unsupported backend instead of
  // fuzzing garbage.
  const auto mp = vm::make_machine(image);
  if (!mp) return {};
  vm::Machine& m = *mp;
  if (exec_starts) {
    m.pre_insn_hook = [exec_starts](std::uint32_t eip) {
      exec_starts->insert(eip);
    };
  }
  const auto r = m.run(budget);
  GoldenTrace g;
  g.reason = r.reason;
  g.exit_code = r.exit_code;
  g.output = m.output;
  g.syscalls = m.syscall_counts;
  g.syscall_digest = m.syscall_digest;
  g.instructions = r.instructions;
  g.cycles = r.cycles;
  g.state_digest = m.state_digest();
  return g;
}

Outcome classify(const GoldenTrace& golden, const vm::Machine& m,
                 const vm::RunResult& r, bool protected_target,
                 std::string* detail) {
  const auto set = [detail](const std::string& s) {
    if (detail) *detail = s;
  };
  if (r.reason == vm::StopReason::BudgetExceeded) {
    set("step budget exhausted");
    return Outcome::Timeout;
  }
  if (r.reason != golden.reason) {
    set(r.reason == vm::StopReason::Fault ? "fault: " + r.fault
                                          : "stop reason diverged");
    return Outcome::Detected;
  }
  if (r.exit_code != golden.exit_code) {
    set("exit " + std::to_string(r.exit_code) + " != " +
        std::to_string(golden.exit_code));
    return Outcome::Detected;
  }
  if (m.output != golden.output) {
    set("output diverged");
    return Outcome::Detected;
  }
  if (m.syscall_counts != golden.syscalls) {
    set("syscall summary diverged");
    return Outcome::Detected;
  }
  if (m.syscall_digest != golden.syscall_digest) {
    set("syscall arguments diverged");
    return Outcome::Detected;
  }
  if (r.instructions != golden.instructions || r.cycles != golden.cycles) {
    set("instruction/cycle count diverged");
    return Outcome::Detected;
  }
  if (m.state_digest() != golden.state_digest) {
    set("end-state (registers/memory) diverged");
    return Outcome::Detected;
  }
  set(protected_target ? "protected byte tolerated the mutation"
                       : "behaviour identical");
  return protected_target ? Outcome::SilentCorruption : Outcome::Benign;
}

TamperFuzzer::TamperFuzzer(const img::Image& image,
                           std::vector<parallax::ProtectedRange> ranges,
                           std::uint64_t golden_budget)
    : image_(image), ranges_(std::move(ranges)) {
  std::unordered_set<std::uint32_t> starts;
  golden_ = record_golden(image_, golden_budget, &starts);
  // Expand instruction starts to per-byte coverage: every byte an executed
  // instruction occupies was fetched, hence implicitly verified.
  const isa::Arch* arch = isa::find_arch(image_.isa);
  const isa::Decoder* dec = arch ? &arch->decoder() : nullptr;
  const std::uint32_t max_len = arch ? arch->max_insn_len() : 1;
  for (std::uint32_t s : starts) {
    const auto window = image_.read(s, max_len);
    const isa::Insn insn =
        dec ? dec->decode(window) : isa::Insn{};
    const std::uint32_t len = insn.ok ? insn.len : 1;
    for (std::uint32_t a = s; a < s + len; ++a) covered_.insert(a);
  }
}

// Byte -> tier flags. Strict requires both a computational range AND golden
// coverage: a gadget on a path the golden input never takes is not executed,
// hence not implicitly verified by this run. Protected-but-not-strict bytes
// (advisory ranges, uncovered computational bytes) report survivors as
// SILENT_CORRUPTION without counting them as escapes.
std::map<std::uint32_t, std::uint8_t> TamperFuzzer::byte_tiers() const {
  std::map<std::uint32_t, std::uint8_t> tiers;
  for (const auto& r : ranges_) {
    for (std::uint32_t a = r.lo; a < r.hi; ++a) {
      const bool strict = r.computational && covered_.count(a) != 0;
      tiers[a] |= kProtectedBit | (strict ? kStrictBit : 0);
    }
  }
  return tiers;
}

std::size_t TamperFuzzer::strict_bytes() const {
  std::size_t n = 0;
  for (const auto& [a, t] : byte_tiers()) n += (t & kStrictBit) ? 1 : 0;
  return n;
}

std::size_t TamperFuzzer::protected_bytes() const {
  return byte_tiers().size();
}

CampaignStats TamperFuzzer::sweep(const CampaignOptions& opts) const {
  std::vector<Mutation> cases;
  for (const auto& [addr, tier] : byte_tiers()) {
    const bool strict = (tier & kStrictBit) != 0;
    if (!strict && !opts.include_advisory) continue;
    const auto orig = image_.read(addr, 1);
    if (orig.empty()) continue;
    for (std::uint8_t mask : opts.sweep_masks) {
      if (mask == 0) continue;
      Mutation mu;
      mu.addr = addr;
      mu.bytes = {static_cast<std::uint8_t>(orig[0] ^ mask)};
      mu.strict = strict;
      mu.protected_ = true;
      mu.origin = "sweep";
      cases.push_back(std::move(mu));
    }
  }
  return run_cases(cases, opts);
}

CampaignStats TamperFuzzer::random(const CampaignOptions& opts) const {
  const img::Section* text = image_.find_section(".text");
  if (!text || text->bytes.size() == 0) return {};
  const auto tiers = byte_tiers();
  const std::uint32_t size = static_cast<std::uint32_t>(text->bytes.size());

  std::vector<Mutation> cases;
  cases.reserve(static_cast<std::size_t>(std::max(opts.random_mutants, 0)));
  for (int i = 0; i < opts.random_mutants; ++i) {
    Rng rng(derive(opts.seed, static_cast<std::uint64_t>(i)));
    const std::uint32_t n =
        1 + rng.below(static_cast<std::uint32_t>(std::max(opts.max_random_bytes, 1)));
    const std::uint32_t span = std::min(n, size);
    const std::uint32_t off = rng.below(size - span + 1);
    Mutation mu;
    mu.addr = text->vaddr + off;
    const auto orig = image_.read(mu.addr, span);
    for (std::uint32_t j = 0; j < span; ++j) {
      const std::uint8_t mask = static_cast<std::uint8_t>(1 + rng.below(255));
      mu.bytes.push_back(static_cast<std::uint8_t>(orig[j] ^ mask));
      const auto it = tiers.find(mu.addr + j);
      if (it != tiers.end()) {
        mu.protected_ = true;
        mu.strict |= (it->second & kStrictBit) != 0;
      }
    }
    mu.origin = "random";
    cases.push_back(std::move(mu));
  }
  return run_cases(cases, opts);
}

CampaignStats TamperFuzzer::run_cases(const std::vector<Mutation>& cases,
                                      const CampaignOptions& opts) const {
  const auto t0 = std::chrono::steady_clock::now();
  CampaignStats stats;
  stats.total = cases.size();
  if (cases.empty()) return stats;

  const std::uint64_t budget =
      std::max(opts.min_budget, opts.budget_multiplier * golden_.instructions);

  std::vector<CaseResult> results(cases.size());
  const std::size_t nshards =
      std::min<std::size_t>(std::max(1u, opts.shards), cases.size());
  const std::size_t chunk = (cases.size() + nshards - 1) / nshards;

  PLX_TRACE_SPAN_VAR(campaign, "fuzz", "run_cases");
  if (campaign.active()) {
    campaign.arg("cases", static_cast<std::uint64_t>(cases.size()));
    campaign.arg("shards", static_cast<std::uint64_t>(nshards));
  }
  // Progress heartbeat cadence: often enough to watch a long campaign move,
  // rare enough (~1/128 cases) to stay invisible in the profile.
  const std::size_t heartbeat_every = std::max<std::size_t>(1, chunk / 128) * 16;
  std::atomic<std::size_t> completed{0};

  support::ThreadPool::shared().parallel_for(nshards, [&](std::size_t shard) {
    const std::size_t lo = shard * chunk;
    const std::size_t hi = std::min(lo + chunk, cases.size());
    if (lo >= hi) return;

    // One VM per shard; restore the pristine snapshot between mutants.
    const auto vmp = vm::make_machine(image_);
    if (!vmp) return;
    vm::Machine& vm_instance = *vmp;
    const vm::Machine::Snapshot pristine = vm_instance.snapshot();

    for (std::size_t i = lo; i < hi; ++i) {
      const Mutation& mu = cases[i];
      CaseResult& out = results[i];
      out.mutation = mu;
      // Adaptive campaigns apply mutants exactly like VmTamper: the backend
      // value only changes who generates the cases, not how they run.
      if (opts.backend != Backend::ImagePatch) {
        vm_instance.restore(pristine);
        vm_instance.tamper(mu.addr, std::span<const std::uint8_t>(mu.bytes));
        const auto r = vm_instance.run(budget);
        out.outcome = classify(golden_, vm_instance, r, mu.protected_, &out.detail);
        out.instructions = r.instructions;
      } else {
        img::Image patched = image_;
        attack::patch_bytes(patched, mu.addr, mu.bytes);
        const auto m2 = vm::make_machine(patched);
        if (!m2) continue;
        const auto r = m2->run(budget);
        out.outcome = classify(golden_, *m2, r, mu.protected_, &out.detail);
        out.instructions = r.instructions;
      }
      if (PLX_TRACE_ACTIVE()) {
        const std::size_t done = completed.fetch_add(1) + 1;
        if (done % heartbeat_every == 0) {
          PLX_TRACE_INSTANT("fuzz", "progress",
                            {{"done", std::to_string(done)},
                             {"total", std::to_string(cases.size())}});
        }
      }
    }
  });

  for (const auto& cr : results) {
    stats.mutant_instructions += cr.instructions;
    switch (cr.outcome) {
      case Outcome::Detected: ++stats.detected; break;
      case Outcome::SilentCorruption: ++stats.silent_corruption; break;
      case Outcome::Benign: ++stats.benign; break;
      case Outcome::Timeout: ++stats.timeout; break;
    }
    // A strict mutant that times out malfunctioned (it could not reproduce
    // the golden trace within a 16x budget) — only bit-for-bit survival of a
    // strict byte is an escape.
    if (cr.mutation.strict && cr.outcome == Outcome::SilentCorruption) {
      stats.escapes.push_back(cr);
    }
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return stats;
}

}  // namespace plx::fuzz

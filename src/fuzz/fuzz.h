// Differential tamper-fuzzing harness with a golden-trace oracle.
//
// Parallax's core claim (§IV, §VII) is that modifying a protected
// instruction destroys an overlapping gadget and thereby breaks a
// functionally-required verification chain. This module tests that claim
// systematically instead of by hand-picked examples: it runs a protected
// image once to record a golden trace (stop reason, exit status, output
// bytes, per-syscall counts, instruction/cycle totals), then drives tamper
// campaigns — an exhaustive single-byte sweep over the protected-byte map
// exported by parallax::Protector, and seeded random multi-byte mutations
// over the whole text section — re-executing every mutant and classifying
// it against the oracle:
//
//   DETECTED           the mutant deviates from the golden trace: it faults
//                      (chain derailed into garbage / NX / bad memory), or
//                      exits with a different status, output, syscall
//                      summary, or instruction/cycle count. This is
//                      Parallax's detection-by-malfunction.
//   SILENT_CORRUPTION  a mutant that hit a protected byte yet reproduced
//                      the golden trace bit-for-bit: the modification
//                      survived. On a strict (computational) range this is
//                      an ESCAPE — the claim failed for that byte.
//   BENIGN             a mutant that only touched unprotected bytes and
//                      reproduced the golden trace (e.g. never-executed or
//                      dead bytes); expected, not a failure.
//   TIMEOUT            the mutant exceeded its step budget (a multiple of
//                      the golden instruction count): it hung. A hang is a
//                      malfunction — the mutant could not reproduce the
//                      golden trace — so it is a detection whose signal is
//                      liveness rather than state; it is reported separately
//                      but is not an escape.
//
// Escapes are therefore exactly the strict-range mutants classified
// SILENT_CORRUPTION. A byte is strict when it lies in a computational
// (non-transparent-slot) gadget range AND was actually executed by the
// golden run: implicit verification only covers bytes the chains fetch and
// execute, so a computational gadget sitting on a path the golden input
// never takes is not verified by that run — its bytes are advisory for
// this trace, exactly like woven transparent gadgets. The fuzzer measures
// golden-run byte coverage itself (vm pre_insn_hook).
//
// Campaigns shard over support/thread_pool with one VM instance
// per shard: the worker takes a vm::Machine::Snapshot of the pristine start
// state once and replays restore -> tamper -> run per mutant, so a mutant
// costs one guest execution, not an image copy + Machine construction.
// Mutations are derived from per-case splitmix streams of the campaign
// seed, so results are byte-identical regardless of thread count.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "image/image.h"
#include "parallax/protector.h"
#include "vm/vm.h"

namespace plx::fuzz {

// The golden oracle: everything observable about one reference execution.
struct GoldenTrace {
  vm::StopReason reason = vm::StopReason::Running;
  std::int32_t exit_code = 0;
  std::string output;
  std::map<std::uint32_t, std::uint64_t> syscalls;
  std::uint64_t syscall_digest = 0;  // full-width syscall argument trace
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t state_digest = 0;  // registers + writable memory at stop

  bool usable() const { return reason == vm::StopReason::Exited; }
};

enum class Outcome : std::uint8_t { Detected, SilentCorruption, Benign, Timeout };
const char* outcome_name(Outcome o);

// One mutant: replacement bytes at an absolute address.
struct Mutation {
  std::uint32_t addr = 0;
  std::vector<std::uint8_t> bytes;
  bool strict = false;       // touches a strict (computational) protected byte
  bool protected_ = false;   // touches any protected byte (incl. advisory)
  const char* origin = "";   // "sweep" | "random" | caller-defined
};

struct CaseResult {
  Mutation mutation;
  Outcome outcome = Outcome::Benign;
  std::string detail;  // fault text / "exit 12 != 7" / "output diverged" ...
  std::uint64_t instructions = 0;  // guest instructions the mutant executed
};

// How mutants are applied. VmTamper is the fast path (snapshot/restore on a
// per-shard Machine). ImagePatch goes through the attack toolkit's static
// patcher (src/attack) on a copy of the image plus a fresh Machine per
// mutant — the exact mechanics of a cracked redistributable. Both must
// classify identically (tests/test_fuzz.cpp proves it on a sample).
// Adaptive applies mutants like VmTamper but the mutants come from the
// searching adversary (attack/adaptive) instead of a sweep/random campaign.
//
// The X-macro is the single source of truth for the enum, its wire name in
// FUZZ_/ADAPT_*.json, the plxfuzz --backend parser and the validator's
// accepted set — a new backend cannot desynchronize the four.
#define PLX_FUZZ_BACKEND_LIST(X) \
  X(VmTamper, "tamper")          \
  X(ImagePatch, "patch")         \
  X(Adaptive, "adaptive")

enum class Backend : std::uint8_t {
#define PLX_FUZZ_BACKEND_ENUM(ident, name) ident,
  PLX_FUZZ_BACKEND_LIST(PLX_FUZZ_BACKEND_ENUM)
#undef PLX_FUZZ_BACKEND_ENUM
};

// Wire name of a backend ("tamper" | "patch" | "adaptive").
const char* backend_name(Backend b);

// Inverse of backend_name; nullopt for unknown names.
std::optional<Backend> backend_from_name(const std::string& name);

// All wire names, list order (usage strings, validator diagnostics).
std::vector<std::string> backend_names();

struct CampaignOptions {
  std::uint64_t seed = 0x9a11a;
  // XOR masks applied per protected byte by the exhaustive sweep. The smoke
  // default probes a low bit, the high bit and full inversion; pass all of
  // 0x01..0xff (see all_masks()) for a full campaign.
  std::vector<std::uint8_t> sweep_masks = {0x01, 0x80, 0xff};
  // Also sweep advisory (woven-transparent) ranges. Their survivors are
  // reported as SILENT_CORRUPTION but are not escapes.
  bool include_advisory = false;
  int random_mutants = 128;   // random campaign size
  int max_random_bytes = 4;   // 1..N mutated bytes per random case
  // Mutant step budget = max(min_budget, budget_multiplier * golden insns).
  std::uint64_t budget_multiplier = 16;
  std::uint64_t min_budget = 1'000'000;
  Backend backend = Backend::VmTamper;
  unsigned shards = 64;  // fixed, so results do not depend on thread count
};

std::vector<std::uint8_t> all_masks();  // {0x01 .. 0xff}

struct CampaignStats {
  std::size_t total = 0;
  std::size_t detected = 0;
  std::size_t silent_corruption = 0;
  std::size_t benign = 0;
  std::size_t timeout = 0;
  std::uint64_t mutant_instructions = 0;  // guest work across all mutants
  double seconds = 0;
  std::vector<CaseResult> escapes;  // strict-range mutants that survived
                                    // bit-for-bit (SILENT_CORRUPTION)

  void merge(const CampaignStats& other);
};

class TamperFuzzer {
 public:
  // Records the golden trace on construction (one full run of `image`).
  // `ranges` is the protected-byte map (parallax::Protected::protected_ranges
  // or hand-built for tests).
  TamperFuzzer(const img::Image& image,
               std::vector<parallax::ProtectedRange> ranges,
               std::uint64_t golden_budget = 2'000'000'000ull);

  bool ok() const { return golden_.usable(); }
  const GoldenTrace& golden() const { return golden_; }
  const std::vector<parallax::ProtectedRange>& ranges() const { return ranges_; }

  // Was this byte executed (fetched as part of a run instruction) by the
  // golden run?
  bool covered(std::uint32_t addr) const { return covered_.count(addr) != 0; }

  // Number of distinct strict / total protected bytes. Strict = lies in a
  // computational range AND covered by the golden run.
  std::size_t strict_bytes() const;
  std::size_t protected_bytes() const;

  // Exhaustive single-byte sweep: every protected byte (strict tier, plus
  // advisory if opted in) x every mask in opts.sweep_masks.
  CampaignStats sweep(const CampaignOptions& opts = {}) const;

  // Seeded random campaign over the whole text section: each case flips
  // 1..max_random_bytes consecutive bytes with random non-zero masks.
  CampaignStats random(const CampaignOptions& opts = {}) const;

  // Classify an explicit mutation list (the primitive the two campaign
  // shapes build on; exposed for tests and custom campaigns).
  CampaignStats run_cases(const std::vector<Mutation>& cases,
                          const CampaignOptions& opts) const;

  // Byte -> tier flags over the protected-byte map. Exposed so custom
  // campaigns (attack/adaptive) can mark their mutations with the same
  // strict/advisory tiers the sweep uses.
  static constexpr std::uint8_t kTierProtected = 1;
  static constexpr std::uint8_t kTierStrict = 2;
  std::map<std::uint32_t, std::uint8_t> byte_tiers() const;

 private:
  img::Image image_;
  std::vector<parallax::ProtectedRange> ranges_;
  GoldenTrace golden_;
  std::unordered_set<std::uint32_t> covered_;  // bytes executed by golden run
};

// Records a golden trace for an arbitrary image (also used internally).
// When `exec_starts` is given, collects the EIP of every executed
// instruction into it (the golden-run coverage measurement).
GoldenTrace record_golden(const img::Image& image,
                          std::uint64_t budget = 2'000'000'000ull,
                          std::unordered_set<std::uint32_t>* exec_starts = nullptr);

// Classifies one finished mutant run against the oracle. `m` is the machine
// the mutant ran on (for output/syscall comparison).
Outcome classify(const GoldenTrace& golden, const vm::Machine& m,
                 const vm::RunResult& r, bool protected_target,
                 std::string* detail = nullptr);

}  // namespace plx::fuzz

#include "fuzz/report.h"

#include <fstream>

#include "support/json.h"

namespace plx::fuzz {

namespace {

std::string hex_bytes(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

std::uint64_t total_syscalls(const GoldenTrace& g) {
  std::uint64_t n = 0;
  for (const auto& [num, count] : g.syscalls) n += count;
  return n;
}

void emit_campaign(std::ofstream& out, const char* key,
                   const CampaignStats& s, bool last) {
  out << "    \"" << key << "\": {"
      << "\"total\": " << s.total << ", \"detected\": " << s.detected
      << ", \"silent_corruption\": " << s.silent_corruption
      << ", \"benign\": " << s.benign << ", \"timeout\": " << s.timeout
      << ", \"escapes\": " << s.escapes.size()
      << ", \"mutant_instructions\": " << s.mutant_instructions
      << ", \"seconds\": " << json::num(s.seconds) << "}" << (last ? "\n" : ",\n");
}

}  // namespace

bool write_fuzz_json(const FuzzReport& report, const std::string& dir) {
  const std::string path = dir + "/FUZZ_" + report.name + ".json";
  std::ofstream out(path);
  if (!out) return false;

  CampaignStats agg = report.sweep;
  agg.merge(report.random);

  out << "{\n";
  out << "  \"fuzz\": \"" << json::escape(report.name) << "\",\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"smoke\": " << (report.smoke ? "true" : "false") << ",\n";
  out << "  \"seed\": " << report.seed << ",\n";
  out << "  \"hardening\": \"" << json::escape(report.hardening) << "\",\n";
  out << "  \"backend\": \"" << json::escape(report.backend) << "\",\n";
  out << "  \"wall_seconds_total\": " << json::num(report.wall_seconds) << ",\n";
  out << "  \"golden\": {"
      << "\"exit_code\": " << report.golden.exit_code
      << ", \"instructions\": " << report.golden.instructions
      << ", \"cycles\": " << report.golden.cycles
      << ", \"output_bytes\": " << report.golden.output.size()
      << ", \"syscall_invocations\": " << total_syscalls(report.golden)
      << "},\n";
  out << "  \"coverage\": {"
      << "\"protected_bytes\": " << report.protected_bytes
      << ", \"strict_bytes\": " << report.strict_bytes << "},\n";
  out << "  \"campaigns\": {\n";
  emit_campaign(out, "sweep", report.sweep, /*last=*/false);
  emit_campaign(out, "random", report.random, /*last=*/true);
  out << "  },\n";
  out << "  \"outcomes\": {"
      << "\"total\": " << agg.total << ", \"detected\": " << agg.detected
      << ", \"silent_corruption\": " << agg.silent_corruption
      << ", \"benign\": " << agg.benign << ", \"timeout\": " << agg.timeout
      << "},\n";
  out << "  \"escapes\": [";
  for (std::size_t i = 0; i < agg.escapes.size(); ++i) {
    const CaseResult& e = agg.escapes[i];
    out << (i ? "," : "") << "\n    {\"addr\": " << e.mutation.addr
        << ", \"bytes\": \"" << hex_bytes(e.mutation.bytes) << "\""
        << ", \"origin\": \"" << json::escape(e.mutation.origin) << "\""
        << ", \"outcome\": \"" << outcome_name(e.outcome) << "\""
        << ", \"detail\": \"" << json::escape(e.detail) << "\"}";
  }
  out << (agg.escapes.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return static_cast<bool>(out);
}

}  // namespace plx::fuzz

#include "fuzz/report.h"

#include <fstream>

#include "telemetry/report.h"
#include "telemetry/schema.h"

namespace plx::fuzz {

namespace {

using telemetry::JsonWriter;

std::string hex_bytes(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

std::uint64_t total_syscalls(const GoldenTrace& g) {
  std::uint64_t n = 0;
  for (const auto& [num, count] : g.syscalls) n += count;
  return n;
}

void emit_outcomes(JsonWriter& w, const CampaignStats& s) {
  w.field_u64("total", s.total);
  w.field_u64("detected", s.detected);
  w.field_u64("silent_corruption", s.silent_corruption);
  w.field_u64("benign", s.benign);
  w.field_u64("timeout", s.timeout);
}

void emit_campaign(JsonWriter& w, const char* key, const CampaignStats& s) {
  w.begin_object(key);
  emit_outcomes(w, s);
  w.field_u64("escapes", s.escapes.size());
  w.field_u64("mutant_instructions", s.mutant_instructions);
  w.field_num("seconds", s.seconds);
  w.end_object();
}

}  // namespace

bool write_fuzz_json(const FuzzReport& report, const std::string& dir) {
  const std::string path = dir + "/FUZZ_" + report.name + ".json";
  std::ofstream out(path);
  if (!out) return false;

  CampaignStats agg = report.sweep;
  agg.merge(report.random);

  JsonWriter w(out);
  telemetry::write_envelope(w, telemetry::kToolFuzz, report.name);
  w.field_bool("smoke", report.smoke);
  w.field_u64("seed", report.seed);
  w.field_str("hardening", report.hardening);
  w.field_str("backend", backend_name(report.backend));
  w.field_num("wall_seconds_total", report.wall_seconds);
  w.begin_object("golden");
  w.field_int("exit_code", report.golden.exit_code);
  w.field_u64("instructions", report.golden.instructions);
  w.field_u64("cycles", report.golden.cycles);
  w.field_u64("output_bytes", report.golden.output.size());
  w.field_u64("syscall_invocations", total_syscalls(report.golden));
  w.end_object();
  w.begin_object("coverage");
  w.field_u64("protected_bytes", report.protected_bytes);
  w.field_u64("strict_bytes", report.strict_bytes);
  w.end_object();
  w.begin_object("campaigns");
  emit_campaign(w, "sweep", report.sweep);
  emit_campaign(w, "random", report.random);
  w.end_object();
  w.begin_object("outcomes");
  emit_outcomes(w, agg);
  w.end_object();
  w.begin_array("escapes");
  for (const CaseResult& e : agg.escapes) {
    w.begin_object();
    w.field_u64("addr", e.mutation.addr);
    w.field_str("bytes", hex_bytes(e.mutation.bytes));
    w.field_str("origin", e.mutation.origin);
    w.field_str("outcome", outcome_name(e.outcome));
    w.field_str("detail", e.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return static_cast<bool>(out);
}

}  // namespace plx::fuzz

#include "rewrite/rules.h"

namespace plx::rewrite {

const char* rule_name(Rule r) {
  switch (r) {
    case Rule::ExistingNear: return "existing-near-ret";
    case Rule::ExistingFar: return "existing-far-ret";
    case Rule::ImmediateMod: return "immediate-mod";
    case Rule::JumpMod: return "jump-mod";
    case Rule::Spurious: return "spurious";
  }
  return "?";
}

}  // namespace plx::rewrite

#include "rewrite/protectability.h"

#include "isa/rewrite_ops.h"

namespace plx::rewrite {

namespace {

double fraction_of(const std::vector<bool>& bits, const std::vector<bool>& code_mask,
                   std::uint32_t code_bytes) {
  if (code_bytes == 0) return 0.0;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] && code_mask[i]) ++covered;
  }
  return static_cast<double>(covered) / static_cast<double>(code_bytes);
}

}  // namespace

double CoverageReport::fraction(Rule r) const {
  auto it = covered.find(r);
  if (it == covered.end()) return r == Rule::Spurious ? 1.0 : 0.0;
  return fraction_of(it->second, any_mask_, code_bytes);
}

double CoverageReport::fraction_any() const {
  return fraction_of(any, any_mask_, code_bytes);
}

void init_coverage_report(const img::Module& mod, const img::LayoutResult& laid,
                          CoverageReport& report) {
  const img::Section* text = laid.image.find_section(".text");
  if (!text) return;
  report.text_base = text->vaddr;
  const std::size_t tsize = text->bytes.size();
  report.any.assign(tsize, false);
  report.any_mask_.assign(tsize, false);
  for (Rule r : {Rule::ExistingNear, Rule::ExistingFar, Rule::ImmediateMod,
                 Rule::JumpMod}) {
    report.covered[r].assign(tsize, false);
  }

  // Code mask: instruction bytes of non-infrastructure text fragments.
  for (std::size_t f = 0; f < mod.fragments.size(); ++f) {
    const img::Fragment& frag = mod.fragments[f];
    if (frag.section != img::SectionKind::Text) continue;
    if (frag.name.starts_with("__plx")) continue;
    for (std::size_t i = 0; i < frag.items.size(); ++i) {
      const img::Item& item = frag.items[i];
      if (item.kind != img::Item::Kind::Insn) continue;
      const img::LaidOutItem& loc = laid.items[f][i];
      for (std::uint32_t b = 0; b < loc.size; ++b) {
        const std::uint32_t off = loc.addr - text->vaddr + b;
        if (off < tsize && !report.any_mask_[off]) {
          report.any_mask_[off] = true;
          ++report.code_bytes;
        }
      }
    }
  }
}

CoverageReport analyze_protectability(const img::Module& mod,
                                      const img::LayoutResult& laid,
                                      const isa::Arch* arch) {
  const isa::Arch& a = arch ? *arch : isa::default_arch();
  if (const isa::RewriteOps* ops = a.rewrite_ops()) {
    return ops->analyze_protectability(mod, laid);
  }
  // No crafting rules for this backend: every rule covers nothing, but the
  // code-byte accounting still holds so callers report 0.0 rather than fail.
  CoverageReport report;
  init_coverage_report(mod, laid, report);
  return report;
}

}  // namespace plx::rewrite

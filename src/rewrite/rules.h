// The §IV-B binary rewriting rules — generic vocabulary.
//
// Names the rule families of the paper and the result shapes the rule
// implementations produce. The byte-level machinery that decides whether a
// planted return opcode creates a usable overlapping gadget is backend
// behaviour and lives with each backend (x86: isa/x86/rules.h), reached by
// generic code through isa::RewriteOps.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

#include "gadget/gadget.h"

namespace plx::rewrite {

enum class Rule : std::uint8_t {
  ExistingNear,   // §IV-B1: gadgets already present (ret)
  ExistingFar,    // §IV-B5: gadgets already present (retf)
  ImmediateMod,   // §IV-B2: modified immediate operands
  JumpMod,        // §IV-B3: rearranged code/data (displacement bytes)
  Spurious,       // §IV-B4: inserted instructions (always applicable)
};

const char* rule_name(Rule r);

// A gadget that would exist if a buffer byte were set to a return opcode.
// The most-covering usable gadget: rule implementations scan backwards for
// the longest decode run that terminates exactly after the planted ret.
struct PlantedGadget {
  std::size_t start = 0;  // offset in buf where the gadget begins
  std::size_t end = 0;    // one past the planted ret byte
  gadget::Gadget gadget;  // classified on the modified bytes
};

// The full §IV-B2 rule result: since instruction splitting lets the first
// operand be *arbitrary* (a compensator restores the original value), every
// immediate byte before the planted ret is freely choosable.
struct PlantedImmGadget {
  PlantedGadget planted;               // offsets relative to buf
  std::array<std::uint8_t, 4> field;   // the resulting imm field bytes
};

}  // namespace plx::rewrite

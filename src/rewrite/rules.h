// The §IV-B binary rewriting rules.
//
// Shared helpers for the protectability analyser (Figure 6) and the applying
// rewriter: given real encoded bytes, decide whether placing a ret/retf
// opcode at a particular byte position creates a usable overlapping gadget,
// and locate the 32-bit immediate / displacement fields the rules may edit.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gadget/gadget.h"
#include "image/layout.h"

namespace plx::rewrite {

enum class Rule : std::uint8_t {
  ExistingNear,   // §IV-B1: gadgets already present (ret)
  ExistingFar,    // §IV-B5: gadgets already present (retf)
  ImmediateMod,   // §IV-B2: modified immediate operands
  JumpMod,        // §IV-B3: rearranged code/data (displacement bytes)
  Spurious,       // §IV-B4: inserted instructions (always applicable)
};

const char* rule_name(Rule r);

// A gadget that would exist if `buf[pos]` were set to `opcode` (0xc3/0xcb).
// Returns the most-covering usable gadget: scan backwards for the longest
// decode run that terminates exactly after the planted ret.
struct PlantedGadget {
  std::size_t start = 0;  // offset in buf where the gadget begins
  std::size_t end = 0;    // one past the planted ret byte
  gadget::Gadget gadget;  // classified on the modified bytes
};

std::optional<PlantedGadget> try_plant_ret(std::span<const std::uint8_t> buf,
                                           std::size_t pos, std::uint8_t opcode,
                                           int max_insns = 6);

// True for the instruction families the paper applies the immediate rule to
// (add/adc/sub/sbb/mov with a 32-bit immediate field).
bool immediate_rule_applies(const x86::Insn& insn);

// Weaker gate: the instruction family matches and it has a register
// destination with an immediate source, but the current encoding may be the
// short imm8 form — the rule still applies after *widening* to the imm32
// encoding (a semantics-preserving re-encoding the rewriter performs).
bool immediate_rule_candidate(const x86::Insn& insn);

// The full §IV-B2 rule: since instruction splitting lets the first operand
// be *arbitrary* (a compensator restores the original value), every
// immediate byte before the planted ret is freely choosable. Searches a
// library of gadget-body templates for the most useful fill.
struct PlantedImmGadget {
  PlantedGadget planted;               // offsets relative to buf
  std::array<std::uint8_t, 4> field;   // the resulting imm field bytes
};
std::optional<PlantedImmGadget> plant_in_imm_field(std::span<const std::uint8_t> buf,
                                                   std::size_t field_off,
                                                   int plant_rel,  // 0..3
                                                   std::uint8_t opcode);

// Byte offsets (relative to the instruction start) of the 32-bit immediate
// field, if the *encoding* ends with an imm32. Empty otherwise.
std::optional<std::size_t> imm32_field_offset(const x86::Insn& insn);

// True for rel32 branch encodings the jump rule can steer (jmp/jcc/call).
bool jump_rule_applies(const x86::Insn& insn);

}  // namespace plx::rewrite

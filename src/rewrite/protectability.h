// Protectable-code-byte analysis — reproduces Figure 6.
//
// A code byte is *protectable* when an overlapping gadget can be crafted for
// it with one of the §IV-B rules. The analyser measures, per rule, the
// fraction of code bytes covered by at least one craftable gadget. As in the
// paper, coverage per rule is counted independently (modifications may
// conflict when applied together), the spurious rule is omitted from the
// figure because it always applies, and gadgets are capped at six
// instructions.
#pragma once

#include <map>
#include <vector>

#include "image/layout.h"
#include "isa/arch.h"
#include "rewrite/rules.h"

namespace plx::rewrite {

struct CoverageReport {
  std::uint32_t code_bytes = 0;  // denominator: analysed instruction bytes
  std::map<Rule, std::vector<bool>> covered;  // bitmap per rule over .text
  std::vector<bool> any;                      // union (excluding Spurious)
  std::uint32_t text_base = 0;

  double fraction(Rule r) const;
  double fraction_any() const;

  // Bytes that count as program code (set during analysis).
  std::vector<bool> any_mask_;
};

// Analyse a laid-out module. Only bytes inside text fragments whose names do
// not start with "__plx" count (infrastructure is not program code).
// Dispatches to the backend's isa::RewriteOps (`arch` nullptr selects
// isa::default_arch()); a backend without rewrite support yields the code
// mask with zero coverage — protectability 0, not a failure.
CoverageReport analyze_protectability(const img::Module& mod,
                                      const img::LayoutResult& laid,
                                      const isa::Arch* arch = nullptr);

// Fills code_bytes / any / any_mask_ / covered-rule bitmaps (all-false) and
// text_base for a laid-out module: the generic accounting every backend's
// analyser starts from.
void init_coverage_report(const img::Module& mod, const img::LayoutResult& laid,
                          CoverageReport& report);

}  // namespace plx::rewrite

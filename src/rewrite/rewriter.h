// The applying side of §IV-B: edits a module so that new overlapping gadgets
// actually come into existence, preserving program semantics.
//
//  * ImmediateMod — rewrites a 32-bit immediate so one of its bytes encodes
//    a ret, creating a gadget that overlaps the instruction; compensates
//    with a follow-up instruction (xor for mov, add/sub splitting for
//    add/sub), guarded by a flag-liveness check. `mov eax, imm` directly
//    before the function epilogue is rewritten freely (return-value
//    zero/non-zero semantics, §IV-B2).
//  * JumpMod — adds alignment padding so a rel32 displacement byte becomes
//    a ret opcode (the Listing 1 cleanup_and_exit trick).
//  * Spurious — inserts a jumped-over gadget block next to the instruction
//    (always applicable; costs one jmp, as the paper notes).
//
// Every application is verified by re-laying-out and checking that all
// crafted gadget byte patterns still exist; conflicting edits are reverted
// (the paper: "the required modifications may conflict").
#pragma once

#include <string>
#include <vector>

#include "image/layout.h"
#include "isa/arch.h"
#include "rewrite/rules.h"
#include "support/error.h"

namespace plx::rewrite {

struct CraftOptions {
  std::vector<std::string> functions;  // empty = all non-__plx text fragments
  int max_per_function = 8;
  bool use_spurious = false;  // off by default (slows protected code)
  // Backend whose crafting rules apply; nullptr selects isa::default_arch().
  const isa::Arch* arch = nullptr;
};

struct Crafted {
  Rule rule;
  std::string function;
  std::vector<std::uint8_t> bytes;   // the gadget's final byte pattern
  gadget::GType type;
  std::uint32_t addr = 0;            // final address after the last layout
};

struct CraftResult {
  img::Module module;
  std::vector<Crafted> crafted;
};

// Dispatches to the backend's isa::RewriteOps; fails with a RewriteError
// Diag when the backend has none (rv32 stub).
Result<CraftResult> craft_gadgets(const img::Module& input, const CraftOptions& opts);

}  // namespace plx::rewrite

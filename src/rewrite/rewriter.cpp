#include "rewrite/rewriter.h"

#include "isa/rewrite_ops.h"

namespace plx::rewrite {

Result<CraftResult> craft_gadgets(const img::Module& input, const CraftOptions& opts) {
  const isa::Arch& arch = opts.arch ? *opts.arch : isa::default_arch();
  const isa::RewriteOps* ops = arch.rewrite_ops();
  if (!ops) {
    return plx::Diag(plx::DiagCode::RewriteError, "rewrite.craft",
                     std::string("backend '") + arch.name() +
                         "' has no crafting rules");
  }
  return ops->craft_gadgets(input, opts);
}

}  // namespace plx::rewrite

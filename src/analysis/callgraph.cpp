#include "analysis/callgraph.h"

namespace plx::analysis {

CallGraph build_callgraph(const cc::IrProgram& prog) {
  CallGraph cg;
  for (const auto& f : prog.funcs) {
    for (const auto& insn : f.insns) {
      if (insn.op != cc::IrOp::Call) continue;
      cg.callers[insn.sym].insert(f.name);
      ++cg.call_sites[insn.sym];
    }
  }
  return cg;
}

}  // namespace plx::analysis

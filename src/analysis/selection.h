// Verification-function selection — the fully automatable algorithm of
// §VII-B: (1) called repeatedly from several locations, (2) contributing
// under a threshold of execution time, (3) maximal operation diversity.
// Additionally filtered to functions the ROP compiler can translate
// (no calls/syscalls/division after the Mul/byte lowering passes).
#pragma once

#include <string>
#include <vector>

#include "analysis/callgraph.h"
#include "analysis/profiler.h"

namespace plx::analysis {

struct SelectionOptions {
  double max_time_fraction = 0.02;  // the paper's 2% threshold
  int min_call_sites = 2;
  int count = 1;                    // how many functions to pick
};

// Returns up to `count` function names, best candidates first. `profile` may
// be null (the time-fraction filter is skipped, as for static-only use).
std::vector<std::string> select_verification_functions(const cc::IrProgram& prog,
                                                       const CallGraph& cg,
                                                       const Profile* profile,
                                                       const SelectionOptions& opts = {});

// True if the ROP compiler can translate this function after lowering.
bool chain_compilable(const cc::IrFunc& f);

}  // namespace plx::analysis

// Static call graph over the mini-C IR (step 1 of the §VII-B selection
// algorithm: find functions called repeatedly from several locations).
#pragma once

#include <map>
#include <set>
#include <string>

#include "cc/irgen.h"

namespace plx::analysis {

struct CallGraph {
  std::map<std::string, std::set<std::string>> callers;  // callee -> callers
  std::map<std::string, int> call_sites;                 // callee -> # sites

  int sites(const std::string& f) const {
    auto it = call_sites.find(f);
    return it == call_sites.end() ? 0 : it->second;
  }
  int distinct_callers(const std::string& f) const {
    auto it = callers.find(f);
    return it == callers.end() ? 0 : static_cast<int>(it->second.size());
  }
};

CallGraph build_callgraph(const cc::IrProgram& prog);

}  // namespace plx::analysis

#include "analysis/selection.h"

#include <algorithm>

namespace plx::analysis {

bool chain_compilable(const cc::IrFunc& f) {
  for (const auto& insn : f.insns) {
    switch (insn.op) {
      case cc::IrOp::Call:
      case cc::IrOp::Syscall:
      case cc::IrOp::Div:
      case cc::IrOp::Mod:
        return false;
      default:
        break;
    }
  }
  return true;
}

std::vector<std::string> select_verification_functions(const cc::IrProgram& prog,
                                                       const CallGraph& cg,
                                                       const Profile* profile,
                                                       const SelectionOptions& opts) {
  struct Candidate {
    const cc::IrFunc* f;
    int diversity;
    int sites;
  };
  std::vector<Candidate> candidates;
  for (const auto& f : prog.funcs) {
    if (f.name == "main") continue;
    if (!chain_compilable(f)) continue;
    if (cg.sites(f.name) < opts.min_call_sites) continue;
    if (profile && profile->fraction(f.name) > opts.max_time_fraction) continue;
    if (profile && profile->calls(f.name) == 0) continue;  // never exercised
    candidates.push_back(Candidate{&f, f.op_diversity(), cg.sites(f.name)});
  }
  // Step 3: most operation types first; break ties by more call sites.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.diversity != b.diversity) return a.diversity > b.diversity;
                     return a.sites > b.sites;
                   });
  std::vector<std::string> out;
  for (const auto& c : candidates) {
    if (static_cast<int>(out.size()) >= opts.count) break;
    out.push_back(c.f->name);
  }
  return out;
}

}  // namespace plx::analysis

// VM-based flat profiler (step 2 of §VII-B: find functions contributing
// less than a threshold of total execution time).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "image/image.h"
#include "isa/x86/machine.h"

namespace plx::analysis {

struct Profile {
  std::map<std::string, vm::FuncStats> stats;
  std::uint64_t total_cycles = 0;
  vm::RunResult run;

  double fraction(const std::string& f) const {
    auto it = stats.find(f);
    if (it == stats.end() || total_cycles == 0) return 0.0;
    return static_cast<double>(it->second.cycles) / static_cast<double>(total_cycles);
  }
  std::uint64_t calls(const std::string& f) const {
    auto it = stats.find(f);
    return it == stats.end() ? 0 : it->second.calls;
  }
};

// Runs the image to completion (or budget) with profiling enabled.
Profile profile_run(const img::Image& image, const std::vector<std::uint8_t>& input = {},
                    std::uint64_t budget = 100'000'000);

}  // namespace plx::analysis

#include "analysis/profiler.h"

namespace plx::analysis {

Profile profile_run(const img::Image& image, const std::vector<std::uint8_t>& input,
                    std::uint64_t budget) {
  vm::Machine m(image);
  m.profile_enabled = true;
  m.input = input;
  Profile p;
  p.run = m.run(budget);
  p.stats = m.profile();
  p.total_cycles = p.run.cycles;
  return p;
}

}  // namespace plx::analysis

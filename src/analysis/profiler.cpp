#include "analysis/profiler.h"

namespace plx::analysis {

Profile profile_run(const img::Image& image, const std::vector<std::uint8_t>& input,
                    std::uint64_t budget) {
  Profile p;
  const auto m = vm::make_machine(image);
  if (!m) {
    p.run.reason = vm::StopReason::Fault;
    p.run.fault = "no VM registered for this image's ISA";
    return p;
  }
  m->profile_enabled = true;
  m->input = input;
  p.run = m->run(budget);
  p.stats = m->profile();
  p.total_cycles = p.run.cycles;
  return p;
}

}  // namespace plx::analysis

// ISA-neutral virtual-machine interface.
//
// The execution substrate for PLX images: protected programs, their ROP
// verification chains, the attacker's patches and the baseline defenses all
// run on a vm::Machine. This header is the seam the generic layers (fuzz
// harness, attack toolkit, profiler, pipeline) see — run results, the
// golden-trace observables (output, syscall summary, state digest), the
// attacker's tamper interface and snapshot/restore — while the concrete
// interpreter for each ISA lives with its backend (src/isa/x86/machine.h).
// make_machine() dispatches on the image's `isa` header field through the
// backend registry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/rng.h"

namespace plx::img {
class Image;
}

namespace plx::vm {

enum class StopReason {
  Running,        // only seen internally
  Exited,         // exit syscall or return through the entry sentinel
  Fault,          // invalid opcode / bad memory / div-by-zero / int3 / W^X
  BudgetExceeded  // instruction budget exhausted
};

struct RunResult {
  StopReason reason = StopReason::Running;
  std::int32_t exit_code = 0;
  std::string fault;          // human-readable fault description
  std::uint32_t fault_eip = 0;  // pc of the faulting instruction's successor
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;

  bool exited_ok(std::int32_t expect = 0) const {
    return reason == StopReason::Exited && exit_code == expect;
  }
};

struct FuncStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t calls = 0;
};

// Per-retired-instruction observer (vm/vmtrace.h attaches one to attribute
// cycles to app vs chain code). step() calls on_retire after every executed
// instruction — including faulting ones, with the cycles it actually accrued
// (possibly 0) — so the observer's cycle sum equals RunResult::cycles
// exactly. The call site is compiled out unless the build defines PLX_TRACE,
// keeping the hot dispatch loop byte-identical in perf builds.
struct RetireObserver {
  virtual ~RetireObserver() = default;
  virtual void on_retire(std::uint32_t eip, std::uint64_t cycles,
                         bool is_ret) = 0;
};

class Machine {
 public:
  virtual ~Machine() = default;

  // --- host / syscall state (ISA-neutral observables) -----------------------
  std::string output;                 // bytes written to fd 1/2
  std::vector<std::uint8_t> input;    // bytes served by read(fd 0)
  std::size_t input_pos = 0;
  bool debugger_attached = false;     // makes ptrace(TRACEME) fail
  std::uint32_t time_value = 1700000000;
  Rng rng{0x5eed};
  // Per-syscall-number invocation counts (the fuzzing oracle's "syscall
  // summary"); includes unknown numbers that returned ENOSYS.
  std::map<std::uint32_t, std::uint64_t> syscall_counts;
  // Order-sensitive FNV-1a digest of every syscall's (number, args...): the
  // full-width argument trace, where `syscall_counts` only keeps invocation
  // counts. Catches tampering whose corruption reaches a syscall argument
  // that the kernel-side effect then truncates (e.g. exit status).
  std::uint64_t syscall_digest = 0xcbf29ce484222325ull;

  // Pre-instruction hook (tracing); called with the decoded pc.
  std::function<void(std::uint32_t)> pre_insn_hook;

  // Retired-instruction observer (cycle attribution; see RetireObserver).
  // Always present so the Machine ABI does not depend on PLX_TRACE, but only
  // consulted when the build compiles the trace layer in.
  RetireObserver* retire_observer = nullptr;

  bool profile_enabled = false;

  // W^X enforcement on fetch (on by default; gadgets live in .text so
  // Parallax never needs it off — see §V-B: chains are *data*, only gadget
  // bodies execute).
  bool enforce_nx = true;

  // --- execution ------------------------------------------------------------
  // Runs from the image entry point until exit/fault/budget.
  virtual RunResult run(std::uint64_t max_instructions = 100'000'000) = 0;

  // Calls a function at `addr` with the backend's C calling convention;
  // returns when it returns to the sentinel.
  virtual RunResult call_function(std::uint32_t addr,
                                  const std::vector<std::uint32_t>& args,
                                  std::uint64_t max_instructions = 100'000'000) = 0;

  // Single-step; updates result(). Returns false when stopped.
  virtual bool step() = 0;
  virtual const RunResult& result() const = 0;

  std::uint64_t instructions() const { return result().instructions; }
  std::uint64_t cycles() const { return result().cycles; }

  // --- attacker interface ---------------------------------------------------
  // Patch ignoring permissions (both views).
  virtual void tamper(std::uint32_t addr, std::uint8_t byte) = 0;
  virtual void tamper(std::uint32_t addr, std::span<const std::uint8_t> bytes) = 0;
  // Patch the fetch view only (the Wurster et al. split-cache attack).
  virtual void tamper_icache(std::uint32_t addr, std::uint8_t byte) = 0;
  virtual void tamper_icache(std::uint32_t addr,
                             std::span<const std::uint8_t> bytes) = 0;
  virtual void clear_icache_overlay() = 0;

  // --- memory (data view; respects permissions, faults on violation) --------
  virtual bool read_mem(std::uint32_t addr, void* out, std::uint32_t n) = 0;
  virtual bool write_mem(std::uint32_t addr, const void* in, std::uint32_t n) = 0;
  // Fetch-view read (what execution sees); used by tests to inspect.
  virtual std::uint8_t fetch_u8(std::uint32_t addr, bool& ok) const = 0;

  // --- snapshot / restore ---------------------------------------------------
  // Full machine state capture for cheap re-execution (the tamper-fuzzing
  // harness restores the pristine state between mutants instead of paying a
  // Machine construction per run). restore() invalidates any decoded-
  // instruction cache exactly like tamper() does and is only valid against
  // the Machine the snapshot was taken from (region layout must match).
  struct Snapshot {
    std::vector<std::uint32_t> regs;  // architectural registers, backend order
    std::uint32_t pc = 0;
    std::uint32_t flags = 0;
    std::vector<std::vector<std::uint8_t>> region_bytes;  // one per region
    std::unordered_map<std::uint32_t, std::uint8_t> icache_overlay;
    RunResult result;
    bool stopped = false;
    std::string output;
    std::vector<std::uint8_t> input;
    std::size_t input_pos = 0;
    bool debugger_attached = false;
    std::uint32_t time_value = 0;
    Rng rng{0};
    std::map<std::uint32_t, std::uint64_t> syscall_counts;
    std::uint64_t syscall_digest = 0;
    std::vector<FuncStats> func_stats;
  };
  virtual Snapshot snapshot() const = 0;
  virtual void restore(const Snapshot& s) = 0;

  // FNV-1a digest of the current architectural end state: registers, flags,
  // and every writable region's bytes. The fuzzing oracle compares digests
  // after the run, so mutants that corrupt memory the program never prints
  // (e.g. chain frames, globals) still count as a behavioural divergence.
  virtual std::uint64_t state_digest() const = 0;

  // --- profiling / observability --------------------------------------------
  virtual const std::map<std::string, FuncStats>& profile() const = 0;

  // Number of decoded-instruction cache invalidations (observability; tests
  // use it to assert the cache actually drops on code mutation).
  virtual std::uint64_t predecode_invalidations() const = 0;
};

// Constructs the interpreter matching `image`'s `isa` header field via the
// backend registry (isa/arch.h); nullptr when the image names an ISA with no
// registered VM (callers report a Diag instead of crashing).
std::unique_ptr<Machine> make_machine(const img::Image& image);

}  // namespace plx::vm

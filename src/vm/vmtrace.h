// VM cycle-attribution profiler (DESIGN.md §13).
//
// Parallax §VI prices protection in guest cycles but cannot say *where* they
// go; ROPocop (Follner & Bodden) shows chain execution is observable from the
// outside as a ret-frequency anomaly. This profiler gives both views of our
// own protection: it attaches to vm::Machine as a RetireObserver and splits
// every retired instruction's cycles between application code and chain
// machinery (gadget bodies, `__plx_*` runtime stubs, rewritten chain-function
// bodies — the caller supplies the region list, normally
// parallax::chain_code_regions), keeps per-region hit histograms, and samples
// a ret-density timeline over fixed cycle windows — the attacker's
// fingerprint view, built in.
//
// Exactness: step() reports the cycles each instruction actually accrued
// (machine.h RetireObserver), so app_cycles + chain_cycles equals
// RunResult::cycles bit for bit — tests and the TRACE_*.json validator
// (bench/validate_envelope.cpp) both assert it.
//
// Exported counter events live on the VM's deterministic virtual timebase:
// pid 2, one guest cycle == one exported microsecond, so the timeline is
// byte-identical across hosts and runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vm/vm.h"

namespace plx::telemetry {
class Tracer;
class JsonWriter;
struct TraceEvent;
}  // namespace plx::telemetry

namespace plx::vm {

// One span of guest addresses that belongs to the verification machinery.
struct CodeRegion {
  std::uint32_t lo = 0;  // first byte
  std::uint32_t hi = 0;  // one past the last
  std::string label;     // "gadget@0x08048123", "__plx_resume", "license_check"
};

class ExecutionProfiler final : public RetireObserver {
 public:
  struct Totals {
    std::uint64_t app_instructions = 0;
    std::uint64_t app_cycles = 0;
    std::uint64_t chain_instructions = 0;
    std::uint64_t chain_cycles = 0;
    std::uint64_t rets = 0;        // retired RET/RETF, both attributions
    std::uint64_t chain_rets = 0;  // rets retired inside chain regions

    std::uint64_t instructions() const {
      return app_instructions + chain_instructions;
    }
    std::uint64_t cycles() const { return app_cycles + chain_cycles; }
  };

  struct RegionStat {
    CodeRegion region;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
  };

  // One ret-density timeline sample: the state of the previous
  // `window_cycles` guest cycles, closed at cumulative cycle `end_cycle`.
  struct Window {
    std::uint64_t end_cycle = 0;
    std::uint64_t cycles = 0;  // actual width (last instruction may overrun)
    std::uint64_t instructions = 0;
    std::uint64_t rets = 0;
    std::uint64_t chain_cycles = 0;

    double ret_density() const {
      return instructions ? static_cast<double>(rets) / static_cast<double>(instructions) : 0;
    }
    double chain_share() const {
      return cycles ? static_cast<double>(chain_cycles) / static_cast<double>(cycles) : 0;
    }
  };

  // `chain_regions` may overlap (a gadget body inside a rewritten function);
  // attribution picks the smallest covering region. `window_cycles` sets the
  // timeline resolution.
  explicit ExecutionProfiler(std::vector<CodeRegion> chain_regions,
                             std::uint64_t window_cycles = 4096);

  void attach(Machine& m) { m.retire_observer = this; }

  void on_retire(std::uint32_t eip, std::uint64_t cycles,
                 bool is_ret) override;

  // Closes the trailing partial window (idempotent). Call after the run.
  void finish();

  const Totals& totals() const { return totals_; }
  const std::vector<Window>& windows() const { return windows_; }

  // Chain regions that executed at least one instruction, hottest (most
  // cycles) first; ties break on region lo for determinism.
  std::vector<RegionStat> hot_regions() const;

  // Stats for the region covering `addr` (nullptr when no region executed it
  // or the address is app code).
  const RegionStat* region_stat_at(std::uint32_t addr) const;

  // Emits the timeline as Chrome counter events on the virtual-cycle
  // timebase (pid 2, 1 cycle == 1 µs): series "ret_density" and
  // "chain_share", one sample per window.
  void emit_counters(telemetry::Tracer& tracer) const;

 private:
  struct Segment {  // non-overlapping, sorted by lo
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    std::uint32_t region = 0;  // index into regions_
  };

  int segment_index(std::uint32_t eip) const;
  void close_window();

  std::vector<CodeRegion> regions_;
  std::vector<Segment> segments_;
  std::vector<RegionStat> stats_;  // parallel to regions_
  mutable int last_segment_ = -1;  // lookup cache (hot loops stay put)

  Totals totals_;
  std::uint64_t cum_cycles_ = 0;
  std::uint64_t window_cycles_ = 4096;
  Window open_;
  std::vector<Window> windows_;
};

// Per-chain rollup: the slice of the profile covered by one chain's gadgets.
struct ChainProfile {
  std::string name;               // protected function the chain verifies
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::vector<ExecutionProfiler::RegionStat> gadgets;  // hottest first
};

// Joins the profiler's per-region stats against a chain → gadget-address map
// (parallax::chain_gadget_map). Chains sorted by cycles, hottest first.
std::vector<ChainProfile> per_chain_profiles(
    const ExecutionProfiler& prof,
    const std::map<std::string, std::vector<std::uint32_t>>& chains);

// Writes a complete TRACE_<name>.json document: schema-v2 envelope, "vm"
// attribution section (present when `prof` is non-null), flat "chains" and
// "spans" rollups, and the Chrome "traceEvents" array — the same file loads
// in Perfetto and passes bench/validate_envelope.
void write_trace_json(std::ostream& out, const std::string& name,
                      const std::vector<telemetry::TraceEvent>& events,
                      const ExecutionProfiler* prof,
                      const std::vector<ChainProfile>& chains = {});

}  // namespace plx::vm

#include "vm/vm.h"

#include "image/image.h"
#include "isa/arch.h"

namespace plx::vm {

std::unique_ptr<Machine> make_machine(const img::Image& image) {
  const isa::Arch* arch = isa::find_arch(image.isa);
  if (!arch) return nullptr;
  return arch->make_machine(image);
}

}  // namespace plx::vm

#include "vm/vmtrace.h"

#include <algorithm>
#include <set>

#include "telemetry/report.h"
#include "telemetry/schema.h"
#include "telemetry/trace.h"

namespace plx::vm {

ExecutionProfiler::ExecutionProfiler(std::vector<CodeRegion> chain_regions,
                                     std::uint64_t window_cycles)
    : regions_(std::move(chain_regions)),
      window_cycles_(window_cycles ? window_cycles : 1) {
  stats_.resize(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i)
    stats_[i].region = regions_[i];

  // Flatten the (possibly overlapping) region list into disjoint segments:
  // sweep the sorted boundary set and attribute each gap to the smallest
  // covering region, so a gadget nested in a rewritten function wins over
  // the function's own span.
  std::set<std::uint32_t> bounds;
  for (const auto& r : regions_) {
    if (r.hi <= r.lo) continue;
    bounds.insert(r.lo);
    bounds.insert(r.hi);
  }
  std::vector<std::uint32_t> b(bounds.begin(), bounds.end());
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    const std::uint32_t lo = b[i], hi = b[i + 1];
    std::uint32_t best = UINT32_MAX;
    std::uint32_t best_span = UINT32_MAX;
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      if (regions_[r].lo <= lo && regions_[r].hi >= hi) {
        const std::uint32_t span = regions_[r].hi - regions_[r].lo;
        if (span < best_span) {
          best_span = span;
          best = static_cast<std::uint32_t>(r);
        }
      }
    }
    if (best == UINT32_MAX) continue;
    if (!segments_.empty() && segments_.back().hi == lo &&
        segments_.back().region == best) {
      segments_.back().hi = hi;
    } else {
      segments_.push_back(Segment{lo, hi, best});
    }
  }
}

int ExecutionProfiler::segment_index(std::uint32_t eip) const {
  if (last_segment_ >= 0) {
    const Segment& s = segments_[static_cast<std::size_t>(last_segment_)];
    if (eip >= s.lo && eip < s.hi) return last_segment_;
  }
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), eip,
      [](std::uint32_t a, const Segment& s) { return a < s.lo; });
  if (it == segments_.begin()) return -1;
  --it;
  if (eip >= it->lo && eip < it->hi) {
    last_segment_ = static_cast<int>(it - segments_.begin());
    return last_segment_;
  }
  return -1;
}

void ExecutionProfiler::on_retire(std::uint32_t eip, std::uint64_t cycles,
                                  bool is_ret) {
  const int seg = segment_index(eip);
  if (seg >= 0) {
    RegionStat& st = stats_[segments_[static_cast<std::size_t>(seg)].region];
    ++st.instructions;
    st.cycles += cycles;
    ++totals_.chain_instructions;
    totals_.chain_cycles += cycles;
    open_.chain_cycles += cycles;
    if (is_ret) ++totals_.chain_rets;
  } else {
    ++totals_.app_instructions;
    totals_.app_cycles += cycles;
  }
  if (is_ret) {
    ++totals_.rets;
    ++open_.rets;
  }
  ++open_.instructions;
  open_.cycles += cycles;
  cum_cycles_ += cycles;
  if (open_.cycles >= window_cycles_) close_window();
}

void ExecutionProfiler::close_window() {
  open_.end_cycle = cum_cycles_;
  windows_.push_back(open_);
  open_ = Window{};
}

void ExecutionProfiler::finish() {
  if (open_.instructions != 0) close_window();
}

std::vector<ExecutionProfiler::RegionStat> ExecutionProfiler::hot_regions()
    const {
  std::vector<RegionStat> out;
  for (const auto& st : stats_)
    if (st.instructions != 0) out.push_back(st);
  std::sort(out.begin(), out.end(), [](const RegionStat& a, const RegionStat& b) {
    if (a.cycles != b.cycles) return a.cycles > b.cycles;
    return a.region.lo < b.region.lo;
  });
  return out;
}

const ExecutionProfiler::RegionStat* ExecutionProfiler::region_stat_at(
    std::uint32_t addr) const {
  const int seg = segment_index(addr);
  if (seg < 0) return nullptr;
  const RegionStat& st = stats_[segments_[static_cast<std::size_t>(seg)].region];
  return st.instructions != 0 ? &st : nullptr;
}

void ExecutionProfiler::emit_counters(telemetry::Tracer& tracer) const {
  for (const auto& w : windows_) {
    // 1 guest cycle == 1 exported µs (ts is ns here; the exporter divides).
    const std::uint64_t ts = w.end_cycle * 1000;
    tracer.counter("vm", "ret_density", w.ret_density(), ts, /*pid=*/2);
    tracer.counter("vm", "chain_share", w.chain_share(), ts, /*pid=*/2);
  }
}

std::vector<ChainProfile> per_chain_profiles(
    const ExecutionProfiler& prof,
    const std::map<std::string, std::vector<std::uint32_t>>& chains) {
  std::vector<ChainProfile> out;
  for (const auto& [name, addrs] : chains) {
    ChainProfile cp;
    cp.name = name;
    std::set<std::uint32_t> seen;  // dedupe shared gadget addresses
    for (std::uint32_t a : addrs) {
      const auto* st = prof.region_stat_at(a);
      if (!st || !seen.insert(st->region.lo).second) continue;
      cp.gadgets.push_back(*st);
      cp.instructions += st->instructions;
      cp.cycles += st->cycles;
    }
    std::sort(cp.gadgets.begin(), cp.gadgets.end(),
              [](const ExecutionProfiler::RegionStat& a,
                 const ExecutionProfiler::RegionStat& b) {
                if (a.cycles != b.cycles) return a.cycles > b.cycles;
                return a.region.lo < b.region.lo;
              });
    out.push_back(std::move(cp));
  }
  std::sort(out.begin(), out.end(), [](const ChainProfile& a, const ChainProfile& b) {
    if (a.cycles != b.cycles) return a.cycles > b.cycles;
    return a.name < b.name;
  });
  return out;
}

namespace {

// Flat-numeric-object key: section keys share the metric-name alphabet used
// by the registry exporters ([A-Za-z0-9_/.-]); spaces never appear but chain
// names are user input, so sanitize defensively.
std::string key_safe(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '/' ||
                    c == '.' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

void write_trace_json(std::ostream& out, const std::string& name,
                      const std::vector<telemetry::TraceEvent>& events,
                      const ExecutionProfiler* prof,
                      const std::vector<ChainProfile>& chains) {
  telemetry::JsonWriter w(out);
  telemetry::write_envelope(w, telemetry::kToolTrace, name);

  if (prof) {
    const auto& t = prof->totals();
    w.begin_object("vm");
    w.field_u64("instructions", t.instructions());
    w.field_u64("cycles", t.cycles());
    w.field_u64("app_instructions", t.app_instructions);
    w.field_u64("app_cycles", t.app_cycles);
    w.field_u64("chain_instructions", t.chain_instructions);
    w.field_u64("chain_cycles", t.chain_cycles);
    w.field_u64("rets", t.rets);
    w.field_u64("chain_rets", t.chain_rets);
    w.field_u64("windows", prof->windows().size());
    w.field_u64("hot_regions", prof->hot_regions().size());
    w.end_object();
  }

  if (!chains.empty()) {
    w.begin_object("chains");
    for (const auto& c : chains) {
      w.field_u64(key_safe(c.name) + "_cycles", c.cycles);
      w.field_u64(key_safe(c.name) + "_instructions", c.instructions);
      w.field_u64(key_safe(c.name) + "_gadgets", c.gadgets.size());
    }
    w.end_object();
  }

  const auto spans = telemetry::aggregate_spans(events);
  if (!spans.empty()) {
    w.begin_object("spans");
    for (const auto& s : spans) {
      const std::string k = key_safe(s.name);
      w.field_u64(k + "_count", s.count);
      w.field_u64(k + "_total_us", s.total_ns / 1000);
      w.field_u64(k + "_max_us", s.max_ns / 1000);
    }
    w.end_object();
  }

  telemetry::write_trace_events(w, events);
  w.end_object();
  out << "\n";
}

}  // namespace plx::vm

// Syscall numbers understood by the VM's int 0x80 gate.
//
// The classic Linux/i386 numbers are used where an equivalent exists, so
// workload code reads naturally; PLX-specific calls live above 512.
// Arguments follow the i386 convention: eax = number, ebx/ecx/edx/esi/edi =
// args, return value in eax (negative errno-style on failure).
#pragma once

#include <cstdint>

namespace plx::vm::sys {

constexpr std::uint32_t kExit = 1;
constexpr std::uint32_t kRead = 3;    // (fd, buf, count) — fd 0 serves Machine::input
constexpr std::uint32_t kWrite = 4;   // (fd, buf, count) — fd 1/2 append to Machine::output
constexpr std::uint32_t kTime = 13;   // () -> Machine::time_value (non-deterministic input!)
constexpr std::uint32_t kGetpid = 20;
constexpr std::uint32_t kPtrace = 26;  // (request, pid, addr, data); request 0 = TRACEME

constexpr std::uint32_t kRand = 512;   // () -> 31-bit pseudo-random (non-deterministic input!)
constexpr std::uint32_t kSrand = 513;  // (seed)

constexpr std::int32_t kEnosys = -38;
constexpr std::int32_t kEperm = -1;

}  // namespace plx::vm::sys

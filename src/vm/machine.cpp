#include "vm/machine.h"

#include <algorithm>
#include <cstring>

#include "x86/decoder.h"

namespace plx::vm {

Machine::Machine(const img::Image& image) {
  for (const auto& sec : image.sections) {
    Region r;
    r.name = sec.name;
    r.base = sec.vaddr;
    r.perms = sec.perms;
    r.bytes = sec.bytes.vec();
    regions_.push_back(std::move(r));
  }
  // Stack region.
  Region stack;
  stack.name = "[stack]";
  stack.base = img::kStackTop - img::kStackSize;
  stack.perms = img::kPermRead | img::kPermWrite;
  stack.bytes.resize(img::kStackSize);
  regions_.push_back(std::move(stack));

  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.base < b.base; });

  for (const auto& sym : image.symbols) {
    if (!sym.is_func || sym.size == 0) continue;
    funcs_.push_back(FuncSpan{sym.vaddr, sym.vaddr + sym.size, sym.name});
  }
  std::sort(funcs_.begin(), funcs_.end(),
            [](const FuncSpan& a, const FuncSpan& b) { return a.lo < b.lo; });

  eip = image.entry;
  gpr(x86::Reg::ESP) = img::kStackTop - 16;
  // Push the exit sentinel as the entry function's return address.
  gpr(x86::Reg::ESP) -= 4;
  write_u32(gpr(x86::Reg::ESP), kExitSentinel);
}

Machine::Region* Machine::region_at(std::uint32_t addr) {
  for (auto& r : regions_) {
    if (r.contains(addr)) return &r;
  }
  return nullptr;
}

const Machine::Region* Machine::region_at(std::uint32_t addr) const {
  for (const auto& r : regions_) {
    if (r.contains(addr)) return &r;
  }
  return nullptr;
}

bool Machine::read_mem(std::uint32_t addr, void* out, std::uint32_t n) {
  Region* r = region_at(addr);
  if (!r || !r->contains(addr + n - 1)) {
    fault("read fault");
    return false;
  }
  if (!(r->perms & img::kPermRead)) {
    fault("read from non-readable region " + r->name);
    return false;
  }
  std::memcpy(out, r->bytes.data() + (addr - r->base), n);
  return true;
}

bool Machine::write_mem(std::uint32_t addr, const void* in, std::uint32_t n) {
  Region* r = region_at(addr);
  if (!r || !r->contains(addr + n - 1)) {
    fault("write fault");
    return false;
  }
  if (!(r->perms & img::kPermWrite)) {
    fault("write to non-writable region " + r->name);
    return false;
  }
  std::memcpy(r->bytes.data() + (addr - r->base), in, n);
  // A legitimate store re-synchronises the fetch view (cache coherence on a
  // write; the Wurster attack specifically avoids going through this path).
  for (std::uint32_t i = 0; i < n; ++i) icache_overlay_.erase(addr + i);
  return true;
}

std::uint32_t Machine::read_u32(std::uint32_t addr, bool& ok) {
  std::uint32_t v = 0;
  ok = read_mem(addr, &v, 4);
  return v;
}

std::uint16_t Machine::read_u16(std::uint32_t addr, bool& ok) {
  std::uint16_t v = 0;
  ok = read_mem(addr, &v, 2);
  return v;
}

std::uint8_t Machine::read_u8(std::uint32_t addr, bool& ok) {
  std::uint8_t v = 0;
  ok = read_mem(addr, &v, 1);
  return v;
}

bool Machine::write_u32(std::uint32_t addr, std::uint32_t v) { return write_mem(addr, &v, 4); }
bool Machine::write_u16(std::uint32_t addr, std::uint16_t v) { return write_mem(addr, &v, 2); }
bool Machine::write_u8(std::uint32_t addr, std::uint8_t v) { return write_mem(addr, &v, 1); }

void Machine::tamper(std::uint32_t addr, std::uint8_t byte) {
  Region* r = region_at(addr);
  if (!r) return;
  r->bytes[addr - r->base] = byte;
  icache_overlay_.erase(addr);
}

void Machine::tamper(std::uint32_t addr, std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) tamper(addr + static_cast<std::uint32_t>(i), bytes[i]);
}

void Machine::tamper_icache(std::uint32_t addr, std::uint8_t byte) {
  icache_overlay_[addr] = byte;
}

void Machine::tamper_icache(std::uint32_t addr, std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    icache_overlay_[addr + static_cast<std::uint32_t>(i)] = bytes[i];
  }
}

std::uint8_t Machine::fetch_u8(std::uint32_t addr, bool& ok) const {
  auto it = icache_overlay_.find(addr);
  if (it != icache_overlay_.end()) {
    ok = true;
    return it->second;
  }
  const Region* r = region_at(addr);
  if (!r) {
    ok = false;
    return 0;
  }
  ok = true;
  return r->bytes[addr - r->base];
}

void Machine::fault(const std::string& what) {
  if (stopped_) return;
  result_.reason = StopReason::Fault;
  result_.fault = what;
  result_.fault_eip = eip;
  stopped_ = true;
}

const Machine::FuncSpan* Machine::func_at(std::uint32_t addr) const {
  // funcs_ sorted by lo; find last span with lo <= addr.
  auto it = std::upper_bound(funcs_.begin(), funcs_.end(), addr,
                             [](std::uint32_t a, const FuncSpan& f) { return a < f.lo; });
  if (it == funcs_.begin()) return nullptr;
  --it;
  return (addr < it->hi) ? &*it : nullptr;
}

bool Machine::step() {
  if (stopped_) return false;
  if (eip == kExitSentinel) {
    result_.reason = StopReason::Exited;
    result_.exit_code = static_cast<std::int32_t>(gpr(x86::Reg::EAX));
    stopped_ = true;
    return false;
  }

  // Fetch through the instruction view.
  std::uint8_t window[15];
  bool ok = true;
  const Region* r = region_at(eip);
  if (!r) {
    fault("fetch fault: no mapping");
    return false;
  }
  if (enforce_nx && !(r->perms & img::kPermExec)) {
    fault("fetch from non-executable region " + r->name);
    return false;
  }
  std::size_t avail = 0;
  for (; avail < sizeof window; ++avail) {
    window[avail] = fetch_u8(eip + static_cast<std::uint32_t>(avail), ok);
    if (!ok) break;
  }
  const auto insn = x86::decode({window, avail});
  if (!insn) {
    fault("invalid opcode");
    return false;
  }

  if (pre_insn_hook) pre_insn_hook(eip);

  const std::uint32_t insn_eip = eip;
  const std::uint64_t cycles_before = result_.cycles;
  if (!exec_one(*insn)) return false;
  ++result_.instructions;

  if (profile_enabled) {
    if (const FuncSpan* f = func_at(insn_eip)) {
      auto& st = profile_[f->name];
      st.cycles += result_.cycles - cycles_before;
      ++st.instructions;
      if (insn->op == x86::Mnemonic::CALL) {
        bool okt = true;
        // Attribute the call to the *target* function's entry.
        if (insn->ops[0].kind == x86::Operand::Kind::Rel) {
          const std::uint32_t target = insn->rel_target(insn_eip);
          if (const FuncSpan* g = func_at(target); g && g->lo == target) {
            ++profile_[g->name].calls;
          }
        }
        (void)okt;
      }
    }
  }
  return !stopped_;
}

RunResult Machine::run(std::uint64_t max_instructions) {
  while (!stopped_) {
    if (result_.instructions >= max_instructions) {
      result_.reason = StopReason::BudgetExceeded;
      stopped_ = true;
      break;
    }
    step();
  }
  return result_;
}

RunResult Machine::call_function(std::uint32_t addr, const std::vector<std::uint32_t>& args,
                                 std::uint64_t max_instructions) {
  eip = addr;
  std::uint32_t& esp = gpr(x86::Reg::ESP);
  esp = img::kStackTop - 64;
  // cdecl: push args right-to-left, then the sentinel return address.
  for (auto it = args.rbegin(); it != args.rend(); ++it) {
    esp -= 4;
    write_u32(esp, *it);
  }
  esp -= 4;
  write_u32(esp, kExitSentinel);
  stopped_ = false;
  result_ = RunResult{};
  return run(max_instructions);
}

}  // namespace plx::vm

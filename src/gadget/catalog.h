// Gadget catalog: the "gadget mapping" of §III.
//
// Categorises scanned gadgets by type (and type parameters — operand
// registers, condition code) and serves lookups for the ROP compiler with
// the paper's stated policy: overlapping gadgets are always preferred over
// non-overlapping ones. The fallback utility gadget fragment that §III
// permits inserting lives with each backend (isa::Arch::
// utility_gadget_fragment) — register identity here is the generic
// isa::RegId, with isa::kNoReg as the wildcard.
#pragma once

#include <functional>
#include <vector>

#include "gadget/gadget.h"
#include "support/rng.h"

namespace plx::gadget {

class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(std::vector<Gadget> gadgets);

  void add(Gadget g);
  std::size_t size() const { return gadgets_.size(); }
  const std::vector<Gadget>& all() const { return gadgets_; }

  // All gadgets of a type with matching parameters (isa::kNoReg = wildcard),
  // overlapping ones first.
  std::vector<const Gadget*> find(GType type, isa::RegId r1 = isa::kNoReg,
                                  isa::RegId r2 = isa::kNoReg) const;

  // Best gadget of a type: overlapping preferred, then fewest side effects.
  // `live` is a register mask the gadget must not clobber. Returns nullptr
  // if none fits.
  const Gadget* pick(GType type, isa::RegId r1, isa::RegId r2,
                     std::uint16_t live) const;

  // Like pick, but chooses uniformly among acceptable candidates — used for
  // probabilistic chain variant generation (§V-B).
  const Gadget* pick_random(GType type, isa::RegId r1, isa::RegId r2,
                            std::uint16_t live, Rng& rng) const;

  // Gadgets flagged as overlapping protected code. The chain compiler weaves
  // transparent ones into chains as verification NOPs.
  std::vector<const Gadget*> overlapping_transparent() const;

  // Mark every gadget whose byte range intersects [lo, hi) as overlapping.
  void mark_overlapping(std::uint32_t lo, std::uint32_t hi);

 private:
  bool acceptable(const Gadget& g, GType type, isa::RegId r1, isa::RegId r2,
                  std::uint16_t live) const;

  std::vector<Gadget> gadgets_;
};

}  // namespace plx::gadget

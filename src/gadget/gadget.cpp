#include "gadget/gadget.h"

#include "isa/arch.h"

namespace plx::gadget {

const char* gtype_name(GType t) {
  switch (t) {
    case GType::Unusable: return "unusable";
    case GType::Transparent: return "transparent";
    case GType::PopReg: return "pop-reg";
    case GType::MovRegReg: return "mov-reg-reg";
    case GType::AddRegReg: return "add-reg-reg";
    case GType::SubRegReg: return "sub-reg-reg";
    case GType::XorRegReg: return "xor-reg-reg";
    case GType::AndRegReg: return "and-reg-reg";
    case GType::OrRegReg: return "or-reg-reg";
    case GType::NegReg: return "neg-reg";
    case GType::NotReg: return "not-reg";
    case GType::LoadMem: return "load-mem";
    case GType::StoreMem: return "store-mem";
    case GType::AddStoreMem: return "add-store-mem";
    case GType::ShlClReg: return "shl-cl-reg";
    case GType::ShrClReg: return "shr-cl-reg";
    case GType::SarClReg: return "sar-cl-reg";
    case GType::CmpRegReg: return "cmp-reg-reg";
    case GType::TestRegReg: return "test-reg-reg";
    case GType::SetccReg: return "setcc-reg";
    case GType::MovzxReg: return "movzx-reg";
    case GType::AddEspReg: return "add-esp-reg";
    case GType::PopEsp: return "pop-esp";
  }
  return "?";
}

std::string Gadget::describe() const {
  // Register/condition spellings come from the default backend's ChainABI;
  // gadgets do not carry their Arch, and every caller that prints gadgets
  // today works on default-arch scans.
  const isa::ChainABI* abi = isa::default_arch().chain_abi();
  std::string out = gtype_name(type);
  if (r1 != isa::kNoReg && abi) {
    out += ' ';
    out += abi->reg_name(r1);
  }
  if (r2 != isa::kNoReg && abi) {
    out += ", ";
    out += abi->reg_name(r2);
  }
  if (type == GType::SetccReg && abi) {
    out += " [";
    out += abi->cond_name(cond);
    out += ']';
  }
  if (far_ret) out += " (far)";
  if (overlapping) out += " (overlap)";
  return out;
}

}  // namespace plx::gadget

// Gadget model shared by the scanner, classifier, catalog and ROP compiler.
//
// A gadget is a return-terminated instruction sequence found at *any* byte
// offset of an executable section (aligned or not — unaligned decodes are
// exactly what makes gadget-overlap protection work). The classifier assigns
// each gadget a type the ROP compiler understands, plus the bookkeeping a
// chain builder needs: which registers it clobbers, how many chain words it
// consumes, whether it ends in a far return (extra dummy word), and whether
// it performs an "incidental" memory access whose address register must be
// parked on scratch memory first (the paper's Listing 1 far-ret gadget does
// exactly this: `add [eax], al` with al == 0).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/insn.h"

namespace plx::gadget {

// Canonical gadget types, parameterised by r1/r2 (and cond for SETcc).
enum class GType : std::uint8_t {
  Unusable,    // decodes, but would derail or corrupt a chain
  Transparent, // safe to execute mid-chain; computes nothing we rely on
  PopReg,      // pop r1; ret
  MovRegReg,   // mov r1, r2; ret           (r1 := r2)
  AddRegReg,   // add r1, r2; ret
  SubRegReg,
  XorRegReg,
  AndRegReg,
  OrRegReg,
  NegReg,      // neg r1; ret
  NotReg,
  LoadMem,     // mov r1, [r2]; ret
  StoreMem,    // mov [r1], r2; ret
  AddStoreMem, // add [r1], r2; ret          (store when [r1] pre-zeroed)
  ShlClReg,    // shl r1, cl; ret
  ShrClReg,
  SarClReg,
  CmpRegReg,   // cmp r1, r2; ret            (flag producer)
  TestRegReg,  // test r1, r2; ret
  SetccReg,    // setcc r1(low byte); ret
  MovzxReg,    // movzx r1, r1_low; ret
  AddEspReg,   // add esp, r1; ret           (in-chain branch pivot)
  PopEsp,      // pop esp; ret               (chain epilogue / stack pivot)
};

const char* gtype_name(GType t);

struct Gadget {
  std::uint32_t addr = 0;
  std::uint8_t len = 0;  // total bytes including the terminating ret
  std::vector<isa::Insn> insns;  // includes the ret

  GType type = GType::Unusable;
  isa::RegId r1 = isa::kNoReg;
  isa::RegId r2 = isa::kNoReg;
  isa::CondId cond = isa::kNoCond;

  bool far_ret = false;        // retf: chain must follow with a dummy word
  std::uint16_t ret_imm = 0;   // ret imm16: chain skips this many bytes
  std::uint16_t clobbers = 0;  // GPR mask written besides the primary output
  std::int32_t disp = 0;       // Load/Store/AddStore: [r +- disp] offset
  std::uint8_t total_pops = 0;      // chain words consumed by pops
  std::uint8_t value_pop_index = 0; // PopReg: which pop carries the value
  // Registers used as addresses by incidental (harmless) memory accesses;
  // the chain must point them at scratch memory before running this gadget.
  std::uint16_t scratch_addr_regs = 0;
  // Flag-window safety for cmp/test -> setcc pairs: no instruction after the
  // primary effect writes EFLAGS / no instruction before it does.
  bool flags_clean_after_effect = true;
  bool flags_clean_before_effect = true;

  // Set by callers that know the gadget overlaps instructions scheduled for
  // protection (preferred by the chain compiler, per §III).
  bool overlapping = false;

  std::uint32_t end() const { return addr + len; }
  bool usable() const { return type != GType::Unusable; }

  std::string describe() const;
};

}  // namespace plx::gadget

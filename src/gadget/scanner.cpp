#include "gadget/scanner.h"

#include <algorithm>

#include "isa/classifier.h"
#include "support/thread_pool.h"

namespace plx::gadget {

namespace {

// A decoded chain either never reaches a ret (kNoChain) or reaches one in
// `steps` instructions spanning `len` bytes. Values are clamped just past
// the caps: anything longer is equally unusable, and clamping keeps the
// per-chunk DP independent of how far the chain runs beyond the window.
constexpr std::uint16_t kNoChain = 0;

struct ChainInfo {
  std::uint16_t steps = kNoChain;  // instructions through the terminating ret
  std::uint16_t len = 0;           // bytes through the terminating ret
};

// The backend a scan runs against (ScanOptions::arch, defaulted).
const isa::Arch& scan_arch(const ScanOptions& opts) {
  return opts.arch ? *opts.arch : isa::default_arch();
}

// Scans window, emitting only gadgets whose start offset lies in
// [emit_begin, emit_end). `base` is the virtual address of window[0].
void scan_window(std::span<const std::uint8_t> window, std::uint32_t base,
                 const ScanOptions& opts, std::size_t emit_begin,
                 std::size_t emit_end, std::vector<Gadget>& out) {
  const std::size_t n = window.size();
  if (n == 0 || emit_begin >= emit_end) return;
  const isa::Arch& arch = scan_arch(opts);
  const isa::Decoder& decoder = arch.decoder();
  const std::uint32_t align = arch.insn_align();

  // Pass 1: decode every decode site exactly once. On x86 every byte offset
  // is a site (align == 1); ISAs with an alignment rule skip misaligned
  // addresses entirely.
  std::vector<isa::Insn> dec(n);  // dec[i].valid() == false where undecodable
  for (std::size_t i = 0; i < n; ++i) {
    if (align > 1 && (base + i) % align != 0) continue;
    dec[i] = decoder.decode(window.subspan(i));
  }

  // Pass 2: successor-chain DP, back to front (successors have higher
  // offsets). chain[i] describes the unique run of straight-line
  // instructions from offset i through its terminating ret, if any.
  const auto cap_steps = static_cast<std::uint16_t>(
      std::min(opts.max_insns + 1, 0xffff));
  const auto cap_len = static_cast<std::uint16_t>(
      std::min(opts.max_bytes + 1, 0xffff));
  std::vector<ChainInfo> chain(n);
  for (std::size_t i = n; i-- > 0;) {
    const isa::Insn& insn = dec[i];
    if (!insn.valid()) continue;
    if (insn.flow == isa::Flow::Ret) {
      chain[i] = {1, insn.len};
      continue;
    }
    if (insn.flow == isa::Flow::Branch) continue;  // control flow derails the chain
    const std::size_t next = i + insn.len;
    if (next >= n || chain[next].steps == kNoChain) continue;
    chain[i].steps = static_cast<std::uint16_t>(
        std::min<int>(chain[next].steps + 1, cap_steps));
    chain[i].len = static_cast<std::uint16_t>(
        std::min<int>(chain[next].len + insn.len, cap_len));
  }

  // Pass 3: emit, in ascending start offset (the naive scan's order).
  for (std::size_t off = emit_begin; off < emit_end; ++off) {
    const ChainInfo& c = chain[off];
    if (c.steps == kNoChain || c.steps > opts.max_insns ||
        c.len > opts.max_bytes) {
      continue;
    }
    Gadget g;
    g.addr = base + static_cast<std::uint32_t>(off);
    g.len = static_cast<std::uint8_t>(c.len);
    g.insns.reserve(c.steps);
    for (std::size_t cur = off; g.insns.size() < c.steps; cur += dec[cur].len) {
      g.insns.push_back(dec[cur]);
    }
    arch.classifier().classify(g.insns, g);
    if (g.usable() || opts.include_unusable) out.push_back(std::move(g));
  }
}

// Bytes of window needed past a chunk's emit range so every chain that the
// full-section scan would accept is fully visible: a chain is capped at
// max_bytes, and a lone instruction can encode up to the backend's maximum
// length (15 on x86).
std::size_t seam_overlap(const ScanOptions& opts) {
  const int max_len = static_cast<int>(scan_arch(opts).max_insn_len());
  return static_cast<std::size_t>(std::max(opts.max_bytes, max_len)) + 1;
}

}  // namespace

std::vector<Gadget> scan_bytes(std::span<const std::uint8_t> bytes,
                               std::uint32_t base, const ScanOptions& opts) {
  std::vector<Gadget> out;
  scan_window(bytes, base, opts, 0, bytes.size(), out);
  return out;
}

std::vector<Gadget> scan_bytes_reference(std::span<const std::uint8_t> bytes,
                                         std::uint32_t base,
                                         const ScanOptions& opts) {
  std::vector<Gadget> out;
  const isa::Arch& arch = scan_arch(opts);
  const isa::Decoder& decoder = arch.decoder();
  const std::uint32_t align = arch.insn_align();
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    if (align > 1 && (base + off) % align != 0) continue;
    // Decode forward from this offset until a ret, a rejection, or the caps.
    std::vector<isa::Insn> insns;
    std::size_t cur = off;
    bool terminated = false;
    for (int k = 0; k < opts.max_insns; ++k) {
      if (cur >= bytes.size() || static_cast<int>(cur - off) > opts.max_bytes) break;
      const isa::Insn insn = decoder.decode(bytes.subspan(cur));
      if (!insn.valid()) break;
      if (static_cast<int>(cur - off + insn.len) > opts.max_bytes) break;
      insns.push_back(insn);
      cur += insn.len;
      if (insn.flow == isa::Flow::Ret) {
        terminated = true;
        break;
      }
      // Control flow other than the terminating ret aborts the sequence.
      if (insn.flow == isa::Flow::Branch) break;
    }
    if (!terminated) continue;

    Gadget g;
    g.addr = base + static_cast<std::uint32_t>(off);
    g.len = static_cast<std::uint8_t>(cur - off);
    g.insns = std::move(insns);
    arch.classifier().classify(g.insns, g);
    if (g.usable() || opts.include_unusable) out.push_back(std::move(g));
  }
  return out;
}

std::vector<Gadget> scan(const img::Image& image, const ScanOptions& opts) {
  // Build the chunk work list: executable sections split into chunks, each
  // scanning a window extended past its emit range by the seam overlap.
  struct Chunk {
    const img::Section* sec;
    std::size_t begin, end;  // emit range within the section
  };
  std::vector<Chunk> chunks;
  std::size_t chunk_bytes = opts.chunk_bytes;
  if (chunk_bytes == 0) {
    // Big enough that per-chunk decode dominates dispatch overhead.
    chunk_bytes = 16 * 1024;
  }
  for (const auto& sec : image.sections) {
    if (!(sec.perms & img::kPermExec)) continue;
    const std::size_t n = sec.bytes.size();
    for (std::size_t b = 0; b < n; b += chunk_bytes) {
      chunks.push_back({&sec, b, std::min(b + chunk_bytes, n)});
    }
  }

  std::vector<std::vector<Gadget>> found(chunks.size());
  auto run_chunk = [&](std::size_t ci) {
    const Chunk& c = chunks[ci];
    const std::size_t win_end =
        std::min(c.end + seam_overlap(opts), c.sec->bytes.size());
    const auto window = c.sec->bytes.span().subspan(c.begin, win_end - c.begin);
    scan_window(window, c.sec->vaddr + static_cast<std::uint32_t>(c.begin),
                opts, 0, c.end - c.begin, found[ci]);
  };

  if (opts.parallel && chunks.size() > 1) {
    support::ThreadPool::shared().parallel_for(chunks.size(), run_chunk);
  } else {
    for (std::size_t ci = 0; ci < chunks.size(); ++ci) run_chunk(ci);
  }

  // Concatenate in chunk order: identical to the sequential section scan.
  std::vector<Gadget> out;
  std::size_t total = 0;
  for (const auto& f : found) total += f.size();
  out.reserve(total);
  for (auto& f : found) {
    out.insert(out.end(), std::make_move_iterator(f.begin()),
               std::make_move_iterator(f.end()));
  }
  return out;
}

}  // namespace plx::gadget

#include "gadget/scanner.h"

#include "gadget/classify.h"
#include "x86/decoder.h"

namespace plx::gadget {

std::vector<Gadget> scan_bytes(std::span<const std::uint8_t> bytes,
                               std::uint32_t base, const ScanOptions& opts) {
  std::vector<Gadget> out;
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    // Decode forward from this offset until a ret, a rejection, or the caps.
    std::vector<x86::Insn> insns;
    std::size_t cur = off;
    bool terminated = false;
    for (int k = 0; k < opts.max_insns; ++k) {
      if (cur >= bytes.size() || static_cast<int>(cur - off) > opts.max_bytes) break;
      const auto insn = x86::decode(bytes.subspan(cur));
      if (!insn) break;
      if (static_cast<int>(cur - off + insn->len) > opts.max_bytes) break;
      insns.push_back(*insn);
      cur += insn->len;
      if (insn->is_ret()) {
        terminated = true;
        break;
      }
      // Control flow other than the terminating ret aborts the sequence.
      if (insn->is_branch()) break;
    }
    if (!terminated) continue;

    Gadget g;
    g.addr = base + static_cast<std::uint32_t>(off);
    g.len = static_cast<std::uint8_t>(cur - off);
    g.insns = std::move(insns);
    classify(g.insns, g);
    if (g.usable() || opts.include_unusable) out.push_back(std::move(g));
  }
  return out;
}

std::vector<Gadget> scan(const img::Image& image, const ScanOptions& opts) {
  std::vector<Gadget> out;
  for (const auto& sec : image.sections) {
    if (!(sec.perms & img::kPermExec)) continue;
    auto found = scan_bytes(sec.bytes.span(), sec.vaddr, opts);
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  return out;
}

}  // namespace plx::gadget

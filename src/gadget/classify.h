// Gadget semantic classification.
//
// Given a decoded straight-line instruction sequence ending in ret/retf,
// decide what the ROP compiler can do with it. The analysis is a small
// forward simulation with byte-granular constant tracking, which is exactly
// enough to recognise the paper's "harmless side effect" cases — e.g. the
// Listing 1 gadget `and al,0; add [eax],al; add al,ch; retf`, whose memory
// write is provably a no-op because al is known to be zero.
#pragma once

#include <span>

#include "gadget/gadget.h"

namespace plx::gadget {

// `insns` must end with RET or RETF; fills every semantic field of `out`
// except addr/len/overlapping (caller bookkeeping).
void classify(std::span<const x86::Insn> insns, Gadget& out);

}  // namespace plx::gadget

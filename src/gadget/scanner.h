// Gadget scanner: finds every return-terminated instruction sequence at
// every byte offset of the executable sections of an image.
#pragma once

#include <vector>

#include "gadget/gadget.h"
#include "image/image.h"

namespace plx::gadget {

struct ScanOptions {
  // The paper limits gadgets to six instructions (§VII-A): longer ones are
  // hard to use in practical chains.
  int max_insns = 6;
  int max_bytes = 30;
  bool include_unusable = false;  // keep Unusable gadgets in the output
};

std::vector<Gadget> scan(const img::Image& image, const ScanOptions& opts = {});

// Scans one byte region (used by tests and the rewriter's re-verification).
std::vector<Gadget> scan_bytes(std::span<const std::uint8_t> bytes,
                               std::uint32_t base, const ScanOptions& opts = {});

}  // namespace plx::gadget

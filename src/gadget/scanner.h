// Gadget scanner: finds every return-terminated instruction sequence at
// every byte offset of the executable sections of an image.
//
// The scan is memoized: each byte offset is decoded exactly once, successor
// links (offset -> offset + insn.len) form chains, and a reverse pass marks
// every offset whose chain reaches a ret within the instruction/byte caps.
// This is O(n) decodes instead of the naive O(n * max_insns). scan() further
// shards big sections into chunks run on the shared thread pool; chunks
// overlap at the seams by the maximum gadget length so no gadget is missed,
// and results are concatenated in chunk order, so the output is
// byte-identical to a sequential scan (tests/test_scanner_equivalence.cpp
// asserts this against a naive reference).
#pragma once

#include <vector>

#include "gadget/gadget.h"
#include "image/image.h"
#include "isa/arch.h"

namespace plx::gadget {

struct ScanOptions {
  // The paper limits gadgets to six instructions (§VII-A): longer ones are
  // hard to use in practical chains.
  int max_insns = 6;
  int max_bytes = 30;
  bool include_unusable = false;  // keep Unusable gadgets in the output

  // Sharding knobs for scan(). chunk_bytes == 0 picks a chunk size
  // automatically; tests set a tiny value to force seams through small
  // inputs. parallel == false keeps everything on the calling thread.
  std::size_t chunk_bytes = 0;
  bool parallel = true;

  // Backend whose decoder/classifier drive the scan; nullptr selects
  // isa::default_arch() (x86), which every pre-seam call site assumed.
  const isa::Arch* arch = nullptr;
};

std::vector<Gadget> scan(const img::Image& image, const ScanOptions& opts = {});

// Scans one byte region (used by tests and the rewriter's re-verification).
// Memoized single-threaded scan; same output as the naive reference.
std::vector<Gadget> scan_bytes(std::span<const std::uint8_t> bytes,
                               std::uint32_t base, const ScanOptions& opts = {});

// Reference implementation: re-decodes from every start offset (the
// pre-memoization algorithm). Kept for the equivalence tests; O(n * max_insns)
// decodes — do not use on hot paths.
std::vector<Gadget> scan_bytes_reference(std::span<const std::uint8_t> bytes,
                                         std::uint32_t base,
                                         const ScanOptions& opts = {});

}  // namespace plx::gadget

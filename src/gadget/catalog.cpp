#include "gadget/catalog.h"

#include <algorithm>
#include <bit>

namespace plx::gadget {

Catalog::Catalog(std::vector<Gadget> gadgets) : gadgets_(std::move(gadgets)) {}

void Catalog::add(Gadget g) { gadgets_.push_back(std::move(g)); }

bool Catalog::acceptable(const Gadget& g, GType type, isa::RegId r1,
                         isa::RegId r2, std::uint16_t live) const {
  if (g.type != type) return false;
  if (r1 != isa::kNoReg && g.r1 != r1) return false;
  if (r2 != isa::kNoReg && g.r2 != r2) return false;
  if (g.clobbers & live) return false;
  return true;
}

std::vector<const Gadget*> Catalog::find(GType type, isa::RegId r1,
                                         isa::RegId r2) const {
  std::vector<const Gadget*> out;
  for (const auto& g : gadgets_) {
    if (acceptable(g, type, r1, r2, 0)) out.push_back(&g);
  }
  std::stable_sort(out.begin(), out.end(), [](const Gadget* a, const Gadget* b) {
    return a->overlapping > b->overlapping;
  });
  return out;
}

const Gadget* Catalog::pick(GType type, isa::RegId r1, isa::RegId r2,
                            std::uint16_t live) const {
  const Gadget* best = nullptr;
  auto cost = [](const Gadget& g) {
    // Cheaper = fewer chain complications.
    return static_cast<int>(g.total_pops) * 4 + (g.far_ret ? 2 : 0) +
           (g.ret_imm ? 2 : 0) + std::popcount(g.scratch_addr_regs) * 3 +
           std::popcount(g.clobbers);
  };
  for (const auto& g : gadgets_) {
    if (!acceptable(g, type, r1, r2, live)) continue;
    if (!best) {
      best = &g;
      continue;
    }
    // Overlapping gadgets always win (§III); then minimise side effects.
    const auto rank_best = std::pair(best->overlapping ? 0 : 1, cost(*best));
    const auto rank_g = std::pair(g.overlapping ? 0 : 1, cost(g));
    if (rank_g < rank_best) best = &g;
  }
  return best;
}

const Gadget* Catalog::pick_random(GType type, isa::RegId r1, isa::RegId r2,
                                   std::uint16_t live, Rng& rng) const {
  std::vector<const Gadget*> candidates;
  for (const auto& g : gadgets_) {
    if (acceptable(g, type, r1, r2, live)) candidates.push_back(&g);
  }
  if (candidates.empty()) return nullptr;
  return candidates[rng.below(static_cast<std::uint32_t>(candidates.size()))];
}

std::vector<const Gadget*> Catalog::overlapping_transparent() const {
  std::vector<const Gadget*> out;
  for (const auto& g : gadgets_) {
    if (g.overlapping && g.type == GType::Transparent) out.push_back(&g);
  }
  return out;
}

void Catalog::mark_overlapping(std::uint32_t lo, std::uint32_t hi) {
  for (auto& g : gadgets_) {
    if (g.addr < hi && g.end() > lo) g.overlapping = true;
  }
}

}  // namespace plx::gadget

#include "gadget/catalog.h"

#include <algorithm>
#include <bit>

#include "x86/build.h"

namespace plx::gadget {

using x86::Cond;
using x86::Reg;

Catalog::Catalog(std::vector<Gadget> gadgets) : gadgets_(std::move(gadgets)) {}

void Catalog::add(Gadget g) { gadgets_.push_back(std::move(g)); }

bool Catalog::acceptable(const Gadget& g, GType type, Reg r1, Reg r2,
                         std::uint16_t live) const {
  if (g.type != type) return false;
  if (r1 != Reg::NONE && g.r1 != r1) return false;
  if (r2 != Reg::NONE && g.r2 != r2) return false;
  if (g.clobbers & live) return false;
  return true;
}

std::vector<const Gadget*> Catalog::find(GType type, Reg r1, Reg r2) const {
  std::vector<const Gadget*> out;
  for (const auto& g : gadgets_) {
    if (acceptable(g, type, r1, r2, 0)) out.push_back(&g);
  }
  std::stable_sort(out.begin(), out.end(), [](const Gadget* a, const Gadget* b) {
    return a->overlapping > b->overlapping;
  });
  return out;
}

const Gadget* Catalog::pick(GType type, Reg r1, Reg r2, std::uint16_t live) const {
  const Gadget* best = nullptr;
  auto cost = [](const Gadget& g) {
    // Cheaper = fewer chain complications.
    return static_cast<int>(g.total_pops) * 4 + (g.far_ret ? 2 : 0) +
           (g.ret_imm ? 2 : 0) + std::popcount(g.scratch_addr_regs) * 3 +
           std::popcount(g.clobbers);
  };
  for (const auto& g : gadgets_) {
    if (!acceptable(g, type, r1, r2, live)) continue;
    if (!best) {
      best = &g;
      continue;
    }
    // Overlapping gadgets always win (§III); then minimise side effects.
    const auto rank_best = std::pair(best->overlapping ? 0 : 1, cost(*best));
    const auto rank_g = std::pair(g.overlapping ? 0 : 1, cost(g));
    if (rank_g < rank_best) best = &g;
  }
  return best;
}

const Gadget* Catalog::pick_random(GType type, Reg r1, Reg r2, std::uint16_t live,
                                   Rng& rng) const {
  std::vector<const Gadget*> candidates;
  for (const auto& g : gadgets_) {
    if (acceptable(g, type, r1, r2, live)) candidates.push_back(&g);
  }
  if (candidates.empty()) return nullptr;
  return candidates[rng.below(static_cast<std::uint32_t>(candidates.size()))];
}

std::vector<const Gadget*> Catalog::overlapping_transparent() const {
  std::vector<const Gadget*> out;
  for (const auto& g : gadgets_) {
    if (g.overlapping && g.type == GType::Transparent) out.push_back(&g);
  }
  return out;
}

void Catalog::mark_overlapping(std::uint32_t lo, std::uint32_t hi) {
  for (auto& g : gadgets_) {
    if (g.addr < hi && g.end() > lo) g.overlapping = true;
  }
}

img::Fragment utility_gadget_fragment(const std::string& name) {
  using namespace x86::ins;
  img::Fragment frag;
  frag.name = name;
  frag.section = img::SectionKind::Text;
  frag.is_func = true;  // gives it a sized symbol for diagnostics
  frag.align = 16;

  auto gadget = [&frag](std::initializer_list<x86::Insn> insns) {
    for (const auto& i : insns) frag.items.push_back(img::Item::make_insn(i));
    frag.items.push_back(img::Item::make_insn(ret()));
  };

  // Value loads (ebp included: chains park it for incidental [ebp+d] gadgets).
  for (Reg r : {Reg::EAX, Reg::ECX, Reg::EDX, Reg::EBX, Reg::EBP, Reg::ESI, Reg::EDI}) {
    gadget({pop(r)});
  }
  // Register moves used by the compiler's canonical sequences.
  gadget({mov(Reg::EAX, Reg::EDX)});
  gadget({mov(Reg::EDX, Reg::EAX)});
  gadget({mov(Reg::ECX, Reg::EAX)});
  gadget({mov(Reg::ECX, Reg::EDX)});
  gadget({mov(Reg::EAX, Reg::ECX)});
  // Loads/stores through ecx.
  gadget({load(Reg::EAX, x86::Mem{.base = Reg::ECX})});
  gadget({load(Reg::EDX, x86::Mem{.base = Reg::ECX})});
  gadget({store(x86::Mem{.base = Reg::ECX}, Reg::EAX)});
  // ALU on eax, edx.
  gadget({add(Reg::EAX, Reg::EDX)});
  gadget({sub(Reg::EAX, Reg::EDX)});
  gadget({xor_(Reg::EAX, Reg::EDX)});
  gadget({and_(Reg::EAX, Reg::EDX)});
  gadget({or_(Reg::EAX, Reg::EDX)});
  gadget({neg(Reg::EAX)});
  gadget({not_(Reg::EAX)});
  // Shifts by cl.
  gadget({shl_cl(Reg::EAX)});
  gadget({shr_cl(Reg::EAX)});
  gadget({sar_cl(Reg::EAX)});
  // Comparison + materialisation.
  gadget({cmp(Reg::EAX, Reg::EDX)});
  gadget({test(Reg::EAX, Reg::EAX)});
  for (int cc = 0; cc < 16; ++cc) {
    gadget({setcc(static_cast<Cond>(cc), Reg::EAX)});
  }
  gadget({movzx8(Reg::EAX, Reg::EAX)});
  // Chain pivots: in-chain branch and epilogue.
  gadget({x86::ins::make2(x86::Mnemonic::ADD, r(Reg::ESP), r(Reg::EAX))});
  gadget({x86::ins::make1(x86::Mnemonic::POP, r(Reg::ESP))});
  return frag;
}

}  // namespace plx::gadget

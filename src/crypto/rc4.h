// RC4 stream cipher (host side).
//
// The paper evaluates RC4-encrypted function chains (§V-B, Figure 5). The
// host-side implementation here encrypts chain bytes at protect time; the
// matching decryptor that runs *inside* the protected program is mini-C code
// in src/verify/hardening.cpp, and tests cross-check the two.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace plx::crypto {

class Rc4 {
 public:
  explicit Rc4(std::span<const std::uint8_t> key);

  std::uint8_t next();  // next keystream byte
  void crypt(std::span<std::uint8_t> data);  // xor data with keystream

 private:
  std::uint8_t s_[256];
  std::uint8_t i_ = 0, j_ = 0;
};

std::vector<std::uint8_t> rc4_crypt(std::span<const std::uint8_t> key,
                                    std::span<const std::uint8_t> data);

}  // namespace plx::crypto

#include "crypto/xorstream.h"

namespace plx::crypto {

void xor_crypt_inplace(std::span<std::uint8_t> data, std::span<const std::uint8_t> key) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= key[i % key.size()];
  }
}

std::vector<std::uint8_t> xor_crypt(std::span<const std::uint8_t> key,
                                    std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  xor_crypt_inplace(out, key);
  return out;
}

}  // namespace plx::crypto

// Repeating-key XOR (host side), the cheapest chain-hardening option the
// paper evaluates. Involution: applying twice restores the plaintext.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace plx::crypto {

void xor_crypt_inplace(std::span<std::uint8_t> data, std::span<const std::uint8_t> key);

std::vector<std::uint8_t> xor_crypt(std::span<const std::uint8_t> key,
                                    std::span<const std::uint8_t> data);

}  // namespace plx::crypto

#include "crypto/rc4.h"

#include <utility>

namespace plx::crypto {

Rc4::Rc4(std::span<const std::uint8_t> key) {
  for (int i = 0; i < 256; ++i) s_[i] = static_cast<std::uint8_t>(i);
  std::uint8_t j = 0;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<std::uint8_t>(j + s_[i] + key[static_cast<std::size_t>(i) % key.size()]);
    std::swap(s_[i], s_[j]);
  }
}

std::uint8_t Rc4::next() {
  i_ = static_cast<std::uint8_t>(i_ + 1);
  j_ = static_cast<std::uint8_t>(j_ + s_[i_]);
  std::swap(s_[i_], s_[j_]);
  return s_[static_cast<std::uint8_t>(s_[i_] + s_[j_])];
}

void Rc4::crypt(std::span<std::uint8_t> data) {
  for (auto& b : data) b ^= next();
}

std::vector<std::uint8_t> rc4_crypt(std::span<const std::uint8_t> key,
                                    std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  Rc4 rc4(key);
  rc4.crypt(out);
  return out;
}

}  // namespace plx::crypto

#include "cc/parser.h"

namespace plx::cc {

namespace {

struct Parser {
  std::vector<Token> toks;
  std::size_t pos = 0;
  std::string error;
  std::string error_func;  // function being parsed when the error fired
  std::string cur_func;

  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos + static_cast<std::size_t>(ahead);
    return toks[std::min(i, toks.size() - 1)];
  }
  const Token& cur() const { return peek(0); }
  Token take() { return toks[std::min(pos++, toks.size() - 1)]; }
  bool at(Tok t) const { return cur().kind == t; }
  bool accept(Tok t) {
    if (!at(t)) return false;
    ++pos;
    return true;
  }

  bool err(const std::string& msg) {
    if (error.empty()) {
      error = "line " + std::to_string(cur().line) + ": " + msg;
      error_func = cur_func;
    }
    return false;
  }
  bool expect(Tok t) {
    if (accept(t)) return true;
    return err(std::string("expected '") + tok_name(t) + "', got '" +
               tok_name(cur().kind) + "'");
  }

  // --- types ----------------------------------------------------------------
  bool is_type_start() const {
    return at(Tok::KwInt) || at(Tok::KwChar) || at(Tok::KwVoid);
  }

  bool parse_type(Type& out) {
    if (accept(Tok::KwInt)) {
      out.base = Type::Base::Int;
    } else if (accept(Tok::KwChar)) {
      out.base = Type::Base::Char;
    } else if (accept(Tok::KwVoid)) {
      out.base = Type::Base::Void;
    } else {
      return err("expected a type");
    }
    out.ptr = 0;
    while (accept(Tok::Star)) ++out.ptr;
    if (out.ptr > 1) return err("only single-level pointers are supported");
    if (out.base == Type::Base::Void && out.ptr > 0) return err("void* not supported");
    return true;
  }

  // --- expressions ------------------------------------------------------
  ExprPtr make(Expr::K k) {
    auto e = std::make_unique<Expr>();
    e->k = k;
    e->line = cur().line;
    return e;
  }

  ExprPtr parse_expr() { return parse_assign(); }

  ExprPtr parse_assign() {
    ExprPtr lhs = parse_logor();
    if (!lhs) return nullptr;
    if (accept(Tok::Assign)) {
      auto e = make(Expr::K::Assign);
      ExprPtr rhs = parse_assign();
      if (!rhs) return nullptr;
      if (lhs->k != Expr::K::Ident && lhs->k != Expr::K::Index &&
          !(lhs->k == Expr::K::Unary && lhs->op == Tok::Star)) {
        err("assignment target must be a variable, index or dereference");
        return nullptr;
      }
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      return e;
    }
    return lhs;
  }

  ExprPtr parse_logor() {
    ExprPtr a = parse_logand();
    if (!a) return nullptr;
    while (at(Tok::PipePipe)) {
      take();
      auto e = make(Expr::K::LogOr);
      e->a = std::move(a);
      e->b = parse_logand();
      if (!e->b) return nullptr;
      a = std::move(e);
    }
    return a;
  }

  ExprPtr parse_logand() {
    ExprPtr a = parse_bitor();
    if (!a) return nullptr;
    while (at(Tok::AmpAmp)) {
      take();
      auto e = make(Expr::K::LogAnd);
      e->a = std::move(a);
      e->b = parse_bitor();
      if (!e->b) return nullptr;
      a = std::move(e);
    }
    return a;
  }

  // Generic left-associative binary level.
  template <typename Next>
  ExprPtr binary_level(std::initializer_list<Tok> ops, Next next) {
    ExprPtr a = next();
    if (!a) return nullptr;
    for (;;) {
      bool matched = false;
      for (Tok t : ops) {
        if (at(t)) {
          auto e = make(Expr::K::Binary);
          e->op = take().kind;
          e->a = std::move(a);
          e->b = next();
          if (!e->b) return nullptr;
          a = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) return a;
    }
  }

  ExprPtr parse_bitor() {
    return binary_level({Tok::Pipe}, [this] { return parse_bitxor(); });
  }
  ExprPtr parse_bitxor() {
    return binary_level({Tok::Caret}, [this] { return parse_bitand(); });
  }
  ExprPtr parse_bitand() {
    return binary_level({Tok::Amp}, [this] { return parse_equality(); });
  }
  ExprPtr parse_equality() {
    return binary_level({Tok::EqEq, Tok::Ne}, [this] { return parse_relational(); });
  }
  ExprPtr parse_relational() {
    return binary_level({Tok::Lt, Tok::Gt, Tok::Le, Tok::Ge},
                        [this] { return parse_shift(); });
  }
  ExprPtr parse_shift() {
    return binary_level({Tok::Shl, Tok::Shr}, [this] { return parse_additive(); });
  }
  ExprPtr parse_additive() {
    return binary_level({Tok::Plus, Tok::Minus}, [this] { return parse_term(); });
  }
  ExprPtr parse_term() {
    return binary_level({Tok::Star, Tok::Slash, Tok::Percent},
                        [this] { return parse_unary(); });
  }

  ExprPtr parse_unary() {
    if (at(Tok::Minus) || at(Tok::Tilde) || at(Tok::Bang) || at(Tok::Star) ||
        at(Tok::Amp)) {
      auto e = make(Expr::K::Unary);
      e->op = take().kind;
      e->a = parse_unary();
      if (!e->a) return nullptr;
      if (e->op == Tok::Amp && e->a->k != Expr::K::Ident && e->a->k != Expr::K::Index) {
        err("'&' needs a variable or array element");
        return nullptr;
      }
      return e;
    }
    if (at(Tok::PlusPlus) || at(Tok::MinusMinus)) {
      auto e = make(Expr::K::IncDec);
      e->op = take().kind;
      e->a = parse_unary();
      if (!e->a) return nullptr;
      if (e->a->k != Expr::K::Ident && e->a->k != Expr::K::Index) {
        err("++/-- needs a variable or array element");
        return nullptr;
      }
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr a = parse_primary();
    if (!a) return nullptr;
    for (;;) {
      if (accept(Tok::LBracket)) {
        auto e = make(Expr::K::Index);
        e->a = std::move(a);
        e->b = parse_expr();
        if (!e->b || !expect(Tok::RBracket)) return nullptr;
        a = std::move(e);
        continue;
      }
      if (at(Tok::PlusPlus) || at(Tok::MinusMinus)) {
        // Postfix inc/dec: same node; value semantics are "updated value",
        // which our workloads only use in statement position anyway.
        auto e = make(Expr::K::IncDec);
        e->op = take().kind;
        if (a->k != Expr::K::Ident && a->k != Expr::K::Index) {
          err("++/-- needs a variable or array element");
          return nullptr;
        }
        e->a = std::move(a);
        a = std::move(e);
        continue;
      }
      return a;
    }
  }

  ExprPtr parse_primary() {
    if (at(Tok::Number) || at(Tok::CharLit)) {
      auto e = make(Expr::K::Num);
      e->value = take().value;
      return e;
    }
    if (at(Tok::String)) {
      auto e = make(Expr::K::Str);
      e->text = take().text;
      return e;
    }
    if (accept(Tok::KwSyscall)) {
      auto e = make(Expr::K::Syscall);
      if (!expect(Tok::LParen)) return nullptr;
      if (!at(Tok::RParen)) {
        do {
          ExprPtr arg = parse_expr();
          if (!arg) return nullptr;
          e->args.push_back(std::move(arg));
        } while (accept(Tok::Comma));
      }
      if (!expect(Tok::RParen)) return nullptr;
      if (e->args.empty() || e->args.size() > 4) {
        err("__syscall takes 1..4 arguments");
        return nullptr;
      }
      return e;
    }
    if (at(Tok::Ident)) {
      std::string name = take().text;
      if (accept(Tok::LParen)) {
        auto e = make(Expr::K::Call);
        e->name = std::move(name);
        if (!at(Tok::RParen)) {
          do {
            ExprPtr arg = parse_expr();
            if (!arg) return nullptr;
            e->args.push_back(std::move(arg));
          } while (accept(Tok::Comma));
        }
        if (!expect(Tok::RParen)) return nullptr;
        return e;
      }
      auto e = make(Expr::K::Ident);
      e->name = std::move(name);
      return e;
    }
    if (accept(Tok::LParen)) {
      ExprPtr e = parse_expr();
      if (!e || !expect(Tok::RParen)) return nullptr;
      return e;
    }
    err(std::string("unexpected token '") + tok_name(cur().kind) + "'");
    return nullptr;
  }

  // --- statements -------------------------------------------------------
  StmtPtr make_stmt(Stmt::K k) {
    auto s = std::make_unique<Stmt>();
    s->k = k;
    s->line = cur().line;
    return s;
  }

  bool parse_block(std::vector<StmtPtr>& out) {
    if (!expect(Tok::LBrace)) return false;
    while (!at(Tok::RBrace)) {
      if (at(Tok::End)) return err("unterminated block");
      StmtPtr s = parse_stmt();
      if (!s) return false;
      out.push_back(std::move(s));
    }
    return expect(Tok::RBrace);
  }

  StmtPtr parse_stmt() {
    if (is_type_start()) {
      auto s = make_stmt(Stmt::K::Decl);
      if (!parse_type(s->type)) return nullptr;
      if (!at(Tok::Ident)) {
        err("expected variable name");
        return nullptr;
      }
      s->name = take().text;
      if (accept(Tok::LBracket)) {
        if (!at(Tok::Number)) {
          err("array size must be a number literal");
          return nullptr;
        }
        s->array_size = take().value;
        if (!expect(Tok::RBracket)) return nullptr;
      } else if (accept(Tok::Assign)) {
        s->init = parse_expr();
        if (!s->init) return nullptr;
      }
      if (!expect(Tok::Semi)) return nullptr;
      return s;
    }
    if (accept(Tok::KwIf)) {
      auto s = make_stmt(Stmt::K::If);
      if (!expect(Tok::LParen)) return nullptr;
      s->expr = parse_expr();
      if (!s->expr || !expect(Tok::RParen)) return nullptr;
      if (at(Tok::LBrace)) {
        if (!parse_block(s->body)) return nullptr;
      } else {
        StmtPtr one = parse_stmt();
        if (!one) return nullptr;
        s->body.push_back(std::move(one));
      }
      if (accept(Tok::KwElse)) {
        if (at(Tok::LBrace)) {
          if (!parse_block(s->else_body)) return nullptr;
        } else {
          StmtPtr one = parse_stmt();
          if (!one) return nullptr;
          s->else_body.push_back(std::move(one));
        }
      }
      return s;
    }
    if (accept(Tok::KwWhile)) {
      auto s = make_stmt(Stmt::K::While);
      if (!expect(Tok::LParen)) return nullptr;
      s->expr = parse_expr();
      if (!s->expr || !expect(Tok::RParen)) return nullptr;
      if (at(Tok::LBrace)) {
        if (!parse_block(s->body)) return nullptr;
      } else {
        StmtPtr one = parse_stmt();
        if (!one) return nullptr;
        s->body.push_back(std::move(one));
      }
      return s;
    }
    if (accept(Tok::KwFor)) {
      auto s = make_stmt(Stmt::K::For);
      if (!expect(Tok::LParen)) return nullptr;
      if (!at(Tok::Semi)) {
        s->init_stmt = parse_stmt();  // decl or expr statement (eats ';')
        if (!s->init_stmt) return nullptr;
        if (s->init_stmt->k != Stmt::K::Decl && s->init_stmt->k != Stmt::K::Expr) {
          err("bad for-initialiser");
          return nullptr;
        }
      } else {
        take();
      }
      if (!at(Tok::Semi)) {
        s->expr = parse_expr();
        if (!s->expr) return nullptr;
      }
      if (!expect(Tok::Semi)) return nullptr;
      if (!at(Tok::RParen)) {
        s->step = parse_expr();
        if (!s->step) return nullptr;
      }
      if (!expect(Tok::RParen)) return nullptr;
      if (at(Tok::LBrace)) {
        if (!parse_block(s->body)) return nullptr;
      } else {
        StmtPtr one = parse_stmt();
        if (!one) return nullptr;
        s->body.push_back(std::move(one));
      }
      return s;
    }
    if (accept(Tok::KwReturn)) {
      auto s = make_stmt(Stmt::K::Return);
      if (!at(Tok::Semi)) {
        s->expr = parse_expr();
        if (!s->expr) return nullptr;
      }
      if (!expect(Tok::Semi)) return nullptr;
      return s;
    }
    if (accept(Tok::KwBreak)) {
      auto s = make_stmt(Stmt::K::Break);
      if (!expect(Tok::Semi)) return nullptr;
      return s;
    }
    if (accept(Tok::KwContinue)) {
      auto s = make_stmt(Stmt::K::Continue);
      if (!expect(Tok::Semi)) return nullptr;
      return s;
    }
    if (at(Tok::LBrace)) {
      auto s = make_stmt(Stmt::K::Block);
      if (!parse_block(s->body)) return nullptr;
      return s;
    }
    auto s = make_stmt(Stmt::K::Expr);
    s->expr = parse_expr();
    if (!s->expr || !expect(Tok::Semi)) return nullptr;
    return s;
  }

  // --- top level --------------------------------------------------------
  bool parse_global_init(GlobalVar& g) {
    if (!accept(Tok::Assign)) return true;
    if (at(Tok::String)) {
      g.str_init = take().text;
      g.has_str_init = true;
      return true;
    }
    if (accept(Tok::LBrace)) {
      do {
        bool neg = accept(Tok::Minus);
        if (!at(Tok::Number) && !at(Tok::CharLit)) return err("bad array initialiser");
        const std::int32_t v = take().value;
        g.init.push_back(neg ? -v : v);
      } while (accept(Tok::Comma));
      return expect(Tok::RBrace);
    }
    bool neg = accept(Tok::Minus);
    if (!at(Tok::Number) && !at(Tok::CharLit)) return err("bad initialiser");
    const std::int32_t v = take().value;
    g.init.push_back(neg ? -v : v);
    return true;
  }

  bool parse_program(Program& prog) {
    while (!at(Tok::End)) {
      Type type;
      if (!parse_type(type)) return false;
      if (!at(Tok::Ident)) return err("expected a name");
      const int line = cur().line;
      std::string name = take().text;

      if (accept(Tok::LParen)) {
        Func fn;
        fn.ret = type;
        fn.name = std::move(name);
        fn.line = line;
        if (!at(Tok::RParen)) {
          do {
            if (at(Tok::KwVoid) && peek(1).kind == Tok::RParen) {
              take();
              break;
            }
            Param p;
            if (!parse_type(p.type)) return false;
            if (!at(Tok::Ident)) return err("expected parameter name");
            p.name = take().text;
            fn.params.push_back(std::move(p));
          } while (accept(Tok::Comma));
        }
        if (!expect(Tok::RParen)) return false;
        cur_func = fn.name;
        if (!parse_block(fn.body)) return false;
        cur_func.clear();
        prog.funcs.push_back(std::move(fn));
        continue;
      }

      GlobalVar g;
      g.type = type;
      g.name = std::move(name);
      g.line = line;
      if (accept(Tok::LBracket)) {
        if (at(Tok::Number)) {
          g.array_size = take().value;
        } else {
          g.array_size = 0;  // size from initialiser
        }
        if (!expect(Tok::RBracket)) return false;
      }
      if (!parse_global_init(g)) return false;
      if (!expect(Tok::Semi)) return false;
      if (g.array_size == 0) {
        if (g.has_str_init) {
          g.array_size = static_cast<int>(g.str_init.size()) + 1;
        } else if (!g.init.empty()) {
          g.array_size = static_cast<int>(g.init.size());
        } else {
          return err("array needs a size or an initialiser");
        }
      }
      prog.globals.push_back(std::move(g));
    }
    return true;
  }
};

}  // namespace

Result<Program> parse(const std::string& source) {
  auto toks = lex(source);
  if (!toks) return std::move(toks).take_error();
  Parser p;
  p.toks = std::move(toks).take();
  Program prog;
  if (!p.parse_program(prog)) {
    Diag d(DiagCode::ParseError, "cc.parse",
           p.error.empty() ? "parse error" : p.error);
    if (!p.error_func.empty()) {
      d.with_context("in function '" + p.error_func + "'");
    }
    return d;
  }
  return prog;
}

}  // namespace plx::cc

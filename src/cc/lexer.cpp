#include "cc/lexer.h"

#include <cctype>
#include <map>

namespace plx::cc {

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::String: return "string";
    case Tok::CharLit: return "char literal";
    case Tok::KwInt: return "int";
    case Tok::KwChar: return "char";
    case Tok::KwVoid: return "void";
    case Tok::KwIf: return "if";
    case Tok::KwElse: return "else";
    case Tok::KwWhile: return "while";
    case Tok::KwFor: return "for";
    case Tok::KwReturn: return "return";
    case Tok::KwBreak: return "break";
    case Tok::KwContinue: return "continue";
    case Tok::KwSyscall: return "__syscall";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Comma: return ",";
    case Tok::Semi: return ";";
    case Tok::Assign: return "=";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::Star: return "*";
    case Tok::Slash: return "/";
    case Tok::Percent: return "%";
    case Tok::Amp: return "&";
    case Tok::Pipe: return "|";
    case Tok::Caret: return "^";
    case Tok::Tilde: return "~";
    case Tok::Bang: return "!";
    case Tok::Shl: return "<<";
    case Tok::Shr: return ">>";
    case Tok::Lt: return "<";
    case Tok::Gt: return ">";
    case Tok::Le: return "<=";
    case Tok::Ge: return ">=";
    case Tok::EqEq: return "==";
    case Tok::Ne: return "!=";
    case Tok::AmpAmp: return "&&";
    case Tok::PipePipe: return "||";
    case Tok::PlusPlus: return "++";
    case Tok::MinusMinus: return "--";
  }
  return "?";
}

namespace {

inline plx::Diag lex_fail(std::string msg) {
  return plx::Diag(plx::DiagCode::LexError, "cc.lex", std::move(msg));
}


const std::map<std::string, Tok>& keywords() {
  static const std::map<std::string, Tok> kw = {
      {"int", Tok::KwInt},         {"char", Tok::KwChar},
      {"void", Tok::KwVoid},       {"if", Tok::KwIf},
      {"else", Tok::KwElse},       {"while", Tok::KwWhile},
      {"for", Tok::KwFor},         {"return", Tok::KwReturn},
      {"break", Tok::KwBreak},     {"continue", Tok::KwContinue},
      {"__syscall", Tok::KwSyscall},
  };
  return kw;
}

int escape_char(char c) {
  switch (c) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case '0': return '\0';
    case '\\': return '\\';
    case '\'': return '\'';
    case '"': return '"';
    default: return c;
  }
}

}  // namespace

Result<std::vector<Token>> lex(const std::string& src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  auto err = [&](const std::string& msg) {
    return lex_fail("line " + std::to_string(line) + ": " + msg);
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= src.size()) return err("unterminated comment");
      i += 2;
      continue;
    }

    Token tok;
    tok.line = line;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) || src[j] == '_')) {
        ++j;
      }
      tok.text = src.substr(i, j - i);
      auto kw = keywords().find(tok.text);
      tok.kind = (kw != keywords().end()) ? kw->second : Tok::Ident;
      i = j;
      out.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      if (c == '0' && i + 1 < src.size() && (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        i += 2;
        if (i >= src.size() || !std::isxdigit(static_cast<unsigned char>(src[i]))) {
          return err("bad hex literal");
        }
        while (i < src.size() && std::isxdigit(static_cast<unsigned char>(src[i]))) {
          const char h = static_cast<char>(std::tolower(static_cast<unsigned char>(src[i])));
          v = v * 16 + (std::isdigit(static_cast<unsigned char>(h)) ? h - '0' : h - 'a' + 10);
          ++i;
        }
      } else {
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) {
          v = v * 10 + (src[i] - '0');
          ++i;
        }
      }
      tok.kind = Tok::Number;
      tok.value = static_cast<std::int32_t>(v);
      out.push_back(std::move(tok));
      continue;
    }

    if (c == '"') {
      ++i;
      std::string s;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < src.size()) {
          s += static_cast<char>(escape_char(src[i + 1]));
          i += 2;
        } else {
          if (src[i] == '\n') ++line;
          s += src[i++];
        }
      }
      if (i >= src.size()) return err("unterminated string");
      ++i;
      tok.kind = Tok::String;
      tok.text = std::move(s);
      out.push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      if (i + 2 >= src.size()) return err("bad char literal");
      int v;
      if (src[i + 1] == '\\') {
        v = escape_char(src[i + 2]);
        if (i + 3 >= src.size() || src[i + 3] != '\'') return err("bad char literal");
        i += 4;
      } else {
        v = static_cast<unsigned char>(src[i + 1]);
        if (src[i + 2] != '\'') return err("bad char literal");
        i += 3;
      }
      tok.kind = Tok::CharLit;
      tok.value = v;
      out.push_back(std::move(tok));
      continue;
    }

    auto two = [&](char second, Tok then, Tok otherwise) {
      if (i + 1 < src.size() && src[i + 1] == second) {
        tok.kind = then;
        i += 2;
      } else {
        tok.kind = otherwise;
        ++i;
      }
    };

    switch (c) {
      case '(': tok.kind = Tok::LParen; ++i; break;
      case ')': tok.kind = Tok::RParen; ++i; break;
      case '{': tok.kind = Tok::LBrace; ++i; break;
      case '}': tok.kind = Tok::RBrace; ++i; break;
      case '[': tok.kind = Tok::LBracket; ++i; break;
      case ']': tok.kind = Tok::RBracket; ++i; break;
      case ',': tok.kind = Tok::Comma; ++i; break;
      case ';': tok.kind = Tok::Semi; ++i; break;
      case '+': two('+', Tok::PlusPlus, Tok::Plus); break;
      case '-': two('-', Tok::MinusMinus, Tok::Minus); break;
      case '*': tok.kind = Tok::Star; ++i; break;
      case '/': tok.kind = Tok::Slash; ++i; break;
      case '%': tok.kind = Tok::Percent; ++i; break;
      case '^': tok.kind = Tok::Caret; ++i; break;
      case '~': tok.kind = Tok::Tilde; ++i; break;
      case '&': two('&', Tok::AmpAmp, Tok::Amp); break;
      case '|': two('|', Tok::PipePipe, Tok::Pipe); break;
      case '=': two('=', Tok::EqEq, Tok::Assign); break;
      case '!': two('=', Tok::Ne, Tok::Bang); break;
      case '<':
        if (i + 1 < src.size() && src[i + 1] == '<') {
          tok.kind = Tok::Shl;
          i += 2;
        } else {
          two('=', Tok::Le, Tok::Lt);
        }
        break;
      case '>':
        if (i + 1 < src.size() && src[i + 1] == '>') {
          tok.kind = Tok::Shr;
          i += 2;
        } else {
          two('=', Tok::Ge, Tok::Gt);
        }
        break;
      default:
        return err(std::string("unexpected character '") + c + "'");
    }
    out.push_back(std::move(tok));
  }

  Token eof;
  eof.kind = Tok::End;
  eof.line = line;
  out.push_back(std::move(eof));
  return out;
}

}  // namespace plx::cc

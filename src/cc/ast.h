// AST for the PLX mini-C dialect.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cc/lexer.h"

namespace plx::cc {

struct Type {
  enum class Base : std::uint8_t { Void, Int, Char };
  Base base = Base::Int;
  int ptr = 0;  // levels of indirection (0 or 1 supported)

  bool is_void() const { return base == Base::Void && ptr == 0; }
  bool is_pointer() const { return ptr > 0; }
  // Size of the pointed-to element (for pointer arithmetic and deref width).
  int elem_size() const { return base == Base::Char ? 1 : 4; }
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class K : std::uint8_t {
    Num,      // value
    Str,      // text (string literal -> pointer to anonymous global)
    Ident,    // name
    Unary,    // op (Minus/Tilde/Bang/Star=deref/Amp=addr-of), a
    Binary,   // op, a, b
    LogAnd,   // a, b (short-circuit)
    LogOr,
    Assign,   // a = b (a must be lvalue)
    IncDec,   // op (PlusPlus/MinusMinus), a (lvalue); value = updated value
    Call,     // name, args
    Syscall,  // args (first = syscall number)
    Index,    // a[b]
  };

  K k;
  int line = 0;
  std::int32_t value = 0;
  std::string name;
  std::string text;
  Tok op = Tok::End;
  ExprPtr a, b;
  std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class K : std::uint8_t {
    Expr, Decl, If, While, For, Return, Break, Continue, Block,
  };

  K k;
  int line = 0;

  // Decl
  Type type;
  std::string name;
  int array_size = -1;  // >= 0 for local arrays
  ExprPtr init;

  // Expr / Return value; If/While condition; For condition
  ExprPtr expr;

  // If: then_body/else_body. While/For: body. For: init_stmt, step.
  StmtPtr init_stmt;
  ExprPtr step;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
};

struct Param {
  Type type;
  std::string name;
};

struct Func {
  Type ret;
  std::string name;
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct GlobalVar {
  Type type;
  std::string name;
  int array_size = -1;              // >= 0 for arrays
  std::vector<std::int32_t> init;   // word initialisers (ints)
  std::string str_init;             // for char arrays from string literals
  bool has_str_init = false;
  int line = 0;
};

struct Program {
  std::vector<GlobalVar> globals;
  std::vector<Func> funcs;
};

}  // namespace plx::cc

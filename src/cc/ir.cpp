#include "cc/ir.h"

#include <set>

namespace plx::cc {

const char* irop_name(IrOp op) {
  switch (op) {
    case IrOp::Const: return "const";
    case IrOp::Copy: return "copy";
    case IrOp::Add: return "add";
    case IrOp::Sub: return "sub";
    case IrOp::Mul: return "mul";
    case IrOp::Div: return "div";
    case IrOp::Mod: return "mod";
    case IrOp::And: return "and";
    case IrOp::Or: return "or";
    case IrOp::Xor: return "xor";
    case IrOp::Shl: return "shl";
    case IrOp::Sar: return "sar";
    case IrOp::Neg: return "neg";
    case IrOp::Not: return "not";
    case IrOp::CmpEq: return "cmpeq";
    case IrOp::CmpNe: return "cmpne";
    case IrOp::CmpLt: return "cmplt";
    case IrOp::CmpLe: return "cmple";
    case IrOp::CmpGt: return "cmpgt";
    case IrOp::CmpGe: return "cmpge";
    case IrOp::Load: return "load";
    case IrOp::Store: return "store";
    case IrOp::LoadB: return "loadb";
    case IrOp::StoreB: return "storeb";
    case IrOp::AddrSlot: return "addrslot";
    case IrOp::AddrGlobal: return "addrglobal";
    case IrOp::Call: return "call";
    case IrOp::Syscall: return "syscall";
    case IrOp::Label: return "label";
    case IrOp::Jmp: return "jmp";
    case IrOp::Jz: return "jz";
    case IrOp::Ret: return "ret";
  }
  return "?";
}

bool IrFunc::has_calls() const {
  for (const auto& i : insns) {
    if (i.op == IrOp::Call || i.op == IrOp::Syscall) return true;
  }
  return false;
}

bool IrFunc::has_div() const {
  for (const auto& i : insns) {
    if (i.op == IrOp::Div || i.op == IrOp::Mod) return true;
  }
  return false;
}

int IrFunc::op_diversity() const {
  std::set<IrOp> kinds;
  for (const auto& i : insns) kinds.insert(i.op);
  return static_cast<int>(kinds.size());
}

std::string dump(const IrFunc& f) {
  std::string out = f.name + " (params=" + std::to_string(f.num_params) +
                    ", slots=" + std::to_string(f.num_slots) + ")\n";
  for (const auto& i : f.insns) {
    out += "  ";
    out += irop_name(i.op);
    if (i.dst >= 0) out += " s" + std::to_string(i.dst);
    if (i.a >= 0) out += " s" + std::to_string(i.a);
    if (i.b >= 0) out += " s" + std::to_string(i.b);
    if (i.op == IrOp::Const || i.op == IrOp::Label || i.op == IrOp::Jmp ||
        i.op == IrOp::Jz || i.op == IrOp::AddrSlot || i.op == IrOp::AddrGlobal) {
      out += " #" + std::to_string(i.imm);
    }
    if (!i.sym.empty()) out += " @" + i.sym;
    for (int a : i.args) out += " s" + std::to_string(a);
    out += '\n';
  }
  return out;
}

IrFunc lower_mul_for_rop(const IrFunc& f) {
  IrFunc out = f;
  out.insns.clear();

  int next_slot = f.num_slots;
  int next_label = f.num_labels;

  for (const auto& insn : f.insns) {
    if (insn.op != IrOp::Mul) {
      out.insns.push_back(insn);
      continue;
    }
    // dst = a * b  =>  classic shift-add over the 32 bits of b:
    //   acc = 0; x = a; y = b;
    //   while (y != 0) { if (y & 1) acc += x; x <<= 1; y >>= 1 (logical); }
    // Logical shift right is expressed as (y >> 1) & 0x7fffffff via Sar+And.
    const int acc = next_slot++;
    const int x = next_slot++;
    const int y = next_slot++;
    const int tmp = next_slot++;
    const int one = next_slot++;
    const int mask = next_slot++;
    const int l_top = next_label++;
    const int l_skip = next_label++;
    const int l_done = next_label++;

    auto emit = [&out](IrOp op, int dst, int a, int b, std::int32_t imm = 0) {
      IrInsn i;
      i.op = op;
      i.dst = dst;
      i.a = a;
      i.b = b;
      i.imm = imm;
      out.insns.push_back(std::move(i));
    };

    emit(IrOp::Const, acc, -1, -1, 0);
    emit(IrOp::Copy, x, insn.a, -1);
    if (insn.b < 0) {
      emit(IrOp::Const, y, -1, -1, insn.imm);
    } else {
      emit(IrOp::Copy, y, insn.b, -1);
    }
    emit(IrOp::Const, one, -1, -1, 1);
    emit(IrOp::Const, mask, -1, -1, 0x7fffffff);
    emit(IrOp::Label, -1, -1, -1, l_top);
    emit(IrOp::Jz, -1, y, -1, l_done);
    emit(IrOp::And, tmp, y, one);
    emit(IrOp::Jz, -1, tmp, -1, l_skip);
    emit(IrOp::Add, acc, acc, x);
    emit(IrOp::Label, -1, -1, -1, l_skip);
    emit(IrOp::Shl, x, x, one);
    emit(IrOp::Sar, y, y, one);
    emit(IrOp::And, y, y, mask);
    emit(IrOp::Jmp, -1, -1, -1, l_top);
    emit(IrOp::Label, -1, -1, -1, l_done);
    emit(IrOp::Copy, insn.dst, acc, -1);
  }

  out.num_slots = next_slot;
  out.num_labels = next_label;
  return out;
}

IrFunc lower_bytes_for_rop(const IrFunc& f) {
  IrFunc out = f;
  out.insns.clear();
  int next_slot = f.num_slots;

  auto emit = [&out](IrOp op, int dst, int a, int b, std::int32_t imm = 0) {
    IrInsn i;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.b = b;
    i.imm = imm;
    out.insns.push_back(std::move(i));
  };

  for (const auto& insn : f.insns) {
    if (insn.op == IrOp::LoadB) {
      // dst = *(u8*)a  =>  dst = *(u32*)a & 0xff  (little-endian).
      const int word = next_slot++;
      const int mask = next_slot++;
      emit(IrOp::Load, word, insn.a, -1);
      emit(IrOp::Const, mask, -1, -1, 0xff);
      emit(IrOp::And, insn.dst, word, mask);
      continue;
    }
    if (insn.op == IrOp::StoreB) {
      // *(u8*)a = b  =>  *(u32*)a = (*(u32*)a & ~0xff) | (b & 0xff).
      const int word = next_slot++;
      const int himask = next_slot++;
      const int lomask = next_slot++;
      const int lo = next_slot++;
      const int merged = next_slot++;
      emit(IrOp::Load, word, insn.a, -1);
      emit(IrOp::Const, himask, -1, -1, static_cast<std::int32_t>(0xffffff00u));
      emit(IrOp::And, word, word, himask);
      emit(IrOp::Const, lomask, -1, -1, 0xff);
      emit(IrOp::And, lo, insn.b, lomask);
      emit(IrOp::Or, merged, word, lo);
      emit(IrOp::Store, -1, insn.a, merged);
      continue;
    }
    out.insns.push_back(insn);
  }
  out.num_slots = next_slot;
  return out;
}

}  // namespace plx::cc

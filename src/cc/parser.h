// Recursive-descent parser for the PLX mini-C dialect.
#pragma once

#include "cc/ast.h"
#include "support/error.h"

namespace plx::cc {

Result<Program> parse(const std::string& source);

}  // namespace plx::cc

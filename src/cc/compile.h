// mini-C source -> symbolic module + IR (the front half of Figure 2).
#pragma once

#include "cc/irgen.h"
#include "image/image.h"

namespace plx::cc {

struct CompileOptions {
  // Emit a _start shim that calls main() and exits with its return value.
  bool with_start = true;
  std::string entry_func = "main";
};

struct Compiled {
  img::Module module;
  IrProgram ir;  // kept so the ROP compiler can retranslate functions
};

Result<Compiled> compile(const std::string& source, const CompileOptions& opts = {});

}  // namespace plx::cc

// AST -> IR lowering (with name resolution and the dialect's minimal type
// rules: int everywhere, char only behind pointers/arrays, one level of
// indirection, pointer arithmetic scaled by element size).
#pragma once

#include "cc/ast.h"
#include "cc/ir.h"

namespace plx::cc {

struct IrProgram {
  std::vector<IrFunc> funcs;
  std::vector<GlobalVar> globals;  // passed through for data emission
  std::vector<std::pair<std::string, std::string>> strings;  // name -> bytes
};

Result<IrProgram> generate(const Program& prog);

}  // namespace plx::cc

#include "cc/compile.h"

#include "isa/x86/cc_backend.h"
#include "cc/parser.h"
#include "vm/syscalls.h"
#include "isa/x86/build.h"

namespace plx::cc {

Result<Compiled> compile(const std::string& source, const CompileOptions& opts) {
  auto ast = parse(source);
  if (!ast) return std::move(ast).take_error();
  auto ir = generate(ast.value());
  if (!ir) return std::move(ir).take_error();

  Compiled out;
  out.ir = std::move(ir).take();

  if (opts.with_start) {
    using namespace x86::ins;
    img::Fragment start;
    start.name = "_start";
    start.section = img::SectionKind::Text;
    start.is_func = true;
    start.align = 16;
    img::Item call_main = img::Item::make_insn(call_rel(0));
    call_main.fixup = img::Fixup::RelBranch;
    call_main.sym = opts.entry_func;
    start.items.push_back(std::move(call_main));
    start.items.push_back(img::Item::make_insn(mov(x86::Reg::EBX, x86::Reg::EAX)));
    start.items.push_back(img::Item::make_insn(mov(x86::Reg::EAX, vm::sys::kExit)));
    start.items.push_back(img::Item::make_insn(int_(0x80)));
    out.module.fragments.push_back(std::move(start));
    out.module.entry = "_start";
  } else {
    out.module.entry = opts.entry_func;
  }

  for (const auto& f : out.ir.funcs) {
    auto frag = emit_func_x86(f);
    if (!frag) {
      return std::move(frag).take_error().with_context("in function '" + f.name + "'");
    }
    out.module.fragments.push_back(std::move(frag).take());
  }
  for (const auto& g : out.ir.globals) {
    out.module.fragments.push_back(emit_global(g));
  }
  for (const auto& [name, text] : out.ir.strings) {
    out.module.fragments.push_back(emit_string(name, text));
  }
  return out;
}

}  // namespace plx::cc

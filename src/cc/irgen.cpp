#include "cc/irgen.h"

#include <map>
#include <optional>

namespace plx::cc {

namespace {

struct LocalVar {
  Type type;
  int slot = 0;
  int array_elems = -1;  // >= 0: array allocated in the frame
};

struct GlobalInfo {
  Type type;
  bool is_array = false;
};

struct Gen {
  const Program& prog;
  IrProgram out;
  std::string error;
  std::string error_func;  // function being generated when the error fired

  // Per-function state.
  IrFunc* fn = nullptr;
  std::vector<std::map<std::string, LocalVar>> scopes;
  std::map<std::string, GlobalInfo> globals;
  std::map<std::string, int> func_arity;
  int frame_top = 0;   // first free slot after named locals
  int cur_temp = 0;    // bump allocator for expression temps
  std::vector<int> break_labels;
  std::vector<int> continue_labels;

  explicit Gen(const Program& p) : prog(p) {}

  bool err(int line, const std::string& msg) {
    if (error.empty()) {
      error = "line " + std::to_string(line) + ": " + msg;
      if (fn) error_func = fn->name;
    }
    return false;
  }

  // --- emission helpers -------------------------------------------------
  void emit(IrInsn insn) { fn->insns.push_back(std::move(insn)); }
  void emit_op(IrOp op, int dst, int a, int b = -1, std::int32_t imm = 0) {
    IrInsn i;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.b = b;
    i.imm = imm;
    emit(std::move(i));
  }
  int new_label() { return fn->num_labels++; }
  void label(int l) { emit_op(IrOp::Label, -1, -1, -1, l); }
  void jmp(int l) { emit_op(IrOp::Jmp, -1, -1, -1, l); }
  void jz(int slot, int l) { emit_op(IrOp::Jz, -1, slot, -1, l); }

  int temp() {
    const int t = cur_temp++;
    if (cur_temp > fn->num_slots) fn->num_slots = cur_temp;
    return t;
  }
  int const_slot(std::int32_t v) {
    const int t = temp();
    emit_op(IrOp::Const, t, -1, -1, v);
    return t;
  }

  LocalVar* find_local(const std::string& name) {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      auto hit = it->find(name);
      if (hit != it->end()) return &hit->second;
    }
    return nullptr;
  }

  std::string intern_string(const std::string& text) {
    const std::string name = "__str" + std::to_string(out.strings.size());
    out.strings.emplace_back(name, text);
    return name;
  }

  // --- types --------------------------------------------------------------
  Type type_of(const Expr& e) {
    switch (e.k) {
      case Expr::K::Num:
        return Type{Type::Base::Int, 0};
      case Expr::K::Str:
        return Type{Type::Base::Char, 1};
      case Expr::K::Ident: {
        if (const LocalVar* v = find_local(e.name)) {
          Type t = v->type;
          if (v->array_elems >= 0) t.ptr = 1;  // arrays decay
          return t;
        }
        auto g = globals.find(e.name);
        if (g != globals.end()) {
          Type t = g->second.type;
          if (g->second.is_array) t.ptr = 1;
          return t;
        }
        return Type{Type::Base::Int, 0};
      }
      case Expr::K::Unary:
        if (e.op == Tok::Star) {
          Type t = type_of(*e.a);
          if (t.ptr > 0) --t.ptr;
          return t;
        }
        if (e.op == Tok::Amp) {
          Type t = type_of(*e.a);
          ++t.ptr;
          return t;
        }
        return Type{Type::Base::Int, 0};
      case Expr::K::Index: {
        Type t = type_of(*e.a);
        if (t.ptr > 0) --t.ptr;
        return t;
      }
      case Expr::K::Binary: {
        const Type ta = type_of(*e.a);
        if (ta.is_pointer()) return ta;
        const Type tb = type_of(*e.b);
        if (tb.is_pointer()) return tb;
        return Type{Type::Base::Int, 0};
      }
      case Expr::K::Assign:
      case Expr::K::IncDec:
        return type_of(*e.a);
      default:
        return Type{Type::Base::Int, 0};
    }
  }

  // --- expressions ------------------------------------------------------
  // Returns the slot holding the value, or -1 on error.
  int gen_expr(const Expr& e) {
    switch (e.k) {
      case Expr::K::Num:
        return const_slot(e.value);

      case Expr::K::Str: {
        const std::string sym = intern_string(e.text);
        const int t = temp();
        IrInsn i;
        i.op = IrOp::AddrGlobal;
        i.dst = t;
        i.sym = sym;
        emit(std::move(i));
        return t;
      }

      case Expr::K::Ident: {
        if (const LocalVar* v = find_local(e.name)) {
          if (v->array_elems >= 0) {
            const int t = temp();
            emit_op(IrOp::AddrSlot, t, -1, -1, v->slot);
            return t;
          }
          return v->slot;
        }
        auto g = globals.find(e.name);
        if (g == globals.end()) {
          err(e.line, "unknown variable '" + e.name + "'");
          return -1;
        }
        const int addr = temp();
        {
          IrInsn i;
          i.op = IrOp::AddrGlobal;
          i.dst = addr;
          i.sym = e.name;
          emit(std::move(i));
        }
        if (g->second.is_array) return addr;  // decays to pointer
        const int t = temp();
        if (g->second.type.base == Type::Base::Char && !g->second.type.is_pointer()) {
          emit_op(IrOp::LoadB, t, addr);
        } else {
          emit_op(IrOp::Load, t, addr);
        }
        return t;
      }

      case Expr::K::Unary: {
        if (e.op == Tok::Amp) {
          return gen_addr(*e.a).first;
        }
        if (e.op == Tok::Star) {
          const int p = gen_expr(*e.a);
          if (p < 0) return -1;
          const Type t = type_of(e);
          const int v = temp();
          emit_op(t.base == Type::Base::Char && !t.is_pointer() ? IrOp::LoadB : IrOp::Load,
                  v, p);
          return v;
        }
        const int a = gen_expr(*e.a);
        if (a < 0) return -1;
        const int t = temp();
        if (e.op == Tok::Minus) {
          emit_op(IrOp::Neg, t, a);
        } else if (e.op == Tok::Tilde) {
          emit_op(IrOp::Not, t, a);
        } else if (e.op == Tok::Bang) {
          const int zero = const_slot(0);
          emit_op(IrOp::CmpEq, t, a, zero);
        } else {
          err(e.line, "bad unary operator");
          return -1;
        }
        return t;
      }

      case Expr::K::Binary:
        return gen_binary(e);

      case Expr::K::LogAnd: {
        const int r = temp();
        emit_op(IrOp::Const, r, -1, -1, 0);
        const int end = new_label();
        const int a = gen_expr(*e.a);
        if (a < 0) return -1;
        jz(a, end);
        const int b = gen_expr(*e.b);
        if (b < 0) return -1;
        const int zero = const_slot(0);
        emit_op(IrOp::CmpNe, r, b, zero);
        label(end);
        return r;
      }

      case Expr::K::LogOr: {
        const int r = temp();
        emit_op(IrOp::Const, r, -1, -1, 1);
        const int end = new_label();
        const int a = gen_expr(*e.a);
        if (a < 0) return -1;
        const int zero = const_slot(0);
        const int a_is_zero = temp();
        emit_op(IrOp::CmpEq, a_is_zero, a, zero);
        jz(a_is_zero, end);  // a != 0 -> result stays 1
        const int b = gen_expr(*e.b);
        if (b < 0) return -1;
        emit_op(IrOp::CmpNe, r, b, zero);
        label(end);
        return r;
      }

      case Expr::K::Assign: {
        // Variable, index or deref target.
        if (e.a->k == Expr::K::Ident) {
          if (const LocalVar* v = find_local(e.a->name); v && v->array_elems < 0) {
            const int rhs = gen_expr(*e.b);
            if (rhs < 0) return -1;
            emit_op(IrOp::Copy, v->slot, rhs);
            return v->slot;
          }
        }
        auto [addr, esize] = gen_addr(*e.a);
        if (addr < 0) return -1;
        const int rhs = gen_expr(*e.b);
        if (rhs < 0) return -1;
        emit_op(esize == 1 ? IrOp::StoreB : IrOp::Store, -1, addr, rhs);
        return rhs;
      }

      case Expr::K::IncDec: {
        const std::int32_t delta = (e.op == Tok::PlusPlus) ? 1 : -1;
        if (e.a->k == Expr::K::Ident) {
          if (const LocalVar* v = find_local(e.a->name); v && v->array_elems < 0) {
            const int one = const_slot(delta);
            emit_op(IrOp::Add, v->slot, v->slot, one);
            return v->slot;
          }
        }
        auto [addr, esize] = gen_addr(*e.a);
        if (addr < 0) return -1;
        const int old = temp();
        emit_op(esize == 1 ? IrOp::LoadB : IrOp::Load, old, addr);
        const int one = const_slot(delta);
        const int updated = temp();
        emit_op(IrOp::Add, updated, old, one);
        emit_op(esize == 1 ? IrOp::StoreB : IrOp::Store, -1, addr, updated);
        return updated;
      }

      case Expr::K::Call: {
        auto arity = func_arity.find(e.name);
        if (arity == func_arity.end()) {
          err(e.line, "unknown function '" + e.name + "'");
          return -1;
        }
        if (arity->second != static_cast<int>(e.args.size())) {
          err(e.line, "wrong argument count for '" + e.name + "'");
          return -1;
        }
        IrInsn call;
        call.op = IrOp::Call;
        call.sym = e.name;
        for (const auto& arg : e.args) {
          const int s = gen_expr(*arg);
          if (s < 0) return -1;
          call.args.push_back(s);
        }
        call.dst = temp();
        const int dst = call.dst;
        emit(std::move(call));
        return dst;
      }

      case Expr::K::Syscall: {
        IrInsn sc;
        sc.op = IrOp::Syscall;
        for (const auto& arg : e.args) {
          const int s = gen_expr(*arg);
          if (s < 0) return -1;
          sc.args.push_back(s);
        }
        sc.dst = temp();
        const int dst = sc.dst;
        emit(std::move(sc));
        return dst;
      }

      case Expr::K::Index: {
        auto [addr, esize] = gen_addr(e);
        if (addr < 0) return -1;
        const int t = temp();
        emit_op(esize == 1 ? IrOp::LoadB : IrOp::Load, t, addr);
        return t;
      }
    }
    err(e.line, "unhandled expression");
    return -1;
  }

  // Pointer-scaled addition: base + index*esize into a fresh temp.
  int scaled_add(int base, int index, int esize) {
    int idx = index;
    if (esize == 4) {
      const int two = const_slot(2);
      const int scaled = temp();
      emit_op(IrOp::Shl, scaled, index, two);
      idx = scaled;
    }
    const int t = temp();
    emit_op(IrOp::Add, t, base, idx);
    return t;
  }

  // Address of an lvalue; returns {slot holding address, element size}.
  std::pair<int, int> gen_addr(const Expr& e) {
    switch (e.k) {
      case Expr::K::Ident: {
        if (const LocalVar* v = find_local(e.name)) {
          const int t = temp();
          emit_op(IrOp::AddrSlot, t, -1, -1, v->slot);
          const int esize = (v->type.base == Type::Base::Char && v->array_elems >= 0) ? 1 : 4;
          return {t, esize};
        }
        auto g = globals.find(e.name);
        if (g == globals.end()) {
          err(e.line, "unknown variable '" + e.name + "'");
          return {-1, 4};
        }
        const int t = temp();
        IrInsn i;
        i.op = IrOp::AddrGlobal;
        i.dst = t;
        i.sym = e.name;
        emit(std::move(i));
        const int esize =
            (g->second.type.base == Type::Base::Char && !g->second.type.is_pointer()) ? 1 : 4;
        return {t, esize};
      }
      case Expr::K::Index: {
        const Type base_type = type_of(*e.a);
        const int esize = base_type.elem_size();
        const int base = gen_expr(*e.a);
        if (base < 0) return {-1, 4};
        const int index = gen_expr(*e.b);
        if (index < 0) return {-1, 4};
        return {scaled_add(base, index, esize), esize};
      }
      case Expr::K::Unary:
        if (e.op == Tok::Star) {
          const Type t = type_of(e);
          const int p = gen_expr(*e.a);
          return {p, (t.base == Type::Base::Char && !t.is_pointer()) ? 1 : 4};
        }
        break;
      default:
        break;
    }
    err(e.line, "expression is not addressable");
    return {-1, 4};
  }

  int gen_binary(const Expr& e) {
    const Type ta = type_of(*e.a);
    const Type tb = type_of(*e.b);

    // Constant right operands become immediate forms (like any real
    // compiler) for the ops whose backends support them.
    if (e.b->k == Expr::K::Num) {
      IrOp imm_op;
      bool has_imm_form = true;
      switch (e.op) {
        case Tok::Plus: imm_op = IrOp::Add; break;
        case Tok::Minus: imm_op = IrOp::Sub; break;
        case Tok::Star: imm_op = IrOp::Mul; break;
        case Tok::Amp: imm_op = IrOp::And; break;
        case Tok::Pipe: imm_op = IrOp::Or; break;
        case Tok::Caret: imm_op = IrOp::Xor; break;
        case Tok::Shl: imm_op = IrOp::Shl; break;
        case Tok::Shr: imm_op = IrOp::Sar; break;
        case Tok::EqEq: imm_op = IrOp::CmpEq; break;
        case Tok::Ne: imm_op = IrOp::CmpNe; break;
        case Tok::Lt: imm_op = IrOp::CmpLt; break;
        case Tok::Le: imm_op = IrOp::CmpLe; break;
        case Tok::Gt: imm_op = IrOp::CmpGt; break;
        case Tok::Ge: imm_op = IrOp::CmpGe; break;
        default: has_imm_form = false; break;
      }
      if (has_imm_form) {
        const int a_slot = gen_expr(*e.a);
        if (a_slot < 0) return -1;
        std::int32_t v = e.b->value;
        // Pointer arithmetic scales the constant directly.
        if ((e.op == Tok::Plus || e.op == Tok::Minus) && ta.is_pointer() &&
            ta.elem_size() == 4) {
          v *= 4;
        }
        const int t = temp();
        IrInsn i;
        i.op = imm_op;
        i.dst = t;
        i.a = a_slot;
        i.b = -1;
        i.imm = v;
        emit(std::move(i));
        return t;
      }
    }

    int a = gen_expr(*e.a);
    if (a < 0) return -1;
    int b = gen_expr(*e.b);
    if (b < 0) return -1;

    // Pointer arithmetic scaling (p + i / i + p / p - i).
    if ((e.op == Tok::Plus || e.op == Tok::Minus) && (ta.is_pointer() || tb.is_pointer())) {
      if (ta.is_pointer() && !tb.is_pointer() && ta.elem_size() == 4) {
        const int two = const_slot(2);
        const int s = temp();
        emit_op(IrOp::Shl, s, b, two);
        b = s;
      } else if (tb.is_pointer() && !ta.is_pointer() && tb.elem_size() == 4) {
        const int two = const_slot(2);
        const int s = temp();
        emit_op(IrOp::Shl, s, a, two);
        a = s;
      }
    }

    const int t = temp();
    IrOp op;
    switch (e.op) {
      case Tok::Plus: op = IrOp::Add; break;
      case Tok::Minus: op = IrOp::Sub; break;
      case Tok::Star: op = IrOp::Mul; break;
      case Tok::Slash: op = IrOp::Div; break;
      case Tok::Percent: op = IrOp::Mod; break;
      case Tok::Amp: op = IrOp::And; break;
      case Tok::Pipe: op = IrOp::Or; break;
      case Tok::Caret: op = IrOp::Xor; break;
      case Tok::Shl: op = IrOp::Shl; break;
      case Tok::Shr: op = IrOp::Sar; break;
      case Tok::EqEq: op = IrOp::CmpEq; break;
      case Tok::Ne: op = IrOp::CmpNe; break;
      case Tok::Lt: op = IrOp::CmpLt; break;
      case Tok::Le: op = IrOp::CmpLe; break;
      case Tok::Gt: op = IrOp::CmpGt; break;
      case Tok::Ge: op = IrOp::CmpGe; break;
      default:
        err(e.line, "bad binary operator");
        return -1;
    }
    emit_op(op, t, a, b);
    return t;
  }

  // --- statements -------------------------------------------------------
  bool gen_stmt(const Stmt& s) {
    // Reset the temp bump allocator between statements (values never live
    // across statements in this dialect).
    cur_temp = frame_top;
    switch (s.k) {
      case Stmt::K::Expr:
        return gen_expr(*s.expr) >= 0;

      case Stmt::K::Decl: {
        if (scopes.back().contains(s.name)) {
          return err(s.line, "redefinition of '" + s.name + "'");
        }
        LocalVar v;
        v.type = s.type;
        if (s.array_size >= 0) {
          const int words =
              (s.type.base == Type::Base::Char && !s.type.is_pointer())
                  ? (s.array_size + 3) / 4
                  : s.array_size;
          // Slots grow toward lower addresses but array elements ascend, so
          // the array's base (lowest address) is its highest slot index.
          v.slot = frame_top + std::max(words, 1) - 1;
          v.array_elems = s.array_size;
          frame_top += std::max(words, 1);
        } else {
          v.slot = frame_top++;
        }
        if (frame_top > fn->num_slots) fn->num_slots = frame_top;
        cur_temp = frame_top;
        scopes.back()[s.name] = v;
        if (s.init) {
          const int rhs = gen_expr(*s.init);
          if (rhs < 0) return false;
          emit_op(IrOp::Copy, v.slot, rhs);
        }
        return true;
      }

      case Stmt::K::If: {
        const int cond = gen_expr(*s.expr);
        if (cond < 0) return false;
        const int l_else = new_label();
        jz(cond, l_else);
        for (const auto& sub : s.body) {
          if (!gen_stmt(*sub)) return false;
        }
        if (s.else_body.empty()) {
          label(l_else);
        } else {
          const int l_end = new_label();
          jmp(l_end);
          label(l_else);
          for (const auto& sub : s.else_body) {
            if (!gen_stmt(*sub)) return false;
          }
          label(l_end);
        }
        return true;
      }

      case Stmt::K::While: {
        const int l_top = new_label();
        const int l_end = new_label();
        label(l_top);
        cur_temp = frame_top;
        const int cond = gen_expr(*s.expr);
        if (cond < 0) return false;
        jz(cond, l_end);
        break_labels.push_back(l_end);
        continue_labels.push_back(l_top);
        for (const auto& sub : s.body) {
          if (!gen_stmt(*sub)) return false;
        }
        break_labels.pop_back();
        continue_labels.pop_back();
        jmp(l_top);
        label(l_end);
        return true;
      }

      case Stmt::K::For: {
        scopes.emplace_back();  // for-scope (the induction variable)
        if (s.init_stmt && !gen_stmt(*s.init_stmt)) return false;
        const int l_top = new_label();
        const int l_step = new_label();
        const int l_end = new_label();
        label(l_top);
        if (s.expr) {
          cur_temp = frame_top;
          const int cond = gen_expr(*s.expr);
          if (cond < 0) return false;
          jz(cond, l_end);
        }
        break_labels.push_back(l_end);
        continue_labels.push_back(l_step);
        for (const auto& sub : s.body) {
          if (!gen_stmt(*sub)) return false;
        }
        break_labels.pop_back();
        continue_labels.pop_back();
        label(l_step);
        if (s.step) {
          cur_temp = frame_top;
          if (gen_expr(*s.step) < 0) return false;
        }
        jmp(l_top);
        label(l_end);
        scopes.pop_back();
        return true;
      }

      case Stmt::K::Return: {
        int slot = -1;
        if (s.expr) {
          slot = gen_expr(*s.expr);
          if (slot < 0) return false;
        }
        emit_op(IrOp::Ret, -1, slot);
        return true;
      }

      case Stmt::K::Break:
        if (break_labels.empty()) return err(s.line, "break outside a loop");
        jmp(break_labels.back());
        return true;

      case Stmt::K::Continue:
        if (continue_labels.empty()) return err(s.line, "continue outside a loop");
        jmp(continue_labels.back());
        return true;

      case Stmt::K::Block: {
        scopes.emplace_back();
        for (const auto& sub : s.body) {
          if (!gen_stmt(*sub)) return false;
        }
        scopes.pop_back();
        return true;
      }
    }
    return err(s.line, "unhandled statement");
  }

  bool gen_func(const Func& f) {
    IrFunc ir;
    ir.name = f.name;
    ir.num_params = static_cast<int>(f.params.size());
    ir.num_slots = ir.num_params;
    fn = &ir;
    scopes.clear();
    scopes.emplace_back();
    frame_top = ir.num_params;
    cur_temp = frame_top;
    break_labels.clear();
    continue_labels.clear();

    for (std::size_t i = 0; i < f.params.size(); ++i) {
      LocalVar v;
      v.type = f.params[i].type;
      v.slot = static_cast<int>(i);
      scopes.back()[f.params[i].name] = v;
    }
    for (const auto& s : f.body) {
      if (!gen_stmt(*s)) return false;
    }
    // Implicit return 0 (harmless if unreachable).
    emit_op(IrOp::Ret, -1, -1);
    out.funcs.push_back(std::move(ir));
    fn = nullptr;
    return true;
  }

  bool run() {
    for (const auto& g : prog.globals) {
      if (globals.contains(g.name)) {
        return err(g.line, "redefinition of global '" + g.name + "'");
      }
      globals[g.name] = GlobalInfo{g.type, g.array_size >= 0};
    }
    for (const auto& f : prog.funcs) {
      if (func_arity.contains(f.name)) {
        return err(f.line, "redefinition of function '" + f.name + "'");
      }
      func_arity[f.name] = static_cast<int>(f.params.size());
    }
    for (const auto& f : prog.funcs) {
      if (!gen_func(f)) return false;
    }
    out.globals = prog.globals;
    return true;
  }
};

}  // namespace

Result<IrProgram> generate(const Program& prog) {
  Gen gen(prog);
  if (!gen.run()) {
    Diag d(DiagCode::IrGenError, "cc.irgen",
           gen.error.empty() ? "codegen error" : gen.error);
    if (!gen.error_func.empty()) {
      d.with_context("in function '" + gen.error_func + "'");
    }
    return d;
  }
  return std::move(gen.out);
}

}  // namespace plx::cc

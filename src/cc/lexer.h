// Lexer for the PLX mini-C dialect.
//
// The corpus programs (src/workloads) and the in-VM runtime routines
// (RC4/xor decryptors, chain generators) are written in this dialect and
// compiled by src/cc into x86-32. The language is a small C subset: int /
// char / pointers / arrays, functions, if/while/for, the usual operators,
// and a __syscall builtin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"

namespace plx::cc {

enum class Tok : std::uint8_t {
  End,
  Ident,
  Number,
  String,
  CharLit,
  // keywords
  KwInt, KwChar, KwVoid, KwIf, KwElse, KwWhile, KwFor, KwReturn,
  KwBreak, KwContinue, KwSyscall,
  // punctuation / operators
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi,
  Assign,        // =
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Bang,
  Shl, Shr,
  Lt, Gt, Le, Ge, EqEq, Ne,
  AmpAmp, PipePipe,
  PlusPlus, MinusMinus,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;       // Ident / String
  std::int32_t value = 0; // Number / CharLit
  int line = 0;
};

Result<std::vector<Token>> lex(const std::string& source);

const char* tok_name(Tok t);

}  // namespace plx::cc

// Linear IR shared between the x86 backend and the ROP compiler.
//
// This is the pivot of the whole reproduction: a function compiled to native
// x86 and the same function compiled to a ROP chain both start from this IR,
// so a "function chain" is semantically equivalent to the function it
// replaces by construction — the property the paper obtains by feeding the
// same source through gcc and through ROPC.
//
// Value model: every value lives in a 32-bit "slot". The x86 backend places
// slots in the stack frame ([ebp - 4(i+1)]); the ROP backend places them in
// a static scratch frame so that slot addresses are compile-time constants
// (this makes function chains non-reentrant, which the paper's verification
// functions are fine with).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"

namespace plx::cc {

enum class IrOp : std::uint8_t {
  Const,      // dst = imm
  Copy,       // dst = a
  Add, Sub, Mul, Div, Mod,          // dst = a op b (signed)
  And, Or, Xor, Shl, Sar,           // dst = a op b ('>>' on int is arithmetic)
  Neg, Not,                         // dst = op a
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,  // dst = (a REL b) ? 1 : 0, signed
  Load,       // dst = *(int*)a
  Store,      // *(int*)a = b
  LoadB,      // dst = *(unsigned char*)a (zero-extended)
  StoreB,     // *(unsigned char*)a = b & 0xff
  AddrSlot,   // dst = address of slot imm (frame-relative resolved by backend)
  AddrGlobal, // dst = address of global `sym` (+ imm addend)
  Call,       // dst = sym(args...)
  Syscall,    // dst = syscall(args[0]; args[1..3])
  Label,      // label `imm`
  Jmp,        // goto label `imm`
  Jz,         // if (a == 0) goto label `imm`
  Ret,        // return a (a == -1: no value)
};

struct IrInsn {
  IrOp op;
  int dst = -1;
  int a = -1;
  int b = -1;
  std::int32_t imm = 0;
  std::string sym;
  std::vector<int> args;
};

struct IrFunc {
  std::string name;
  int num_params = 0;
  int num_slots = 0;   // params first, then locals/temps
  int num_labels = 0;
  std::vector<IrInsn> insns;

  bool has_calls() const;
  bool has_div() const;
  // Distinct operation kinds used — the §VII-B selection heuristic prefers
  // functions exercising many operation types.
  int op_diversity() const;
};

const char* irop_name(IrOp op);
std::string dump(const IrFunc& f);

// Rewrites Mul into a shift-add loop (and leaves Div/Mod untouched — the
// ROP compiler rejects those). Used before chain compilation so that chains
// need no multiplier gadget.
IrFunc lower_mul_for_rop(const IrFunc& f);

// Rewrites LoadB/StoreB into word-sized read-modify-write sequences so that
// chains only need 32-bit load/store gadgets. Requires the byte to be
// readable as part of an aligned-enough word (the protector appends guard
// padding after data sections to make the trailing bytes safe).
IrFunc lower_bytes_for_rop(const IrFunc& f);

}  // namespace plx::cc

// Byte buffer with little-endian accessors.
//
// All binary data in Parallax (section contents, serialised images, ROP
// chains) flows through plx::Buffer. It is a thin wrapper over
// std::vector<uint8_t> adding the little-endian reads/writes that x86 work
// constantly needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace plx {

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}
  Buffer(std::initializer_list<std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  void clear() { bytes_.clear(); }
  void resize(std::size_t n, std::uint8_t fill = 0) { bytes_.resize(n, fill); }

  std::uint8_t* data() { return bytes_.data(); }
  const std::uint8_t* data() const { return bytes_.data(); }
  std::span<const std::uint8_t> span() const { return bytes_; }
  std::span<std::uint8_t> span() { return bytes_; }
  const std::vector<std::uint8_t>& vec() const { return bytes_; }

  std::uint8_t operator[](std::size_t i) const { return bytes_[i]; }
  std::uint8_t& operator[](std::size_t i) { return bytes_[i]; }

  // --- appends -------------------------------------------------------------
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_bytes(std::span<const std::uint8_t> bytes);
  void put_str(const std::string& s);  // length-prefixed (u32)

  // --- in-place access (bounds are the caller's responsibility) -----------
  std::uint16_t get_u16(std::size_t off) const;
  std::uint32_t get_u32(std::size_t off) const;
  void set_u16(std::size_t off, std::uint16_t v);
  void set_u32(std::size_t off, std::uint32_t v);

  bool operator==(const Buffer& other) const = default;

 private:
  std::vector<std::uint8_t> bytes_;
};

// Sequential reader over a byte span; `ok()` turns false on overrun instead
// of throwing, so deserialisers can check once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  std::size_t offset() const { return off_; }
  std::size_t remaining() const { return ok_ ? bytes_.size() - off_ : 0; }

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::string get_str();  // length-prefixed (u32)
  std::vector<std::uint8_t> get_bytes(std::size_t n);

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

}  // namespace plx

// Fixed-size worker thread pool for CPU-bound sharded work.
//
// Used to shard gadget scanning across sections/chunks and to run
// per-workload analyses in the benches concurrently. Tasks must not throw:
// the pool has no channel to report exceptions, so a throwing task
// terminates the process.
//
// parallel_for() called from inside a worker thread degrades to an inline
// loop instead of re-submitting, so nested data parallelism cannot deadlock
// the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace plx::support {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueue one task. Tasks may run in any order relative to each other.
  void submit(std::function<void()> fn);

  // Block until every task submitted so far has finished.
  void wait_idle();

  // Run fn(0) .. fn(n-1), blocking until all complete. Iterations execute
  // concurrently; callers are responsible for making them independent.
  // Runs inline when n <= 1, when the pool has no workers, or when called
  // from a pool worker thread (no nested fan-out).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Process-wide shared pool, created on first use.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when queue_ grows / shutdown
  std::condition_variable idle_cv_;   // signalled when active_ + queue_ drains
  std::size_t active_ = 0;            // tasks currently executing
  bool shutdown_ = false;
};

}  // namespace plx::support

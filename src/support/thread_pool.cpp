#include "support/thread_pool.h"

#include <atomic>

#include "telemetry/trace.h"

namespace plx::support {

namespace {
// Set while a thread is executing pool tasks; parallel_for consults it to
// avoid nested fan-out (a worker waiting on sub-tasks could deadlock a
// fully-busy pool).
thread_local bool t_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      work_cv_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock lk(mu_);
      --active_;
      if (active_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> fn) {
#if PLX_TRACE_ENABLED
  // Wrap the task in a span that runs on the worker: its duration is the
  // run time, and "queue_wait_us" (enqueue -> dequeue) separates scheduling
  // latency from work — the span the pool's utilisation questions need.
  if (telemetry::Tracer::instance().enabled()) {
    const std::uint64_t enqueued = telemetry::Tracer::instance().now_ns();
    fn = [enqueued, inner = std::move(fn)] {
      telemetry::TraceSpan span("pool", "task");
      if (span.active()) {
        const std::uint64_t now = telemetry::Tracer::instance().now_ns();
        span.arg("queue_wait_us", (now > enqueued ? now - enqueued : 0) / 1000);
      }
      inner();
    };
  }
#endif
  {
    std::unique_lock lk(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return active_ == 0 && queue_.empty(); });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty() || t_in_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  PLX_TRACE_SPAN_VAR(fanout, "pool", "parallel_for");
  if (fanout.active()) fanout.arg("n", static_cast<std::uint64_t>(n));
  // Atomic work-stealing counter: each participant claims the next index.
  // The calling thread joins in, so the pool being busy never blocks
  // progress, and completion is tracked independently of pool idleness
  // (other callers' tasks may be in flight). The latch is shared-owned by
  // the helper tasks: the caller may return (and destroy fn's frame) the
  // moment done == n, which only happens after every fn(i) has finished.
  struct Latch {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto st = std::make_shared<Latch>();

  auto drain = [st, n, &fn] {
    for (;;) {
      const std::size_t i = st->next.fetch_add(1);
      if (i >= n) return;
      fn(i);
      st->done.fetch_add(1);
    }
  };

  const std::size_t helpers = std::min<std::size_t>(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([st, drain, n] {
      drain();
      std::unique_lock lk(st->mu);
      st->cv.notify_all();
    });
  }
  drain();
  std::unique_lock lk(st->mu);
  st->cv.wait(lk, [&] { return st->done.load() >= n; });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace plx::support

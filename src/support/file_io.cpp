#include "support/file_io.h"

#include <fstream>
#include <sstream>

namespace plx::support {

namespace {

Diag io_fail(std::string message) {
  return Diag(DiagCode::Io, "support.io", std::move(message));
}

}  // namespace

Result<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return io_fail("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return io_fail("read error on " + path);
  return ss.str();
}

Result<std::vector<std::uint8_t>> read_binary_file(const std::string& path) {
  auto text = read_text_file(path);
  if (!text) return std::move(text).take_error();
  const std::string& blob = text.value();
  return std::vector<std::uint8_t>(blob.begin(), blob.end());
}

Status write_binary_file(const std::string& path,
                         std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return io_fail("cannot write " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) return io_fail("write error on " + path);
  return ok_status();
}

}  // namespace plx::support

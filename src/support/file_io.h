// Shared file IO for the CLI front ends and report validators.
//
// The example tools (plxtool, plxfuzz) and the bench-side JSON validators all
// need the same three operations: slurp a text file, slurp a binary file,
// write a binary blob. Each used to carry its own ifstream/rdbuf copy; this
// is the one implementation, reporting failures as DiagCode::Io diagnostics.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/error.h"

namespace plx::support {

// Whole file as a string (read in binary mode, so no newline translation).
Result<std::string> read_text_file(const std::string& path);

// Whole file as raw bytes.
Result<std::vector<std::uint8_t>> read_binary_file(const std::string& path);

// Create/truncate `path` with exactly `bytes`.
Status write_binary_file(const std::string& path,
                         std::span<const std::uint8_t> bytes);

}  // namespace plx::support

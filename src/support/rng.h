// Deterministic pseudo-random number generator (xorshift128).
//
// Everything random in Parallax — probabilistic chain variant selection,
// property-test input generation, workload inputs — uses this generator so
// that runs are reproducible given a seed. The VM's `rand` syscall is backed
// by an instance of this as well.
#pragma once

#include <cstdint>

namespace plx {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint32_t next_u32();
  std::uint64_t next_u64();

  // Uniform in [0, bound); bound must be > 0.
  std::uint32_t below(std::uint32_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int32_t range(std::int32_t lo, std::int32_t hi);

  bool chance(double p);  // true with probability p

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace plx

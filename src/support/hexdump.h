// Hexdump helpers used by examples and error reporting.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace plx {

// Classic 16-bytes-per-line hexdump with an ASCII gutter. `base` is the
// address printed for the first byte.
std::string hexdump(std::span<const std::uint8_t> bytes, std::uint32_t base = 0);

// Compact "55 89 e5 ..." rendering of a short byte run.
std::string hexbytes(std::span<const std::uint8_t> bytes);

}  // namespace plx

#include "support/rng.h"

namespace plx {

Rng::Rng(std::uint64_t seed) {
  // splitmix64 to expand the seed into two non-zero state words.
  auto mix = [](std::uint64_t& z) {
    z += 0x9e3779b97f4a7c15ull;
    std::uint64_t x = z;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  std::uint64_t z = seed;
  s0_ = mix(z);
  s1_ = mix(z);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

std::uint64_t Rng::next_u64() {
  // xorshift128+
  std::uint64_t x = s0_;
  const std::uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

std::uint32_t Rng::next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

std::uint32_t Rng::below(std::uint32_t bound) {
  // Rejection-free multiply-shift; bias negligible for our uses but keep it
  // honest with Lemire's method.
  std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
  return static_cast<std::uint32_t>(m >> 32);
}

std::int32_t Rng::range(std::int32_t lo, std::int32_t hi) {
  auto span = static_cast<std::uint32_t>(hi - lo) + 1u;
  return lo + static_cast<std::int32_t>(below(span));
}

bool Rng::chance(double p) {
  return next_u32() < static_cast<std::uint32_t>(p * 4294967295.0);
}

}  // namespace plx

#include "support/buffer.h"

namespace plx {

void Buffer::put_u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v & 0xff));
  bytes_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void Buffer::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void Buffer::put_bytes(std::span<const std::uint8_t> bytes) {
  bytes_.insert(bytes_.end(), bytes.begin(), bytes.end());
}

void Buffer::put_str(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

std::uint16_t Buffer::get_u16(std::size_t off) const {
  return static_cast<std::uint16_t>(bytes_[off] | (bytes_[off + 1] << 8));
}

std::uint32_t Buffer::get_u32(std::size_t off) const {
  return static_cast<std::uint32_t>(bytes_[off]) |
         (static_cast<std::uint32_t>(bytes_[off + 1]) << 8) |
         (static_cast<std::uint32_t>(bytes_[off + 2]) << 16) |
         (static_cast<std::uint32_t>(bytes_[off + 3]) << 24);
}

void Buffer::set_u16(std::size_t off, std::uint16_t v) {
  bytes_[off] = static_cast<std::uint8_t>(v & 0xff);
  bytes_[off + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
}

void Buffer::set_u32(std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_[off + i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xff);
  }
}

std::uint8_t ByteReader::get_u8() {
  if (off_ + 1 > bytes_.size()) {
    ok_ = false;
    return 0;
  }
  return bytes_[off_++];
}

std::uint16_t ByteReader::get_u16() {
  std::uint16_t lo = get_u8();
  std::uint16_t hi = get_u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::get_u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(get_u8()) << (8 * i);
  }
  return v;
}

std::string ByteReader::get_str() {
  std::uint32_t n = get_u32();
  if (!ok_ || off_ + n > bytes_.size()) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(bytes_.data() + off_), n);
  off_ += n;
  return s;
}

std::vector<std::uint8_t> ByteReader::get_bytes(std::size_t n) {
  if (off_ + n > bytes_.size()) {
    ok_ = false;
    return {};
  }
  std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(off_),
                                bytes_.begin() + static_cast<std::ptrdiff_t>(off_ + n));
  off_ += n;
  return out;
}

}  // namespace plx

// Minimal JSON *emission* helpers shared by every machine-readable report
// writer (bench/bench_common.h's BENCH_<name>.json, src/fuzz's
// FUZZ_<name>.json). Emission only — the schema checkers in bench/ carry
// their own reader so they cannot inherit an emitter bug.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

namespace plx::json {

// Escapes '"' and '\\' (the only characters our reports can contain that
// JSON strings cannot carry verbatim; all report text is ASCII).
inline std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

// Shortest round-trippable rendering of a double. JSON has no NaN/Inf
// literals; a degenerate sample becomes 0.
inline std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  if (std::strstr(buf, "nan") || std::strstr(buf, "inf")) return "0";
  return buf;
}

}  // namespace plx::json

// A deliberately small recursive-descent JSON reader shared by the report
// schema checkers (bench/validate_envelope) — just enough
// structure checking for those schemas, no external dependency. Kept
// independent of the emitter (support/json.h) on purpose: a checker that
// reused the writer's code could inherit its bugs.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace plx::minijson {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  // monostate = null
  std::variant<std::monostate, bool, double, std::string,
               std::shared_ptr<Object>, std::shared_ptr<Array>>
      v;
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  double number() const { return std::get<double>(v); }
  const Object* object() const {
    auto* p = std::get_if<std::shared_ptr<Object>>(&v);
    return p ? p->get() : nullptr;
  }
  const Array* array() const {
    auto* p = std::get_if<std::shared_ptr<Array>>(&v);
    return p ? p->get() : nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  bool parse(Value& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();  // no trailing garbage
  }

  const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      std::ostringstream os;
      os << what << " at byte " << pos_;
      error_ = os.str();
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out.v = std::move(s);
      return true;
    }
    if (c == 't' || c == 'f') return parse_keyword(out, c == 't' ? "true" : "false");
    if (c == 'n') return parse_keyword(out, "null");
    return parse_number(out);
  }

  bool parse_keyword(Value& out, const std::string& kw) {
    if (text_.compare(pos_, kw.size(), kw) != 0) return fail("bad keyword");
    pos_ += kw.size();
    if (kw == "true") out.v = true;
    else if (kw == "false") out.v = false;
    else out.v = std::monostate{};
    return true;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    try {
      std::size_t used = 0;
      const std::string tok = text_.substr(start, pos_ - start);
      const double d = std::stod(tok, &used);
      if (used != tok.size()) return fail("malformed number");
      out.v = d;
    } catch (...) {
      return fail("malformed number");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return fail("expected '\"'");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // \uXXXX: the reports only emit ASCII; keep the raw escape.
            if (text_.size() - pos_ < 4) return fail("bad \\u escape");
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_object(Value& out) {
    if (!eat('{')) return fail("expected '{'");
    auto obj = std::make_shared<Object>();
    skip_ws();
    if (eat('}')) {
      out.v = std::move(obj);
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      skip_ws();
      Value val;
      if (!parse_value(val)) return false;
      (*obj)[key] = std::move(val);
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) break;
      return fail("expected ',' or '}'");
    }
    out.v = std::move(obj);
    return true;
  }

  bool parse_array(Value& out) {
    if (!eat('[')) return fail("expected '['");
    auto arr = std::make_shared<Array>();
    skip_ws();
    if (eat(']')) {
      out.v = std::move(arr);
      return true;
    }
    for (;;) {
      skip_ws();
      Value val;
      if (!parse_value(val)) return false;
      arr->push_back(std::move(val));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) break;
      return fail("expected ',' or ']'");
    }
    out.v = std::move(arr);
    return true;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// The shared schema-v2 report envelope (telemetry/schema.h): "tool" names
// the emitter, "name" the report, "<tool>" is the legacy alias of "name"
// kept for pre-v2 readers, and "schema_version" must match exactly —
// cross-version comparison of measured data is forbidden by design.
inline bool check_envelope(const Object& root, const std::string& tool,
                           int schema_version, std::string& why) {
  auto tool_it = root.find("tool");
  if (tool_it == root.end() || !tool_it->second.is_string()) {
    why = "missing string key \"tool\"";
    return false;
  }
  if (std::get<std::string>(tool_it->second.v) != tool) {
    why = "\"tool\" is not \"" + tool + "\"";
    return false;
  }
  auto name_it = root.find("name");
  if (name_it == root.end() || !name_it->second.is_string()) {
    why = "missing string key \"name\"";
    return false;
  }
  auto alias_it = root.find(tool);
  if (alias_it == root.end() || !alias_it->second.is_string() ||
      std::get<std::string>(alias_it->second.v) !=
          std::get<std::string>(name_it->second.v)) {
    why = "legacy alias \"" + tool + "\" missing or not equal to \"name\"";
    return false;
  }
  auto ver = root.find("schema_version");
  if (ver == root.end() || !ver->second.is_number()) {
    why = "missing numeric key \"schema_version\"";
    return false;
  }
  if (ver->second.number() != static_cast<double>(schema_version)) {
    std::ostringstream os;
    os << "schema_version is not " << schema_version;
    why = os.str();
    return false;
  }
  return true;
}

// An object-valued key whose members are all numbers (the common shape of
// the report schemas: "stages", "throughput", "outcomes", ...).
inline bool check_numeric_object(const Object& root, const std::string& key,
                                 bool require_nonempty, std::string& why) {
  auto it = root.find(key);
  if (it == root.end()) {
    why = "missing key \"" + key + "\"";
    return false;
  }
  const Object* obj = it->second.object();
  if (!obj) {
    why = "\"" + key + "\" is not an object";
    return false;
  }
  if (require_nonempty && obj->empty()) {
    why = "\"" + key + "\" is empty";
    return false;
  }
  for (const auto& [k, v] : *obj) {
    if (!v.is_number()) {
      why = "\"" + key + "." + k + "\" is not a number";
      return false;
    }
  }
  return true;
}

}  // namespace plx::minijson

#include "support/hexdump.h"

#include <cctype>
#include <cstdio>

namespace plx {

std::string hexdump(std::span<const std::uint8_t> bytes, std::uint32_t base) {
  std::string out;
  char line[128];
  for (std::size_t row = 0; row < bytes.size(); row += 16) {
    int n = std::snprintf(line, sizeof line, "%08x  ", base + static_cast<std::uint32_t>(row));
    out.append(line, static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < bytes.size()) {
        n = std::snprintf(line, sizeof line, "%02x ", bytes[row + i]);
        out.append(line, static_cast<std::size_t>(n));
      } else {
        out += "   ";
      }
      if (i == 7) out += ' ';
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && row + i < bytes.size(); ++i) {
      const std::uint8_t c = bytes[row + i];
      out += std::isprint(c) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  return out;
}

std::string hexbytes(std::span<const std::uint8_t> bytes) {
  std::string out;
  char buf[4];
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%02x", bytes[i]);
    if (i) out += ' ';
    out += buf;
  }
  return out;
}

}  // namespace plx

// Structured diagnostics for Parallax.
//
// Most Parallax pipelines (assembler, compiler, rewriter, protector) want to
// report failures across module boundaries without exceptions. plx::Result<T>
// is a minimal expected-like type: either a value or a Diag.
//
// A Diag is more than a string: it carries an error-code enum (machine
// checkable), the originating stage/module (e.g. "image.layout",
// "parallax.chain_compile"), a context chain built up with with_context() as
// the failure propagates outward, and any warnings collected before the
// failure. str() renders the whole thing for humans; code/stage/message stay
// addressable for tests, the batch driver, and JSON reports.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace plx {

// One value per failure *kind*. Codes are coarse on purpose: they identify
// which subsystem rejected the input (and roughly why), not every distinct
// message. diag_code_name() gives the stable string used in reports.
enum class DiagCode {
  Unspecified,    // legacy fail("...") call sites; no classification
  Io,             // file read/write
  LexError,       // cc front end
  ParseError,
  IrGenError,
  BackendError,   // cc x86 backend
  AsmError,       // hand-written assembly (runtime stubs)
  EncodeError,    // x86 instruction encoding
  LayoutError,    // image layout / symbol resolution
  ImageFormat,    // image (de)serialization
  MissingSymbol,
  ChainCompileError,  // ropc: IR -> gadget chain
  ChainResolveError,  // ropc: chain words -> final addresses
  RewriteError,       // §IV-B gadget crafting
  HardeningError,     // chain encryption / probabilistic storage
  SelectionError,     // §VII-B verification-function selection
  StubError,          // loader stub installation
  MaterializeError,   // final chain storage pokes
  BaselineError,      // baseline protectors (checksum, oblivious hash)
  FuzzError,          // tamper-fuzzing targets
  BatchError,         // batch protection driver
  Internal,           // invariant violation; always a Parallax bug
};

inline const char* diag_code_name(DiagCode c) {
  switch (c) {
    case DiagCode::Unspecified: return "unspecified";
    case DiagCode::Io: return "io";
    case DiagCode::LexError: return "lex";
    case DiagCode::ParseError: return "parse";
    case DiagCode::IrGenError: return "irgen";
    case DiagCode::BackendError: return "backend";
    case DiagCode::AsmError: return "asm";
    case DiagCode::EncodeError: return "encode";
    case DiagCode::LayoutError: return "layout";
    case DiagCode::ImageFormat: return "image-format";
    case DiagCode::MissingSymbol: return "missing-symbol";
    case DiagCode::ChainCompileError: return "chain-compile";
    case DiagCode::ChainResolveError: return "chain-resolve";
    case DiagCode::RewriteError: return "rewrite";
    case DiagCode::HardeningError: return "hardening";
    case DiagCode::SelectionError: return "selection";
    case DiagCode::StubError: return "stub";
    case DiagCode::MaterializeError: return "materialize";
    case DiagCode::BaselineError: return "baseline";
    case DiagCode::FuzzError: return "fuzz";
    case DiagCode::BatchError: return "batch";
    case DiagCode::Internal: return "internal";
  }
  return "unknown";
}

class Diag {
 public:
  Diag() = default;
  // Implicit from a bare message: keeps `return fail("...")` call sites and
  // string literals in mixed expressions working (code = Unspecified).
  Diag(std::string message) : message_(std::move(message)) {}  // NOLINT(implicit)
  Diag(const char* message) : message_(message ? message : "") {}  // NOLINT(implicit)
  Diag(DiagCode code, std::string stage, std::string message)
      : code_(code), stage_(std::move(stage)), message_(std::move(message)) {}

  DiagCode code() const { return code_; }
  const std::string& stage() const { return stage_; }
  const std::string& message() const { return message_; }
  const std::vector<std::string>& context() const { return context_; }
  const std::vector<std::string>& warnings() const { return warnings_; }

  // Wrap the diagnostic as it propagates outward: the newest frame is the
  // outermost (rendered first). Chainable; usable on temporaries:
  //   return std::move(laid).take_error().with_context("final layout");
  Diag& with_context(std::string frame) & {
    context_.push_back(std::move(frame));
    rendered_.clear();
    return *this;
  }
  Diag&& with_context(std::string frame) && {
    context_.push_back(std::move(frame));
    rendered_.clear();
    return std::move(*this);
  }

  Diag& with_warning(std::string warning) & {
    warnings_.push_back(std::move(warning));
    return *this;
  }
  Diag&& with_warning(std::string warning) && {
    warnings_.push_back(std::move(warning));
    return std::move(*this);
  }

  // Human rendering: "[stage] outer: inner: message". The code is not part of
  // the rendering (reports carry it separately via diag_code_name()).
  std::string str() const {
    std::string out;
    if (!stage_.empty()) {
      out += "[";
      out += stage_;
      out += "] ";
    }
    for (auto it = context_.rbegin(); it != context_.rend(); ++it) {
      out += *it;
      out += ": ";
    }
    out += message_;
    return out;
  }

  // Stable pointer for printf-style call sites; cached per Diag instance.
  const char* c_str() const {
    if (rendered_.empty()) rendered_ = str();
    return rendered_.c_str();
  }

  operator std::string() const { return str(); }  // NOLINT(implicit)

 private:
  DiagCode code_ = DiagCode::Unspecified;
  std::string stage_;
  std::string message_;
  std::vector<std::string> context_;   // innermost first; rendered outer-first
  std::vector<std::string> warnings_;  // collected before the failure
  mutable std::string rendered_;       // c_str() cache
};

inline std::ostream& operator<<(std::ostream& os, const Diag& d) {
  return os << d.str();
}
inline std::string operator+(const std::string& a, const Diag& d) { return a + d.str(); }
inline std::string operator+(const Diag& d, const std::string& b) { return d.str() + b; }
inline std::string operator+(const char* a, const Diag& d) { return std::string(a) + d.str(); }
inline std::string operator+(const Diag& d, const char* b) { return d.str() + b; }

// Legacy alias: modules that stored plx::Error now store a Diag.
using Error = Diag;

template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}      // NOLINT(implicit)
  Result(Diag diag) : state_(std::move(diag)) {}     // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require_ok("value()");
    return std::get<T>(state_);
  }
  T& value() & {
    require_ok("value()");
    return std::get<T>(state_);
  }
  T&& take() && {
    require_ok("take()");
    return std::get<T>(std::move(state_));
  }

  const Diag& error() const {
    require_err("error()");
    return std::get<Diag>(state_);
  }
  // Move the diagnostic out (for re-wrapping with with_context()).
  Diag&& take_error() && {
    require_err("take_error()");
    return std::get<Diag>(std::move(state_));
  }

 private:
  // Wrong-state access is a hard error in every build type: assert() compiles
  // out under NDEBUG and would turn misuse into UB on std::get. Abort with
  // the stored diagnostic so the failure is actionable.
  void require_ok(const char* what) const {
    if (ok()) return;
    std::fprintf(stderr, "plx::Result: %s on error result: %s\n", what,
                 std::get<Diag>(state_).c_str());
    std::abort();
  }
  void require_err(const char* what) const {
    if (!ok()) return;
    std::fprintf(stderr, "plx::Result: %s on ok result\n", what);
    std::abort();
  }

  std::variant<T, Diag> state_;
};

// Value type for operations that succeed with nothing to return (pipeline
// stages, validators). `Status ok = Unit{};`
struct Unit {};
using Status = Result<Unit>;
inline Status ok_status() { return Unit{}; }

// Convenience constructors so call sites read `return plx::fail(...)`.
inline Diag fail(const char* message) { return Diag(message); }
inline Diag fail(std::string message) { return Diag(std::move(message)); }
inline Diag fail(Diag diag) { return diag; }
inline Diag fail(DiagCode code, std::string stage, std::string message) {
  return Diag(code, std::move(stage), std::move(message));
}

}  // namespace plx

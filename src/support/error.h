// Structured diagnostics for Parallax.
//
// Most Parallax pipelines (assembler, compiler, rewriter, protector) want to
// report failures across module boundaries without exceptions. plx::Result<T>
// is a minimal expected-like type: either a value or a Diag.
//
// A Diag is more than a string: it carries an error-code enum (machine
// checkable), the originating stage/module (e.g. "image.layout",
// "parallax.chain_compile"), a context chain built up with with_context() as
// the failure propagates outward, and any warnings collected before the
// failure. str() renders the whole thing for humans; code/stage/message stay
// addressable for tests, the batch driver, and JSON reports.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace plx {

// One value per failure *kind*. Codes are coarse on purpose: they identify
// which subsystem rejected the input (and roughly why), not every distinct
// message. diag_code_name() gives the stable string used in reports.
//
// The list lives in one X-macro so the enum, the stable report string, the
// human description, and the reference table in the docs (README.md
// "Diagnostic codes", rendered by telemetry::render_diag_table and kept in
// sync by tests/test_docs.cpp) can never drift apart. Append new codes at
// the end and regenerate the docs table with `plxreport diag`.
#define PLX_DIAG_CODE_LIST(X)                                                  \
  X(Unspecified, "unspecified", "legacy fail(...) call sites; no classification") \
  X(Io, "io", "file read/write failed")                                        \
  X(LexError, "lex", "mini-C front end: tokenization failed")                  \
  X(ParseError, "parse", "mini-C front end: syntax error")                     \
  X(IrGenError, "irgen", "mini-C front end: IR generation failed")             \
  X(BackendError, "backend", "mini-C code-generation backend rejected a function")         \
  X(AsmError, "asm", "hand-written assembly (runtime stubs) failed to assemble") \
  X(EncodeError, "encode", "instruction encoding failed")                  \
  X(LayoutError, "layout", "image layout / symbol resolution failed")          \
  X(ImageFormat, "image-format", "image (de)serialization rejected the bytes") \
  X(MissingSymbol, "missing-symbol", "named symbol absent from the module")    \
  X(ChainCompileError, "chain-compile", "ropc: IR to gadget chain lowering failed") \
  X(ChainResolveError, "chain-resolve", "ropc: chain words to final addresses failed") \
  X(RewriteError, "rewrite", "section IV-B gadget crafting failed")            \
  X(HardeningError, "hardening", "chain encryption / probabilistic storage failed") \
  X(SelectionError, "selection", "section VII-B verification-function selection failed") \
  X(StubError, "stub", "loader stub installation failed")                      \
  X(MaterializeError, "materialize", "final chain storage pokes failed")       \
  X(BaselineError, "baseline", "baseline protectors (checksum, oblivious hash)") \
  X(FuzzError, "fuzz", "tamper-fuzzing target setup failed")                   \
  X(BatchError, "batch", "batch protection driver failed")                     \
  X(Internal, "internal", "invariant violation; always a Parallax bug")

enum class DiagCode {
#define PLX_DIAG_ENUMERATOR(name, str, desc) name,
  PLX_DIAG_CODE_LIST(PLX_DIAG_ENUMERATOR)
#undef PLX_DIAG_ENUMERATOR
};

inline constexpr DiagCode kAllDiagCodes[] = {
#define PLX_DIAG_VALUE(name, str, desc) DiagCode::name,
    PLX_DIAG_CODE_LIST(PLX_DIAG_VALUE)
#undef PLX_DIAG_VALUE
};
inline constexpr std::size_t kDiagCodeCount =
    sizeof(kAllDiagCodes) / sizeof(kAllDiagCodes[0]);

inline const char* diag_code_name(DiagCode c) {
  switch (c) {
#define PLX_DIAG_NAME_CASE(name, str, desc) \
  case DiagCode::name:                      \
    return str;
    PLX_DIAG_CODE_LIST(PLX_DIAG_NAME_CASE)
#undef PLX_DIAG_NAME_CASE
  }
  return "unknown";
}

// One-line human description, used for the generated reference table in the
// docs (and anywhere a code needs explaining without its message).
inline const char* diag_code_description(DiagCode c) {
  switch (c) {
#define PLX_DIAG_DESC_CASE(name, str, desc) \
  case DiagCode::name:                      \
    return desc;
    PLX_DIAG_CODE_LIST(PLX_DIAG_DESC_CASE)
#undef PLX_DIAG_DESC_CASE
  }
  return "";
}

// Enumerator identifier ("ChainCompileError"), for the docs table.
inline const char* diag_code_enum_name(DiagCode c) {
  switch (c) {
#define PLX_DIAG_ENUM_CASE(name, str, desc) \
  case DiagCode::name:                      \
    return #name;
    PLX_DIAG_CODE_LIST(PLX_DIAG_ENUM_CASE)
#undef PLX_DIAG_ENUM_CASE
  }
  return "";
}

class Diag {
 public:
  Diag() = default;
  // Implicit from a bare message: keeps `return fail("...")` call sites and
  // string literals in mixed expressions working (code = Unspecified).
  Diag(std::string message) : message_(std::move(message)) {}  // NOLINT(implicit)
  Diag(const char* message) : message_(message ? message : "") {}  // NOLINT(implicit)
  Diag(DiagCode code, std::string stage, std::string message)
      : code_(code), stage_(std::move(stage)), message_(std::move(message)) {}

  DiagCode code() const { return code_; }
  const std::string& stage() const { return stage_; }
  const std::string& message() const { return message_; }
  const std::vector<std::string>& context() const { return context_; }
  const std::vector<std::string>& warnings() const { return warnings_; }

  // Wrap the diagnostic as it propagates outward: the newest frame is the
  // outermost (rendered first). Chainable; usable on temporaries:
  //   return std::move(laid).take_error().with_context("final layout");
  Diag& with_context(std::string frame) & {
    context_.push_back(std::move(frame));
    rendered_.clear();
    return *this;
  }
  Diag&& with_context(std::string frame) && {
    context_.push_back(std::move(frame));
    rendered_.clear();
    return std::move(*this);
  }

  Diag& with_warning(std::string warning) & {
    warnings_.push_back(std::move(warning));
    return *this;
  }
  Diag&& with_warning(std::string warning) && {
    warnings_.push_back(std::move(warning));
    return std::move(*this);
  }

  // Human rendering: "[stage] outer: inner: message". The code is not part of
  // the rendering (reports carry it separately via diag_code_name()).
  std::string str() const {
    std::string out;
    if (!stage_.empty()) {
      out += "[";
      out += stage_;
      out += "] ";
    }
    for (auto it = context_.rbegin(); it != context_.rend(); ++it) {
      out += *it;
      out += ": ";
    }
    out += message_;
    return out;
  }

  // Stable pointer for printf-style call sites; cached per Diag instance.
  const char* c_str() const {
    if (rendered_.empty()) rendered_ = str();
    return rendered_.c_str();
  }

  operator std::string() const { return str(); }  // NOLINT(implicit)

 private:
  DiagCode code_ = DiagCode::Unspecified;
  std::string stage_;
  std::string message_;
  std::vector<std::string> context_;   // innermost first; rendered outer-first
  std::vector<std::string> warnings_;  // collected before the failure
  mutable std::string rendered_;       // c_str() cache
};

inline std::ostream& operator<<(std::ostream& os, const Diag& d) {
  return os << d.str();
}
inline std::string operator+(const std::string& a, const Diag& d) { return a + d.str(); }
inline std::string operator+(const Diag& d, const std::string& b) { return d.str() + b; }
inline std::string operator+(const char* a, const Diag& d) { return std::string(a) + d.str(); }
inline std::string operator+(const Diag& d, const char* b) { return d.str() + b; }

// Legacy alias: modules that stored plx::Error now store a Diag.
using Error = Diag;

template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}      // NOLINT(implicit)
  Result(Diag diag) : state_(std::move(diag)) {}     // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require_ok("value()");
    return std::get<T>(state_);
  }
  T& value() & {
    require_ok("value()");
    return std::get<T>(state_);
  }
  T&& take() && {
    require_ok("take()");
    return std::get<T>(std::move(state_));
  }

  const Diag& error() const {
    require_err("error()");
    return std::get<Diag>(state_);
  }
  // Move the diagnostic out (for re-wrapping with with_context()).
  Diag&& take_error() && {
    require_err("take_error()");
    return std::get<Diag>(std::move(state_));
  }

 private:
  // Wrong-state access is a hard error in every build type: assert() compiles
  // out under NDEBUG and would turn misuse into UB on std::get. Abort with
  // the stored diagnostic so the failure is actionable.
  void require_ok(const char* what) const {
    if (ok()) return;
    std::fprintf(stderr, "plx::Result: %s on error result: %s\n", what,
                 std::get<Diag>(state_).c_str());
    std::abort();
  }
  void require_err(const char* what) const {
    if (!ok()) return;
    std::fprintf(stderr, "plx::Result: %s on ok result\n", what);
    std::abort();
  }

  std::variant<T, Diag> state_;
};

// Value type for operations that succeed with nothing to return (pipeline
// stages, validators). `Status ok = Unit{};`
struct Unit {};
using Status = Result<Unit>;
inline Status ok_status() { return Unit{}; }

// Convenience constructors so call sites read `return plx::fail(...)`.
inline Diag fail(const char* message) { return Diag(message); }
inline Diag fail(std::string message) { return Diag(std::move(message)); }
inline Diag fail(Diag diag) { return diag; }
inline Diag fail(DiagCode code, std::string stage, std::string message) {
  return Diag(code, std::move(stage), std::move(message));
}

}  // namespace plx

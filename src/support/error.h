// Lightweight error propagation for Parallax.
//
// Most Parallax pipelines (assembler, compiler, rewriter) want to report a
// human-readable reason on failure without exceptions crossing module
// boundaries. plx::Result<T> is a minimal expected-like type: either a value
// or an Error with a message.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace plx {

struct Error {
  std::string message;
};

template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}        // NOLINT(implicit)
  Result(Error err) : state_(std::move(err)) {}        // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& take() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  const std::string& error() const {
    assert(!ok());
    return std::get<Error>(state_).message;
  }

 private:
  std::variant<T, Error> state_;
};

// Convenience constructor so call sites read `return plx::fail("...")`.
inline Error fail(std::string message) { return Error{std::move(message)}; }

}  // namespace plx

#include "attack/patcher.h"

#include "isa/arch.h"
#include "isa/patch_ops.h"

namespace plx::attack {

namespace {

// The backend the patched image was built for; attacks on foreign images
// fall back to the default backend's byte conventions.
const isa::Arch& image_arch(const img::Image& image) {
  const isa::Arch* arch = isa::find_arch(image.isa);
  return arch ? *arch : isa::default_arch();
}

}  // namespace

bool patch_bytes(img::Image& image, std::uint32_t addr,
                 std::span<const std::uint8_t> bytes) {
  for (auto& sec : image.sections) {
    if (!sec.contains(addr)) continue;
    if (addr - sec.vaddr + bytes.size() > sec.bytes.size()) return false;
    std::copy(bytes.begin(), bytes.end(), sec.bytes.data() + (addr - sec.vaddr));
    return true;
  }
  return false;
}

bool nop_out(img::Image& image, std::uint32_t addr, std::uint32_t len) {
  std::vector<std::uint8_t> nops(len, image_arch(image).nop_byte());
  return patch_bytes(image, addr, nops);
}

std::optional<std::uint32_t> find_jcc(const img::Image& image,
                                      const std::string& function,
                                      isa::CondId cc, int nth) {
  const isa::BranchPatchOps* ops = image_arch(image).branch_patch_ops();
  if (!ops) return std::nullopt;
  return ops->find_cond_branch(image, function, cc, nth);
}

bool make_jcc_unconditional(img::Image& image, std::uint32_t addr) {
  const isa::BranchPatchOps* ops = image_arch(image).branch_patch_ops();
  return ops && ops->make_unconditional(image, addr);
}

bool nop_jcc(img::Image& image, std::uint32_t addr) {
  const isa::BranchPatchOps* ops = image_arch(image).branch_patch_ops();
  return ops && ops->neutralize(image, addr);
}

}  // namespace plx::attack

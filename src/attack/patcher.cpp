#include "attack/patcher.h"

#include "x86/decoder.h"

namespace plx::attack {

bool patch_bytes(img::Image& image, std::uint32_t addr,
                 std::span<const std::uint8_t> bytes) {
  for (auto& sec : image.sections) {
    if (!sec.contains(addr)) continue;
    if (addr - sec.vaddr + bytes.size() > sec.bytes.size()) return false;
    std::copy(bytes.begin(), bytes.end(), sec.bytes.data() + (addr - sec.vaddr));
    return true;
  }
  return false;
}

bool nop_out(img::Image& image, std::uint32_t addr, std::uint32_t len) {
  std::vector<std::uint8_t> nops(len, 0x90);
  return patch_bytes(image, addr, nops);
}

std::optional<std::uint32_t> find_jcc(const img::Image& image,
                                      const std::string& function, x86::Cond cc,
                                      int nth) {
  const img::Symbol* sym = image.find_symbol(function);
  if (!sym) return std::nullopt;
  const auto bytes = image.read(sym->vaddr, sym->size);
  std::size_t off = 0;
  int seen = 0;
  while (off < bytes.size()) {
    const auto insn = x86::decode(std::span(bytes).subspan(off));
    if (!insn) break;
    if (insn->op == x86::Mnemonic::JCC && insn->cond == cc) {
      if (seen == nth) return sym->vaddr + static_cast<std::uint32_t>(off);
      ++seen;
    }
    off += insn->len;
  }
  return std::nullopt;
}

bool make_jcc_unconditional(img::Image& image, std::uint32_t addr) {
  const auto head = image.read(addr, 2);
  if (head.size() < 2) return false;
  if (head[0] == 0x0f && head[1] >= 0x80 && head[1] <= 0x8f) {
    // 0f 8x rel32 (6 bytes) -> 90 e9 rel32: same end address, same target.
    const std::uint8_t repl[2] = {0x90, 0xe9};
    return patch_bytes(image, addr, repl);
  }
  if (head[0] >= 0x70 && head[0] <= 0x7f) {
    // 7x rel8 -> eb rel8.
    const std::uint8_t repl[1] = {0xeb};
    return patch_bytes(image, addr, repl);
  }
  return false;
}

bool nop_jcc(img::Image& image, std::uint32_t addr) {
  const auto head = image.read(addr, 2);
  if (head.size() < 2) return false;
  if (head[0] == 0x0f && head[1] >= 0x80 && head[1] <= 0x8f) {
    return nop_out(image, addr, 6);
  }
  if (head[0] >= 0x70 && head[0] <= 0x7f) {
    return nop_out(image, addr, 2);
  }
  return false;
}

}  // namespace plx::attack

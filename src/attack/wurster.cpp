#include "attack/wurster.h"

namespace plx::attack {

void icache_patch(vm::Machine& m, std::uint32_t addr,
                  std::span<const std::uint8_t> bytes) {
  m.tamper_icache(addr, bytes);
}

vm::RunResult run_with_icache_patch(const img::Image& image, std::uint32_t addr,
                                    std::span<const std::uint8_t> bytes,
                                    std::uint64_t budget) {
  auto m = vm::make_machine(image);
  if (!m) {
    vm::RunResult r;
    r.reason = vm::StopReason::Fault;
    r.fault = "no VM registered for this image's ISA";
    return r;
  }
  m->tamper_icache(addr, bytes);
  return m->run(budget);
}

}  // namespace plx::attack

// The Wurster et al. attack [36]: desynchronise the instruction and data
// views of memory so that executed code is tampered while every data read —
// including checksummers reading their own code — sees pristine bytes.
//
// On real hardware this is a kernel page-table/TLB trick; our VM models it
// directly with its split I-cache overlay (vm::Machine::tamper_icache).
#pragma once

#include <span>

#include "image/image.h"
#include "vm/vm.h"

namespace plx::attack {

// Apply a fetch-view-only patch to a running machine.
void icache_patch(vm::Machine& m, std::uint32_t addr,
                  std::span<const std::uint8_t> bytes);

// Convenience: run `image` with the given fetch-view patch applied from the
// start. Checksumming defenses pass; Parallax chains notice. Faults with a
// diagnostic when the image names an ISA with no registered VM.
vm::RunResult run_with_icache_patch(const img::Image& image, std::uint32_t addr,
                                    std::span<const std::uint8_t> bytes,
                                    std::uint64_t budget = 200'000'000);

}  // namespace plx::attack

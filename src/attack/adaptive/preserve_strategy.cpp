// Strategy 2: gadget-preserving patches (generator in preserving.cpp).
//
// Every candidate changes exactly one executed-instruction byte that lies in
// no usable gadget, so by construction no chain ever fetches a changed byte
// — implicit verification is blind to the rewrite and only the program's own
// behaviour can betray it. These candidates are never strict (strict bytes
// are covered gadget bytes), so they can never count as escapes; what the
// campaign measures instead is how many of them the oracle still catches
// behaviourally (detected vs silent_corruption/benign), i.e. how much of the
// attack surface outside the verified bytes the golden trace covers. That is
// the honest limit of implicit verification, reported rather than hidden.
#include <algorithm>

#include "attack/adaptive/evaluate.h"
#include "attack/adaptive/preserving.h"
#include "attack/adaptive/strategy.h"

namespace plx::attack::adaptive {

namespace {

class PreservingStrategy final : public Strategy {
 public:
  const char* name() const override { return "preserve"; }

  StrategyOutcome run(const AdaptiveContext& ctx) override {
    StrategyOutcome out;
    out.strategy = name();

    PreservingOptions gen;
    gen.max_per_insn = ctx.opts.preserve_max_per_insn;
    gen.max_total = ctx.opts.budget_per_strategy;
    const auto patches = generate_preserving_patches(ctx.image, ctx.gadgets,
                                                     ctx.exec_starts, gen);

    std::size_t touched_protected = 0;
    for (const PreservingPatch& p : patches) {
      fuzz::Mutation mu;
      mu.addr = p.addr();
      mu.bytes = {p.replacement};
      mu.origin = "preserve";
      ctx.mark(mu);
      touched_protected += mu.protected_ ? 1 : 0;
      out.candidates.push_back(std::move(mu));
    }

    const auto results =
        ctx.evaluator.run(out.candidates, ctx.eval_options(false));
    out.stats = Evaluator::tally(results);
    out.counters.emplace_back("patches_generated", patches.size());
    out.counters.emplace_back("patched_protected_bytes", touched_protected);
    out.counters.emplace_back("exec_insn_starts", ctx.exec_starts.size());
    return out;
  }
};

}  // namespace

std::unique_ptr<Strategy> make_preserving_strategy() {
  return std::make_unique<PreservingStrategy>();
}

}  // namespace plx::attack::adaptive

// Strategy 1: gadget-aware targeting.
//
// A blind sweep spends its budget uniformly; an adversary with the gadget
// scanner knows better. The bytes covered by the most overlapping gadgets
// are where the verification surface is densest — exactly where a tamper is
// most likely to be caught, and therefore exactly the claim worth attacking
// hardest: if any high-coverage byte tolerates a flip, the implicit
// verification story has a hole where it should be strongest. Rank every
// byte by usable-gadget coverage (count descending, address ascending for
// determinism) and spend the whole candidate budget on the top of the
// ranking with the sweep's canonical mask set.
#include <algorithm>

#include "attack/adaptive/evaluate.h"
#include "attack/adaptive/preserving.h"
#include "attack/adaptive/strategy.h"

namespace plx::attack::adaptive {

namespace {

constexpr std::uint8_t kMasks[] = {0x01, 0x80, 0xff};

class TargetingStrategy final : public Strategy {
 public:
  const char* name() const override { return "target"; }

  StrategyOutcome run(const AdaptiveContext& ctx) override {
    StrategyOutcome out;
    out.strategy = name();

    const auto cover = gadget_byte_coverage(ctx.gadgets);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranked;  // (addr, n)
    ranked.reserve(cover.size());
    for (const auto& [addr, n] : cover) ranked.emplace_back(addr, n);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       if (a.second != b.second) return a.second > b.second;
                       return a.first < b.first;
                     });

    std::uint32_t max_cover = 0;
    for (const auto& [addr, n] : ranked) max_cover = std::max(max_cover, n);

    std::size_t bytes_probed = 0;
    for (const auto& [addr, n] : ranked) {
      if (out.candidates.size() >= ctx.opts.budget_per_strategy) break;
      const auto orig = ctx.image.read(addr, 1);
      if (orig.empty()) continue;
      ++bytes_probed;
      for (std::uint8_t mask : kMasks) {
        if (out.candidates.size() >= ctx.opts.budget_per_strategy) break;
        fuzz::Mutation mu;
        mu.addr = addr;
        mu.bytes = {static_cast<std::uint8_t>(orig[0] ^ mask)};
        mu.origin = "target";
        ctx.mark(mu);
        out.candidates.push_back(std::move(mu));
      }
    }

    const auto results =
        ctx.evaluator.run(out.candidates, ctx.eval_options(false));
    out.stats = Evaluator::tally(results);
    out.counters.emplace_back("bytes_probed", bytes_probed);
    out.counters.emplace_back("max_gadget_cover", max_cover);
    out.counters.emplace_back("covered_bytes_total", cover.size());
    return out;
  }
};

}  // namespace

std::unique_ptr<Strategy> make_targeting_strategy() {
  return std::make_unique<TargetingStrategy>();
}

}  // namespace plx::attack::adaptive

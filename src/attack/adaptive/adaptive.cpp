#include "attack/adaptive/adaptive.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "gadget/scanner.h"
#include "telemetry/trace.h"

namespace plx::attack::adaptive {

void AdaptiveContext::mark(fuzz::Mutation& mu) const {
  mu.strict = false;
  mu.protected_ = false;
  for (std::size_t i = 0; i < mu.bytes.size(); ++i) {
    const auto it = tiers.find(mu.addr + static_cast<std::uint32_t>(i));
    if (it == tiers.end()) continue;
    mu.protected_ = true;
    mu.strict |= (it->second & fuzz::TamperFuzzer::kTierStrict) != 0;
  }
}

EvalOptions AdaptiveContext::eval_options(bool fingerprints) const {
  EvalOptions eo;
  eo.step_budget = std::max(
      opts.min_budget, opts.budget_multiplier * fuzzer.golden().instructions);
  eo.shards = opts.shards;
  eo.fingerprints = fingerprints;
  eo.window_cycles = opts.fingerprint_window_cycles;
  return eo;
}

AdaptiveResult run_adaptive(const img::Image& image,
                            const std::vector<parallax::ProtectedRange>& ranges,
                            const AdaptiveOptions& opts,
                            const std::vector<Strategy*>& strategies) {
  const auto t0 = std::chrono::steady_clock::now();
  AdaptiveResult res;

  PLX_TRACE_SPAN_VAR(span, "adaptive", "run_adaptive");

  fuzz::TamperFuzzer fuzzer(image, ranges);
  res.ok = fuzzer.ok();
  res.golden = fuzzer.golden();
  if (!res.ok) return res;
  res.protected_bytes = fuzzer.protected_bytes();
  res.strict_bytes = fuzzer.strict_bytes();

  // The attacker's own reconnaissance: scan the protected image for usable
  // gadgets (the verification surface) and replay the golden input once more
  // to learn which instructions execute.
  const std::vector<gadget::Gadget> gadgets = gadget::scan(image);
  res.gadgets_scanned = gadgets.size();

  std::unordered_set<std::uint32_t> start_set;
  fuzz::record_golden(image, 2'000'000'000ull, &start_set);
  std::vector<std::uint32_t> exec_starts(start_set.begin(), start_set.end());
  std::sort(exec_starts.begin(), exec_starts.end());
  res.exec_insns = exec_starts.size();

  const std::map<std::uint32_t, std::uint8_t> tiers = fuzzer.byte_tiers();

  const Evaluator evaluator(image, fuzzer.golden());
  const std::vector<double> golden_fp = golden_ret_density(
      image, 2'000'000'000ull, opts.fingerprint_window_cycles);
  res.golden_windows = golden_fp.size();

  const AdaptiveContext ctx{image,     fuzzer,    gadgets,   exec_starts,
                            tiers,     golden_fp, evaluator, opts};

  std::vector<std::unique_ptr<Strategy>> owned;
  std::vector<Strategy*> run_list = strategies;
  if (run_list.empty()) {
    owned = default_strategies();
    for (const auto& s : owned) run_list.push_back(s.get());
  }

  for (Strategy* s : run_list) {
    const auto s0 = std::chrono::steady_clock::now();
    StrategyOutcome outcome = s->run(ctx);
    outcome.stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - s0)
            .count();
    res.total.merge(outcome.stats);
    res.strategies.push_back(std::move(outcome));
  }
  // merge() sums per-strategy wall time into total.seconds; keep it, and
  // report the end-to-end time (scan + golden + search) separately.
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

}  // namespace plx::attack::adaptive

// Gadget-preserving patch generation: rewrite an executed instruction into a
// semantically different one without disturbing a single gadget byte.
//
// This is the patch class most likely to evade implicit verification
// ("Hiding in the Particles" builds whole transformation systems around it):
// Parallax only verifies bytes that verification chains fetch and execute,
// i.e. gadget bytes, so a byte that sits inside an executed instruction but
// inside *no* overlapped gadget can change program behaviour while every
// chain still hashes/executes the exact bytes it was compiled against.
//
// The generator enumerates executed instruction starts, decodes each
// instruction with the image's backend decoder, and searches single-byte
// rewrites that (a) still
// decode to a valid instruction of the same length, (b) change the decoded
// semantics (mnemonic, condition, operands or operation width), and (c) do
// not touch any byte covered by a usable gadget. Every accepted patch is
// additionally self-checked by re-scanning a window around the instruction
// and asserting the set of usable gadgets overlapping the patched range is
// byte-identical before and after — the same invariant the property test in
// tests/test_adaptive.cpp asserts with a full-image re-scan (catches both
// generator bugs and encoder/decoder drift).
//
// Enumeration order is fixed (instruction start ascending, byte offset
// ascending, replacement value ascending), so generation is deterministic
// with no randomness at all.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "gadget/gadget.h"
#include "gadget/scanner.h"
#include "image/image.h"
#include "isa/insn.h"

namespace plx::attack::adaptive {

// Byte address -> number of usable gadgets whose [addr, end) covers it.
std::map<std::uint32_t, std::uint32_t> gadget_byte_coverage(
    const std::vector<gadget::Gadget>& gadgets);

// Semantic equality of two decoded instructions: mnemonic, condition,
// operation width and operands (encoding hints like wide_imm are ignored —
// two encodings of the same operation are the *same* semantics). Both
// decodes must come from `arch`'s decoder; the overload without an Arch
// uses the default backend.
bool same_semantics(const isa::Insn& a, const isa::Insn& b,
                    const isa::Arch& arch);
bool same_semantics(const isa::Insn& a, const isa::Insn& b);

struct PreservingPatch {
  std::uint32_t insn_addr = 0;   // start of the rewritten instruction
  std::uint8_t insn_len = 0;     // its encoded length (unchanged by the patch)
  std::uint8_t offset = 0;       // changed byte offset within the instruction
  std::uint8_t original = 0;     // byte value before
  std::uint8_t replacement = 0;  // byte value after
  isa::Insn before;              // decode at insn_addr before the patch
  isa::Insn after;               // decode at insn_addr after the patch

  std::uint32_t addr() const { return insn_addr + offset; }
};

struct PreservingOptions {
  // Patches kept per instruction before moving on (the strategy wants broad
  // coverage; the property test raises this to mass-produce patches).
  int max_per_insn = 2;
  std::size_t max_total = static_cast<std::size_t>(-1);
  // Must match the options used to produce `gadgets`, or the self-check
  // would compare against a differently-capped scan.
  gadget::ScanOptions scan;
};

// Generates patches for the executed instructions `insn_starts` (absolute
// addresses, any order; deduplicated and sorted internally) of `image`.
// `gadgets` is the usable-gadget scan of the same image.
std::vector<PreservingPatch> generate_preserving_patches(
    const img::Image& image, const std::vector<gadget::Gadget>& gadgets,
    const std::vector<std::uint32_t>& insn_starts,
    const PreservingOptions& opts = {});

}  // namespace plx::attack::adaptive

#include "attack/adaptive/evaluate.h"

#include <algorithm>
#include <span>

#include "support/thread_pool.h"
#include "vm/vm.h"
#include "vm/vmtrace.h"

namespace plx::attack::adaptive {

namespace {

std::vector<double> densities(const vm::ExecutionProfiler& prof) {
  std::vector<double> out;
  out.reserve(prof.windows().size());
  for (const auto& w : prof.windows()) out.push_back(w.ret_density());
  return out;
}

}  // namespace

std::vector<EvalCase> Evaluator::run(const std::vector<fuzz::Mutation>& cases,
                                     const EvalOptions& opts) const {
  std::vector<EvalCase> results(cases.size());
  if (cases.empty()) return results;

  const std::size_t nshards =
      std::min<std::size_t>(std::max(1u, opts.shards), cases.size());
  const std::size_t chunk = (cases.size() + nshards - 1) / nshards;

  support::ThreadPool::shared().parallel_for(nshards, [&](std::size_t shard) {
    const std::size_t lo = shard * chunk;
    const std::size_t hi = std::min(lo + chunk, cases.size());
    if (lo >= hi) return;

    auto mp = vm::make_machine(image_);
    if (!mp) return;  // no VM for this ISA: cases stay at their defaults
    vm::Machine& m = *mp;
    const vm::Machine::Snapshot pristine = m.snapshot();

    for (std::size_t i = lo; i < hi; ++i) {
      const fuzz::Mutation& mu = cases[i];
      EvalCase& out = results[i];
      out.result.mutation = mu;

      m.restore(pristine);
      m.tamper(mu.addr, std::span<const std::uint8_t>(mu.bytes));
      // A fresh profiler per candidate: windows must start at cycle zero of
      // the mutant run, not wherever the previous candidate stopped.
      vm::ExecutionProfiler prof({}, opts.window_cycles);
      if (opts.fingerprints) prof.attach(m);
      const auto r = m.run(opts.step_budget);
      if (opts.fingerprints) {
        prof.finish();
        m.retire_observer = nullptr;
        out.ret_density = densities(prof);
      }
      out.result.outcome =
          fuzz::classify(golden_, m, r, mu.protected_, &out.result.detail);
      out.result.instructions = r.instructions;
    }
  });
  return results;
}

fuzz::CampaignStats Evaluator::tally(const std::vector<EvalCase>& cases) {
  fuzz::CampaignStats stats;
  stats.total = cases.size();
  for (const EvalCase& c : cases) {
    stats.mutant_instructions += c.result.instructions;
    switch (c.result.outcome) {
      case fuzz::Outcome::Detected: ++stats.detected; break;
      case fuzz::Outcome::SilentCorruption: ++stats.silent_corruption; break;
      case fuzz::Outcome::Benign: ++stats.benign; break;
      case fuzz::Outcome::Timeout: ++stats.timeout; break;
    }
    if (c.result.mutation.strict &&
        c.result.outcome == fuzz::Outcome::SilentCorruption) {
      stats.escapes.push_back(c.result);
    }
  }
  return stats;
}

std::vector<double> golden_ret_density(const img::Image& image,
                                       std::uint64_t step_budget,
                                       std::uint64_t window_cycles) {
  auto m = vm::make_machine(image);
  if (!m) return {};
  vm::ExecutionProfiler prof({}, window_cycles);
  prof.attach(*m);
  m->run(step_budget);
  prof.finish();
  m->retire_observer = nullptr;
  return densities(prof);
}

double fingerprint_divergence(const std::vector<double>& a,
                              const std::vector<double>& b) {
  const std::size_t n = std::max(a.size(), b.size());
  double d = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double av = i < a.size() ? a[i] : 0;
    const double bv = i < b.size() ? b[i] : 0;
    d += av > bv ? av - bv : bv - av;
  }
  return d;
}

}  // namespace plx::attack::adaptive

// Strategy 3: fingerprint-guided escape hunting.
//
// ROPocop detects ROP by its ret-frequency anomaly; Parallax's verification
// chains ARE that anomaly, so the signal cuts both ways: an adversary who
// can profile the protected program (the vmtrace ret-density timeline)
// learns which cycle windows are chain execution — and a mutant whose
// timeline matches the golden one *looked* like it still ran every chain.
// Divergence from the golden fingerprint is therefore the search signal: a
// detected mutant with near-zero divergence derailed nothing structural and
// is the best base for follow-up mutations; a faulting mutant with huge
// divergence is a dead end. Classic hill-climbing over the single-byte
// mutation neighbourhood, seeded and fully deterministic:
//
//   generation 0   seeded splitmix picks over the strict byte list
//   survivors      candidates ranked by (divergence, addr, mask) ascending
//   generation n   neighbours of the best survivors (addr +-1, +-2 with the
//                  same mask; canonical masks at the same addr), refilled
//                  with seeded picks when the neighbourhood is exhausted
//
// Every draw comes from a per-index splitmix stream of the campaign seed and
// every ranking tie-breaks on (addr, mask), so the candidate sequence is
// identical for identical seed regardless of thread count. Under
// PLX_TRACE=OFF the timeline is empty, all divergences are 0 and the search
// degrades to a deterministic seeded walk — same contract, weaker signal.
#include <algorithm>
#include <set>

#include "attack/adaptive/evaluate.h"
#include "attack/adaptive/strategy.h"

namespace plx::attack::adaptive {

namespace {

constexpr std::uint8_t kMasks[] = {0x01, 0x80, 0xff};

std::uint64_t splitmix(std::uint64_t seed, std::uint64_t i) {
  std::uint64_t z = seed + (i + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct Scored {
  double divergence = 0;
  std::uint32_t addr = 0;
  std::uint8_t mask = 0;

  bool operator<(const Scored& o) const {
    if (divergence != o.divergence) return divergence < o.divergence;
    if (addr != o.addr) return addr < o.addr;
    return mask < o.mask;
  }
};

class FingerprintStrategy final : public Strategy {
 public:
  const char* name() const override { return "fingerprint"; }

  StrategyOutcome run(const AdaptiveContext& ctx) override {
    StrategyOutcome out;
    out.strategy = name();

    // The search space: strict bytes first (that is where an escape would
    // count), falling back to all protected bytes for unprotected inputs.
    std::vector<std::uint32_t> pool;
    for (const auto& [addr, tier] : ctx.tiers) {
      if (tier & fuzz::TamperFuzzer::kTierStrict) pool.push_back(addr);
    }
    if (pool.empty()) {
      for (const auto& [addr, tier] : ctx.tiers) pool.push_back(addr);
    }
    if (pool.empty()) return out;  // nothing to search

    const std::size_t budget = ctx.opts.budget_per_strategy;
    std::set<std::pair<std::uint32_t, std::uint8_t>> visited;
    std::vector<Scored> survivors;
    std::uint64_t draw = 0;  // seeded-stream index, shared by all refills
    double best = -1;
    std::size_t rounds = 0;

    const auto seeded_pick = [&]() -> std::pair<std::uint32_t, std::uint8_t> {
      const std::uint64_t r = splitmix(ctx.opts.seed ^ 0xf19e9u, draw++);
      const std::uint32_t addr =
          pool[static_cast<std::size_t>(r % pool.size())];
      const std::uint8_t mask = kMasks[(r >> 32) % 3];
      return {addr, mask};
    };

    while (out.candidates.size() < budget) {
      // Assemble the next generation: neighbours of the best survivors
      // first, then seeded refills. Bounded draws so an exhausted search
      // space cannot loop forever.
      std::vector<std::pair<std::uint32_t, std::uint8_t>> gen;
      const std::size_t gen_cap =
          std::min<std::size_t>(16, budget - out.candidates.size());
      const std::size_t frontier = std::min<std::size_t>(4, survivors.size());
      for (std::size_t i = 0; i < frontier && gen.size() < gen_cap; ++i) {
        const Scored& s = survivors[i];
        const std::int32_t deltas[] = {-2, -1, 1, 2};
        for (std::int32_t d : deltas) {
          if (gen.size() >= gen_cap) break;
          const std::uint32_t a = s.addr + static_cast<std::uint32_t>(d);
          if (!ctx.image.section_at(a)) continue;
          if (visited.emplace(a, s.mask).second) gen.emplace_back(a, s.mask);
        }
        for (std::uint8_t mask : kMasks) {
          if (gen.size() >= gen_cap) break;
          if (mask == s.mask) continue;
          if (visited.emplace(s.addr, mask).second)
            gen.emplace_back(s.addr, mask);
        }
      }
      for (std::uint64_t tries = 0;
           gen.size() < gen_cap && tries < 64 * gen_cap; ++tries) {
        const auto pick = seeded_pick();
        if (visited.emplace(pick.first, pick.second).second)
          gen.push_back(pick);
      }
      if (gen.empty()) break;  // search space exhausted

      std::vector<fuzz::Mutation> muts;
      muts.reserve(gen.size());
      for (const auto& [addr, mask] : gen) {
        const auto orig = ctx.image.read(addr, 1);
        fuzz::Mutation mu;
        mu.addr = addr;
        mu.bytes = {static_cast<std::uint8_t>((orig.empty() ? 0 : orig[0]) ^
                                              mask)};
        mu.origin = "fingerprint";
        ctx.mark(mu);
        muts.push_back(std::move(mu));
      }

      const auto results = ctx.evaluator.run(muts, ctx.eval_options(true));
      out.stats.merge(Evaluator::tally(results));
      out.candidates.insert(out.candidates.end(), muts.begin(), muts.end());

      for (std::size_t i = 0; i < results.size(); ++i) {
        Scored s;
        s.divergence = fingerprint_divergence(ctx.golden_fingerprint,
                                              results[i].ret_density);
        s.addr = gen[i].first;
        s.mask = gen[i].second;
        survivors.push_back(s);
      }
      std::sort(survivors.begin(), survivors.end());
      if (survivors.size() > 8) survivors.resize(8);
      best = survivors.empty() ? -1 : survivors.front().divergence;
      ++rounds;
    }

    out.counters.emplace_back("rounds", rounds);
    out.counters.emplace_back("search_pool_bytes", pool.size());
    out.counters.emplace_back("golden_windows", ctx.golden_fingerprint.size());
    out.counters.emplace_back(
        "best_divergence_millionths",
        best < 0 ? 0 : static_cast<std::uint64_t>(best * 1e6));
    return out;
  }
};

}  // namespace

std::unique_ptr<Strategy> make_fingerprint_strategy() {
  return std::make_unique<FingerprintStrategy>();
}

std::vector<std::unique_ptr<Strategy>> default_strategies() {
  std::vector<std::unique_ptr<Strategy>> out;
  out.push_back(make_targeting_strategy());
  out.push_back(make_preserving_strategy());
  out.push_back(make_fingerprint_strategy());
  return out;
}

}  // namespace plx::attack::adaptive

// Adaptive attacker driver: runs the three search strategies against one
// protected image and aggregates the results (DESIGN.md §14).
//
// The driver owns everything the strategies share: the golden oracle (a
// fuzz::TamperFuzzer), the attacker's own gadget scan of the protected
// image, the executed-instruction starts, the byte tier map and the golden
// ret-density fingerprint. plxfuzz wires this up as fuzz::Backend::Adaptive
// and emits the result as ADAPT_<name>.json (attack/adaptive/report.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/adaptive/strategy.h"
#include "parallax/protector.h"

namespace plx::attack::adaptive {

struct AdaptiveResult {
  bool ok = false;              // golden run exited cleanly
  fuzz::GoldenTrace golden;
  std::size_t protected_bytes = 0;
  std::size_t strict_bytes = 0;
  std::size_t gadgets_scanned = 0;   // usable gadgets the attacker found
  std::size_t exec_insns = 0;        // distinct executed instruction starts
  std::size_t golden_windows = 0;    // golden fingerprint resolution
  std::vector<StrategyOutcome> strategies;
  fuzz::CampaignStats total;         // merged across strategies
  double wall_seconds = 0;

  std::size_t escape_count() const { return total.escapes.size(); }
};

// Runs every default strategy (or `strategies` when non-empty) against
// `image` with the protected-byte map `ranges`. Deterministic for a fixed
// seed, budget and build configuration, independent of thread count.
AdaptiveResult run_adaptive(const img::Image& image,
                            const std::vector<parallax::ProtectedRange>& ranges,
                            const AdaptiveOptions& opts = {},
                            const std::vector<Strategy*>& strategies = {});

}  // namespace plx::attack::adaptive

#include "attack/adaptive/preserving.h"

#include <algorithm>

#include "gadget/scanner.h"
#include "isa/arch.h"

namespace plx::attack::adaptive {

namespace {

// The self-check re-scans this many bytes either side of the instruction.
// Any gadget overlapping the instruction starts within max_bytes (30) before
// it and decodes at most max_bytes past its own start, so 64 covers every
// byte whose decode can reach the patched range — the windowed scan agrees
// with a full-image scan over the gadgets we compare (the property test
// asserts exactly that with a full re-scan).
constexpr std::uint32_t kScanMargin = 64;

// (addr, gadget bytes) identity of every usable gadget in `gadgets` that
// overlaps [lo, hi), pulled out of `window` (which starts at `base`).
std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>
overlapping_identities(const std::vector<gadget::Gadget>& gadgets,
                       std::span<const std::uint8_t> window,
                       std::uint32_t base, std::uint32_t lo, std::uint32_t hi) {
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> out;
  for (const auto& g : gadgets) {
    if (g.addr >= hi || g.end() <= lo) continue;
    const std::size_t off = g.addr - base;
    out.emplace_back(g.addr,
                     std::vector<std::uint8_t>(window.begin() + off,
                                               window.begin() + off + g.len));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::map<std::uint32_t, std::uint32_t> gadget_byte_coverage(
    const std::vector<gadget::Gadget>& gadgets) {
  std::map<std::uint32_t, std::uint32_t> cover;
  for (const auto& g : gadgets) {
    if (!g.usable()) continue;
    for (std::uint32_t a = g.addr; a < g.end(); ++a) ++cover[a];
  }
  return cover;
}

bool same_semantics(const isa::Insn& a, const isa::Insn& b,
                    const isa::Arch& arch) {
  return arch.decoder().same_semantics(a, b);
}

bool same_semantics(const isa::Insn& a, const isa::Insn& b) {
  return same_semantics(a, b, isa::default_arch());
}

std::vector<PreservingPatch> generate_preserving_patches(
    const img::Image& image, const std::vector<gadget::Gadget>& gadgets,
    const std::vector<std::uint32_t>& insn_starts,
    const PreservingOptions& opts) {
  std::vector<PreservingPatch> patches;
  if (opts.max_total == 0) return patches;

  const auto cover = gadget_byte_coverage(gadgets);
  std::vector<std::uint32_t> starts = insn_starts;
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

  gadget::ScanOptions scan_opts = opts.scan;
  scan_opts.include_unusable = false;
  scan_opts.parallel = false;  // tiny windows; keep the check on this thread
  // The backend must match the scan that produced `gadgets`; when unset,
  // follow the image's ISA.
  const isa::Arch* arch = scan_opts.arch;
  if (!arch) arch = isa::find_arch(image.isa);
  if (!arch) arch = &isa::default_arch();
  scan_opts.arch = arch;
  const isa::Decoder& decoder = arch->decoder();
  const std::uint32_t max_len = arch->max_insn_len();

  for (std::uint32_t s : starts) {
    const img::Section* sec = image.section_at(s);
    if (!sec || (sec->perms & img::kPermExec) == 0) continue;
    const auto window15 = image.read(s, max_len);
    const isa::Insn insn = decoder.decode(window15);
    if (!insn.valid()) continue;
    const std::uint8_t len = insn.len;
    if (s + len > sec->vaddr + sec->bytes.size()) continue;

    // Scan window around the instruction, clamped to the section.
    const std::uint32_t wlo =
        s - sec->vaddr >= kScanMargin ? s - kScanMargin : sec->vaddr;
    const std::uint32_t sec_end =
        sec->vaddr + static_cast<std::uint32_t>(sec->bytes.size());
    const std::uint32_t whi = std::min(sec_end, s + len + kScanMargin);
    const auto before_bytes = image.read(wlo, whi - wlo);
    const auto before_gadgets = gadget::scan_bytes(
        std::span<const std::uint8_t>(before_bytes), wlo, scan_opts);
    const auto before_ids = overlapping_identities(
        before_gadgets, std::span<const std::uint8_t>(before_bytes), wlo, s,
        s + len);

    int kept = 0;
    for (std::uint8_t off = 0; off < len && kept < opts.max_per_insn; ++off) {
      if (cover.count(s + off) != 0) continue;  // gadget byte: hands off
      const std::uint8_t orig = before_bytes[s + off - wlo];
      for (int v = 0; v < 256 && kept < opts.max_per_insn; ++v) {
        const std::uint8_t b = static_cast<std::uint8_t>(v);
        if (b == orig) continue;

        std::vector<std::uint8_t> window = window15;
        window[off] = b;
        const isa::Insn after =
            decoder.decode(std::span<const std::uint8_t>(window));
        if (!after.valid() || after.len != len) continue;
        if (same_semantics(insn, after, *arch)) continue;

        // Self-check: the usable gadgets overlapping the instruction must be
        // byte-identical after the patch.
        std::vector<std::uint8_t> after_bytes = before_bytes;
        after_bytes[s + off - wlo] = b;
        const auto after_gadgets = gadget::scan_bytes(
            std::span<const std::uint8_t>(after_bytes), wlo, scan_opts);
        const auto after_ids = overlapping_identities(
            after_gadgets, std::span<const std::uint8_t>(after_bytes), wlo, s,
            s + len);
        if (after_ids != before_ids) continue;

        PreservingPatch p;
        p.insn_addr = s;
        p.insn_len = len;
        p.offset = off;
        p.original = orig;
        p.replacement = b;
        p.before = insn;
        p.after = after;
        patches.push_back(p);
        ++kept;
        if (patches.size() >= opts.max_total) return patches;
      }
    }
  }
  return patches;
}

}  // namespace plx::attack::adaptive

// Candidate evaluator for the adaptive attacker: sharded mutant execution
// with optional per-candidate ret-density fingerprints.
//
// Mirrors fuzz::TamperFuzzer::run_cases — one vm::Machine per shard, a
// pristine Snapshot taken once, restore -> tamper -> run -> classify per
// candidate — but additionally attaches a vm::ExecutionProfiler per run when
// the caller asks for fingerprints, so the fingerprint strategy can measure
// each mutant's ret-density timeline in the same pass that classifies it.
// Results are indexed by candidate, so they are independent of sharding and
// thread count.
//
// Fingerprints require the VM retire observer, which is compiled out under
// PLX_TRACE=OFF: there, ret_density comes back empty for every candidate and
// divergence degrades to 0. Classification is unaffected.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzz/fuzz.h"
#include "image/image.h"

namespace plx::attack::adaptive {

struct EvalCase {
  fuzz::CaseResult result;
  // Per-window ret density of the mutant run (empty unless requested and
  // PLX_TRACE is compiled in).
  std::vector<double> ret_density;
};

struct EvalOptions {
  std::uint64_t step_budget = 1'000'000;  // guest instructions per mutant
  unsigned shards = 64;
  bool fingerprints = false;
  std::uint64_t window_cycles = 1024;
};

class Evaluator {
 public:
  Evaluator(const img::Image& image, const fuzz::GoldenTrace& golden)
      : image_(image), golden_(golden) {}

  // Runs every candidate and classifies it against the golden trace.
  // results[i] corresponds to cases[i].
  std::vector<EvalCase> run(const std::vector<fuzz::Mutation>& cases,
                            const EvalOptions& opts) const;

  // Folds per-case results into campaign stats (escapes = strict mutants
  // classified SILENT_CORRUPTION, the fuzz-harness rule).
  static fuzz::CampaignStats tally(const std::vector<EvalCase>& cases);

 private:
  const img::Image& image_;
  const fuzz::GoldenTrace& golden_;
};

// Golden-run ret-density timeline (empty under PLX_TRACE=OFF).
std::vector<double> golden_ret_density(const img::Image& image,
                                       std::uint64_t step_budget,
                                       std::uint64_t window_cycles);

// L1 distance between two ret-density timelines, padding the shorter with
// zero-density windows: a mutant that dies early diverges by the mass of
// every golden window it never reached.
double fingerprint_divergence(const std::vector<double>& a,
                              const std::vector<double>& b);

}  // namespace plx::attack::adaptive

// Adaptive attacker: the common Strategy interface (DESIGN.md §14).
//
// Parallax's evaluation (§VI) assumes a patching adversary; the static
// attackers in src/attack (Wurster patcher, byte patcher) model exactly that
// and nothing more. This module models a *searching* adversary that turns
// the repo's own machinery against itself: the gadget scanner locates the
// verification surface, the backend decoder crafts gadget-preserving rewrites,
// and the vmtrace ret-density fingerprint (ROPocop's detection signal,
// inverted) guides a hill-climbing search for silent mutants.
//
// Each attack shape is one Strategy behind this interface. A strategy reads
// a shared AdaptiveContext (protected image, golden oracle, the attacker's
// own gadget scan, byte tiers, golden fingerprint, candidate evaluator),
// spends a fixed candidate budget, and returns a StrategyOutcome — the
// classified campaign stats plus the exact ordered candidate sequence it
// tried. Determinism contract: for a fixed seed, budget and build
// configuration, the candidate sequence is identical across runs and thread
// counts (tests/test_adaptive.cpp asserts it); randomness only ever comes
// from per-index splitmix streams of AdaptiveOptions::seed, never from
// iteration order of unordered containers or from wall-clock state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/adaptive/evaluate.h"
#include "fuzz/fuzz.h"
#include "gadget/gadget.h"
#include "image/image.h"

namespace plx::attack::adaptive {

struct AdaptiveOptions {
  std::uint64_t seed = 0x9a11a;
  // Candidate budget per strategy (one candidate == one mutant execution).
  std::size_t budget_per_strategy = 64;
  // Mutant sharding over support/thread_pool; fixed like fuzz::CampaignOptions
  // so results do not depend on the host thread count.
  unsigned shards = 64;
  // Mutant step budget = max(min_budget, budget_multiplier * golden insns).
  std::uint64_t budget_multiplier = 16;
  std::uint64_t min_budget = 1'000'000;
  // Ret-density timeline resolution for the fingerprint strategy. Smaller
  // than the vmtrace default: adaptive targets are small programs and the
  // search needs several windows per run to see a shape.
  std::uint64_t fingerprint_window_cycles = 1024;
  // Gadget-preserving generator: candidate encodings kept per instruction.
  int preserve_max_per_insn = 2;
};

// Everything a strategy may read. Built once per campaign by
// AdaptiveAttacker; strategies own no state across run() calls.
struct AdaptiveContext {
  const img::Image& image;                    // protected image under attack
  const fuzz::TamperFuzzer& fuzzer;           // golden oracle + tier map
  const std::vector<gadget::Gadget>& gadgets; // attacker's own usable-gadget scan
  const std::vector<std::uint32_t>& exec_starts;  // executed insn starts, sorted
  // Byte -> fuzz::TamperFuzzer tier flags (kTierProtected / kTierStrict).
  const std::map<std::uint32_t, std::uint8_t>& tiers;
  // Golden ret-density timeline (one value per window); empty when the build
  // has no retire observer (PLX_TRACE=OFF) — strategies must degrade, not die.
  const std::vector<double>& golden_fingerprint;
  const Evaluator& evaluator;
  const AdaptiveOptions& opts;

  // Stamps strict/protected_ on a mutation from the tier map (same rule the
  // random campaign uses: any touched byte counts).
  void mark(fuzz::Mutation& mu) const;

  // Evaluator options with the fuzz-harness step-budget rule
  // (max(min_budget, budget_multiplier * golden instructions)).
  EvalOptions eval_options(bool fingerprints) const;
};

struct StrategyOutcome {
  std::string strategy;       // Strategy::name()
  fuzz::CampaignStats stats;  // classified results, escapes included
  // The exact candidates tried, in evaluation order — the determinism
  // contract is stated over this sequence.
  std::vector<fuzz::Mutation> candidates;
  // Strategy-specific counters, name -> value, insertion order preserved.
  // Flattened into the ADAPT_*.json "attribution" object.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual const char* name() const = 0;
  virtual StrategyOutcome run(const AdaptiveContext& ctx) = 0;
};

// The three shapes, in reporting order.
std::unique_ptr<Strategy> make_targeting_strategy();    // "target"
std::unique_ptr<Strategy> make_preserving_strategy();   // "preserve"
std::unique_ptr<Strategy> make_fingerprint_strategy();  // "fingerprint"
std::vector<std::unique_ptr<Strategy>> default_strategies();

}  // namespace plx::attack::adaptive

#include "attack/adaptive/report.h"

#include <fstream>

#include "telemetry/report.h"
#include "telemetry/schema.h"

namespace plx::attack::adaptive {

namespace {

using telemetry::JsonWriter;

std::string hex_bytes(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

std::uint64_t total_syscalls(const fuzz::GoldenTrace& g) {
  std::uint64_t n = 0;
  for (const auto& [num, count] : g.syscalls) n += count;
  return n;
}

void emit_outcomes(JsonWriter& w, const fuzz::CampaignStats& s) {
  w.field_u64("total", s.total);
  w.field_u64("detected", s.detected);
  w.field_u64("silent_corruption", s.silent_corruption);
  w.field_u64("benign", s.benign);
  w.field_u64("timeout", s.timeout);
  w.field_u64("escapes", s.escapes.size());
}

}  // namespace

bool write_adapt_json(const AdaptReport& report, const std::string& dir) {
  const std::string path = dir + "/ADAPT_" + report.name + ".json";
  std::ofstream out(path);
  if (!out) return false;

  const AdaptiveResult& res = report.result;

  JsonWriter w(out);
  telemetry::write_envelope(w, telemetry::kToolAdapt, report.name);
  w.field_bool("smoke", report.smoke);
  w.field_u64("seed", report.seed);
  w.field_str("hardening", report.hardening);
  w.field_str("backend", fuzz::backend_name(report.backend));
  w.field_num("wall_seconds_total", res.wall_seconds);

  w.begin_object("golden");
  w.field_int("exit_code", res.golden.exit_code);
  w.field_u64("instructions", res.golden.instructions);
  w.field_u64("cycles", res.golden.cycles);
  w.field_u64("output_bytes", res.golden.output.size());
  w.field_u64("syscall_invocations", total_syscalls(res.golden));
  w.end_object();

  w.begin_object("coverage");
  w.field_u64("protected_bytes", res.protected_bytes);
  w.field_u64("strict_bytes", res.strict_bytes);
  w.field_u64("gadgets_scanned", res.gadgets_scanned);
  w.field_u64("exec_insns", res.exec_insns);
  w.field_u64("golden_windows", res.golden_windows);
  w.end_object();

  w.begin_object("budget");
  w.field_u64("per_strategy", report.options.budget_per_strategy);
  w.field_u64("strategies", res.strategies.size());
  w.field_u64("shards", report.options.shards);
  w.field_u64("fingerprint_window_cycles",
              report.options.fingerprint_window_cycles);
  w.end_object();

  // Per-strategy detail, attack order. Arrays are exempt from baseline
  // gating (telemetry/compare.cpp), so the flat "attribution" object below
  // repeats the gateable numbers.
  w.begin_array("strategies");
  for (const StrategyOutcome& s : res.strategies) {
    w.begin_object();
    w.field_str("strategy", s.strategy);
    emit_outcomes(w, s.stats);
    w.field_u64("mutant_instructions", s.stats.mutant_instructions);
    w.field_num("seconds", s.stats.seconds);
    w.begin_object("counters");
    for (const auto& [name, value] : s.counters) w.field_u64(name, value);
    w.end_object();
    w.end_object();
  }
  w.end_array();

  // Flat per-strategy attribution: every leaf is numeric and deterministic
  // for a fixed seed/budget/build, so `plxreport gate` pins them all exactly.
  w.begin_object("attribution");
  for (const StrategyOutcome& s : res.strategies) {
    w.field_u64(s.strategy + "_candidates", s.candidates.size());
    w.field_u64(s.strategy + "_detected", s.stats.detected);
    w.field_u64(s.strategy + "_silent", s.stats.silent_corruption);
    w.field_u64(s.strategy + "_benign", s.stats.benign);
    w.field_u64(s.strategy + "_timeout", s.stats.timeout);
    w.field_u64(s.strategy + "_escapes", s.stats.escapes.size());
    for (const auto& [name, value] : s.counters) {
      w.field_u64(s.strategy + "_" + name, value);
    }
  }
  w.end_object();

  w.begin_object("outcomes");
  emit_outcomes(w, res.total);
  w.end_object();

  w.begin_array("escapes");
  for (const fuzz::CaseResult& e : res.total.escapes) {
    w.begin_object();
    w.field_u64("addr", e.mutation.addr);
    w.field_str("bytes", hex_bytes(e.mutation.bytes));
    w.field_str("origin", e.mutation.origin);
    w.field_str("outcome", fuzz::outcome_name(e.outcome));
    w.field_str("detail", e.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return static_cast<bool>(out);
}

}  // namespace plx::attack::adaptive

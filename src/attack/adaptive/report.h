// ADAPT_<name>.json emission — the adaptive-attacker analogue of
// FUZZ_<name>.json (src/fuzz/report.h), written through the shared schema-v2
// envelope (telemetry/schema.h, tool "adapt"). Schema documented in
// README.md; checked by bench/validate_envelope; numeric leaves gated
// against bench/baselines/BASELINE_adapt_<name>.json by `plxreport gate`.
#pragma once

#include <string>

#include "attack/adaptive/adaptive.h"
#include "fuzz/fuzz.h"

namespace plx::attack::adaptive {

struct AdaptReport {
  std::string name;       // target name; file becomes ADAPT_<name>.json
  bool smoke = false;
  std::uint64_t seed = 0;
  std::string hardening;  // verify::hardening_name of the protected image
  fuzz::Backend backend = fuzz::Backend::Adaptive;
  AdaptiveOptions options;
  AdaptiveResult result;
};

// Writes <dir>/ADAPT_<name>.json. Returns false if the file cannot be
// written. Escapes are listed verbatim (with the strategy that found them)
// so a CI failure names the exact surviving mutant.
bool write_adapt_json(const AdaptReport& report, const std::string& dir = ".");

}  // namespace plx::attack::adaptive

// Attacker toolkit: static code patching (software cracking) helpers.
//
// These implement the attacks from the paper's running example (Listing 2:
// nop out the jump to cleanup_and_exit) and §VIII-C: overwrite protected
// instructions, neutralise conditional jumps, restore code after execution.
// Branch-encoding knowledge comes from the target image's backend
// (isa::BranchPatchOps), selected by the image's `isa` field.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "image/image.h"
#include "isa/insn.h"

namespace plx::attack {

// Overwrite image bytes (a static patch, as in cracked redistributables).
bool patch_bytes(img::Image& image, std::uint32_t addr,
                 std::span<const std::uint8_t> bytes);

// Fill [addr, addr+len) with the backend's NOP byte — the Listing 2 attack.
bool nop_out(img::Image& image, std::uint32_t addr, std::uint32_t len);

// Find the nth conditional jump with condition `cc` inside a function.
// Returns nullopt when the image's backend has no branch patching support.
std::optional<std::uint32_t> find_jcc(const img::Image& image,
                                      const std::string& function,
                                      isa::CondId cc, int nth = 0);

// Rewrite a jcc so it is always / never taken, preserving instruction length.
bool make_jcc_unconditional(img::Image& image, std::uint32_t addr);
bool nop_jcc(img::Image& image, std::uint32_t addr);

}  // namespace plx::attack

#include "parallax/traceview.h"

#include <algorithm>
#include <cstdio>

namespace plx::parallax {

std::vector<vm::CodeRegion> chain_code_regions(const Protected& p) {
  std::vector<vm::CodeRegion> out;

  for (const auto& r : p.protected_ranges) {
    char label[24];
    std::snprintf(label, sizeof label, "gadget@0x%08x", r.lo);
    out.push_back(vm::CodeRegion{r.lo, r.hi, label});
  }

  for (const auto& sym : p.image.symbols) {
    if (!sym.is_func || sym.size == 0) continue;
    const bool plx_stub = sym.name.rfind("__plx", 0) == 0;
    const bool chain_fn =
        std::find(p.chain_functions.begin(), p.chain_functions.end(),
                  sym.name) != p.chain_functions.end();
    if (!plx_stub && !chain_fn) continue;
    out.push_back(vm::CodeRegion{sym.vaddr, sym.vaddr + sym.size, sym.name});
  }

  std::sort(out.begin(), out.end(),
            [](const vm::CodeRegion& a, const vm::CodeRegion& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  return out;
}

std::map<std::string, std::vector<std::uint32_t>> chain_gadget_map(
    const Protected& p) {
  std::map<std::string, std::vector<std::uint32_t>> out;
  for (const auto& [name, chain] : p.chains) out[name] = chain.gadget_addrs;
  return out;
}

}  // namespace plx::parallax

#include "parallax/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>

#include "analysis/callgraph.h"
#include "analysis/selection.h"
#include "asm/assembler.h"
#include "gadget/scanner.h"
#include "rewrite/rewriter.h"
#include "ropc/ropc.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "verify/hardening.h"

namespace plx::parallax {

namespace {

img::Fragment data_fragment(const std::string& name, std::size_t bytes,
                            std::uint32_t align = 4) {
  img::Fragment f;
  f.name = name;
  f.section = img::SectionKind::Data;
  f.align = align;
  Buffer b;
  b.resize(bytes);
  f.items.push_back(img::Item::make_data(std::move(b)));
  return f;
}

// Overwrite image bytes at an absolute address (content patching never moves
// anything, so it is safe after final layout).
bool poke(img::Image& image, std::uint32_t addr, std::span<const std::uint8_t> bytes) {
  for (auto& sec : image.sections) {
    if (!sec.contains(addr)) continue;
    const std::uint32_t off = addr - sec.vaddr;
    if (off + bytes.size() > sec.bytes.size()) return false;
    std::copy(bytes.begin(), bytes.end(), sec.bytes.data() + off);
    return true;
  }
  return false;
}

bool poke_words(img::Image& image, std::uint32_t addr,
                std::span<const std::uint32_t> words) {
  Buffer b;
  for (std::uint32_t w : words) b.put_u32(w);
  return poke(image, addr, b.span());
}

// Laid-out image bytes visible at this point of the pipeline: the final
// image once it exists, else the preliminary layout, else nothing yet.
std::size_t visible_bytes(const PipelineContext& ctx) {
  const img::Image* image = nullptr;
  if (!ctx.out.image.sections.empty()) {
    image = &ctx.out.image;
  } else if (ctx.prelim) {
    image = &ctx.prelim->image;
  }
  if (!image) return 0;
  std::size_t n = 0;
  for (const auto& sec : image->sections) n += sec.bytes.size();
  return n;
}

// FNV-1a over the same bytes visible_bytes counts, section order. Tags each
// stage's trace span so two traces of the same job can be diffed input-first
// (a digest mismatch at stage N pins the divergence to stage N-1's output).
std::uint64_t visible_digest(const PipelineContext& ctx) {
  const img::Image* image = nullptr;
  if (!ctx.out.image.sections.empty()) {
    image = &ctx.out.image;
  } else if (ctx.prelim) {
    image = &ctx.prelim->image;
  }
  std::uint64_t h = 0xcbf29ce484222325ull;
  if (!image) return h;
  for (const auto& sec : image->sections) {
    for (std::uint8_t byte : sec.bytes.span()) {
      h ^= byte;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// select: pick verification functions and lower their IR (§VII-B).
// ---------------------------------------------------------------------------
class SelectStage final : public Stage {
 public:
  const char* name() const override { return "select"; }
  Status run(PipelineContext& ctx) const override {
    const cc::Compiled& program = *ctx.program;
    const ProtectOptions& opts = ctx.opts;

    if (!ctx.arch) {
      return fail(DiagCode::SelectionError, "parallax.select",
                  "unknown isa '" + opts.isa + "'");
    }

    std::vector<std::string> vfs = opts.verify_functions;
    if (vfs.empty()) {
      const auto cg = analysis::build_callgraph(program.ir);
      analysis::SelectionOptions sel;
      sel.count = opts.max_verify_functions;
      sel.max_time_fraction = opts.max_time_fraction;
      vfs = analysis::select_verification_functions(program.ir, cg, opts.profile, sel);
      if (vfs.empty()) {
        return fail(DiagCode::SelectionError, "parallax.select",
                    "no suitable verification function found (§VII-B)");
      }
      if (!opts.profile) {
        ctx.warn("auto-selection ran without a profile; §VII-B coldness is "
                 "estimated statically");
      }
    }

    for (const auto& fname : vfs) {
      const cc::IrFunc* ir = nullptr;
      for (const auto& f : program.ir.funcs) {
        if (f.name == fname) ir = &f;
      }
      if (!ir) {
        return fail(DiagCode::SelectionError, "parallax.select",
                    "verification function '" + fname + "' not found");
      }
      cc::IrFunc lowered = cc::lower_bytes_for_rop(cc::lower_mul_for_rop(*ir));
      if (!analysis::chain_compilable(lowered)) {
        return fail(DiagCode::SelectionError, "parallax.select",
                    "function '" + fname + "' cannot be translated to a chain "
                    "(calls, syscalls or division)");
      }
      PipelineContext::FuncState pf;
      pf.name = fname;
      pf.lowered = std::move(lowered);
      pf.frame = "__plx_frame_" + fname;
      pf.exec = "__plx_chain_" + fname;
      pf.resume = "__plx_resume_" + fname;
      pf.src = "__plx_src_" + fname;
      pf.len = "__plx_len_" + fname;
      pf.idx = "__plx_idx_" + fname;
      pf.basis = "__plx_basis_" + fname;
      ctx.funcs.push_back(std::move(pf));
    }

    ctx.count("ir_functions", program.ir.funcs.size());
    ctx.count("verify_functions", ctx.funcs.size());
    return ok_status();
  }
};

// ---------------------------------------------------------------------------
// stub-install: replace verification bodies with loader stubs, reserve
// storage fragments, assemble the hardening runtime, optionally run the
// §IV-B crafting rules over the remaining program functions.
// ---------------------------------------------------------------------------
class StubInstallStage final : public Stage {
 public:
  const char* name() const override { return "stub-install"; }
  Status run(PipelineContext& ctx) const override {
    const ProtectOptions& opts = ctx.opts;
    img::Module& mod = ctx.mod;

    for (auto& pf : ctx.funcs) {
      img::Fragment* frag = mod.find_fragment(pf.name);
      if (!frag) {
        return fail(DiagCode::StubError, "parallax.stub_install",
                    "no text fragment for '" + pf.name + "'");
      }

      verify::StubSpec spec;
      spec.func_name = pf.name;
      spec.num_params = pf.lowered.num_params;
      spec.result_slot = pf.lowered.num_slots;
      spec.frame_sym = pf.frame;
      spec.chain_exec_sym = pf.exec;
      spec.resume_sym = pf.resume;
      spec.hardening = opts.hardening;
      spec.routine_sym = verify::runtime_symbol(opts.hardening);
      spec.chain_src_sym = pf.src;
      spec.len_sym = pf.len;
      spec.idx_sym = pf.idx;
      spec.basis_sym = pf.basis;
      spec.variants = opts.variants;
      *frag = verify::emit_stub(spec);

      mod.fragments.push_back(data_fragment(
          pf.frame, 4u * (static_cast<std::size_t>(pf.lowered.num_slots) + 1)));
      // Chain words, then the resume word: consecutive data fragments stay
      // adjacent in layout (align 1 on the resume keeps them contiguous).
      mod.fragments.push_back(data_fragment(pf.exec, 0));
      mod.fragments.back().align = 4;
      img::Fragment resume = data_fragment(pf.resume, 4, 1);
      mod.fragments.push_back(std::move(resume));

      if (opts.hardening == Hardening::Xor || opts.hardening == Hardening::Rc4) {
        mod.fragments.push_back(data_fragment(pf.src, 0));
        mod.fragments.push_back(data_fragment(pf.len, 4));
      } else if (opts.hardening == Hardening::Probabilistic) {
        mod.fragments.push_back(data_fragment(pf.idx, 0));
        mod.fragments.push_back(data_fragment(pf.basis, 128));
        mod.fragments.push_back(data_fragment(pf.len, 4));
      }
    }

    // Shared scratch parking area and the utility gadget set.
    mod.fragments.push_back(data_fragment("__plx_scratch", 4096, 16));
    mod.fragments.push_back(ctx.arch->utility_gadget_fragment());

    // Hardening runtime (hand-written assembly), if any.
    if (opts.hardening != Hardening::Cleartext) {
      std::vector<std::uint8_t> key(16);
      for (auto& b : key) b = static_cast<std::uint8_t>(ctx.rng.next_u32());
      const std::string src = verify::runtime_asm_source(opts.hardening, key);
      auto runtime = assembler::assemble(src);
      if (!runtime) {
        return std::move(runtime).take_error().with_context("hardening runtime");
      }
      for (auto& frag : runtime.value().fragments) {
        mod.fragments.push_back(frag);
      }
      // Stash the key where materialisation can reuse it.
      img::Fragment key_frag = data_fragment("__plx_hostkey", key.size(), 1);
      Buffer kb{std::vector<std::uint8_t>(key)};
      key_frag.items[0] = img::Item::make_data(std::move(kb));
      mod.fragments.push_back(std::move(key_frag));
    }

    // §IV-B crafting: create fresh overlapping gadgets inside the remaining
    // program functions (the verification functions' bodies are stubs now,
    // so crafting there would be wasted). Must happen before the preliminary
    // layout: the edits change text layout.
    std::size_t crafted_count = 0;
    if (opts.craft_gadgets) {
      rewrite::CraftOptions copts;
      copts.arch = ctx.arch;
      copts.max_per_function = opts.max_crafted_per_function;
      for (const auto& frag : mod.fragments) {
        if (frag.section != img::SectionKind::Text || !frag.is_func) continue;
        if (frag.name.starts_with("__plx")) continue;
        bool is_vf = false;
        for (const auto& pf : ctx.funcs) is_vf |= pf.name == frag.name;
        if (!is_vf) copts.functions.push_back(frag.name);
      }
      auto crafted = rewrite::craft_gadgets(mod, copts);
      if (!crafted) {
        return std::move(crafted).take_error().with_context("gadget crafting");
      }
      crafted_count = crafted.value().crafted.size();
      if (crafted_count == 0) {
        ctx.warn("crafting was requested but no §IV-B rule applied");
      }
      mod = std::move(crafted).take().module;
    }

    ctx.count("fragments", mod.fragments.size());
    if (opts.craft_gadgets) ctx.count("crafted_gadgets", crafted_count);
    return ok_status();
  }
};

// ---------------------------------------------------------------------------
// layout: preliminary layout. Text positions are final after this stage —
// only data fragment sizes change later — but the 32-bit fixup fields of
// text instructions referencing data symbols will be re-patched, so their
// byte ranges are collected as mutable.
// ---------------------------------------------------------------------------
class LayoutStage final : public Stage {
 public:
  const char* name() const override { return "layout"; }
  Status run(PipelineContext& ctx) const override {
    auto prelim = img::layout(ctx.mod);
    if (!prelim) {
      return std::move(prelim).take_error().with_context("preliminary layout");
    }
    ctx.prelim = std::move(prelim).take();
    ctx.prelim->image.isa = ctx.arch->name();

    for (std::size_t f = 0; f < ctx.mod.fragments.size(); ++f) {
      const img::Fragment& frag = ctx.mod.fragments[f];
      if (frag.section != img::SectionKind::Text) continue;
      for (std::size_t i = 0; i < frag.items.size(); ++i) {
        const img::Item& item = frag.items[i];
        if (item.fixup != img::Fixup::AbsImm && item.fixup != img::Fixup::AbsDisp) {
          continue;
        }
        const img::LaidOutItem& loc = ctx.prelim->items[f][i];
        if (loc.size >= 4) {
          ctx.mutable_ranges.emplace_back(loc.addr + loc.size - 4,
                                          loc.addr + loc.size);
        }
      }
    }

    ctx.count("symbols", ctx.prelim->image.symbols.size());
    ctx.count("mutable_ranges", ctx.mutable_ranges.size());
    return ok_status();
  }
};

// ---------------------------------------------------------------------------
// scan: gadget scan over the preliminary image; gadgets intersecting mutable
// fixup bytes are dropped (their bytes may still change).
// ---------------------------------------------------------------------------
class ScanStage final : public Stage {
 public:
  const char* name() const override { return "scan"; }
  Status run(PipelineContext& ctx) const override {
    if (!ctx.prelim) {
      return fail(DiagCode::Internal, "parallax.scan",
                  "scan stage ran before layout");
    }
    auto intersects_mutable = [&](std::uint32_t lo, std::uint32_t hi) {
      for (const auto& [mlo, mhi] : ctx.mutable_ranges) {
        if (lo < mhi && hi > mlo) return true;
      }
      return false;
    };

    std::size_t scanned = 0;
    gadget::ScanOptions sopts;
    sopts.arch = ctx.arch;
    std::vector<gadget::Gadget> stable_gadgets;
    for (auto& g : gadget::scan(ctx.prelim->image, sopts)) {
      ++scanned;
      if (!intersects_mutable(g.addr, g.end())) {
        stable_gadgets.push_back(std::move(g));
      }
    }
    const std::size_t stable = stable_gadgets.size();
    ctx.catalog = gadget::Catalog(std::move(stable_gadgets));

    ctx.count("gadgets_scanned", scanned);
    ctx.count("gadgets_stable", stable);
    ctx.count("gadgets_dropped_mutable", scanned - stable);
    return ok_status();
  }
};

// ---------------------------------------------------------------------------
// gadget-map: mark gadgets overlapping protected instructions (the "gadget
// mapping" of §III) and build the weave pool of transparent overlapping
// gadgets the chain compiler may insert as verification NOPs.
// ---------------------------------------------------------------------------
class GadgetMapStage final : public Stage {
 public:
  const char* name() const override { return "gadget-map"; }
  Status run(PipelineContext& ctx) const override {
    if (!ctx.prelim) {
      return fail(DiagCode::Internal, "parallax.gadget_map",
                  "gadget-map stage ran before layout");
    }
    const ProtectOptions& opts = ctx.opts;

    // Default: every original program function is protected (stubs, runtime
    // and the utility set are infrastructure).
    std::set<std::string> protect_set(opts.protect_functions.begin(),
                                      opts.protect_functions.end());
    std::set<std::string> infra = {"__plx_gadgets"};
    for (const auto& pf : ctx.funcs) infra.insert(pf.name);
    if (opts.hardening != Hardening::Cleartext) {
      infra.insert(verify::runtime_symbol(opts.hardening));
    }
    std::size_t protected_funcs = 0;
    for (const auto& sym : ctx.prelim->image.symbols) {
      if (!sym.is_func || sym.size == 0) continue;
      if (sym.name.starts_with("__plx")) continue;
      if (infra.contains(sym.name)) continue;
      if (!protect_set.empty() && !protect_set.contains(sym.name)) continue;
      ctx.catalog.mark_overlapping(sym.vaddr, sym.vaddr + sym.size);
      ++protected_funcs;
    }

    std::size_t overlapping = 0;
    for (const auto& g : ctx.catalog.all()) {
      if (g.overlapping) ++overlapping;
    }

    if (opts.weave_overlapping) {
      ctx.weave_pool = ctx.catalog.overlapping_transparent();
      if (static_cast<int>(ctx.weave_pool.size()) > opts.max_woven) {
        ctx.warn("weave pool truncated to max_woven=" +
                 std::to_string(opts.max_woven) + " (had " +
                 std::to_string(ctx.weave_pool.size()) + ")");
        ctx.weave_pool.resize(static_cast<std::size_t>(opts.max_woven));
      }
      if (ctx.weave_pool.empty()) {
        ctx.warn("weaving requested but no transparent overlapping gadgets "
                 "exist; chains carry no woven verification NOPs");
      }
    }

    ctx.count("protected_functions", protected_funcs);
    ctx.count("gadgets_overlapping", overlapping);
    ctx.count("weave_pool", ctx.weave_pool.size());
    return ok_status();
  }
};

// ---------------------------------------------------------------------------
// chain-compile: translate each verification function's IR into a gadget
// chain; size the storage fragments that depend on chain length; append the
// guard padding fragments.
// ---------------------------------------------------------------------------
class ChainCompileStage final : public Stage {
 public:
  const char* name() const override { return "chain-compile"; }
  Status run(PipelineContext& ctx) const override {
    const ProtectOptions& opts = ctx.opts;
    img::Module& mod = ctx.mod;

    // RopCompiler's nullptr-abi default means "use the default backend";
    // here the backend is explicit, so a missing ChainABI must be a Diag,
    // not a silent fallback to x86 register roles.
    const isa::ChainABI* abi = ctx.arch->chain_abi();
    if (!abi) {
      return fail(DiagCode::ChainCompileError, "parallax.chain_compile",
                  "backend '" + std::string(ctx.arch->name()) +
                      "' has no chain ABI");
    }

    std::size_t total_words = 0;
    std::size_t total_slots = 0;
    for (auto& pf : ctx.funcs) {
      ropc::RopCompiler rc(ctx.catalog, pf.frame, "__plx_scratch", abi);
      ropc::RopcOptions ropts;
      ropts.verify_pool = ctx.weave_pool;
      ropts.seed = opts.seed;
      auto chain = rc.compile(pf.lowered, ropts);
      if (!chain) {
        return std::move(chain).take_error().with_context(
            "chain for '" + pf.name + "'");
      }
      pf.chain = std::move(chain).take();
      if (pf.chain.resume_index != pf.chain.words.size() - 1) {
        return fail(DiagCode::Internal, "parallax.chain_compile",
                    "resume word is not last");
      }
      total_words += pf.chain.words.size();
      total_slots += pf.chain.gadget_slots.size();
      // Size the storage: exec area holds every word except the resume word
      // (which is the adjacent __plx_resume fragment).
      const std::size_t exec_words = pf.chain.words.size() - 1;
      mod.find_fragment(pf.exec)->items[0].data.resize(exec_words * 4);
      if (opts.hardening == Hardening::Xor || opts.hardening == Hardening::Rc4) {
        mod.find_fragment(pf.src)->items[0].data.resize(exec_words * 4);
      } else if (opts.hardening == Hardening::Probabilistic) {
        mod.find_fragment(pf.idx)->items[0].data.resize(
            exec_words * static_cast<std::size_t>(opts.variants) *
            verify::kIdxStride * 4);
      }
    }

    // Guard padding so chain byte-ops lowered to word RMW stay in bounds.
    mod.fragments.push_back(data_fragment("__plx_guard", 16, 1));
    img::Fragment ro_guard = data_fragment("__plx_roguard", 16, 1);
    ro_guard.section = img::SectionKind::Rodata;
    mod.fragments.push_back(std::move(ro_guard));

    ctx.count("chains", ctx.funcs.size());
    ctx.count("chain_words", total_words);
    ctx.count("gadget_slots", total_slots);
    return ok_status();
  }
};

// ---------------------------------------------------------------------------
// final-layout: lay out the module with final data sizes and verify that no
// stable text byte moved or changed since the gadget scan.
// ---------------------------------------------------------------------------
class FinalLayoutStage final : public Stage {
 public:
  const char* name() const override { return "final-layout"; }
  Status run(PipelineContext& ctx) const override {
    if (!ctx.prelim) {
      return fail(DiagCode::Internal, "parallax.final_layout",
                  "final-layout stage ran before layout");
    }
    auto final_laid = img::layout(ctx.mod);
    if (!final_laid) {
      return std::move(final_laid).take_error().with_context("final layout");
    }
    ctx.out.image = std::move(final_laid).take().image;
    ctx.out.image.isa = ctx.arch->name();
    ctx.out.hardening = ctx.opts.hardening;
    ctx.out.variants = ctx.opts.variants;

    const img::Section* t0 = ctx.prelim->image.find_section(".text");
    const img::Section* t1 = ctx.out.image.find_section(".text");
    if (!t0 || !t1 || t0->vaddr != t1->vaddr ||
        t0->bytes.size() != t1->bytes.size()) {
      return fail(DiagCode::Internal, "parallax.final_layout",
                  "text layout changed between scan and finalisation");
    }
    Buffer masked0 = t0->bytes, masked1 = t1->bytes;
    for (const auto& [mlo, mhi] : ctx.mutable_ranges) {
      for (std::uint32_t a = mlo; a < mhi; ++a) {
        masked0[a - t0->vaddr] = 0;
        masked1[a - t1->vaddr] = 0;
      }
    }
    if (masked0 != masked1) {
      return fail(DiagCode::Internal, "parallax.final_layout",
                  "stable text bytes changed between scan and finalisation");
    }

    ctx.count("symbols", ctx.out.image.symbols.size());
    ctx.count("text_bytes", t1->bytes.size());
    return ok_status();
  }
};

// ---------------------------------------------------------------------------
// materialize: resolve every chain against the final image and poke the
// chain storage per the hardening mode; compute the protected-byte map.
// ---------------------------------------------------------------------------
class MaterializeStage final : public Stage {
 public:
  const char* name() const override { return "materialize"; }
  Status run(PipelineContext& ctx) const override {
    const ProtectOptions& opts = ctx.opts;
    Protected& result = ctx.out;

    std::vector<std::uint8_t> key;
    if (const img::Symbol* k = result.image.find_symbol("__plx_hostkey")) {
      key = result.image.read(k->vaddr, 16);
    }

    std::set<std::uint32_t> overlap_addrs;
    for (const auto& g : ctx.catalog.all()) {
      if (g.overlapping) overlap_addrs.insert(g.addr);
    }
    result.gadgets_total = ctx.catalog.size();
    result.gadgets_overlapping = overlap_addrs.size();

    for (auto& pf : ctx.funcs) {
      auto resolved = pf.chain.resolve(result.image);
      if (!resolved) {
        return std::move(resolved).take_error().with_context(
            "resolving chain for '" + pf.name + "'");
      }
      std::vector<std::uint32_t> words = std::move(resolved).take();
      words.pop_back();  // the resume word lives in __plx_resume_<f>

      const img::Symbol* exec_sym = result.image.find_symbol(pf.exec);
      if (!exec_sym) {
        return fail(DiagCode::MaterializeError, "parallax.materialize",
                    "missing chain area symbol");
      }

      switch (opts.hardening) {
        case Hardening::Cleartext:
          if (!poke_words(result.image, exec_sym->vaddr, words)) {
            return fail(DiagCode::MaterializeError, "parallax.materialize",
                        "chain poke out of range");
          }
          break;
        case Hardening::Xor:
        case Hardening::Rc4: {
          const auto ct = verify::encrypt_chain(opts.hardening, words, key);
          const img::Symbol* src_sym = result.image.find_symbol(pf.src);
          const img::Symbol* len_sym = result.image.find_symbol(pf.len);
          if (!src_sym || !len_sym) {
            return fail(DiagCode::MaterializeError, "parallax.materialize",
                        "missing hardening symbols");
          }
          if (!poke(result.image, src_sym->vaddr, ct)) {
            return fail(DiagCode::MaterializeError, "parallax.materialize",
                        "src poke failed");
          }
          const std::uint32_t len_bytes =
              static_cast<std::uint32_t>(words.size() * 4);
          if (!poke_words(result.image, len_sym->vaddr, {&len_bytes, 1})) {
            return fail(DiagCode::MaterializeError, "parallax.materialize",
                        "len poke failed");
          }
          break;
        }
        case Hardening::Probabilistic: {
          std::vector<std::vector<std::uint32_t>> variants;
          variants.push_back(words);
          for (int v = 1; v < opts.variants; ++v) {
            variants.push_back(
                ropc::make_variant(pf.chain, words, ctx.catalog, ctx.rng));
          }
          auto storage = verify::build_prob_storage(variants, ctx.rng);
          if (!storage) {
            return std::move(storage).take_error().with_context(
                "probabilistic storage for '" + pf.name + "'");
          }
          const img::Symbol* idx_sym = result.image.find_symbol(pf.idx);
          const img::Symbol* basis_sym = result.image.find_symbol(pf.basis);
          const img::Symbol* len_sym = result.image.find_symbol(pf.len);
          if (!idx_sym || !basis_sym || !len_sym) {
            return fail(DiagCode::MaterializeError, "parallax.materialize",
                        "missing prob symbols");
          }
          if (!poke_words(result.image, idx_sym->vaddr, storage.value().idx) ||
              !poke_words(result.image, basis_sym->vaddr, storage.value().basis)) {
            return fail(DiagCode::MaterializeError, "parallax.materialize",
                        "prob storage poke failed");
          }
          const std::uint32_t len_words = static_cast<std::uint32_t>(words.size());
          if (!poke_words(result.image, len_sym->vaddr, {&len_words, 1})) {
            return fail(DiagCode::MaterializeError, "parallax.materialize",
                        "len poke failed");
          }
          break;
        }
      }

      for (std::uint32_t a : pf.chain.gadget_addrs) {
        result.used_gadget_addrs.push_back(a);
        if (overlap_addrs.contains(a)) ++result.used_gadgets_overlapping;
      }
      result.chain_functions.push_back(pf.name);
      result.chains.emplace(pf.name, std::move(pf.chain));
    }

    // Protected-byte map: the byte extent of every gadget referenced by any
    // chain. gadget_addrs[i] parallels gadget_slots[i], so the slot type
    // tells whether a use is computational (strict tier) or a woven
    // transparent verification NOP (advisory tier). A computational gadget's
    // leading nop filler (e.g. `nop; nop; pop eax; ret` classified PopReg)
    // is emitted as a separate advisory range: those bytes execute but
    // compute nothing, so a flip that yields another chain-transparent
    // instruction survives — the same §VIII-C escape hatch as fully
    // transparent slots.
    {
      std::map<std::uint32_t, const gadget::Gadget*> by_addr;
      for (const auto& g : ctx.catalog.all()) by_addr.emplace(g.addr, &g);
      std::map<std::uint32_t, ProtectedRange> ranges;
      for (const auto& [fname, chain] : result.chains) {
        for (std::size_t i = 0; i < chain.gadget_addrs.size(); ++i) {
          const auto it = by_addr.find(chain.gadget_addrs[i]);
          if (it == by_addr.end()) continue;  // defensive; addrs come from catalog
          const gadget::Gadget& g = *it->second;
          const bool computational =
              chain.gadget_slots[i].type != gadget::GType::Transparent;
          std::uint32_t core = g.addr;
          if (computational) {
            for (const auto& insn : g.insns) {
              if (!insn.is_nop) break;
              core += insn.len;
            }
          }
          if (core > g.addr) {  // leading nop filler: advisory only
            ProtectedRange& pad = ranges[g.addr];
            pad.lo = g.addr;
            pad.hi = std::max(pad.hi, core);
            pad.overlapping |= g.overlapping;
          }
          ProtectedRange& r = ranges[core];
          r.lo = core;
          r.hi = std::max(r.hi, g.end());
          r.overlapping |= g.overlapping;
          r.computational |= computational;
        }
      }
      for (const auto& [addr, r] : ranges) result.protected_ranges.push_back(r);
    }

    ctx.count("used_gadgets", result.used_gadget_addrs.size());
    ctx.count("used_gadgets_overlapping", result.used_gadgets_overlapping);
    ctx.count("protected_ranges", result.protected_ranges.size());
    return ok_status();
  }
};

}  // namespace

const std::vector<const Stage*>& protection_stages() {
  static const SelectStage select;
  static const StubInstallStage stub_install;
  static const LayoutStage layout;
  static const ScanStage scan;
  static const GadgetMapStage gadget_map;
  static const ChainCompileStage chain_compile;
  static const FinalLayoutStage final_layout;
  static const MaterializeStage materialize;
  static const std::vector<const Stage*> kStages = {
      &select,       &stub_install,  &layout,       &scan,
      &gadget_map,   &chain_compile, &final_layout, &materialize,
  };
  return kStages;
}

PipelineContext make_context(const cc::Compiled& program,
                             const ProtectOptions& opts) {
  PipelineContext ctx;
  ctx.program = &program;
  ctx.opts = opts;
  ctx.arch = isa::find_arch(opts.isa);
  ctx.rng = Rng(opts.seed);
  ctx.mod = program.module;
  return ctx;
}

Status run_stage(const Stage& stage, PipelineContext& ctx) {
  StageTrace trace;
  trace.stage = stage.name();
  trace.input_bytes = visible_bytes(ctx);
  ctx.active = &trace;
  const auto t0 = std::chrono::steady_clock::now();
  Status status = [&] {
    // Span scope = the stage body alone; the digest is only computed when a
    // trace is being recorded.
    PLX_TRACE_SPAN_VAR(span, "pipeline", trace.stage);
    if (span.active()) {
      if (!ctx.opts.trace_label.empty()) span.arg("job", ctx.opts.trace_label);
      span.arg("input_bytes", static_cast<std::uint64_t>(trace.input_bytes));
      char digest[19];
      std::snprintf(digest, sizeof digest, "0x%016llx",
                    static_cast<unsigned long long>(visible_digest(ctx)));
      span.arg("input_fnv64", std::string(digest));
    }
    return stage.run(ctx);
  }();
  const auto t1 = std::chrono::steady_clock::now();
  ctx.active = nullptr;
  trace.millis = std::chrono::duration<double, std::milli>(t1 - t0).count();
  trace.output_bytes = visible_bytes(ctx);
  if (telemetry::Registry* reg = ctx.opts.registry) {
    reg->add_seconds("stages/pipeline/" + trace.stage, trace.millis / 1000.0);
    for (const auto& [key, value] : trace.counters) {
      reg->add("pipeline/" + trace.stage + "/" + key, value);
    }
  }
  ctx.out.traces.push_back(std::move(trace));
  if (!status) {
    return std::move(status).take_error().with_context(
        std::string("stage '") + stage.name() + "'");
  }
  return status;
}

Result<Protected> run_pipeline(const cc::Compiled& program,
                               const ProtectOptions& opts) {
  PipelineContext ctx = make_context(program, opts);
  for (const Stage* stage : protection_stages()) {
    auto status = run_stage(*stage, ctx);
    if (!status) return std::move(status).take_error();
  }
  return std::move(ctx.out);
}

}  // namespace plx::parallax

// Bridges a protection result to the VM profiler (vm/vmtrace.h): extracts
// the chain-machinery code layout — everything that executes *because of*
// protection rather than because of the program — so cycle attribution can
// split a run into app vs chain time (DESIGN.md §13, paper §VI overhead
// attribution).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "parallax/protector.h"
#include "vm/vmtrace.h"

namespace plx::parallax {

// Chain-machinery code regions of a protected image:
//   - every chain-referenced gadget body (Protected::protected_ranges,
//     labelled "gadget@0x<lo>"),
//   - every `__plx_*` function symbol (resume/guard runtime stubs),
//   - the rewritten bodies of the chain functions themselves (their original
//     code was replaced by the chain launcher).
// Regions may overlap (a gadget inside a rewritten body); the profiler
// attributes to the smallest cover.
std::vector<vm::CodeRegion> chain_code_regions(const Protected& p);

// Chain name → the gadget start addresses its chain references (for
// vm::per_chain_profiles).
std::map<std::string, std::vector<std::uint32_t>> chain_gadget_map(
    const Protected& p);

}  // namespace plx::parallax

#include "parallax/batch.h"

#include <fstream>

#include "cc/compile.h"
#include "parallax/pipeline.h"
#include "support/json.h"
#include "support/thread_pool.h"
#include "workloads/corpus.h"

namespace plx::parallax {

namespace {

// One job, start to finish: compile, then replay the stage sequence so the
// traces survive even when a stage fails partway.
BatchResult run_job(const BatchJob& job) {
  BatchResult r;
  r.name = job.name;

  auto compiled = cc::compile(job.source);
  if (!compiled) {
    r.error = std::move(compiled).take_error().with_context(
        "batch job '" + job.name + "'");
    return r;
  }

  PipelineContext ctx = make_context(compiled.value(), job.opts);
  for (const Stage* stage : protection_stages()) {
    auto status = run_stage(*stage, ctx);
    if (!status) {
      r.error = std::move(status).take_error().with_context(
          "batch job '" + job.name + "'");
      r.traces = std::move(ctx.out.traces);
      for (const auto& t : r.traces) r.millis_total += t.millis;
      return r;
    }
  }

  Protected& prot = ctx.out;
  r.ok = true;
  r.traces = std::move(prot.traces);
  for (const auto& t : r.traces) r.millis_total += t.millis;

  const Buffer blob = prot.image.serialize();
  r.image_bytes = blob.size();
  r.image_fnv64 = fnv1a64(blob.span().data(), blob.size());
  r.chains = prot.chains.size();
  for (const auto& [name, chain] : prot.chains) {
    r.chain_words += chain.words.size();
  }
  r.gadgets_total = prot.gadgets_total;
  r.gadgets_overlapping = prot.gadgets_overlapping;
  r.used_gadgets_overlapping = prot.used_gadgets_overlapping;
  return r;
}

void emit_trace(std::ofstream& out, const StageTrace& t, bool last) {
  out << "    {\"stage\": \"" << json::escape(t.stage) << "\""
      << ", \"millis\": " << json::num(t.millis)
      << ", \"input_bytes\": " << t.input_bytes
      << ", \"output_bytes\": " << t.output_bytes << ", \"counters\": {";
  for (std::size_t i = 0; i < t.counters.size(); ++i) {
    out << (i ? ", " : "") << "\"" << json::escape(t.counters[i].first)
        << "\": " << t.counters[i].second;
  }
  out << "}, \"warnings\": [";
  for (std::size_t i = 0; i < t.warnings.size(); ++i) {
    out << (i ? ", " : "") << "\"" << json::escape(t.warnings[i]) << "\"";
  }
  out << "]}" << (last ? "\n" : ",\n");
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<BatchResult> protect_batch(const std::vector<BatchJob>& jobs,
                                       unsigned threads) {
  std::vector<BatchResult> results(jobs.size());
  if (jobs.empty()) return results;
  if (threads == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = run_job(jobs[i]);
    return results;
  }
  support::ThreadPool pool(threads);
  pool.parallel_for(jobs.size(),
                    [&](std::size_t i) { results[i] = run_job(jobs[i]); });
  return results;
}

std::vector<BatchJob> corpus_jobs(Hardening hardening, std::uint64_t seed) {
  std::vector<BatchJob> jobs;
  for (const auto& w : workloads::corpus()) {
    BatchJob job;
    job.name = w.name;
    job.source = w.source;
    job.opts.verify_functions = {w.verify_function};
    job.opts.hardening = hardening;
    job.opts.seed = seed;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

bool write_protect_json(const BatchResult& r, const std::string& dir) {
  const std::string path = dir + "/PROTECT_" + r.name + ".json";
  std::ofstream out(path);
  if (!out) return false;

  char fnv_hex[24];
  std::snprintf(fnv_hex, sizeof fnv_hex, "%016llx",
                static_cast<unsigned long long>(r.image_fnv64));

  out << "{\n";
  out << "  \"protect\": \"" << json::escape(r.name) << "\",\n";
  out << "  \"schema_version\": 1,\n";
  out << "  \"ok\": " << (r.ok ? "true" : "false") << ",\n";
  if (!r.ok) {
    out << "  \"error\": {\"code\": \"" << diag_code_name(r.error.code())
        << "\", \"stage\": \"" << json::escape(r.error.stage())
        << "\", \"message\": \"" << json::escape(r.error.str()) << "\"},\n";
  }
  out << "  \"image_bytes\": " << r.image_bytes << ",\n";
  out << "  \"image_fnv64\": \"" << fnv_hex << "\",\n";
  out << "  \"stages\": [\n";
  for (std::size_t i = 0; i < r.traces.size(); ++i) {
    emit_trace(out, r.traces[i], i + 1 == r.traces.size());
  }
  out << "  ],\n";
  out << "  \"totals\": {"
      << "\"millis\": " << json::num(r.millis_total)
      << ", \"stages\": " << r.traces.size() << ", \"chains\": " << r.chains
      << ", \"chain_words\": " << r.chain_words
      << ", \"gadgets_total\": " << r.gadgets_total
      << ", \"gadgets_overlapping\": " << r.gadgets_overlapping
      << ", \"used_gadgets_overlapping\": " << r.used_gadgets_overlapping
      << "}\n";
  out << "}\n";
  return static_cast<bool>(out);
}

}  // namespace plx::parallax

#include "parallax/batch.h"

#include <fstream>

#include "cc/compile.h"
#include "parallax/pipeline.h"
#include "support/thread_pool.h"
#include "telemetry/report.h"
#include "telemetry/schema.h"
#include "workloads/corpus.h"

namespace plx::parallax {

namespace {

// One job, start to finish: compile, then replay the stage sequence so the
// traces survive even when a stage fails partway.
BatchResult run_job(const BatchJob& job) {
  BatchResult r;
  r.name = job.name;

  auto compiled = cc::compile(job.source);
  if (!compiled) {
    r.error = std::move(compiled).take_error().with_context(
        "batch job '" + job.name + "'");
    return r;
  }

  ProtectOptions opts = job.opts;
  if (opts.trace_label.empty()) opts.trace_label = job.name;
  PipelineContext ctx = make_context(compiled.value(), opts);
  for (const Stage* stage : protection_stages()) {
    auto status = run_stage(*stage, ctx);
    if (!status) {
      r.error = std::move(status).take_error().with_context(
          "batch job '" + job.name + "'");
      r.traces = std::move(ctx.out.traces);
      for (const auto& t : r.traces) r.millis_total += t.millis;
      return r;
    }
  }

  Protected& prot = ctx.out;
  r.ok = true;
  r.traces = std::move(prot.traces);
  for (const auto& t : r.traces) r.millis_total += t.millis;

  const Buffer blob = prot.image.serialize();
  r.image_bytes = blob.size();
  r.image_fnv64 = fnv1a64(blob.span().data(), blob.size());
  r.chains = prot.chains.size();
  for (const auto& [name, chain] : prot.chains) {
    r.chain_words += chain.words.size();
  }
  r.gadgets_total = prot.gadgets_total;
  r.gadgets_overlapping = prot.gadgets_overlapping;
  r.used_gadgets_overlapping = prot.used_gadgets_overlapping;
  return r;
}

void emit_trace(telemetry::JsonWriter& w, const StageTrace& t) {
  w.begin_object();
  w.field_str("stage", t.stage);
  w.field_num("millis", t.millis);
  w.field_u64("input_bytes", t.input_bytes);
  w.field_u64("output_bytes", t.output_bytes);
  w.begin_object("counters");
  for (const auto& [key, value] : t.counters) w.field_u64(key, value);
  w.end_object();
  w.begin_array("warnings");
  for (const auto& warning : t.warnings) w.value_str(warning);
  w.end_array();
  w.end_object();
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<BatchResult> protect_batch(const std::vector<BatchJob>& jobs,
                                       unsigned threads) {
  std::vector<BatchResult> results(jobs.size());
  if (jobs.empty()) return results;
  if (threads == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = run_job(jobs[i]);
    return results;
  }
  support::ThreadPool pool(threads);
  pool.parallel_for(jobs.size(),
                    [&](std::size_t i) { results[i] = run_job(jobs[i]); });
  return results;
}

std::vector<BatchJob> corpus_jobs(Hardening hardening, std::uint64_t seed) {
  std::vector<BatchJob> jobs;
  for (const auto& w : workloads::corpus()) {
    BatchJob job;
    job.name = w.name;
    job.source = w.source;
    job.opts.verify_functions = {w.verify_function};
    job.opts.hardening = hardening;
    job.opts.seed = seed;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

bool write_protect_json(const BatchResult& r, const std::string& dir) {
  const std::string path = dir + "/PROTECT_" + r.name + ".json";
  std::ofstream out(path);
  if (!out) return false;

  char fnv_hex[24];
  std::snprintf(fnv_hex, sizeof fnv_hex, "%016llx",
                static_cast<unsigned long long>(r.image_fnv64));

  telemetry::JsonWriter w(out);
  telemetry::write_envelope(w, telemetry::kToolProtect, r.name);
  w.field_bool("ok", r.ok);
  if (!r.ok) {
    w.begin_object("error");
    w.field_str("code", diag_code_name(r.error.code()));
    w.field_str("stage", r.error.stage());
    w.field_str("message", r.error.str());
    w.end_object();
  }
  w.field_u64("image_bytes", r.image_bytes);
  w.field_str("image_fnv64", fnv_hex);
  w.begin_array("stages");
  for (const StageTrace& t : r.traces) emit_trace(w, t);
  w.end_array();
  w.begin_object("totals");
  w.field_num("millis", r.millis_total);
  w.field_u64("stages", r.traces.size());
  w.field_u64("chains", r.chains);
  w.field_u64("chain_words", r.chain_words);
  w.field_u64("gadgets_total", r.gadgets_total);
  w.field_u64("gadgets_overlapping", r.gadgets_overlapping);
  w.field_u64("used_gadgets_overlapping", r.used_gadgets_overlapping);
  w.end_object();
  w.end_object();
  return static_cast<bool>(out);
}

}  // namespace plx::parallax

// parallax::Protector — the public entry point (Figure 2 of the paper).
//
// Pipeline:
//   1. Select verification code (caller-specified or the §VII-B heuristic).
//   2. Replace each selected function's native body with a loader stub and
//      reserve chain/frame/runtime storage.
//   3. Lay out, scan for gadgets, build the gadget mapping; gadgets that
//      overlap instructions marked for protection are flagged (preferred by
//      the chain compiler and woven in as verification NOPs).
//   4. Compile each selected function's IR into a function chain.
//   5. Final layout, then materialise chain storage per the hardening mode
//      (cleartext words / xor or RC4 ciphertext / probabilistic GF(2) index
//      arrays).
//
// The result is a self-contained protected image: executing it exercises the
// chains, which implicitly verify the gadget bytes that overlap protected
// instructions. Tampering with those bytes makes the verification function
// (real program code!) misbehave.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/profiler.h"
#include "cc/compile.h"
#include "gadget/catalog.h"
#include "ropc/chain.h"
#include "support/error.h"
#include "verify/stub.h"

namespace plx::telemetry {
class Registry;
}

namespace plx::parallax {

using verify::Hardening;

struct ProtectOptions {
  // Functions to translate to verification chains; empty = auto-select.
  std::vector<std::string> verify_functions;
  int max_verify_functions = 1;
  const analysis::Profile* profile = nullptr;  // used by auto-selection
  double max_time_fraction = 0.02;  // §VII-B: verification code must be cold

  Hardening hardening = Hardening::Cleartext;
  int variants = 4;            // N for probabilistic chains
  std::uint64_t seed = 0x9a11a;

  // Target backend (isa::Arch registry wire name). The pipeline scans,
  // crafts, compiles chains and stamps the output image for this ISA.
  std::string isa = "x86";

  // Weave transparent overlapping gadgets into chains as verification NOPs.
  bool weave_overlapping = true;
  int max_woven = 16;

  // Run the §IV-B crafting rules (immediate modification with compensation,
  // jump/data alignment) over the program before scanning, creating fresh
  // overlapping gadgets for the chains to prefer and weave. Off by default:
  // crafting perturbs code layout, which complicates byte-for-byte
  // comparisons in callers that want them.
  bool craft_gadgets = false;
  int max_crafted_per_function = 4;

  // Text ranges whose instructions count as "protected" (gadget preference
  // and weaving); empty = every original program function.
  std::vector<std::string> protect_functions;

  // Optional telemetry sink. When set, each executed pipeline stage records
  // its wall-clock under "stages/pipeline/<stage>" and every StageTrace
  // counter under "pipeline/<stage>/<counter>" — the same data as `traces`,
  // but accumulated across protect() calls (the bench sessions point this
  // at their report registry). Not owned; must outlive protect().
  telemetry::Registry* registry = nullptr;

  // Label attached to this job's pipeline trace spans ("job" arg on every
  // stage span; the batch driver sets it to the job name). Purely
  // observability: empty is fine and changes nothing else.
  std::string trace_label;
};

// One byte range of the image that the chains implicitly verify by
// *executing* it: the body of a gadget some chain references. This is the
// protected-byte map the tamper-fuzzing harness sweeps (src/fuzz).
//
// `computational` distinguishes the strict tier: the gadget fills at least
// one non-transparent chain slot, so its bytes are functionally required —
// any behavioural change to them derails or corrupts the chain. Gadgets used
// only as woven verification NOPs (transparent slots) are still executed and
// verified, but §VIII-C's escape hatch is widest there: a flip that yields
// another chain-transparent sequence goes unnoticed, so they are reported as
// an advisory tier rather than swept for the zero-escape guarantee.
struct ProtectedRange {
  std::uint32_t lo = 0;        // first protected byte
  std::uint32_t hi = 0;        // one past the last (gadget end incl. ret)
  bool overlapping = false;    // gadget overlaps protected program code
  bool computational = false;  // strict tier (non-transparent chain slot)
};

// Observability record emitted by each pipeline stage (src/parallax/pipeline).
// Sizes refer to the laid-out image bytes visible when the stage ran (0 for
// stages that run before any layout exists); counters carry stage-specific
// quantities (gadget counts, chain words, ...) in a deterministic order so
// reports are reproducible.
struct StageTrace {
  std::string stage;
  double millis = 0;
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::string> warnings;

  std::uint64_t counter(const std::string& key) const {
    for (const auto& [k, v] : counters) {
      if (k == key) return v;
    }
    return 0;
  }
};

struct Protected {
  img::Image image;
  std::vector<std::string> chain_functions;
  std::map<std::string, ropc::Chain> chains;
  Hardening hardening = Hardening::Cleartext;
  int variants = 0;

  // Gadget statistics (for reports and tests).
  std::size_t gadgets_total = 0;
  std::size_t gadgets_overlapping = 0;
  std::size_t used_gadgets_overlapping = 0;

  // All gadget start addresses referenced by chains (tamper-test targets).
  std::vector<std::uint32_t> used_gadget_addrs;

  // Byte extents of every chain-referenced gadget, sorted by lo, one entry
  // per distinct gadget (flags OR-ed over all of its uses).
  std::vector<ProtectedRange> protected_ranges;

  // One trace per executed pipeline stage, in execution order.
  std::vector<StageTrace> traces;
};

class Protector {
 public:
  Result<Protected> protect(const cc::Compiled& program,
                            const ProtectOptions& opts = {});
};

// Convenience: plain (unprotected) layout of a compiled program.
Result<img::Image> layout_plain(const cc::Compiled& program);

}  // namespace plx::parallax

// Parallel batch protection driver.
//
// Protects many programs (typically the six-workload evaluation corpus)
// across the worker thread pool, one independent pipeline per job, and
// aggregates each job's StageTraces into a PROTECT_<name>.json report
// (schema checked by bench/validate_envelope, exercised by the
// protect_smoke ctest label).
//
// Results are deterministic in thread count: each job is fully determined by
// its (source, options) pair, jobs share no mutable state, and the result
// vector is positionally aligned with the job vector regardless of the order
// workers finish in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parallax/protector.h"

namespace plx::parallax {

struct BatchJob {
  std::string name;    // report name: PROTECT_<name>.json
  std::string source;  // mini-C source
  ProtectOptions opts;
};

struct BatchResult {
  std::string name;
  bool ok = false;
  Diag error;  // meaningful iff !ok (code/stage/context preserved)

  // Stages that executed, in order — also populated on failure, up to and
  // including the stage that failed.
  std::vector<StageTrace> traces;

  // Success-only aggregates.
  std::size_t image_bytes = 0;
  std::uint64_t image_fnv64 = 0;  // digest of the serialized image
  std::size_t chains = 0;
  std::size_t chain_words = 0;
  std::size_t gadgets_total = 0;
  std::size_t gadgets_overlapping = 0;
  std::size_t used_gadgets_overlapping = 0;

  double millis_total = 0;  // sum of stage wall times
};

// Protect every job concurrently (threads == 0 picks hardware concurrency;
// threads == 1 runs serially on the calling thread).
std::vector<BatchResult> protect_batch(const std::vector<BatchJob>& jobs,
                                       unsigned threads = 0);

// One job per corpus workload, using each workload's suggested verification
// function (deterministic; benchmarks use the same pinning).
std::vector<BatchJob> corpus_jobs(Hardening hardening = Hardening::Cleartext,
                                  std::uint64_t seed = 0x9a11a);

// Write PROTECT_<name>.json into `dir`; returns false on IO failure.
bool write_protect_json(const BatchResult& result, const std::string& dir);

// FNV-1a 64-bit, the digest used for image_fnv64 (exposed for tests).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n);

}  // namespace plx::parallax

#include "parallax/protector.h"

#include <algorithm>
#include <set>

#include "analysis/callgraph.h"
#include "analysis/selection.h"
#include "asm/assembler.h"
#include "gadget/scanner.h"
#include "image/layout.h"
#include "rewrite/rewriter.h"
#include "ropc/ropc.h"
#include "verify/hardening.h"

namespace plx::parallax {

namespace {

struct Artifacts {
  std::string frame;
  std::string exec;
  std::string resume;
  std::string src;
  std::string len;
  std::string idx;
  std::string basis;
};

Artifacts artifact_names(const std::string& func) {
  return Artifacts{
      "__plx_frame_" + func, "__plx_chain_" + func,  "__plx_resume_" + func,
      "__plx_src_" + func,   "__plx_len_" + func,    "__plx_idx_" + func,
      "__plx_basis_" + func,
  };
}

img::Fragment data_fragment(const std::string& name, std::size_t bytes,
                            std::uint32_t align = 4) {
  img::Fragment f;
  f.name = name;
  f.section = img::SectionKind::Data;
  f.align = align;
  Buffer b;
  b.resize(bytes);
  f.items.push_back(img::Item::make_data(std::move(b)));
  return f;
}

// Overwrite image bytes at an absolute address (content patching never moves
// anything, so it is safe after final layout).
bool poke(img::Image& image, std::uint32_t addr, std::span<const std::uint8_t> bytes) {
  for (auto& sec : image.sections) {
    if (!sec.contains(addr)) continue;
    const std::uint32_t off = addr - sec.vaddr;
    if (off + bytes.size() > sec.bytes.size()) return false;
    std::copy(bytes.begin(), bytes.end(), sec.bytes.data() + off);
    return true;
  }
  return false;
}

bool poke_words(img::Image& image, std::uint32_t addr,
                std::span<const std::uint32_t> words) {
  Buffer b;
  for (std::uint32_t w : words) b.put_u32(w);
  return poke(image, addr, b.span());
}

}  // namespace

Result<img::Image> layout_plain(const cc::Compiled& program) {
  auto laid = img::layout(program.module);
  if (!laid) return fail(laid.error());
  return std::move(laid).take().image;
}

Result<Protected> Protector::protect(const cc::Compiled& program,
                                     const ProtectOptions& opts) {
  Rng rng(opts.seed);
  img::Module mod = program.module;

  // ---------------------------------------------------------------------
  // 1. Pick verification functions.
  // ---------------------------------------------------------------------
  std::vector<std::string> vfs = opts.verify_functions;
  if (vfs.empty()) {
    const auto cg = analysis::build_callgraph(program.ir);
    analysis::SelectionOptions sel;
    sel.count = opts.max_verify_functions;
    sel.max_time_fraction = opts.max_time_fraction;
    vfs = analysis::select_verification_functions(program.ir, cg, opts.profile, sel);
    if (vfs.empty()) return fail("no suitable verification function found (§VII-B)");
  }

  struct PerFunc {
    std::string name;
    cc::IrFunc lowered;
    Artifacts art;
    ropc::Chain chain;
  };
  std::vector<PerFunc> funcs;

  for (const auto& name : vfs) {
    const cc::IrFunc* ir = nullptr;
    for (const auto& f : program.ir.funcs) {
      if (f.name == name) ir = &f;
    }
    if (!ir) return fail("verification function '" + name + "' not found");
    cc::IrFunc lowered = cc::lower_bytes_for_rop(cc::lower_mul_for_rop(*ir));
    if (!analysis::chain_compilable(lowered)) {
      return fail("function '" + name + "' cannot be translated to a chain " +
                  "(calls, syscalls or division)");
    }
    PerFunc pf;
    pf.name = name;
    pf.lowered = std::move(lowered);
    pf.art = artifact_names(name);
    funcs.push_back(std::move(pf));
  }

  // ---------------------------------------------------------------------
  // 2. Replace bodies with stubs; add storage fragments (placeholders for
  //    anything whose size depends on the compiled chain).
  // ---------------------------------------------------------------------
  for (auto& pf : funcs) {
    img::Fragment* frag = mod.find_fragment(pf.name);
    if (!frag) return fail("no text fragment for '" + pf.name + "'");

    verify::StubSpec spec;
    spec.func_name = pf.name;
    spec.num_params = pf.lowered.num_params;
    spec.result_slot = pf.lowered.num_slots;
    spec.frame_sym = pf.art.frame;
    spec.chain_exec_sym = pf.art.exec;
    spec.resume_sym = pf.art.resume;
    spec.hardening = opts.hardening;
    spec.routine_sym = verify::runtime_symbol(opts.hardening);
    spec.chain_src_sym = pf.art.src;
    spec.len_sym = pf.art.len;
    spec.idx_sym = pf.art.idx;
    spec.basis_sym = pf.art.basis;
    spec.variants = opts.variants;
    *frag = verify::emit_stub(spec);

    mod.fragments.push_back(
        data_fragment(pf.art.frame, 4u * (static_cast<std::size_t>(pf.lowered.num_slots) + 1)));
    // Chain words, then the resume word: consecutive data fragments stay
    // adjacent in layout (align 1 on the resume keeps them contiguous).
    mod.fragments.push_back(data_fragment(pf.art.exec, 0));
    mod.fragments.back().align = 4;
    img::Fragment resume = data_fragment(pf.art.resume, 4, 1);
    mod.fragments.push_back(std::move(resume));

    if (opts.hardening == Hardening::Xor || opts.hardening == Hardening::Rc4) {
      mod.fragments.push_back(data_fragment(pf.art.src, 0));
      mod.fragments.push_back(data_fragment(pf.art.len, 4));
    } else if (opts.hardening == Hardening::Probabilistic) {
      mod.fragments.push_back(data_fragment(pf.art.idx, 0));
      mod.fragments.push_back(data_fragment(pf.art.basis, 128));
      mod.fragments.push_back(data_fragment(pf.art.len, 4));
    }
  }

  // Shared scratch parking area and the utility gadget set.
  mod.fragments.push_back(data_fragment("__plx_scratch", 4096, 16));
  mod.fragments.push_back(gadget::utility_gadget_fragment());

  // Hardening runtime (hand-written assembly), if any.
  if (opts.hardening != Hardening::Cleartext) {
    std::vector<std::uint8_t> key(16);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u32());
    const std::string src = verify::runtime_asm_source(opts.hardening, key);
    auto runtime = assembler::assemble(src);
    if (!runtime) return fail("runtime assembly failed: " + runtime.error());
    for (auto& frag : runtime.value().fragments) {
      mod.fragments.push_back(frag);
    }
    // Stash the key where finalisation can reuse it.
    img::Fragment key_frag = data_fragment("__plx_hostkey", key.size(), 1);
    Buffer kb{std::vector<std::uint8_t>(key)};
    key_frag.items[0] = img::Item::make_data(std::move(kb));
    mod.fragments.push_back(std::move(key_frag));
  }

  // §IV-B crafting: create fresh overlapping gadgets inside the remaining
  // program functions (the verification functions' bodies are stubs now, so
  // crafting there would be wasted). Must happen before the preliminary
  // layout: the edits change text layout.
  if (opts.craft_gadgets) {
    rewrite::CraftOptions copts;
    copts.max_per_function = opts.max_crafted_per_function;
    for (const auto& frag : mod.fragments) {
      if (frag.section != img::SectionKind::Text || !frag.is_func) continue;
      if (frag.name.starts_with("__plx")) continue;
      bool is_vf = false;
      for (const auto& pf : funcs) is_vf |= pf.name == frag.name;
      if (!is_vf) copts.functions.push_back(frag.name);
    }
    auto crafted = rewrite::craft_gadgets(mod, copts);
    if (!crafted) return fail("gadget crafting: " + crafted.error());
    mod = std::move(crafted).take().module;
  }

  // ---------------------------------------------------------------------
  // 3. Preliminary layout + gadget scan. Text is final after this point —
  //    only data fragment sizes change below.
  // ---------------------------------------------------------------------
  auto prelim = img::layout(mod);
  if (!prelim) return fail("preliminary layout: " + prelim.error());

  // Text *positions* are final now, but the 32-bit fixup fields of text
  // instructions that reference data symbols will be re-patched when data
  // fragments get their real sizes. Gadgets must not be built on such
  // mutable bytes: collect the field ranges and drop intersecting gadgets.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> mutable_ranges;
  for (std::size_t f = 0; f < mod.fragments.size(); ++f) {
    const img::Fragment& frag = mod.fragments[f];
    if (frag.section != img::SectionKind::Text) continue;
    for (std::size_t i = 0; i < frag.items.size(); ++i) {
      const img::Item& item = frag.items[i];
      if (item.fixup != img::Fixup::AbsImm && item.fixup != img::Fixup::AbsDisp) {
        continue;
      }
      const img::LaidOutItem& loc = prelim.value().items[f][i];
      if (loc.size >= 4) {
        mutable_ranges.emplace_back(loc.addr + loc.size - 4, loc.addr + loc.size);
      }
    }
  }
  auto intersects_mutable = [&](std::uint32_t lo, std::uint32_t hi) {
    for (const auto& [mlo, mhi] : mutable_ranges) {
      if (lo < mhi && hi > mlo) return true;
    }
    return false;
  };

  std::vector<gadget::Gadget> stable_gadgets;
  for (auto& g : gadget::scan(prelim.value().image)) {
    if (!intersects_mutable(g.addr, g.end())) stable_gadgets.push_back(std::move(g));
  }
  gadget::Catalog catalog(std::move(stable_gadgets));

  // Mark gadgets overlapping protected instructions. Default: every original
  // program function (stubs, runtime and the utility set are infrastructure).
  std::set<std::string> protect_set(opts.protect_functions.begin(),
                                    opts.protect_functions.end());
  std::set<std::string> infra = {"__plx_gadgets"};
  for (const auto& pf : funcs) infra.insert(pf.name);
  if (opts.hardening != Hardening::Cleartext) {
    infra.insert(verify::runtime_symbol(opts.hardening));
  }
  for (const auto& sym : prelim.value().image.symbols) {
    if (!sym.is_func || sym.size == 0) continue;
    if (sym.name.starts_with("__plx")) continue;
    if (infra.contains(sym.name)) continue;
    if (!protect_set.empty() && !protect_set.contains(sym.name)) continue;
    catalog.mark_overlapping(sym.vaddr, sym.vaddr + sym.size);
  }

  // ---------------------------------------------------------------------
  // 4. Compile the chains.
  // ---------------------------------------------------------------------
  std::vector<const gadget::Gadget*> weave_pool;
  if (opts.weave_overlapping) {
    weave_pool = catalog.overlapping_transparent();
    if (static_cast<int>(weave_pool.size()) > opts.max_woven) {
      weave_pool.resize(static_cast<std::size_t>(opts.max_woven));
    }
  }

  for (auto& pf : funcs) {
    ropc::RopCompiler rc(catalog, pf.art.frame, "__plx_scratch");
    ropc::RopcOptions ropts;
    ropts.verify_pool = weave_pool;
    ropts.seed = opts.seed;
    auto chain = rc.compile(pf.lowered, ropts);
    if (!chain) return fail(chain.error());
    pf.chain = std::move(chain).take();
    if (pf.chain.resume_index != pf.chain.words.size() - 1) {
      return fail("internal: resume word is not last");
    }
    // Size the storage: exec area holds every word except the resume word
    // (which is the adjacent __plx_resume fragment).
    const std::size_t exec_words = pf.chain.words.size() - 1;
    mod.find_fragment(pf.art.exec)->items[0].data.resize(exec_words * 4);
    if (opts.hardening == Hardening::Xor || opts.hardening == Hardening::Rc4) {
      mod.find_fragment(pf.art.src)->items[0].data.resize(exec_words * 4);
    } else if (opts.hardening == Hardening::Probabilistic) {
      mod.find_fragment(pf.art.idx)
          ->items[0]
          .data.resize(exec_words * static_cast<std::size_t>(opts.variants) *
                       verify::kIdxStride * 4);
    }
  }

  // Guard padding so chain byte-ops lowered to word RMW stay in bounds.
  mod.fragments.push_back(data_fragment("__plx_guard", 16, 1));
  img::Fragment ro_guard = data_fragment("__plx_roguard", 16, 1);
  ro_guard.section = img::SectionKind::Rodata;
  mod.fragments.push_back(std::move(ro_guard));

  // ---------------------------------------------------------------------
  // 5. Final layout; verify text stability; materialise chain storage.
  // ---------------------------------------------------------------------
  auto final_laid = img::layout(mod);
  if (!final_laid) return fail("final layout: " + final_laid.error());
  Protected result;
  result.image = std::move(final_laid).take().image;
  result.hardening = opts.hardening;
  result.variants = opts.variants;

  {
    const img::Section* t0 = prelim.value().image.find_section(".text");
    const img::Section* t1 = result.image.find_section(".text");
    if (!t0 || !t1 || t0->vaddr != t1->vaddr ||
        t0->bytes.size() != t1->bytes.size()) {
      return fail("internal: text layout changed between scan and finalisation");
    }
    Buffer masked0 = t0->bytes, masked1 = t1->bytes;
    for (const auto& [mlo, mhi] : mutable_ranges) {
      for (std::uint32_t a = mlo; a < mhi; ++a) {
        masked0[a - t0->vaddr] = 0;
        masked1[a - t1->vaddr] = 0;
      }
    }
    if (masked0 != masked1) {
      return fail("internal: stable text bytes changed between scan and finalisation");
    }
  }

  std::vector<std::uint8_t> key;
  if (const img::Symbol* k = result.image.find_symbol("__plx_hostkey")) {
    key = result.image.read(k->vaddr, 16);
  }

  std::set<std::uint32_t> overlap_addrs;
  for (const auto& g : catalog.all()) {
    if (g.overlapping) overlap_addrs.insert(g.addr);
  }
  result.gadgets_total = catalog.size();
  result.gadgets_overlapping = overlap_addrs.size();

  for (auto& pf : funcs) {
    auto resolved = pf.chain.resolve(result.image);
    if (!resolved) return fail(resolved.error());
    std::vector<std::uint32_t> words = std::move(resolved).take();
    words.pop_back();  // the resume word lives in __plx_resume_<f>

    const img::Symbol* exec_sym = result.image.find_symbol(pf.art.exec);
    if (!exec_sym) return fail("missing chain area symbol");

    switch (opts.hardening) {
      case Hardening::Cleartext:
        if (!poke_words(result.image, exec_sym->vaddr, words)) {
          return fail("chain poke out of range");
        }
        break;
      case Hardening::Xor:
      case Hardening::Rc4: {
        const auto ct = verify::encrypt_chain(opts.hardening, words, key);
        const img::Symbol* src_sym = result.image.find_symbol(pf.art.src);
        const img::Symbol* len_sym = result.image.find_symbol(pf.art.len);
        if (!src_sym || !len_sym) return fail("missing hardening symbols");
        if (!poke(result.image, src_sym->vaddr, ct)) return fail("src poke failed");
        const std::uint32_t len_bytes = static_cast<std::uint32_t>(words.size() * 4);
        if (!poke_words(result.image, len_sym->vaddr, {&len_bytes, 1})) {
          return fail("len poke failed");
        }
        break;
      }
      case Hardening::Probabilistic: {
        std::vector<std::vector<std::uint32_t>> variants;
        variants.push_back(words);
        for (int v = 1; v < opts.variants; ++v) {
          variants.push_back(ropc::make_variant(pf.chain, words, catalog, rng));
        }
        auto storage = verify::build_prob_storage(variants, rng);
        if (!storage) return fail(storage.error());
        const img::Symbol* idx_sym = result.image.find_symbol(pf.art.idx);
        const img::Symbol* basis_sym = result.image.find_symbol(pf.art.basis);
        const img::Symbol* len_sym = result.image.find_symbol(pf.art.len);
        if (!idx_sym || !basis_sym || !len_sym) return fail("missing prob symbols");
        if (!poke_words(result.image, idx_sym->vaddr, storage.value().idx) ||
            !poke_words(result.image, basis_sym->vaddr, storage.value().basis)) {
          return fail("prob storage poke failed");
        }
        const std::uint32_t len_words = static_cast<std::uint32_t>(words.size());
        if (!poke_words(result.image, len_sym->vaddr, {&len_words, 1})) {
          return fail("len poke failed");
        }
        break;
      }
    }

    for (std::uint32_t a : pf.chain.gadget_addrs) {
      result.used_gadget_addrs.push_back(a);
      if (overlap_addrs.contains(a)) ++result.used_gadgets_overlapping;
    }
    result.chain_functions.push_back(pf.name);
    result.chains.emplace(pf.name, std::move(pf.chain));
  }

  // Protected-byte map: the byte extent of every gadget referenced by any
  // chain. gadget_addrs[i] parallels gadget_slots[i], so the slot type tells
  // whether a use is computational (strict tier) or a woven transparent
  // verification NOP (advisory tier). A computational gadget's leading nop
  // filler (e.g. `nop; nop; pop eax; ret` classified PopReg) is emitted as a
  // separate advisory range: those bytes execute but compute nothing, so a
  // flip that yields another chain-transparent instruction survives — the
  // same §VIII-C escape hatch as fully transparent slots.
  {
    std::map<std::uint32_t, const gadget::Gadget*> by_addr;
    for (const auto& g : catalog.all()) by_addr.emplace(g.addr, &g);
    std::map<std::uint32_t, ProtectedRange> ranges;
    for (const auto& [name, chain] : result.chains) {
      for (std::size_t i = 0; i < chain.gadget_addrs.size(); ++i) {
        const auto it = by_addr.find(chain.gadget_addrs[i]);
        if (it == by_addr.end()) continue;  // defensive; addrs come from catalog
        const gadget::Gadget& g = *it->second;
        const bool computational =
            chain.gadget_slots[i].type != gadget::GType::Transparent;
        std::uint32_t core = g.addr;
        if (computational) {
          for (const auto& insn : g.insns) {
            if (insn.op != x86::Mnemonic::NOP) break;
            core += insn.len;
          }
        }
        if (core > g.addr) {  // leading nop filler: advisory only
          ProtectedRange& pad = ranges[g.addr];
          pad.lo = g.addr;
          pad.hi = std::max(pad.hi, core);
          pad.overlapping |= g.overlapping;
        }
        ProtectedRange& r = ranges[core];
        r.lo = core;
        r.hi = std::max(r.hi, g.end());
        r.overlapping |= g.overlapping;
        r.computational |= computational;
      }
    }
    for (const auto& [addr, r] : ranges) result.protected_ranges.push_back(r);
  }

  return result;
}

}  // namespace plx::parallax

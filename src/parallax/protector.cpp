// Protector is a thin driver over the staged pipeline in pipeline.cpp; see
// that file (and pipeline.h) for the Figure-2 stage sequence.
#include "parallax/protector.h"

#include "image/layout.h"
#include "parallax/pipeline.h"

namespace plx::parallax {

Result<img::Image> layout_plain(const cc::Compiled& program) {
  auto laid = img::layout(program.module);
  if (!laid) return std::move(laid).take_error();
  return std::move(laid).take().image;
}

Result<Protected> Protector::protect(const cc::Compiled& program,
                                     const ProtectOptions& opts) {
  return run_pipeline(program, opts);
}

}  // namespace plx::parallax

// The staged protection pipeline (Figure 2 of the paper).
//
// Protector::protect used to be one monolithic body; it is now a sequence of
// eight named stages sharing a PipelineContext:
//
//   select        pick verification functions, lower their IR (§VII-B)
//   stub-install  replace bodies with loader stubs, add storage fragments,
//                 assemble the hardening runtime, optionally craft gadgets
//   layout        preliminary layout; collect mutable fixup-byte ranges
//   scan          scan the laid-out image for gadgets, drop unstable ones
//   gadget-map    mark gadgets overlapping protected code, build weave pool
//   chain-compile compile each function's IR into a gadget chain (§III)
//   final-layout  final layout; verify text bytes stable since the scan
//   materialize   resolve chains and poke chain storage per hardening mode
//
// Each stage emits a StageTrace (wall time, image sizes, counters,
// warnings), so the bench layer and the batch driver can see where time goes
// and why an attempt fails. Stages are individually runnable: tests replay
// the sequence stage by stage on a PipelineContext and may inspect (or
// perturb) the context between stages. run_pipeline() is the thin driver
// Protector::protect delegates to; its output is byte-identical to the old
// monolith.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gadget/catalog.h"
#include "image/layout.h"
#include "isa/arch.h"
#include "parallax/protector.h"
#include "support/rng.h"

namespace plx::parallax {

// Shared mutable state threaded through the stage sequence. A context is
// valid for exactly one protection attempt: make_context() then the stages
// in protection_stages() order.
struct PipelineContext {
  // Inputs (fixed at make_context time).
  const cc::Compiled* program = nullptr;
  ProtectOptions opts;
  // Active backend, resolved from opts.isa by make_context (nullptr when the
  // name is unknown — the first stage reports it as a Diag).
  const isa::Arch* arch = nullptr;

  // Single RNG threaded through every stage, in stage order, so the staged
  // pipeline consumes the stream exactly like the old monolith did.
  Rng rng{0};

  // Per-verification-function working state.
  struct FuncState {
    std::string name;
    cc::IrFunc lowered;
    // Artifact symbol names for this function's storage fragments.
    std::string frame, exec, resume, src, len, idx, basis;
    ropc::Chain chain;
  };

  img::Module mod;                      // module being rewritten
  std::vector<FuncState> funcs;         // filled by select
  std::optional<img::LayoutResult> prelim;  // filled by layout
  // 32-bit fixup fields of text instructions referencing data symbols; these
  // bytes may change when data fragments get their final sizes, so gadgets
  // must not be built on them.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> mutable_ranges;
  gadget::Catalog catalog;              // filled by scan
  std::vector<const gadget::Gadget*> weave_pool;  // filled by gadget-map

  Protected out;                        // result being assembled

  // Trace hook for the stage currently executing (set by run_stage).
  StageTrace* active = nullptr;
  void count(std::string key, std::uint64_t value) {
    if (active) active->counters.emplace_back(std::move(key), value);
  }
  void warn(std::string message) {
    if (active) active->warnings.push_back(std::move(message));
  }
};

// One pipeline stage. Implementations live in pipeline.cpp; they are
// stateless singletons, so a Stage pointer may be cached freely.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual Status run(PipelineContext& ctx) const = 0;
};

// The Figure-2 stage sequence, in execution order. Stable singletons.
const std::vector<const Stage*>& protection_stages();

// Fresh context for one protection attempt. No stage has run yet.
PipelineContext make_context(const cc::Compiled& program,
                             const ProtectOptions& opts);

// Run one stage: times it, appends a StageTrace to ctx.out.traces, and wraps
// any failure with a "stage '<name>'" context frame.
Status run_stage(const Stage& stage, PipelineContext& ctx);

// Thin driver: make_context, run every stage in order, return the result.
Result<Protected> run_pipeline(const cc::Compiled& program,
                               const ProtectOptions& opts);

}  // namespace plx::parallax

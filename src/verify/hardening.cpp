#include "verify/hardening.h"

#include "asm/assembler.h"

#include "crypto/rc4.h"
#include "crypto/xorstream.h"
#include "gf2/gf2.h"

namespace plx::verify {

namespace {

inline plx::Diag hard_fail(std::string msg) {
  return plx::Diag(plx::DiagCode::HardeningError, "verify.hardening", std::move(msg));
}


std::string key_data_fragment(std::span<const std::uint8_t> key) {
  std::string out = "__plx_key:\n    db ";
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(static_cast<int>(key[i]));
  }
  out += "\n";
  return out;
}

}  // namespace

const char* runtime_symbol(Hardening mode) {
  switch (mode) {
    case Hardening::Cleartext: return "";
    case Hardening::Xor: return "__plx_xor_dec";
    case Hardening::Rc4: return "__plx_rc4_dec";
    case Hardening::Probabilistic: return "__plx_gen";
  }
  return "";
}

std::string runtime_asm_source(Hardening mode, std::span<const std::uint8_t> key) {
  switch (mode) {
    case Hardening::Cleartext:
      return "";

    case Hardening::Xor:
      // __plx_xor_dec(dst, src, nbytes): repeating-key xor, 16-byte key.
      return std::string(R"(
.text
__plx_xor_dec:
    push ebp
    mov ebp, esp
    push esi
    push edi
    push ebx
    mov edi, [ebp+8]
    mov esi, [ebp+12]
    mov ecx, [ebp+16]
    mov ebx, offset __plx_key
    xor edx, edx
.loop:
    cmp ecx, 0
    je .done
    mov al, [esi]
    xor al, [ebx+edx]
    mov [edi], al
    inc esi
    inc edi
    inc edx
    and edx, 15
    dec ecx
    jmp .loop
.done:
    pop ebx
    pop edi
    pop esi
    leave
    ret
.data
)") + key_data_fragment(key);

    case Hardening::Rc4:
      // __plx_rc4_dec(dst, src, nbytes): full RC4 (keyschedule per call, as
      // evaluated in Figure 5 — this is what makes RC4 pathological for
      // short chains). S-box lives in the frame.
      return std::string(R"(
.text
__plx_rc4_dec:
    push ebp
    mov ebp, esp
    sub esp, 256
    push esi
    push edi
    push ebx
    ; --- S[i] = i -------------------------------------------------------
    xor eax, eax
.init:
    mov [ebp+eax-256], al
    inc eax
    cmp eax, 256
    jne .init
    ; --- keyschedule: j = (j + S[i] + key[i & 15]) & 255; swap ----------
    xor esi, esi            ; i
    xor ebx, ebx            ; j
    mov ecx, offset __plx_key
.ksa:
    movzx eax, byte [ebp+esi-256]
    add ebx, eax
    mov edx, esi
    and edx, 15
    movzx edx, byte [ecx+edx]
    add ebx, edx
    and ebx, 255
    movzx edx, byte [ebp+ebx-256]
    mov [ebp+esi-256], dl
    mov [ebp+ebx-256], al
    inc esi
    cmp esi, 256
    jne .ksa
    ; --- PRGA + xor -------------------------------------------------------
    xor esi, esi            ; x
    xor ebx, ebx            ; y
    mov edi, [ebp+8]        ; dst
    mov ecx, [ebp+16]       ; n
.prga:
    cmp ecx, 0
    je .done
    inc esi
    and esi, 255
    movzx eax, byte [ebp+esi-256]
    add ebx, eax
    and ebx, 255
    movzx edx, byte [ebp+ebx-256]
    mov [ebp+esi-256], dl
    mov [ebp+ebx-256], al
    add eax, edx
    and eax, 255
    movzx eax, byte [ebp+eax-256]
    mov edx, [ebp+12]
    xor al, [edx]
    inc edx
    mov [ebp+12], edx
    mov [edi], al
    inc edi
    dec ecx
    jmp .prga
.done:
    pop ebx
    pop edi
    pop esi
    leave
    ret
.data
)") + key_data_fragment(key);

    case Hardening::Probabilistic:
      // __plx_gen(dst, idx, basis, nwords, nvar): per word, pick a random
      // variant r and XOR together the basis vectors its index list names
      // (Figure 4). Index record stride: 33 words ([count, idx...]).
      return R"(
.text
__plx_gen:
    push ebp
    mov ebp, esp
    push esi
    push edi
    push ebx
    mov eax, 512            ; one rand syscall seeds an inline LCG
    int 0x80
    mov edi, eax
    xor esi, esi            ; word index i
.words:
    cmp esi, [ebp+20]
    je .done
    imul edi, edi, 1103515245
    add edi, 12345
    mov eax, edi
    shr eax, 16
    xor edx, edx
    div dword [ebp+24]      ; edx = prng % nvar
    mov eax, esi
    imul eax, [ebp+24]
    add eax, edx
    imul eax, eax, 33
    shl eax, 2
    add eax, [ebp+12]       ; eax -> index record
    mov ebx, [eax]          ; count
    xor ecx, ecx            ; v
.combine:
    cmp ebx, 0
    je .store
    add eax, 4
    mov edx, [eax]
    shl edx, 2
    add edx, [ebp+16]       ; basis
    xor ecx, [edx]
    dec ebx
    jmp .combine
.store:
    mov edx, esi
    shl edx, 2
    add edx, [ebp+8]        ; dst
    mov [edx], ecx
    inc esi
    jmp .words
.done:
    pop ebx
    pop edi
    pop esi
    leave
    ret
)";
  }
  return "";
}

std::vector<std::uint8_t> encrypt_chain(Hardening mode,
                                        std::span<const std::uint32_t> words,
                                        std::span<const std::uint8_t> key) {
  std::vector<std::uint8_t> plain;
  plain.reserve(words.size() * 4);
  for (std::uint32_t w : words) {
    for (int i = 0; i < 4; ++i) {
      plain.push_back(static_cast<std::uint8_t>((w >> (8 * i)) & 0xff));
    }
  }
  switch (mode) {
    case Hardening::Xor:
      return crypto::xor_crypt(key, plain);
    case Hardening::Rc4:
      return crypto::rc4_crypt(key, plain);
    default:
      return plain;
  }
}

Result<ProbStorage> build_prob_storage(
    const std::vector<std::vector<std::uint32_t>>& variants, Rng& rng) {
  if (variants.empty()) return hard_fail("no chain variants");
  const std::size_t nwords = variants[0].size();
  for (const auto& v : variants) {
    if (v.size() != nwords) return hard_fail("chain variants differ in length");
  }
  const gf2::Mat basis = gf2::Mat::random_invertible(rng);
  const auto inv = basis.inverse();
  if (!inv) return hard_fail("basis not invertible");

  ProbStorage storage;
  storage.basis.resize(32);
  for (int j = 0; j < 32; ++j) storage.basis[static_cast<std::size_t>(j)] = basis.col(j);

  const std::size_t nvar = variants.size();
  storage.idx.assign(nwords * nvar * kIdxStride, 0);
  for (std::size_t i = 0; i < nwords; ++i) {
    for (std::size_t r = 0; r < nvar; ++r) {
      const auto indices = gf2::decompose(*inv, variants[r][i]);
      std::uint32_t* rec = &storage.idx[(i * nvar + r) * kIdxStride];
      rec[0] = static_cast<std::uint32_t>(indices.size());
      for (std::size_t k = 0; k < indices.size(); ++k) rec[k + 1] = indices[k];
    }
  }
  return storage;
}

std::vector<std::uint32_t> regenerate_prob(const ProbStorage& storage, int nwords,
                                           int nvariants,
                                           const std::vector<int>& picks) {
  std::vector<std::uint32_t> out(static_cast<std::size_t>(nwords), 0);
  for (int i = 0; i < nwords; ++i) {
    const int r = picks[static_cast<std::size_t>(i)] % nvariants;
    const std::uint32_t* rec =
        &storage.idx[(static_cast<std::size_t>(i) * static_cast<std::size_t>(nvariants) +
                      static_cast<std::size_t>(r)) *
                     kIdxStride];
    std::uint32_t v = 0;
    for (std::uint32_t k = 1; k <= rec[0]; ++k) {
      v ^= storage.basis[rec[k]];
    }
    out[static_cast<std::size_t>(i)] = v;
  }
  return out;
}

}  // namespace plx::verify

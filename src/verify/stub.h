// Loader stub emission (§V-A).
//
// A function selected as verification code has its native body replaced by a
// stub that (1) saves register state with pushad, (2) copies the cdecl
// arguments into the chain's static frame, (3) optionally calls the in-image
// hardening routine (xor / RC4 decryptor or the §V-B probabilistic
// generator) to materialise the chain, (4) pushes the resume address and
// publishes the resulting stack slot address in the chain's resume word, and
// (5) pivots esp into the chain and returns. The chain's epilogue (`pop esp`
// + resume word) lands back at the stub's resume point, which restores
// registers and loads the return value from the frame's result slot.
#pragma once

#include <string>

#include "image/image.h"

namespace plx::verify {

enum class Hardening : std::uint8_t { Cleartext, Xor, Rc4, Probabilistic };

const char* hardening_name(Hardening h);

struct StubSpec {
  std::string func_name;       // fragment name (the function being replaced)
  int num_params = 0;
  int result_slot = 0;         // frame slot index of the return value
  std::string frame_sym;       // per-function chain frame
  std::string chain_exec_sym;  // executable chain words (all but resume)
  std::string resume_sym;      // the 4-byte resume word fragment
  Hardening hardening = Hardening::Cleartext;

  // Hardened modes only:
  std::string routine_sym;     // __plx_xor_dec / __plx_rc4_dec / __plx_gen
  std::string chain_src_sym;   // encrypted chain source (xor / rc4)
  std::string len_sym;         // u32 global: chain length (bytes or words)
  std::string idx_sym;         // probabilistic: index arrays
  std::string basis_sym;       // probabilistic: 32 basis words
  int variants = 0;            // probabilistic: N
};

img::Fragment emit_stub(const StubSpec& spec);

}  // namespace plx::verify

// Instruction-level verification: µ-chains (§V-C).
//
// Instead of translating a whole function into one chain, every IR operation
// becomes its own tiny chain, invoked inline: pushad / pivot / one-op chain /
// epilogue / popad, with control flow staying native between µ-chains
// (Figure 3b). The paper evaluates this variant and rejects it: each µ-chain
// pays its own prologue/epilogue, roughly doubling the overhead of function
// chains, the inline setup code is easy to spot statically, and the chains
// cannot live in self-modifying data. bench_microchains reproduces the ~2x
// overhead comparison.
#pragma once

#include "cc/compile.h"
#include "image/image.h"
#include "support/error.h"

namespace plx::verify {

struct MicrochainProtected {
  img::Image image;
  int num_microchains = 0;
  std::vector<std::uint32_t> used_gadget_addrs;
};

// Replaces `function` with a native skeleton whose straight-line operations
// each execute via their own µ-chain.
Result<MicrochainProtected> protect_microchains(const cc::Compiled& program,
                                                const std::string& function);

}  // namespace plx::verify

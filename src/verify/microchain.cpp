#include "verify/microchain.h"

#include "analysis/selection.h"
#include "gadget/scanner.h"
#include "image/layout.h"
#include "ropc/ropc.h"
#include "isa/arch.h"
#include "isa/x86/build.h"

namespace plx::verify {

namespace {

inline Diag mc_fail(std::string msg) {
  return Diag(DiagCode::ChainCompileError, "verify.microchain", std::move(msg));
}

using namespace x86::ins;
using cc::IrInsn;
using cc::IrOp;
using x86::Mem;
using x86::Reg;

img::Fragment data_fragment(const std::string& name, std::size_t bytes,
                            std::uint32_t align = 4) {
  img::Fragment f;
  f.name = name;
  f.section = img::SectionKind::Data;
  f.align = align;
  Buffer b;
  b.resize(bytes);
  f.items.push_back(img::Item::make_data(std::move(b)));
  return f;
}

bool poke_words(img::Image& image, std::uint32_t addr,
                std::span<const std::uint32_t> words) {
  for (auto& sec : image.sections) {
    if (!sec.contains(addr)) continue;
    const std::uint32_t off = addr - sec.vaddr;
    if (off + words.size() * 4 > sec.bytes.size()) return false;
    for (std::size_t i = 0; i < words.size(); ++i) {
      sec.bytes.set_u32(off + 4 * i, words[i]);
    }
    return true;
  }
  return false;
}

bool is_native_op(IrOp op) {
  return op == IrOp::Label || op == IrOp::Jmp || op == IrOp::Jz || op == IrOp::Ret;
}

}  // namespace

Result<MicrochainProtected> protect_microchains(const cc::Compiled& program,
                                                const std::string& function) {
  const cc::IrFunc* ir = nullptr;
  for (const auto& f : program.ir.funcs) {
    if (f.name == function) ir = &f;
  }
  if (!ir) return mc_fail("function '" + function + "' not found");
  const cc::IrFunc lowered = cc::lower_bytes_for_rop(cc::lower_mul_for_rop(*ir));
  if (!analysis::chain_compilable(lowered)) {
    return mc_fail("function cannot be translated to chains");
  }

  img::Module mod = program.module;
  const std::string frame_sym = "__plx_uframe_" + function;
  auto chain_sym = [&](int k) { return "__plx_uchain_" + function + "_" + std::to_string(k); };
  auto resume_sym = [&](int k) { return "__plx_ures_" + function + "_" + std::to_string(k); };

  // ------------------------------------------------------------------
  // Native skeleton: frame-based ops become inline µ-chain invocations.
  // ------------------------------------------------------------------
  img::Fragment skel;
  skel.name = function;
  skel.section = img::SectionKind::Text;
  skel.is_func = true;
  skel.align = 16;
  std::vector<std::string> pending_labels;
  auto put = [&](x86::Insn insn) {
    img::Item item = img::Item::make_insn(insn);
    item.labels = std::move(pending_labels);
    pending_labels.clear();
    skel.items.push_back(std::move(item));
  };
  auto put_fixup = [&](x86::Insn insn, img::Fixup fixup, const std::string& sym,
                       std::int32_t addend = 0) {
    img::Item item = img::Item::make_insn(insn);
    item.fixup = fixup;
    item.sym = sym;
    item.addend = addend;
    item.labels = std::move(pending_labels);
    pending_labels.clear();
    skel.items.push_back(std::move(item));
  };

  // Copy params into the frame ([esp + 4 + 4k]: no pushad yet, no ebp frame).
  for (int p = 0; p < lowered.num_params; ++p) {
    put(load(Reg::EAX, Mem{.base = Reg::ESP, .disp = 4 + 4 * p}));
    put_fixup(store(Mem{}, Reg::EAX), img::Fixup::AbsDisp, frame_sym, 4 * p);
  }

  int nchains = 0;
  for (const IrInsn& insn : lowered.insns) {
    if (!is_native_op(insn.op)) {
      const int k = nchains++;
      // pushad; push offset .res_k; mov [ures_k], esp; mov esp, chain; ret
      put(pushad());
      x86::Insn push_res = push(0);
      push_res.wide_imm = true;
      put_fixup(push_res, img::Fixup::AbsImm, ".ures" + std::to_string(k));
      put_fixup(store(Mem{}, Reg::ESP), img::Fixup::AbsDisp, resume_sym(k));
      x86::Insn pivot = mov(Reg::ESP, 0);
      put_fixup(pivot, img::Fixup::AbsImm, chain_sym(k));
      put(ret());
      img::Item res = img::Item::make_insn(popad());
      res.labels.push_back(".ures" + std::to_string(k));
      skel.items.push_back(std::move(res));
      continue;
    }
    switch (insn.op) {
      case IrOp::Label:
        pending_labels.push_back(".L" + std::to_string(insn.imm));
        break;
      case IrOp::Jmp:
        put_fixup(jmp_rel(0), img::Fixup::RelBranch, ".L" + std::to_string(insn.imm));
        break;
      case IrOp::Jz: {
        x86::Insn ld = load(Reg::EAX, Mem{});
        put_fixup(ld, img::Fixup::AbsDisp, frame_sym, 4 * insn.a);
        put(test(Reg::EAX, Reg::EAX));
        put_fixup(jcc_rel(x86::Cond::E, 0), img::Fixup::RelBranch,
                  ".L" + std::to_string(insn.imm));
        break;
      }
      case IrOp::Ret:
        if (insn.a >= 0) {
          x86::Insn ld = load(Reg::EAX, Mem{});
          put_fixup(ld, img::Fixup::AbsDisp, frame_sym, 4 * insn.a);
        } else {
          put(mov(Reg::EAX, 0));
        }
        put(ret());
        break;
      default:
        break;
    }
  }
  if (!pending_labels.empty()) put(nop());
  put(ret());  // safety net for functions falling off the end

  img::Fragment* orig = mod.find_fragment(function);
  if (!orig) return mc_fail("no fragment for '" + function + "'");
  *orig = std::move(skel);

  mod.fragments.push_back(
      data_fragment(frame_sym, 4u * (static_cast<std::size_t>(lowered.num_slots) + 1)));
  mod.fragments.push_back(data_fragment("__plx_scratch", 4096, 16));
  mod.fragments.push_back(isa::default_arch().utility_gadget_fragment());
  for (int k = 0; k < nchains; ++k) {
    mod.fragments.push_back(data_fragment(chain_sym(k), 0));
    mod.fragments.push_back(data_fragment(resume_sym(k), 4, 1));
  }
  mod.fragments.push_back(data_fragment("__plx_guard", 16, 1));

  // ------------------------------------------------------------------
  // Preliminary layout, stable-gadget catalog (same recipe as Protector).
  // ------------------------------------------------------------------
  auto prelim = img::layout(mod);
  if (!prelim) return std::move(prelim).take_error().with_context("microchain preliminary layout");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> mutable_ranges;
  for (std::size_t f = 0; f < mod.fragments.size(); ++f) {
    const img::Fragment& frag = mod.fragments[f];
    if (frag.section != img::SectionKind::Text) continue;
    for (std::size_t i = 0; i < frag.items.size(); ++i) {
      const img::Item& item = frag.items[i];
      if (item.fixup != img::Fixup::AbsImm && item.fixup != img::Fixup::AbsDisp) continue;
      const img::LaidOutItem& loc = prelim.value().items[f][i];
      if (loc.size >= 4) mutable_ranges.emplace_back(loc.addr + loc.size - 4, loc.addr + loc.size);
    }
  }
  auto stable = [&](std::uint32_t lo, std::uint32_t hi) {
    for (const auto& [mlo, mhi] : mutable_ranges) {
      if (lo < mhi && hi > mlo) return false;
    }
    return true;
  };
  std::vector<gadget::Gadget> kept;
  for (auto& g : gadget::scan(prelim.value().image)) {
    if (stable(g.addr, g.end())) kept.push_back(std::move(g));
  }
  gadget::Catalog catalog(std::move(kept));

  // ------------------------------------------------------------------
  // One chain per straight-line op; size fragments; finalise.
  // ------------------------------------------------------------------
  ropc::RopCompiler rc(catalog, frame_sym, "__plx_scratch");
  std::vector<ropc::Chain> chains;
  int k = 0;
  for (const IrInsn& insn : lowered.insns) {
    if (is_native_op(insn.op)) continue;
    cc::IrFunc one;
    one.name = function + "#" + std::to_string(k);
    one.num_params = lowered.num_params;
    one.num_slots = lowered.num_slots;
    one.num_labels = 0;
    one.insns.push_back(insn);
    auto chain = rc.compile(one);
    if (!chain) return std::move(chain).take_error().with_context("microchain for " + one.name);
    mod.find_fragment(chain_sym(k))
        ->items[0]
        .data.resize((chain.value().words.size() - 1) * 4);
    chains.push_back(std::move(chain).take());
    ++k;
  }

  auto final_laid = img::layout(mod);
  if (!final_laid) return std::move(final_laid).take_error().with_context("microchain final layout");
  MicrochainProtected out;
  out.image = std::move(final_laid).take().image;
  out.num_microchains = nchains;

  for (int i = 0; i < nchains; ++i) {
    auto resolved = chains[static_cast<std::size_t>(i)].resolve(out.image);
    if (!resolved) return std::move(resolved).take_error().with_context("microchain resolve");
    std::vector<std::uint32_t> words = std::move(resolved).take();
    words.pop_back();  // resume word lives in its own fragment
    const img::Symbol* sym = out.image.find_symbol(chain_sym(i));
    if (!sym || !poke_words(out.image, sym->vaddr, words)) {
      return mc_fail("microchain poke failed");
    }
    for (std::uint32_t a : chains[static_cast<std::size_t>(i)].gadget_addrs) {
      out.used_gadget_addrs.push_back(a);
    }
  }
  return out;
}

}  // namespace plx::verify

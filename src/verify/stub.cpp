#include "verify/stub.h"

#include "isa/x86/build.h"

namespace plx::verify {

using namespace x86::ins;
using x86::Mem;
using x86::Reg;

const char* hardening_name(Hardening h) {
  switch (h) {
    case Hardening::Cleartext: return "cleartext";
    case Hardening::Xor: return "xor";
    case Hardening::Rc4: return "rc4";
    case Hardening::Probabilistic: return "probabilistic";
  }
  return "?";
}

img::Fragment emit_stub(const StubSpec& spec) {
  img::Fragment frag;
  frag.name = spec.func_name;
  frag.section = img::SectionKind::Text;
  frag.is_func = true;
  frag.align = 16;

  auto put = [&frag](x86::Insn insn) {
    frag.items.push_back(img::Item::make_insn(insn));
  };
  auto put_fixup = [&frag](x86::Insn insn, img::Fixup fixup, const std::string& sym,
                           std::int32_t addend = 0) {
    img::Item item = img::Item::make_insn(insn);
    item.fixup = fixup;
    item.sym = sym;
    item.addend = addend;
    frag.items.push_back(std::move(item));
  };

  // (1) Save register state.
  put(pushad());

  // (2) Copy cdecl arguments into frame slots 0..n-1. After pushad the
  // arguments sit at [esp + 36 + 4k].
  for (int p = 0; p < spec.num_params; ++p) {
    put(load(Reg::EAX, Mem{.base = Reg::ESP, .disp = 36 + 4 * p}));
    // mov [frame + 4p], eax  (absolute, AbsDisp fixup)
    put_fixup(store(Mem{}, Reg::EAX), img::Fixup::AbsDisp, spec.frame_sym, 4 * p);
  }

  // (3) Materialise the chain if hardened.
  switch (spec.hardening) {
    case Hardening::Cleartext:
      break;
    case Hardening::Xor:
    case Hardening::Rc4: {
      // routine(dst, src, nbytes) — push right-to-left.
      x86::Insn push_len = make1(x86::Mnemonic::PUSH, mem(Mem{}));
      put_fixup(push_len, img::Fixup::AbsDisp, spec.len_sym);
      x86::Insn push_src = push(0);
      push_src.wide_imm = true;
      put_fixup(push_src, img::Fixup::AbsImm, spec.chain_src_sym);
      x86::Insn push_dst = push(0);
      push_dst.wide_imm = true;
      put_fixup(push_dst, img::Fixup::AbsImm, spec.chain_exec_sym);
      put_fixup(call_rel(0), img::Fixup::RelBranch, spec.routine_sym);
      put(add(Reg::ESP, 12));
      break;
    }
    case Hardening::Probabilistic: {
      // routine(dst, idx, basis, nwords, nvariants).
      x86::Insn push_nvar = push(spec.variants);
      push_nvar.wide_imm = true;
      put(push_nvar);
      x86::Insn push_len = make1(x86::Mnemonic::PUSH, mem(Mem{}));
      put_fixup(push_len, img::Fixup::AbsDisp, spec.len_sym);
      x86::Insn push_basis = push(0);
      push_basis.wide_imm = true;
      put_fixup(push_basis, img::Fixup::AbsImm, spec.basis_sym);
      x86::Insn push_idx = push(0);
      push_idx.wide_imm = true;
      put_fixup(push_idx, img::Fixup::AbsImm, spec.idx_sym);
      x86::Insn push_dst = push(0);
      push_dst.wide_imm = true;
      put_fixup(push_dst, img::Fixup::AbsImm, spec.chain_exec_sym);
      put_fixup(call_rel(0), img::Fixup::RelBranch, spec.routine_sym);
      put(add(Reg::ESP, 20));
      break;
    }
  }

  // (4) Publish the resume stack address: push the resume label, then store
  // esp (which now points at that slot) into the chain's resume word.
  x86::Insn push_resume = push(0);
  push_resume.wide_imm = true;
  put_fixup(push_resume, img::Fixup::AbsImm, ".chain_resume");
  put_fixup(store(Mem{}, Reg::ESP), img::Fixup::AbsDisp, spec.resume_sym);

  // (5) Pivot into the chain.
  x86::Insn load_chain = mov(Reg::ESP, 0);
  put_fixup(load_chain, img::Fixup::AbsImm, spec.chain_exec_sym);
  put(ret());

  // Resume point: restore registers, fetch the return value from the frame.
  img::Item resume_popad = img::Item::make_insn(popad());
  resume_popad.labels.push_back(".chain_resume");
  frag.items.push_back(std::move(resume_popad));
  put_fixup(load(Reg::EAX, Mem{}), img::Fixup::AbsDisp, spec.frame_sym,
            4 * spec.result_slot);
  put(ret());

  return frag;
}

}  // namespace plx::verify

// Chain hardening (§V-B): in-image runtime routines and the host-side
// transforms that prepare chain storage.
//
//  * Cleartext  — resolved chain words written straight into the image.
//  * Xor / Rc4  — chain stored encrypted; a mini-C decryptor compiled into
//                 the protected binary regenerates the executable chain on
//                 every call (the stub pays for this, as in Figure 5).
//  * Probabilistic — the chain is never stored at all. N shape-compatible
//                 variants are decomposed over a random GF(2) basis into
//                 index arrays A_1..A_N; a mini-C generator XORs basis
//                 vectors together at runtime, choosing a random variant
//                 *per word* (Figure 4), so up to N^l distinct chains can
//                 materialise.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/rng.h"
#include "verify/stub.h"

namespace plx::verify {

// Index-array record stride, in words: [count, up to 32 indices].
constexpr int kIdxStride = 33;

// In-image runtime for `mode` as hand-written assembly (tight code, like the
// native decryptors a real deployment would ship — the mini-C backend's
// frame-machine output would dominate Figure 5's hardened-mode costs).
// `key` is baked in as a data fragment. Key length must be 16.
std::string runtime_asm_source(Hardening mode, std::span<const std::uint8_t> key);

// Names of the runtime entry points (must match runtime_asm_source).
const char* runtime_symbol(Hardening mode);

// Host-side encryption of resolved chain words (excluding the resume word).
std::vector<std::uint8_t> encrypt_chain(Hardening mode,
                                        std::span<const std::uint32_t> words,
                                        std::span<const std::uint8_t> key);

// Host-side probabilistic storage: decomposes each variant's words over a
// fresh random invertible basis. All variants must have equal length.
struct ProbStorage {
  std::vector<std::uint32_t> idx;    // nwords * nvariants * kIdxStride
  std::vector<std::uint32_t> basis;  // 32 words
};
Result<ProbStorage> build_prob_storage(
    const std::vector<std::vector<std::uint32_t>>& variants, Rng& rng);

// Reference implementation of the in-image generator, used by tests to
// cross-check the mini-C version: regenerates `nwords` words picking variant
// choices from `pick(word_index) % nvariants`.
std::vector<std::uint32_t> regenerate_prob(const ProbStorage& storage, int nwords,
                                           int nvariants,
                                           const std::vector<int>& picks);

}  // namespace plx::verify

#include "ropc/chain.h"

namespace plx::ropc {

inline plx::Diag resolve_fail(std::string msg) {
  return plx::Diag(plx::DiagCode::ChainResolveError, "ropc.resolve", std::move(msg));
}


Result<std::vector<std::uint32_t>> Chain::resolve(const img::Image& image) const {
  std::vector<std::uint32_t> out;
  out.reserve(words.size());
  for (const auto& w : words) {
    switch (w.k) {
      case Word::K::Imm:
        out.push_back(w.imm);
        break;
      case Word::K::SymRef: {
        const img::Symbol* sym = image.find_symbol(w.sym);
        if (!sym) return resolve_fail("chain references undefined symbol '" + w.sym + "'");
        out.push_back(sym->vaddr + static_cast<std::uint32_t>(w.addend));
        break;
      }
      case Word::K::Resume:
        out.push_back(0);
        break;
    }
  }
  return out;
}

namespace {

// Candidate test: same type/params, exact shape, liveness- and flag-safe.
bool compatible(const gadget::Gadget& g, const GadgetSlot& slot) {
  if (g.type != slot.type) return false;
  if (slot.r1 != isa::kNoReg && g.r1 != slot.r1) return false;
  if (slot.r2 != isa::kNoReg && g.r2 != slot.r2) return false;
  if (slot.match_cond && g.cond != slot.cond) return false;
  if (g.clobbers & slot.live) return false;
  if (g.total_pops != slot.total_pops) return false;
  if (g.type == gadget::GType::PopReg && g.value_pop_index != slot.value_pop_index) {
    return false;
  }
  if (g.far_ret != slot.far_ret || g.ret_imm != slot.ret_imm) return false;
  if (g.disp != slot.disp) return false;
  // Parking was emitted for the original's scratch registers only.
  if (g.scratch_addr_regs & ~slot.scratch_addr_regs) return false;
  if (slot.need_flags_after && !g.flags_clean_after_effect) return false;
  if (slot.need_flags_before && !g.flags_clean_before_effect) return false;
  return true;
}

std::vector<const gadget::Gadget*> candidates_for(const GadgetSlot& slot,
                                                  const gadget::Catalog& catalog) {
  std::vector<const gadget::Gadget*> out;
  for (const auto& g : catalog.all()) {
    if (compatible(g, slot)) out.push_back(&g);
  }
  return out;
}

}  // namespace

std::vector<std::uint32_t> make_variant(const Chain& chain,
                                        std::vector<std::uint32_t> resolved,
                                        const gadget::Catalog& catalog, Rng& rng) {
  for (const auto& slot : chain.gadget_slots) {
    auto cands = candidates_for(slot, catalog);
    if (cands.empty()) continue;  // keep the original word
    const auto* pick = cands[rng.below(static_cast<std::uint32_t>(cands.size()))];
    resolved[slot.word_index] = pick->addr;
  }
  return resolved;
}

std::vector<std::size_t> slot_candidate_counts(const Chain& chain,
                                               const gadget::Catalog& catalog) {
  std::vector<std::size_t> out;
  out.reserve(chain.gadget_slots.size());
  for (const auto& slot : chain.gadget_slots) {
    out.push_back(candidates_for(slot, catalog).size());
  }
  return out;
}

}  // namespace plx::ropc

// The ROP compiler (our ROPC/Q stand-in, §III/§V of the paper).
//
// Translates a mini-C IR function into a function chain against a gadget
// catalog ("gadget mapping"). Overlapping gadgets are always preferred; on
// request the compiler additionally *weaves* transparent overlapping gadgets
// into the chain as verification NOPs, so tampering with protected bytes is
// detected even when the overlapped gadget computes nothing the chain needs.
//
// Value model: IR slots live in a per-function static frame (`frame_sym`
// data fragment) at frame + 4*slot; the return value goes to slot
// `num_slots` (one extra word). Filler pops and incidental memory accesses
// are parked on a shared 4 KiB scratch area (`scratch_sym` + 2048).
//
// Rejections: Call / Syscall / Div / Mod have no gadget lowering — the
// §VII-B selection step filters such functions out (run lower_mul_for_rop
// and lower_bytes_for_rop first to eliminate Mul/LoadB/StoreB).
#pragma once

#include "cc/ir.h"
#include "gadget/catalog.h"
#include "isa/arch.h"
#include "ropc/chain.h"
#include "support/rng.h"

namespace plx::ropc {

struct RopcOptions {
  // Choose uniformly among acceptable gadgets instead of deterministically:
  // used to compile the N probabilistic chain variants of §V-B.
  bool randomize = false;
  std::uint64_t seed = 0;
  // Transparent overlapping gadgets to weave in as verification NOPs, one
  // per IR operation boundary (round-robin over the pool).
  std::vector<const gadget::Gadget*> verify_pool;
};

class RopCompiler {
 public:
  // `abi` selects the backend register roles / condition handles the chain
  // targets; nullptr uses the default backend's ChainABI. compile() fails
  // with a ChainCompileError Diag when the backend has none (rv32 stub).
  RopCompiler(const gadget::Catalog& catalog, std::string frame_sym,
              std::string scratch_sym, const isa::ChainABI* abi = nullptr);

  Result<Chain> compile(const cc::IrFunc& func, const RopcOptions& opts = {});

 private:
  const gadget::Catalog& catalog_;
  std::string frame_sym_;
  std::string scratch_sym_;
  const isa::ChainABI* abi_;
};

}  // namespace plx::ropc

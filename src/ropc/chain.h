// Compiled ROP chain representation.
//
// A chain is a sequence of 32-bit words: gadget addresses, popped data,
// in-chain esp deltas for branches, and one runtime-patched "resume" word
// (the stack address the §V-A epilogue's `pop esp` pivots back to). Words
// that depend on final layout (frame slots, global addresses) are kept
// symbolic (symbol + addend) and resolved against the final image.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gadget/catalog.h"
#include "gadget/gadget.h"
#include "image/image.h"
#include "support/error.h"
#include "support/rng.h"

namespace plx::ropc {

struct Word {
  enum class K : std::uint8_t {
    Imm,     // concrete value (gadget address, delta, filler constant)
    SymRef,  // symbol + addend, resolved against the final image
    Resume,  // placeholder; the loader stub writes the resume stack address
  };
  K k = K::Imm;
  std::uint32_t imm = 0;
  std::string sym;
  std::int32_t addend = 0;

  static Word make_imm(std::uint32_t v) { return Word{K::Imm, v, {}, 0}; }
  static Word make_sym(std::string s, std::int32_t a) {
    return Word{K::SymRef, 0, std::move(s), a};
  }
  static Word make_resume() { return Word{K::Resume, 0, {}, 0}; }
};

// Metadata for one gadget-address word: the constraints it was selected
// under and the *shape* a substitute must match exactly so that all data
// words keep their positions. This is what makes the paper's per-vector
// variant generation (§V-B, Figure 4) sound: any shape-identical gadget of
// the same type can replace the word independently of all other words.
struct GadgetSlot {
  std::size_t word_index = 0;
  gadget::GType type = gadget::GType::Unusable;
  isa::RegId r1 = isa::kNoReg;
  isa::RegId r2 = isa::kNoReg;
  isa::CondId cond = isa::kNoCond;
  bool match_cond = false;       // SETcc slots must match the condition
  std::uint16_t live = 0;        // registers a substitute must not clobber
  // exact shape:
  std::uint8_t total_pops = 0;
  std::uint8_t value_pop_index = 0;
  bool far_ret = false;
  std::uint16_t ret_imm = 0;
  std::int32_t disp = 0;
  std::uint16_t scratch_addr_regs = 0;  // substitute's must be a subset
  bool need_flags_after = false;
  bool need_flags_before = false;
};

struct Chain {
  std::vector<Word> words;
  std::size_t resume_index = 0;   // index of the Resume word (the last word)
  int frame_words = 0;            // slots + result, excluding the scratch area
  std::string frame_sym;          // symbol of this chain's frame fragment

  // Distinct gadget start addresses referenced (for tests / tamper checks).
  std::vector<std::uint32_t> gadget_addrs;
  // One entry per gadget-address word, in word order.
  std::vector<GadgetSlot> gadget_slots;

  std::uint32_t size_bytes() const {
    return static_cast<std::uint32_t>(words.size() * 4);
  }

  // Resolve every word against an image symbol table. Fails on undefined
  // symbols. The Resume word resolves to 0 (stub patches it at runtime).
  Result<std::vector<std::uint32_t>> resolve(const img::Image& image) const;
};

// Produce a semantically-equivalent variant of resolved chain words by
// independently re-picking each gadget slot among shape-identical catalog
// candidates (§V-B). `resolved` must come from Chain::resolve on the final
// image, and the catalog must be scanned from that same image.
std::vector<std::uint32_t> make_variant(const Chain& chain,
                                        std::vector<std::uint32_t> resolved,
                                        const gadget::Catalog& catalog, Rng& rng);

// Number of shape-compatible candidates per slot (diagnostics: the paper's
// prod |G_i| variant-space bound).
std::vector<std::size_t> slot_candidate_counts(const Chain& chain,
                                               const gadget::Catalog& catalog);

}  // namespace plx::ropc

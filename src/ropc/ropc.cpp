#include "ropc/ropc.h"

#include <bit>
#include <map>

namespace plx::ropc {

using cc::IrFunc;
using cc::IrInsn;
using cc::IrOp;
using gadget::Gadget;
using gadget::GType;
using isa::CondId;
using isa::RegId;

namespace {

inline plx::Diag ropc_fail(std::string msg) {
  return plx::Diag(plx::DiagCode::ChainCompileError, "ropc.compile", std::move(msg));
}


// Register bit for liveness/clobber masks. The kNoReg wildcard (and any id
// beyond the 16-bit mask width) contributes no bit instead of shifting out
// of range; compile() rejects ABIs that actually name such registers.
constexpr std::uint16_t bit(RegId r) {
  return r >= 16 ? std::uint16_t{0}
                 : static_cast<std::uint16_t>(1u << static_cast<unsigned>(r));
}

// Offset of the parking address inside the shared scratch area: centred so
// that gadgets with negative or positive incidental displacements stay
// inside the 4 KiB region.
constexpr std::int32_t kParkOffset = 2048;

// Extra constraints on gadget selection beyond type/params/liveness.
struct Need {
  bool zero_disp = false;          // dynamic address: cannot compensate disp
  bool flags_clean_after = false;  // producer of a flag window
  bool flags_clean_before = false; // consumer of a flag window
  bool no_pivot_baggage = false;   // AddEspReg/PopEsp: no pops/far/ret_imm
  bool value_not_address = false;  // PopReg of an arbitrary value: the value
                                   // register must not double as an
                                   // incidental access address
  bool no_scratch = false;         // no incidental accesses at all (keeps the
                                   // flag window free of parking pops)
};

struct Emitter {
  const gadget::Catalog& cat;
  const RopcOptions& opts;
  const isa::ChainABI& abi;
  Rng rng;
  std::string frame_sym;
  std::string scratch_sym;
  const IrFunc& func;

  Chain chain;
  std::string error;
  int pending_skip = 0;  // dummy words owed right after the next gadget addr

  std::map<int, std::size_t> label_pos;
  struct Patch {
    std::size_t word_idx;   // the delta word to fill
    int label;
    std::size_t anchor;     // index ret pops from when delta == 0
  };
  std::vector<Patch> patches;

  std::size_t verify_next = 0;  // cursor into opts.verify_pool

  Emitter(const gadget::Catalog& c, const RopcOptions& o,
          const isa::ChainABI& a, std::string fs, std::string ss,
          const IrFunc& f)
      : cat(c), opts(o), abi(a), rng(o.seed), frame_sym(std::move(fs)),
        scratch_sym(std::move(ss)), func(f) {}

  bool fail_with(const std::string& msg) {
    if (error.empty()) error = "ropc(" + func.name + "): " + msg;
    return false;
  }

  Word park_word() const { return Word::make_sym(scratch_sym, kParkOffset); }
  Word slot_word(int slot) const { return Word::make_sym(frame_sym, 4 * slot); }
  int result_slot() const { return func.num_slots; }

  // --- gadget selection -------------------------------------------------
  bool acceptable(const Gadget& g, GType type, RegId r1, RegId r2,
                  std::uint16_t live, const Need& need) const {
    if (g.type != type) return false;
    if (r1 != isa::kNoReg && g.r1 != r1) return false;
    if (r2 != isa::kNoReg && g.r2 != r2) return false;
    if (g.clobbers & live) return false;
    if (need.zero_disp && g.disp != 0) return false;
    if (need.flags_clean_after && !g.flags_clean_after_effect) return false;
    if (need.flags_clean_before && !g.flags_clean_before_effect) return false;
    if (need.no_pivot_baggage && (g.total_pops != 0 || g.far_ret || g.ret_imm != 0)) {
      return false;
    }
    if (need.value_not_address && type == GType::PopReg &&
        (g.scratch_addr_regs & bit(g.r1))) {
      return false;
    }
    if (need.no_scratch && g.scratch_addr_regs != 0) return false;
    // Parking pops for scratch_addr_regs must themselves be clean, or we
    // would recurse; require gadgets whose parking needs are satisfiable by
    // clean pops (checked at emission).
    return true;
  }

  const Gadget* select(GType type, RegId r1, RegId r2, std::uint16_t live,
                       const Need& need) {
    std::vector<const Gadget*> candidates;
    for (const auto& g : cat.all()) {
      if (acceptable(g, type, r1, r2, live, need)) candidates.push_back(&g);
    }
    if (candidates.empty()) return nullptr;
    if (opts.randomize) {
      // Uniform choice over acceptable candidates (probabilistic chains).
      return candidates[rng.below(static_cast<std::uint32_t>(candidates.size()))];
    }
    // Deterministic: overlapping first, then fewest complications.
    auto cost = [](const Gadget& g) {
      return static_cast<int>(g.total_pops) * 4 + (g.far_ret ? 2 : 0) +
             (g.ret_imm ? 2 : 0) + 3 * std::popcount(g.scratch_addr_regs) +
             std::popcount(g.clobbers);
    };
    const Gadget* best = candidates[0];
    for (const Gadget* g : candidates) {
      const auto rank_g = std::pair(g->overlapping ? 0 : 1, cost(*g));
      const auto rank_b = std::pair(best->overlapping ? 0 : 1, cost(*best));
      if (rank_g < rank_b) best = g;
    }
    return best;
  }

  // --- word emission ------------------------------------------------------
  void append_addr(const Gadget* g, std::uint16_t live, const Need& need) {
    GadgetSlot slot;
    slot.word_index = chain.words.size();
    slot.type = g->type;
    slot.r1 = g->r1;
    slot.r2 = g->r2;
    slot.cond = g->cond;
    slot.match_cond = g->type == GType::SetccReg;
    slot.live = live;
    slot.total_pops = g->total_pops;
    slot.value_pop_index = g->value_pop_index;
    slot.far_ret = g->far_ret;
    slot.ret_imm = g->ret_imm;
    slot.disp = g->disp;
    slot.scratch_addr_regs = g->scratch_addr_regs;
    slot.need_flags_after = need.flags_clean_after;
    slot.need_flags_before = need.flags_clean_before;
    chain.gadget_slots.push_back(std::move(slot));

    chain.words.push_back(Word::make_imm(g->addr));
    chain.gadget_addrs.push_back(g->addr);
    // Words skipped by the *previous* gadget's retf / ret imm16 land right
    // after this address word.
    for (int i = 0; i < pending_skip; ++i) {
      chain.words.push_back(Word::make_imm(0));
    }
    pending_skip = 0;
  }

  // Emit one gadget. `values` are the words for value-carrying pops (only
  // PopReg has one); filler pops receive the scratch parking address.
  bool emit_gadget(const Gadget* g, const std::vector<Word>& values,
                   std::uint16_t live, const Need& need = {}) {
    // Park incidental-access address registers first.
    std::uint16_t to_park = g->scratch_addr_regs;
    for (int r = 0; r < 16 && to_park; ++r) {
      if (!(to_park & (1u << r))) continue;
      to_park = static_cast<std::uint16_t>(to_park & ~(1u << r));
      const RegId reg = static_cast<RegId>(r);
      if (reg == abi.sp) return fail_with("gadget needs the stack pointer parked");
      Need clean;
      clean.no_pivot_baggage = true;
      const Gadget* popper = select(GType::PopReg, reg, isa::kNoReg, live, clean);
      if (!popper) {
        return fail_with(std::string("no clean pop gadget to park ") +
                         abi.reg_name(reg));
      }
      append_addr(popper, live, clean);
      chain.words.push_back(park_word());
    }

    append_addr(g, live, need);
    if (g->type == GType::PopReg) {
      if (values.size() != 1) return fail_with("PopReg needs exactly one value");
      for (std::uint8_t i = 0; i <= g->total_pops; ++i) {
        if (i == g->value_pop_index) {
          chain.words.push_back(values[0]);
        } else {
          chain.words.push_back(park_word());
        }
      }
    } else {
      if (!values.empty()) return fail_with("unexpected values for gadget");
      for (std::uint8_t i = 0; i < g->total_pops; ++i) {
        chain.words.push_back(park_word());
      }
    }
    pending_skip = (g->far_ret ? 1 : 0) + g->ret_imm / 4;
    return true;
  }

  // pop r <- value.
  bool pop_value(RegId r, Word value, std::uint16_t live, bool value_is_address) {
    Need need;
    need.value_not_address = !value_is_address;
    const Gadget* g = select(GType::PopReg, r, isa::kNoReg, live, need);
    if (!g) return fail_with(std::string("no pop gadget for ") + abi.reg_name(r));
    return emit_gadget(g, {value}, live, need);
  }

  // A plain `ret` gadget used to flush pending skip words before labels.
  bool emit_nop_gadget() {
    Need need;
    need.no_pivot_baggage = true;
    for (const auto& g : cat.all()) {
      if (g.type == GType::Transparent && g.total_pops == 0 && !g.far_ret &&
          g.ret_imm == 0 && g.clobbers == 0 && g.scratch_addr_regs == 0) {
        append_addr(&g, 0, need);
        return true;
      }
    }
    return fail_with("no plain ret gadget available");
  }

  bool flush_pending() {
    if (pending_skip == 0) return true;
    return emit_nop_gadget();
  }

  // --- composite operations ---------------------------------------------
  // dst_reg <- [frame slot]: pop ecx <- addr, mov dst,[ecx]-style gadget.
  bool load_slot(RegId dst, int slot, std::uint16_t live) {
    const Gadget* g = select(GType::LoadMem, dst, abi.addr, live, Need{});
    if (!g) return fail_with(std::string("no load gadget into ") + abi.reg_name(dst));
    Word addr = slot_word(slot);
    addr.addend -= g->disp;  // compensate [addr_reg+disp]
    if (!pop_value(abi.addr, addr, live, /*value_is_address=*/true)) return false;
    return emit_gadget(g, {}, live);
  }

  // [frame slot] <- eax: pop ecx <- addr, mov [ecx],eax.
  bool store_slot(int slot, std::uint16_t live) {
    const Gadget* g = select(GType::StoreMem, abi.addr, abi.acc, live, Need{});
    if (!g) return fail_with("no store gadget");
    Word addr = slot_word(slot);
    addr.addend -= g->disp;
    if (!pop_value(abi.addr, addr, live | bit(abi.acc), true)) return false;
    return emit_gadget(g, {}, live | bit(abi.acc));
  }

  bool reg_move(RegId dst, RegId src, std::uint16_t live) {
    const Gadget* g = select(GType::MovRegReg, dst, src, live, Need{});
    if (!g) {
      return fail_with(std::string("no mov gadget ") + abi.reg_name(dst) + ", " +
                       abi.reg_name(src));
    }
    return emit_gadget(g, {}, live);
  }

  bool simple(GType type, RegId r1, RegId r2, std::uint16_t live, Need need = {}) {
    const Gadget* g = select(type, r1, r2, live, need);
    if (!g) return fail_with(std::string("no gadget of type ") + gadget::gtype_name(type));
    return emit_gadget(g, {}, live, need);
  }

  // Emit the conditional/unconditional pivot tail: assumes eax already holds
  // the delta (0 = fall through). Registers the patch for `label`.
  bool pivot(std::size_t delta_word_idx, int label) {
    Need need;
    need.no_pivot_baggage = true;
    const Gadget* g = select(GType::AddEspReg, abi.acc, isa::kNoReg, 0, need);
    if (!g) return fail_with("no add-esp gadget");
    if (!emit_gadget(g, {}, 0)) return false;
    patches.push_back(Patch{delta_word_idx, label, chain.words.size()});
    return true;
  }

  // --- IR lowering --------------------------------------------------------
  bool emit_insn(const IrInsn& insn) {
    const std::uint16_t EAX = bit(abi.acc);
    const std::uint16_t EDX = bit(abi.aux);
    const std::uint16_t ECX = bit(abi.addr);

    switch (insn.op) {
      case IrOp::Const:
        if (!pop_value(abi.acc, Word::make_imm(static_cast<std::uint32_t>(insn.imm)),
                       0, false)) {
          return false;
        }
        return store_slot(insn.dst, 0);

      case IrOp::Copy:
        return load_slot(abi.acc, insn.a, 0) && store_slot(insn.dst, 0);

      case IrOp::Add:
      case IrOp::Sub:
      case IrOp::And:
      case IrOp::Or:
      case IrOp::Xor: {
        GType t = GType::AddRegReg;
        if (insn.op == IrOp::Sub) t = GType::SubRegReg;
        if (insn.op == IrOp::And) t = GType::AndRegReg;
        if (insn.op == IrOp::Or) t = GType::OrRegReg;
        if (insn.op == IrOp::Xor) t = GType::XorRegReg;
        const bool rhs_ok =
            insn.b >= 0
                ? load_slot(abi.aux, insn.b, 0)
                : pop_value(abi.aux, Word::make_imm(static_cast<std::uint32_t>(insn.imm)),
                            0, false);
        return rhs_ok && load_slot(abi.acc, insn.a, EDX) &&
               simple(t, abi.acc, abi.aux, 0) &&
               store_slot(insn.dst, 0);
      }

      case IrOp::Shl:
      case IrOp::Sar: {
        const GType t = insn.op == IrOp::Shl ? GType::ShlClReg : GType::SarClReg;
        if (insn.b < 0) {
          // Constant count: pop it straight into the shift-count register.
          return load_slot(abi.acc, insn.a, 0) &&
                 pop_value(abi.addr,
                           Word::make_imm(static_cast<std::uint32_t>(insn.imm)),
                           bit(abi.acc), false) &&
                 simple(t, abi.acc, isa::kNoReg, ECX) &&
                 store_slot(insn.dst, 0);
        }
        return load_slot(abi.acc, insn.a, 0) &&
               reg_move(abi.aux, abi.acc, 0) &&
               load_slot(abi.acc, insn.b, EDX) &&
               reg_move(abi.addr, abi.acc, EDX) &&
               reg_move(abi.acc, abi.aux, ECX) &&
               simple(t, abi.acc, isa::kNoReg, 0) &&
               store_slot(insn.dst, 0);
      }

      case IrOp::Neg:
        return load_slot(abi.acc, insn.a, 0) &&
               simple(GType::NegReg, abi.acc, isa::kNoReg, 0) &&
               store_slot(insn.dst, 0);

      case IrOp::Not:
        return load_slot(abi.acc, insn.a, 0) &&
               simple(GType::NotReg, abi.acc, isa::kNoReg, 0) &&
               store_slot(insn.dst, 0);

      case IrOp::CmpEq:
      case IrOp::CmpNe:
      case IrOp::CmpLt:
      case IrOp::CmpLe:
      case IrOp::CmpGt:
      case IrOp::CmpGe: {
        CondId cond = abi.cond_eq;
        switch (insn.op) {
          case IrOp::CmpEq: cond = abi.cond_eq; break;
          case IrOp::CmpNe: cond = abi.cond_ne; break;
          case IrOp::CmpLt: cond = abi.cond_lt; break;
          case IrOp::CmpLe: cond = abi.cond_le; break;
          case IrOp::CmpGt: cond = abi.cond_gt; break;
          case IrOp::CmpGe: cond = abi.cond_ge; break;
          default: break;
        }
        if (insn.b >= 0) {
          if (!load_slot(abi.aux, insn.b, 0)) return false;
        } else if (!pop_value(abi.aux,
                              Word::make_imm(static_cast<std::uint32_t>(insn.imm)), 0,
                              false)) {
          return false;
        }
        if (!load_slot(abi.acc, insn.a, EDX)) return false;
        Need prod;
        prod.flags_clean_after = true;
        if (!simple(GType::CmpRegReg, abi.acc, abi.aux, 0, prod)) return false;
        if (!emit_setcc(cond, 0)) return false;
        if (!simple(GType::MovzxReg, abi.acc, isa::kNoReg, 0)) return false;
        return store_slot(insn.dst, 0);
      }

      case IrOp::Load:
        return load_slot(abi.acc, insn.a, 0) &&           // acc = pointer
               reg_move(abi.addr, abi.acc, 0) &&
               dynamic_load(0) &&
               store_slot(insn.dst, 0);

      case IrOp::Store:
        return load_slot(abi.acc, insn.a, 0) &&            // acc = pointer
               reg_move(abi.aux, abi.acc, 0) &&
               load_slot(abi.acc, insn.b, bit(abi.aux)) &&  // acc = value
               reg_move(abi.addr, abi.aux, EAX) &&
               dynamic_store(0);

      case IrOp::AddrSlot:
        return pop_value(abi.acc, slot_word(insn.imm), 0, true) &&
               store_slot(insn.dst, 0);

      case IrOp::AddrGlobal:
        return pop_value(abi.acc, Word::make_sym(insn.sym, insn.imm), 0, true) &&
               store_slot(insn.dst, 0);

      case IrOp::Label:
        if (!flush_pending()) return false;
        label_pos[insn.imm] = chain.words.size();
        return true;

      case IrOp::Jmp: {
        // pop eax <- delta; add esp, eax.
        Need strict;
        strict.value_not_address = true;
        const Gadget* popper = select(GType::PopReg, abi.acc, isa::kNoReg, 0, strict);
        if (!popper) return fail_with("no pop gadget for the accumulator");
        if (!emit_gadget(popper, {Word::make_imm(0)}, 0)) return false;
        // Find where the delta word landed (value_pop_index within data).
        const std::size_t delta_idx =
            chain.words.size() - (popper->total_pops + 1) + popper->value_pop_index;
        return pivot(delta_idx, insn.imm);
      }

      case IrOp::Jz: {
        // pop edx <- delta; eax = value; test; sete; movzx; neg; and; pivot.
        Need strict;
        strict.value_not_address = true;
        const Gadget* popper = select(GType::PopReg, abi.aux, isa::kNoReg, 0, strict);
        if (!popper) return fail_with("no pop gadget for the auxiliary register");
        if (!emit_gadget(popper, {Word::make_imm(0)}, 0)) return false;
        const std::size_t delta_idx =
            chain.words.size() - (popper->total_pops + 1) + popper->value_pop_index;
        const std::uint16_t EDXl = bit(abi.aux);
        if (!load_slot(abi.acc, insn.a, EDXl)) return false;
        Need prod;
        prod.flags_clean_after = true;
        if (!simple(GType::TestRegReg, abi.acc, abi.acc, EDXl, prod)) return false;
        if (!emit_setcc(abi.cond_eq, EDXl)) return false;
        if (!simple(GType::MovzxReg, abi.acc, isa::kNoReg, EDXl)) return false;
        if (!simple(GType::NegReg, abi.acc, isa::kNoReg, EDXl)) return false;
        if (!simple(GType::AndRegReg, abi.acc, abi.aux, 0)) return false;
        return pivot(delta_idx, insn.imm);
      }

      case IrOp::Ret:
        if (insn.a >= 0) {
          if (!load_slot(abi.acc, insn.a, 0)) return false;
          if (!store_slot(result_slot(), 0)) return false;
        }
        {
          // Jump to the epilogue label (allocated as label id num_labels).
          IrInsn jmp;
          jmp.op = IrOp::Jmp;
          jmp.imm = func.num_labels;  // reserved epilogue label
          return emit_insn(jmp);
        }

      case IrOp::Mul:
      case IrOp::Div:
      case IrOp::Mod:
      case IrOp::LoadB:
      case IrOp::StoreB:
      case IrOp::Call:
      case IrOp::Syscall:
        return fail_with(std::string("IR op '") + cc::irop_name(insn.op) +
                         "' has no chain lowering (selection should filter it)");
    }
    return fail_with("unhandled IR op");
  }

  bool emit_setcc(CondId cond, std::uint16_t live) {
    Need cons;
    cons.flags_clean_before = true;
    cons.no_scratch = true;  // parking pops would sit inside the flag window
    for (const auto& g : cat.all()) {
      if (g.type == GType::SetccReg && g.r1 == abi.acc && g.cond == cond &&
          acceptable(g, GType::SetccReg, abi.acc, isa::kNoReg, live, cons)) {
        return emit_gadget(&g, {}, live, cons);
      }
    }
    return fail_with(std::string("no set") + abi.cond_name(cond) + " gadget");
  }

  bool dynamic_load(std::uint16_t live) {
    Need need;
    need.zero_disp = true;
    return simple(GType::LoadMem, abi.acc, abi.addr, live, need);
  }

  bool dynamic_store(std::uint16_t live) {
    Need need;
    need.zero_disp = true;
    return simple(GType::StoreMem, abi.addr, abi.acc, live, need);
  }

  // Weave one pending verification NOP (transparent overlapping gadget).
  bool weave_verification() {
    if (verify_next >= opts.verify_pool.size()) return true;
    const Gadget* g = opts.verify_pool[verify_next++];
    return emit_gadget(g, {}, 0);
  }

  bool run() {
    for (std::size_t i = 0; i < func.insns.size(); ++i) {
      const IrOp op = func.insns[i].op;
      if (!emit_insn(func.insns[i])) return false;
      // Weave verification NOPs only on straight-line fall-through edges: a
      // gadget after Jmp/Ret would be dead code and verify nothing.
      const bool falls_through = op != IrOp::Jmp && op != IrOp::Jz && op != IrOp::Ret;
      if (falls_through && !weave_verification()) return false;
    }
    // Any verification gadgets not yet placed go before the epilogue.
    while (verify_next < opts.verify_pool.size()) {
      if (!weave_verification()) return false;
    }
    // Epilogue (§V-A): bind the reserved label, then pop esp + resume word.
    if (!flush_pending()) return false;
    label_pos[func.num_labels] = chain.words.size();
    Need need;
    need.no_pivot_baggage = true;
    const Gadget* pop_esp = select(GType::PopEsp, isa::kNoReg, isa::kNoReg, 0, need);
    if (!pop_esp) return fail_with("no pop-sp gadget for the epilogue");
    append_addr(pop_esp, 0, need);
    chain.resume_index = chain.words.size();
    chain.words.push_back(Word::make_resume());

    // Patch branch deltas.
    for (const auto& p : patches) {
      auto it = label_pos.find(p.label);
      if (it == label_pos.end()) return fail_with("unresolved chain label");
      const std::int64_t delta =
          (static_cast<std::int64_t>(it->second) - static_cast<std::int64_t>(p.anchor)) * 4;
      chain.words[p.word_idx] = Word::make_imm(static_cast<std::uint32_t>(delta));
    }
    chain.frame_words = func.num_slots + 1;
    chain.frame_sym = frame_sym;
    return true;
  }
};

}  // namespace

RopCompiler::RopCompiler(const gadget::Catalog& catalog, std::string frame_sym,
                         std::string scratch_sym, const isa::ChainABI* abi)
    : catalog_(catalog), frame_sym_(std::move(frame_sym)),
      scratch_sym_(std::move(scratch_sym)),
      abi_(abi ? abi : isa::default_arch().chain_abi()) {}

Result<Chain> RopCompiler::compile(const cc::IrFunc& func, const RopcOptions& opts) {
  if (!abi_) {
    return ropc_fail("ropc(" + func.name + "): backend exposes no chain ABI");
  }
  // Liveness/clobber masks (and the parking sweep) are 16 bits wide; reject a
  // chain ABI whose role registers would fall outside them rather than
  // silently dropping bits.
  for (RegId r : {abi_->acc, abi_->aux, abi_->addr, abi_->sp}) {
    if (r != isa::kNoReg && r >= 16) {
      return ropc_fail("ropc(" + func.name + "): chain-ABI register id " +
                       std::to_string(static_cast<unsigned>(r)) +
                       " exceeds the 16-bit liveness mask");
    }
  }
  Emitter e(catalog_, opts, *abi_, frame_sym_, scratch_sym_, func);
  if (!e.run()) return ropc_fail(e.error);
  return std::move(e.chain);
}

}  // namespace plx::ropc

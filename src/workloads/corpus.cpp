#include "workloads/corpus.h"

namespace plx::workloads {

namespace {

// Corpus design notes
// --------------------
// Each program has (a) a *hot* inner loop that dominates runtime and never
// calls the verification helper, and (b) a small arithmetic-rich helper
// called from >= 2 sites at structural boundaries (per block / request /
// frame). That mirrors the regime the paper's §VII-B selection finds in real
// programs: the helper executes repeatedly (so integrity is verified
// throughout the run) yet contributes well under 2% of cycles, keeping
// whole-program overhead in the Figure 5b band even at 10-60x chain
// slowdowns. Helpers avoid division (no chain lowering) and multiplication
// (whose shift-add chain lowering would blow the slowdown out of the
// paper's 3.7-64x range).

// ---------------------------------------------------------------------------
// minigzip — LZ77-style compressor (stands in for gzip).
// Hot: the match-search loop. Cold helper: hash_step — per-block digest
// update, called from two sites.
// ---------------------------------------------------------------------------
const char* kMinigzip = R"(
int seed = 12345;
char data[2048];
char window[64];
int out_tokens = 0;
int digest = 1;

int hash_step(int h, int c) {
  h = (h << 5) ^ (h >> 3) ^ (c << 1) ^ c;
  h = h & 0xffffff;
  if (h == 0) h = 1;
  return h;
}

int next_rand() {
  seed = seed * 1103515245 + 12345;
  return (seed >> 16) & 0x7fff;
}

int fill_input() {
  for (int i = 0; i < 2048; i++) {
    int r = next_rand();
    data[i] = (r & 15) + 'a';     // low-entropy: plenty of matches
  }
  return 0;
}

int find_match(int pos, int limit) {
  int best = 0;
  for (int w = 0; w < 64; w++) {
    int len = 0;
    while (len < 8 && pos + len < limit) {
      if (window[(w + len) & 63] != data[pos + len]) break;
      len++;
    }
    if (len > best) best = len;
  }
  return best;
}

int main() {
  fill_input();
  int pos = 0;
  int block_sum = 0;
  int block_end = 128;
  while (pos < 2048) {
    int len = find_match(pos, 2048);
    if (len >= 3) {
      out_tokens++;
      block_sum = block_sum + len;
      pos = pos + len;
    } else {
      block_sum = block_sum + data[pos];
      pos = pos + 1;
    }
    window[pos & 63] = data[pos & 2047];
    if (pos >= block_end) {
      digest = hash_step(digest, block_sum);   // per-block digest
      block_sum = 0;
      block_end = block_end + 128;
    }
  }
  digest = hash_step(digest, out_tokens);       // trailer digest
  return digest & 0xff;
}
)";

// ---------------------------------------------------------------------------
// minibzip2 — move-to-front + RLE block transform (stands in for bzip2).
// Hot: the MTF ranking loop. Cold helper: rank_mix — per-group digest.
// ---------------------------------------------------------------------------
const char* kMinibzip2 = R"(
int seed = 777;
char block[3072];
char mtf[256];
int out = 0;
int runs = 0;

int rank_mix(int acc, int sym) {
  int v = (acc << 3) + sym;
  v = v ^ (acc >> 5);
  v = v + (sym << 7);
  if (v < 0) v = -v;
  return v & 0xfffff;
}

int next_rand() {
  seed = seed * 69069 + 1;
  return (seed >> 12) & 0x7fff;
}

int fill_block() {
  for (int i = 0; i < 3072; i++) {
    block[i] = next_rand() & 31;
  }
  return 0;
}

int mtf_encode(int c) {
  int r = 0;
  while (mtf[r] != c) r++;
  int i = r;
  while (i > 0) {
    mtf[i] = mtf[i - 1];
    i--;
  }
  mtf[0] = c;
  return r;
}

int main() {
  fill_block();
  for (int i = 0; i < 256; i++) mtf[i] = i;
  int run = 0;
  int prev = -1;
  int group_sum = 0;
  for (int i = 0; i < 3072; i++) {
    int r = mtf_encode(block[i]);
    if (r == prev) {
      run++;
    } else {
      if (run > 1) runs++;
      run = 1;
      prev = r;
    }
    group_sum = group_sum + r;
    if ((i & 255) == 255) {
      out = rank_mix(out, group_sum);           // per-group digest
      group_sum = 0;
    }
  }
  out = rank_mix(out, runs);                     // trailer digest
  return out & 0xff;
}
)";

// ---------------------------------------------------------------------------
// miniwget — protocol response parser + body checksum (stands in for wget).
// Hot: the body checksum loop (no helper calls). Cold helper: hex_digit —
// chunk-size parsing and %-unescaping; genuinely non-deterministic-input
// code, the class OH cannot protect (§VIII-C).
// ---------------------------------------------------------------------------
const char* kMiniwget = R"(
char response[512] = "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nTransfer-Encoding: chunked\r\n\r\n1a\r\nabcdefghij%20klmnopqrstuvw\r\n10\r\n0123456789abcdef\r\n0\r\n\r\n";
char body[128];
int body_len = 0;
int chunks = 0;
int unescaped = 0;

int hex_digit(int c) {
  if (c >= '0') {
    if (c <= '9') return c - '0';
  }
  if (c >= 'a') {
    if (c <= 'f') return c - 'a' + 10;
  }
  if (c >= 'A') {
    if (c <= 'F') return c - 'A' + 10;
  }
  return -1;
}

int skip_line(int pos) {
  while (response[pos] != 13 && response[pos] != 0) pos++;
  if (response[pos] == 13) pos = pos + 2;
  return pos;
}

int download() {
  body_len = 0;
  int pos = 0;
  while (response[pos] != 0) {
    if (response[pos] == 13 && response[pos + 2] == 13) break;
    pos++;
  }
  pos = pos + 4;
  while (response[pos] != 0) {
    int size = 0;
    int d = hex_digit(response[pos]);
    int p = pos;
    while (d >= 0) {
      size = size * 16 + d;
      p++;
      d = hex_digit(response[p]);
    }
    if (size == 0) break;
    chunks++;
    pos = skip_line(pos);
    int i = 0;
    while (i < size) {
      int c = response[pos + i];
      if (c == '%') {
        unescaped++;
        c = hex_digit(response[pos + i + 1]) * 16 + hex_digit(response[pos + i + 2]);
        i = i + 3;
      } else {
        i = i + 1;
      }
      body[body_len] = c;
      body_len++;
    }
    pos = skip_line(pos + size);
  }
  return body_len;
}

int main() {
  int sum = 0;
  for (int fetch = 0; fetch < 4; fetch++) {
    download();
    // Hot: verify/checksum the payload many times (disk-write CRC stand-in).
    for (int round = 0; round < 1600; round++) {
      for (int i = 0; i < body_len; i++) {
        sum = (sum + body[i]) ^ (sum << 3);
        sum = sum & 0xffffff;
      }
    }
  }
  return (sum ^ chunks ^ unescaped) & 0xff;
}
)";

// ---------------------------------------------------------------------------
// mininginx — request routing event loop (stands in for nginx).
// Hot: serving content (page checksum). Cold helper: route_mix — access-log
// digest per request and per round.
// ---------------------------------------------------------------------------
const char* kMininginx = R"(
char requests[448] = "GET /index.html HTTP/1.1\nGET /api/v1/users HTTP/1.1\nPOST /api/v1/users HTTP/1.1\nGET /static/css/main.css HTTP/1.1\nGET /api/v1/orders HTTP/1.1\nDELETE /api/v1/orders/42 HTTP/1.1\nGET /favicon.ico HTTP/1.1\nHEAD /health HTTP/1.1\n";
char page[2048];
int served[8];
int log_sum = 0;

int route_mix(int h, int c) {
  h = h ^ (c << 1);
  h = (h << 4) + h + c;
  h = h & 0x7fffffff;
  return h;
}

int build_page() {
  for (int i = 0; i < 2048; i++) {
    page[i] = 32 + ((i * 7) & 63);
  }
  return 0;
}

int serve(int route) {
  // Hot path: checksum the page (content generation stand-in).
  int sum = route;
  for (int i = 0; i < 2048; i++) {
    sum = (sum + page[i]) ^ (sum << 2);
    sum = sum & 0xffffff;
  }
  return sum;
}

int main() {
  build_page();
  int acc = 0;
  for (int round = 0; round < 12; round++) {
    int pos = 0;
    while (requests[pos] != 0) {
      int method_end = pos;
      while (requests[method_end] != ' ') method_end++;
      int path_end = method_end + 1;
      int h = 5381;
      while (requests[path_end] != ' ') {
        h = ((h << 5) + h) ^ requests[path_end];   // inline djb2 (hot-ish)
        path_end++;
      }
      int r = h & 7;
      served[r] = served[r] + 1;
      acc = acc ^ serve(r);
      log_sum = route_mix(log_sum, r);             // per-request log digest
      while (requests[pos] != '\n' && requests[pos] != 0) pos++;
      if (requests[pos] == '\n') pos++;
    }
    log_sum = route_mix(log_sum, round);            // per-round digest
  }
  for (int i = 0; i < 8; i++) acc = acc + served[i];
  return (acc ^ log_sum) & 0xff;
}
)";

// ---------------------------------------------------------------------------
// minigcc — tokeniser + constant-expression evaluator (stands in for gcc).
// Hot: lexing a synthetic source buffer. Cold helper: fold — the constant
// folding step, called from the evaluator's two reduction sites.
// ---------------------------------------------------------------------------
const char* kMinigcc = R"(
int seed = 31337;
char src[1024];
int vals[64];
int ops[64];
int folded = 0;
int idents = 0;
int numbers = 0;

int fold(int op, int a, int b) {
  if (op == 0) return a + b;
  if (op == 1) return a - b;
  if (op == 2) return (a << 3) - (b & 0xffff);
  if (op == 3) return a & b;
  if (op == 4) return a | b;
  return a ^ b;
}

int prec(int op) {
  if (op == 2) return 2;
  if (op == 0) return 1;
  if (op == 1) return 1;
  return 0;
}

int next_rand() {
  seed = seed * 1664525 + 1013904223;
  return (seed >> 10) & 0x7fff;
}

int gen_source() {
  for (int i = 0; i < 1024; i++) {
    int r = next_rand() & 63;
    if (r < 20) {
      src[i] = 'a' + (r & 15);
    } else if (r < 40) {
      src[i] = '0' + (r & 7);
    } else if (r < 44) {
      src[i] = '+';
    } else if (r < 48) {
      src[i] = '*';
    } else if (r < 52) {
      src[i] = '(';
    } else if (r < 56) {
      src[i] = ')';
    } else {
      src[i] = ' ';
    }
  }
  src[1023] = 0;
  return 0;
}

int lex_pass() {
  // Hot: classify every character, accumulate token stats.
  int toks = 0;
  int i = 0;
  while (src[i] != 0) {
    int c = src[i];
    if (c >= 'a' && c <= 'z') {
      while (src[i] >= 'a' && src[i] <= 'z') i++;
      idents++;
      toks++;
    } else if (c >= '0' && c <= '9') {
      while (src[i] >= '0' && src[i] <= '9') i++;
      numbers++;
      toks++;
    } else {
      i++;
      if (c != ' ') toks++;
    }
  }
  return toks;
}

int eval_expr(int nterms) {
  int vsp = 0;
  int osp = 0;
  vals[vsp] = next_rand();
  vsp++;
  for (int t = 1; t < nterms; t++) {
    int op = next_rand() % 6;
    while (osp > 0 && prec(ops[osp - 1]) >= prec(op)) {
      osp--;
      vsp--;
      vals[vsp - 1] = fold(ops[osp], vals[vsp - 1], vals[vsp]);
      folded++;
    }
    ops[osp] = op;
    osp++;
    vals[vsp] = next_rand();
    vsp++;
  }
  while (osp > 0) {
    osp--;
    vsp--;
    vals[vsp - 1] = fold(ops[osp], vals[vsp - 1], vals[vsp]);
    folded++;
  }
  return vals[0];
}

int main() {
  gen_source();
  int acc = 0;
  for (int pass = 0; pass < 160; pass++) {
    acc = acc + lex_pass();            // hot
  }
  for (int e = 0; e < 6; e++) {
    acc = acc ^ eval_expr(3 + (e & 7));  // cold constant folding
    acc = acc & 0xffffff;
  }
  return (acc ^ folded ^ idents ^ numbers) & 0xff;
}
)";

// ---------------------------------------------------------------------------
// minilame — audio filter + quantiser (stands in for lame).
// Hot: the per-sample filter loop. Cold helper: clamp16 — applied to frame
// peaks only. clamp16's chain is tiny, which reproduces the paper's lame
// pathology under RC4 hardening (the keyschedule dwarfs a microseconds-long
// chain).
// ---------------------------------------------------------------------------
const char* kMinilame = R"(
int seed = 424242;
int hist0 = 0;
int hist1 = 0;
int clipped = 0;

int clamp16(int x) {
  if (x > 32767) return 32767;
  if (x < -32768) return -32768;
  return x;
}

int main() {
  int acc = 0;
  int energy = 0;
  int peak = 0;
  int frames = 0;
  for (int i = 0; i < 16000; i++) {
    seed = seed * 1103515245 + 12345;
    int s = ((seed >> 8) & 0xffff) - 32768;
    // Two-tap IIR-ish filter in integer math (hot).
    int y = s + ((hist0 * 3) >> 2) - (hist1 >> 1);
    hist1 = hist0;
    hist0 = y;
    int a = y;
    if (a < 0) a = -a;
    if (a > peak) peak = a;
    int q8 = (y >> 8) & 0xff;
    energy = (energy + q8) & 0xffffff;
    acc = (acc ^ q8) + (acc << 1);
    acc = acc & 0xffffff;
    if ((i & 1023) == 1023) {
      int p = clamp16(peak);            // frame peak clamp (cold)
      if (p != peak) clipped++;
      acc = acc ^ clamp16(p - 16384);   // frame gain staging (cold)
      peak = 0;
      frames++;
    }
  }
  return (acc ^ energy ^ clipped ^ frames) & 0xff;
}
)";

}  // namespace

const std::vector<Workload>& corpus() {
  static const std::vector<Workload> kCorpus = {
      {"miniwget", "wget", kMiniwget, "hex_digit"},
      {"mininginx", "nginx", kMininginx, "route_mix"},
      {"minibzip2", "bzip2", kMinibzip2, "rank_mix"},
      {"minigzip", "gzip", kMinigzip, "hash_step"},
      {"minigcc", "gcc", kMinigcc, "fold"},
      {"minilame", "lame", kMinilame, "clamp16"},
  };
  return kCorpus;
}

const Workload* find_workload(const std::string& name) {
  for (const auto& w : corpus()) {
    if (w.name == name || w.paper_name == name) return &w;
  }
  return nullptr;
}

}  // namespace plx::workloads

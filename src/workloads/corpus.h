// The evaluation corpus.
//
// The paper measures six real programs (wget, nginx, bzip2, gzip, gcc,
// lame). Those binaries and their compiler are not reproducible offline, so
// the corpus consists of six mini-C programs with the same *shape*: the same
// kind of inner loops (compression, parsing, filtering, code generation) and
// the same structural property the §VII-B selection relies on — small,
// arithmetic-rich helper functions called repeatedly from several sites that
// account for a sliver of total runtime. DESIGN.md documents the
// substitution.
//
// Each workload carries a suggested verification function (the one §VII-B
// picks) so benchmarks can run deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace plx::workloads {

struct Workload {
  std::string name;         // matches the paper's program it stands in for
  std::string paper_name;   // e.g. "gzip"
  std::string source;       // mini-C
  std::string verify_function;
};

const std::vector<Workload>& corpus();
const Workload* find_workload(const std::string& name);

}  // namespace plx::workloads

// Baseline: oblivious hashing (OH) [13, 20] — the paper's main comparison
// point among Wurster-resistant techniques.
//
// OH intersperses hash-update instructions with the protected code: every
// computed value is folded into a running hash of the execution state, and a
// guard compares the hash against a value recorded during testing. Two
// limitations the paper exploits are directly observable here:
//
//  1. Only *deterministic* state can be protected — a function whose values
//     depend on syscalls (time, rand, ptrace, read) produces a different
//     hash on every input, so the guard false-positives (oh_applicable
//     rejects such functions; bench_attacks demonstrates the failure).
//  2. The hash updates execute inline, slowing the protected code itself —
//     unlike Parallax, which confines overhead to the verification code.
#pragma once

#include "cc/compile.h"
#include "image/image.h"
#include "support/error.h"

namespace plx::baseline {

struct OhOptions {
  // Functions to instrument; empty = every program function that is
  // applicable (deterministic).
  std::vector<std::string> functions;
  // Instrument every Nth eligible IR op (1 = all, larger = cheaper).
  int every = 1;
};

struct OhProtected {
  img::Image image;
  std::vector<std::string> instrumented;
  std::uint32_t recorded_hash = 0;
  static constexpr int kTamperExit = 0xe1;
};

// True if OH can protect this function: no non-deterministic inputs (any
// syscall disqualifies — time, rand, read, ptrace results all vary).
bool oh_applicable(const cc::IrFunc& f);

// Instruments, lays out, performs the recording run (dynamic testing phase),
// and patches the expected hash. The guard fires on main's returns.
Result<OhProtected> protect_with_oh(const cc::Compiled& program,
                                    const OhOptions& opts = {});

}  // namespace plx::baseline

// Baseline: traditional code self-checksumming (the technique the paper's
// related work builds on [11, 14] and the Wurster et al. attack defeats).
//
// Selected functions get a guard call at their entry: a mini-C checker sums
// the code bytes of a target range *through data loads* and kills the
// process on mismatch. Guards can cross-verify (function A checks B and the
// checker itself), forming a small Chang-et-al-style network.
//
// This exists to make the paper's central comparison executable: the VM's
// split I-/D-cache attack (attack/wurster.h) modifies the fetch view only,
// so every checksum still passes while the executed code is tampered —
// whereas Parallax chains, which *execute* the protected bytes as gadgets,
// do notice.
#pragma once

#include <string>
#include <vector>

#include "cc/compile.h"
#include "image/image.h"
#include "support/error.h"

namespace plx::baseline {

struct ChecksumOptions {
  // Functions to guard; empty = every program function. Each guard checks
  // the next guarded function's code (cross-verification ring) plus the
  // checker routine itself.
  std::vector<std::string> guard_functions;
};

struct ChecksumProtected {
  img::Image image;
  std::vector<std::string> guarded;
  // Exit code the guard uses on mismatch (distinctive for tests).
  static constexpr int kTamperExit = 0x7a;
};

Result<ChecksumProtected> protect_with_checksums(const cc::Compiled& program,
                                                 const ChecksumOptions& opts = {});

}  // namespace plx::baseline

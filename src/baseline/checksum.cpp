#include "baseline/checksum.h"

#include "image/layout.h"
#include "isa/x86/build.h"

namespace plx::baseline {

namespace {

inline Diag base_fail(std::string msg) {
  return Diag(DiagCode::BaselineError, "baseline.checksum", std::move(msg));
}

// Word-sum checker. The loads go through the VM's *data* view — which is
// precisely why the Wurster attack defeats this entire technique class.
const char* kCheckerSource = R"(
int __cs_guard(int *start, int nwords, int expect) {
  int sum = 0;
  int i = 0;
  while (i < nwords) {
    sum = (sum + start[i]) ^ (sum << 1);
    sum = sum & 0x7fffffff;
    i++;
  }
  if (sum != expect) {
    __syscall(1, 0x7a, 0, 0);
  }
  return sum;
}
)";

std::uint32_t checksum_range(const img::Image& image, std::uint32_t addr,
                             std::uint32_t nwords) {
  std::uint32_t sum = 0;
  for (std::uint32_t i = 0; i < nwords; ++i) {
    const auto bytes = image.read(addr + 4 * i, 4);
    const std::uint32_t w = static_cast<std::uint32_t>(bytes[0]) | (bytes[1] << 8) |
                            (bytes[2] << 16) | (bytes[3] << 24);
    sum = ((sum + w) ^ (sum << 1)) & 0x7fffffff;
  }
  return sum;
}

img::Fragment word_global(const std::string& name) {
  img::Fragment f;
  f.name = name;
  f.section = img::SectionKind::Data;
  f.align = 4;
  Buffer b;
  b.put_u32(0);
  f.items.push_back(img::Item::make_data(std::move(b)));
  return f;
}

bool poke_u32(img::Image& image, std::uint32_t addr, std::uint32_t v) {
  for (auto& sec : image.sections) {
    if (!sec.contains(addr) || !sec.contains(addr + 3)) continue;
    sec.bytes.set_u32(addr - sec.vaddr, v);
    return true;
  }
  return false;
}

// Guard call sequence prepended at a function's entry:
//   push [expect_sym]; push [len_sym]; push [start_sym]; call __cs_guard;
//   add esp, 12
std::vector<img::Item> guard_call(const std::string& start_sym,
                                  const std::string& len_sym,
                                  const std::string& expect_sym) {
  using namespace x86::ins;
  std::vector<img::Item> items;
  auto push_mem = [&items](const std::string& sym) {
    img::Item it = img::Item::make_insn(make1(x86::Mnemonic::PUSH, mem(x86::Mem{})));
    it.fixup = img::Fixup::AbsDisp;
    it.sym = sym;
    items.push_back(std::move(it));
  };
  push_mem(expect_sym);
  push_mem(len_sym);
  push_mem(start_sym);
  img::Item call = img::Item::make_insn(call_rel(0));
  call.fixup = img::Fixup::RelBranch;
  call.sym = "__cs_guard";
  items.push_back(std::move(call));
  items.push_back(img::Item::make_insn(add(x86::Reg::ESP, 12)));
  return items;
}

}  // namespace

Result<ChecksumProtected> protect_with_checksums(const cc::Compiled& program,
                                                 const ChecksumOptions& opts) {
  img::Module mod = program.module;

  std::vector<std::string> guarded = opts.guard_functions;
  if (guarded.empty()) {
    for (const auto& f : program.ir.funcs) guarded.push_back(f.name);
  }
  if (guarded.empty()) return base_fail("nothing to guard");

  // Compile and append the checker.
  cc::CompileOptions copts;
  copts.with_start = false;
  copts.entry_func = "__cs_guard";
  auto checker = cc::compile(kCheckerSource, copts);
  if (!checker) return std::move(checker).take_error().with_context("checksum checker");
  for (auto& frag : checker.value().module.fragments) {
    mod.fragments.push_back(frag);
  }

  // Cross-verification ring: guard i checks guard (i+1) mod n, and the first
  // one also checks the checker itself.
  // Add all data globals first: pushing fragments invalidates pointers into
  // mod.fragments, so guard insertion must come after.
  for (std::size_t i = 0; i < guarded.size(); ++i) {
    const std::string prefix = "__cs_" + guarded[i];
    mod.fragments.push_back(word_global(prefix + "_start"));
    mod.fragments.push_back(word_global(prefix + "_len"));
    mod.fragments.push_back(word_global(prefix + "_expect"));
    const std::string prefix2 = "__cs2_" + guarded[i];
    mod.fragments.push_back(word_global(prefix2 + "_start"));
    mod.fragments.push_back(word_global(prefix2 + "_len"));
    mod.fragments.push_back(word_global(prefix2 + "_expect"));
  }
  mod.fragments.push_back(word_global("__cs_self_start"));
  mod.fragments.push_back(word_global("__cs_self_len"));
  mod.fragments.push_back(word_global("__cs_self_expect"));

  for (std::size_t i = 0; i < guarded.size(); ++i) {
    img::Fragment* frag = mod.find_fragment(guarded[i]);
    if (!frag) return base_fail("no fragment for '" + guarded[i] + "'");
    // Cross-verification: check the next ring member AND the one after it,
    // so killing a function's callers does not silence the checks on it.
    const std::string prefix = "__cs_" + guarded[i];
    auto items = guard_call(prefix + "_start", prefix + "_len", prefix + "_expect");
    frag->items.insert(frag->items.begin(), items.begin(), items.end());
    if (guarded.size() > 2) {
      const std::string prefix2 = "__cs2_" + guarded[i];
      auto items2 =
          guard_call(prefix2 + "_start", prefix2 + "_len", prefix2 + "_expect");
      frag->items.insert(frag->items.begin(), items2.begin(), items2.end());
    }
    if (i == 0) {
      auto self = guard_call("__cs_self_start", "__cs_self_len", "__cs_self_expect");
      frag->items.insert(frag->items.begin(), self.begin(), self.end());
    }
  }

  auto laid = img::layout(mod);
  if (!laid) return std::move(laid).take_error().with_context("checksum layout");
  ChecksumProtected out;
  out.image = std::move(laid).take().image;
  out.guarded = guarded;

  // Patch ranges and expected sums (data-only, layout unaffected).
  auto fill = [&](const std::string& prefix, const std::string& target) -> bool {
    const img::Symbol* tsym = out.image.find_symbol(target);
    const img::Symbol* s = out.image.find_symbol(prefix + "_start");
    const img::Symbol* l = out.image.find_symbol(prefix + "_len");
    const img::Symbol* e = out.image.find_symbol(prefix + "_expect");
    if (!tsym || !s || !l || !e) return false;
    const std::uint32_t nwords = tsym->size / 4;
    return poke_u32(out.image, s->vaddr, tsym->vaddr) &&
           poke_u32(out.image, l->vaddr, nwords) &&
           poke_u32(out.image, e->vaddr, checksum_range(out.image, tsym->vaddr, nwords));
  };

  for (std::size_t i = 0; i < guarded.size(); ++i) {
    if (!fill("__cs_" + guarded[i], guarded[(i + 1) % guarded.size()])) {
      return base_fail("guard patching failed for " + guarded[i]);
    }
    if (guarded.size() > 2 &&
        !fill("__cs2_" + guarded[i], guarded[(i + 2) % guarded.size()])) {
      return base_fail("secondary guard patching failed for " + guarded[i]);
    }
  }
  if (!fill("__cs_self", "__cs_guard")) return base_fail("self-guard patching failed");
  return out;
}

}  // namespace plx::baseline

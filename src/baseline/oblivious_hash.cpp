#include "baseline/oblivious_hash.h"

#include <algorithm>
#include <set>

#include "isa/x86/cc_backend.h"
#include "image/layout.h"
#include "isa/x86/machine.h"

namespace plx::baseline {

using cc::IrFunc;
using cc::IrInsn;
using cc::IrOp;

bool oh_applicable(const IrFunc& f) {
  for (const auto& insn : f.insns) {
    if (insn.op == IrOp::Syscall) return false;
  }
  return true;
}

namespace {

inline Diag oh_fail(std::string msg) {
  return Diag(DiagCode::BaselineError, "baseline.ohash", std::move(msg));
}

bool hashable(IrOp op) {
  switch (op) {
    case IrOp::Const:
    case IrOp::Copy:
    case IrOp::Add:
    case IrOp::Sub:
    case IrOp::Mul:
    case IrOp::Div:
    case IrOp::Mod:
    case IrOp::And:
    case IrOp::Or:
    case IrOp::Xor:
    case IrOp::Shl:
    case IrOp::Sar:
    case IrOp::Neg:
    case IrOp::Not:
    case IrOp::CmpEq:
    case IrOp::CmpNe:
    case IrOp::CmpLt:
    case IrOp::CmpLe:
    case IrOp::CmpGt:
    case IrOp::CmpGe:
    case IrOp::Load:
    case IrOp::LoadB:
      return true;
    default:
      return false;
  }
}

// Inserts hash updates: __oh_hash = ((__oh_hash << 1) ^ value) after every
// Nth hashable op. Appends the temps it needs.
IrFunc instrument(const IrFunc& f, int every) {
  IrFunc out = f;
  out.insns.clear();
  int next_slot = f.num_slots;
  const int t_addr = next_slot++;
  const int t_hash = next_slot++;
  const int t_one = next_slot++;
  int counter = 0;

  auto emit = [&out](IrOp op, int dst, int a, int b, std::int32_t imm = 0,
                     const std::string& sym = {}) {
    IrInsn i;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.b = b;
    i.imm = imm;
    i.sym = sym;
    out.insns.push_back(std::move(i));
  };

  for (const auto& insn : f.insns) {
    out.insns.push_back(insn);
    if (!hashable(insn.op) || insn.dst < 0) continue;
    if (++counter % every != 0) continue;
    emit(IrOp::AddrGlobal, t_addr, -1, -1, 0, "__oh_hash");
    emit(IrOp::Load, t_hash, t_addr, -1);
    emit(IrOp::Const, t_one, -1, -1, 1);
    emit(IrOp::Shl, t_hash, t_hash, t_one);
    emit(IrOp::Xor, t_hash, t_hash, insn.dst);
    emit(IrOp::Store, -1, t_addr, t_hash);
  }
  out.num_slots = next_slot;
  return out;
}

// Guards main's returns: if (__oh_hash != __oh_expected && !__oh_record)
// return kTamperExit.
IrFunc guard_main(const IrFunc& f) {
  IrFunc out = f;
  out.insns.clear();
  int next_slot = f.num_slots;
  const int t_addr = next_slot++;
  const int t_hash = next_slot++;
  const int t_exp = next_slot++;
  const int t_eq = next_slot++;
  const int t_poison = next_slot++;
  int next_label = f.num_labels;

  auto emit = [&out](IrOp op, int dst, int a, int b, std::int32_t imm = 0,
                     const std::string& sym = {}) {
    IrInsn i;
    i.op = op;
    i.dst = dst;
    i.a = a;
    i.b = b;
    i.imm = imm;
    i.sym = sym;
    out.insns.push_back(std::move(i));
  };

  for (const auto& insn : f.insns) {
    if (insn.op != IrOp::Ret) {
      out.insns.push_back(insn);
      continue;
    }
    const int l_bad = next_label++;
    emit(IrOp::AddrGlobal, t_addr, -1, -1, 0, "__oh_hash");
    emit(IrOp::Load, t_hash, t_addr, -1);
    emit(IrOp::AddrGlobal, t_addr, -1, -1, 0, "__oh_expected");
    emit(IrOp::Load, t_exp, t_addr, -1);
    emit(IrOp::CmpEq, t_eq, t_hash, t_exp);
    // Recording mode bypass: __oh_record != 0 skips the guard.
    emit(IrOp::AddrGlobal, t_addr, -1, -1, 0, "__oh_record");
    emit(IrOp::Load, t_poison, t_addr, -1);
    emit(IrOp::Or, t_eq, t_eq, t_poison);
    emit(IrOp::Jz, -1, t_eq, -1, l_bad);  // 0 = mismatch and not recording
    out.insns.push_back(insn);            // normal return
    emit(IrOp::Label, -1, -1, -1, l_bad);
    emit(IrOp::Const, t_poison, -1, -1, OhProtected::kTamperExit);
    emit(IrOp::Ret, -1, t_poison, -1);
  }
  out.num_slots = next_slot;
  out.num_labels = next_label;
  return out;
}

}  // namespace

Result<OhProtected> protect_with_oh(const cc::Compiled& program, const OhOptions& opts) {
  cc::IrProgram ir = program.ir;

  std::set<std::string> targets(opts.functions.begin(), opts.functions.end());
  OhProtected out;

  for (auto& f : ir.funcs) {
    const bool wanted = targets.empty() ? oh_applicable(f) : targets.contains(f.name);
    if (!wanted) continue;
    if (!oh_applicable(f)) {
      return oh_fail("OH cannot protect non-deterministic function '" + f.name +
                  "' (depends on syscall inputs)");
    }
    f = instrument(f, std::max(1, opts.every));
    out.instrumented.push_back(f.name);
  }
  if (out.instrumented.empty()) return oh_fail("nothing OH-applicable to instrument");
  for (auto& f : ir.funcs) {
    if (f.name == "main") f = guard_main(f);
  }

  // Rebuild the module from the instrumented IR (mirrors cc::compile).
  img::Module mod;
  mod.entry = program.module.entry;
  if (const img::Fragment* start = program.module.find_fragment("_start")) {
    mod.fragments.push_back(*start);
  }
  for (const auto& f : ir.funcs) {
    auto frag = cc::emit_func_x86(f);
    if (!frag) return std::move(frag).take_error().with_context("OH instrumentation");
    mod.fragments.push_back(std::move(frag).take());
  }
  for (const auto& g : ir.globals) {
    mod.fragments.push_back(cc::emit_global(g));
  }
  for (const auto& [name, text] : ir.strings) {
    mod.fragments.push_back(cc::emit_string(name, text));
  }
  for (const char* g : {"__oh_hash", "__oh_expected", "__oh_record"}) {
    img::Fragment frag;
    frag.name = g;
    frag.section = img::SectionKind::Data;
    frag.align = 4;
    Buffer b;
    b.put_u32(0);
    frag.items.push_back(img::Item::make_data(std::move(b)));
    mod.fragments.push_back(std::move(frag));
  }

  auto laid = img::layout(mod);
  if (!laid) return std::move(laid).take_error().with_context("OH layout");
  out.image = std::move(laid).take().image;

  // Recording run (the "dynamic testing" phase): record mode on.
  const img::Symbol* record_sym = out.image.find_symbol("__oh_record");
  const img::Symbol* hash_sym = out.image.find_symbol("__oh_hash");
  const img::Symbol* expect_sym = out.image.find_symbol("__oh_expected");
  if (!record_sym || !hash_sym || !expect_sym) return oh_fail("missing OH globals");

  img::Image recording = out.image;
  for (auto& sec : recording.sections) {
    if (sec.contains(record_sym->vaddr)) {
      sec.bytes.set_u32(record_sym->vaddr - sec.vaddr, 1);
    }
  }
  x86::Machine rec(recording);
  auto run = rec.run(500'000'000);
  if (run.reason != vm::StopReason::Exited) {
    return oh_fail("OH recording run did not complete: " + run.fault);
  }
  bool ok = true;
  out.recorded_hash = rec.read_u32(hash_sym->vaddr, ok);
  if (!ok) return oh_fail("could not read recorded hash");

  for (auto& sec : out.image.sections) {
    if (sec.contains(expect_sym->vaddr)) {
      sec.bytes.set_u32(expect_sym->vaddr - sec.vaddr, out.recorded_hash);
    }
  }
  return out;
}

}  // namespace plx::baseline

#include "gf2/gf2.h"

namespace plx::gf2 {

Mat Mat::identity() {
  Mat m;
  for (int j = 0; j < 32; ++j) m.set_col(j, 1u << j);
  return m;
}

Mat Mat::random_invertible(Rng& rng) {
  for (;;) {
    Mat m;
    for (int j = 0; j < 32; ++j) m.set_col(j, rng.next_u32());
    if (m.rank() == 32) return m;
  }
}

Vec Mat::mul(Vec x) const {
  Vec y = 0;
  for (int j = 0; j < 32; ++j) {
    if (x & (1u << j)) y ^= cols_[static_cast<std::size_t>(j)];
  }
  return y;
}

int Mat::rank() const {
  std::array<Vec, 32> cols = cols_;
  int rank = 0;
  for (int bit = 0; bit < 32 && rank < 32; ++bit) {
    // Find a column with this pivot bit set, at or after `rank`.
    int pivot = -1;
    for (int j = rank; j < 32; ++j) {
      if (cols[static_cast<std::size_t>(j)] & (1u << bit)) {
        pivot = j;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(cols[static_cast<std::size_t>(rank)], cols[static_cast<std::size_t>(pivot)]);
    for (int j = 0; j < 32; ++j) {
      if (j != rank && (cols[static_cast<std::size_t>(j)] & (1u << bit))) {
        cols[static_cast<std::size_t>(j)] ^= cols[static_cast<std::size_t>(rank)];
      }
    }
    ++rank;
  }
  return rank;
}

std::optional<Mat> Mat::inverse() const {
  // Gauss-Jordan on [M | I] operating on columns (column ops on M mirror on
  // I; since we store column-major, work with rows of the transpose — or
  // equivalently solve M X = I one pivot at a time on a row-echelon copy).
  std::array<Vec, 32> a = cols_;          // working copy (columns of M)
  std::array<Vec, 32> inv{};              // columns of the inverse-in-progress
  Mat id = identity();
  for (int j = 0; j < 32; ++j) inv[static_cast<std::size_t>(j)] = id.col(j);

  // We do column reduction: after processing, a == I and inv == M^-1
  // (column ops applied to I give M^-1 because M * (ops on I) = ops on M).
  for (int bit = 0; bit < 32; ++bit) {
    int pivot = -1;
    for (int j = bit; j < 32; ++j) {
      if (a[static_cast<std::size_t>(j)] & (1u << bit)) {
        pivot = j;
        break;
      }
    }
    if (pivot < 0) return std::nullopt;
    std::swap(a[static_cast<std::size_t>(bit)], a[static_cast<std::size_t>(pivot)]);
    std::swap(inv[static_cast<std::size_t>(bit)], inv[static_cast<std::size_t>(pivot)]);
    for (int j = 0; j < 32; ++j) {
      if (j != bit && (a[static_cast<std::size_t>(j)] & (1u << bit))) {
        a[static_cast<std::size_t>(j)] ^= a[static_cast<std::size_t>(bit)];
        inv[static_cast<std::size_t>(j)] ^= inv[static_cast<std::size_t>(bit)];
      }
    }
  }
  Mat out;
  for (int j = 0; j < 32; ++j) out.set_col(j, inv[static_cast<std::size_t>(j)]);
  return out;
}

std::vector<std::uint8_t> decompose(const Mat& basis_inv, Vec v) {
  const Vec coeffs = basis_inv.mul(v);
  std::vector<std::uint8_t> out;
  for (int j = 0; j < 32; ++j) {
    if (coeffs & (1u << j)) out.push_back(static_cast<std::uint8_t>(j));
  }
  return out;
}

Vec combine(const Mat& basis, std::span<const std::uint8_t> indices) {
  Vec v = 0;
  for (const std::uint8_t j : indices) v ^= basis.col(j);
  return v;
}

}  // namespace plx::gf2

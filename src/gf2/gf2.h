// GF(2) linear algebra over 32-bit vectors.
//
// Probabilistically generated function chains (§V-B of the paper) treat each
// chain word as a vector in {0,1}^32 and regenerate it at runtime as an XOR
// of basis vectors selected through index arrays. This module provides the
// basis machinery: random invertible 32x32 matrices, inversion by
// Gauss-Jordan elimination, and decomposition of a word into basis indices.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "support/rng.h"

namespace plx::gf2 {

using Vec = std::uint32_t;  // a vector in {0,1}^32, bit i = coordinate i

// A 32x32 matrix over GF(2), stored column-major: col(j) is basis vector b_j.
class Mat {
 public:
  Mat() = default;

  static Mat identity();
  // Random invertible matrix (rejection sampling on full rank).
  static Mat random_invertible(Rng& rng);

  Vec col(int j) const { return cols_[static_cast<std::size_t>(j)]; }
  void set_col(int j, Vec v) { cols_[static_cast<std::size_t>(j)] = v; }

  // y = M x  (x's bit j selects column j).
  Vec mul(Vec x) const;

  int rank() const;
  std::optional<Mat> inverse() const;

  bool operator==(const Mat&) const = default;

 private:
  std::array<Vec, 32> cols_{};
};

// Indices (ascending) of basis columns whose XOR equals v, i.e. the set bits
// of basis_inv * v. combine(basis, decompose(basis, inv, v)) == v.
std::vector<std::uint8_t> decompose(const Mat& basis_inv, Vec v);

Vec combine(const Mat& basis, std::span<const std::uint8_t> indices);

}  // namespace plx::gf2

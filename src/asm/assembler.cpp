#include "asm/assembler.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "isa/x86/insn.h"

namespace plx::assembler {

namespace {

inline plx::Diag asm_fail(std::string msg) {
  return plx::Diag(plx::DiagCode::AsmError, "asm", std::move(msg));
}


using x86::Cond;
using x86::Insn;
using x86::Mem;
using x86::Mnemonic;
using x86::Operand;
using x86::OpSize;
using x86::Reg;

struct CondEntry {
  const char* name;
  Cond cond;
};

constexpr CondEntry kConds[] = {
    {"o", Cond::O},   {"no", Cond::NO},  {"b", Cond::B},    {"c", Cond::B},
    {"nae", Cond::B}, {"ae", Cond::AE},  {"nb", Cond::AE},  {"nc", Cond::AE},
    {"e", Cond::E},   {"z", Cond::E},    {"ne", Cond::NE},  {"nz", Cond::NE},
    {"be", Cond::BE}, {"na", Cond::BE},  {"a", Cond::A},    {"nbe", Cond::A},
    {"s", Cond::S},   {"ns", Cond::NS},  {"p", Cond::P},    {"pe", Cond::P},
    {"np", Cond::NP}, {"po", Cond::NP},  {"l", Cond::L},    {"nge", Cond::L},
    {"ge", Cond::GE}, {"nl", Cond::GE},  {"le", Cond::LE},  {"ng", Cond::LE},
    {"g", Cond::G},   {"nle", Cond::G},
};

std::optional<Cond> parse_cond(const std::string& s) {
  for (const auto& e : kConds) {
    if (s == e.name) return e.cond;
  }
  return std::nullopt;
}

const std::map<std::string, Mnemonic>& mnemonic_table() {
  static const std::map<std::string, Mnemonic> table = {
      {"add", Mnemonic::ADD},     {"or", Mnemonic::OR},
      {"adc", Mnemonic::ADC},     {"sbb", Mnemonic::SBB},
      {"and", Mnemonic::AND},     {"sub", Mnemonic::SUB},
      {"xor", Mnemonic::XOR},     {"cmp", Mnemonic::CMP},
      {"test", Mnemonic::TEST},   {"mov", Mnemonic::MOV},
      {"lea", Mnemonic::LEA},     {"xchg", Mnemonic::XCHG},
      {"push", Mnemonic::PUSH},   {"pop", Mnemonic::POP},
      {"pushad", Mnemonic::PUSHAD}, {"popad", Mnemonic::POPAD},
      {"pushfd", Mnemonic::PUSHFD}, {"popfd", Mnemonic::POPFD},
      {"inc", Mnemonic::INC},     {"dec", Mnemonic::DEC},
      {"not", Mnemonic::NOT},     {"neg", Mnemonic::NEG},
      {"mul", Mnemonic::MUL},     {"imul", Mnemonic::IMUL},
      {"div", Mnemonic::DIV},     {"idiv", Mnemonic::IDIV},
      {"rol", Mnemonic::ROL},     {"ror", Mnemonic::ROR},
      {"shl", Mnemonic::SHL},     {"sal", Mnemonic::SHL},
      {"shr", Mnemonic::SHR},     {"sar", Mnemonic::SAR},
      {"jmp", Mnemonic::JMP},     {"call", Mnemonic::CALL},
      {"ret", Mnemonic::RET},     {"retf", Mnemonic::RETF},
      {"leave", Mnemonic::LEAVE}, {"nop", Mnemonic::NOP},
      {"cdq", Mnemonic::CDQ},     {"int3", Mnemonic::INT3},
      {"int", Mnemonic::INT},     {"hlt", Mnemonic::HLT},
      {"clc", Mnemonic::CLC},     {"stc", Mnemonic::STC},
      {"cmc", Mnemonic::CMC},     {"cld", Mnemonic::CLD},
      {"std", Mnemonic::STD},     {"movzx", Mnemonic::MOVZX},
      {"movsx", Mnemonic::MOVSX},
  };
  return table;
}

std::optional<std::pair<Reg, OpSize>> parse_reg(const std::string& s) {
  static const std::map<std::string, std::pair<Reg, OpSize>> table = {
      {"eax", {Reg::EAX, OpSize::Dword}}, {"ecx", {Reg::ECX, OpSize::Dword}},
      {"edx", {Reg::EDX, OpSize::Dword}}, {"ebx", {Reg::EBX, OpSize::Dword}},
      {"esp", {Reg::ESP, OpSize::Dword}}, {"ebp", {Reg::EBP, OpSize::Dword}},
      {"esi", {Reg::ESI, OpSize::Dword}}, {"edi", {Reg::EDI, OpSize::Dword}},
      {"ax", {Reg::EAX, OpSize::Word}},   {"cx", {Reg::ECX, OpSize::Word}},
      {"dx", {Reg::EDX, OpSize::Word}},   {"bx", {Reg::EBX, OpSize::Word}},
      {"al", {Reg::EAX, OpSize::Byte}},   {"cl", {Reg::ECX, OpSize::Byte}},
      {"dl", {Reg::EDX, OpSize::Byte}},   {"bl", {Reg::EBX, OpSize::Byte}},
      {"ah", {Reg::ESP, OpSize::Byte}},   {"ch", {Reg::EBP, OpSize::Byte}},
      {"dh", {Reg::ESI, OpSize::Byte}},   {"bh", {Reg::EDI, OpSize::Byte}},
  };
  auto it = table.find(s);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }

// Tokenized operand text parsing helpers.
struct OperandText {
  std::string text;
};

// Splits "a, b, c" at top-level commas (none appear inside brackets in our
// syntax, but be safe about strings for data directives).
std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  bool in_str = false;
  int depth = 0;
  for (char c : s) {
    if (in_str) {
      cur += c;
      if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') {
      in_str = true;
      cur += c;
    } else if (c == '[') {
      ++depth;
      cur += c;
    } else if (c == ']') {
      --depth;
      cur += c;
    } else if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::optional<std::int64_t> parse_number(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::size_t i = 0;
  bool neg = false;
  if (s[i] == '-' || s[i] == '+') {
    neg = s[i] == '-';
    ++i;
  }
  if (i >= s.size()) return std::nullopt;
  if (s[i] == '\'' && s.size() == i + 3 && s[i + 2] == '\'') {
    const std::int64_t v = static_cast<unsigned char>(s[i + 1]);
    return neg ? -v : v;
  }
  std::int64_t v = 0;
  if (s.size() > i + 2 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    for (std::size_t k = i + 2; k < s.size(); ++k) {
      const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(s[k])));
      int d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        d = c - 'a' + 10;
      } else {
        return std::nullopt;
      }
      v = v * 16 + d;
    }
  } else {
    for (std::size_t k = i; k < s.size(); ++k) {
      if (!std::isdigit(static_cast<unsigned char>(s[k]))) return std::nullopt;
      v = v * 10 + (s[k] - '0');
    }
  }
  return neg ? -v : v;
}

// --- assembler state --------------------------------------------------------

struct Asm {
  img::Module module;
  img::SectionKind section = img::SectionKind::Text;
  std::vector<std::string> pending_labels;  // dot-labels for the next item
  std::uint32_t pending_align = 0;
  int line_no = 0;
  std::string error;

  bool err(const std::string& msg) {
    error = "line " + std::to_string(line_no) + ": " + msg;
    return false;
  }

  img::Fragment& frag() {
    if (module.fragments.empty() || module.fragments.back().section != section) {
      // Anonymous fragment (data before any label, or section switch).
      img::Fragment f;
      f.section = section;
      f.align = (section == img::SectionKind::Text) ? 16 : 4;
      module.fragments.push_back(std::move(f));
    }
    return module.fragments.back();
  }

  void add_item(img::Item item) {
    if (pending_align > 1) {
      frag().items.push_back(img::Item::make_align(pending_align));
      pending_align = 0;
    }
    item.labels = std::move(pending_labels);
    pending_labels.clear();
    frag().items.push_back(std::move(item));
  }

  void start_fragment(const std::string& name) {
    img::Fragment f;
    f.name = name;
    f.section = section;
    f.is_func = section == img::SectionKind::Text;
    f.align = (section == img::SectionKind::Text) ? 16 : 4;
    if (pending_align > 1) {
      f.align = pending_align;
      pending_align = 0;
    }
    module.fragments.push_back(std::move(f));
  }

  // Parses one operand; fills `op` and possibly a fixup on the item.
  bool parse_operand(const std::string& raw, Operand& op, img::Item& item,
                     std::optional<OpSize> size_hint);
  bool parse_mem(const std::string& inner, Operand& op, img::Item& item, OpSize size);
  bool handle_insn(const std::string& mnem, const std::string& rest);
  bool handle_data(const std::string& directive, const std::string& rest);
  bool handle_line(const std::string& line);
};

bool Asm::parse_mem(const std::string& inner, Operand& op, img::Item& item, OpSize size) {
  // Grammar: term ('+' term | '-' number)* where term = reg | reg '*' scale |
  // number | symbol. At most one base, one scaled index, one symbol.
  Mem mem;
  std::string sym;
  std::int64_t disp = 0;
  std::size_t i = 0;
  int sign = 1;
  const std::string s = inner;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i >= s.size()) break;
    if (s[i] == '+') {
      sign = 1;
      ++i;
      continue;
    }
    if (s[i] == '-') {
      sign = -1;
      ++i;
      continue;
    }
    // Collect a term up to the next top-level + or -.
    std::size_t j = i;
    while (j < s.size() && s[j] != '+' && s[j] != '-') ++j;
    std::string term = trim(s.substr(i, j - i));
    i = j;
    if (term.empty()) return err("empty term in memory operand");

    // reg*scale ?
    auto star = term.find('*');
    if (star != std::string::npos) {
      auto reg = parse_reg(lower(trim(term.substr(0, star))));
      auto scale = parse_number(trim(term.substr(star + 1)));
      if (!reg || reg->second != OpSize::Dword || !scale) return err("bad scaled index");
      if (mem.index != Reg::NONE) return err("two index registers");
      mem.index = reg->first;
      mem.scale = static_cast<std::uint8_t>(*scale);
      continue;
    }
    if (auto reg = parse_reg(lower(term))) {
      if (reg->second != OpSize::Dword) return err("memory operand needs 32-bit registers");
      if (sign < 0) return err("cannot subtract a register");
      if (mem.base == Reg::NONE) {
        mem.base = reg->first;
      } else if (mem.index == Reg::NONE) {
        mem.index = reg->first;
        mem.scale = 1;
      } else {
        return err("too many registers in memory operand");
      }
      continue;
    }
    if (auto num = parse_number(term)) {
      disp += sign * *num;
      continue;
    }
    if (is_ident_start(term[0])) {
      if (!sym.empty()) return err("two symbols in memory operand");
      if (sign < 0) return err("cannot subtract a symbol");
      sym = term;
      continue;
    }
    return err("bad memory term '" + term + "'");
  }

  mem.disp = static_cast<std::int32_t>(disp);
  op = Operand::make_mem(mem, size);
  if (!sym.empty()) {
    if (mem.base != Reg::NONE || mem.index != Reg::NONE) {
      return err("symbol addressing must be absolute ([sym] or [sym+disp])");
    }
    if (item.fixup != img::Fixup::None) return err("two fixups in one instruction");
    item.fixup = img::Fixup::AbsDisp;
    item.sym = sym;
    item.addend = static_cast<std::int32_t>(disp);
    op.mem.disp = 0;
  }
  return true;
}

bool Asm::parse_operand(const std::string& raw, Operand& op, img::Item& item,
                        std::optional<OpSize> size_hint) {
  std::string s = trim(raw);
  if (s.empty()) return err("empty operand");

  // Size prefixes: "byte", "word", "dword" optionally followed by "ptr".
  std::optional<OpSize> size = size_hint;
  const std::string ls = lower(s);
  for (const auto& [kw, sz] : {std::pair{"byte", OpSize::Byte},
                               std::pair{"word", OpSize::Word},
                               std::pair{"dword", OpSize::Dword}}) {
    const std::string kws(kw);
    if (ls.starts_with(kws + " ") || ls.starts_with(kws + "[")) {
      size = sz;
      s = trim(s.substr(kws.size()));
      if (lower(s).starts_with("ptr")) s = trim(s.substr(3));
      break;
    }
  }

  if (s.front() == '[') {
    if (s.back() != ']') return err("unterminated memory operand");
    return parse_mem(s.substr(1, s.size() - 2), op, item, size.value_or(OpSize::Dword));
  }

  if (auto reg = parse_reg(lower(s))) {
    op = Operand::make_reg(reg->first, reg->second);
    return true;
  }
  if (auto num = parse_number(s)) {
    op = Operand::make_imm(static_cast<std::int32_t>(*num), size.value_or(OpSize::Dword));
    return true;
  }
  if (lower(s).starts_with("offset ")) {
    const std::string sym = trim(s.substr(7));
    if (item.fixup != img::Fixup::None) return err("two fixups in one instruction");
    item.fixup = img::Fixup::AbsImm;
    item.sym = sym;
    op = Operand::make_imm(0);
    return true;
  }
  if (is_ident_start(s[0])) {
    // Bare symbol: branch target (RelBranch fixup).
    if (item.fixup != img::Fixup::None) return err("two fixups in one instruction");
    item.fixup = img::Fixup::RelBranch;
    item.sym = s;
    op = Operand::make_rel(0);
    return true;
  }
  return err("cannot parse operand '" + s + "'");
}

bool Asm::handle_insn(const std::string& mnem, const std::string& rest) {
  Insn insn;
  std::string m = mnem;

  // Jcc / SETcc.
  if (m.size() > 1 && m[0] == 'j' && m != "jmp") {
    auto cond = parse_cond(m.substr(1));
    if (!cond) return err("unknown mnemonic '" + m + "'");
    insn.op = Mnemonic::JCC;
    insn.cond = *cond;
  } else if (m.size() > 3 && m.starts_with("set")) {
    auto cond = parse_cond(m.substr(3));
    if (!cond) return err("unknown mnemonic '" + m + "'");
    insn.op = Mnemonic::SETCC;
    insn.cond = *cond;
  } else {
    auto it = mnemonic_table().find(m);
    if (it == mnemonic_table().end()) return err("unknown mnemonic '" + m + "'");
    insn.op = it->second;
  }

  img::Item item;
  auto operands = split_commas(rest);
  if (operands.size() > 3) return err("too many operands");
  // First pass: parse everything; size inference from register operands.
  std::optional<OpSize> size_hint;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    Operand op;
    if (!parse_operand(operands[i], op, item, std::nullopt)) return false;
    insn.ops[i] = op;
    insn.nops = static_cast<std::uint8_t>(i + 1);
    if (op.kind == Operand::Kind::Reg && !size_hint) size_hint = op.size;
  }
  // Operation size: from the first register operand, else from a sized memory
  // operand, else dword.
  OpSize opsize = OpSize::Dword;
  if (size_hint) {
    opsize = *size_hint;
  } else {
    for (std::uint8_t i = 0; i < insn.nops; ++i) {
      if (insn.ops[i].kind == Operand::Kind::Mem) opsize = insn.ops[i].size;
    }
  }
  // Shift counts and MOVZX/MOVSX sources keep their own sizes; every other
  // mem/imm operand is harmonised to the operation size.
  insn.opsize = opsize;
  const bool is_shift = insn.op == Mnemonic::ROL || insn.op == Mnemonic::ROR ||
                        insn.op == Mnemonic::SHL || insn.op == Mnemonic::SHR ||
                        insn.op == Mnemonic::SAR;
  const bool keeps_sizes = insn.op == Mnemonic::MOVZX || insn.op == Mnemonic::MOVSX;
  if (!keeps_sizes) {
    const std::uint8_t harmonise_upto = is_shift ? 1 : insn.nops;
    for (std::uint8_t i = 0; i < harmonise_upto; ++i) {
      if (insn.ops[i].kind == Operand::Kind::Mem || insn.ops[i].kind == Operand::Kind::Imm) {
        insn.ops[i].size = opsize;
      }
    }
  }
  if (insn.op == Mnemonic::JCC && item.fixup == img::Fixup::None) {
    return err("jcc needs a label target");
  }
  if (insn.op == Mnemonic::MOVZX || insn.op == Mnemonic::MOVSX) {
    insn.opsize = OpSize::Dword;
  }

  item.kind = img::Item::Kind::Insn;
  item.insn = insn;
  add_item(std::move(item));
  return true;
}

bool Asm::handle_data(const std::string& directive, const std::string& rest) {
  if (directive == "db") {
    Buffer data;
    for (const auto& part : split_commas(rest)) {
      const std::string p = trim(part);
      if (p.size() >= 2 && p.front() == '"' && p.back() == '"') {
        for (std::size_t i = 1; i + 1 < p.size(); ++i) data.put_u8(static_cast<std::uint8_t>(p[i]));
      } else if (auto num = parse_number(p)) {
        data.put_u8(static_cast<std::uint8_t>(*num));
      } else {
        return err("bad db value '" + p + "'");
      }
    }
    add_item(img::Item::make_data(std::move(data)));
    return true;
  }
  if (directive == "dw") {
    Buffer data;
    for (const auto& part : split_commas(rest)) {
      auto num = parse_number(trim(part));
      if (!num) return err("bad dw value");
      data.put_u16(static_cast<std::uint16_t>(*num));
    }
    add_item(img::Item::make_data(std::move(data)));
    return true;
  }
  if (directive == "dd") {
    for (const auto& part : split_commas(rest)) {
      const std::string p = trim(part);
      Buffer data;
      if (auto num = parse_number(p)) {
        data.put_u32(static_cast<std::uint32_t>(*num));
        add_item(img::Item::make_data(std::move(data)));
      } else if (is_ident_start(p[0])) {
        data.put_u32(0);
        img::Item item = img::Item::make_data(std::move(data));
        item.fixup = img::Fixup::AbsData;
        item.sym = p;
        add_item(std::move(item));
      } else {
        return err("bad dd value '" + p + "'");
      }
    }
    return true;
  }
  if (directive == "resb" || directive == "resd") {
    auto num = parse_number(trim(rest));
    if (!num || *num < 0) return err("bad reservation size");
    Buffer data;
    const std::int64_t n = *num * (directive == "resd" ? 4 : 1);
    data.resize(static_cast<std::size_t>(n));
    add_item(img::Item::make_data(std::move(data)));
    return true;
  }
  return err("unknown directive '" + directive + "'");
}

bool Asm::handle_line(const std::string& raw) {
  // Strip comments.
  std::string line;
  bool in_str = false;
  for (char ch : raw) {
    if (ch == '"') in_str = !in_str;
    if (!in_str && (ch == ';' || ch == '#')) break;
    line += ch;
  }
  line = trim(line);
  if (line.empty()) return true;

  // Labels (possibly followed by more on the same line).
  while (true) {
    std::size_t i = 0;
    if (!is_ident_start(line[0])) break;
    while (i < line.size() && is_ident_char(line[i])) ++i;
    if (i >= line.size() || line[i] != ':') break;
    const std::string label = line.substr(0, i);
    if (label.starts_with('.')) {
      pending_labels.push_back(label);
    } else {
      start_fragment(label);
    }
    line = trim(line.substr(i + 1));
    if (line.empty()) return true;
  }

  // Directives.
  if (line[0] == '.') {
    std::size_t sp = line.find_first_of(" \t");
    const std::string dir = lower(line.substr(0, sp));
    const std::string rest = (sp == std::string::npos) ? "" : trim(line.substr(sp));
    if (dir == ".text") {
      section = img::SectionKind::Text;
      return true;
    }
    if (dir == ".data") {
      section = img::SectionKind::Data;
      return true;
    }
    if (dir == ".rodata") {
      section = img::SectionKind::Rodata;
      return true;
    }
    if (dir == ".bss") {
      section = img::SectionKind::Bss;
      return true;
    }
    if (dir == ".global" || dir == ".globl") return true;  // informational
    if (dir == ".entry") {
      module.entry = rest;
      return true;
    }
    if (dir == ".align") {
      auto num = parse_number(rest);
      if (!num || *num < 1) return err("bad alignment");
      pending_align = static_cast<std::uint32_t>(*num);
      return true;
    }
    return err("unknown directive '" + dir + "'");
  }

  // Instruction or data directive.
  std::size_t sp = line.find_first_of(" \t");
  const std::string head = lower(line.substr(0, sp));
  const std::string rest = (sp == std::string::npos) ? "" : trim(line.substr(sp));
  if (head == "db" || head == "dw" || head == "dd" || head == "resb" || head == "resd") {
    return handle_data(head, rest);
  }
  return handle_insn(head, rest);
}

}  // namespace

Result<img::Module> assemble(const std::string& source) {
  Asm state;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t nl = source.find('\n', pos);
    const std::string line =
        source.substr(pos, (nl == std::string::npos ? source.size() : nl) - pos);
    ++state.line_no;
    if (!state.handle_line(line)) return asm_fail(state.error);
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  if (!state.pending_labels.empty()) {
    // Bind trailing labels to an empty data item so they resolve.
    state.add_item(img::Item::make_data(Buffer{}));
  }
  return state.module;
}

}  // namespace plx::assembler

// Two-pass Intel-syntax x86-32 assembler producing a symbolic img::Module.
//
// Used by tests, the examples (the paper's ptrace-detector listing is
// assembled from text) and anywhere hand-written machine code is clearer
// than builder calls. Supported syntax:
//
//   .text / .data / .rodata / .bss      section switches
//   .global name                        mark a symbol global (informational)
//   .align N                            align next item
//   .entry name                         set the module entry symbol
//   name:                               non-dot label => new fragment
//   .Llocal:                            dot label => fragment-local label
//   mov eax, [ebp+8]                    instructions, Intel operand order
//   mov eax, offset sym                 absolute address of a symbol (AbsImm)
//   mov eax, [sym]                      absolute addressing (AbsDisp)
//   call sym / jne .Llocal              branch fixups (always rel32)
//   dd 1, 2, sym                        32-bit data (symbols become AbsData)
//   db "text", 10, 0                    byte data
//   resb N / resd N                     zero-filled space
//
// Comments start with ';' or '#'. Numbers: decimal, 0x hex, 'c' char.
#pragma once

#include <string>

#include "image/image.h"
#include "support/error.h"

namespace plx::assembler {

// Assembles `source` into a module. On error, the message includes the
// 1-based line number.
Result<img::Module> assemble(const std::string& source);

}  // namespace plx::assembler

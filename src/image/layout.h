// Module -> Image layout (a miniature linker).
//
// Deterministically assigns virtual addresses to fragments, encodes
// instructions, resolves fixups and produces the final Image plus a map from
// every module item to its laid-out address/size. The rewriter relies on
// determinism: after editing the module it re-runs layout and inspects the
// resulting bytes to confirm a crafted gadget actually appears.
#pragma once

#include "image/image.h"
#include "support/error.h"

namespace plx::img {

struct LaidOutItem {
  std::uint32_t addr = 0;
  std::uint32_t size = 0;
};

struct LayoutResult {
  Image image;
  // items[f][i] corresponds to module.fragments[f].items[i].
  std::vector<std::vector<LaidOutItem>> items;
};

// Lays out `module`. Fixup-carrying instructions are forced to wide (imm32 /
// rel32) encodings so sizes are stable across the size and patch passes.
// Labels beginning with '.' are fragment-local; all other labels and all
// fragment names are global symbols.
Result<LayoutResult> layout(const Module& module);

}  // namespace plx::img

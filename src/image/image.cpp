#include "image/image.h"

#include <algorithm>

#include "isa/arch.h"

namespace plx::img {

Fragment* Module::find_fragment(const std::string& name) {
  for (auto& f : fragments) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const Fragment* Module::find_fragment(const std::string& name) const {
  for (const auto& f : fragments) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const Section* Image::find_section(const std::string& name) const {
  for (const auto& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Section* Image::find_section(const std::string& name) {
  for (auto& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Section* Image::section_at(std::uint32_t addr) const {
  for (const auto& s : sections) {
    if (s.contains(addr)) return &s;
  }
  return nullptr;
}

const Symbol* Image::find_symbol(const std::string& name) const {
  for (const auto& s : symbols) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const Symbol* Image::func_at(std::uint32_t addr) const {
  const Symbol* best = nullptr;
  for (const auto& s : symbols) {
    if (!s.is_func) continue;
    if (addr >= s.vaddr && addr - s.vaddr < std::max<std::uint32_t>(s.size, 1)) {
      if (!best || s.vaddr > best->vaddr) best = &s;
    }
  }
  return best;
}

std::vector<std::uint8_t> Image::read(std::uint32_t addr, std::uint32_t n) const {
  const Section* s = section_at(addr);
  if (!s) return {};
  const std::uint32_t off = addr - s->vaddr;
  if (off + n > s->bytes.size()) return {};
  return {s->bytes.vec().begin() + off, s->bytes.vec().begin() + off + n};
}

namespace {

inline plx::Diag img_fail(std::string msg) {
  return plx::Diag(plx::DiagCode::ImageFormat, "image.format", std::move(msg));
}

constexpr std::uint32_t kMagic = 0x31584c50;  // "PLX1": implicit isa = "x86"
constexpr std::uint32_t kMagic2 = 0x32584c50;  // "PLX2": explicit isa name
}

Buffer Image::serialize() const {
  Buffer out;
  // The PLX1 layout (and hence every byte of an x86 image) predates the ISA
  // seam and must not move: tests/test_pipeline.cpp pins FNV digests of it.
  // Non-x86 images get the self-describing PLX2 header instead.
  if (isa == "x86") {
    out.put_u32(kMagic);
  } else {
    out.put_u32(kMagic2);
    out.put_str(isa);
  }
  out.put_u32(entry);
  out.put_u32(static_cast<std::uint32_t>(sections.size()));
  for (const auto& s : sections) {
    out.put_str(s.name);
    out.put_u32(s.vaddr);
    out.put_u32(s.perms);
    out.put_u32(static_cast<std::uint32_t>(s.bytes.size()));
    out.put_bytes(s.bytes.span());
  }
  out.put_u32(static_cast<std::uint32_t>(symbols.size()));
  for (const auto& s : symbols) {
    out.put_str(s.name);
    out.put_u32(s.vaddr);
    out.put_u32(s.size);
    out.put_u8(s.is_func ? 1 : 0);
  }
  return out;
}

Result<Image> Image::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint32_t magic = r.get_u32();
  Image img;
  if (magic == kMagic) {
    img.isa = "x86";
  } else if (magic == kMagic2) {
    img.isa = r.get_str();
    if (!r.ok() || img.isa.empty() || img.isa.size() > 16) {
      return img_fail("corrupt isa name");
    }
    if (isa::find_arch(img.isa) == nullptr) {
      return img_fail("unknown isa '" + img.isa + "'");
    }
  } else {
    return img_fail("bad PLX magic");
  }
  img.entry = r.get_u32();
  const std::uint32_t nsec = r.get_u32();
  if (!r.ok() || nsec > 1024) return img_fail("corrupt section count");
  for (std::uint32_t i = 0; i < nsec; ++i) {
    Section s;
    s.name = r.get_str();
    s.vaddr = r.get_u32();
    s.perms = r.get_u32();
    const std::uint32_t n = r.get_u32();
    if (!r.ok() || n > r.remaining()) return img_fail("corrupt section body");
    s.bytes = Buffer(r.get_bytes(n));
    img.sections.push_back(std::move(s));
  }
  const std::uint32_t nsym = r.get_u32();
  if (!r.ok() || nsym > (1u << 20)) return img_fail("corrupt symbol count");
  for (std::uint32_t i = 0; i < nsym; ++i) {
    Symbol s;
    s.name = r.get_str();
    s.vaddr = r.get_u32();
    s.size = r.get_u32();
    s.is_func = r.get_u8() != 0;
    img.symbols.push_back(std::move(s));
  }
  if (!r.ok()) return img_fail("truncated image");
  return img;
}

}  // namespace plx::img

#include "image/layout.h"

#include <map>

#include "isa/x86/encoder.h"

namespace plx::img {

namespace {

inline Diag lay_fail(std::string msg) {
  return Diag(DiagCode::LayoutError, "image.layout", std::move(msg));
}
inline Diag sym_fail(std::string msg) {
  return Diag(DiagCode::MissingSymbol, "image.layout", std::move(msg));
}

struct SectionPlan {
  SectionKind kind;
  const char* name;
  std::uint32_t base;
  std::uint32_t perms;
};

constexpr SectionPlan kPlans[] = {
    {SectionKind::Text, ".text", kTextBase, kPermRead | kPermExec},
    {SectionKind::Rodata, ".rodata", kRodataBase, kPermRead},
    {SectionKind::Data, ".data", kDataBase, kPermRead | kPermWrite},
    {SectionKind::Bss, ".bss", kBssBase, kPermRead | kPermWrite},
};

std::uint32_t align_up(std::uint32_t v, std::uint32_t a) {
  return (a <= 1) ? v : (v + a - 1) & ~(a - 1);
}

std::string mangle_label(const Fragment& frag, const std::string& label) {
  return label.starts_with('.') ? frag.name + label : label;
}

// Encode an item's instruction, forcing wide forms for fixups. Returns the
// encoded bytes.
Result<Buffer> encode_item(const Item& item) {
  x86::Insn insn = item.insn;
  if (item.fixup != Fixup::None) insn.wide_imm = true;
  Buffer bytes;
  auto r = x86::encode(insn, bytes);
  if (!r) return std::move(r).take_error().with_context("encoding instruction");
  if (item.fixup == Fixup::RelBranch || item.fixup == Fixup::AbsImm ||
      item.fixup == Fixup::AbsDisp) {
    if (bytes.size() < 4) return lay_fail("fixup instruction too short for a 32-bit field");
  }
  if (item.fixup == Fixup::AbsDisp) {
    // The disp32 must be the last field; an immediate operand would follow it.
    for (const auto& op : insn.ops) {
      if (op.kind == x86::Operand::Kind::Imm) {
        return lay_fail("AbsDisp fixup with a trailing immediate operand is unsupported; "
                    "load the address into a register first");
      }
    }
  }
  return bytes;
}

}  // namespace

Result<LayoutResult> layout(const Module& module) {
  LayoutResult result;
  result.items.resize(module.fragments.size());

  // --- pass 1: encode everything and assign addresses -----------------------
  // Per-section running cursors.
  std::map<SectionKind, std::uint32_t> cursor;
  for (const auto& plan : kPlans) cursor[plan.kind] = plan.base;

  // Encoded bytes per item (empty for Align until addresses known).
  std::vector<std::vector<Buffer>> encoded(module.fragments.size());
  std::vector<std::uint32_t> frag_addr(module.fragments.size());

  std::map<std::string, std::uint32_t> symtab;
  auto define = [&](const std::string& name, std::uint32_t addr) -> Result<int> {
    auto [it, inserted] = symtab.emplace(name, addr);
    (void)it;
    if (!inserted) return lay_fail("duplicate symbol: " + name);
    return 0;
  };

  for (std::size_t f = 0; f < module.fragments.size(); ++f) {
    const Fragment& frag = module.fragments[f];
    std::uint32_t& cur = cursor[frag.section];
    cur += frag.pad_before;
    cur = align_up(cur, frag.align);
    frag_addr[f] = cur;
    if (!frag.name.empty()) {
      if (auto r = define(frag.name, cur); !r) return std::move(r).take_error();
    }

    encoded[f].resize(frag.items.size());
    result.items[f].resize(frag.items.size());
    for (std::size_t i = 0; i < frag.items.size(); ++i) {
      const Item& item = frag.items[i];
      for (const auto& label : item.labels) {
        if (auto r = define(mangle_label(frag, label), cur); !r) return std::move(r).take_error();
      }
      std::uint32_t size = 0;
      switch (item.kind) {
        case Item::Kind::Insn: {
          auto enc = encode_item(item);
          if (!enc) {
            return std::move(enc).take_error().with_context("in fragment '" + frag.name + "'");
          }
          encoded[f][i] = std::move(enc).take();
          size = static_cast<std::uint32_t>(encoded[f][i].size());
          break;
        }
        case Item::Kind::Data:
          encoded[f][i] = item.data;
          size = static_cast<std::uint32_t>(item.data.size());
          break;
        case Item::Kind::Align: {
          const std::uint32_t target = align_up(cur, item.align);
          size = target - cur;
          Buffer pad;
          const std::uint8_t fill = (frag.section == SectionKind::Text) ? 0x90 : 0x00;
          for (std::uint32_t k = 0; k < size; ++k) pad.put_u8(fill);
          encoded[f][i] = std::move(pad);
          break;
        }
      }
      result.items[f][i] = {cur, size};
      cur += size;
    }
  }

  // --- pass 2: resolve fixups and materialise sections ----------------------
  for (std::size_t f = 0; f < module.fragments.size(); ++f) {
    const Fragment& frag = module.fragments[f];
    for (std::size_t i = 0; i < frag.items.size(); ++i) {
      const Item& item = frag.items[i];
      if (item.fixup == Fixup::None) continue;
      const std::string target_name = mangle_label(frag, item.sym);
      auto it = symtab.find(target_name);
      if (it == symtab.end()) {
        return sym_fail("undefined symbol '" + item.sym + "' referenced from fragment '" +
                        frag.name + "'");
      }
      const std::uint32_t s = it->second + static_cast<std::uint32_t>(item.addend);
      const LaidOutItem& loc = result.items[f][i];
      Buffer& bytes = encoded[f][i];
      std::uint32_t value = 0;
      switch (item.fixup) {
        case Fixup::RelBranch:
          value = s - (loc.addr + loc.size);
          break;
        case Fixup::AbsImm:
        case Fixup::AbsDisp:
        case Fixup::AbsData:
          value = s;
          break;
        case Fixup::None:
          break;
      }
      if (item.fixup == Fixup::AbsData) {
        if (bytes.size() < 4) return lay_fail("AbsData item smaller than 4 bytes");
        bytes.set_u32(0, value);
      } else {
        bytes.set_u32(bytes.size() - 4, value);
      }
    }
  }

  // Build sections in plan order, concatenating fragment bytes with padding.
  for (const auto& plan : kPlans) {
    Section sec;
    sec.name = plan.name;
    sec.vaddr = plan.base;
    sec.perms = plan.perms;
    std::uint32_t end = plan.base;
    bool any = false;
    for (std::size_t f = 0; f < module.fragments.size(); ++f) {
      const Fragment& frag = module.fragments[f];
      if (frag.section != plan.kind) continue;
      any = true;
      // Pad up to the fragment start.
      const std::uint8_t fill = (plan.kind == SectionKind::Text) ? 0x90 : 0x00;
      while (end < frag_addr[f]) {
        sec.bytes.put_u8(fill);
        ++end;
      }
      for (std::size_t i = 0; i < frag.items.size(); ++i) {
        sec.bytes.put_bytes(encoded[f][i].span());
        end += static_cast<std::uint32_t>(encoded[f][i].size());
      }
    }
    if (any) result.image.sections.push_back(std::move(sec));
  }

  // Symbols: fragments (with sizes) plus global labels.
  for (std::size_t f = 0; f < module.fragments.size(); ++f) {
    const Fragment& frag = module.fragments[f];
    if (frag.name.empty()) continue;
    std::uint32_t size = 0;
    for (const auto& li : result.items[f]) size += li.size;
    result.image.symbols.push_back(
        Symbol{frag.name, frag_addr[f], size, frag.is_func});
  }
  for (std::size_t f = 0; f < module.fragments.size(); ++f) {
    const Fragment& frag = module.fragments[f];
    for (std::size_t i = 0; i < frag.items.size(); ++i) {
      for (const auto& label : frag.items[i].labels) {
        if (label.starts_with('.')) continue;
        result.image.symbols.push_back(
            Symbol{label, result.items[f][i].addr, 0, false});
      }
    }
  }

  auto entry_it = symtab.find(module.entry);
  if (entry_it == symtab.end()) return sym_fail("entry symbol not found: " + module.entry);
  result.image.entry = entry_it->second;
  return result;
}

}  // namespace plx::img

// PLX binary image and symbolic module representation.
//
// Parallax works at two levels:
//
//  * img::Module — a *symbolic* program: fragments (functions / data
//    objects) made of instructions and data items that may carry fixups
//    (symbol references). The assembler and the mini-C compiler produce
//    Modules; the rewriter edits Modules (splitting instructions, inserting
//    spurious instructions, changing fragment alignment) exactly the way the
//    paper's prototype leans on source/debug information to simplify binary
//    rewriting (§I, §III).
//
//  * img::Image — the laid-out binary: sections with virtual addresses and
//    final bytes, a symbol table, and an entry point. The VM executes
//    Images; the gadget scanner scans them. layout() turns a Module into an
//    Image deterministically, so the rewriter can re-lay-out after each edit
//    and inspect the actual encoded bytes (displacement values, immediate
//    bytes) that the gadget rules depend on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/buffer.h"
#include "support/error.h"
#include "isa/x86/insn.h"

namespace plx::img {

// ---------------------------------------------------------------------------
// Symbolic module
// ---------------------------------------------------------------------------

enum class SectionKind : std::uint8_t { Text, Data, Rodata, Bss };

// How an item's bytes reference a symbol. All fixed-up fields are 4 bytes
// and (by construction of our emitters) the *last* 4 bytes of the encoding,
// except AbsData which patches a 4-byte data item.
enum class Fixup : std::uint8_t {
  None,
  RelBranch,  // call/jmp/jcc rel32: field = sym + addend - (addr + len)
  AbsImm,     // imm32 field = sym + addend (e.g. mov reg, offset sym)
  AbsDisp,    // disp32 field = sym + addend (e.g. mov eax, [sym]) — the
              // instruction must have no immediate operand after the disp
  AbsData,    // 4-byte data item = sym + addend
};

struct Item {
  enum class Kind : std::uint8_t { Insn, Data, Align };

  Kind kind = Kind::Data;
  x86::Insn insn;           // Kind::Insn
  Buffer data;              // Kind::Data
  std::uint32_t align = 1;  // Kind::Align: pad with NOPs (text) / zeros (data)

  Fixup fixup = Fixup::None;
  std::string sym;          // fixup target
  std::int32_t addend = 0;

  std::vector<std::string> labels;  // labels bound to this item's address

  static Item make_insn(x86::Insn i) {
    Item it;
    it.kind = Kind::Insn;
    it.insn = i;
    return it;
  }
  static Item make_data(Buffer b) {
    Item it;
    it.kind = Kind::Data;
    it.data = std::move(b);
    return it;
  }
  static Item make_align(std::uint32_t a) {
    Item it;
    it.kind = Kind::Align;
    it.align = a;
    return it;
  }
};

// A function or data object. Fragment order within a section is preserved by
// layout; `align` is the fragment's start alignment, and `pad_before` lets
// the rewriter insert extra padding to steer the addresses of everything
// that follows (the §IV-B3 "rearranged code and data" rule).
struct Fragment {
  std::string name;
  SectionKind section = SectionKind::Text;
  std::vector<Item> items;
  std::uint32_t align = 1;
  std::uint32_t pad_before = 0;
  bool is_func = false;
};

struct Module {
  std::vector<Fragment> fragments;
  std::string entry = "_start";

  Fragment* find_fragment(const std::string& name);
  const Fragment* find_fragment(const std::string& name) const;
};

// ---------------------------------------------------------------------------
// Laid-out image
// ---------------------------------------------------------------------------

constexpr std::uint32_t kPermRead = 1;
constexpr std::uint32_t kPermWrite = 2;
constexpr std::uint32_t kPermExec = 4;

// Default virtual layout (mirrors a classic Linux/x86 static binary).
constexpr std::uint32_t kTextBase = 0x08048000;
constexpr std::uint32_t kRodataBase = 0x080c0000;
constexpr std::uint32_t kDataBase = 0x080e0000;
constexpr std::uint32_t kBssBase = 0x08100000;
constexpr std::uint32_t kStackTop = 0xbffff000;
constexpr std::uint32_t kStackSize = 0x40000;

struct Section {
  std::string name;
  std::uint32_t vaddr = 0;
  std::uint32_t perms = kPermRead;
  Buffer bytes;

  bool contains(std::uint32_t addr) const {
    return addr >= vaddr && addr - vaddr < bytes.size();
  }
};

struct Symbol {
  std::string name;
  std::uint32_t vaddr = 0;
  std::uint32_t size = 0;
  bool is_func = false;
};

class Image {
 public:
  std::vector<Section> sections;
  std::vector<Symbol> symbols;
  std::uint32_t entry = 0;
  // Backend wire name (isa::Arch registry). "x86" serialises as the original
  // "PLX1" container byte-for-byte; any other ISA uses the "PLX2" form that
  // carries the name explicitly, so pre-seam images and the pinned golden
  // digests stay valid while second-backend images are self-describing.
  std::string isa = "x86";

  const Section* find_section(const std::string& name) const;
  Section* find_section(const std::string& name);
  const Section* section_at(std::uint32_t addr) const;

  const Symbol* find_symbol(const std::string& name) const;
  // Function symbol whose [vaddr, vaddr+size) contains addr, if any.
  const Symbol* func_at(std::uint32_t addr) const;

  // Read bytes across a section (returns empty on out-of-range).
  std::vector<std::uint8_t> read(std::uint32_t addr, std::uint32_t n) const;

  // Serialisation ("PLX1" container; "PLX2" when isa != "x86").
  Buffer serialize() const;
  static Result<Image> deserialize(std::span<const std::uint8_t> bytes);
};

}  // namespace plx::img

// GadgetClassifier capability: the semantic-lattice analysis gadget/classify
// performed pre-seam, as an interface each backend implements over its own
// decodes. Declared apart from isa/arch.h because it names gadget::Gadget —
// the generic gadget model — which the Arch descriptor itself does not need.
#pragma once

#include <span>

#include "gadget/gadget.h"
#include "isa/insn.h"

namespace plx::isa {

class GadgetClassifier {
 public:
  virtual ~GadgetClassifier() = default;

  // Classifies a return-terminated sequence (body + ret, exactly as the
  // scanner produced it) into `out`: gadget type, operand registers
  // (RegId, kNoReg = none), condition, clobbers, pop accounting, scratch
  // parking needs and flag-window safety. `insns` entries carry this
  // backend's decodes (Insn::unwrap). Must reset every field it owns —
  // callers hand in a fresh Gadget with addr/len/insns already filled.
  virtual void classify(std::span<const Insn> insns,
                        gadget::Gadget& out) const = 0;
};

}  // namespace plx::isa

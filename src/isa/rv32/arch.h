// The RV32 (RISC-V 32-bit, C extension) backend stub: decoder and
// classifier only. Registered so the seam's capability-gating paths are
// exercised end-to-end — scanning works, every gadget classifies Unusable,
// protectability reports zero coverage, and chain compilation / crafting /
// branch patching / VM construction all fail with a Diag instead of a crash.
#pragma once

#include "isa/arch.h"

namespace plx::rv32 {

const isa::Arch& rv32_arch();

}  // namespace plx::rv32

// RV32 backend stub (RV32IC encodings only as far as the seam needs them).
//
// The decoder follows the RISC-V length rule — (byte0 & 3) == 3 selects a
// 32-bit encoding, anything else a 16-bit compressed one — and recognises
// the return idioms gadget scanning keys on: `c.jr ra` (0x8082) and
// `jalr x0, 0(ra)` (0x00008067). Other control transfers are reported as
// Flow::Branch so gadget chains terminate correctly; every remaining
// encoding decodes as a straight-line instruction. The classifier maps every
// sequence to Unusable: this backend exists to exercise the capability
// gating (no ChainABI, no RewriteOps, no BranchPatchOps, no VM), proving a
// second ISA flows scan -> protectability end-to-end with zero coverage
// rather than a crash.
#include "isa/rv32/arch.h"

#include "isa/classifier.h"

namespace plx::rv32 {

namespace {

constexpr std::uint16_t kCJrRa = 0x8082;      // c.jr ra
constexpr std::uint32_t kJalrRa = 0x00008067; // jalr x0, 0(ra)

class Rv32Decoder final : public isa::Decoder {
 public:
  isa::Insn decode(std::span<const std::uint8_t> bytes) const override {
    isa::Insn out;
    if (bytes.size() < 2) return out;
    const std::uint16_t lo =
        static_cast<std::uint16_t>(bytes[0] | (bytes[1] << 8));
    if ((lo & 3) != 3) {
      // 16-bit compressed encoding. All-zero is the defined illegal
      // instruction; keep it invalid so scans stop at zero padding.
      if (lo == 0) return out;
      out.ok = true;
      out.len = 2;
      const unsigned quadrant = lo & 3;
      const unsigned funct3 = (lo >> 13) & 7;
      if (lo == kCJrRa) {
        out.flow = isa::Flow::Ret;
      } else if (quadrant == 1 &&
                 (funct3 == 1 || funct3 == 5 || funct3 == 6 || funct3 == 7)) {
        // c.jal / c.j / c.beqz / c.bnez
        out.flow = isa::Flow::Branch;
        out.cond_branch = funct3 >= 6;
        if (out.cond_branch) out.cond = static_cast<isa::CondId>(funct3);
      } else if (quadrant == 2 && funct3 == 4 && ((lo >> 2) & 0x1f) == 0 &&
                 ((lo >> 7) & 0x1f) != 0) {
        // c.jr / c.jalr (rs1 != 0, rs2 == 0); c.jr ra handled above.
        out.flow = isa::Flow::Branch;
      }
      out.wrap(static_cast<std::uint32_t>(lo));
      return out;
    }
    if (bytes.size() < 4) return out;
    const std::uint32_t word = static_cast<std::uint32_t>(lo) |
                               (static_cast<std::uint32_t>(bytes[2]) << 16) |
                               (static_cast<std::uint32_t>(bytes[3]) << 24);
    out.ok = true;
    out.len = 4;
    const std::uint32_t opcode = word & 0x7f;
    if (word == kJalrRa) {
      out.flow = isa::Flow::Ret;
    } else if (opcode == 0x63) {  // BRANCH (beq/bne/blt/bge/bltu/bgeu)
      out.flow = isa::Flow::Branch;
      out.cond_branch = true;
      out.cond = static_cast<isa::CondId>((word >> 12) & 7);
    } else if (opcode == 0x6f || opcode == 0x67) {  // JAL / JALR
      out.flow = isa::Flow::Branch;
    }
    out.wrap(word);
    return out;
  }

  bool same_semantics(const isa::Insn& a, const isa::Insn& b) const override {
    // The stub keeps no operand model: semantics == the raw encoding.
    return a.ok && b.ok && a.len == b.len &&
           a.unwrap<std::uint32_t>() == b.unwrap<std::uint32_t>();
  }
};

class Rv32Classifier final : public isa::GadgetClassifier {
 public:
  void classify(std::span<const isa::Insn> insns,
                gadget::Gadget& out) const override {
    (void)insns;
    // No chain vocabulary yet: every sequence is Unusable, so catalogs stay
    // empty and protectability reports zero coverage.
    out.type = gadget::GType::Unusable;
    out.r1 = isa::kNoReg;
    out.r2 = isa::kNoReg;
    out.cond = isa::kNoCond;
  }
};

constexpr std::uint8_t kRetOpcodes[] = {0x82, 0x67};  // low bytes of the idioms

class Rv32Arch final : public isa::Arch {
 public:
  const char* name() const override { return "rv32"; }
  std::uint32_t pointer_bytes() const override { return 4; }
  std::uint32_t insn_align() const override { return 2; }
  std::uint32_t max_insn_len() const override { return 4; }
  std::span<const std::uint8_t> ret_opcodes() const override {
    return kRetOpcodes;
  }
  std::uint8_t ret_opcode() const override { return 0x82; }
  std::uint8_t nop_byte() const override { return 0x01; }  // c.nop low byte
  std::uint32_t reg_count() const override { return 32; }

  const isa::Decoder& decoder() const override { return decoder_; }
  const isa::GadgetClassifier& classifier() const override { return classifier_; }

 private:
  Rv32Decoder decoder_;
  Rv32Classifier classifier_;
};

}  // namespace

const isa::Arch& rv32_arch() {
  static const Rv32Arch arch;
  return arch;
}

}  // namespace plx::rv32

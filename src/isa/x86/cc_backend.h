// IR -> x86-32 code generation (gcc -O0 shaped: frame-based slots, one
// expression value in eax at a time). The output intentionally resembles the
// compiler style the paper measured: rich in imm32 and disp8/disp32 bytes,
// rel32 branches everywhere — the raw material of the §IV-B rewriting rules.
#pragma once

#include "cc/ir.h"
#include "cc/irgen.h"
#include "image/image.h"

namespace plx::cc {

// Emits one function as a text fragment. Labels become fragment-local
// ".L<n>" labels; calls and global references become fixups.
Result<img::Fragment> emit_func_x86(const IrFunc& f);

// Emits a global variable as a data fragment.
img::Fragment emit_global(const GlobalVar& g);

// Emits an interned string literal as a data fragment.
img::Fragment emit_string(const std::string& name, const std::string& text);

}  // namespace plx::cc

// x86 implementation of the §IV-B applying rewriter and the Figure 6
// protectability analyser. Generic code reaches these through
// isa::Arch::rewrite_ops(); backend-level tests and benches may call the
// free functions directly.
#pragma once

#include "rewrite/protectability.h"
#include "rewrite/rewriter.h"
#include "support/error.h"

namespace plx::x86 {

// Edits a module so new overlapping gadgets come into existence (immediate
// rewrites with compensators, branch-target padding, optional spurious
// blocks), preserving program semantics. Each application is verified by
// re-laying-out and re-searching the crafted byte patterns.
Result<rewrite::CraftResult> craft_gadgets(const img::Module& input,
                                           const rewrite::CraftOptions& opts);

// Measures per-rule protectable-code-byte coverage on a laid-out module.
rewrite::CoverageReport analyze_protectability(const img::Module& mod,
                                               const img::LayoutResult& laid);

}  // namespace plx::x86
